package workload_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/access"
	"repro/internal/live"
	"repro/internal/workload"
)

// Streams must emit deltas that an engine can always accept: applied in
// order, every batch preserves the access schema.
func TestAccidentStreamPreservesConstraints(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 4, AccidentsPerDay: 12, MaxVehicles: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, viols, err := access.BuildIndexed(acc.Access, acc.Instance)
	if err != nil || len(viols) > 0 {
		t.Fatalf("fixture: %v %v", err, viols)
	}
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 4, DeleteAccidents: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for b := 0; b < 40; b++ {
		delta := st.Next()
		if delta.Len() == 0 {
			t.Fatalf("batch %d is empty", b)
		}
		res, err := live.Apply(context.Background(), delta, ix)
		if err != nil {
			t.Fatalf("batch %d (%s) rejected: %v", b, delta, err)
		}
		total += res.Inserted + res.Deleted
		// Every op the stream emits must have net effect: it claims to
		// track the instance exactly.
		if res.Inserted+res.Deleted != delta.Len() {
			t.Fatalf("batch %d: %d ops, net effect %d+%d", b, delta.Len(), res.Inserted, res.Deleted)
		}
		ix = res.Indexed
	}
	if ok, err := access.Satisfies(acc.Access, ix.Instance); err != nil || !ok {
		t.Fatalf("final instance: ok=%v err=%v", ok, err)
	}
	if total == 0 {
		t.Fatal("stream emitted nothing")
	}
}

func TestSocialStreamPreservesConstraints(t *testing.T) {
	cfg := workload.SocialConfig{People: 120, MaxFriends: 8, MaxLikes: 4, Seed: 2}
	soc, err := workload.GenerateSocial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix, viols, err := access.BuildIndexed(soc.Access, soc.Instance)
	if err != nil || len(viols) > 0 {
		t.Fatalf("fixture: %v %v", err, viols)
	}
	st, err := workload.NewSocialStream(soc, workload.SocialStreamConfig{
		InsertPeople: 3, DeletePeople: 1,
		MaxFriends: cfg.MaxFriends, MaxLikes: cfg.MaxLikes,
		People: cfg.People, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 40; b++ {
		res, err := live.Apply(context.Background(), st.Next(), ix)
		if err != nil {
			t.Fatalf("batch %d rejected: %v", b, err)
		}
		ix = res.Indexed
	}
	if ok, err := access.Satisfies(soc.Access, ix.Instance); err != nil || !ok {
		t.Fatalf("final instance: ok=%v err=%v", ok, err)
	}
}

func TestStreamsAreDeterministic(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 2, AccidentsPerDay: 5, MaxVehicles: 3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() string {
		st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
			InsertAccidents: 3, DeleteAccidents: 1, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for i := 0; i < 5; i++ {
			if err := live.WriteDeltaTSV(&buf, st.Next()); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	if a, b := mk(), mk(); a != b {
		t.Fatalf("same seed must give the same stream:\n%s\nvs\n%s", a, b)
	}
}
