package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cq"
	"repro/internal/schema"
)

// RandomCQConfig controls the random conjunctive-query generator used by
// the E4 experiment (the "77% of CQs are boundedly evaluable under 84
// constraints" claim of the Introduction).
type RandomCQConfig struct {
	// Queries to generate.
	Queries int
	// MaxAtoms per query (≥ 1).
	MaxAtoms int
	// StartProb is the probability that a query is "anchored": its first
	// atom receives a constant on an attribute that some access constraint
	// can key on. Personalized/parameterized workloads are mostly
	// anchored, which is what drives the paper's high coverage rates.
	StartProb float64
	// FreeVars caps the number of free variables.
	FreeVars int
	Seed     int64
}

// DefaultRandomCQConfig mirrors the paper's workload shape: a few joins,
// mostly anchored queries.
func DefaultRandomCQConfig() RandomCQConfig {
	return RandomCQConfig{Queries: 200, MaxAtoms: 4, StartProb: 0.85, FreeVars: 2, Seed: 3}
}

// RandomCQs generates random join queries over the given schema. Each
// query joins a chain of atoms through shared variables; anchored queries
// pin one attribute of the first atom to a constant drawn from consts.
// Generated queries are always safe and validated.
func RandomCQs(s *schema.Schema, cfg RandomCQConfig, consts map[schema.Attribute][]cq.Term) ([]*cq.CQ, error) {
	rels := s.Relations()
	if len(rels) == 0 {
		return nil, fmt.Errorf("workload: empty schema")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*cq.CQ
	for qi := 0; qi < cfg.Queries; qi++ {
		nAtoms := 1 + rng.Intn(cfg.MaxAtoms)
		q := &cq.CQ{Label: fmt.Sprintf("rq%d", qi)}
		varCount := 0
		freshVar := func() string {
			varCount++
			return fmt.Sprintf("v%d_%d", qi, varCount)
		}
		// Build a chain: each atom shares one variable with the previous.
		var lastVar string
		for ai := 0; ai < nAtoms; ai++ {
			rel := rels[rng.Intn(len(rels))]
			args := make([]cq.Term, rel.Arity())
			sharePos := -1
			if lastVar != "" {
				sharePos = rng.Intn(rel.Arity())
			}
			for p := 0; p < rel.Arity(); p++ {
				if p == sharePos {
					args[p] = cq.Var(lastVar)
					continue
				}
				args[p] = cq.Var(freshVar())
			}
			if ai == 0 && rng.Float64() < cfg.StartProb {
				// Anchor: pin one attribute with a known constant.
				p := rng.Intn(rel.Arity())
				if cands := consts[rel.Attrs[p]]; len(cands) > 0 {
					args[p] = cands[rng.Intn(len(cands))]
				}
			}
			// Next link variable: one of this atom's variable args.
			varArgs := varPositions(args)
			if len(varArgs) > 0 {
				lastVar = args[varArgs[rng.Intn(len(varArgs))]].V
			}
			q.Atoms = append(q.Atoms, cq.Atom{Rel: rel.Name, Args: args})
		}
		// Free variables: drawn from variables that actually occur in atoms
		// (anchoring may have replaced candidates with constants).
		var allVars []string
		for v := range q.AtomVars() {
			allVars = append(allVars, v)
		}
		sort.Strings(allVars)
		nFree := 1 + rng.Intn(cfg.FreeVars)
		for f := 0; f < nFree && f < len(allVars); f++ {
			q.Free = append(q.Free, allVars[rng.Intn(len(allVars))])
		}
		q.Free = dedupStrings(q.Free)
		if err := q.Validate(s); err != nil {
			return nil, fmt.Errorf("workload: generated invalid query: %w", err)
		}
		out = append(out, q)
	}
	return out, nil
}

func varPositions(args []cq.Term) []int {
	var out []int
	for i, t := range args {
		if t.IsVar() {
			out = append(out, i)
		}
	}
	return out
}

func dedupStrings(xs []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
