// Package workload generates the synthetic datasets and query workloads
// that stand in for the paper's experimental data (UK road accidents
// 1979-2005 [1], Facebook-style social graphs [16], and e-commerce
// catalogs), plus the random CQ workloads behind the Introduction's
// "77% of conjunctive queries are boundedly evaluable" measurement.
//
// Generators are deterministic given a seed, and every generated instance
// satisfies its access schema BY CONSTRUCTION with the same bounds the
// paper reports (≤ 610 accidents/day, ≤ 192 casualties/accident, keys on
// aid and vid) — bounded evaluation's cost model depends only on Q and the
// constants in A, so constraint-faithful synthetic data preserves the
// measured phenomenon.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value                          { return value.NewInt(i) }
func sv(s string) value.Value                         { return value.NewString(s) }
func attrs(as ...schema.Attribute) []schema.Attribute { return as }

// Districts are the district names used by the accident generator; the
// first one is the Example 1.1 target.
var Districts = []string{
	"Queen's Park", "Soho", "Camden", "Leith", "Morningside",
	"Hackney", "Brixton", "Didsbury", "Jericho", "Heaton",
}

// AccidentConfig sizes the UK-accidents-style dataset.
type AccidentConfig struct {
	// Days of data; day 0 is "1/5/2005" (the Example 1.1 date).
	Days int
	// AccidentsPerDay per day (must be ≤ 610 to honor ψ1).
	AccidentsPerDay int
	// MaxVehicles per accident (≤ 192 for ψ2); the generator draws
	// 1..MaxVehicles with mean ≈ 2, matching the paper's observation that
	// "accidents involved two vehicles on average".
	MaxVehicles int
	Seed        int64
}

// DefaultAccidentConfig returns a laptop-sized configuration.
func DefaultAccidentConfig() AccidentConfig {
	return AccidentConfig{Days: 50, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1}
}

// Accidents is a generated accident dataset with its schema and the
// Example 1.1 access schema ψ1–ψ4.
type Accidents struct {
	Schema   *schema.Schema
	Access   *access.Schema
	Instance *data.Instance
}

// AccidentSchema returns the three-relation schema of Example 1.1.
func AccidentSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("Accident", "aid", "district", "date"),
		schema.MustRelation("Casualty", "cid", "aid", "class", "vid"),
		schema.MustRelation("Vehicle", "vid", "driver", "age"),
	)
}

// AccidentConstraints returns ψ1–ψ4 of Example 1.1.
func AccidentConstraints() *access.Schema {
	return access.NewSchema(
		access.NewConstraint("Accident", attrs("date"), attrs("aid"), 610),
		access.NewConstraint("Casualty", attrs("aid"), attrs("vid"), 192),
		access.NewConstraint("Accident", attrs("aid"), attrs("district", "date"), 1),
		access.NewConstraint("Vehicle", attrs("vid"), attrs("driver", "age"), 1),
	)
}

// DateName renders day i as a date string; day 0 is the Example 1.1 date.
func DateName(i int) string {
	if i == 0 {
		return "1/5/2005"
	}
	return fmt.Sprintf("%d/%d/%d", 1+i%28, 1+(i/28)%12, 1979+i/336)
}

// GenerateAccidents builds the dataset.
func GenerateAccidents(cfg AccidentConfig) (*Accidents, error) {
	if cfg.AccidentsPerDay > 610 {
		return nil, fmt.Errorf("workload: AccidentsPerDay %d violates ψ1 (≤ 610)", cfg.AccidentsPerDay)
	}
	if cfg.MaxVehicles > 192 {
		return nil, fmt.Errorf("workload: MaxVehicles %d violates ψ2 (≤ 192)", cfg.MaxVehicles)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := AccidentSchema()
	d := data.NewInstance(s)
	aid, cid, vid := int64(0), int64(0), int64(0)
	for day := 0; day < cfg.Days; day++ {
		date := sv(DateName(day))
		for a := 0; a < cfg.AccidentsPerDay; a++ {
			aid++
			district := sv(Districts[rng.Intn(len(Districts))])
			d.MustInsert("Accident", iv(aid), district, date)
			// Mean ≈ 2 vehicles: geometric-ish draw capped at MaxVehicles.
			n := 1
			for n < cfg.MaxVehicles && rng.Float64() < 0.5 {
				n++
			}
			for v := 0; v < n; v++ {
				cid++
				vid++
				d.MustInsert("Casualty", iv(cid), iv(aid), iv(int64(1+rng.Intn(3))), iv(vid))
				d.MustInsert("Vehicle", iv(vid), sv(driverName(rng)), iv(int64(17+rng.Intn(70))))
			}
		}
	}
	return &Accidents{Schema: s, Access: AccidentConstraints(), Instance: d}, nil
}

func driverName(rng *rand.Rand) string {
	first := []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	return fmt.Sprintf("%s-%d", first[rng.Intn(len(first))], rng.Intn(10000))
}

// Q0 is the Example 1.1 query: ages of drivers in accidents in Queen's
// Park on 1/5/2005.
func Q0() *cq.CQ {
	return &cq.CQ{
		Label: "Q0", Free: []string{"xa"},
		Atoms: []cq.Atom{
			cq.NewAtom("Accident", cq.Var("aid"), cq.Const(sv("Queen's Park")), cq.Const(sv("1/5/2005"))),
			cq.NewAtom("Casualty", cq.Var("cid"), cq.Var("aid"), cq.Var("class"), cq.Var("vid")),
			cq.NewAtom("Vehicle", cq.Var("vid"), cq.Var("dri"), cq.Var("xa")),
		},
	}
}

// Q51 is Example 5.1's parameterized query (parameters date, district).
func Q51() (*cq.CQ, []string) {
	q := &cq.CQ{
		Label: "Q51", Free: []string{"xa"},
		Atoms: []cq.Atom{
			cq.NewAtom("Accident", cq.Var("aid"), cq.Var("district"), cq.Var("date")),
			cq.NewAtom("Casualty", cq.Var("cid"), cq.Var("aid"), cq.Var("class"), cq.Var("vid")),
			cq.NewAtom("Vehicle", cq.Var("vid"), cq.Var("dri"), cq.Var("xa")),
		},
	}
	return q, []string{"date", "district"}
}

// SocialConfig sizes the relational social graph (the Graph Search
// workload of the Introduction).
type SocialConfig struct {
	People int
	// MaxFriends bounds out-degree (the access constraint's N).
	MaxFriends int
	// MaxLikes bounds interests per person.
	MaxLikes int
	Seed     int64
}

// DefaultSocialConfig returns a laptop-sized configuration.
func DefaultSocialConfig() SocialConfig {
	return SocialConfig{People: 2000, MaxFriends: 50, MaxLikes: 10, Seed: 2}
}

// Cities and Topics are the attribute value pools.
var (
	Cities = []string{"NYC", "Edinburgh", "Antwerp", "Beijing", "SF", "London"}
	Topics = []string{"cycling", "chess", "jazz", "databases", "hiking", "tea"}
)

// Social is a generated social workload.
type Social struct {
	Schema   *schema.Schema
	Access   *access.Schema
	Instance *data.Instance
}

// SocialSchema returns Person/Friend/Likes.
func SocialSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("Person", "pid", "name", "city"),
		schema.MustRelation("Friend", "pid", "fid"),
		schema.MustRelation("Likes", "pid", "topic"),
	)
}

// SocialConstraints returns the degree-bounded access schema: person id is
// a key, friend lists and interest lists are bounded.
func SocialConstraints(maxFriends, maxLikes int) *access.Schema {
	return access.NewSchema(
		access.NewConstraint("Person", attrs("pid"), attrs("name", "city"), 1),
		access.NewConstraint("Friend", attrs("pid"), attrs("fid"), maxFriends),
		access.NewConstraint("Likes", attrs("pid"), attrs("topic"), maxLikes),
	)
}

// GenerateSocial builds the social dataset: a preferential-attachment-ish
// friendship graph with hard degree caps.
func GenerateSocial(cfg SocialConfig) (*Social, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := SocialSchema()
	d := data.NewInstance(s)
	deg := make([]int, cfg.People+1)
	for p := 1; p <= cfg.People; p++ {
		d.MustInsert("Person", iv(int64(p)), sv(fmt.Sprintf("user%d", p)), sv(Cities[rng.Intn(len(Cities))]))
		nLikes := 1 + rng.Intn(cfg.MaxLikes)
		for l := 0; l < nLikes; l++ {
			d.MustInsert("Likes", iv(int64(p)), sv(Topics[rng.Intn(len(Topics))]))
		}
		nFriends := 1 + rng.Intn(cfg.MaxFriends)
		for f := 0; f < nFriends && deg[p] < cfg.MaxFriends; f++ {
			// Prefer low ids (older nodes): a crude power-law skew.
			q := 1 + rng.Intn(1+rng.Intn(cfg.People))
			if q == p {
				continue
			}
			d.MustInsert("Friend", iv(int64(p)), iv(int64(q)))
			deg[p]++
		}
	}
	return &Social{Schema: s, Access: SocialConstraints(cfg.MaxFriends, cfg.MaxLikes), Instance: d}, nil
}

// GraphSearchQuery is the Introduction's personalized search: "find me all
// my friends in city c who like topic t", parameterized by me.
func GraphSearchQuery(me int64, city, topic string) *cq.CQ {
	return &cq.CQ{
		Label: "GraphSearch", Free: []string{"f"},
		Atoms: []cq.Atom{
			cq.NewAtom("Friend", cq.Var("me"), cq.Var("f")),
			cq.NewAtom("Person", cq.Var("f"), cq.Var("n"), cq.Const(sv(city))),
			cq.NewAtom("Likes", cq.Var("f"), cq.Const(sv(topic))),
		},
		Eqs: []cq.Eq{{L: cq.Var("me"), R: cq.Const(iv(me))}},
	}
}

// PatternQueries returns a family of graph-pattern-style CQs over the
// social schema, labeled, for the E6 coverage-rate experiment: stars,
// paths and triangle-ish patterns anchored (or not) at a person constant.
func PatternQueries(me int64) []*cq.CQ {
	anchor := cq.Eq{L: cq.Var("me"), R: cq.Const(iv(me))}
	return []*cq.CQ{
		// Anchored 1-hop star.
		{Label: "star1", Free: []string{"f"},
			Atoms: []cq.Atom{cq.NewAtom("Friend", cq.Var("me"), cq.Var("f"))},
			Eqs:   []cq.Eq{anchor}},
		// Anchored 2-hop path.
		{Label: "path2", Free: []string{"g"},
			Atoms: []cq.Atom{
				cq.NewAtom("Friend", cq.Var("me"), cq.Var("f")),
				cq.NewAtom("Friend", cq.Var("f"), cq.Var("g")),
			},
			Eqs: []cq.Eq{anchor}},
		// Anchored friends-in-city.
		{Label: "cityFriends", Free: []string{"f", "c"},
			Atoms: []cq.Atom{
				cq.NewAtom("Friend", cq.Var("me"), cq.Var("f")),
				cq.NewAtom("Person", cq.Var("f"), cq.Var("n"), cq.Var("c")),
			},
			Eqs: []cq.Eq{anchor}},
		// Anchored common-interest triangle.
		{Label: "triangle", Free: []string{"f", "g"},
			Atoms: []cq.Atom{
				cq.NewAtom("Friend", cq.Var("me"), cq.Var("f")),
				cq.NewAtom("Friend", cq.Var("f"), cq.Var("g")),
				cq.NewAtom("Friend", cq.Var("me"), cq.Var("g")),
			},
			Eqs: []cq.Eq{anchor}},
		// UNANCHORED pair (not boundedly evaluable: no constant seed).
		{Label: "allPairs", Free: []string{"p", "f"},
			Atoms: []cq.Atom{cq.NewAtom("Friend", cq.Var("p"), cq.Var("f"))}},
		// Unanchored city census.
		{Label: "census", Free: []string{"p"},
			Atoms: []cq.Atom{cq.NewAtom("Person", cq.Var("p"), cq.Var("n"), cq.Const(sv("NYC")))}},
	}
}
