package workload

import (
	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/schema"
)

// Demo bundles a generated demo workload with its catalog of named
// queries — the ONE definition of what "-demo accidents|social" means,
// shared by cmd/bequery and cmd/beserve so the two binaries cannot
// drift apart (the server's wire output is pinned byte-identical to the
// CLI's, which only holds if they serve the same data and queries).
type Demo struct {
	Schema   *schema.Schema
	Access   *access.Schema
	Instance *data.Instance
	// Queries are the named queries the demo serves; Params carries each
	// query's declared parameter list (for explain/specialize).
	Queries map[string]*cq.CQ
	Params  map[string][]string
}

// AccidentsDemo builds the accidents demo at the CLI's fixed
// generation parameters: days of data, 40 accidents/day, ≤ 6 vehicles,
// seed 1, with Q0 and the parameterized Q51.
func AccidentsDemo(days int) (*Demo, error) {
	acc, err := GenerateAccidents(AccidentConfig{
		Days: days, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	q51, ps := Q51()
	return &Demo{
		Schema:   acc.Schema,
		Access:   acc.Access,
		Instance: acc.Instance,
		Queries:  map[string]*cq.CQ{"Q0": Q0(), "Q51": q51},
		Params:   map[string][]string{"Q51": ps},
	}, nil
}

// SocialDemo builds the social demo at the CLI's fixed generation
// parameters: people, ≤ 50 friends, ≤ 10 likes, seed 2, with the
// personalized GraphSearch and the graph-pattern family anchored at
// person 1.
func SocialDemo(people int) (*Demo, error) {
	soc, err := GenerateSocial(SocialConfig{
		People: people, MaxFriends: 50, MaxLikes: 10, Seed: 2,
	})
	if err != nil {
		return nil, err
	}
	queries := map[string]*cq.CQ{"GraphSearch": GraphSearchQuery(1, "NYC", "cycling")}
	for _, q := range PatternQueries(1) {
		queries[q.Label] = q
	}
	return &Demo{
		Schema:   soc.Schema,
		Access:   soc.Access,
		Instance: soc.Instance,
		Queries:  queries,
		Params:   map[string][]string{},
	}, nil
}
