package workload

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/value"
)

func TestGenerateAccidentsSatisfiesPsi(t *testing.T) {
	acc, err := GenerateAccidents(AccidentConfig{Days: 5, AccidentsPerDay: 20, MaxVehicles: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := access.Satisfies(acc.Access, acc.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("generated accidents must satisfy ψ1–ψ4")
	}
	if acc.Instance.Relation("Accident").Len() != 100 {
		t.Errorf("accidents = %d, want 100", acc.Instance.Relation("Accident").Len())
	}
	// Vehicles and casualties are 1:1 in the generator.
	if acc.Instance.Relation("Vehicle").Len() != acc.Instance.Relation("Casualty").Len() {
		t.Error("vehicle/casualty counts should match")
	}
}

func TestGenerateAccidentsRejectsBadConfig(t *testing.T) {
	if _, err := GenerateAccidents(AccidentConfig{Days: 1, AccidentsPerDay: 700, MaxVehicles: 2}); err == nil {
		t.Error("AccidentsPerDay > 610 must be rejected")
	}
	if _, err := GenerateAccidents(AccidentConfig{Days: 1, AccidentsPerDay: 10, MaxVehicles: 500}); err == nil {
		t.Error("MaxVehicles > 192 must be rejected")
	}
}

func TestGenerateAccidentsDeterministic(t *testing.T) {
	cfg := AccidentConfig{Days: 3, AccidentsPerDay: 10, MaxVehicles: 3, Seed: 7}
	a1, err := GenerateAccidents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := GenerateAccidents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Instance.Size() != a2.Instance.Size() {
		t.Error("same seed must give same size")
	}
}

func TestQ0CoveredUnderGeneratedConstraints(t *testing.T) {
	acc, err := GenerateAccidents(DefaultAccidentConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cover.Check(Q0(), acc.Access, acc.Schema, cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("Q0 must be covered:\n%s", res.Explain())
	}
}

func TestDateNameStable(t *testing.T) {
	if DateName(0) != "1/5/2005" {
		t.Errorf("day 0 = %q, want Example 1.1's date", DateName(0))
	}
	if DateName(1) == DateName(2) {
		t.Error("distinct days must have distinct names")
	}
}

func TestGenerateSocialSatisfiesConstraints(t *testing.T) {
	soc, err := GenerateSocial(SocialConfig{People: 300, MaxFriends: 12, MaxLikes: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := access.Satisfies(soc.Access, soc.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("generated social graph must satisfy its degree constraints")
	}
}

func TestGraphSearchQueryCovered(t *testing.T) {
	soc, err := GenerateSocial(DefaultSocialConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := GraphSearchQuery(42, "NYC", "cycling")
	res, err := cover.Check(q, soc.Access, soc.Schema, cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("the personalized Graph Search query must be covered:\n%s", res.Explain())
	}
}

func TestPatternQueriesMix(t *testing.T) {
	soc, err := GenerateSocial(SocialConfig{People: 100, MaxFriends: 8, MaxLikes: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	qs := PatternQueries(1)
	covered := 0
	for _, q := range qs {
		res, err := cover.Check(q, soc.Access, soc.Schema, cover.Options{})
		if err != nil {
			t.Fatalf("%s: %v", q.Label, err)
		}
		if res.Covered {
			covered++
		}
	}
	// Anchored patterns are covered; unanchored ones are not.
	if covered < 4 {
		t.Errorf("at least the 4 anchored patterns should be covered, got %d", covered)
	}
	if covered == len(qs) {
		t.Error("the unanchored patterns must NOT be covered")
	}
}

func TestRandomCQsValidAndMixed(t *testing.T) {
	s := AccidentSchema()
	consts := map[schema.Attribute][]cq.Term{
		"date":     {cq.Const(value.NewString("1/5/2005"))},
		"district": {cq.Const(value.NewString("Queen's Park"))},
		"aid":      {cq.Const(value.NewInt(5))},
		"vid":      {cq.Const(value.NewInt(7))},
	}
	qs, err := RandomCQs(s, RandomCQConfig{Queries: 60, MaxAtoms: 3, StartProb: 0.8, FreeVars: 2, Seed: 11}, consts)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 60 {
		t.Fatalf("generated %d queries", len(qs))
	}
	a := AccidentConstraints()
	covered := 0
	for _, q := range qs {
		res, err := cover.Check(q, a, s, cover.Options{})
		if err != nil {
			t.Fatalf("%s: %v", q.Label, err)
		}
		if res.Covered {
			covered++
		}
	}
	// The workload must be a genuine mix: some covered, some not.
	if covered == 0 || covered == len(qs) {
		t.Errorf("coverage mix degenerate: %d/%d", covered, len(qs))
	}
}

func TestRandomCQsDeterministic(t *testing.T) {
	s := AccidentSchema()
	cfg := RandomCQConfig{Queries: 10, MaxAtoms: 3, StartProb: 0.5, FreeVars: 2, Seed: 6}
	q1, err := RandomCQs(s, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := RandomCQs(s, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q1 {
		if q1[i].String() != q2[i].String() {
			t.Fatalf("query %d differs across runs with same seed", i)
		}
	}
}
