// Update-stream generators: deterministic sequences of live.Delta batches
// that keep an instance satisfying its access schema BY CONSTRUCTION,
// mirroring how the datasets themselves are generated. They model the
// ROADMAP's serving story — heavy read traffic with a continuous trickle
// of writes — for the mixed read/write experiments and the live-update
// property tests.

package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/live"
)

// AccidentStreamConfig sizes the accident update stream.
type AccidentStreamConfig struct {
	// InsertAccidents is how many new accidents (each with its casualty
	// and vehicle rows) a batch inserts.
	InsertAccidents int
	// DeleteAccidents is how many previously streamed accidents a batch
	// retires (cascading to their casualties and vehicles). Batches
	// before enough accidents have been streamed delete fewer.
	DeleteAccidents int
	Seed            int64
}

// DefaultAccidentStreamConfig returns a small mixed insert/delete batch.
func DefaultAccidentStreamConfig() AccidentStreamConfig {
	return AccidentStreamConfig{InsertAccidents: 5, DeleteAccidents: 2, Seed: 7}
}

// accidentRecord remembers one streamed accident so it can be retired.
type accidentRecord struct {
	aid      int64
	district string
	date     string
	// casualties and vehicles hold (cid, class, vid) and (vid, driver, age).
	casualties [][3]int64
	drivers    map[int64]string
}

// AccidentStream emits constraint-preserving deltas over an accident
// dataset: inserts use fresh days (so ψ1's per-date group is bounded by
// the batch size), fresh aid/cid/vid identifiers (so the key constraints
// ψ3/ψ4 hold trivially), and at most 192 casualties per accident (ψ2);
// deletes retire accidents this stream inserted earlier, cascading to
// their casualty and vehicle rows. Streams are deterministic given the
// config.
type AccidentStream struct {
	cfg AccidentStreamConfig
	rng *rand.Rand

	day             int
	aid, cid, vid   int64
	perDay          map[string]int
	liveRecs        []*accidentRecord
	maxVehicles     int
	accidentsPerDay int
}

// NewAccidentStream builds a stream continuing acc's identifier space.
// The generator's counters start beyond the largest aid/cid/vid and the
// last generated day present in acc, so streamed tuples never collide
// with loaded ones.
func NewAccidentStream(acc *Accidents, cfg AccidentStreamConfig) (*AccidentStream, error) {
	if cfg.InsertAccidents < 1 {
		return nil, fmt.Errorf("workload: stream needs InsertAccidents >= 1")
	}
	s := &AccidentStream{
		cfg:             cfg,
		rng:             rand.New(rand.NewSource(cfg.Seed)),
		perDay:          make(map[string]int),
		maxVehicles:     6,
		accidentsPerDay: 610,
	}
	accR := acc.Instance.Relation("Accident")
	for ri := 0; ri < accR.Len(); ri++ {
		if id := accR.ValueAt(ri, 0).Int(); id > s.aid {
			s.aid = id
		}
		s.perDay[accR.ValueAt(ri, 2).Str()]++
	}
	casR := acc.Instance.Relation("Casualty")
	for ri := 0; ri < casR.Len(); ri++ {
		if id := casR.ValueAt(ri, 0).Int(); id > s.cid {
			s.cid = id
		}
	}
	vehR := acc.Instance.Relation("Vehicle")
	for ri := 0; ri < vehR.Len(); ri++ {
		if id := vehR.ValueAt(ri, 0).Int(); id > s.vid {
			s.vid = id
		}
	}
	// Start on a fresh day: DateName is injective in the day index, so
	// scanning for the first unused date keeps ψ1 exact.
	for s.perDay[DateName(s.day)] > 0 {
		s.day++
	}
	return s, nil
}

// Next emits the next delta of the stream. The batch inserts
// cfg.InsertAccidents new accidents (with casualties and vehicles) and
// retires up to cfg.DeleteAccidents previously streamed ones; it never
// violates ψ1–ψ4 when applied in order.
func (s *AccidentStream) Next() *live.Delta {
	d := live.NewDelta(AccidentSchema())
	// Retire first: delete ops run before inserts inside live.Apply too,
	// so the delta file reads in execution order.
	nDel := s.cfg.DeleteAccidents
	if nDel > len(s.liveRecs) {
		nDel = len(s.liveRecs)
	}
	for i := 0; i < nDel; i++ {
		k := s.rng.Intn(len(s.liveRecs))
		rec := s.liveRecs[k]
		s.liveRecs[k] = s.liveRecs[len(s.liveRecs)-1]
		s.liveRecs = s.liveRecs[:len(s.liveRecs)-1]
		d.MustDelete("Accident", iv(rec.aid), sv(rec.district), sv(rec.date))
		s.perDay[rec.date]--
		for _, c := range rec.casualties {
			d.MustDelete("Casualty", iv(c[0]), iv(rec.aid), iv(c[1]), iv(c[2]))
			d.MustDelete("Vehicle", iv(c[2]), sv(rec.drivers[c[2]]), iv(ageOf(c[2])))
		}
	}
	for i := 0; i < s.cfg.InsertAccidents; i++ {
		date := DateName(s.day)
		if s.perDay[date] >= s.accidentsPerDay {
			s.day++
			date = DateName(s.day)
		}
		s.perDay[date]++
		s.aid++
		rec := &accidentRecord{
			aid:      s.aid,
			district: Districts[s.rng.Intn(len(Districts))],
			date:     date,
			drivers:  make(map[int64]string),
		}
		d.MustInsert("Accident", iv(rec.aid), sv(rec.district), sv(rec.date))
		n := 1
		for n < s.maxVehicles && s.rng.Float64() < 0.5 {
			n++
		}
		for v := 0; v < n; v++ {
			s.cid++
			s.vid++
			class := int64(1 + s.rng.Intn(3))
			rec.casualties = append(rec.casualties, [3]int64{s.cid, class, s.vid})
			rec.drivers[s.vid] = driverName(s.rng)
			d.MustInsert("Casualty", iv(s.cid), iv(rec.aid), iv(class), iv(s.vid))
			d.MustInsert("Vehicle", iv(s.vid), sv(rec.drivers[s.vid]), iv(ageOf(s.vid)))
		}
		s.liveRecs = append(s.liveRecs, rec)
	}
	return d
}

// ageOf derives a driver age from the vehicle id, so delete batches can
// reconstruct the exact Vehicle tuple without storing it.
func ageOf(vid int64) int64 { return 17 + vid%70 }

// SocialStreamConfig sizes the social update stream.
type SocialStreamConfig struct {
	// InsertPeople is how many new people (with friend and like edges) a
	// batch inserts; DeletePeople how many previously streamed people it
	// removes again.
	InsertPeople, DeletePeople int
	// MaxFriends and MaxLikes cap the new person's out-edges; they must
	// not exceed the bounds the engine's access schema was built with.
	MaxFriends, MaxLikes int
	// People is the id space of the base instance (streamed friends point
	// into it).
	People int
	Seed   int64
}

// personRecord remembers one streamed person for deletion.
type personRecord struct {
	pid     int64
	friends []int64
	likes   []string
}

// SocialStream emits degree-bounded deltas over a social dataset: new
// people with fresh pids (keeping the Person key constraint), out-degree
// at most MaxFriends and interests at most MaxLikes.
type SocialStream struct {
	cfg  SocialStreamConfig
	rng  *rand.Rand
	pid  int64
	recs []*personRecord
}

// NewSocialStream builds a stream continuing soc's identifier space.
func NewSocialStream(soc *Social, cfg SocialStreamConfig) (*SocialStream, error) {
	if cfg.InsertPeople < 1 || cfg.MaxFriends < 1 || cfg.MaxLikes < 1 {
		return nil, fmt.Errorf("workload: stream needs InsertPeople, MaxFriends, MaxLikes >= 1")
	}
	s := &SocialStream{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	perR := soc.Instance.Relation("Person")
	for ri := 0; ri < perR.Len(); ri++ {
		if id := perR.ValueAt(ri, 0).Int(); id > s.pid {
			s.pid = id
		}
	}
	return s, nil
}

// Next emits the next delta of the stream.
func (s *SocialStream) Next() *live.Delta {
	d := live.NewDelta(SocialSchema())
	nDel := s.cfg.DeletePeople
	if nDel > len(s.recs) {
		nDel = len(s.recs)
	}
	for i := 0; i < nDel; i++ {
		k := s.rng.Intn(len(s.recs))
		rec := s.recs[k]
		s.recs[k] = s.recs[len(s.recs)-1]
		s.recs = s.recs[:len(s.recs)-1]
		d.MustDelete("Person", iv(rec.pid), sv(fmt.Sprintf("user%d", rec.pid)), sv(cityOf(rec.pid)))
		for _, f := range rec.friends {
			d.MustDelete("Friend", iv(rec.pid), iv(f))
		}
		for _, topic := range rec.likes {
			d.MustDelete("Likes", iv(rec.pid), sv(topic))
		}
	}
	for i := 0; i < s.cfg.InsertPeople; i++ {
		s.pid++
		rec := &personRecord{pid: s.pid}
		d.MustInsert("Person", iv(rec.pid), sv(fmt.Sprintf("user%d", rec.pid)), sv(cityOf(rec.pid)))
		nLikes := 1 + s.rng.Intn(s.cfg.MaxLikes)
		seenTopic := make(map[string]bool)
		for l := 0; l < nLikes; l++ {
			topic := Topics[s.rng.Intn(len(Topics))]
			if seenTopic[topic] {
				continue
			}
			seenTopic[topic] = true
			rec.likes = append(rec.likes, topic)
			d.MustInsert("Likes", iv(rec.pid), sv(topic))
		}
		nFriends := 1 + s.rng.Intn(s.cfg.MaxFriends)
		seenFriend := make(map[int64]bool)
		for f := 0; f < nFriends; f++ {
			q := int64(1 + s.rng.Intn(maxInt(s.cfg.People, 1)))
			if q == rec.pid || seenFriend[q] {
				continue
			}
			seenFriend[q] = true
			rec.friends = append(rec.friends, q)
			d.MustInsert("Friend", iv(rec.pid), iv(q))
		}
		s.recs = append(s.recs, rec)
	}
	return d
}

// cityOf derives a streamed person's city from their pid, so deletes can
// reconstruct the Person tuple without storing it.
func cityOf(pid int64) string { return Cities[int(pid)%len(Cities)] }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
