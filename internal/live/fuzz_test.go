package live

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/schema"
)

// FuzzReadDeltaTSV feeds arbitrary bytes to the delta TSV reader. The
// invariants:
//
//  1. ReadDeltaTSV never panics — malformed input errors.
//  2. Round-trip: an accepted delta written back with WriteDeltaTSV and
//     re-read yields the identical serialized form (the codec is a
//     bijection on its accepted set modulo the canonical op/relation
//     ordering WriteDeltaTSV emits).
func FuzzReadDeltaTSV(f *testing.F) {
	f.Add("+\tR\t1\tabc\n-\tR\t2\ts:tab\\there\n")
	f.Add("+\tS\t3\n# comment\n\n-\tS\t4\n")
	f.Add("+\tR\t1\n")                // bad arity
	f.Add("*\tR\t1\tx\n")             // bad op
	f.Add("+\tGhost\t1\tx\n")         // unknown relation
	f.Add("+\tR\t1\ts:bad\\escape\n") // bad escape
	f.Add("justonecolumn\n")          // too few cells
	f.Add("+\tR\t\xff\xfe\t\x00\n")   // non-UTF8 cells
	f.Add(strings.Repeat("+\tS\t9\n", 50))
	s := schema.MustNew(
		schema.MustRelation("R", "a", "b"),
		schema.MustRelation("S", "k"),
	)
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadDeltaTSV(strings.NewReader(input), s)
		if err != nil {
			return // rejected cleanly: that is the contract
		}
		var first bytes.Buffer
		if err := WriteDeltaTSV(&first, d); err != nil {
			t.Fatalf("write of accepted delta failed: %v", err)
		}
		d2, err := ReadDeltaTSV(bytes.NewReader(first.Bytes()), s)
		if err != nil {
			t.Fatalf("re-read of written delta failed: %v\nwritten:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := WriteDeltaTSV(&second, d2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round-trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
		if d2.Len() != d.Len() {
			t.Fatalf("op count changed across round-trip: %d -> %d", d.Len(), d2.Len())
		}
	})
}
