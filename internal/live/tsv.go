package live

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/load"
	"repro/internal/schema"
	"repro/internal/value"
)

// Delta TSV format: one operation per line,
//
//	+<TAB><Relation><TAB><v1><TAB>...<TAB><vk>    insert
//	-<TAB><Relation><TAB><v1><TAB>...<TAB><vk>    delete
//
// with cells encoded exactly like instance TSV files (load.EncodeValue):
// digit-only cells are integers, everything else strings, "s:"-prefixed
// cells force strings with \t, \n, \\ escapes. Blank lines and lines
// starting with # are skipped.

// ReadDeltaTSV parses a delta document against s.
func ReadDeltaTSV(r io.Reader, s *schema.Schema) (*Delta, error) {
	d := NewDelta(s)
	sc := bufio.NewScanner(r)
	// Start small and let the scanner grow toward the 16MB line cap:
	// this runs once per WAL record on recovery and once per request on
	// /v1/apply, and eagerly zeroing a 1MB buffer per call dominated the
	// WAL replay profile.
	sc.Buffer(make([]byte, 64<<10), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cells := strings.Split(line, "\t")
		if len(cells) < 2 {
			return nil, fmt.Errorf("live: delta line %d: want <op>\\t<relation>\\t<values...>", lineNo)
		}
		op, rel := cells[0], cells[1]
		vals := make([]value.Value, len(cells)-2)
		for i, c := range cells[2:] {
			v, err := load.DecodeValue(c)
			if err != nil {
				return nil, fmt.Errorf("live: delta line %d: %w", lineNo, err)
			}
			vals[i] = v
		}
		var err error
		switch op {
		case "+":
			err = d.Insert(rel, vals...)
		case "-":
			err = d.Delete(rel, vals...)
		default:
			err = fmt.Errorf("live: unknown op %q (want + or -)", op)
		}
		if err != nil {
			return nil, fmt.Errorf("live: delta line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	return d, nil
}

// LoadDelta reads a delta TSV file from disk.
func LoadDelta(path string, s *schema.Schema) (*Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	defer f.Close()
	return ReadDeltaTSV(f, s)
}

// WriteDeltaTSV renders d in the delta TSV format, relations in
// first-touch order, deletes before inserts per relation (the order Apply
// uses).
func WriteDeltaTSV(w io.Writer, d *Delta) error {
	bw := bufio.NewWriter(w)
	for _, name := range d.order {
		rd := d.rels[name]
		for _, t := range rd.deletes {
			if err := writeOp(bw, "-", name, t); err != nil {
				return err
			}
		}
		for _, t := range rd.inserts {
			if err := writeOp(bw, "+", name, t); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeOp(w *bufio.Writer, op, rel string, t []value.Value) error {
	cells := make([]string, 0, len(t)+2)
	cells = append(cells, op, rel)
	for _, v := range t {
		cells = append(cells, load.EncodeValue(v))
	}
	_, err := w.WriteString(strings.Join(cells, "\t") + "\n")
	return err
}
