// Package live implements the engine's update subsystem: deltas of
// inserts and deletes applied with snapshot isolation and incremental
// index maintenance.
//
// A Delta batches tuple-level inserts and deletes per relation. Apply
// materializes a NEW instance/index pair from an existing one without
// mutating it: touched relations and their indices are cloned
// copy-on-write and maintained incrementally (index.Insert/Delete), while
// untouched ones are shared. Readers of the old pair therefore keep a
// consistent pre-delta view for as long as they hold it — the engine
// publishes the new pair with an atomic pointer swap, never stopping the
// world.
//
// Apply also validates the delta against the access schema: a batch whose
// net effect would make some group |D_Y(X = ā)| exceed its constraint's
// cardinality bound is rejected with the full violation list and NO
// visible effect. This keeps D |= A an invariant of the serving engine,
// which is what makes every cached bounded plan remain valid across
// updates (the paper's bounds are data-independent given A and, for
// general-form constraints, the |D| size hint).
package live

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/value"
)

// Delta is a batch of tuple-level updates, grouped per relation. The zero
// Delta is not usable; build one with NewDelta. A Delta is not safe for
// concurrent mutation.
type Delta struct {
	schema *schema.Schema
	rels   map[string]*relDelta
	order  []string // relations in first-touch order, for determinism
}

type relDelta struct {
	inserts []data.Tuple
	deletes []data.Tuple
}

// NewDelta returns an empty delta over s. Insert and Delete validate
// relation names and arities against s immediately, so a malformed batch
// fails at build time, not apply time.
func NewDelta(s *schema.Schema) *Delta {
	return &Delta{schema: s, rels: make(map[string]*relDelta)}
}

func (d *Delta) rel(name string) (*relDelta, error) {
	if _, ok := d.schema.Relation(name); !ok {
		return nil, fmt.Errorf("live: delta references unknown relation %s", name)
	}
	rd := d.rels[name]
	if rd == nil {
		rd = &relDelta{}
		d.rels[name] = rd
		d.order = append(d.order, name)
	}
	return rd, nil
}

func (d *Delta) tuple(rel string, vals []value.Value) (data.Tuple, error) {
	rs, _ := d.schema.Relation(rel)
	if len(vals) != rs.Arity() {
		return nil, fmt.Errorf("live: relation %s expects arity %d, got %d", rel, rs.Arity(), len(vals))
	}
	return data.Tuple(vals).Clone(), nil
}

// Insert adds an insertion of (vals...) into rel to the batch.
func (d *Delta) Insert(rel string, vals ...value.Value) error {
	rd, err := d.rel(rel)
	if err != nil {
		return err
	}
	t, err := d.tuple(rel, vals)
	if err != nil {
		return err
	}
	rd.inserts = append(rd.inserts, t)
	return nil
}

// Delete adds a deletion of (vals...) from rel to the batch.
func (d *Delta) Delete(rel string, vals ...value.Value) error {
	rd, err := d.rel(rel)
	if err != nil {
		return err
	}
	t, err := d.tuple(rel, vals)
	if err != nil {
		return err
	}
	rd.deletes = append(rd.deletes, t)
	return nil
}

// MustInsert is Insert that panics on error; for fixtures and generators
// whose schemas are correct by construction.
func (d *Delta) MustInsert(rel string, vals ...value.Value) {
	if err := d.Insert(rel, vals...); err != nil {
		panic(err)
	}
}

// MustDelete is Delete that panics on error.
func (d *Delta) MustDelete(rel string, vals ...value.Value) {
	if err := d.Delete(rel, vals...); err != nil {
		panic(err)
	}
}

// Len returns the total number of batched operations (inserts + deletes).
func (d *Delta) Len() int {
	n := 0
	for _, rd := range d.rels {
		n += len(rd.inserts) + len(rd.deletes)
	}
	return n
}

// Relations returns the names of the touched relations, sorted.
func (d *Delta) Relations() []string {
	out := append([]string(nil), d.order...)
	sort.Strings(out)
	return out
}

// Each visits every batched operation in apply order — relations as
// Relations() lists them, deletes before inserts within a relation —
// calling f with the relation name, whether the op is an insert, and
// the tuple. It stops at the first error f returns. The tuple is the
// delta's own copy; callers must not mutate it. Each is how a
// coordinator splits a batch into per-shard sub-deltas without reaching
// into the delta's internals.
func (d *Delta) Each(f func(rel string, insert bool, t data.Tuple) error) error {
	for _, name := range d.Relations() {
		rd := d.rels[name]
		for _, t := range rd.deletes {
			if err := f(name, false, t); err != nil {
				return err
			}
		}
		for _, t := range rd.inserts {
			if err := f(name, true, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// String summarizes the batch, e.g. "delta{Accident: +3 -1, Casualty: +6}".
func (d *Delta) String() string {
	var sb strings.Builder
	sb.WriteString("delta{")
	for i, name := range d.Relations() {
		if i > 0 {
			sb.WriteString(", ")
		}
		rd := d.rels[name]
		fmt.Fprintf(&sb, "%s:", name)
		if len(rd.inserts) > 0 {
			fmt.Fprintf(&sb, " +%d", len(rd.inserts))
		}
		if len(rd.deletes) > 0 {
			fmt.Fprintf(&sb, " -%d", len(rd.deletes))
		}
	}
	sb.WriteString("}")
	return sb.String()
}

// ViolationError rejects a delta whose net effect would break D |= A. The
// update had no visible effect: the pre-delta snapshot is untouched.
type ViolationError struct {
	Violations []access.Violation
}

func (e *ViolationError) Error() string {
	msgs := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		msgs[i] = v.Error()
	}
	return fmt.Sprintf("live: delta rejected, it would violate the access schema:\n  %s",
		strings.Join(msgs, "\n  "))
}

// RejectionMessage is the one-line wire form of a rejected delta — the
// "message" of MarshalJSON below and of internal/server's 409 payload,
// so the two surfaces cannot drift apart.
const RejectionMessage = "delta rejected: it would violate the access schema"

// MarshalJSON renders the rejection for embedders speaking JSON: a
// one-line message plus the structured violation list (each entry via
// access.Violation's own JSON form). HTML escaping is off at this level
// too — json.Marshal would otherwise re-escape the constraint arrows
// the inner marshaler left verbatim.
func (e *ViolationError) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	err := enc.Encode(struct {
		Message    string             `json:"message"`
		Violations []access.Violation `json:"violations"`
	}{RejectionMessage, e.Violations})
	return bytes.TrimRight(buf.Bytes(), "\n"), err
}

// Result reports a successfully applied delta: the new snapshot pair plus
// net-effect accounting.
type Result struct {
	// Instance and Indexed form the post-delta snapshot; the pre-delta
	// pair passed to Apply is untouched and remains fully usable.
	Instance *data.Instance
	Indexed  *access.Indexed
	// Inserted and Deleted count the operations with net effect under set
	// semantics (inserting a present tuple or deleting an absent one is a
	// no-op).
	Inserted, Deleted int
}

// checkEvery is how many tuple operations Apply processes between
// context-cancellation checks.
const checkEvery = 1024

// Staged is a delta applied but not yet validated or published: the
// post-delta relations and incrementally maintained index clones, plus
// the bookkeeping validation needs. The pre-delta snapshot it was staged
// from is untouched; a Staged that fails validation is simply dropped.
//
// The Stage → Violations → Commit split exists for coordinators: a
// sharded engine stages one sub-delta per shard in parallel, validates
// the batch GLOBALLY (cross-shard group merges, bounds at the global
// |D|), and only then commits every shard — or none. Single-node Apply
// is the same three steps with local sizes.
type Staged struct {
	ix        *access.Indexed
	newInst   *data.Instance
	clonedIdx map[int]*index.Index
	// maxTouched tracks, per cloned index, the largest group size any of
	// this batch's inserts produced — the only groups that can newly
	// exceed a non-shrinking bound.
	maxTouched map[int]int
	// insertKeys are the X-keys this batch's inserts touched, per
	// constraint — the groups a coordinator must re-measure across
	// shards for constraints not aligned with the partition key.
	insertKeys map[int][]value.Key
	inserted   int
	deleted    int
}

// Stage materializes ix's instance with d applied, without validating
// cardinality bounds or publishing anything. Per relation, deletes are
// applied before inserts (so a tuple both deleted and inserted in one
// batch ends up present), under set semantics. ctx cancels a long stage
// between chunks.
func Stage(ctx context.Context, d *Delta, ix *access.Indexed) (*Staged, error) {
	if ix == nil || ix.Instance == nil {
		return nil, fmt.Errorf("live: no indexed instance to apply to")
	}
	inst := ix.Instance
	cs := ix.Access.Constraints

	st := &Staged{
		ix:         ix,
		clonedIdx:  make(map[int]*index.Index),
		maxTouched: make(map[int]int),
		insertKeys: make(map[int][]value.Key),
	}
	repls := make(map[string]*data.Relation)

	ops := 0
	tick := func() error {
		ops++
		if ops%checkEvery == 0 {
			return ctx.Err()
		}
		return nil
	}

	for _, name := range d.Relations() {
		rd := d.rels[name]
		r := inst.Relation(name)
		if r == nil {
			return nil, fmt.Errorf("live: instance has no relation %s", name)
		}
		cl := r.Clone()
		var idxs []int
		for ci, c := range cs {
			if c.Rel == name {
				st.clonedIdx[ci] = ix.Index(ci).Clone()
				idxs = append(idxs, ci)
			}
		}
		removed, err := cl.DeleteBatch(rd.deletes)
		if err != nil {
			return nil, fmt.Errorf("live: %w", err)
		}
		st.deleted += len(removed)
		for _, t := range removed {
			for _, ci := range idxs {
				st.clonedIdx[ci].Delete(t)
			}
			if err := tick(); err != nil {
				return nil, fmt.Errorf("live: apply canceled: %w", err)
			}
		}
		seenKey := make(map[int]map[value.Key]bool)
		for _, t := range rd.inserts {
			fresh, err := cl.Insert(t)
			if err != nil {
				return nil, fmt.Errorf("live: %w", err)
			}
			if !fresh {
				continue
			}
			st.inserted++
			for _, ci := range idxs {
				k, g := st.clonedIdx[ci].Insert(t)
				if g > st.maxTouched[ci] {
					st.maxTouched[ci] = g
				}
				if seenKey[ci] == nil {
					seenKey[ci] = make(map[value.Key]bool)
				}
				if !seenKey[ci][k] {
					seenKey[ci][k] = true
					st.insertKeys[ci] = append(st.insertKeys[ci], k)
				}
			}
			if err := tick(); err != nil {
				return nil, fmt.Errorf("live: apply canceled: %w", err)
			}
		}
		repls[name] = cl
	}

	newInst, err := inst.CloneWith(repls)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	st.newInst = newInst
	return st, nil
}

// Size returns the staged (post-delta) instance's local size.
func (st *Staged) Size() int { return st.newInst.Size() }

// Inserted and Deleted count the staged operations with net effect
// under set semantics, like Result's fields.
func (st *Staged) Inserted() int { return st.inserted }

// Deleted counts the staged deletions with net effect.
func (st *Staged) Deleted() int { return st.deleted }

// OldSize returns the pre-delta instance's local size.
func (st *Staged) OldSize() int { return st.ix.Instance.Size() }

// Index returns the post-delta index backing constraint ci: the
// incrementally maintained clone when the batch touched its relation,
// the shared pre-delta index otherwise.
func (st *Staged) Index(ci int) *index.Index {
	if idx := st.clonedIdx[ci]; idx != nil {
		return idx
	}
	return st.ix.Index(ci)
}

// Touched reports whether the batch touched constraint ci's relation.
func (st *Staged) Touched(ci int) bool { return st.clonedIdx[ci] != nil }

// InsertKeys returns the distinct X-keys the batch's inserts touched on
// constraint ci, in first-touch order. Only these groups can newly
// exceed a non-shrinking bound.
func (st *Staged) InsertKeys(ci int) []value.Key { return st.insertKeys[ci] }

// Violations checks every cardinality bound of the staged result, with
// general-form constraints s(|D|) evaluated at newSize (and compared
// against oldSize to detect shrinking bounds). A single-node caller
// passes OldSize()/Size(); a sharded coordinator does NOT use this — it
// merges group sizes across shards itself — but reuses the same rules:
// insert-touched groups against the new bound, full re-checks (touched
// and untouched indexes alike) when a bound shrank.
func (st *Staged) Violations(oldSize, newSize int) []access.Violation {
	var viols []access.Violation
	for ci, c := range st.ix.Access.Constraints {
		bound := c.Card.Bound(newSize)
		shrunk := !c.Card.IsConst() && bound < c.Card.Bound(oldSize)
		switch {
		case st.Touched(ci) && shrunk:
			// The batch lowered s(|D|): every group of the touched index
			// must be re-checked, not just the ones this batch grew.
			if g := st.clonedIdx[ci].MaxGroup(); g > bound {
				viols = append(viols, access.Violation{Constraint: c, Group: g, Bound: bound})
			}
		case st.Touched(ci):
			if g := st.maxTouched[ci]; g > bound {
				viols = append(viols, access.Violation{Constraint: c, Group: g, Bound: bound})
			}
		case shrunk:
			// Untouched relation, but a general-form bound shrank with |D|.
			if g := st.ix.Index(ci).MaxGroup(); g > bound {
				viols = append(viols, access.Violation{Constraint: c, Group: g, Bound: bound})
			}
		}
	}
	return viols
}

// Commit assembles the post-delta snapshot pair. The caller must have
// validated first (Violations, or a coordinator's global check): Commit
// itself publishes nothing and never re-checks.
func (st *Staged) Commit() (*Result, error) {
	newIx, err := st.ix.CloneWith(st.newInst, st.clonedIdx)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	return &Result{
		Instance: st.newInst,
		Indexed:  newIx,
		Inserted: st.inserted,
		Deleted:  st.deleted,
	}, nil
}

// Replay applies d to ix IN PLACE: no relation or index clones, no
// validation, no new snapshot pair. It exists for WAL replay during
// recovery, where the caller holds the only reference to a freshly
// decoded checkpoint state and replays a prefix of already-committed
// deltas onto it — paying Stage's copy-on-write cost (O(|relation|)
// clones per delta) there would make recovery scale with |D| x deltas
// for no benefit, since there are no concurrent readers to isolate.
// Never call it on a published snapshot: mutating shared state breaks
// the engine's isolation guarantee. If Replay errors, ix is partially
// mutated and must be discarded.
func Replay(ctx context.Context, d *Delta, ix *access.Indexed) error {
	if ix == nil || ix.Instance == nil {
		return fmt.Errorf("live: no indexed instance to replay onto")
	}
	cs := ix.Access.Constraints
	for _, name := range d.Relations() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("live: replay canceled: %w", err)
		}
		rd := d.rels[name]
		r := ix.Instance.Relation(name)
		if r == nil {
			return fmt.Errorf("live: instance has no relation %s", name)
		}
		var idxs []int
		for ci, c := range cs {
			if c.Rel == name {
				idxs = append(idxs, ci)
			}
		}
		removed, err := r.DeleteBatchInPlace(rd.deletes)
		if err != nil {
			return fmt.Errorf("live: %w", err)
		}
		for _, t := range removed {
			for _, ci := range idxs {
				ix.Index(ci).Delete(t)
			}
		}
		for _, t := range rd.inserts {
			fresh, err := r.Insert(t)
			if err != nil {
				return fmt.Errorf("live: %w", err)
			}
			if !fresh {
				continue
			}
			for _, ci := range idxs {
				ix.Index(ci).Insert(t)
			}
		}
	}
	return nil
}

// Apply materializes ix's instance with d applied, validating the result
// against the access schema. Per relation, deletes are applied before
// inserts (so a tuple both deleted and inserted in one batch ends up
// present), under set semantics.
//
// On success the returned Result holds the post-delta snapshot: touched
// relations and indices are fresh copies maintained incrementally,
// untouched ones are shared with ix. On a cardinality violation Apply
// returns a *ViolationError listing every broken constraint and the
// pre-delta snapshot stays untouched; general-form constraints s(|D|) are
// re-checked even on untouched relations when the batch shrinks |D|
// enough to lower their bound. ctx cancels a long apply between chunks.
//
// Apply is Stage + Violations + Commit; coordinators that need to
// validate across several staged shards call the pieces directly.
func Apply(ctx context.Context, d *Delta, ix *access.Indexed) (*Result, error) {
	tr := obs.FromContext(ctx)
	sp := tr.Start("apply.stage")
	st, err := Stage(ctx, d, ix)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetRows(int64(st.Inserted() + st.Deleted()))
	sp.End()
	sp = tr.Start("apply.validate")
	viols := st.Violations(st.OldSize(), st.Size())
	sp.End()
	if len(viols) > 0 {
		return nil, &ViolationError{Violations: viols}
	}
	sp = tr.Start("apply.commit")
	res, err := st.Commit()
	sp.End()
	return res, err
}
