package live_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/live"
	"repro/internal/load"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

func iv(i int64) value.Value  { return value.NewInt(i) }
func sv(s string) value.Value { return value.NewString(s) }

func mustIndexed(t *testing.T, a *access.Schema, d *data.Instance) *access.Indexed {
	t.Helper()
	ix, viols, err := access.BuildIndexed(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) > 0 {
		t.Fatalf("fixture violates its access schema: %v", viols)
	}
	return ix
}

// pairSchema is a two-relation schema with a constant-bound and a
// log-bound constraint, small enough to drive into violations on purpose.
func pairSchema() (*schema.Schema, *access.Schema) {
	s := schema.MustNew(
		schema.MustRelation("R", "A", "B"),
		schema.MustRelation("S", "C", "D"),
	)
	a := access.NewSchema(
		access.NewConstraint("R", []schema.Attribute{"A"}, []schema.Attribute{"B"}, 2),
		access.Constraint{Rel: "S", X: []schema.Attribute{"C"}, Y: []schema.Attribute{"D"}, Card: access.LogCard()},
	)
	return s, a
}

func TestApplyInsertDeleteBasic(t *testing.T) {
	s, a := pairSchema()
	d := data.NewInstance(s)
	d.MustInsert("R", iv(1), iv(10))
	d.MustInsert("S", iv(1), iv(100))
	ix := mustIndexed(t, a, d)

	delta := live.NewDelta(s)
	delta.MustInsert("R", iv(1), iv(11))
	delta.MustInsert("R", iv(1), iv(10)) // duplicate: no net effect
	delta.MustDelete("S", iv(1), iv(100))
	delta.MustDelete("S", iv(9), iv(9)) // absent: no net effect

	res, err := live.Apply(context.Background(), delta, ix)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Deleted != 1 {
		t.Fatalf("net effect: +%d -%d, want +1 -1", res.Inserted, res.Deleted)
	}
	// Old snapshot untouched.
	if d.Size() != 2 || len(ix.Index(0).Fetch([]value.Value{iv(1)}).Tuples()) != 1 {
		t.Fatal("pre-delta snapshot was mutated")
	}
	// New snapshot reflects the delta, incrementally.
	if res.Instance.Size() != 2 {
		t.Fatalf("new size = %d, want 2", res.Instance.Size())
	}
	if got := len(res.Indexed.Index(0).Fetch([]value.Value{iv(1)}).Tuples()); got != 2 {
		t.Fatalf("R-index group = %d, want 2", got)
	}
	if got := len(res.Indexed.Index(1).Fetch([]value.Value{iv(1)}).Tuples()); got != 0 {
		t.Fatalf("S-index group = %d, want 0", got)
	}
}

func TestApplyDeleteThenInsertOrder(t *testing.T) {
	s, a := pairSchema()
	d := data.NewInstance(s)
	d.MustInsert("R", iv(1), iv(10))
	ix := mustIndexed(t, a, d)

	// Same tuple deleted and inserted in one batch: deletes run first, so
	// the tuple survives regardless of call order.
	delta := live.NewDelta(s)
	delta.MustInsert("R", iv(1), iv(10))
	delta.MustDelete("R", iv(1), iv(10))
	res, err := live.Apply(context.Background(), delta, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Instance.Relation("R").Contains(data.Tuple{iv(1), iv(10)}) {
		t.Fatal("delete-then-insert semantics: tuple must survive the batch")
	}
}

func TestApplyRejectsViolation(t *testing.T) {
	s, a := pairSchema()
	d := data.NewInstance(s)
	d.MustInsert("R", iv(1), iv(10))
	d.MustInsert("R", iv(1), iv(11))
	ix := mustIndexed(t, a, d)

	delta := live.NewDelta(s)
	delta.MustInsert("R", iv(1), iv(12)) // third B for A=1: breaks N=2
	_, err := live.Apply(context.Background(), delta, ix)
	var ve *live.ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("want ViolationError, got %v", err)
	}
	if len(ve.Violations) != 1 || ve.Violations[0].Group != 3 || ve.Violations[0].Bound != 2 {
		t.Fatalf("violation detail: %+v", ve.Violations)
	}
	// Rejected batch leaves no trace.
	if d.Size() != 2 || ix.Index(0).MaxGroup() != 2 {
		t.Fatal("rejected delta mutated the snapshot")
	}
}

func TestApplyShrinkingGeneralBound(t *testing.T) {
	// S has a log(|D|) constraint. Build an instance where an S-group is
	// exactly at the bound, then delete enough R-tuples to shrink |D| so
	// the bound drops below the (untouched) S-group.
	s, a := pairSchema()
	d := data.NewInstance(s)
	for i := int64(0); i < 14; i++ { // |D| grows to 18 with S below
		d.MustInsert("R", iv(i), iv(i))
	}
	for j := int64(0); j < 4; j++ { // one S-group of 4; log2(18+1) ≈ 5 ok
		d.MustInsert("S", iv(1), iv(j))
	}
	ix := mustIndexed(t, a, d)

	// Deleting 12 R tuples drops |D| to 6: ceil(log2(7)) = 3 < 4.
	delta := live.NewDelta(s)
	for i := int64(0); i < 12; i++ {
		delta.MustDelete("R", iv(i), iv(i))
	}
	_, err := live.Apply(context.Background(), delta, ix)
	var ve *live.ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("shrinking |D| must re-check untouched general-form groups, got %v", err)
	}
	if ve.Violations[0].Constraint.Rel != "S" {
		t.Fatalf("violation should be on S: %+v", ve.Violations)
	}
}

func TestApplyCancel(t *testing.T) {
	s, a := pairSchema()
	d := data.NewInstance(s)
	ix := mustIndexed(t, a, d)
	delta := live.NewDelta(s)
	for i := int64(0); i < 5000; i++ {
		delta.MustInsert("R", iv(i), iv(0))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := live.Apply(ctx, delta, ix); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestDeltaValidation(t *testing.T) {
	s, _ := pairSchema()
	delta := live.NewDelta(s)
	if err := delta.Insert("T", iv(1)); err == nil {
		t.Error("unknown relation must error")
	}
	if err := delta.Insert("R", iv(1)); err == nil {
		t.Error("arity mismatch must error")
	}
	if err := delta.Delete("R", iv(1), iv(2)); err != nil {
		t.Error(err)
	}
	if delta.Len() != 1 {
		t.Errorf("Len = %d, want 1", delta.Len())
	}
}

func TestDeltaTSVRoundTrip(t *testing.T) {
	s := workload.AccidentSchema()
	d := live.NewDelta(s)
	d.MustInsert("Accident", iv(1), sv("Soho"), sv("1/5/2005"))
	d.MustInsert("Vehicle", iv(7), sv("with\ttab"), iv(44))
	d.MustDelete("Accident", iv(2), sv("Leith"), sv("2/5/2005"))

	var buf bytes.Buffer
	if err := live.WriteDeltaTSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	back, err := live.ReadDeltaTSV(&buf, s)
	if err != nil {
		t.Fatalf("%v\n%s", err, doc)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip lost ops: %d vs %d", back.Len(), d.Len())
	}
	var again bytes.Buffer
	if err := live.WriteDeltaTSV(&again, back); err != nil {
		t.Fatal(err)
	}
	if again.String() != doc {
		t.Fatalf("unstable round trip:\n%q\n%q", doc, again.String())
	}
}

func TestReadDeltaTSVErrors(t *testing.T) {
	s := workload.AccidentSchema()
	for _, bad := range []string{
		"?\tAccident\t1\tSoho\td",     // unknown op
		"+\tNope\t1",                  // unknown relation
		"+\tAccident\t1",              // arity
		"+",                           // short line
		"+\tAccident\t1\tSoho\ts:\\q", // bad escape
	} {
		if _, err := live.ReadDeltaTSV(bytes.NewBufferString(bad+"\n"), s); err == nil {
			t.Errorf("line %q must fail to parse", bad)
		}
	}
	// Comments and blank lines are fine.
	ok := "# comment\n\n+\tAccident\t1\tSoho\t1/5/2005\n"
	d, err := live.ReadDeltaTSV(bytes.NewBufferString(ok), s)
	if err != nil || d.Len() != 1 {
		t.Errorf("comment/blank handling: len=%d err=%v", d.Len(), err)
	}
}

// ---- property: incremental maintenance ≡ rebuild ----

// applyMirror replays d's semantics (per relation: deletes then inserts,
// set semantics) through the plain data API on a cloned instance,
// independently of the live package's incremental path.
func applyMirror(t *testing.T, d *data.Instance, rels []string, dels, ins map[string][]data.Tuple) *data.Instance {
	t.Helper()
	repls := make(map[string]*data.Relation)
	for _, name := range rels {
		cl := d.Relation(name).Clone()
		for _, tup := range dels[name] {
			if _, err := cl.Delete(tup); err != nil {
				t.Fatal(err)
			}
		}
		for _, tup := range ins[name] {
			if _, err := cl.Insert(tup); err != nil {
				t.Fatal(err)
			}
		}
		repls[name] = cl
	}
	out, err := d.CloneWith(repls)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// sameIndexed asserts got (incrementally maintained) and want (rebuilt
// from scratch) answer every fetch identically.
func sameIndexed(t *testing.T, got, want *access.Indexed) {
	t.Helper()
	for ci := range got.Access.Constraints {
		gi, wi := got.Index(ci), want.Index(ci)
		if gi.Groups() != wi.Groups() {
			t.Fatalf("constraint %d: %d groups incrementally, %d rebuilt", ci, gi.Groups(), wi.Groups())
		}
		for _, k := range wi.Keys() {
			g, w := gi.FetchKey(k).Tuples(), wi.FetchKey(k).Tuples()
			if len(g) != len(w) {
				t.Fatalf("constraint %d key %q: %d projections incrementally, %d rebuilt", ci, k, len(g), len(w))
			}
			seen := make(map[string]bool, len(g))
			for _, p := range g {
				seen[string(p.Key())] = true
			}
			for _, p := range w {
				if !seen[string(p.Key())] {
					t.Fatalf("constraint %d key %q: rebuilt projection %v missing incrementally", ci, k, p)
				}
			}
		}
	}
}

// randomDelta builds a delta of random deletes (sampled from live tuples)
// and random inserts (mutations of live tuples plus fresh values), which
// sometimes violates the access schema on purpose.
func randomDelta(rng *rand.Rand, s *schema.Schema, d *data.Instance, ops int) *live.Delta {
	delta := live.NewDelta(s)
	rels := s.Relations()
	for i := 0; i < ops; i++ {
		rs := rels[rng.Intn(len(rels))]
		r := d.Relation(rs.Name)
		if rng.Intn(2) == 0 && r.Len() > 0 {
			tup := r.Tuples()[rng.Intn(r.Len())]
			delta.MustDelete(rs.Name, tup...)
			continue
		}
		var vals []value.Value
		if r.Len() > 0 && rng.Intn(2) == 0 {
			// Mutate one position of an existing tuple: stresses shared
			// groups and near-bound buckets.
			tup := r.Tuples()[rng.Intn(r.Len())].Clone()
			tup[rng.Intn(len(tup))] = iv(int64(rng.Intn(50)))
			vals = tup
		} else {
			vals = make([]value.Value, rs.Arity())
			for p := range vals {
				vals[p] = iv(int64(rng.Intn(50)))
			}
		}
		delta.MustInsert(rs.Name, vals...)
	}
	return delta
}

// deltaParts extracts the mirror-apply inputs from the same random draw.
func deltaParts(rng *rand.Rand, s *schema.Schema, d *data.Instance, ops int) (*live.Delta, []string, map[string][]data.Tuple, map[string][]data.Tuple) {
	delta := randomDelta(rng, s, d, ops)
	// Re-read the delta through its TSV form to recover the op lists —
	// exercising the codec on every property iteration for free.
	var buf bytes.Buffer
	if err := live.WriteDeltaTSV(&buf, delta); err != nil {
		panic(err)
	}
	dels := make(map[string][]data.Tuple)
	ins := make(map[string][]data.Tuple)
	var rels []string
	seen := make(map[string]bool)
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		cells := bytes.Split(line, []byte("\t"))
		name := string(cells[1])
		if !seen[name] {
			seen[name] = true
			rels = append(rels, name)
		}
		tup := make(data.Tuple, len(cells)-2)
		for i, c := range cells[2:] {
			v, err := load.DecodeValue(string(c))
			if err != nil {
				panic(err)
			}
			tup[i] = v
		}
		if cells[0][0] == '-' {
			dels[name] = append(dels[name], tup)
		} else {
			ins[name] = append(ins[name], tup)
		}
	}
	return delta, rels, dels, ins
}

// propertyStream drives maxBatches random deltas over (s, a, d) and
// checks, after every accepted batch, that the incrementally maintained
// snapshot equals a from-scratch rebuild — and that accept/reject
// verdicts agree with rebuilding.
func propertyStream(t *testing.T, s *schema.Schema, a *access.Schema, d *data.Instance, seed int64, maxBatches int) {
	t.Helper()
	ix, viols, err := access.BuildIndexed(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) > 0 {
		t.Fatalf("seed instance violates schema: %v", viols)
	}
	rng := rand.New(rand.NewSource(seed))
	accepted, rejected := 0, 0
	for b := 0; b < maxBatches; b++ {
		delta, rels, dels, ins := deltaParts(rng, s, ix.Instance, 1+rng.Intn(8))
		mirror := applyMirror(t, ix.Instance, rels, dels, ins)
		rebuilt, wantViols, err := access.BuildIndexed(a, mirror)
		if err != nil {
			t.Fatal(err)
		}
		res, err := live.Apply(context.Background(), delta, ix)
		var ve *live.ViolationError
		if errors.As(err, &ve) {
			rejected++
			if len(wantViols) == 0 {
				t.Fatalf("batch %d (%s): incrementally rejected %v but rebuild is clean", b, delta, ve)
			}
			continue // snapshot unchanged; keep streaming against it
		}
		if err != nil {
			t.Fatal(err)
		}
		accepted++
		if len(wantViols) > 0 {
			t.Fatalf("batch %d (%s): incrementally accepted but rebuild finds %v", b, delta, wantViols)
		}
		if res.Instance.Size() != mirror.Size() {
			t.Fatalf("batch %d: size %d, mirror %d", b, res.Instance.Size(), mirror.Size())
		}
		sameIndexed(t, res.Indexed, rebuilt)
		ix = res.Indexed
	}
	if accepted == 0 || rejected == 0 {
		t.Logf("note: accepted=%d rejected=%d (stream exercised only one verdict)", accepted, rejected)
	}
}

func TestPropertyIncrementalEqualsRebuildAccidents(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 5, AccidentsPerDay: 8, MaxVehicles: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	propertyStream(t, acc.Schema, acc.Access, acc.Instance, 101, 60)
}

func TestPropertyIncrementalEqualsRebuildSocial(t *testing.T) {
	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: 60, MaxFriends: 6, MaxLikes: 3, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	propertyStream(t, soc.Schema, soc.Access, soc.Instance, 102, 60)
}

func TestPropertyIncrementalEqualsRebuildTightBounds(t *testing.T) {
	// A tiny schema with tight constant and log bounds, so random streams
	// hit both verdicts often.
	s, a := pairSchema()
	d := data.NewInstance(s)
	for i := int64(0); i < 20; i++ {
		d.MustInsert("R", iv(i%10), iv(i))
		d.MustInsert("S", iv(i%4), iv(i))
	}
	if ok, err := access.Satisfies(a, d); err != nil || !ok {
		t.Fatalf("fixture: ok=%v err=%v", ok, err)
	}
	propertyStream(t, s, a, d, 103, 120)
}

// TestViolationErrorJSON pins the ViolationError wire form embedders
// marshal directly (internal/server builds its 409 payload from the
// same RejectionMessage and per-violation JSON, golden-pinned there).
func TestViolationErrorJSON(t *testing.T) {
	verr := &live.ViolationError{Violations: []access.Violation{{
		Constraint: access.NewConstraint("R", []schema.Attribute{"A"}, []schema.Attribute{"B"}, 2),
		Group:      3,
		Bound:      2,
	}}}
	// Marshal through a non-escaping encoder, as every wire surface
	// does (a bare json.Marshal would re-escape the constraint arrow at
	// the outermost compaction).
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(verr); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimRight(buf.String(), "\n")
	want := `{"message":"` + live.RejectionMessage + `",` +
		`"violations":[{"constraint":"R(A -> B, 2)","group":3,"bound":2}]}`
	if got != want {
		t.Errorf("ViolationError JSON = %s, want %s", got, want)
	}
}
