// Package eval is the conventional (unbounded) query evaluator used as the
// paper's baseline: it computes exact answers by scanning relations, the
// way an RDBMS without applicable indices would.
//
// Two modes are provided. ScanJoin is a pure nested-loop evaluator — the
// pessimistic stand-in for the paper's "MySQL took 14 hours" comparator.
// HashJoin builds per-atom hash tables on the join columns — a fair
// conventional baseline. Both count every tuple they read, so experiments
// can report data accessed alongside wall-clock time.
package eval

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/value"
)

// Mode selects the join strategy.
type Mode int

const (
	// ScanJoin evaluates by backtracking nested-loop scans.
	ScanJoin Mode = iota
	// HashJoin evaluates left-to-right with hash tables on shared columns.
	HashJoin
)

func (m Mode) String() string {
	switch m {
	case ScanJoin:
		return "scan-join"
	case HashJoin:
		return "hash-join"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Result is the answer set Q(D) plus access accounting.
type Result struct {
	// Rows is Q(D), deduplicated and sorted for determinism.
	Rows []data.Tuple
	// Scanned counts tuples read from D during evaluation.
	Scanned int64
}

// Contains reports whether the result holds the given tuple.
func (r *Result) Contains(t data.Tuple) bool {
	k := t.Key()
	for _, row := range r.Rows {
		if row.Key() == k {
			return true
		}
	}
	return false
}

// cancelStride is how many tuples an evaluation loop reads between
// context checks.
const cancelStride = 1024

// CQ evaluates q over d.
func CQ(q *cq.CQ, d *data.Instance, mode Mode) (*Result, error) {
	return CQCtx(context.Background(), q, d, mode)
}

// CQCtx is CQ with cancellation: the evaluator observes ctx periodically
// while scanning (every cancelStride tuples read) and returns the
// context's error, wrapped, when it fires. This is what keeps the
// conventional fallback of a serving engine from running away on an
// abandoned request.
func CQCtx(ctx context.Context, q *cq.CQ, d *data.Instance, mode Mode) (*Result, error) {
	sp := obs.FromContext(ctx).StartDetail("eval.cq", q.Label)
	r, err := cqCtx(ctx, q, d, mode)
	if err == nil {
		sp.SetScanned(r.Scanned)
		sp.SetRows(int64(len(r.Rows)))
	}
	sp.End()
	return r, err
}

func cqCtx(ctx context.Context, q *cq.CQ, d *data.Instance, mode Mode) (*Result, error) {
	c := q.Canonicalize()
	if c.Unsat {
		return &Result{}, nil
	}
	switch mode {
	case ScanJoin:
		return scanEval(ctx, c, d)
	case HashJoin:
		return hashEval(ctx, c, d)
	default:
		return nil, fmt.Errorf("eval: unknown mode %v", mode)
	}
}

// UCQ evaluates a union of CQs, merging answer sets.
func UCQ(qs []*cq.CQ, d *data.Instance, mode Mode) (*Result, error) {
	return UCQCtx(context.Background(), qs, d, mode)
}

// UCQCtx is UCQ with cancellation (see CQCtx).
func UCQCtx(ctx context.Context, qs []*cq.CQ, d *data.Instance, mode Mode) (*Result, error) {
	res := &Result{}
	seen := make(map[value.Key]bool)
	for _, q := range qs {
		r, err := CQCtx(ctx, q, d, mode)
		if err != nil {
			return nil, err
		}
		res.Scanned += r.Scanned
		for _, row := range r.Rows {
			k := row.Key()
			if !seen[k] {
				seen[k] = true
				res.Rows = append(res.Rows, row)
			}
		}
	}
	sortRows(res.Rows)
	return res, nil
}

func sortRows(rows []data.Tuple) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k].Less(b[k])
			}
		}
		return len(a) < len(b)
	})
}

// emitHead materializes the head tuple under a complete assignment.
func emitHead(c *cq.Canonical, assign map[string]value.Value) (data.Tuple, bool) {
	out := make(data.Tuple, len(c.Head))
	for i, t := range c.Head {
		if t.IsVar() {
			v, ok := assign[t.V]
			if !ok {
				return nil, false
			}
			out[i] = v
		} else {
			out[i] = t.C
		}
	}
	return out, true
}

// scanEval backtracks over atoms with nested loops.
func scanEval(ctx context.Context, c *cq.Canonical, d *data.Instance) (*Result, error) {
	res := &Result{}
	seen := make(map[value.Key]bool)
	assign := make(map[string]value.Value)

	// One row buffer per atom depth: the recursion re-reads rows into the
	// depth's buffer, never retaining them (values copied into assign).
	bufs := make([]data.Tuple, len(c.Atoms))

	var rec func(i int) error
	rec = func(i int) error {
		if i == len(c.Atoms) {
			row, ok := emitHead(c, assign)
			if !ok {
				return fmt.Errorf("eval: unsafe head variable (query not validated?)")
			}
			k := row.Key()
			if !seen[k] {
				seen[k] = true
				res.Rows = append(res.Rows, row)
			}
			return nil
		}
		a := c.Atoms[i]
		rel := d.Relation(a.Rel)
		if rel == nil {
			return fmt.Errorf("eval: instance has no relation %s", a.Rel)
		}
		for ri := 0; ri < rel.Len(); ri++ {
			res.Scanned++
			if res.Scanned%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("eval: %w", err)
				}
			}
			bufs[i] = rel.AppendRow(bufs[i], ri)
			tup := bufs[i]
			var bound []string
			ok := true
			for j, arg := range a.Args {
				if arg.IsVar() {
					if cur, has := assign[arg.V]; has {
						if cur != tup[j] {
							ok = false
							break
						}
					} else {
						assign[arg.V] = tup[j]
						bound = append(bound, arg.V)
					}
				} else if arg.C != tup[j] {
					ok = false
					break
				}
			}
			if ok {
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			for _, v := range bound {
				delete(assign, v)
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	sortRows(res.Rows)
	return res, nil
}

// binding is one row of the intermediate table in hashEval.
type binding struct {
	cols []string
	vals []value.Value
}

func (b binding) lookup(v string) (value.Value, bool) {
	for i, c := range b.cols {
		if c == v {
			return b.vals[i], true
		}
	}
	return value.Value{}, false
}

// hashEval joins atoms left to right using hash tables keyed on the
// variables shared with the accumulated bindings.
func hashEval(ctx context.Context, c *cq.Canonical, d *data.Instance) (*Result, error) {
	res := &Result{}
	cur := []binding{{}}
	for _, a := range c.Atoms {
		rel := d.Relation(a.Rel)
		if rel == nil {
			return nil, fmt.Errorf("eval: instance has no relation %s", a.Rel)
		}
		// Shared variables between the atom and the accumulated columns,
		// plus constant positions, form the probe key.
		curCols := map[string]bool{}
		if len(cur) > 0 {
			for _, col := range cur[0].cols {
				curCols[col] = true
			}
		}
		var keyPos []int
		var keyVar []string
		for j, arg := range a.Args {
			if arg.IsVar() && curCols[arg.V] {
				keyPos = append(keyPos, j)
				keyVar = append(keyVar, arg.V)
			}
		}
		// Build: bucket tuples passing constant and intra-atom equality
		// checks. Rows are screened through a reused buffer; only matches
		// are materialized (the buckets retain them).
		table := make(map[value.Key][]data.Tuple)
		var buf data.Tuple
		for ri := 0; ri < rel.Len(); ri++ {
			res.Scanned++
			if res.Scanned%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("eval: %w", err)
				}
			}
			buf = rel.AppendRow(buf, ri)
			if !atomLocalMatch(a, buf) {
				continue
			}
			tup := rel.RowTuple(ri)
			k := value.KeyOfAt(tup, keyPos)
			table[k] = append(table[k], tup)
		}
		// New columns this atom introduces.
		var newVars []string
		var newPos []int
		seenVar := map[string]bool{}
		for j, arg := range a.Args {
			if arg.IsVar() && !curCols[arg.V] && !seenVar[arg.V] {
				seenVar[arg.V] = true
				newVars = append(newVars, arg.V)
				newPos = append(newPos, j)
			}
		}
		var next []binding
		for bi, b := range cur {
			if bi%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("eval: %w", err)
				}
			}
			kvals := make([]value.Value, len(keyVar))
			for i, v := range keyVar {
				kvals[i], _ = b.lookup(v)
			}
			for _, tup := range table[value.KeyOf(kvals...)] {
				nb := binding{
					cols: append(append([]string(nil), b.cols...), newVars...),
					vals: append([]value.Value(nil), b.vals...),
				}
				for _, p := range newPos {
					nb.vals = append(nb.vals, tup[p])
				}
				next = append(next, nb)
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	seen := make(map[value.Key]bool)
	for _, b := range cur {
		row := make(data.Tuple, len(c.Head))
		ok := true
		for i, t := range c.Head {
			if t.IsVar() {
				v, has := b.lookup(t.V)
				if !has {
					ok = false
					break
				}
				row[i] = v
			} else {
				row[i] = t.C
			}
		}
		if !ok {
			return nil, fmt.Errorf("eval: unsafe head variable (query not validated?)")
		}
		k := row.Key()
		if !seen[k] {
			seen[k] = true
			res.Rows = append(res.Rows, row)
		}
	}
	sortRows(res.Rows)
	return res, nil
}

// atomLocalMatch checks constant arguments and repeated variables within a
// single atom against a tuple.
func atomLocalMatch(a cq.Atom, tup data.Tuple) bool {
	firstPos := make(map[string]int, len(a.Args))
	for j, arg := range a.Args {
		if !arg.IsVar() {
			if arg.C != tup[j] {
				return false
			}
			continue
		}
		if p, ok := firstPos[arg.V]; ok {
			if tup[p] != tup[j] {
				return false
			}
		} else {
			firstPos[arg.V] = j
		}
	}
	return true
}
