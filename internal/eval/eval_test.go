package eval

import (
	"testing"
	"testing/quick"

	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value { return value.NewInt(i) }

func graphInstance(edges [][2]int64) *data.Instance {
	s := schema.MustNew(schema.MustRelation("E", "src", "dst"))
	d := data.NewInstance(s)
	for _, e := range edges {
		d.MustInsert("E", iv(e[0]), iv(e[1]))
	}
	return d
}

func bothModes(t *testing.T, q *cq.CQ, d *data.Instance) (*Result, *Result) {
	t.Helper()
	rs, err := CQ(q, d, ScanJoin)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := CQ(q, d, HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	return rs, rh
}

func sameRows(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			return false
		}
	}
	return true
}

func TestSingleAtom(t *testing.T) {
	d := graphInstance([][2]int64{{1, 2}, {2, 3}})
	q := &cq.CQ{Free: []string{"x", "y"}, Atoms: []cq.Atom{cq.NewAtom("E", cq.Var("x"), cq.Var("y"))}}
	rs, rh := bothModes(t, q, d)
	if len(rs.Rows) != 2 || !sameRows(rs, rh) {
		t.Fatalf("scan=%v hash=%v", rs.Rows, rh.Rows)
	}
}

func TestPathJoin(t *testing.T) {
	d := graphInstance([][2]int64{{1, 2}, {2, 3}, {3, 4}, {9, 9}})
	// Q(x,z) :- E(x,y), E(y,z)
	q := &cq.CQ{Free: []string{"x", "z"}, Atoms: []cq.Atom{
		cq.NewAtom("E", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("E", cq.Var("y"), cq.Var("z")),
	}}
	rs, rh := bothModes(t, q, d)
	// Paths: 1-2-3, 2-3-4, 9-9-9.
	if len(rs.Rows) != 3 || !sameRows(rs, rh) {
		t.Fatalf("scan=%v hash=%v", rs.Rows, rh.Rows)
	}
}

func TestConstantsViaEqualities(t *testing.T) {
	d := graphInstance([][2]int64{{1, 2}, {1, 3}, {2, 3}})
	// Q(y) :- E(x,y), x=1
	q := &cq.CQ{Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("E", cq.Var("x"), cq.Var("y"))},
		Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(1))}}}
	rs, rh := bothModes(t, q, d)
	if len(rs.Rows) != 2 || !sameRows(rs, rh) {
		t.Fatalf("scan=%v hash=%v", rs.Rows, rh.Rows)
	}
}

func TestConstantsInAtoms(t *testing.T) {
	d := graphInstance([][2]int64{{1, 2}, {2, 2}})
	// Q(y) :- E(1,y): constant directly in the atom (Normalize handles it).
	q := &cq.CQ{Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("E", cq.Const(iv(1)), cq.Var("y"))}}
	rs, rh := bothModes(t, q, d)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != iv(2) || !sameRows(rs, rh) {
		t.Fatalf("scan=%v hash=%v", rs.Rows, rh.Rows)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	d := graphInstance([][2]int64{{1, 1}, {1, 2}, {3, 3}})
	// Q(x) :- E(x,x): self-loops.
	q := &cq.CQ{Free: []string{"x"},
		Atoms: []cq.Atom{cq.NewAtom("E", cq.Var("x"), cq.Var("x"))}}
	rs, rh := bothModes(t, q, d)
	if len(rs.Rows) != 2 || !sameRows(rs, rh) {
		t.Fatalf("scan=%v hash=%v", rs.Rows, rh.Rows)
	}
}

func TestBooleanQuery(t *testing.T) {
	d := graphInstance([][2]int64{{1, 2}})
	q := &cq.CQ{Atoms: []cq.Atom{cq.NewAtom("E", cq.Var("x"), cq.Var("y"))}}
	rs, rh := bothModes(t, q, d)
	if len(rs.Rows) != 1 || len(rs.Rows[0]) != 0 || !sameRows(rs, rh) {
		t.Fatalf("boolean true: scan=%v hash=%v", rs.Rows, rh.Rows)
	}
	empty := graphInstance(nil)
	rs2, err := CQ(q, empty, ScanJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2.Rows) != 0 {
		t.Fatal("boolean false should have no rows")
	}
}

func TestUnsatisfiableQueryEmpty(t *testing.T) {
	d := graphInstance([][2]int64{{1, 2}})
	q := &cq.CQ{Free: []string{"x"},
		Atoms: []cq.Atom{cq.NewAtom("E", cq.Var("x"), cq.Var("y"))},
		Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(1))}, {L: cq.Var("x"), R: cq.Const(iv(2))}}}
	rs, rh := bothModes(t, q, d)
	if len(rs.Rows) != 0 || len(rh.Rows) != 0 {
		t.Fatal("unsatisfiable query must return empty")
	}
}

func TestConstantHead(t *testing.T) {
	d := graphInstance([][2]int64{{1, 2}})
	// Q(x) :- E(y,z), x=7: head pinned to a constant.
	q := &cq.CQ{Free: []string{"x"},
		Atoms: []cq.Atom{cq.NewAtom("E", cq.Var("y"), cq.Var("z"))},
		Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(7))}}}
	rs, rh := bothModes(t, q, d)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != iv(7) || !sameRows(rs, rh) {
		t.Fatalf("scan=%v hash=%v", rs.Rows, rh.Rows)
	}
}

func TestUnknownRelationError(t *testing.T) {
	d := graphInstance(nil)
	q := &cq.CQ{Atoms: []cq.Atom{cq.NewAtom("Ghost", cq.Var("x"))}}
	if _, err := CQ(q, d, ScanJoin); err == nil {
		t.Error("scan: unknown relation must error")
	}
	if _, err := CQ(q, d, HashJoin); err == nil {
		t.Error("hash: unknown relation must error")
	}
}

func TestUCQUnion(t *testing.T) {
	d := graphInstance([][2]int64{{1, 2}, {3, 4}})
	q1 := &cq.CQ{Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("E", cq.Const(iv(1)), cq.Var("y"))}}
	q2 := &cq.CQ{Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("E", cq.Const(iv(3)), cq.Var("y"))}}
	r, err := UCQ([]*cq.CQ{q1, q2}, d, HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("union rows = %v", r.Rows)
	}
	// Overlapping unions deduplicate.
	r2, err := UCQ([]*cq.CQ{q1, q1}, d, HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rows) != 1 {
		t.Fatalf("self-union rows = %v", r2.Rows)
	}
}

func TestScannedAccounting(t *testing.T) {
	d := graphInstance([][2]int64{{1, 2}, {2, 3}, {3, 4}})
	q := &cq.CQ{Free: []string{"x", "y"}, Atoms: []cq.Atom{cq.NewAtom("E", cq.Var("x"), cq.Var("y"))}}
	rs, err := CQ(q, d, ScanJoin)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Scanned != 3 {
		t.Errorf("single-atom scan should read each tuple once: %d", rs.Scanned)
	}
}

func TestResultContains(t *testing.T) {
	d := graphInstance([][2]int64{{1, 2}})
	q := &cq.CQ{Free: []string{"x", "y"}, Atoms: []cq.Atom{cq.NewAtom("E", cq.Var("x"), cq.Var("y"))}}
	r, err := CQ(q, d, ScanJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(data.Tuple{iv(1), iv(2)}) {
		t.Error("Contains(1,2) should hold")
	}
	if r.Contains(data.Tuple{iv(2), iv(1)}) {
		t.Error("Contains(2,1) should not hold")
	}
}

// Property: scan-join and hash-join agree on random path queries over
// random small graphs.
func TestModesAgreeQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		var edges [][2]int64
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int64{int64(raw[i] % 8), int64(raw[i+1] % 8)})
		}
		d := graphInstance(edges)
		q := &cq.CQ{Free: []string{"x", "z"}, Atoms: []cq.Atom{
			cq.NewAtom("E", cq.Var("x"), cq.Var("y")),
			cq.NewAtom("E", cq.Var("y"), cq.Var("z")),
		}}
		rs, err := CQ(q, d, ScanJoin)
		if err != nil {
			return false
		}
		rh, err := CQ(q, d, HashJoin)
		if err != nil {
			return false
		}
		return sameRows(rs, rh)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
