// Package ucq gives unions of conjunctive queries (UCQ) a first-class
// type: Q = Q1 ∪ ... ∪ Qk with all sub-queries sharing one head arity
// (Section 2 of the paper). It wraps the per-sub-query machinery —
// validation, classical and A-containment, coverage, bounded plans, and
// evaluation — behind one surface.
package ucq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/ainstance"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/schema"
)

// UCQ is a union of CQ sub-queries.
type UCQ struct {
	Label string
	Subs  []*cq.CQ
}

// New builds a UCQ from sub-queries, checking they agree on arity.
func New(label string, subs ...*cq.CQ) (*UCQ, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("ucq: %s: a UCQ needs at least one sub-query", label)
	}
	arity := len(subs[0].Free)
	for _, s := range subs[1:] {
		if len(s.Free) != arity {
			return nil, fmt.Errorf("ucq: %s: sub-queries disagree on arity (%d vs %d)",
				label, arity, len(s.Free))
		}
	}
	return &UCQ{Label: label, Subs: subs}, nil
}

// Arity returns the head width.
func (u *UCQ) Arity() int { return len(u.Subs[0].Free) }

// Validate checks every sub-query against the schema.
func (u *UCQ) Validate(s *schema.Schema) error {
	for _, sub := range u.Subs {
		if err := sub.Validate(s); err != nil {
			return fmt.Errorf("ucq: %s: %w", u.Label, err)
		}
	}
	return nil
}

// String renders the union of rule forms.
func (u *UCQ) String() string {
	parts := make([]string, len(u.Subs))
	for i, s := range u.Subs {
		parts[i] = s.String()
	}
	return strings.Join(parts, "  ∪  ")
}

// Eval computes the union's answers by conventional evaluation.
func (u *UCQ) Eval(d *data.Instance, mode eval.Mode) (*eval.Result, error) {
	return eval.UCQ(u.Subs, d, mode)
}

// Contains decides classical containment u ⊆ v via Sagiv–Yannakakis:
// every sub-query of u is contained in SOME sub-query of v.
func Contains(u, v *UCQ) bool {
	for _, qi := range u.Subs {
		ok := false
		for _, qj := range v.Subs {
			if cq.Contains(qi, qj) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Equivalent decides classical equivalence.
func Equivalent(u, v *UCQ) bool { return Contains(u, v) && Contains(v, u) }

// AContained decides A-containment u ⊑A v. Per Example 3.5 this is
// strictly weaker than per-pair containment: each sub-query of u is
// checked against the whole union of v over its A-instances.
func AContained(u, v *UCQ, a *access.Schema, s *schema.Schema, opt ainstance.Options) (bool, error) {
	return ainstance.UCQContained(u.Subs, v.Subs, a, s, opt)
}

// AEquivalent decides A-equivalence.
func AEquivalent(u, v *UCQ, a *access.Schema, s *schema.Schema, opt ainstance.Options) (bool, error) {
	ok, err := AContained(u, v, a, s, opt)
	if err != nil || !ok {
		return false, err
	}
	return AContained(v, u, a, s, opt)
}

// Covered runs the covered-UCQ check (Lemma 3.6 / Theorem 3.14).
func (u *UCQ) Covered(a *access.Schema, s *schema.Schema, opt cover.Options) (*cover.UCQResult, error) {
	return cover.CheckUCQ(u.Subs, a, s, opt)
}

// Plan synthesizes the bounded plan for a covered UCQ: the union of its
// covered sub-queries' plans.
func (u *UCQ) Plan(a *access.Schema, s *schema.Schema, copt cover.Options, popt plan.BuildOptions) (*plan.Plan, error) {
	res, err := u.Covered(a, s, copt)
	if err != nil {
		return nil, err
	}
	p, err := plan.BuildUCQ(res, popt)
	if err != nil {
		return nil, err
	}
	p.Label = u.Label
	return p, nil
}

// Minimize removes sub-queries classically contained in the rest of the
// union (they contribute no answers on any instance).
func (u *UCQ) Minimize() *UCQ {
	kept := append([]*cq.CQ(nil), u.Subs...)
	for i := 0; i < len(kept); {
		others := make([]*cq.CQ, 0, len(kept)-1)
		others = append(others, kept[:i]...)
		others = append(others, kept[i+1:]...)
		redundant := false
		for _, o := range others {
			if cq.Contains(kept[i], o) {
				redundant = true
				break
			}
		}
		if redundant && len(others) > 0 {
			kept = others
		} else {
			i++
		}
	}
	return &UCQ{Label: u.Label, Subs: kept}
}

// QueryLabel implements the serving-layer Query interface of
// internal/core.
func (u *UCQ) QueryLabel() string { return u.Label }

// QueryCQs returns the union's sub-queries — its UCQ normal form is
// itself.
func (u *UCQ) QueryCQs() ([]*cq.CQ, error) { return u.Subs, nil }

// CanonicalKey returns a cache key identifying the union's shape: the
// sorted multiset of the sub-queries' CanonicalKeys. Like the CQ key it is
// sound for plan caching — two UCQs with equal keys are the same union up
// to bound-variable renaming and sub-query order — and incomplete
// (semantically equivalent unions may produce distinct keys, costing a
// cache miss, never a wrong answer). Because sub-query order is
// normalized away, a cached union plan may emit rows (and carry column
// names) in the order of the first variant that was synthesized; union
// answers are sets, so the rows themselves are identical.
func (u *UCQ) CanonicalKey() string {
	keys := make([]string, len(u.Subs))
	for i, s := range u.Subs {
		keys[i] = s.CanonicalKey()
	}
	sort.Strings(keys)
	return strings.Join(keys, " ∪ ")
}
