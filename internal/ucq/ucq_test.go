package ucq

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/ainstance"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value                          { return value.NewInt(i) }
func attrs(as ...schema.Attribute) []schema.Attribute { return as }

func q(label string, free []string, atoms []cq.Atom, eqs []cq.Eq) *cq.CQ {
	return &cq.CQ{Label: label, Free: free, Atoms: atoms, Eqs: eqs}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("U"); err == nil {
		t.Error("empty union must be rejected")
	}
	q1 := q("q1", []string{"x"}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}, nil)
	q2 := q("q2", []string{"x", "y"}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}, nil)
	if _, err := New("U", q1, q2); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	u, err := New("U", q1)
	if err != nil {
		t.Fatal(err)
	}
	if u.Arity() != 1 {
		t.Errorf("arity = %d", u.Arity())
	}
}

func TestSagivYannakakisContainment(t *testing.T) {
	// path2 ∪ selfloop  ⊆  edge  (each sub maps into the single edge query)
	edge := q("edge", []string{"x"}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}, nil)
	path2 := q("path2", []string{"x"}, []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", cq.Var("y"), cq.Var("z")),
	}, nil)
	loop := q("loop", []string{"x"}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("x"))}, nil)
	u1, _ := New("U1", path2, loop)
	u2, _ := New("U2", edge)
	if !Contains(u1, u2) {
		t.Error("path2 ∪ loop ⊆ edge must hold")
	}
	if Contains(u2, u1) {
		t.Error("edge ⊄ path2 ∪ loop")
	}
	if Equivalent(u1, u2) {
		t.Error("not equivalent")
	}
}

func TestMinimize(t *testing.T) {
	edge := q("edge", []string{"x"}, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}, nil)
	path2 := q("path2", []string{"x"}, []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", cq.Var("y"), cq.Var("z")),
	}, nil)
	u, _ := New("U", edge, path2)
	m := u.Minimize()
	if len(m.Subs) != 1 || m.Subs[0].Label != "edge" {
		t.Errorf("Minimize should keep only edge: %v", m)
	}
	// Equivalence is preserved.
	if !Equivalent(u, m) {
		t.Error("minimization must preserve equivalence")
	}
}

func TestEvalUnion(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	d := data.NewInstance(s)
	d.MustInsert("R", iv(1), iv(2))
	d.MustInsert("R", iv(3), iv(3))
	edgeFrom1 := q("e1", []string{"y"},
		[]cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))},
		[]cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(1))}})
	loops := q("loops", []string{"y"},
		[]cq.Atom{cq.NewAtom("R", cq.Var("y"), cq.Var("y"))}, nil)
	u, _ := New("U", edgeFrom1, loops)
	if err := u.Validate(s); err != nil {
		t.Fatal(err)
	}
	res, err := u.Eval(d, eval.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // {2} ∪ {3}
		t.Errorf("rows = %v", res.Rows)
	}
}

// Example 3.5 again, through the UCQ type: A-containment of the union vs
// its disjuncts.
func TestAContainment(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("R", "X"),
		schema.MustRelation("S", "A", "B"),
	)
	a := access.NewSchema(access.NewConstraint("R", nil, attrs("X"), 2))
	base := []cq.Atom{
		cq.NewAtom("R", cq.Const(iv(1))),
		cq.NewAtom("R", cq.Const(iv(0))),
		cq.NewAtom("S", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", cq.Var("y")),
	}
	whole := q("Q", []string{"x"}, base, nil)
	q1 := q("Q1", []string{"x"},
		[]cq.Atom{cq.NewAtom("S", cq.Var("x"), cq.Var("y")), cq.NewAtom("R", cq.Var("y"))},
		[]cq.Eq{{L: cq.Var("y"), R: cq.Const(iv(1))}})
	q2 := q("Q2", []string{"x"},
		[]cq.Atom{cq.NewAtom("S", cq.Var("x"), cq.Var("y")), cq.NewAtom("R", cq.Var("y"))},
		[]cq.Eq{{L: cq.Var("y"), R: cq.Const(iv(0))}})
	uQ, _ := New("UQ", whole)
	uU, _ := New("UU", q1, q2)
	ok, err := AContained(uQ, uU, a, s, ainstance.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Q ⊑A Q1 ∪ Q2 must hold")
	}
	// Classical containment does NOT hold (no single disjunct contains Q).
	if Contains(uQ, uU) {
		t.Error("classical Sagiv-Yannakakis containment must fail here")
	}
}

func TestCoveredAndPlan(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("Rp", "A", "B", "C"))
	ap := access.NewSchema(access.NewConstraint("Rp", attrs("A"), attrs("B"), 4))
	q1 := q("Q1", []string{"y"},
		[]cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		[]cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(1))}})
	q2 := q("Q2", []string{"y"},
		[]cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		[]cq.Eq{
			{L: cq.Var("x"), R: cq.Const(iv(1))},
			{L: cq.Var("z"), R: cq.Var("y")},
		})
	u, _ := New("U35", q1, q2)
	res, err := u.Covered(ap, s, cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatal("Example 3.5 union must be covered")
	}
	p, err := u.Plan(ap, s, cover.Options{}, plan.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Label != "U35" {
		t.Errorf("plan label = %q", p.Label)
	}
	// Execute and compare against naive union evaluation.
	d := data.NewInstance(s)
	d.MustInsert("Rp", iv(1), iv(10), iv(10))
	d.MustInsert("Rp", iv(1), iv(20), iv(9))
	d.MustInsert("Rp", iv(2), iv(30), iv(30))
	ix, viols, err := access.BuildIndexed(ap, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Fatalf("violations: %v", viols)
	}
	got, _, err := plan.Execute(p, ix)
	if err != nil {
		t.Fatal(err)
	}
	want, err := u.Eval(d, eval.ScanJoin)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(want.Rows) {
		t.Errorf("plan=%d naive=%d", got.Len(), len(want.Rows))
	}
}

func TestStringRendering(t *testing.T) {
	q1 := q("A", nil, []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}, nil)
	q2 := q("B", nil, []cq.Atom{cq.NewAtom("R", cq.Var("y"), cq.Var("x"))}, nil)
	u, _ := New("U", q1, q2)
	if out := u.String(); !strings.Contains(out, "∪") {
		t.Errorf("rendering: %q", out)
	}
}
