// Package access implements access schemas: sets of access constraints
// R(X -> Y, N), each a cardinality constraint paired with an index on X
// for Y (Section 2 of the paper).
//
// Both the constant form R(X -> Y, N) and the general form R(X -> Y, s(·))
// with a sublinear, PTIME-computable cardinality function s are supported
// (the paper's "access constraints with non-constant cardinality").
package access

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/index"
	"repro/internal/schema"
)

// Cardinality is the bound side of an access constraint: either a constant
// N, or a named sublinear function s(|D|).
type Cardinality struct {
	// Const is the constant bound N when Fn is nil.
	Const int
	// Fn, when non-nil, is the general-form bound s(|D|). It must be
	// monotone and PTIME-computable (Cor. 3.15's condition).
	Fn func(size int) int
	// Name labels Fn for display ("log", "sqrt", ...). Empty for constants.
	Name string
}

// ConstCard returns the constant cardinality N.
func ConstCard(n int) Cardinality { return Cardinality{Const: n} }

// LogCard returns the general-form cardinality s(|D|) = ceil(log2(|D|+1)).
func LogCard() Cardinality {
	return Cardinality{
		Fn:   func(size int) int { return int(math.Ceil(math.Log2(float64(size) + 1))) },
		Name: "log",
	}
}

// SqrtCard returns the general-form cardinality s(|D|) = ceil(sqrt(|D|)).
func SqrtCard() Cardinality {
	return Cardinality{
		Fn:   func(size int) int { return int(math.Ceil(math.Sqrt(float64(size)))) },
		Name: "sqrt",
	}
}

// IsConst reports whether the bound is the constant form.
func (c Cardinality) IsConst() bool { return c.Fn == nil }

// Bound evaluates the bound for a dataset of the given size. For constant
// cardinalities the size is ignored.
func (c Cardinality) Bound(size int) int {
	if c.Fn != nil {
		return c.Fn(size)
	}
	return c.Const
}

// String renders "610" or "log(|D|)".
func (c Cardinality) String() string {
	if c.Fn != nil {
		return c.Name + "(|D|)"
	}
	return fmt.Sprint(c.Const)
}

// Constraint is one access constraint R(X -> Y, N).
type Constraint struct {
	Rel  string
	X, Y []schema.Attribute
	Card Cardinality
}

// NewConstraint builds the constant-cardinality constraint R(X -> Y, N).
func NewConstraint(rel string, x, y []schema.Attribute, n int) Constraint {
	return Constraint{Rel: rel, X: x, Y: y, Card: ConstCard(n)}
}

// Validate checks the constraint is well formed over s: the relation exists,
// X and Y are attributes of it, and the bound is sane.
func (c Constraint) Validate(s *schema.Schema) error {
	rs, ok := s.Relation(c.Rel)
	if !ok {
		return fmt.Errorf("access: constraint references unknown relation %s", c.Rel)
	}
	if !rs.HasAttrs(c.X) {
		return fmt.Errorf("access: %s: X attributes %v not all in %s", c, c.X, rs)
	}
	if !rs.HasAttrs(c.Y) {
		return fmt.Errorf("access: %s: Y attributes %v not all in %s", c, c.Y, rs)
	}
	if len(c.Y) == 0 {
		return fmt.Errorf("access: %s: Y must be nonempty", c)
	}
	if c.Card.IsConst() && c.Card.Const < 1 {
		return fmt.Errorf("access: %s: constant bound must be >= 1", c)
	}
	return nil
}

// Covers reports whether attribute a is in X ∪ Y.
func (c Constraint) Covers(a schema.Attribute) bool {
	return attrIn(c.X, a) || attrIn(c.Y, a)
}

// HasX reports whether a ∈ X.
func (c Constraint) HasX(a schema.Attribute) bool { return attrIn(c.X, a) }

// HasY reports whether a ∈ Y.
func (c Constraint) HasY(a schema.Attribute) bool { return attrIn(c.Y, a) }

func attrIn(as []schema.Attribute, a schema.Attribute) bool {
	for _, b := range as {
		if a == b {
			return true
		}
	}
	return false
}

// String renders the paper's notation, e.g. "Accident(date -> aid, 610)".
func (c Constraint) String() string {
	return fmt.Sprintf("%s(%s -> %s, %s)", c.Rel, joinAttrs(c.X), joinAttrs(c.Y), c.Card)
}

func joinAttrs(as []schema.Attribute) string {
	if len(as) == 0 {
		return "∅"
	}
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = string(a)
	}
	return strings.Join(parts, " ")
}

// Schema is an access schema A: a set of access constraints over one
// relational schema.
type Schema struct {
	Constraints []Constraint
}

// NewSchema collects constraints into an access schema.
func NewSchema(cs ...Constraint) *Schema {
	return &Schema{Constraints: append([]Constraint(nil), cs...)}
}

// Validate checks every constraint against the relational schema.
func (a *Schema) Validate(s *schema.Schema) error {
	for _, c := range a.Constraints {
		if err := c.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// ForRelation returns the constraints on the named relation.
func (a *Schema) ForRelation(rel string) []Constraint {
	var out []Constraint
	for _, c := range a.Constraints {
		if c.Rel == rel {
			out = append(out, c)
		}
	}
	return out
}

// Size is |A| for complexity accounting: total attribute mentions plus one
// per constraint.
func (a *Schema) Size() int {
	n := 0
	for _, c := range a.Constraints {
		n += 1 + len(c.X) + len(c.Y)
	}
	return n
}

// MaxConstBound returns the largest constant bound, used when deriving
// worst-case access bounds. General-form constraints evaluate at the given
// dataset size.
func (a *Schema) MaxConstBound(size int) int {
	m := 0
	for _, c := range a.Constraints {
		if b := c.Card.Bound(size); b > m {
			m = b
		}
	}
	return m
}

// CoversSchema implements the syntactic condition of Proposition 5.4:
// A covers R iff for each relation schema R in R there is a constraint
// R(X -> Y, N) in A such that every attribute of R is in X ∪ Y.
func (a *Schema) CoversSchema(s *schema.Schema) bool {
	for _, rs := range s.Relations() {
		ok := false
		for _, c := range a.ForRelation(rs.Name) {
			all := true
			for _, attr := range rs.Attrs {
				if !c.Covers(attr) {
					all = false
					break
				}
			}
			if all {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// String renders one constraint per line, in order.
func (a *Schema) String() string {
	parts := make([]string, len(a.Constraints))
	for i, c := range a.Constraints {
		parts[i] = c.String()
	}
	return strings.Join(parts, "\n")
}

// Violation describes one failed cardinality check during validation of an
// instance against an access schema.
type Violation struct {
	Constraint Constraint
	// Group is the offending |D_Y(X = ā)| and Bound the allowed maximum.
	Group, Bound int
}

func (v Violation) Error() string {
	return fmt.Sprintf("access: %s violated: group of %d exceeds bound %d",
		v.Constraint, v.Group, v.Bound)
}

// MarshalJSON renders the violation for wire surfaces (internal/server's
// 409 payload): the constraint as written, the offending group size, and
// the allowed bound. HTML escaping is off so "->" survives verbatim.
func (v Violation) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	err := enc.Encode(struct {
		Constraint string `json:"constraint"`
		Group      int    `json:"group"`
		Bound      int    `json:"bound"`
	}{v.Constraint.String(), v.Group, v.Bound})
	return bytes.TrimRight(buf.Bytes(), "\n"), err
}

// Indexed is an access schema whose indices have been built over a concrete
// instance; it is what bounded query plans execute against.
type Indexed struct {
	Access   *Schema
	Instance *data.Instance
	// indexes[i] backs Access.Constraints[i].
	indexes []*index.Index
}

// BuildIndexed builds all indices of a over d and verifies that d satisfies
// every cardinality bound (D |= A). It returns the indexed schema and the
// violations, if any; indices are returned even when violations exist so
// callers can report precisely.
func BuildIndexed(a *Schema, d *data.Instance) (*Indexed, []Violation, error) {
	ix := &Indexed{Access: a, Instance: d, indexes: make([]*index.Index, len(a.Constraints))}
	var viols []Violation
	size := d.Size()
	for i, c := range a.Constraints {
		rel := d.Relation(c.Rel)
		if rel == nil {
			return nil, nil, fmt.Errorf("access: instance has no relation %s", c.Rel)
		}
		idx, err := index.Build(rel, c.X, c.Y)
		if err != nil {
			return nil, nil, err
		}
		ix.indexes[i] = idx
		if g, b := idx.MaxGroup(), c.Card.Bound(size); g > b {
			viols = append(viols, Violation{Constraint: c, Group: g, Bound: b})
		}
	}
	return ix, viols, nil
}

// Index returns the index backing constraint i.
func (ix *Indexed) Index(i int) *index.Index { return ix.indexes[i] }

// RestoreIndexed wraps pre-built indexes around an instance WITHOUT
// rebuilding or re-validating them — the recovery fast path of
// internal/durable, where the indexes come deserialized from a
// CRC-checked checkpoint. idxs[i] must index Constraints[i] (same
// relation; the caller restored X and Y from the constraint itself).
// Unlike BuildIndexed, no D |= A check runs: a checkpoint records a
// state that was validated when it was committed.
func RestoreIndexed(a *Schema, d *data.Instance, idxs []*index.Index) (*Indexed, error) {
	if len(idxs) != len(a.Constraints) {
		return nil, fmt.Errorf("access: restore has %d indexes for %d constraints", len(idxs), len(a.Constraints))
	}
	for i, c := range a.Constraints {
		if idxs[i] == nil {
			return nil, fmt.Errorf("access: restore missing index for constraint %s", c)
		}
		if idxs[i].Rel != c.Rel {
			return nil, fmt.Errorf("access: restored index on %s for constraint %s", idxs[i].Rel, c)
		}
	}
	return &Indexed{Access: a, Instance: d, indexes: append([]*index.Index(nil), idxs...)}, nil
}

// CloneWith returns an Indexed over inst that shares ix's indexes except
// those replaced in repl (keyed by constraint position). It is the
// access-schema-level copy-on-write step of a snapshotted update: ix and
// everything reachable from it stay untouched, so in-flight readers of ix
// keep a consistent pre-update view.
func (ix *Indexed) CloneWith(inst *data.Instance, repl map[int]*index.Index) (*Indexed, error) {
	cp := &Indexed{
		Access:   ix.Access,
		Instance: inst,
		indexes:  append([]*index.Index(nil), ix.indexes...),
	}
	for i, idx := range repl {
		if i < 0 || i >= len(cp.indexes) {
			return nil, fmt.Errorf("access: no constraint %d to replace an index for", i)
		}
		c := ix.Access.Constraints[i]
		if idx.Rel != c.Rel {
			return nil, fmt.Errorf("access: replacement index on %s for constraint %s", idx.Rel, c)
		}
		cp.indexes[i] = idx
	}
	return cp, nil
}

// IndexFor returns the index for a constraint equal to c (same relation,
// X, Y), or nil.
func (ix *Indexed) IndexFor(c Constraint) *index.Index {
	for i, cc := range ix.Access.Constraints {
		if cc.Rel == c.Rel && attrsEqual(cc.X, c.X) && attrsEqual(cc.Y, c.Y) {
			return ix.indexes[i]
		}
	}
	return nil
}

func attrsEqual(a, b []schema.Attribute) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Satisfies reports whether d |= a, i.e. every cardinality bound holds.
// It builds throwaway indices; prefer BuildIndexed when you also need them.
func Satisfies(a *Schema, d *data.Instance) (bool, error) {
	_, viols, err := BuildIndexed(a, d)
	if err != nil {
		return false, err
	}
	return len(viols) == 0, nil
}

// Discover mines access constraints from an instance, emulating the paper's
// "constraints are discovered by simple aggregate queries on D". For every
// relation and every candidate (X, Y) pair with |X| <= maxX and single
// attributes as Y, it measures max |D_Y(X = ā)| and emits a constraint when
// the bound is at most maxBound. Keys (bound 1) are always kept.
func Discover(s *schema.Schema, d *data.Instance, maxX, maxBound int) *Schema {
	var out []Constraint
	for _, rs := range s.Relations() {
		rel := d.Relation(rs.Name)
		if rel == nil || rel.Len() == 0 {
			continue
		}
		for _, x := range attrSubsets(rs.Attrs, maxX) {
			// Y = all attributes not in X (widest useful Y for this X).
			var y []schema.Attribute
			for _, a := range rs.Attrs {
				if !attrIn(x, a) {
					y = append(y, a)
				}
			}
			if len(y) == 0 {
				continue
			}
			idx, err := index.Build(rel, x, y)
			if err != nil {
				continue
			}
			if g := idx.MaxGroup(); g <= maxBound {
				out = append(out, Constraint{Rel: rs.Name, X: x, Y: y, Card: ConstCard(g)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return NewSchema(out...)
}

// attrSubsets enumerates subsets of attrs of size 0..max, in a stable order.
func attrSubsets(attrs []schema.Attribute, max int) [][]schema.Attribute {
	var out [][]schema.Attribute
	n := len(attrs)
	var rec func(start int, cur []schema.Attribute)
	rec = func(start int, cur []schema.Attribute) {
		if len(cur) <= max {
			out = append(out, append([]schema.Attribute(nil), cur...))
		}
		if len(cur) == max {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, attrs[i]))
		}
	}
	rec(0, nil)
	return out
}
