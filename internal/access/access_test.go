package access

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

func accidentSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("Accident", "aid", "district", "date"),
		schema.MustRelation("Casualty", "cid", "aid", "class", "vid"),
		schema.MustRelation("Vehicle", "vid", "driver", "age"),
	)
}

// psi1..psi4 are the constraints of Example 1.1.
func exampleConstraints() *Schema {
	return NewSchema(
		NewConstraint("Accident", []schema.Attribute{"date"}, []schema.Attribute{"aid"}, 610),
		NewConstraint("Casualty", []schema.Attribute{"aid"}, []schema.Attribute{"vid"}, 192),
		NewConstraint("Accident", []schema.Attribute{"aid"}, []schema.Attribute{"district", "date"}, 1),
		NewConstraint("Vehicle", []schema.Attribute{"vid"}, []schema.Attribute{"driver", "age"}, 1),
	)
}

func TestConstraintValidate(t *testing.T) {
	s := accidentSchema()
	if err := exampleConstraints().Validate(s); err != nil {
		t.Fatalf("example constraints should validate: %v", err)
	}
	bad := NewConstraint("Nope", nil, []schema.Attribute{"x"}, 1)
	if err := bad.Validate(s); err == nil {
		t.Error("unknown relation must be rejected")
	}
	bad = NewConstraint("Accident", []schema.Attribute{"ghost"}, []schema.Attribute{"aid"}, 1)
	if err := bad.Validate(s); err == nil {
		t.Error("unknown X attribute must be rejected")
	}
	bad = NewConstraint("Accident", []schema.Attribute{"aid"}, nil, 1)
	if err := bad.Validate(s); err == nil {
		t.Error("empty Y must be rejected")
	}
	bad = NewConstraint("Accident", []schema.Attribute{"aid"}, []schema.Attribute{"date"}, 0)
	if err := bad.Validate(s); err == nil {
		t.Error("zero bound must be rejected")
	}
}

func TestConstraintString(t *testing.T) {
	c := NewConstraint("Accident", []schema.Attribute{"date"}, []schema.Attribute{"aid"}, 610)
	if got := c.String(); got != "Accident(date -> aid, 610)" {
		t.Errorf("String = %q", got)
	}
	empty := NewConstraint("R", nil, []schema.Attribute{"C"}, 1)
	if got := empty.String(); !strings.Contains(got, "∅") {
		t.Errorf("empty X should render as ∅: %q", got)
	}
}

func TestCardinalityForms(t *testing.T) {
	if got := ConstCard(610).Bound(1 << 20); got != 610 {
		t.Errorf("const bound = %d", got)
	}
	lg := LogCard()
	if lg.IsConst() {
		t.Error("log cardinality should not be const")
	}
	if got := lg.Bound(1023); got != 10 {
		t.Errorf("log2(1024) bound = %d, want 10", got)
	}
	sq := SqrtCard()
	if got := sq.Bound(100); got != 10 {
		t.Errorf("sqrt(100) bound = %d, want 10", got)
	}
	if got := lg.String(); got != "log(|D|)" {
		t.Errorf("log render = %q", got)
	}
}

func smallAccidentInstance(s *schema.Schema) *data.Instance {
	d := data.NewInstance(s)
	// Two accidents on the same date, one elsewhere.
	d.MustInsert("Accident", value.NewInt(1), value.NewString("Queen's Park"), value.NewString("1/5/2005"))
	d.MustInsert("Accident", value.NewInt(2), value.NewString("Soho"), value.NewString("1/5/2005"))
	d.MustInsert("Accident", value.NewInt(3), value.NewString("Soho"), value.NewString("2/5/2005"))
	d.MustInsert("Casualty", value.NewInt(10), value.NewInt(1), value.NewInt(1), value.NewInt(100))
	d.MustInsert("Casualty", value.NewInt(11), value.NewInt(1), value.NewInt(2), value.NewInt(101))
	d.MustInsert("Vehicle", value.NewInt(100), value.NewString("alice"), value.NewInt(34))
	d.MustInsert("Vehicle", value.NewInt(101), value.NewString("bob"), value.NewInt(51))
	return d
}

func TestBuildIndexedSatisfied(t *testing.T) {
	s := accidentSchema()
	a := exampleConstraints()
	d := smallAccidentInstance(s)
	ix, viols, err := BuildIndexed(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Fatalf("unexpected violations: %v", viols)
	}
	idx := ix.IndexFor(a.Constraints[0]) // Accident(date -> aid)
	if idx == nil {
		t.Fatal("IndexFor psi1 returned nil")
	}
	got := idx.Fetch([]value.Value{value.NewString("1/5/2005")}).Tuples()
	if len(got) != 2 {
		t.Errorf("aids on 1/5/2005 = %d, want 2", len(got))
	}
}

func TestViolationDetected(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	d := data.NewInstance(s)
	for i := int64(0); i < 5; i++ {
		d.MustInsert("R", value.NewInt(1), value.NewInt(i))
	}
	a := NewSchema(NewConstraint("R", []schema.Attribute{"A"}, []schema.Attribute{"B"}, 3))
	ok, err := Satisfies(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("5 B-values for one A should violate bound 3")
	}
	_, viols, err := BuildIndexed(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 1 || viols[0].Group != 5 || viols[0].Bound != 3 {
		t.Errorf("violations = %+v", viols)
	}
	if !strings.Contains(viols[0].Error(), "exceeds bound 3") {
		t.Errorf("violation message: %s", viols[0].Error())
	}
}

func TestGeneralFormValidation(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	d := data.NewInstance(s)
	// 8 tuples total; log2(9)≈3.17 → bound 4. Give A=1 exactly 4 B-values.
	for i := int64(0); i < 4; i++ {
		d.MustInsert("R", value.NewInt(1), value.NewInt(i))
	}
	for i := int64(0); i < 4; i++ {
		d.MustInsert("R", value.NewInt(10+i), value.NewInt(0))
	}
	a := NewSchema(Constraint{Rel: "R", X: []schema.Attribute{"A"}, Y: []schema.Attribute{"B"}, Card: LogCard()})
	ok, err := Satisfies(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("log-form constraint should be satisfied")
	}
}

func TestForRelationAndSize(t *testing.T) {
	a := exampleConstraints()
	if got := len(a.ForRelation("Accident")); got != 2 {
		t.Errorf("ForRelation(Accident) = %d, want 2", got)
	}
	if got := len(a.ForRelation("Vehicle")); got != 1 {
		t.Errorf("ForRelation(Vehicle) = %d, want 1", got)
	}
	if a.Size() == 0 {
		t.Error("Size should be positive")
	}
	if got := a.MaxConstBound(0); got != 610 {
		t.Errorf("MaxConstBound = %d, want 610", got)
	}
}

func TestCoversSchema(t *testing.T) {
	s := accidentSchema()
	if exampleConstraints().CoversSchema(s) {
		// Casualty has cid, class not covered by psi2 (aid -> vid).
		t.Error("example constraints should NOT cover the full schema")
	}
	full := NewSchema(
		NewConstraint("Accident", []schema.Attribute{"aid"}, []schema.Attribute{"district", "date"}, 1),
		NewConstraint("Casualty", []schema.Attribute{"cid"}, []schema.Attribute{"aid", "class", "vid"}, 1),
		NewConstraint("Vehicle", []schema.Attribute{"vid"}, []schema.Attribute{"driver", "age"}, 1),
	)
	if !full.CoversSchema(s) {
		t.Error("key-per-relation schema should cover R (Prop. 5.4 condition)")
	}
}

func TestDiscover(t *testing.T) {
	s := accidentSchema()
	d := smallAccidentInstance(s)
	a := Discover(s, d, 1, 700)
	if len(a.Constraints) == 0 {
		t.Fatal("Discover found nothing")
	}
	// A key-like constraint on Vehicle(vid -> ...) must be discovered with bound 1.
	found := false
	for _, c := range a.Constraints {
		if c.Rel == "Vehicle" && len(c.X) == 1 && c.X[0] == "vid" && c.Card.Const == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected Vehicle(vid -> ..., 1) among discovered: %v", a)
	}
	// Every discovered constraint must actually hold on d.
	ok, err := Satisfies(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("discovered constraints must be satisfied by the mining instance")
	}
}

func TestIndexForMissing(t *testing.T) {
	s := accidentSchema()
	a := exampleConstraints()
	d := smallAccidentInstance(s)
	ix, _, err := BuildIndexed(a, d)
	if err != nil {
		t.Fatal(err)
	}
	other := NewConstraint("Accident", []schema.Attribute{"district"}, []schema.Attribute{"aid"}, 9)
	if ix.IndexFor(other) != nil {
		t.Error("IndexFor must return nil for absent constraints")
	}
}
