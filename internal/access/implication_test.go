package access

import (
	"testing"

	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

func attrs(as ...schema.Attribute) []schema.Attribute { return as }

func TestImpliesBasics(t *testing.T) {
	key := NewConstraint("R", attrs("A"), attrs("B", "C"), 1)
	wider := NewConstraint("R", attrs("A"), attrs("B"), 5)
	if !Implies(key, wider) {
		t.Error("a key on A for B,C implies A -> B with any larger bound")
	}
	if Implies(wider, key) {
		t.Error("the wide constraint cannot imply the key (bound too large)")
	}
	// Composite X: R(A B -> C, 2) is implied by R(A -> B C, 1): X2={A,B} ⊇
	// X1={A}; X2 ⊆ X1∪Y1 = {A,B,C}; Y2={C} ⊆ {A,B,C}; 1 ≤ 2.
	composite := NewConstraint("R", attrs("A", "B"), attrs("C"), 2)
	keyABC := NewConstraint("R", attrs("A"), attrs("B", "C"), 1)
	if !Implies(keyABC, composite) {
		t.Error("A -> BC key implies AB -> C")
	}
	// The reverse fails: X1={A,B} ⊄ X2={A}.
	if Implies(composite, keyABC) {
		t.Error("AB -> C cannot imply A -> BC")
	}
}

func TestImpliesGuards(t *testing.T) {
	c1 := NewConstraint("R", attrs("A"), attrs("B"), 1)
	c2 := NewConstraint("S", attrs("A"), attrs("B"), 5)
	if Implies(c1, c2) {
		t.Error("different relations never imply")
	}
	// Y2 not retrievable from c1's index.
	c3 := NewConstraint("R", attrs("A"), attrs("C"), 5)
	if Implies(c1, c3) {
		t.Error("C is not in X1 ∪ Y1; the index cannot serve it")
	}
	// X2 has an attribute the index cannot filter on.
	c4 := NewConstraint("R", attrs("A", "C"), attrs("B"), 5)
	if Implies(c1, c4) {
		t.Error("C is not retrievable for filtering")
	}
	// General-form constraints are never compared.
	logC := Constraint{Rel: "R", X: attrs("A"), Y: attrs("B"), Card: LogCard()}
	if Implies(logC, c1) || Implies(c1, logC) {
		t.Error("general-form constraints are not compared")
	}
}

func TestMinimizeSchema(t *testing.T) {
	a := NewSchema(
		NewConstraint("R", attrs("A"), attrs("B", "C"), 1), // key
		NewConstraint("R", attrs("A"), attrs("B"), 5),      // implied
		NewConstraint("R", attrs("A", "B"), attrs("C"), 3), // implied
		NewConstraint("R", attrs("B"), attrs("A"), 4),      // independent
	)
	m := a.Minimize()
	if len(m.Constraints) != 2 {
		t.Fatalf("minimized to %d constraints, want 2: %v", len(m.Constraints), m)
	}
	if m.Constraints[0].Card.Const != 1 {
		t.Errorf("the key must survive: %v", m)
	}
	if m.Constraints[1].X[0] != "B" {
		t.Errorf("the independent constraint must survive: %v", m)
	}
}

func TestMinimizeKeepsOneOfEquals(t *testing.T) {
	c := NewConstraint("R", attrs("A"), attrs("B"), 2)
	a := NewSchema(c, c) // duplicate
	m := a.Minimize()
	if len(m.Constraints) != 1 {
		t.Fatalf("duplicates should collapse to one: %v", m)
	}
}

func TestSortedBySpecificity(t *testing.T) {
	a := NewSchema(
		NewConstraint("R", attrs("A"), attrs("B"), 100),
		NewConstraint("R", attrs("C"), attrs("B"), 1),
		NewConstraint("Q", attrs("A"), attrs("B"), 50),
	)
	s := a.SortedBySpecificity()
	if s.Constraints[0].Rel != "Q" {
		t.Errorf("relations sort first: %v", s.Constraints)
	}
	if s.Constraints[1].Card.Const != 1 || s.Constraints[2].Card.Const != 100 {
		t.Errorf("tight bounds first within a relation: %v", s.Constraints)
	}
	// Original untouched.
	if a.Constraints[0].Card.Const != 100 {
		t.Error("SortedBySpecificity must not mutate the receiver")
	}
}

func TestMinimizePreservesSatisfaction(t *testing.T) {
	// Any instance satisfying the minimized schema's survivors also
	// satisfies the implied ones (soundness of Implies) — spot-check.
	s := schema.MustNew(schema.MustRelation("R", "A", "B", "C"))
	a := NewSchema(
		NewConstraint("R", attrs("A"), attrs("B", "C"), 1),
		NewConstraint("R", attrs("A"), attrs("B"), 5),
	)
	m := a.Minimize()
	d := instanceWithKey(s)
	okFull, err := Satisfies(a, d)
	if err != nil {
		t.Fatal(err)
	}
	okMin, err := Satisfies(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if okFull != okMin {
		t.Errorf("satisfaction diverged: full=%v min=%v", okFull, okMin)
	}
}

func instanceWithKey(s *schema.Schema) *data.Instance {
	d := data.NewInstance(s)
	d.MustInsert("R", value.NewInt(1), value.NewInt(10), value.NewInt(100))
	d.MustInsert("R", value.NewInt(2), value.NewInt(20), value.NewInt(200))
	return d
}
