package access

import (
	"sort"
)

// Implies reports whether constraint c1 makes c2 redundant — both the
// cardinality half and the index half:
//
//   - cardinality: if X2 ⊇ X1 and Y2 ⊆ X2 ∪ Y1, then any X2-value fixes an
//     X1-value, so there are at most N1 distinct Y1-projections and hence
//     at most N1 distinct Y2-projections; with N1 ≤ N2 the bound of c2
//     follows from c1.
//   - index: the index on X1 for Y1 can answer fetch(X2, R, Y2) when the
//     extra key attributes X2 \ X1 are retrievable for filtering, i.e.
//     X2 ⊆ X1 ∪ Y1, and the requested Y2 are available, i.e.
//     Y2 ⊆ X1 ∪ Y1 (look up the X1-part, filter the bucket on the
//     X2-extras, project Y2). The bucket scan stays within N1 entries.
//
// Both constraints must be over one relation and constant-form (general
// s(·) bounds are not compared).
func Implies(c1, c2 Constraint) bool {
	if c1.Rel != c2.Rel || !c1.Card.IsConst() || !c2.Card.IsConst() {
		return false
	}
	if c1.Card.Const > c2.Card.Const {
		return false
	}
	// X1 ⊆ X2 (cardinality side) and X2 ⊆ X1 ∪ Y1 (index side).
	for _, a := range c1.X {
		if !attrIn(c2.X, a) {
			return false
		}
	}
	for _, a := range c2.X {
		if !attrIn(c1.X, a) && !attrIn(c1.Y, a) {
			return false
		}
	}
	// Y2 ⊆ X1 ∪ Y1 (retrievable) — note Y2 ⊆ X2 ∪ Y1 then follows for the
	// cardinality side since X1 ⊆ X2.
	for _, a := range c2.Y {
		if !attrIn(c1.X, a) && !attrIn(c1.Y, a) {
			return false
		}
	}
	return true
}

// Minimize removes constraints implied by others, keeping the earliest
// (declaration-order) representative of each implication class. The result
// admits the same covered queries up to index emulation and carries fewer
// indices to maintain — the practical payoff of pruning a Discover output.
func (a *Schema) Minimize() *Schema {
	n := len(a.Constraints)
	drop := make([]bool, n)
	for i := 0; i < n; i++ {
		if drop[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || drop[j] {
				continue
			}
			if Implies(a.Constraints[i], a.Constraints[j]) {
				// Avoid dropping both of a mutually-implying pair: the
				// earlier one wins.
				if Implies(a.Constraints[j], a.Constraints[i]) && j < i {
					continue
				}
				drop[j] = true
			}
		}
	}
	var kept []Constraint
	for i, c := range a.Constraints {
		if !drop[i] {
			kept = append(kept, c)
		}
	}
	return NewSchema(kept...)
}

// SortedBySpecificity orders constraints by (relation, |X|, bound, text),
// which puts the cheapest (smallest-bound) indexes first — the order the
// coverage analysis prefers when several constraints index one atom.
func (a *Schema) SortedBySpecificity() *Schema {
	out := append([]Constraint(nil), a.Constraints...)
	sort.SliceStable(out, func(i, j int) bool {
		ci, cj := out[i], out[j]
		if ci.Rel != cj.Rel {
			return ci.Rel < cj.Rel
		}
		bi, bj := ci.Card.Bound(1<<20), cj.Card.Bound(1<<20)
		if bi != bj {
			return bi < bj
		}
		if len(ci.X) != len(cj.X) {
			return len(ci.X) < len(cj.X)
		}
		return ci.String() < cj.String()
	})
	return NewSchema(out...)
}
