package cluster

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/durable"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/live"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/specialize"
	"repro/internal/value"
)

// historyLen bounds the node's ring of recently committed snapshots.
// Readers pin the coordinator's version, which trails the node's by at
// most one commit in flight, so a short ring covers every legitimate
// fetch; it also holds the rollback targets for commit-fanout repair.
const historyLen = 8

// nodeSnap is one committed local version: the shard's indexed
// partition and its size.
type nodeSnap struct {
	ix      *access.Indexed
	size    int
	version uint64
}

// stagedTxn is a staged-but-unpublished sub-delta: live's copy-on-write
// Staged (nil when the sub-delta was empty — the node still commits a
// version bump so the cluster's versions stay in lockstep) plus the
// delta itself for the WAL record at commit.
type stagedTxn struct {
	txn   string
	base  uint64
	st    *live.Staged
	delta *live.Delta
}

// Node is one shard server: it owns partition id of K, serves the full
// /v1/* read surface over its share through the same planner machinery
// as every other engine (it implements core.Queryable), and exposes the
// /v1/internal/* protocol the coordinator drives. Direct writes are
// refused — Apply through the coordinator.
type Node struct {
	Schema *schema.Schema
	Access *access.Schema

	id      int
	place   *placement
	planner *core.Engine

	// cur is the current committed snapshot (nil before data arrives).
	// mu serializes writes — load, stage, commit, rollback — and guards
	// the maps below; reads go through cur or the history ring.
	cur     atomic.Pointer[nodeSnap]
	mu      sync.Mutex
	history map[uint64]*nodeSnap
	staged  map[string]*stagedTxn
	// lastTxn/lastCommit make commit idempotent: the coordinator retries
	// commits through transient failures, and a duplicate must answer
	// the original result instead of failing on the missing staged txn.
	lastTxn    string
	lastCommit commitResponse
	store      *durable.Store
	applies    atomic.Uint64
}

var _ core.Queryable = (*Node)(nil)

// NewNode builds shard server id of k over the shared catalog.
func NewNode(s *schema.Schema, a *access.Schema, id, k int, opts Options) (*Node, error) {
	if id < 0 || id >= k {
		return nil, fmt.Errorf("cluster: shard id %d out of range [0,%d)", id, k)
	}
	place, err := newPlacement(s, a, k, opts.PartitionKeys)
	if err != nil {
		return nil, err
	}
	planner, err := core.New(s, a, opts.Core)
	if err != nil {
		return nil, err
	}
	return &Node{
		Schema:  s,
		Access:  a,
		id:      id,
		place:   place,
		planner: planner,
		history: make(map[uint64]*nodeSnap),
		staged:  make(map[string]*stagedTxn),
	}, nil
}

// ID returns the node's shard id.
func (n *Node) ID() int { return n.id }

// Shards returns K.
func (n *Node) Shards() int { return n.place.k }

func (n *Node) errNoInstance() error {
	return fmt.Errorf("cluster: shard %d has no instance loaded", n.id)
}

// Load filters d down to this node's partition and installs it at
// version 0. Every node in a fleet can be pointed at the same dataset;
// each keeps exactly its ShardOf share. Local cardinality violations
// are NOT checked here — bounds hold at the global |D|, which only the
// coordinator sees; it validates the fleet at attach (and every delta
// at Apply).
func (n *Node) Load(d *data.Instance) error {
	sub, err := n.place.filter(n.Schema, d, n.id)
	if err != nil {
		return err
	}
	return n.LoadOwn(sub)
}

// LoadOwn installs sub — already restricted to this node's partition —
// at version 0, resetting any durable history (a reload starts a new
// timeline, exactly like the in-process engines).
func (n *Node) LoadOwn(sub *data.Instance) error {
	ix, _, err := access.BuildIndexed(n.Access, sub)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store != nil {
		if err := n.store.Reset(); err != nil {
			return err
		}
		base := &durable.State{Instance: sub, Indexed: ix, Version: 0}
		if err := n.store.WriteCheckpoint(n.Schema, base); err != nil {
			return err
		}
	}
	sub.ReleaseDedup()
	sn := &nodeSnap{ix: ix, size: sub.Size(), version: 0}
	n.history = map[uint64]*nodeSnap{0: sn}
	n.staged = make(map[string]*stagedTxn)
	n.lastTxn = ""
	n.cur.Store(sn)
	n.planner.SetSizeHint(sn.size)
	return nil
}

// snapAt resolves a reader's pinned version: the current snapshot on
// the fast path, the history ring otherwise. A nil return means the
// version is gone (never committed here, or pruned) — the caller
// answers a structured stale_version refusal.
func (n *Node) snapAt(v uint64) *nodeSnap {
	if sn := n.cur.Load(); sn != nil && sn.version == v {
		return sn
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.history[v]
}

// fetch serves index lookups at the reader's pinned version: for each
// key, constraint ci's bucket on this shard. A version the node no
// longer holds answers a structured stale_version refusal — the
// coordinator surfaces it rather than read torn state.
func (n *Node) fetch(v uint64, ci int, keys []string) (*fetchResponse, error) {
	sn := n.snapAt(v)
	if sn == nil {
		return nil, &PeerError{Peer: n.id, Status: 410, Code: "stale_version",
			Message: fmt.Sprintf("version %d is not available on shard %d", v, n.id)}
	}
	if ci < 0 || ci >= len(n.Access.Constraints) {
		return nil, &PeerError{Peer: n.id, Status: 400, Code: "bad_request",
			Message: fmt.Sprintf("no constraint %d", ci)}
	}
	idx := sn.ix.Index(ci)
	resp := &fetchResponse{Buckets: make([]wireBucket, len(keys))}
	for i, wk := range keys {
		k, err := decodeKey(wk)
		if err != nil {
			return nil, &PeerError{Peer: n.id, Status: 400, Code: "bad_request", Message: err.Error()}
		}
		resp.Buckets[i] = encodeBucket(idx.FetchKey(k))
	}
	return resp, nil
}

// dump streams this node's partition at the pinned version — the bulk
// feed for the coordinator's scan fallback and baseline evaluation.
func (n *Node) dump(w io.Writer, v uint64) error {
	sn := n.snapAt(v)
	if sn == nil {
		return &PeerError{Peer: n.id, Status: 410, Code: "stale_version",
			Message: fmt.Sprintf("version %d is not available on shard %d", v, n.id)}
	}
	return writeInstanceTSV(w, n.Schema, sn.ix.Instance)
}

// stage stages delta d (this node's sub-delta of a cluster-wide write)
// on top of committed version base, publishing nothing. Any previously
// staged transaction is discarded — the coordinator serializes writes,
// so an older staged txn can only be the leftover of an aborted
// coordinator attempt. If the node sits exactly one version AHEAD of
// base, a commit fanout died after reaching this node but before the
// coordinator published; the write was reported failed, so the node
// self-heals by rolling back to base before staging.
func (n *Node) stage(ctx context.Context, txn string, base uint64, d *live.Delta) (*stageResponse, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sn := n.cur.Load()
	if sn == nil {
		return nil, n.errNoInstance()
	}
	if sn.version == base+1 && n.history[base] != nil {
		if err := n.rollbackLocked(base); err != nil {
			return nil, err
		}
		sn = n.cur.Load()
	}
	if sn.version != base {
		return nil, &PeerError{Peer: n.id, Status: 409, Code: "version_mismatch",
			Message: fmt.Sprintf("stage base %d, node at version %d", base, sn.version)}
	}
	n.staged = make(map[string]*stagedTxn)
	tx := &stagedTxn{txn: txn, base: base, delta: d}
	resp := &stageResponse{
		Size:        sn.size,
		OldSize:     sn.size,
		Constraints: make([]stageConstraint, len(n.Access.Constraints)),
	}
	if d.Len() > 0 {
		st, err := live.Stage(ctx, d, sn.ix)
		if err != nil {
			return nil, err
		}
		tx.st = st
		resp.Size = st.Size()
		resp.OldSize = st.OldSize()
		resp.Inserted = st.Inserted()
		resp.Deleted = st.Deleted()
		for ci := range n.Access.Constraints {
			if !st.Touched(ci) {
				continue
			}
			sc := &resp.Constraints[ci]
			sc.Touched = true
			idx := st.Index(ci)
			for _, k := range st.InsertKeys(ci) {
				if g := idx.FetchKey(k).Len(); g > sc.MaxInsert {
					sc.MaxInsert = g
				}
				sc.InsertKeys = append(sc.InsertKeys, encodeKey([]byte(k)))
			}
		}
	}
	n.staged[txn] = tx
	return resp, nil
}

// resolvePostIndex is the post-delta index for constraint ci: the
// staged clone when transaction txn touched it, the committed version-v
// index otherwise. Callers hold mu.
func (n *Node) resolvePostIndex(txn string, v uint64, ci int) (*index.Index, error) {
	if tx, ok := n.staged[txn]; ok && txn != "" {
		if tx.base != v {
			return nil, &PeerError{Peer: n.id, Status: 409, Code: "version_mismatch",
				Message: fmt.Sprintf("transaction %q staged on version %d, asked at %d", txn, tx.base, v)}
		}
		if tx.st != nil && tx.st.Touched(ci) {
			return tx.st.Index(ci), nil
		}
	}
	sn := n.cur.Load()
	if sn != nil && sn.version == v {
		return sn.ix.Index(ci), nil
	}
	if sn := n.history[v]; sn != nil {
		return sn.ix.Index(ci), nil
	}
	return nil, &PeerError{Peer: n.id, Status: 410, Code: "stale_version",
		Message: fmt.Sprintf("version %d is not available on shard %d", v, n.id)}
}

// maxGroup answers the aligned shrink-|D| recheck: MaxGroup of the
// post-delta index for constraint ci.
func (n *Node) maxGroup(txn string, v uint64, ci int) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx, err := n.resolvePostIndex(txn, v, ci)
	if err != nil {
		return 0, err
	}
	return idx.MaxGroup(), nil
}

// groups answers the cross-node group measurement: for the requested
// keys (or all keys when all is set), the projection-key set of the
// post-delta bucket. The coordinator unions these across nodes.
func (n *Node) groups(txn string, v uint64, ci int, keys []string, all bool) (*groupsResponse, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	idx, err := n.resolvePostIndex(txn, v, ci)
	if err != nil {
		return nil, err
	}
	resp := &groupsResponse{}
	appendGroup := func(wk string, b index.Bucket) {
		if b.Len() == 0 {
			return
		}
		g := wireGroup{Key: wk, Projs: make([]string, 0, b.Len())}
		var kb []byte
		for i := 0; i < b.Len(); i++ {
			kb = b.AppendKeyOf(kb[:0], i)
			g.Projs = append(g.Projs, encodeKey(kb))
		}
		resp.Groups = append(resp.Groups, g)
	}
	if all {
		idx.Buckets(func(k value.Key, b index.Bucket) bool {
			appendGroup(encodeKey([]byte(k)), b)
			return true
		})
		return resp, nil
	}
	for _, wk := range keys {
		k, err := decodeKey(wk)
		if err != nil {
			return nil, err
		}
		appendGroup(wk, idx.FetchKey(k))
	}
	return resp, nil
}

// commit publishes staged transaction txn on top of version v —
// idempotently: a retry after a lost response answers the recorded
// result. The WAL record (empty deltas included, so versions stay in
// lockstep) is appended and fsynced BEFORE the snapshot publishes,
// matching the in-process engines' durability point.
func (n *Node) commit(txn string, v uint64) (*commitResponse, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lastTxn == txn {
		r := n.lastCommit
		return &r, nil
	}
	tx, ok := n.staged[txn]
	if !ok {
		return nil, &PeerError{Peer: n.id, Status: 404, Code: "unknown_txn",
			Message: fmt.Sprintf("commit of unknown transaction %q", txn)}
	}
	sn := n.cur.Load()
	if sn == nil || sn.version != v || tx.base != v {
		return nil, &PeerError{Peer: n.id, Status: 409, Code: "version_mismatch",
			Message: fmt.Sprintf("commit at version %d, node at %d (staged base %d)", v, sn.version, tx.base)}
	}
	next := &nodeSnap{ix: sn.ix, size: sn.size, version: v + 1}
	if tx.st != nil {
		r, err := tx.st.Commit()
		if err != nil {
			delete(n.staged, txn)
			return nil, err
		}
		next.ix = r.Indexed
		next.size = tx.st.Size()
	}
	if n.store != nil {
		if err := n.store.AppendDelta(v+1, tx.delta); err != nil {
			delete(n.staged, txn)
			return nil, err
		}
	}
	delete(n.staged, txn)
	n.cur.Store(next)
	n.history[next.version] = next
	n.pruneHistoryLocked()
	n.lastTxn = txn
	n.lastCommit = commitResponse{Version: next.version, Size: next.size}
	n.planner.SetSizeHint(next.size)
	n.applies.Add(1)
	r := n.lastCommit
	return &r, nil
}

// abort discards staged transaction txn; unknown transactions are a
// no-op (the abort fanout is best-effort and may race a self-heal).
func (n *Node) abort(txn string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.staged, txn)
}

// rollback rewinds the node to committed version v — the coordinator's
// repair after a partial commit fanout, and the attach-time
// reconciliation of a node that got ahead of the fleet.
func (n *Node) rollback(v uint64) (*versionResponse, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.rollbackLocked(v); err != nil {
		return nil, err
	}
	sn := n.cur.Load()
	return &versionResponse{Version: sn.version, Size: sn.size}, nil
}

func (n *Node) rollbackLocked(v uint64) error {
	sn := n.cur.Load()
	if sn == nil {
		return n.errNoInstance()
	}
	if sn.version == v {
		return nil
	}
	target := n.history[v]
	if target == nil {
		return &PeerError{Peer: n.id, Status: 409, Code: "version_gone",
			Message: fmt.Sprintf("cannot roll back to version %d (at %d, not in history)", v, sn.version)}
	}
	if n.store != nil {
		if err := n.store.TruncateAfter(v); err != nil {
			return err
		}
	}
	// Drop the rolled-back suffix from history: those versions never
	// became cluster state.
	for ver := range n.history {
		if ver > v {
			delete(n.history, ver)
		}
	}
	n.staged = make(map[string]*stagedTxn)
	n.lastTxn = ""
	n.cur.Store(target)
	n.planner.SetSizeHint(target.size)
	return nil
}

// pruneHistoryLocked keeps the ring at historyLen versions, dropping
// the oldest first. The current version is never pruned.
func (n *Node) pruneHistoryLocked() {
	for len(n.history) > historyLen {
		oldest := uint64(0)
		first := true
		for v := range n.history {
			if first || v < oldest {
				oldest, first = v, false
			}
		}
		cur := n.cur.Load()
		if cur != nil && oldest == cur.version {
			return
		}
		delete(n.history, oldest)
	}
}

// status reports the node's identity for coordinator attach.
func (n *Node) status() statusResponse {
	st := statusResponse{
		Shard:   n.id,
		Shards:  n.place.k,
		Catalog: catalogHash(n.Schema, n.Access),
	}
	if sn := n.cur.Load(); sn != nil {
		st.Version = sn.version
		st.Size = sn.size
	}
	return st
}

// Apply refuses: writes go through the coordinator's two-phase global
// validation — a node cannot validate cardinality bounds it only holds
// a partition of.
func (n *Node) Apply(ctx context.Context, delta *live.Delta) (*live.Result, error) {
	return nil, &NotCoordinatorError{Shard: n.id}
}

// Query serves q over this node's partition, through the same planner,
// admission and streaming machinery as every other engine. Answers
// cover the local share only — the operational surface for inspecting
// one shard; whole-dataset answers come from the coordinator.
func (n *Node) Query(ctx context.Context, q core.Query, opts ...core.QueryOption) (*core.Result, error) {
	sn := n.cur.Load()
	if sn == nil {
		return nil, n.errNoInstance()
	}
	v := &core.View{
		Size:   sn.size,
		Source: plan.NewSource(sn.ix),
		Instance: func(context.Context) (*data.Instance, error) {
			return sn.ix.Instance, nil
		},
	}
	return n.planner.QueryView(ctx, q, v, opts...)
}

// Explain reports coverage, verdict, plan and bound at the local size.
func (n *Node) Explain(q *cq.CQ, params []string) (string, error) {
	size := 0
	if sn := n.cur.Load(); sn != nil {
		size = sn.size
	}
	return n.planner.ExplainAt(q, params, size)
}

// IsCovered runs the PTIME covered-query check (data-independent).
func (n *Node) IsCovered(q *cq.CQ) (*cover.Result, error) { return n.planner.IsCovered(q) }

// Plan synthesizes the bounded plan at the local size.
func (n *Node) Plan(q *cq.CQ) (*plan.Plan, plan.Bound, error) {
	size := 0
	if sn := n.cur.Load(); sn != nil {
		size = sn.size
	}
	return n.planner.PlanAt(q, size)
}

// Baseline evaluates q conventionally over the local partition.
func (n *Node) Baseline(q *cq.CQ, mode eval.Mode) (*eval.Result, error) {
	sn := n.cur.Load()
	if sn == nil {
		return nil, n.errNoInstance()
	}
	return eval.CQ(q, sn.ix.Instance, mode)
}

// Specialize solves QSP (data-independent).
func (n *Node) Specialize(q *cq.CQ, X []string, k int) (*specialize.Result, error) {
	return n.planner.Specialize(q, X, k)
}

// Instance returns the local partition, or nil before data arrives.
func (n *Node) Instance() *data.Instance {
	if sn := n.cur.Load(); sn != nil {
		return sn.ix.Instance
	}
	return nil
}

// Stats reports the node's local share: size is the partition's, Shards
// the cluster's K, Version the node's committed version.
func (n *Node) Stats() core.EngineStats {
	size := 0
	version := uint64(0)
	if sn := n.cur.Load(); sn != nil {
		size = sn.size
		version = sn.version
	}
	ps := n.planner.Stats()
	return core.EngineStats{
		Size:    size,
		Shards:  n.place.k,
		Queries: ps.Queries,
		Applies: n.applies.Load(),
		Fetched: ps.Fetched,
		Scanned: ps.Scanned,
		Version: version,
	}
}

// CacheStats reports the local planner's plan-cache counters.
func (n *Node) CacheStats() core.CacheStats { return n.planner.CacheStats() }

// Durable attaches a durability directory: WAL + checkpoints for this
// node's partition, recovered on restart exactly like a single-node
// engine (the coordinator reconciles any cross-node version skew at
// attach).
func (n *Node) Durable(ctx context.Context, dir string, hook durable.Hook) (restored bool, err error) {
	st, err := durable.Open(dir, hook)
	if err != nil {
		return false, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store != nil {
		st.Close()
		return false, fmt.Errorf("cluster: node already has a durable store")
	}
	if _, ok := st.LastVersion(); !ok {
		n.store = st
		return false, nil
	}
	state, err := st.Recover(ctx, n.Schema, n.Access, durable.NoLimit)
	if err != nil {
		st.Close()
		return false, err
	}
	n.store = st
	sn := &nodeSnap{ix: state.Indexed, size: state.Instance.Size(), version: state.Version}
	n.history = map[uint64]*nodeSnap{sn.version: sn}
	n.staged = make(map[string]*stagedTxn)
	n.lastTxn = ""
	n.cur.Store(sn)
	n.planner.SetSizeHint(sn.size)
	return true, nil
}

// Checkpoint persists the current snapshot and compacts the WAL behind
// it. core.ErrNotDurable if Durable was never called.
func (n *Node) Checkpoint(ctx context.Context) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store == nil {
		return 0, core.ErrNotDurable
	}
	sn := n.cur.Load()
	if sn == nil {
		return 0, n.errNoInstance()
	}
	err := n.store.WriteCheckpoint(n.Schema, &durable.State{
		Instance: sn.ix.Instance, Indexed: sn.ix, Version: sn.version,
	})
	if err != nil {
		return 0, err
	}
	return sn.version, nil
}

// CloseDurable detaches and closes the durable store. Safe to call when
// durability was never enabled.
func (n *Node) CloseDurable() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store == nil {
		return nil
	}
	err := n.store.Close()
	n.store = nil
	return err
}
