// Internal wire protocol between the coordinator and shard nodes.
// Everything rides /v1/internal/* on the node's existing listener:
// small JSON request/response bodies, with bulk payloads (deltas,
// instance dumps) in the TSV formats the repo already pins and fuzzes
// (load.EncodeValue cells, live delta TSV). Index keys travel as base64
// of their raw injective encoding (value.Key bytes), so a key
// round-trips bit-exactly and the receiving side hashes it to the same
// shard the sender would.
package cluster

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"io"
	"strings"

	"repro/internal/data"
	"repro/internal/index"
	"repro/internal/load"
	"repro/internal/schema"
	"repro/internal/value"
)

// statusResponse answers GET /v1/internal/status: the node's identity
// and committed state, checked at coordinator attach.
type statusResponse struct {
	Shard   int    `json:"shard"`
	Shards  int    `json:"shards"`
	Version uint64 `json:"version"`
	Size    int    `json:"size"`
	Catalog uint32 `json:"catalog"`
}

// fetchRequest asks for the buckets of constraint CI at the pinned
// version V, one per key. Keys are base64 raw key bytes.
type fetchRequest struct {
	V    uint64   `json:"v"`
	CI   int      `json:"ci"`
	Keys []string `json:"keys"`
}

// wireBucket is one canonical-order bucket: Cells holds the
// Y-projections back to back (stride S), each cell in the TSV value
// encoding.
type wireBucket struct {
	S int      `json:"s"`
	C []string `json:"c,omitempty"`
}

type fetchResponse struct {
	Buckets []wireBucket `json:"buckets"`
}

// stageConstraint is the per-constraint accounting of one staged
// sub-delta, shipped back so the coordinator can run the global
// validation without another round trip in the common (aligned,
// |D| not shrunk) case: MaxInsert is the largest post-delta group among
// the keys this node's inserts touched, InsertKeys those keys
// themselves (for the cross-node merge of non-aligned constraints).
type stageConstraint struct {
	Touched    bool     `json:"touched"`
	MaxInsert  int      `json:"max_insert,omitempty"`
	InsertKeys []string `json:"insert_keys,omitempty"`
}

// stageResponse answers POST /v1/internal/stage?txn=T&base=V (body:
// delta TSV): the staged-but-unpublished result sizes.
type stageResponse struct {
	Size        int               `json:"size"`
	OldSize     int               `json:"old_size"`
	Inserted    int               `json:"inserted"`
	Deleted     int               `json:"deleted"`
	Constraints []stageConstraint `json:"constraints"`
}

// maxGroupRequest asks for the post-delta MaxGroup of constraint CI —
// the staged index when transaction Txn touched it, the committed
// version-V index otherwise. Used for the shrink-|D| recheck of
// aligned constraints.
type maxGroupRequest struct {
	Txn string `json:"txn"`
	V   uint64 `json:"v"`
	CI  int    `json:"ci"`
}

type maxGroupResponse struct {
	Max int `json:"max"`
}

// groupsRequest asks for the projection-key sets of constraint CI's
// post-delta buckets: for the named keys, or for every key when All is
// set. The coordinator unions the per-node sets to measure true group
// sizes of constraints whose groups straddle shards.
type groupsRequest struct {
	Txn  string   `json:"txn"`
	V    uint64   `json:"v"`
	CI   int      `json:"ci"`
	Keys []string `json:"keys,omitempty"`
	All  bool     `json:"all,omitempty"`
}

type wireGroup struct {
	Key   string   `json:"key"`
	Projs []string `json:"projs"`
}

type groupsResponse struct {
	Groups []wireGroup `json:"groups"`
}

// commitRequest publishes staged transaction Txn on top of committed
// version V. Idempotent: a node that already committed Txn answers with
// the same result again.
type commitRequest struct {
	Txn string `json:"txn"`
	V   uint64 `json:"v"`
}

type commitResponse struct {
	Version uint64 `json:"version"`
	Size    int    `json:"size"`
}

type abortRequest struct {
	Txn string `json:"txn"`
}

type rollbackRequest struct {
	V uint64 `json:"v"`
}

type versionResponse struct {
	Version uint64 `json:"version"`
	Size    int    `json:"size"`
}

// wireError is the {"error":{code,message}} envelope internal endpoints
// answer failures with — the same shape as the public API's, so a
// coordinator can propagate a peer's code outward unchanged.
type wireError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// encodeKey renders a raw index key for the wire.
func encodeKey(k []byte) string { return base64.StdEncoding.EncodeToString(k) }

// decodeKey parses a wire key back to its raw bytes.
func decodeKey(s string) (value.Key, error) {
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return "", fmt.Errorf("cluster: bad wire key: %w", err)
	}
	return value.Key(b), nil
}

// encodeBucket renders a fetch result. Cells are encoded with the TSV
// value codec — compact, and already fuzz-hardened.
func encodeBucket(b index.Bucket) wireBucket {
	if b.Len() == 0 {
		return wireBucket{}
	}
	stride := 0
	var cells []string
	for i := 0; i < b.Len(); i++ {
		if i == 0 {
			// Probe the stride from the first projection.
			row := b.AppendRow(nil, i)
			stride = len(row)
			cells = make([]string, 0, b.Len()*stride)
			for _, v := range row {
				cells = append(cells, load.EncodeValue(v))
			}
			continue
		}
		for j := 0; j < stride; j++ {
			cells = append(cells, load.EncodeValue(b.At(i, j)))
		}
	}
	return wireBucket{S: stride, C: cells}
}

// decodeBucket rebuilds the immutable bucket view. The sender emitted
// projections in canonical order, which NewBucket's contract requires.
func decodeBucket(wb wireBucket) (index.Bucket, error) {
	if len(wb.C) == 0 {
		return index.Bucket{}, nil
	}
	if wb.S <= 0 || len(wb.C)%wb.S != 0 {
		return index.Bucket{}, fmt.Errorf("cluster: bucket of %d cells with stride %d", len(wb.C), wb.S)
	}
	cells := make([]value.Value, len(wb.C))
	for i, c := range wb.C {
		v, err := load.DecodeValue(c)
		if err != nil {
			return index.Bucket{}, fmt.Errorf("cluster: bucket cell %d: %w", i, err)
		}
		cells[i] = v
	}
	return index.NewBucket(cells, wb.S), nil
}

// writeInstanceTSV streams an instance as one TSV document — one line
// per tuple, "<Relation>\t<cell>..." — the bulk format of the dump and
// load internal endpoints.
func writeInstanceTSV(w io.Writer, s *schema.Schema, inst *data.Instance) error {
	bw := bufio.NewWriter(w)
	for _, rs := range s.Relations() {
		rel := inst.Relation(rs.Name)
		if rel == nil {
			continue
		}
		var buf data.Tuple
		for ri := 0; ri < rel.Len(); ri++ {
			buf = rel.AppendRow(buf, ri)
			cells := make([]string, 0, len(buf)+1)
			cells = append(cells, rs.Name)
			for _, v := range buf {
				cells = append(cells, load.EncodeValue(v))
			}
			if _, err := bw.WriteString(strings.Join(cells, "\t") + "\n"); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// readInstanceTSV parses a dump back into an instance (appending into
// dst, which callers hand in empty).
func readInstanceTSV(r io.Reader, s *schema.Schema, dst *data.Instance) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		cells := strings.Split(line, "\t")
		rel := dst.Relation(cells[0])
		if rel == nil {
			return fmt.Errorf("cluster: dump line %d: unknown relation %q", lineNo, cells[0])
		}
		row := make([]value.Value, len(cells)-1)
		for i, c := range cells[1:] {
			v, err := load.DecodeValue(c)
			if err != nil {
				return fmt.Errorf("cluster: dump line %d: %w", lineNo, err)
			}
			row[i] = v
		}
		if _, err := rel.Insert(row); err != nil {
			return fmt.Errorf("cluster: dump line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}
