package cluster

import (
	"context"
	"sync"

	"repro/internal/access"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/shard"
)

// netSource is the plan.Source of one cluster-wide snapshot: each fetch
// step resolves to a routed (partition-aligned, one RPC to the owning
// node) or scatter-gather (one RPC per node, canonical-order merged)
// fetcher over the peers' version-pinned indexes. It is pinned to the
// coordinator's committed version at query start, so a streamed result
// drained after later Applies still reads its own version — the exact
// snapshot-isolation contract of the in-process shard engine, held over
// the wire by the nodes' version history.
//
// plan.Fetcher has no error return, so a failed RPC records the first
// error here and serves an empty bucket; the executor polls FetchErr
// (the optional plan.Source extension) after every step and aborts the
// query with a structured error instead of silently returning the rows
// of a torn snapshot.
type netSource struct {
	e       *Engine
	ctx     context.Context
	version uint64
	// sc, when non-nil, is the traced request's per-peer accounting —
	// fetchers bump it so the profile shows route-vs-scatter RPC traffic
	// per peer. Nil on every untraced request.
	sc *obs.ShardCounters

	mu  sync.Mutex
	err error
}

var _ plan.Source = (*netSource)(nil)

func (s *netSource) FetcherFor(c access.Constraint) plan.Fetcher {
	ci, ok := s.e.ciOf[c.String()]
	if !ok {
		return nil
	}
	if len(s.e.peers) == 1 || s.e.place.aligned(c) {
		return routedNetFetcher{src: s, ci: ci}
	}
	return scatterNetFetcher{src: s, ci: ci}
}

// FetchErr reports the first RPC failure of this query, if any. The
// plan executor checks it after every step.
func (s *netSource) FetchErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// fail records the first failure; later fetches short-circuit.
func (s *netSource) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *netSource) failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err != nil
}

// fetchOne runs one single-key fetch RPC against peer i and decodes the
// bucket. Any failure is recorded on the source and an empty bucket
// returned.
func (s *netSource) fetchOne(i, ci int, k []byte) index.Bucket {
	p := s.e.peers[i]
	if !p.available() {
		s.fail(p.unavailable(errPeerDown))
		return index.Bucket{}
	}
	resp, err := p.fetch(s.ctx, s.version, ci, []string{encodeKey(k)})
	if err != nil {
		s.fail(err)
		return index.Bucket{}
	}
	b, err := decodeBucket(resp.Buckets[0])
	if err != nil {
		s.fail(p.unavailable(err))
		return index.Bucket{}
	}
	return b
}

// routedNetFetcher serves a constraint whose X equals the relation's
// partition key (or a one-node cluster): the whole group D_Y(X = ā)
// lives on node ShardOf(ā), so a fetch is one RPC to one node.
type routedNetFetcher struct {
	src *netSource
	ci  int
}

func (f routedNetFetcher) FetchBytes(k []byte) index.Bucket {
	if f.src.failed() {
		return index.Bucket{}
	}
	i := 0
	if n := len(f.src.e.peers); n > 1 {
		i = shard.ShardOf(k, n)
	}
	b := f.src.fetchOne(i, f.ci, k)
	f.src.sc.Route(i, 1, int64(b.Len()))
	return b
}

// scatterNetFetcher serves a constraint not aligned with the partition
// key: the group for ā may straddle every node, so the fetch RPCs all K
// peers in parallel and merges their buckets. Every node serves its
// part in canonical (key-sorted) order, so the ordered dedup merge
// reproduces exactly the bucket a single-node index would serve — same
// projections, same order.
type scatterNetFetcher struct {
	src *netSource
	ci  int
}

func (f scatterNetFetcher) FetchBytes(k []byte) index.Bucket {
	if f.src.failed() {
		return index.Bucket{}
	}
	n := len(f.src.e.peers)
	parts := make([]index.Bucket, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i] = f.src.fetchOne(i, f.ci, k)
		}(i)
	}
	wg.Wait()
	if f.src.failed() {
		return index.Bucket{}
	}
	var first index.Bucket
	var merged []index.Bucket
	for i, b := range parts {
		f.src.sc.Scatter(i, 1, int64(b.Len()))
		if b.Len() == 0 {
			continue
		}
		if first.Len() == 0 && merged == nil {
			first = b
			continue
		}
		if merged == nil {
			merged = []index.Bucket{first}
		}
		merged = append(merged, b)
	}
	if merged == nil {
		// Zero or one node held the group: serve its bucket as is.
		return first
	}
	return index.MergeBuckets(merged)
}
