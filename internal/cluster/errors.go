package cluster

import (
	"errors"
	"fmt"
)

// errPeerDown is the cause recorded when a request short-circuits on a
// peer whose circuit breaker is open (recent failures, cooldown not yet
// elapsed) — no RPC was attempted.
var errPeerDown = errors.New("circuit open (recent failures)")

// UnavailableError reports that a shard node could not be reached (or
// kept failing past the retry budget), so the request was refused
// rather than answered from a partial or torn view. It carries the
// structured code internal/server maps to a 503 refusal with
// {"error":{"code":"shard_unavailable"}}.
type UnavailableError struct {
	Peer int
	Err  error
}

func (e *UnavailableError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("cluster: shard %d unavailable: %v", e.Peer, e.Err)
	}
	return fmt.Sprintf("cluster: shard %d unavailable", e.Peer)
}

func (e *UnavailableError) Unwrap() error { return e.Err }

// ErrorCode marks the error for the API envelope (see
// internal/server/error.go's coded-error mapping).
func (e *UnavailableError) ErrorCode() string { return "shard_unavailable" }

// NotCoordinatorError is a shard node's refusal of a direct write:
// /v1/apply must go through the coordinator, which owns the two-phase
// global validation. Mapped to HTTP 421 (misdirected request).
type NotCoordinatorError struct {
	Shard int
}

func (e *NotCoordinatorError) Error() string {
	return fmt.Sprintf("cluster: shard %d does not accept direct writes; apply through the coordinator", e.Shard)
}

func (e *NotCoordinatorError) ErrorCode() string { return "not_coordinator" }

// PeerError is a structured refusal decoded from a peer's internal
// endpoint: the peer answered, with an error envelope, so this is a
// protocol-level rejection (version mismatch, unknown transaction,
// stale snapshot…), not an availability problem — it is never retried.
type PeerError struct {
	Peer    int
	Status  int
	Code    string
	Message string
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: shard %d: %s (%s)", e.Peer, e.Message, e.Code)
}

// ErrorCode propagates the peer's code into the coordinator's own API
// envelope.
func (e *PeerError) ErrorCode() string { return e.Code }
