package cluster

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// spanSums walks a span tree accumulating per-operator accounting,
// keeping the plan-step fetch spans separate from the synthesized
// per-peer counter spans (which report the SAME traffic pre-merge and
// would otherwise double-count). This is the cluster twin of
// internal/shard's trace reconciliation: "peer N" spans replace
// "shard N" spans, and RPC traffic replaces in-process fetches.
type spanSums struct {
	fetched, keys, scanned int64
	peerFetched            int64
	peerSpans              int
	planSpans              int
}

func sumSpans(s *obs.Span, acc *spanSums) {
	switch {
	case strings.HasPrefix(s.Name, "peer "):
		acc.peerFetched += s.Fetched
		acc.peerSpans++
	case s.Name == "plan" || s.Name == "plan.envelope":
		acc.planSpans++
	case s.Name == "cluster.merge":
		// The scan-fallback merge reports rows, not fetches; nothing to
		// fold into the fetch accounting.
	default:
		acc.fetched += s.Fetched
		acc.keys += s.Keys
		acc.scanned += s.Scanned
	}
	for _, c := range s.Children {
		sumSpans(c, acc)
	}
}

// TestPropertyClusterProfileReconcilesWithStats extends the profile
// accounting contract over the wire: on a coordinator over 2 and 4
// networked peers, the span tree's per-operator fetch/scan counts sum
// to exactly the request's Result.Stats, the per-peer counter spans
// appear exactly when the request fetched anything, and their pre-merge
// RPC traffic meets or exceeds the post-merge Stats.Fetched. A drift
// here means the distributed profile lies about where the request's
// budget went.
func TestPropertyClusterProfileReconcilesWithStats(t *testing.T) {
	tb := accidentsBed(t)
	qs, _ := tb.queries(t, 30)

	for _, k := range []int{2, 4} {
		coord, _, _ := startCluster(t, tb, k, testOptions(t))
		if err := coord.Load(tb.build()); err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			tr := obs.NewTrace("query")
			ctx := obs.NewContext(context.Background(), tr)
			res, err := coord.Query(ctx, q)
			root := tr.Finish()
			if err != nil {
				continue // refusals and planning errors carry no profile contract
			}
			var acc spanSums
			sumSpans(root, &acc)
			if acc.fetched != res.Stats.Fetched {
				t.Errorf("K=%d/%s: fetch spans sum to %d fetched, Stats.Fetched = %d",
					k, q.Label, acc.fetched, res.Stats.Fetched)
			}
			if acc.keys != res.Stats.FetchKeys {
				t.Errorf("K=%d/%s: fetch spans sum to %d keys, Stats.FetchKeys = %d",
					k, q.Label, acc.keys, res.Stats.FetchKeys)
			}
			if acc.scanned != res.Stats.Scanned {
				t.Errorf("K=%d/%s: scan spans sum to %d scanned, Stats.Scanned = %d",
					k, q.Label, acc.scanned, res.Stats.Scanned)
			}
			if res.Mode == core.ViaBoundedPlan && acc.planSpans == 0 {
				t.Errorf("K=%d/%s: bounded-plan request has no plan span", k, q.Label)
			}
			if root.ElapsedNS < res.Stats.Elapsed.Nanoseconds() {
				t.Errorf("K=%d/%s: root span %dns shorter than Stats.Elapsed %dns",
					k, q.Label, root.ElapsedNS, res.Stats.Elapsed.Nanoseconds())
			}
			if res.Stats.Fetched > 0 {
				if acc.peerSpans == 0 {
					t.Errorf("K=%d/%s: fetched %d tuples but no per-peer spans",
						k, q.Label, res.Stats.Fetched)
				}
				if acc.peerFetched < res.Stats.Fetched {
					t.Errorf("K=%d/%s: peer spans carry %d rows < Stats.Fetched %d",
						k, q.Label, acc.peerFetched, res.Stats.Fetched)
				}
			}
		}
	}
}
