package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/schema"
)

// Default failure-handling knobs; Options overrides them.
const (
	// DefaultRPCTimeout bounds one request attempt to a peer.
	DefaultRPCTimeout = 5 * time.Second
	// DefaultRetries is how many times an idempotent call is retried
	// after its first failure.
	DefaultRetries = 2
	// DefaultBackoff is the delay before the first retry; it doubles per
	// attempt.
	DefaultBackoff = 10 * time.Millisecond
	// DefaultCooldown is how long a peer marked down refuses fast before
	// the next request is allowed through to re-probe it.
	DefaultCooldown = time.Second
)

// peerClient is the coordinator's handle to one shard node: JSON/TSV
// RPCs with a per-attempt timeout, bounded retries with doubling
// backoff on idempotent calls, a down-marker circuit so a dead peer
// costs one timeout rather than one per request, and a per-peer RPC
// latency histogram for /metrics.
type peerClient struct {
	id      int
	base    string
	hc      *http.Client
	timeout time.Duration
	retries int
	backoff time.Duration

	mu        sync.Mutex
	down      bool
	downSince time.Time
	cooldown  time.Duration

	lat *obs.Histogram
}

func newPeerClient(id int, base string, opts Options) *peerClient {
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	p := &peerClient{
		id:       id,
		base:     base,
		hc:       hc,
		timeout:  opts.RPCTimeout,
		retries:  opts.Retries,
		backoff:  opts.Backoff,
		cooldown: opts.Cooldown,
		lat: obs.NewLabeledHistogram("beserve_peer_rpc_latency_seconds",
			"peer", strconv.Itoa(id), obs.LatencyBuckets()),
	}
	if p.timeout <= 0 {
		p.timeout = DefaultRPCTimeout
	}
	if p.retries < 0 {
		p.retries = DefaultRetries
	}
	if p.backoff <= 0 {
		p.backoff = DefaultBackoff
	}
	if p.cooldown <= 0 {
		p.cooldown = DefaultCooldown
	}
	return p
}

// available reports whether the peer should be tried at all: true when
// healthy, true once per cooldown window when down (the half-open
// probe), false in between. The probing caller's success or failure
// resolves the peer's state.
func (p *peerClient) available() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.down {
		return true
	}
	if time.Since(p.downSince) >= p.cooldown {
		// Half-open: let this caller probe; move the window forward so a
		// burst doesn't all pile onto a dead peer.
		p.downSince = time.Now()
		return true
	}
	return false
}

func (p *peerClient) markResult(err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err == nil {
		p.down = false
		return
	}
	if !p.down {
		p.down = true
		p.downSince = time.Now()
	}
}

// unavailable wraps a transport-level failure.
func (p *peerClient) unavailable(err error) error {
	return &UnavailableError{Peer: p.id, Err: err}
}

// do runs one RPC: POST json/in (or GET when in is nil and method says
// so), decoding 2xx into out, decoding a structured error envelope into
// a *PeerError otherwise. body, when non-nil, is sent verbatim instead
// of JSON (the TSV bulk endpoints). idem enables retries: only calls
// that are safe to repeat — reads, and the idempotent-by-txn commit —
// may retry; stage and abort never do.
func (p *peerClient) do(ctx context.Context, method, path string, in any, body []byte, out any, idem bool) error {
	var payload []byte
	ctype := "application/json"
	if body != nil {
		payload = body
		ctype = "text/tab-separated-values"
	} else if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return err
		}
	}
	attempts := 1
	if idem {
		attempts += p.retries
	}
	backoff := p.backoff
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			select {
			case <-ctx.Done():
				return p.unavailable(ctx.Err())
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		err := p.attempt(ctx, method, path, ctype, payload, out)
		var pe *PeerError
		if err == nil || (errors.As(err, &pe) && pe.Status < 500) {
			// Success, or a structured 4xx refusal: the peer is alive and
			// answered deliberately — never retried.
			p.markResult(nil)
			return err
		}
		lastErr = err
	}
	p.markResult(lastErr)
	return p.unavailable(lastErr)
}

// attempt is one timed request.
func (p *peerClient) attempt(ctx context.Context, method, path, ctype string, payload []byte, out any) error {
	actx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, p.base+path, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", ctype)
	}
	start := time.Now()
	resp, err := p.hc.Do(req)
	if err != nil {
		p.lat.Observe(time.Since(start).Seconds())
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	p.lat.Observe(time.Since(start).Seconds())
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var we wireError
		if jerr := json.Unmarshal(raw, &we); jerr == nil && we.Error.Code != "" {
			return &PeerError{Peer: p.id, Status: resp.StatusCode, Code: we.Error.Code, Message: we.Error.Message}
		}
		return fmt.Errorf("cluster: shard %d answered status %d", p.id, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("cluster: shard %d: bad response: %w", p.id, err)
		}
	}
	return nil
}

func (p *peerClient) status(ctx context.Context) (*statusResponse, error) {
	var st statusResponse
	if err := p.do(ctx, http.MethodGet, "/v1/internal/status", nil, nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

func (p *peerClient) fetch(ctx context.Context, v uint64, ci int, keys []string) (*fetchResponse, error) {
	var resp fetchResponse
	err := p.do(ctx, http.MethodPost, "/v1/internal/fetch", fetchRequest{V: v, CI: ci, Keys: keys}, nil, &resp, true)
	if err != nil {
		return nil, err
	}
	if len(resp.Buckets) != len(keys) {
		return nil, p.unavailable(fmt.Errorf("fetch answered %d buckets for %d keys", len(resp.Buckets), len(keys)))
	}
	return &resp, nil
}

// dump streams the peer's partition at version v into dst.
func (p *peerClient) dump(ctx context.Context, v uint64, s *schema.Schema, dst *data.Instance) error {
	attempts := 1 + p.retries
	backoff := p.backoff
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			select {
			case <-ctx.Done():
				return p.unavailable(ctx.Err())
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		err := p.dumpOnce(ctx, v, s, dst)
		var pe *PeerError
		if err == nil || (errors.As(err, &pe) && pe.Status < 500) {
			p.markResult(nil)
			return err
		}
		lastErr = err
	}
	p.markResult(lastErr)
	return p.unavailable(lastErr)
}

func (p *peerClient) dumpOnce(ctx context.Context, v uint64, s *schema.Schema, dst *data.Instance) error {
	actx, cancel := context.WithTimeout(ctx, p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet,
		p.base+"/v1/internal/dump?v="+strconv.FormatUint(v, 10), nil)
	if err != nil {
		return err
	}
	start := time.Now()
	resp, err := p.hc.Do(req)
	if err != nil {
		p.lat.Observe(time.Since(start).Seconds())
		return err
	}
	defer resp.Body.Close()
	defer func() { p.lat.Observe(time.Since(start).Seconds()) }()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(resp.Body)
		var we wireError
		if jerr := json.Unmarshal(raw, &we); jerr == nil && we.Error.Code != "" {
			return &PeerError{Peer: p.id, Status: resp.StatusCode, Code: we.Error.Code, Message: we.Error.Message}
		}
		return fmt.Errorf("cluster: shard %d dump answered status %d", p.id, resp.StatusCode)
	}
	// Decode into a scratch instance and merge only on full success, so
	// a stream cut mid-dump cannot leave half a partition in dst.
	scratch := data.NewInstance(s)
	if err := readInstanceTSV(resp.Body, s, scratch); err != nil {
		return err
	}
	return mergeInstance(s, dst, scratch)
}

func (p *peerClient) stage(ctx context.Context, txn string, base uint64, d *live.Delta) (*stageResponse, error) {
	var buf bytes.Buffer
	if err := live.WriteDeltaTSV(&buf, d); err != nil {
		return nil, err
	}
	var resp stageResponse
	path := "/v1/internal/stage?txn=" + txn + "&base=" + strconv.FormatUint(base, 10)
	if err := p.do(ctx, http.MethodPost, path, nil, buf.Bytes(), &resp, false); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (p *peerClient) maxGroup(ctx context.Context, txn string, v uint64, ci int) (int, error) {
	var resp maxGroupResponse
	err := p.do(ctx, http.MethodPost, "/v1/internal/maxgroup", maxGroupRequest{Txn: txn, V: v, CI: ci}, nil, &resp, true)
	return resp.Max, err
}

func (p *peerClient) groups(ctx context.Context, req groupsRequest) (*groupsResponse, error) {
	var resp groupsResponse
	if err := p.do(ctx, http.MethodPost, "/v1/internal/groups", req, nil, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (p *peerClient) commit(ctx context.Context, txn string, v uint64) (*commitResponse, error) {
	var resp commitResponse
	// Idempotent by transaction id: a retry after a lost response gets
	// the recorded result, not a double apply.
	if err := p.do(ctx, http.MethodPost, "/v1/internal/commit", commitRequest{Txn: txn, V: v}, nil, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (p *peerClient) abort(ctx context.Context, txn string) error {
	return p.do(ctx, http.MethodPost, "/v1/internal/abort", abortRequest{Txn: txn}, nil, nil, false)
}

func (p *peerClient) rollback(ctx context.Context, v uint64) (*versionResponse, error) {
	var resp versionResponse
	if err := p.do(ctx, http.MethodPost, "/v1/internal/rollback", rollbackRequest{V: v}, nil, &resp, true); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (p *peerClient) checkpoint(ctx context.Context) (uint64, error) {
	var resp versionResponse
	if err := p.do(ctx, http.MethodPost, "/v1/internal/checkpoint", nil, nil, &resp, false); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

func (p *peerClient) loadTSV(ctx context.Context, s *schema.Schema, sub *data.Instance) (*versionResponse, error) {
	var buf bytes.Buffer
	if err := writeInstanceTSV(&buf, s, sub); err != nil {
		return nil, err
	}
	var resp versionResponse
	if err := p.do(ctx, http.MethodPost, "/v1/internal/load", nil, buf.Bytes(), &resp, false); err != nil {
		return nil, err
	}
	return &resp, nil
}

// mergeInstance inserts every tuple of src into dst.
func mergeInstance(s *schema.Schema, dst, src *data.Instance) error {
	for _, rs := range s.Relations() {
		rel := src.Relation(rs.Name)
		if rel == nil {
			continue
		}
		out := dst.Relation(rs.Name)
		var buf data.Tuple
		for ri := 0; ri < rel.Len(); ri++ {
			buf = rel.AppendRow(buf, ri)
			if _, err := out.Insert(buf); err != nil {
				return err
			}
		}
	}
	return nil
}
