package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/live"
	"repro/internal/schema"
	"repro/internal/ucq"
	"repro/internal/value"
	"repro/internal/workload"
)

func iv(i int64) value.Value  { return value.NewInt(i) }
func sv(s string) value.Value { return value.NewString(s) }

// testbed is one workload the equivalence suite runs: a schema, its
// access schema, a fresh-instance factory and a random-CQ const pool.
// It mirrors internal/shard's equivalence testbeds exactly — same
// generators, same seeds — so the cluster path is held to the same
// oracle the in-process sharded engine already passes.
type testbed struct {
	name   string
	schema *schema.Schema
	access *access.Schema
	build  func() *data.Instance
	consts map[schema.Attribute][]cq.Term
}

func accidentsBed(t *testing.T) testbed {
	t.Helper()
	build := func() *data.Instance {
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: 3, AccidentsPerDay: 15, MaxVehicles: 4, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		return acc.Instance
	}
	return testbed{
		name:   "accidents",
		schema: workload.AccidentSchema(),
		access: workload.AccidentConstraints(),
		build:  build,
		consts: map[schema.Attribute][]cq.Term{
			"date":     {cq.Const(sv(workload.DateName(0))), cq.Const(sv(workload.DateName(1)))},
			"district": {cq.Const(sv(workload.Districts[0])), cq.Const(sv(workload.Districts[2]))},
			"aid":      {cq.Const(iv(3))},
			"vid":      {cq.Const(iv(5))},
		},
	}
}

func socialBed(t *testing.T) testbed {
	t.Helper()
	build := func() *data.Instance {
		soc, err := workload.GenerateSocial(workload.SocialConfig{
			People: 300, MaxFriends: 12, MaxLikes: 5, Seed: 22,
		})
		if err != nil {
			t.Fatal(err)
		}
		return soc.Instance
	}
	return testbed{
		name:   "social",
		schema: workload.SocialSchema(),
		access: workload.SocialConstraints(12, 5),
		build:  build,
		consts: map[schema.Attribute][]cq.Term{
			"pid":   {cq.Const(iv(1)), cq.Const(iv(7))},
			"city":  {cq.Const(sv(workload.Cities[0]))},
			"topic": {cq.Const(sv(workload.Topics[0]))},
		},
	}
}

// randomBed is a two-relation schema with a general-form (sqrt)
// constraint, so the suite also exercises size-dependent bounds — the
// case where the coordinator's global size, not any one shard's, must
// feed the bound.
func randomBed(t *testing.T) testbed {
	t.Helper()
	s := schema.MustNew(
		schema.MustRelation("R", "a", "b"),
		schema.MustRelation("S", "b", "c"),
	)
	a := access.NewSchema(
		access.Constraint{Rel: "R", X: []schema.Attribute{"a"}, Y: []schema.Attribute{"b"}, Card: access.SqrtCard()},
		access.NewConstraint("S", []schema.Attribute{"b"}, []schema.Attribute{"c"}, 3),
	)
	build := func() *data.Instance {
		d := data.NewInstance(s)
		for i := 0; i < 200; i++ {
			d.MustInsert("R", iv(int64(i%40)), iv(int64(i)))
			d.MustInsert("S", iv(int64(i)), iv(int64(i%7)))
		}
		return d
	}
	return testbed{
		name:   "random",
		schema: s,
		access: a,
		build:  build,
		consts: map[schema.Attribute][]cq.Term{
			"a": {cq.Const(iv(1)), cq.Const(iv(2))},
			"b": {cq.Const(iv(10))},
		},
	}
}

// testOptions are coordinator options tuned for tests: short timeouts,
// fast retry/cooldown schedules, and a private HTTP client whose idle
// connections the cleanup can drain (so goroutine-leak checks see a
// quiet process).
func testOptions(t *testing.T) Options {
	t.Helper()
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	t.Cleanup(hc.CloseIdleConnections)
	return Options{
		Client:     hc,
		RPCTimeout: 5 * time.Second,
		Retries:    2,
		Backoff:    time.Millisecond,
		Cooldown:   50 * time.Millisecond,
	}
}

// startCluster builds K shard nodes, each behind its own httptest
// server speaking the /v1/internal/* wire, and a coordinator attached
// to them. The returned nodes allow tests to inspect per-shard state
// (versions, sizes) that a real deployment would read via /status.
func startCluster(t *testing.T, tb testbed, k int, opts Options) (*Engine, []*Node, []string) {
	t.Helper()
	nodes := make([]*Node, k)
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		node, err := NewNode(tb.schema, tb.access, i, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(node.InternalHandler())
		t.Cleanup(ts.Close)
		nodes[i] = node
		urls[i] = ts.URL
	}
	coord, err := New(tb.schema, tb.access, urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	return coord, nodes, urls
}

// engines builds a loaded single-node engine and a loaded K-node
// networked cluster over identical instances.
func clusterEngines(t *testing.T, tb testbed, k int) (*core.Engine, *Engine, []*Node) {
	t.Helper()
	single, err := core.New(tb.schema, tb.access, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Load(tb.build()); err != nil {
		t.Fatal(err)
	}
	coord, nodes, _ := startCluster(t, tb, k, testOptions(t))
	if err := coord.Load(tb.build()); err != nil {
		t.Fatal(err)
	}
	return single, coord, nodes
}

// queries generates the random CQ workload plus UCQs paired from
// same-arity CQs (same generator config and seed as the shard suite).
func (tb testbed) queries(t *testing.T, n int) ([]*cq.CQ, []*ucq.UCQ) {
	t.Helper()
	qs, err := workload.RandomCQs(tb.schema, workload.RandomCQConfig{
		Queries: n, MaxAtoms: 3, StartProb: 0.8, FreeVars: 2, Seed: 17,
	}, tb.consts)
	if err != nil {
		t.Fatal(err)
	}
	byArity := map[int][]*cq.CQ{}
	for _, q := range qs {
		byArity[len(q.Free)] = append(byArity[len(q.Free)], q)
	}
	var unions []*ucq.UCQ
	for arity, group := range byArity {
		if arity == 0 {
			continue
		}
		for i := 0; i+1 < len(group); i += 2 {
			u, err := ucq.New(fmt.Sprintf("u%d_%d", arity, i), group[i], group[i+1])
			if err != nil {
				t.Fatal(err)
			}
			unions = append(unions, u)
		}
	}
	return qs, unions
}

// checkEquivalent queries both engines and demands identical outcomes:
// same error presence, same serving mode, same rows in the same order.
func checkEquivalent(t *testing.T, label string, single *core.Engine, coord *Engine, q core.Query, opts ...core.QueryOption) {
	t.Helper()
	want, errW := single.Query(context.Background(), q, opts...)
	got, errG := coord.Query(context.Background(), q, opts...)
	if (errW == nil) != (errG == nil) {
		t.Fatalf("%s: error divergence: single=%v cluster=%v", label, errW, errG)
	}
	if errW != nil {
		return
	}
	if want.Mode != got.Mode {
		t.Fatalf("%s: mode %v vs %v", label, got.Mode, want.Mode)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if want.Rows[i].Key() != got.Rows[i].Key() {
			t.Fatalf("%s: row %d: %v vs %v", label, i, got.Rows[i], want.Rows[i])
		}
	}
}

// TestPropertyClusterEqualsSingleNode is the acceptance property: for
// K ∈ {1, 2, 4}, a coordinator over K networked shard nodes answers
// every random CQ and UCQ — bounded or scan-fallback — with exactly the
// rows, order and mode of a single-node engine on the same data.
func TestPropertyClusterEqualsSingleNode(t *testing.T) {
	for _, tb := range []testbed{accidentsBed(t), socialBed(t), randomBed(t)} {
		qs, unions := tb.queries(t, 30)
		for _, k := range []int{1, 2, 4} {
			single, coord, _ := clusterEngines(t, tb, k)
			for i, q := range qs {
				checkEquivalent(t, fmt.Sprintf("%s K=%d cq%d", tb.name, k, i), single, coord, q)
			}
			for i, u := range unions {
				checkEquivalent(t, fmt.Sprintf("%s K=%d ucq%d", tb.name, k, i), single, coord, u)
			}
		}
	}
}

// corruptAccidents occasionally corrupts a constraint-preserving
// accidents batch so the verdict comparison sees real rejections too:
// re-inserting aid 3 under a different district/date breaks the aid key
// constraint, and the two tuples usually land on different shards
// (Accident partitions by date) — forcing cross-shard validation.
func corruptAccidents(d *live.Delta, step int) *live.Delta {
	if step%4 != 3 {
		return d
	}
	d.MustInsert("Accident", iv(3), sv("Nowhere"), sv(fmt.Sprintf("%d/1/1970", step%28+1)))
	return d
}

// TestPropertyClusterApplyVerdictsMatch drives a single-node engine and
// the networked cluster through the same delta stream — with periodic
// corrupted batches — and demands identical accept/reject verdicts,
// identical violation lists, identical sizes, lockstep per-node
// versions, and (spot-checked) identical query results after every
// batch. This is the two-phase Apply path end to end: stage fan-out,
// global validation RPCs, commit or abort.
func TestPropertyClusterApplyVerdictsMatch(t *testing.T) {
	tb := accidentsBed(t)
	for _, k := range []int{2, 4} {
		single, coord, nodes := clusterEngines(t, tb, k)
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: 3, AccidentsPerDay: 15, MaxVehicles: 4, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
			InsertAccidents: 4, DeleteAccidents: 2, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		q := workload.Q0()
		for step := 0; step < 16; step++ {
			delta := corruptAccidents(st.Next(), step)
			_, errS := single.Apply(context.Background(), delta)
			_, errC := coord.Apply(context.Background(), delta)
			if (errS == nil) != (errC == nil) {
				t.Fatalf("K=%d step %d: verdicts diverge: single=%v cluster=%v", k, step, errS, errC)
			}
			if errS != nil {
				var vs, vc *live.ViolationError
				if !errors.As(errS, &vs) || !errors.As(errC, &vc) {
					t.Fatalf("K=%d step %d: non-violation apply errors: %v / %v", k, step, errS, errC)
				}
				if fmt.Sprint(vs.Violations) != fmt.Sprint(vc.Violations) {
					t.Fatalf("K=%d step %d: violations differ:\n  single:  %v\n  cluster: %v",
						k, step, vs.Violations, vc.Violations)
				}
			}
			if single.Stats().Size != coord.Stats().Size {
				t.Fatalf("K=%d step %d: sizes diverge %d vs %d", k, step, single.Stats().Size, coord.Stats().Size)
			}
			// Every node moved (or refused) in lockstep: no torn commits.
			wantV := coord.Stats().Version
			for i, n := range nodes {
				if got := n.Stats().Version; got != wantV {
					t.Fatalf("K=%d step %d: node %d at version %d, coordinator at %d", k, step, i, got, wantV)
				}
			}
			checkEquivalent(t, fmt.Sprintf("K=%d step %d Q0", k, step), single, coord, q)
		}
	}
}

// TestClusterAttachAdoptsFleet verifies the restart path: a second
// coordinator attaching to an already-loaded fleet adopts its version
// and size and answers queries identically to the coordinator that
// loaded the data — no reload required.
func TestClusterAttachAdoptsFleet(t *testing.T) {
	tb := accidentsBed(t)
	single, coord, nodes := clusterEngines(t, tb, 2)

	urls := make([]string, len(nodes))
	// Re-serve the same nodes for the second coordinator.
	for i, n := range nodes {
		ts := httptest.NewServer(n.InternalHandler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	second, err := New(tb.schema, tb.access, urls, testOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Attach(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := second.Stats().Size, coord.Stats().Size; got != want {
		t.Fatalf("attached size = %d, want %d", got, want)
	}
	checkEquivalent(t, "attached Q0", single, second, workload.Q0())
}
