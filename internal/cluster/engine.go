package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/specialize"
)

// Options configures a cluster node or coordinator.
type Options struct {
	// Core configures the planner engine exactly as for a single-node
	// engine.
	Core core.Options
	// PartitionKeys overrides the per-relation partition key, as in
	// shard.Options. Every node and the coordinator must agree.
	PartitionKeys map[string][]schema.Attribute
	// Client is the HTTP client for peer RPCs (coordinator only). Nil
	// gets a dedicated client with connection pooling.
	Client *http.Client
	// RPCTimeout bounds one request attempt to a peer; Retries and
	// Backoff shape the retry schedule of idempotent calls; Cooldown is
	// the circuit breaker's down window. Zero values take the defaults.
	RPCTimeout time.Duration
	Retries    int
	Backoff    time.Duration
	Cooldown   time.Duration
}

// clusterSnap is the coordinator's committed cross-cluster version: the
// version every read pins and the global size bounds are evaluated at.
type clusterSnap struct {
	version uint64
	size    int
}

// Engine is the scatter-gather coordinator: core.Queryable over K
// networked shard nodes, so serving code switches between a single-node
// engine, an in-process sharded engine, and a networked cluster with a
// constructor change only. It follows internal/shard's design point —
// exactly one planner plans, admits and serves; the nodes hold data —
// with the in-process fetch calls replaced by versioned RPCs.
type Engine struct {
	Schema *schema.Schema
	Access *access.Schema

	place   *placement
	planner *core.Engine
	peers   []*peerClient
	// ciOf maps a constraint's canonical spelling to its index in
	// Access.Constraints — the wire names constraints by index.
	ciOf map[string]int

	// cur is the committed cluster version (nil before attach/load).
	// writeMu serializes Load and Apply.
	cur     atomic.Pointer[clusterSnap]
	writeMu sync.Mutex
	applies atomic.Uint64
	txnSeq  atomic.Uint64

	// merged caches the union instance (the scan fallback and baseline
	// input) per version.
	mergeMu sync.Mutex
	mergedV uint64
	merged  *data.Instance
}

var _ core.Queryable = (*Engine)(nil)

// New builds a coordinator over the peer base URLs (one per shard, in
// shard order: peer i must be the node with -shard-id i). Call Attach
// before serving to verify the fleet and adopt its committed version.
func New(s *schema.Schema, a *access.Schema, peerURLs []string, opts Options) (*Engine, error) {
	place, err := newPlacement(s, a, len(peerURLs), opts.PartitionKeys)
	if err != nil {
		return nil, err
	}
	planner, err := core.New(s, a, opts.Core)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Schema:  s,
		Access:  a,
		place:   place,
		planner: planner,
		ciOf:    make(map[string]int, len(a.Constraints)),
	}
	for ci, c := range a.Constraints {
		e.ciOf[c.String()] = ci
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	e.peers = make([]*peerClient, len(peerURLs))
	for i, u := range peerURLs {
		e.peers[i] = newPeerClient(i, u, opts)
	}
	return e, nil
}

func (e *Engine) errNoInstance() error {
	return fmt.Errorf("cluster: no instance attached (Load data or Attach to a loaded fleet)")
}

// Attach verifies the fleet — every peer answers, identifies as the
// expected shard of the expected K, and serves the same catalog — and
// adopts its committed state: the cluster version is the MINIMUM across
// peers (a crash mid-commit-fanout leaves some nodes one version ahead;
// their diverged suffix is rolled back here, mirroring the durable
// recovery cut of the in-process engine), the global size the sum of
// the per-node shares at that version.
func (e *Engine) Attach(ctx context.Context) error {
	k := len(e.peers)
	stats := make([]*statusResponse, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, p := range e.peers {
		wg.Add(1)
		go func(i int, p *peerClient) {
			defer wg.Done()
			stats[i], errs[i] = p.status(ctx)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	want := catalogHash(e.Schema, e.Access)
	cut := stats[0].Version
	for i, st := range stats {
		if st.Shard != i || st.Shards != k {
			return fmt.Errorf("cluster: peer %d identifies as shard %d of %d (want %d of %d)",
				i, st.Shard, st.Shards, i, k)
		}
		if st.Catalog != want {
			return fmt.Errorf("cluster: peer %d serves a different catalog (fingerprint %08x, want %08x)",
				i, st.Catalog, want)
		}
		if st.Version < cut {
			cut = st.Version
		}
	}
	size := 0
	for i, st := range stats {
		if st.Version == cut {
			size += st.Size
			continue
		}
		// Ahead of the cut: the tail of a commit fanout that never
		// completed. Nothing at those versions was ever acknowledged, so
		// roll the node back onto the cluster cut.
		vr, err := e.peers[i].rollback(ctx, cut)
		if err != nil {
			return err
		}
		size += vr.Size
	}
	e.cur.Store(&clusterSnap{version: cut, size: size})
	e.planner.SetSizeHint(size)
	return nil
}

// Load validates D |= A globally, splits d by partition key, and pushes
// each node its share, restarting the cluster at version 0. Validation
// runs locally on the coordinator — it holds the full instance here
// anyway — so a violating dataset is refused before any node changes.
func (e *Engine) Load(d *data.Instance) error {
	_, viols, err := access.BuildIndexed(e.Access, d)
	if err != nil {
		return err
	}
	if len(viols) > 0 {
		return fmt.Errorf("cluster: instance violates the access schema: %v (first of %d)", viols[0], len(viols))
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	ctx := context.Background()
	k := len(e.peers)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range e.peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := e.place.filter(e.Schema, d, i)
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = e.peers[i].loadTSV(ctx, e.Schema, sub)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	d.ReleaseDedup()
	e.cur.Store(&clusterSnap{version: 0, size: d.Size()})
	e.planner.SetSizeHint(d.Size())
	e.mergeMu.Lock()
	e.mergedV, e.merged = 0, d
	e.mergeMu.Unlock()
	return nil
}

// mergedInstance is the union of the nodes' partitions at the pinned
// version — the scan fallback and baseline input — dumped over the wire
// on first use and cached per version.
func (e *Engine) mergedInstance(ctx context.Context, sn *clusterSnap) (*data.Instance, error) {
	e.mergeMu.Lock()
	defer e.mergeMu.Unlock()
	if e.merged != nil && e.mergedV == sn.version {
		return e.merged, nil
	}
	k := len(e.peers)
	parts := make([]*data.Instance, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, p := range e.peers {
		wg.Add(1)
		go func(i int, p *peerClient) {
			defer wg.Done()
			parts[i] = data.NewInstance(e.Schema)
			errs[i] = p.dump(ctx, sn.version, e.Schema, parts[i])
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	m := data.NewInstance(e.Schema)
	for _, part := range parts {
		if err := mergeInstance(e.Schema, m, part); err != nil {
			return nil, err
		}
	}
	m.ReleaseDedup()
	e.mergedV, e.merged = sn.version, m
	return m, nil
}

// Query serves q through the planner against a scatter-gather view of
// the fleet at the committed version: identical planning, admission,
// fallbacks and streaming as a single-node engine; fetches become
// routed or scattered RPCs. An unreachable node degrades the query to a
// structured shard_unavailable refusal — never a torn or partial
// answer: the executor aborts at the first failed fetch (see
// netSource.FetchErr) and the scan fallback refuses unless every node's
// dump completes.
func (e *Engine) Query(ctx context.Context, q core.Query, opts ...core.QueryOption) (*core.Result, error) {
	sn := e.cur.Load()
	if sn == nil {
		return nil, e.errNoInstance()
	}
	src := &netSource{e: e, ctx: ctx, version: sn.version}
	if tr := obs.FromContext(ctx); tr != nil {
		src.sc = obs.NewPeerCounters(tr, len(e.peers))
	}
	v := &core.View{
		Size:   sn.size,
		Source: src,
		Instance: func(ctx context.Context) (*data.Instance, error) {
			sp := obs.FromContext(ctx).Start("cluster.merge")
			inst, err := e.mergedInstance(ctx, sn)
			if inst != nil {
				sp.SetRows(int64(inst.Size()))
			}
			sp.End()
			return inst, err
		},
	}
	return e.planner.QueryView(ctx, q, v, opts...)
}

// Apply runs the two-phase protocol over the wire: stage every node's
// sub-delta (empty ones included, so versions stay in lockstep),
// validate the staged whole at the global post-delta |D|, then commit
// everywhere or nowhere. See the package comment for the failure
// repair; the net effect is that a caller either observes the full
// delta applied at version V+1, or an error with the cluster still at
// V — never a half-applied write.
func (e *Engine) Apply(ctx context.Context, delta *live.Delta) (*live.Result, error) {
	if delta == nil {
		return nil, fmt.Errorf("cluster: nil delta")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	sn := e.cur.Load()
	if sn == nil {
		return nil, e.errNoInstance()
	}
	subs, err := e.place.split(e.Schema, delta)
	if err != nil {
		return nil, err
	}
	txn := fmt.Sprintf("txn-%d-%d", sn.version+1, e.txnSeq.Add(1))
	k := len(e.peers)
	tr := obs.FromContext(ctx)

	// Phase 1: stage everywhere in parallel.
	sp := tr.Start("apply.stage")
	stagedResp := make([]*stageResponse, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, p := range e.peers {
		wg.Add(1)
		go func(i int, p *peerClient) {
			defer wg.Done()
			stagedResp[i], errs[i] = p.stage(ctx, txn, sn.version, subs[i])
		}(i, p)
	}
	wg.Wait()
	sp.End()
	for _, err := range errs {
		if err != nil {
			e.abortAll(txn)
			return nil, err
		}
	}

	oldGlobal := sn.size
	newGlobal := oldGlobal
	res := &live.Result{}
	for _, sr := range stagedResp {
		newGlobal += sr.Size - sr.OldSize
		res.Inserted += sr.Inserted
		res.Deleted += sr.Deleted
	}

	// Phase 2: global validation, mirroring shard.Engine.validate rule
	// for rule — the group measurements just arrive by RPC.
	sp = tr.Start("apply.validate")
	viols, err := e.validate(ctx, txn, sn, stagedResp, oldGlobal, newGlobal)
	sp.End()
	if err != nil {
		e.abortAll(txn)
		return nil, err
	}
	if len(viols) > 0 {
		e.abortAll(txn)
		return nil, &live.ViolationError{Violations: viols}
	}

	// Commit fanout. Commits are idempotent by txn and retried through
	// transient failures; if a node still cannot be committed, the nodes
	// that already did are rolled back to the pre-delta version, so the
	// write fails whole.
	sp = tr.Start("apply.commit")
	acked := make([]bool, k)
	for i, p := range e.peers {
		wg.Add(1)
		go func(i int, p *peerClient) {
			defer wg.Done()
			_, err := p.commit(ctx, txn, sn.version)
			errs[i] = err
			acked[i] = err == nil
		}(i, p)
	}
	wg.Wait()
	sp.End()
	for _, err := range errs {
		if err == nil {
			continue
		}
		rctx, cancel := context.WithTimeout(context.Background(), DefaultRPCTimeout)
		for i, p := range e.peers {
			if acked[i] {
				_, _ = p.rollback(rctx, sn.version)
			} else {
				_ = p.abort(rctx, txn)
			}
		}
		cancel()
		return nil, err
	}

	e.cur.Store(&clusterSnap{version: sn.version + 1, size: newGlobal})
	e.planner.SetSizeHint(newGlobal)
	e.applies.Add(1)
	return res, nil
}

// abortAll discards the staged transaction fleet-wide, best-effort: a
// node that misses the abort discards the leftover itself at the next
// stage.
func (e *Engine) abortAll(txn string) {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultRPCTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, p := range e.peers {
		wg.Add(1)
		go func(p *peerClient) {
			defer wg.Done()
			_ = p.abort(ctx, txn)
		}(p)
	}
	wg.Wait()
}

// validate applies the same rules as shard.Engine.validate over the
// wire: bounds at the GLOBAL sizes; aligned constraints check per-node
// groups (exactly the global groups — stage already reported the
// insert-touched maxima, the shrink recheck asks each node's post-delta
// MaxGroup); non-aligned constraints union per-node Y-projection sets
// to measure true group sizes. Violations come out in constraint order
// with the same Group numbers a single-node engine applying the unsplit
// delta would report.
func (e *Engine) validate(ctx context.Context, txn string, sn *clusterSnap, stagedResp []*stageResponse, oldGlobal, newGlobal int) ([]access.Violation, error) {
	var viols []access.Violation
	for ci, c := range e.Access.Constraints {
		bound := c.Card.Bound(newGlobal)
		shrunk := !c.Card.IsConst() && bound < c.Card.Bound(oldGlobal)
		touched := false
		for _, sr := range stagedResp {
			if sr.Constraints[ci].Touched {
				touched = true
				break
			}
		}
		if !touched && !shrunk {
			continue
		}
		g := 0
		if e.place.aligned(c) {
			if shrunk {
				// The bound dropped with |D|: re-check every group on every
				// node, staged or not.
				maxes, err := e.fanMaxGroup(ctx, txn, sn.version, ci)
				if err != nil {
					return nil, err
				}
				for _, m := range maxes {
					if m > g {
						g = m
					}
				}
			} else {
				// Groups never split across nodes: the stage responses
				// already carry the insert-touched post-delta maxima.
				for _, sr := range stagedResp {
					if m := sr.Constraints[ci].MaxInsert; m > g {
						g = m
					}
				}
			}
		} else {
			var req groupsRequest
			req.Txn, req.V, req.CI = txn, sn.version, ci
			if shrunk {
				req.All = true
			} else {
				// Only groups some node's inserts touched can have grown;
				// measure each by unioning projections across all nodes.
				seen := make(map[string]bool)
				for _, sr := range stagedResp {
					for _, wk := range sr.Constraints[ci].InsertKeys {
						if !seen[wk] {
							seen[wk] = true
							req.Keys = append(req.Keys, wk)
						}
					}
				}
				if len(req.Keys) == 0 {
					continue
				}
			}
			m, err := e.fanGroups(ctx, req)
			if err != nil {
				return nil, err
			}
			g = m
		}
		if g > bound {
			viols = append(viols, access.Violation{Constraint: c, Group: g, Bound: bound})
		}
	}
	return viols, nil
}

// fanMaxGroup asks every node for its post-delta MaxGroup of ci.
func (e *Engine) fanMaxGroup(ctx context.Context, txn string, v uint64, ci int) ([]int, error) {
	k := len(e.peers)
	maxes := make([]int, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, p := range e.peers {
		wg.Add(1)
		go func(i int, p *peerClient) {
			defer wg.Done()
			maxes[i], errs[i] = p.maxGroup(ctx, txn, v, ci)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return maxes, nil
}

// fanGroups asks every node for its post-delta group projections per
// req, unions them per key, and returns the largest merged group — the
// cross-node analogue of shard's mergedGroupSize/mergedMaxGroup.
func (e *Engine) fanGroups(ctx context.Context, req groupsRequest) (int, error) {
	k := len(e.peers)
	resps := make([]*groupsResponse, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, p := range e.peers {
		wg.Add(1)
		go func(i int, p *peerClient) {
			defer wg.Done()
			resps[i], errs[i] = p.groups(ctx, req)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	groups := make(map[string]map[string]bool)
	for _, resp := range resps {
		for _, wg := range resp.Groups {
			set := groups[wg.Key]
			if set == nil {
				set = make(map[string]bool, len(wg.Projs))
				groups[wg.Key] = set
			}
			for _, pr := range wg.Projs {
				set[pr] = true
			}
		}
	}
	m := 0
	for _, set := range groups {
		if len(set) > m {
			m = len(set)
		}
	}
	return m, nil
}

// Explain reports coverage, verdict, plan and bound at the global |D|.
func (e *Engine) Explain(q *cq.CQ, params []string) (string, error) {
	size := 0
	if sn := e.cur.Load(); sn != nil {
		size = sn.size
	}
	return e.planner.ExplainAt(q, params, size)
}

// IsCovered runs the PTIME covered-query check (data-independent).
func (e *Engine) IsCovered(q *cq.CQ) (*cover.Result, error) { return e.planner.IsCovered(q) }

// Plan synthesizes the bounded plan at the global |D|.
func (e *Engine) Plan(q *cq.CQ) (*plan.Plan, plan.Bound, error) {
	size := 0
	if sn := e.cur.Load(); sn != nil {
		size = sn.size
	}
	return e.planner.PlanAt(q, size)
}

// Baseline evaluates q conventionally over the union of the nodes'
// partitions (dumped and cached per version).
func (e *Engine) Baseline(q *cq.CQ, mode eval.Mode) (*eval.Result, error) {
	sn := e.cur.Load()
	if sn == nil {
		return nil, e.errNoInstance()
	}
	inst, err := e.mergedInstance(context.Background(), sn)
	if err != nil {
		return nil, err
	}
	return eval.CQ(q, inst, mode)
}

// Specialize solves QSP (data-independent).
func (e *Engine) Specialize(q *cq.CQ, X []string, k int) (*specialize.Result, error) {
	return e.planner.Specialize(q, X, k)
}

// Instance returns the union instance, or nil before attach or when a
// node is unreachable.
func (e *Engine) Instance() *data.Instance {
	sn := e.cur.Load()
	if sn == nil {
		return nil
	}
	inst, err := e.mergedInstance(context.Background(), sn)
	if err != nil {
		return nil
	}
	return inst
}

// Shards returns K.
func (e *Engine) Shards() int { return len(e.peers) }

// Stats aggregates across the cluster: global |D|, node count, and the
// coordinator's serving counters.
func (e *Engine) Stats() core.EngineStats {
	size := 0
	version := uint64(0)
	if sn := e.cur.Load(); sn != nil {
		size = sn.size
		version = sn.version
	}
	ps := e.planner.Stats()
	return core.EngineStats{
		Size:    size,
		Shards:  len(e.peers),
		Queries: ps.Queries,
		Applies: e.applies.Load(),
		Fetched: ps.Fetched,
		Scanned: ps.Scanned,
		Version: version,
	}
}

// CacheStats reports the coordinator planner's plan-cache counters.
func (e *Engine) CacheStats() core.CacheStats { return e.planner.CacheStats() }

// Checkpoint asks every node to checkpoint its partition, returning the
// cluster version. A node without durability refuses with not_durable,
// surfaced as core.ErrNotDurable like the in-process engines.
func (e *Engine) Checkpoint(ctx context.Context) (uint64, error) {
	sn := e.cur.Load()
	if sn == nil {
		return 0, e.errNoInstance()
	}
	k := len(e.peers)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i, p := range e.peers {
		wg.Add(1)
		go func(i int, p *peerClient) {
			defer wg.Done()
			_, errs[i] = p.checkpoint(ctx)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			var pe *PeerError
			if errors.As(err, &pe) && pe.Code == "not_durable" {
				return 0, core.ErrNotDurable
			}
			return 0, err
		}
	}
	return sn.version, nil
}

// WriteMetrics appends the coordinator's per-peer RPC latency
// histograms to a /metrics exposition (the server calls it through the
// optional MetricsWriter hook).
func (e *Engine) WriteMetrics(w io.Writer) {
	obs.WriteFamilyHeader(w, "beserve_peer_rpc_latency_seconds", "Internal RPC latency to each cluster peer.")
	for _, p := range e.peers {
		p.lat.Write(w)
	}
}
