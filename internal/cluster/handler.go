package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/live"
)

// maxInternalBody bounds internal request bodies (deltas, sub-instance
// loads). Generous — this surface is coordinator-to-node, not public —
// but still bounded so a confused peer cannot balloon memory.
const maxInternalBody = 1 << 30

// InternalHandler returns the /v1/internal/* surface the coordinator
// drives: status, versioned fetch/dump reads, and the staged two-phase
// write protocol (stage → commit/abort, plus the group-measurement and
// rollback endpoints the global validation and failure repair use).
// Mount it via server.Options.Internal so it shares the node's
// listener, admission-exempt: internal traffic must not compete with
// public queries for admission slots, or a busy node would deadlock its
// own coordinator.
func (n *Node) InternalHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/internal/status", n.handleStatus)
	mux.HandleFunc("/v1/internal/fetch", n.handleFetch)
	mux.HandleFunc("/v1/internal/dump", n.handleDump)
	mux.HandleFunc("/v1/internal/load", n.handleLoad)
	mux.HandleFunc("/v1/internal/stage", n.handleStage)
	mux.HandleFunc("/v1/internal/maxgroup", n.handleMaxGroup)
	mux.HandleFunc("/v1/internal/groups", n.handleGroups)
	mux.HandleFunc("/v1/internal/commit", n.handleCommit)
	mux.HandleFunc("/v1/internal/abort", n.handleAbort)
	mux.HandleFunc("/v1/internal/rollback", n.handleRollback)
	mux.HandleFunc("/v1/internal/checkpoint", n.handleCheckpoint)
	return mux
}

// writeInternalError renders err in the same {"error":{code,message}}
// envelope as the public API. PeerErrors carry their own status+code;
// anything else is an internal error.
func writeInternalError(w http.ResponseWriter, err error) {
	status, code := http.StatusInternalServerError, "internal"
	var pe *PeerError
	if errors.As(err, &pe) {
		status, code = pe.Status, pe.Code
	}
	var we wireError
	we.Error.Code = code
	we.Error.Message = err.Error()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(we)
}

func writeInternalJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// requirePost guards the mutating endpoints.
func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeInternalError(w, &PeerError{Status: http.StatusMethodNotAllowed,
			Code: "method_not_allowed", Message: "use POST"})
		return false
	}
	return true
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeInternalJSON(w, n.status())
}

func (n *Node) handleFetch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req fetchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInternalBody)).Decode(&req); err != nil {
		writeInternalError(w, &PeerError{Status: 400, Code: "bad_request", Message: err.Error()})
		return
	}
	resp, err := n.fetch(req.V, req.CI, req.Keys)
	if err != nil {
		writeInternalError(w, err)
		return
	}
	writeInternalJSON(w, resp)
}

func (n *Node) handleDump(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.ParseUint(r.URL.Query().Get("v"), 10, 64)
	if err != nil {
		writeInternalError(w, &PeerError{Status: 400, Code: "bad_request",
			Message: "dump needs ?v=<version>"})
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values")
	if err := n.dump(w, v); err != nil {
		// Headers may be gone already; best effort. The coordinator
		// validates the body it got against the expected size anyway.
		writeInternalError(w, err)
	}
}

func (n *Node) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	sub := data.NewInstance(n.Schema)
	if err := readInstanceTSV(http.MaxBytesReader(w, r.Body, maxInternalBody), n.Schema, sub); err != nil {
		writeInternalError(w, &PeerError{Status: 400, Code: "bad_request", Message: err.Error()})
		return
	}
	if err := n.LoadOwn(sub); err != nil {
		writeInternalError(w, err)
		return
	}
	writeInternalJSON(w, versionResponse{Version: 0, Size: sub.Size()})
}

func (n *Node) handleStage(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	q := r.URL.Query()
	txn := q.Get("txn")
	base, err := strconv.ParseUint(q.Get("base"), 10, 64)
	if txn == "" || err != nil {
		writeInternalError(w, &PeerError{Status: 400, Code: "bad_request",
			Message: "stage needs ?txn=<id>&base=<version>"})
		return
	}
	d, err := live.ReadDeltaTSV(http.MaxBytesReader(w, r.Body, maxInternalBody), n.Schema)
	if err != nil {
		writeInternalError(w, &PeerError{Status: 400, Code: "bad_request", Message: err.Error()})
		return
	}
	resp, err := n.stage(r.Context(), txn, base, d)
	if err != nil {
		writeInternalError(w, err)
		return
	}
	writeInternalJSON(w, resp)
}

func (n *Node) handleMaxGroup(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req maxGroupRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInternalBody)).Decode(&req); err != nil {
		writeInternalError(w, &PeerError{Status: 400, Code: "bad_request", Message: err.Error()})
		return
	}
	m, err := n.maxGroup(req.Txn, req.V, req.CI)
	if err != nil {
		writeInternalError(w, err)
		return
	}
	writeInternalJSON(w, maxGroupResponse{Max: m})
}

func (n *Node) handleGroups(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req groupsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInternalBody)).Decode(&req); err != nil {
		writeInternalError(w, &PeerError{Status: 400, Code: "bad_request", Message: err.Error()})
		return
	}
	resp, err := n.groups(req.Txn, req.V, req.CI, req.Keys, req.All)
	if err != nil {
		writeInternalError(w, err)
		return
	}
	writeInternalJSON(w, resp)
}

func (n *Node) handleCommit(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req commitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInternalBody)).Decode(&req); err != nil {
		writeInternalError(w, &PeerError{Status: 400, Code: "bad_request", Message: err.Error()})
		return
	}
	resp, err := n.commit(req.Txn, req.V)
	if err != nil {
		writeInternalError(w, err)
		return
	}
	writeInternalJSON(w, resp)
}

func (n *Node) handleAbort(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req abortRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInternalBody)).Decode(&req); err != nil {
		writeInternalError(w, &PeerError{Status: 400, Code: "bad_request", Message: err.Error()})
		return
	}
	n.abort(req.Txn)
	writeInternalJSON(w, struct {
		OK bool `json:"ok"`
	}{true})
}

func (n *Node) handleRollback(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req rollbackRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxInternalBody)).Decode(&req); err != nil {
		writeInternalError(w, &PeerError{Status: 400, Code: "bad_request", Message: err.Error()})
		return
	}
	resp, err := n.rollback(req.V)
	if err != nil {
		writeInternalError(w, err)
		return
	}
	writeInternalJSON(w, resp)
}

func (n *Node) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	v, err := n.Checkpoint(r.Context())
	if errors.Is(err, core.ErrNotDurable) {
		writeInternalError(w, &PeerError{Peer: n.id, Status: http.StatusPreconditionFailed,
			Code: "not_durable", Message: "node has no durable store"})
		return
	}
	if err != nil {
		writeInternalError(w, fmt.Errorf("checkpoint: %w", err))
		return
	}
	writeInternalJSON(w, versionResponse{Version: v})
}
