// Package cluster distributes the bounded-evaluation engine across
// networked shard servers: internal/shard's scatter-gather model with
// the in-process function calls replaced by HTTP.
//
// Topology: K shard NODES each own one hash partition of every relation
// (the partition function is shard.ShardOf over the same per-relation
// partition keys internal/shard derives, so a tuple lives on the same
// shard whether the deployment is in-process or networked), plus one
// COORDINATOR that implements core.Queryable over the fleet. Reads pin
// the coordinator's committed cross-cluster version V and fetch at
// exactly V: a constraint aligned with the partition key routes each
// key to the one node that owns its group; everything else scatters to
// all K nodes and merges the canonical-order buckets — byte-identical
// to a single-node index over the union, which is what makes the
// coordinator's wire output byte-identical to a single-node beserve.
//
// Writes go through the coordinator only (a node refuses /v1/apply with
// a not_coordinator error) and run the same two-phase protocol as
// internal/shard, over the wire: the delta is split by partition key,
// STAGED on every node (copy-on-write, nothing published, empty
// sub-deltas included so versions stay in lockstep), validated GLOBALLY
// at the post-delta |D| — per-node group maxima for aligned
// constraints, cross-node merged group sizes for the rest — and only
// then COMMITTED everywhere. A violation anywhere aborts every node's
// staged state and rejects the delta with the same *live.ViolationError
// a single-node engine would produce. Commits are idempotent per
// transaction id, so the coordinator retries them through transient
// failures; a node that still ends up one version ahead of the cluster
// (commit acked nowhere else) is invisible to readers — they pin V —
// and is rolled back at the next stage or coordinator attach.
//
// Failure model: every RPC has a per-request timeout; idempotent calls
// (status, fetch, dump, group measurement, commit-by-txn, rollback) get
// bounded retries with doubling backoff; a peer that keeps failing is
// marked down and queries refuse fast with a structured
// shard_unavailable error — degraded, never torn: a read either serves
// one complete version-V snapshot or refuses.
package cluster

import (
	"fmt"
	"hash/fnv"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/live"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/value"
)

// partition says how one relation is spread across the cluster, exactly
// as internal/shard spreads it in-process.
type partition struct {
	attrs []schema.Attribute
	pos   []int
}

// placement is the cluster's tuple-routing table: per-relation
// partition keys plus the shard count. The coordinator and every node
// derive it independently from the shared catalog, so they agree on
// ownership without exchanging it.
type placement struct {
	k     int
	parts map[string]partition
}

func newPlacement(s *schema.Schema, a *access.Schema, k int, overrides map[string][]schema.Attribute) (*placement, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: need at least one shard, got %d", k)
	}
	p := &placement{k: k, parts: make(map[string]partition)}
	for _, rs := range s.Relations() {
		attrs, ok := overrides[rs.Name]
		if !ok {
			attrs = shard.DefaultPartitionKey(rs, a)
		}
		pos, err := rs.Positions(attrs)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad partition key for %s: %w", rs.Name, err)
		}
		p.parts[rs.Name] = partition{attrs: append([]schema.Attribute(nil), attrs...), pos: pos}
	}
	return p, nil
}

// aligned reports whether constraint c's fetch keys coincide with its
// relation's partition key — the route-vs-scatter decision.
func (p *placement) aligned(c access.Constraint) bool {
	return shard.AttrsEqual(p.parts[c.Rel].attrs, c.X)
}

// owner places one tuple of relation rel.
func (p *placement) owner(rel string, t data.Tuple) int {
	return shard.ShardOf(value.KeyOfAt(t, p.parts[rel].pos), p.k)
}

// split partitions a delta into per-shard sub-deltas by each touched
// tuple's partition key.
func (p *placement) split(s *schema.Schema, d *live.Delta) ([]*live.Delta, error) {
	subs := make([]*live.Delta, p.k)
	for i := range subs {
		subs[i] = live.NewDelta(s)
	}
	err := d.Each(func(rel string, insert bool, t data.Tuple) error {
		pt, ok := p.parts[rel]
		if !ok {
			return fmt.Errorf("cluster: delta references unknown relation %s", rel)
		}
		i := shard.ShardOf(value.KeyOfAt(t, pt.pos), p.k)
		if insert {
			return subs[i].Insert(rel, t...)
		}
		return subs[i].Delete(rel, t...)
	})
	if err != nil {
		return nil, err
	}
	return subs, nil
}

// filter returns the sub-instance of full owned by shard id: exactly
// the tuples ShardOf places there. Nodes use it so every server in a
// fleet can be pointed at the same dataset and keep only its share.
func (p *placement) filter(s *schema.Schema, full *data.Instance, id int) (*data.Instance, error) {
	sub := data.NewInstance(s)
	for _, rs := range s.Relations() {
		rel := full.Relation(rs.Name)
		if rel == nil {
			return nil, fmt.Errorf("cluster: instance has no relation %s", rs.Name)
		}
		pos := p.parts[rs.Name].pos
		out := sub.Relation(rs.Name)
		var buf data.Tuple
		var kb []byte
		for ri := 0; ri < rel.Len(); ri++ {
			kb = rel.AppendKeyAt(kb[:0], ri, pos)
			if shard.ShardOf(kb, p.k) != id {
				continue
			}
			buf = rel.AppendRow(buf, ri)
			if _, err := out.Insert(buf); err != nil {
				return nil, err
			}
		}
	}
	return sub, nil
}

// catalogHash fingerprints the (relational schema, access schema) pair
// so a coordinator refuses to attach to a node serving a different
// catalog — partition routing and constraint indices are only
// meaningful when both sides derived them from the same definitions.
func catalogHash(s *schema.Schema, a *access.Schema) uint32 {
	h := fnv.New32a()
	for _, rs := range s.Relations() {
		h.Write([]byte(rs.String()))
		h.Write([]byte{0})
	}
	for _, c := range a.Constraints {
		h.Write([]byte(c.String()))
		h.Write([]byte{0})
	}
	return h.Sum32()
}
