package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/live"
	"repro/internal/schema"
	"repro/internal/workload"
)

// chaosRT is a fault-injecting http.RoundTripper. A swappable rule
// inspects each outgoing request and names the fault to inject:
//
//	""     pass through
//	"drop" fail the request at the transport (connection lost)
//	"500"  answer a synthetic 500 without reaching the peer
//	"cut"  forward, then sever the response body mid-stream
//	"dup"  deliver the request TWICE (duplicate commit), answer the second
//
// Faults are injected at the coordinator's client, so the suite proves
// the coordinator's failure handling — retries, circuit breaking,
// rollback repair, idempotency — not the test server's.
type chaosRT struct {
	base http.RoundTripper
	mu   sync.Mutex
	rule func(*http.Request) string
}

func newChaosRT() *chaosRT {
	return &chaosRT{base: &http.Transport{MaxIdleConnsPerHost: 4}}
}

// setRule swaps the active fault rule; nil heals everything.
func (c *chaosRT) setRule(f func(*http.Request) string) {
	c.mu.Lock()
	c.rule = f
	c.mu.Unlock()
}

var errChaosDrop = errors.New("chaos: connection dropped")

func (c *chaosRT) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	rule := c.rule
	c.mu.Unlock()
	fault := ""
	if rule != nil {
		fault = rule(req)
	}
	switch fault {
	case "drop":
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errChaosDrop
	case "500":
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Status:     "500 Internal Server Error",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader("chaos")),
			Request: req,
		}, nil
	case "dup":
		// Replay the body and deliver the request once ahead of the real
		// one; the caller sees only the second response. A commit that is
		// not idempotent-by-txn would double-apply here.
		if req.GetBody != nil {
			if b, err := req.GetBody(); err == nil {
				first := req.Clone(req.Context())
				first.Body = b
				if resp, err := c.base.RoundTrip(first); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
		return c.base.RoundTrip(req)
	case "cut":
		resp, err := c.base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		resp.Body = &cutBody{rc: resp.Body, left: 64}
		resp.ContentLength = -1
		return resp, nil
	default:
		return c.base.RoundTrip(req)
	}
}

// cutBody severs a response body after `left` bytes, simulating a peer
// dying mid-stream.
type cutBody struct {
	rc   io.ReadCloser
	left int
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.left <= 0 {
		return 0, errors.New("chaos: stream cut")
	}
	if len(p) > c.left {
		p = p[:c.left]
	}
	n, err := c.rc.Read(p)
	c.left -= n
	if c.left <= 0 && err == nil {
		err = errors.New("chaos: stream cut")
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }

// chaosOptions builds coordinator options routed through a chaos
// transport, with fast retry/cooldown schedules so fault windows clear
// in milliseconds.
func chaosOptions(t *testing.T) (Options, *chaosRT) {
	t.Helper()
	rt := newChaosRT()
	hc := &http.Client{Transport: rt}
	t.Cleanup(hc.CloseIdleConnections)
	return Options{
		Client:     hc,
		RPCTimeout: 5 * time.Second,
		Retries:    2,
		Backoff:    time.Millisecond,
		Cooldown:   20 * time.Millisecond,
	}, rt
}

// hostOf extracts the host:port of a test server URL for rule matching.
func hostOf(u string) string {
	return strings.TrimPrefix(strings.TrimPrefix(u, "http://"), "https://")
}

// codedError extracts the stable error code of a structured refusal, or
// "" when err carries none (which the chaos suite treats as a failure:
// every degraded answer must be machine-matchable).
func codedError(err error) string {
	var coded interface{ ErrorCode() string }
	if errors.As(err, &coded) {
		return coded.ErrorCode()
	}
	return ""
}

// TestChaosPeerDownStructuredDegradation kills one peer's transport and
// demands structured degradation: every query either answers exactly
// the single-node rows (its keys routed to live peers) or refuses with
// a shard_unavailable coded error — never partial rows, never a bare
// internal error. Healing the peer restores full equivalence after the
// circuit's cooldown.
func TestChaosPeerDownStructuredDegradation(t *testing.T) {
	tb := accidentsBed(t)
	opts, rt := chaosOptions(t)
	coord, _, urls := startCluster(t, tb, 2, opts)
	if err := coord.Load(tb.build()); err != nil {
		t.Fatal(err)
	}
	single, err := coreSingle(tb)
	if err != nil {
		t.Fatal(err)
	}
	qs, _ := tb.queries(t, 30)

	deadHost := hostOf(urls[1])
	rt.setRule(func(req *http.Request) string {
		if req.URL.Host == deadHost {
			return "drop"
		}
		return ""
	})

	refused := 0
	for i, q := range qs {
		want, errW := single.Query(context.Background(), q)
		got, errG := coord.Query(context.Background(), q)
		if errW != nil {
			continue // the oracle itself refuses (budget/unbounded); skip
		}
		if errG != nil {
			if code := codedError(errG); code != "shard_unavailable" {
				t.Fatalf("cq%d: degraded error is not structured: code=%q err=%v", i, code, errG)
			}
			var ue *UnavailableError
			if !errors.As(errG, &ue) || ue.Peer != 1 {
				t.Fatalf("cq%d: expected UnavailableError{Peer:1}, got %v", i, errG)
			}
			refused++
			continue
		}
		// The query never needed the dead peer: it must still be exact.
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("cq%d: degraded query answered %d rows, want %d (partial answer?)",
				i, len(got.Rows), len(want.Rows))
		}
		for r := range want.Rows {
			if want.Rows[r].Key() != got.Rows[r].Key() {
				t.Fatalf("cq%d row %d: %v vs %v", i, r, got.Rows[r], want.Rows[r])
			}
		}
	}
	if refused == 0 {
		t.Fatal("no query ever touched the dead peer; the fault was not exercised")
	}

	// Heal. After the circuit's cooldown the fleet serves exactly again.
	rt.setRule(nil)
	time.Sleep(30 * time.Millisecond)
	for i, q := range qs {
		checkEquivalent(t, fmt.Sprintf("healed cq%d", i), single, coord, q)
	}
}

// coreSingle builds the loaded single-node oracle for a testbed.
func coreSingle(tb testbed) (*core.Engine, error) {
	single, err := core.New(tb.schema, tb.access, core.Options{})
	if err != nil {
		return nil, err
	}
	if err := single.Load(tb.build()); err != nil {
		return nil, err
	}
	return single, nil
}

// TestChaosCommitFailureFailsWhole injects a persistent 500 on one
// peer's commit and demands the write fails WHOLE: every node (including
// those whose commit succeeded before the fault surfaced) is back at the
// pre-delta version, reads still serve the old snapshot, and after
// healing the same delta applies cleanly.
func TestChaosCommitFailureFailsWhole(t *testing.T) {
	tb := accidentsBed(t)
	opts, rt := chaosOptions(t)
	coord, nodes, urls := startCluster(t, tb, 2, opts)
	if err := coord.Load(tb.build()); err != nil {
		t.Fatal(err)
	}
	single, err := coreSingle(tb)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 3, AccidentsPerDay: 15, MaxVehicles: 4, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 4, DeleteAccidents: 2, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	delta := st.Next()
	sizeBefore := coord.Stats().Size

	deadHost := hostOf(urls[1])
	rt.setRule(func(req *http.Request) string {
		if req.URL.Host == deadHost && strings.HasSuffix(req.URL.Path, "/commit") {
			return "500"
		}
		return ""
	})
	if _, err := coord.Apply(context.Background(), delta); err == nil {
		t.Fatal("Apply succeeded though one peer could not commit")
	} else if code := codedError(err); code != "shard_unavailable" {
		t.Fatalf("commit failure is not structured: code=%q err=%v", code, err)
	}

	// No half-commit: every node back at version 0, coordinator size
	// unchanged, pre-delta reads exact.
	for i, n := range nodes {
		if v := n.Stats().Version; v != 0 {
			t.Fatalf("node %d at version %d after failed apply (torn commit)", i, v)
		}
	}
	if got := coord.Stats().Size; got != sizeBefore {
		t.Fatalf("size moved %d -> %d across a failed apply", sizeBefore, got)
	}
	checkEquivalent(t, "pre-delta read after failed apply", single, coord, workload.Q0())

	// Heal: the SAME delta now applies, and both engines agree.
	rt.setRule(nil)
	time.Sleep(30 * time.Millisecond)
	if _, err := coord.Apply(context.Background(), delta); err != nil {
		t.Fatalf("healed apply failed: %v", err)
	}
	if _, err := single.Apply(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		if v := n.Stats().Version; v != 1 {
			t.Fatalf("node %d at version %d after healed apply, want 1", i, v)
		}
	}
	checkEquivalent(t, "post-delta read after healed apply", single, coord, workload.Q0())
}

// TestChaosDuplicateCommitIdempotent delivers every commit RPC twice
// and demands the transaction applies exactly once: versions advance by
// one per Apply and sizes track the single-node oracle.
func TestChaosDuplicateCommitIdempotent(t *testing.T) {
	tb := accidentsBed(t)
	opts, rt := chaosOptions(t)
	coord, nodes, _ := startCluster(t, tb, 2, opts)
	if err := coord.Load(tb.build()); err != nil {
		t.Fatal(err)
	}
	single, err := coreSingle(tb)
	if err != nil {
		t.Fatal(err)
	}
	rt.setRule(func(req *http.Request) string {
		if strings.HasSuffix(req.URL.Path, "/commit") {
			return "dup"
		}
		return ""
	})
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 3, AccidentsPerDay: 15, MaxVehicles: 4, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 4, DeleteAccidents: 2, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 4; step++ {
		delta := st.Next()
		if _, err := coord.Apply(context.Background(), delta); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if _, err := single.Apply(context.Background(), delta); err != nil {
			t.Fatal(err)
		}
		for i, n := range nodes {
			if v := n.Stats().Version; v != uint64(step) {
				t.Fatalf("step %d: node %d at version %d (duplicate commit double-applied?)", step, i, v)
			}
		}
		if coord.Stats().Size != single.Stats().Size {
			t.Fatalf("step %d: sizes diverge %d vs %d", step, coord.Stats().Size, single.Stats().Size)
		}
		checkEquivalent(t, fmt.Sprintf("dup step %d", step), single, coord, workload.Q0())
	}
}

// TestChaosCutDumpNoPartialState severs the bulk dump stream mid-body
// during a scan-fallback query and demands a structured failure with NO
// partial state left behind: the healed retry answers the full,
// single-node-exact result (a half-merged cache would not).
func TestChaosCutDumpNoPartialState(t *testing.T) {
	tb := randomBed(t)
	opts, rt := chaosOptions(t)
	coord, _, _ := startCluster(t, tb, 2, opts)
	if err := coord.Load(tb.build()); err != nil {
		t.Fatal(err)
	}
	single, err := coreSingle(tb)
	if err != nil {
		t.Fatal(err)
	}
	// Q(b) :- R(a, b) with a unbound is not covered by R's a→b
	// constraint: the planner must fall back to a scan over the merged
	// instance, which the coordinator assembles by dumping every peer.
	scan := &cq.CQ{Label: "scanQ", Free: []string{"b"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("a"), cq.Var("b"))}}

	// Advance past version 0 first: Load seeds the merged cache with the
	// loaded instance, and the cut must hit a REAL dump RPC.
	delta := live.NewDelta(tb.schema)
	delta.MustInsert("R", iv(1000), iv(1000))
	delta.MustInsert("S", iv(1000), iv(0))
	if _, err := coord.Apply(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	if _, err := single.Apply(context.Background(), delta); err != nil {
		t.Fatal(err)
	}

	rt.setRule(func(req *http.Request) string {
		if strings.HasSuffix(req.URL.Path, "/dump") {
			return "cut"
		}
		return ""
	})
	if _, err := coord.Query(context.Background(), scan); err == nil {
		t.Fatal("scan query succeeded over a severed dump stream")
	} else if code := codedError(err); code != "shard_unavailable" {
		t.Fatalf("cut stream error is not structured: code=%q err=%v", code, err)
	}

	rt.setRule(nil)
	time.Sleep(30 * time.Millisecond)
	checkEquivalent(t, "healed scan", single, coord, scan)
}

// TestChaosWireSoakExactlyOneSnapshot is the soak invariant over the
// wire: readers hammer a two-atom join through the coordinator WHILE a
// writer swaps the joined value version after version. Every read must
// observe exactly one consistent snapshot — exactly one row — or refuse
// with a structured stale_version (the reader's pinned version aged out
// of a node's history ring). Zero rows would be a torn cross-peer
// fetch; two rows a torn swap. Afterward the harness tears everything
// down and demands the goroutine count returns to baseline.
func TestChaosWireSoakExactlyOneSnapshot(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("A", "k", "x"),
		schema.MustRelation("B", "k", "x"),
	)
	a := access.NewSchema(
		access.NewConstraint("A", []schema.Attribute{"k"}, []schema.Attribute{"x"}, 1),
		access.NewConstraint("B", []schema.Attribute{"k"}, []schema.Attribute{"x"}, 1),
	)
	before := runtime.NumGoroutine()

	const k = 2
	nodes := make([]*Node, k)
	servers := make([]*httptest.Server, k)
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		node, err := NewNode(s, a, i, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = httptest.NewServer(node.InternalHandler())
		nodes[i] = node
		urls[i] = servers[i].URL
	}
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	coord, err := New(s, a, urls, Options{
		Client: hc, RPCTimeout: 5 * time.Second, Retries: 2,
		Backoff: time.Millisecond, Cooldown: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := data.NewInstance(s)
	d.MustInsert("A", sv("w"), sv("v0"))
	d.MustInsert("B", sv("w"), sv("v0"))
	if err := coord.Load(d); err != nil {
		t.Fatal(err)
	}
	q := &cq.CQ{Label: "join", Free: []string{"x"}, Atoms: []cq.Atom{
		cq.NewAtom("A", cq.Const(sv("w")), cq.Var("x")),
		cq.NewAtom("B", cq.Const(sv("w")), cq.Var("x")),
	}}

	const versions = 40
	var wg sync.WaitGroup
	var writerDone atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for i := 0; i < versions; i++ {
			delta := live.NewDelta(s)
			delta.MustDelete("A", sv("w"), sv(fmt.Sprintf("v%d", i)))
			delta.MustInsert("A", sv("w"), sv(fmt.Sprintf("v%d", i+1)))
			delta.MustDelete("B", sv("w"), sv(fmt.Sprintf("v%d", i)))
			delta.MustInsert("B", sv("w"), sv(fmt.Sprintf("v%d", i+1)))
			if _, err := coord.Apply(context.Background(), delta); err != nil {
				t.Errorf("writer version %d: %v", i+1, err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !writerDone.Load() {
				res, err := coord.Query(context.Background(), q)
				if err != nil {
					// The only acceptable refusal: the pinned version aged
					// out of a node's history ring under the write storm.
					if code := codedError(err); code != "stale_version" {
						t.Errorf("reader %d: unstructured error: %v", r, err)
						return
					}
					continue
				}
				if len(res.Rows) != 1 {
					t.Errorf("reader %d: %d rows (0 = torn cross-peer fetch, 2 = torn swap): %v",
						r, len(res.Rows), res.Rows)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	res, err := coord.Query(context.Background(), q)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("final read: rows=%v err=%v", res, err)
	}
	if got := string(res.Rows[0].Key()); !strings.Contains(got, fmt.Sprintf("v%d", versions)) {
		t.Fatalf("final row %q does not carry v%d", got, versions)
	}

	// Teardown: close every server and drain idle connections, then the
	// process must quiesce — the fault suite demands zero leaked
	// goroutines.
	for _, ts := range servers {
		ts.Close()
	}
	hc.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d now vs %d before\n%s",
				runtime.NumGoroutine(), before, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
