package envelope

import (
	"testing"

	"repro/internal/access"
	"repro/internal/ainstance"
	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value                          { return value.NewInt(i) }
func attrs(as ...schema.Attribute) []schema.Attribute { return as }

// Example 4.1 fixtures: R(A,B), A = {R(A -> B, N)}.
func ex41() (*schema.Schema, *access.Schema) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 3))
	return s, a
}

// Q1(x) = ∃y,z,w (R(w,x) ∧ R(y,w) ∧ R(x,z) ∧ w=1): bounded, not boundedly
// evaluable, has both envelopes.
func q1() *cq.CQ {
	return &cq.CQ{
		Label: "Q41_1", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("w"), cq.Var("x")),
			cq.NewAtom("R", cq.Var("y"), cq.Var("w")),
			cq.NewAtom("R", cq.Var("x"), cq.Var("z")),
		},
		Eqs: []cq.Eq{{L: cq.Var("w"), R: cq.Const(iv(1))}},
	}
}

// Q2(x,y) = ∃w (R(w,x) ∧ R(y,w) ∧ w=1): not bounded, no envelopes.
func q2() *cq.CQ {
	return &cq.CQ{
		Label: "Q41_2", Free: []string{"x", "y"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("w"), cq.Var("x")),
			cq.NewAtom("R", cq.Var("y"), cq.Var("w")),
		},
		Eqs: []cq.Eq{{L: cq.Var("w"), R: cq.Const(iv(1))}},
	}
}

func TestBoundednessLemma42(t *testing.T) {
	s, a := ex41()
	b1, err := Bounded(q1(), a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !b1 {
		t.Error("Q1 must be bounded (its only free variable x is covered)")
	}
	b2, err := Bounded(q2(), a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b2 {
		t.Error("Q2 must NOT be bounded (free y is not covered)")
	}
}

func TestExample41UpperEnvelope(t *testing.T) {
	s, a := ex41()
	up, err := FindUpper(q1(), a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !up.Found {
		t.Fatalf("Q1 must have an upper envelope: %s", up.Reason)
	}
	// The paper's Qu keeps R(w,x) and R(x,z), dropping R(y,w).
	if len(up.Qu.Atoms) != 2 {
		t.Errorf("Qu should keep 2 atoms (drop R(y,w)): %s", up.Qu)
	}
	// The envelope must itself contain the query classically relaxed:
	// Q1 ⊆ Qu since Qu is a relaxation.
	if !cq.Contains(q1(), up.Qu) {
		t.Error("Q ⊑ Qu must hold for a relaxation")
	}
	if up.Nu <= 0 {
		t.Errorf("Nu = %d, want positive constant", up.Nu)
	}
}

func TestExample41LowerEnvelope(t *testing.T) {
	s, a := ex41()
	lo, err := FindLower(q1(), a, s, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !lo.Found {
		t.Fatalf("Q1 must have a 1-expansion lower envelope: %s", lo.Reason)
	}
	if lo.Added != 1 {
		t.Errorf("paper's Ql is a 1-expansion; got %d additions", lo.Added)
	}
	// Ql ⊆ Q1 classically (expansions add conjuncts).
	if !cq.Contains(lo.Ql, q1()) {
		t.Errorf("Ql ⊑ Q must hold for an expansion: %s", lo.Ql)
	}
	if lo.Nl <= 0 {
		t.Errorf("Nl = %d, want positive constant", lo.Nl)
	}
}

func TestExample41NoEnvelopesForQ2(t *testing.T) {
	s, a := ex41()
	up, err := FindUpper(q2(), a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if up.Found {
		t.Errorf("Q2 must have no upper envelope; found %s", up.Qu)
	}
	lo, err := FindLower(q2(), a, s, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lo.Found {
		t.Errorf("Q2 must have no lower envelope; found %s", lo.Ql)
	}
}

// Example 4.5: Q(x,y) = R(1,x,y) under A = {R(A->B,N), R(B->C,1)}:
// no strict covered expansion exists (the original atom can never be
// indexed), but the atom-split rewrite yields a covered, A-equivalent
// Q'(x,y) = ∃z1,z2 (R(1,x,z1) ∧ R(z2,x,y)).
func TestExample45SplitRewrite(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B", "C"))
	a := access.NewSchema(
		access.NewConstraint("R", attrs("A"), attrs("B"), 3),
		access.NewConstraint("R", attrs("B"), attrs("C"), 1),
	)
	q := &cq.CQ{
		Label: "Q45", Free: []string{"x", "y"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Const(iv(1)), cq.Var("x"), cq.Var("y"))},
	}
	// Strict search fails.
	strict, err := FindLower(q, a, s, 2, Options{DisableSplitRewrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Found {
		t.Fatalf("no strict k-expansion should be covered (the original atom is unindexable); found %s", strict.Ql)
	}
	// Split rewrite succeeds and is exact.
	lo, err := FindLower(q, a, s, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !lo.Found {
		t.Fatalf("Example 4.5 split rewrite must be found: %s", lo.Reason)
	}
	if !lo.Exact {
		t.Error("the split rewrite is A-equivalent, so Exact must be set")
	}
	if len(lo.Ql.Atoms) != 2 {
		t.Errorf("Q' should have 2 atoms: %s", lo.Ql)
	}
}

func TestUpperOnCoveredQueryIsItself(t *testing.T) {
	// A covered query's best relaxation is the full atom set.
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 2))
	q := &cq.CQ{
		Label: "QC", Free: []string{"x"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("c"), cq.Var("x"))},
		Eqs:   []cq.Eq{{L: cq.Var("c"), R: cq.Const(iv(1))}},
	}
	up, err := FindUpper(q, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !up.Found || len(up.Qu.Atoms) != 1 {
		t.Fatalf("covered query should be its own envelope: %+v", up)
	}
}

func TestOutputBound(t *testing.T) {
	s, a := ex41()
	// Q1's head variable x is fetched from the pinned w with N=3: bound 3.
	b, err := OutputBound(q1(), a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b != 3 {
		t.Errorf("OutputBound(Q1) = %d, want 3", b)
	}
	// A Boolean query has bound 1 (empty head product).
	qb := &cq.CQ{Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("u"), cq.Var("v"))}}
	b, err = OutputBound(qb, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b != 1 {
		t.Errorf("OutputBound(boolean) = %d, want 1", b)
	}
}

func TestLowerRequiresASatisfiability(t *testing.T) {
	// A query whose only covered expansion would be A-unsatisfiable is
	// rejected (LEP requires A-satisfiable envelopes to rule out the
	// trivial empty query).
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 1))
	// Q(x) :- R(c,x), R(d,x), c=1, d=1, x=2 ... and a second pinned
	// variable forcing (1,2) and (1,3)-style conflicts via expansions is
	// contrived; instead verify directly that an A-unsatisfiable covered
	// query is not accepted as its own lower envelope.
	q := &cq.CQ{
		Label: "QU", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("c"), cq.Var("x")),
			cq.NewAtom("R", cq.Var("c"), cq.Var("x2")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("c"), R: cq.Const(iv(1))},
			{L: cq.Var("x"), R: cq.Const(iv(2))},
			{L: cq.Var("x2"), R: cq.Const(iv(3))},
		},
	}
	lo, err := FindLower(q, a, s, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lo.Found {
		t.Errorf("A-unsatisfiable query must not be its own lower envelope: %s", lo.Ql)
	}
}

func TestRelaxationKeepsSafety(t *testing.T) {
	s, a := ex41()
	// Q(x) :- R(x,y): dropping the only atom would orphan free x; the
	// search must never produce an unsafe relaxation.
	q := &cq.CQ{Free: []string{"x"}, Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}}
	up, err := FindUpper(q, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// x is not covered (nothing pins A-values), so Q is unbounded: no envelope.
	if up.Found {
		t.Errorf("unbounded query must have no upper envelope: %s", up.Qu)
	}
}

func TestLowerEnvelopeAInstanceOptionsRespected(t *testing.T) {
	s, a := ex41()
	_, err := FindLower(q1(), a, s, 1, Options{AInstance: ainstance.Options{MaxVars: 8}})
	if err != nil {
		t.Fatal(err)
	}
}
