// Package envelope implements query-driven approximation under access
// constraints (Section 4 of the paper): upper envelopes obtained as covered
// relaxations (UEP, Theorem 4.4) and lower envelopes obtained as covered,
// A-satisfiable k-expansions (LEP, Theorem 4.7), plus the FD-justified
// atom-splitting rewrite behind Example 4.5.
//
// An upper envelope Qu satisfies Q ⊑A Qu with |Qu(D) − Q(D)| ≤ Nu; a lower
// envelope Ql satisfies Ql ⊑A Q with |Q(D) − Ql(D)| ≤ Nl; both are
// boundedly evaluable. Boundedness of Q (Lemma 4.2) is necessary for either
// to exist: a CQ is bounded iff all its free variables are covered.
package envelope

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/ainstance"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/schema"
)

// Options tunes the envelope searches.
type Options struct {
	// MaxCandidates caps the number of candidate queries examined per
	// search (default 100000).
	MaxCandidates int
	// AInstance configures A-satisfiability / A-equivalence checks.
	AInstance ainstance.Options
	// Cover configures coverage checks.
	Cover cover.Options
	// DisableSplitRewrite turns off the Example 4.5 extension in LEP,
	// restricting the search to strict k-expansions.
	DisableSplitRewrite bool
}

func (o Options) maxCandidates() int {
	if o.MaxCandidates > 0 {
		return o.MaxCandidates
	}
	return 100000
}

// Bounded implements Lemma 4.2(b): a CQ Q is bounded under A iff all free
// variables of Q are covered by A.
func Bounded(q *cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (bool, error) {
	an, err := cover.Analyze(q, a, s, opt.Cover)
	if err != nil {
		return false, err
	}
	for _, f := range an.Q.Free {
		if !an.InCov(f) {
			return false, nil
		}
	}
	return true, nil
}

// OutputBound bounds |Q(D)| over all D |= A for a bounded CQ: the product,
// over head positions, of each covered class's candidate bound (1 for
// pinned classes, |X-bound|·N for fetched classes). This is the constant cr
// of Section 4.2 and feeds the envelope approximation bounds Nu and Nl.
func OutputBound(q *cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (int64, error) {
	an, err := cover.Analyze(q, a, s, opt.Cover)
	if err != nil {
		return 0, err
	}
	cls := an.EqPlus
	classBound := make(map[string]int64)
	get := func(v string) int64 {
		r := cls.Root(v)
		if cls.IsConstantVar(v) {
			return 1
		}
		if b, ok := classBound[r]; ok {
			return b
		}
		return int64(1) << 40 // effectively unbounded
	}
	for _, ap := range an.Applications {
		in := int64(1)
		for _, x := range ap.XVars {
			in = satMul(in, get(x))
		}
		out := satMul(in, int64(ap.Constraint.Card.Bound(0)))
		for _, y := range ap.YVars {
			r := cls.Root(y)
			if cur, ok := classBound[r]; !ok || out < cur {
				classBound[r] = out
			}
		}
	}
	total := int64(1)
	seen := make(map[string]bool)
	for _, f := range an.Q.Free {
		r := cls.Root(f)
		if seen[r] {
			continue
		}
		seen[r] = true
		total = satMul(total, get(f))
	}
	return total, nil
}

const satCap = int64(1) << 60

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > satCap/b {
		return satCap
	}
	return a * b
}

// Upper is the result of an upper-envelope search.
type Upper struct {
	Found bool
	// Qu is the covered relaxation (valid when Found).
	Qu *cq.CQ
	// Nu bounds |Qu(D) − Q(D)| (crudely, by |Qu(D)|).
	Nu int64
	// Reason explains failure when !Found.
	Reason string
}

// FindUpper decides UEP for a CQ: is there a relaxation of Q (a sub-query
// on the same free variables, Section 4.2) that is covered by A? Searched
// from largest relaxations down, so the first hit keeps the most atoms —
// the tightest such envelope. NP-complete in general (Theorem 4.4); the
// search enumerates atom subsets with a candidate cap.
func FindUpper(q *cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (*Upper, error) {
	n := q.Normalize()
	// Lemma 4.2(a): no envelope unless Q is bounded. A relaxation only
	// loses atoms, so free variables must already be coverable... but
	// coverage may IMPROVE after dropping (never: cov is monotone in the
	// atom set for applications... dropping atoms can only remove
	// applications), so check boundedness first.
	bounded, err := Bounded(q, a, s, opt)
	if err != nil {
		return nil, err
	}
	if !bounded {
		return &Upper{Reason: "query is not bounded: some free variable is not covered (Lemma 4.2)"}, nil
	}
	m := len(n.Atoms)
	if m > 20 {
		return nil, fmt.Errorf("envelope: too many atoms (%d) for relaxation search", m)
	}
	budget := opt.maxCandidates()
	// Enumerate subsets by descending popcount.
	type cand struct {
		mask int
		bits int
	}
	var cands []cand
	for mask := (1 << m) - 1; mask >= 0; mask-- {
		cands = append(cands, cand{mask: mask, bits: popcount(mask)})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].bits > cands[j].bits })
	for _, c := range cands {
		if budget == 0 {
			break
		}
		budget--
		relax, ok := relaxation(n, c.mask)
		if !ok {
			continue
		}
		res, err := cover.Check(relax, a, s, opt.Cover)
		if err != nil {
			return nil, err
		}
		if !res.Covered {
			continue
		}
		nu, err := OutputBound(relax, a, s, opt)
		if err != nil {
			return nil, err
		}
		return &Upper{Found: true, Qu: relax, Nu: nu}, nil
	}
	return &Upper{Reason: "no covered relaxation exists"}, nil
}

// relaxation builds the sub-query keeping the atoms in mask. Equality atoms
// survive when their variables remain anchored; the query must stay safe
// (every free variable tied to an atom or a constant).
func relaxation(n *cq.CQ, mask int) (*cq.CQ, bool) {
	out := &cq.CQ{Label: n.Label + "_u", Free: append([]string(nil), n.Free...)}
	inAtoms := make(map[string]bool)
	for i, atom := range n.Atoms {
		if mask&(1<<i) == 0 {
			continue
		}
		out.Atoms = append(out.Atoms, atom.Clone())
		for _, t := range atom.Args {
			inAtoms[t.V] = true
		}
	}
	// Keep equality atoms whose variables are still anchored: var=const
	// survives always (it pins the variable); var=var survives when at
	// least one side occurs in a kept atom or is transitively pinned.
	cls := n.EqClassesPlus()
	anchored := func(v string) bool { return inAtoms[v] || cls.IsConstantVar(v) }
	for _, e := range n.Eqs {
		switch {
		case e.L.IsVar() && e.R.IsVar():
			if anchored(e.L.V) && anchored(e.R.V) {
				out.Eqs = append(out.Eqs, e)
			}
		case e.L.IsVar():
			out.Eqs = append(out.Eqs, e)
		case e.R.IsVar():
			out.Eqs = append(out.Eqs, e)
		}
	}
	// Safety: every free variable anchored.
	for _, f := range out.Free {
		if !anchored(f) {
			return nil, false
		}
	}
	return out, true
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Lower is the result of a lower-envelope search.
type Lower struct {
	Found bool
	// Ql is the covered, A-satisfiable envelope (valid when Found).
	Ql *cq.CQ
	// Nl bounds |Q(D) − Ql(D)| (crudely, by |Q(D)|'s output bound).
	Nl int64
	// Exact reports that Ql ≡A Q was verified (split-rewrite path), so the
	// "envelope" is in fact an exact bounded rewriting and Nl could be 0.
	Exact bool
	// Added counts atoms added beyond Q (≤ k for strict expansions).
	Added int
	// Reason explains failure when !Found.
	Reason string
}

// FindLower decides LEP for a CQ: is there a k-expansion of Q (Q plus at
// most k extra relation atoms, Section 4.3) that is covered by A and
// A-satisfiable? NP-complete (Theorem 4.7). Candidate atoms are generated
// goal-directedly: for each constraint, atoms that place a problem variable
// in the Y-positions with covered X-positions. When strict expansion fails
// and the query's troubles are unindexed atoms, the Example 4.5 atom-split
// rewrite is attempted and verified A-equivalent via A-instances.
func FindLower(q *cq.CQ, a *access.Schema, s *schema.Schema, k int, opt Options) (*Lower, error) {
	n := q.Normalize()
	bounded, err := Bounded(q, a, s, opt)
	if err != nil {
		return nil, err
	}
	if !bounded {
		return &Lower{Reason: "query is not bounded: some free variable is not covered (Lemma 4.2)"}, nil
	}
	nl, err := OutputBound(n, a, s, opt)
	if err != nil {
		return nil, err
	}

	// Breadth-first over expansions: frontier of queries, each extended by
	// one candidate atom per step, up to k additions.
	type node struct {
		q     *cq.CQ
		added int
	}
	frontier := []node{{q: n, added: 0}}
	budget := opt.maxCandidates()
	seen := map[string]bool{n.String(): true}
	fresh := 0
	for len(frontier) > 0 && budget > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		budget--
		res, err := cover.Check(next.q, a, s, opt.Cover)
		if err != nil {
			return nil, err
		}
		if res.Covered {
			sat, err := ainstance.Satisfiable(next.q, a, s, opt.AInstance)
			if err == nil && sat {
				return &Lower{Found: true, Ql: next.q, Nl: nl, Added: next.added}, nil
			}
			if err != nil {
				// Enumeration too large: accept with a satisfiability
				// caveat only if it is the unmodified query (added == 0)?
				// No — A-satisfiability is part of LEP; skip.
				continue
			}
		}
		if next.added == k {
			continue
		}
		for _, atom := range candidateAtoms(next.q, res, a, s, &fresh) {
			exp := next.q.Clone()
			exp.Label = n.Label + "_l"
			exp.Atoms = append(exp.Atoms, atom)
			key := exp.String()
			if !seen[key] {
				seen[key] = true
				frontier = append(frontier, node{q: exp, added: next.added + 1})
			}
		}
	}

	if !opt.DisableSplitRewrite {
		if lw, err := trySplitRewrite(n, a, s, nl, opt); err == nil && lw != nil {
			return lw, nil
		}
	}
	return &Lower{Reason: fmt.Sprintf("no covered, A-satisfiable %d-expansion found", k)}, nil
}

// candidateAtoms proposes atoms that could repair the coverage failures in
// res: for each constraint R(X -> Y, N), atoms placing an uncovered
// problem variable at a Y-position with all X-positions filled by covered
// variables or the problem atom's own terms.
func candidateAtoms(q *cq.CQ, res *cover.Result, a *access.Schema, s *schema.Schema, fresh *int) []cq.Atom {
	an := res.Analysis
	// Problem variables: uncovered free variables, condition-(b) violators,
	// and uncovered X-position variables of unindexed atoms.
	problems := map[string]bool{}
	for _, v := range res.UncoveredFree {
		problems[v] = true
	}
	for _, v := range res.BadUncovered {
		problems[v] = true
	}
	for _, ai := range res.Atoms {
		if ai.Indexed {
			continue
		}
		for _, t := range q.Atoms[ai.AtomIdx].Args {
			if !an.Covered[t.V] && !an.ConstantVars[t.V] {
				problems[t.V] = true
			}
		}
	}
	var coveredVars []string
	for v := range an.Covered {
		coveredVars = append(coveredVars, v)
	}
	sort.Strings(coveredVars)

	var out []cq.Atom
	for p := range problems {
		for _, c := range a.Constraints {
			rs, ok := s.Relation(c.Rel)
			if !ok {
				continue
			}
			for _, yAttr := range c.Y {
				yPos := rs.AttrIndex(yAttr)
				// Fill X positions with covered variables (cartesian,
				// capped), others fresh.
				fills := fillX(c.X, coveredVars, 64)
				for _, fill := range fills {
					args := make([]cq.Term, rs.Arity())
					okAtom := true
					for i := range args {
						attr := rs.Attrs[i]
						if i == yPos {
							args[i] = cq.Var(p)
							continue
						}
						if xi := attrIndex(c.X, attr); xi >= 0 {
							args[i] = cq.Var(fill[xi])
							if fill[xi] == p {
								okAtom = false
							}
							continue
						}
						*fresh++
						args[i] = cq.Var(fmt.Sprintf("_e%d", *fresh))
					}
					if okAtom {
						out = append(out, cq.Atom{Rel: c.Rel, Args: args})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// fillX enumerates assignments of covered variables to the X attributes,
// capped at limit combinations.
func fillX(x []schema.Attribute, covered []string, limit int) [][]string {
	if len(x) == 0 {
		return [][]string{nil}
	}
	if len(covered) == 0 {
		return nil
	}
	var out [][]string
	var rec func(cur []string)
	rec = func(cur []string) {
		if len(out) >= limit {
			return
		}
		if len(cur) == len(x) {
			out = append(out, append([]string(nil), cur...))
			return
		}
		for _, v := range covered {
			rec(append(cur, v))
		}
	}
	rec(nil)
	return out
}

func attrIndex(as []schema.Attribute, a schema.Attribute) int {
	for i, b := range as {
		if a == b {
			return i
		}
	}
	return -1
}

// trySplitRewrite implements the Example 4.5 pattern: replace each
// unindexed atom R(w̄) by one copy per constraint on R, keeping the
// variables at that constraint's X ∪ Y positions and freshening the rest;
// accept only when the rewriting is verified A-equivalent to Q (so it is a
// lower — indeed exact — envelope) and is covered and A-satisfiable.
func trySplitRewrite(n *cq.CQ, a *access.Schema, s *schema.Schema, nl int64, opt Options) (*Lower, error) {
	res, err := cover.Check(n, a, s, opt.Cover)
	if err != nil {
		return nil, err
	}
	out := n.Clone()
	out.Label = n.Label + "_l"
	fresh := 0
	changed := false
	var atoms []cq.Atom
	for _, ai := range res.Atoms {
		atom := n.Atoms[ai.AtomIdx]
		if ai.Indexed {
			atoms = append(atoms, atom)
			continue
		}
		cs := a.ForRelation(atom.Rel)
		if len(cs) == 0 {
			return nil, nil // nothing to split against
		}
		rs, _ := s.Relation(atom.Rel)
		for _, c := range cs {
			copyAtom := atom.Clone()
			for i := range copyAtom.Args {
				if !c.Covers(rs.Attrs[i]) {
					fresh++
					copyAtom.Args[i] = cq.Var(fmt.Sprintf("_s%d", fresh))
				}
			}
			atoms = append(atoms, copyAtom)
		}
		changed = true
	}
	if !changed {
		return nil, nil
	}
	out.Atoms = atoms
	cres, err := cover.Check(out, a, s, opt.Cover)
	if err != nil || !cres.Covered {
		return nil, nil
	}
	equiv, err := ainstance.Equivalent(out, n, a, s, opt.AInstance)
	if err != nil || !equiv {
		return nil, nil
	}
	sat, err := ainstance.Satisfiable(out, a, s, opt.AInstance)
	if err != nil || !sat {
		return nil, nil
	}
	return &Lower{Found: true, Ql: out, Nl: nl, Exact: true, Added: len(atoms) - len(n.Atoms)}, nil
}
