// Package cover implements the paper's effective syntax for boundedly
// evaluable queries: the cov(Q,A) fixpoint (Lemma 3.9), covered CQ queries
// (Section 3.2, Theorem 3.11), and covered UCQ/∃FO⁺ queries with dominated
// sub-queries (Lemma 3.6, Corollary 3.13, Theorem 3.14).
//
// Checking whether a CQ is covered is PTIME in |Q|, |A| and |R|; the
// UCQ/∃FO⁺ check is Πᵖ₂-complete and uses A-instance enumeration for its
// dominance condition.
package cover

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/ainstance"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/value"
)

// Options tunes the analysis.
type Options struct {
	// UseEqOnly disables the eq⁺ closure when extending cov, falling back
	// to plain eq. The paper argues for eq⁺ (Example 3.8); this switch
	// exists for the ablation benchmark and should stay false in real use.
	UseEqOnly bool
	// AInstance configures dominance checks for UCQ coverage.
	AInstance ainstance.Options
}

// Application records one firing of the cov fixpoint: constraint
// Constraint applied to atom AtomIdx of the normalized query, reading
// X-position variables XVars and covering Y-position variables YVars.
// The plan builder replays these to synthesize fetch operations.
type Application struct {
	ConstraintIdx int
	Constraint    access.Constraint
	AtomIdx       int
	XVars         []string
	YVars         []string
}

func (ap Application) String() string {
	return fmt.Sprintf("apply %s to atom #%d (X=%v, Y=%v)",
		ap.Constraint, ap.AtomIdx, ap.XVars, ap.YVars)
}

// Analysis is the result of running the cov(Q,A) fixpoint over a CQ.
type Analysis struct {
	// Q is the normalized query the analysis ran on.
	Q *cq.CQ
	// Schema and Access are the inputs.
	Schema *schema.Schema
	Access *access.Schema
	// Covered is cov(Q,A) as a set.
	Covered map[string]bool
	// ConstantVars are the paper's constant variables (eq-class pinned).
	ConstantVars map[string]bool
	// DataIndependent are var(Qdi): variables whose eq-class touches no
	// relation atom.
	DataIndependent map[string]bool
	// Applications is the fixpoint firing order.
	Applications []Application
	// Eq and EqPlus are the equality closures of the normalized query.
	Eq, EqPlus *cq.EqClasses
	// Occurs counts occurrences per variable (head + atoms + equalities).
	Occurs map[string]int
}

// InCov reports whether v ∈ cov(Q,A).
func (an *Analysis) InCov(v string) bool { return an.Covered[v] }

// CoveredList returns cov(Q,A) sorted.
func (an *Analysis) CoveredList() []string {
	out := make([]string, 0, len(an.Covered))
	for v := range an.Covered {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Analyze computes cov(Q,A) by the monotone fixpoint of Section 3.2:
// starting from var(Qdi), a constraint R(X -> Y, N) applies to an atom
// R(x̄, ȳ, z̄) when all X-position variables are covered or constant
// variables and the application would add something new; it then adds
// eq⁺(x) for the constant X-position variables and eq⁺(y) for each
// Y-position variable. Per Lemma 3.9 the fixpoint is order-independent;
// we fire constraints in declaration order for determinism.
func Analyze(q *cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (*Analysis, error) {
	n := q.Normalize()
	for _, atom := range n.Atoms {
		if _, ok := s.Relation(atom.Rel); !ok {
			return nil, fmt.Errorf("cover: query uses unknown relation %s", atom.Rel)
		}
	}
	an := &Analysis{
		Q:               n,
		Schema:          s,
		Access:          a,
		Covered:         make(map[string]bool),
		ConstantVars:    make(map[string]bool),
		DataIndependent: make(map[string]bool),
		Eq:              n.EqClasses(),
		EqPlus:          n.EqClassesPlus(),
		Occurs:          n.OccurrenceCount(),
	}
	closure := an.EqPlus
	if opt.UseEqOnly {
		closure = an.Eq
	}
	for _, v := range n.Vars() {
		if an.Eq.IsConstantVar(v) {
			an.ConstantVars[v] = true
		}
		if !an.Eq.DataDependent(v, n) {
			an.DataIndependent[v] = true
			an.Covered[v] = true // cov(Qdi, A) = var(Qdi)
		}
	}

	// Precompute, per (constraint, atom) pair, the X- and Y-position
	// variables; skip pairs whose relations mismatch.
	type site struct {
		ci, ai int
		xv, yv []string
	}
	var sites []site
	for ci, c := range a.Constraints {
		for ai, atom := range n.Atoms {
			if atom.Rel != c.Rel {
				continue
			}
			rs, ok := s.Relation(c.Rel)
			if !ok {
				return nil, fmt.Errorf("cover: constraint on unknown relation %s", c.Rel)
			}
			xpos, err := rs.Positions(c.X)
			if err != nil {
				return nil, err
			}
			ypos, err := rs.Positions(c.Y)
			if err != nil {
				return nil, err
			}
			st := site{ci: ci, ai: ai}
			for _, p := range xpos {
				st.xv = append(st.xv, atom.Args[p].V)
			}
			for _, p := range ypos {
				st.yv = append(st.yv, atom.Args[p].V)
			}
			sites = append(sites, st)
		}
	}

	addClass := func(v string) bool {
		added := false
		for _, w := range closure.ClassOf(v) {
			if !an.Covered[w] {
				an.Covered[w] = true
				added = true
			}
		}
		return added
	}

	for changed := true; changed; {
		changed = false
		for _, st := range sites {
			// Applicability: every X-position variable covered or constant.
			ok := true
			for _, x := range st.xv {
				if !an.Covered[x] && !an.ConstantVars[x] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Would this application add anything?
			adds := false
			for _, x := range st.xv {
				if an.ConstantVars[x] && !an.Covered[x] {
					adds = true
				}
			}
			for _, y := range st.yv {
				if !an.Covered[y] {
					adds = true
				}
			}
			if !adds {
				continue
			}
			for _, x := range st.xv {
				if an.ConstantVars[x] {
					addClass(x)
				}
			}
			for _, y := range st.yv {
				addClass(y)
			}
			an.Applications = append(an.Applications, Application{
				ConstraintIdx: st.ci,
				Constraint:    a.Constraints[st.ci],
				AtomIdx:       st.ai,
				XVars:         append([]string(nil), st.xv...),
				YVars:         append([]string(nil), st.yv...),
			})
			changed = true
		}
	}
	return an, nil
}

// AtomIndexing describes how condition (c) of covered queries fares for one
// atom: the constraint that indexes it, or the reason none does.
type AtomIndexing struct {
	AtomIdx       int
	Indexed       bool
	ConstraintIdx int // valid when Indexed
	Reason        string
}

// Result is the outcome of a covered-query check with diagnostics.
type Result struct {
	Covered  bool
	Analysis *Analysis
	// UncoveredFree lists free variables outside cov (condition a).
	UncoveredFree []string
	// BadUncovered lists non-covered variables violating condition (b):
	// constant variables or variables occurring more than once.
	BadUncovered []string
	// Atoms holds the condition (c) verdict per atom of the normalized query.
	Atoms []AtomIndexing
}

// Explain renders a human-readable account of the check.
func (r *Result) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "covered: %v\n", r.Covered)
	fmt.Fprintf(&b, "cov(Q,A) = {%s}\n", strings.Join(r.Analysis.CoveredList(), ", "))
	if len(r.UncoveredFree) > 0 {
		fmt.Fprintf(&b, "free variables not covered: %v\n", r.UncoveredFree)
	}
	if len(r.BadUncovered) > 0 {
		fmt.Fprintf(&b, "non-covered variables violating condition (b): %v\n", r.BadUncovered)
	}
	for _, ai := range r.Atoms {
		if ai.Indexed {
			fmt.Fprintf(&b, "atom #%d %s indexed by %s\n", ai.AtomIdx,
				r.Analysis.Q.Atoms[ai.AtomIdx], r.Analysis.Access.Constraints[ai.ConstraintIdx])
		} else {
			fmt.Fprintf(&b, "atom #%d %s NOT indexed: %s\n", ai.AtomIdx,
				r.Analysis.Q.Atoms[ai.AtomIdx], ai.Reason)
		}
	}
	return b.String()
}

// Check decides whether the CQ q is covered by a (Theorem 3.11(3), PTIME),
// returning full diagnostics.
func Check(q *cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (*Result, error) {
	an, err := Analyze(q, a, s, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{Covered: true, Analysis: an}
	n := an.Q

	// Condition (a): free variables covered.
	for _, v := range dedupStrings(n.Free) {
		if !an.Covered[v] {
			res.UncoveredFree = append(res.UncoveredFree, v)
			res.Covered = false
		}
	}
	// Condition (b): non-covered variables are non-constant and occur once.
	for _, v := range n.Vars() {
		if an.Covered[v] {
			continue
		}
		if an.ConstantVars[v] || an.Occurs[v] > 1 {
			res.BadUncovered = append(res.BadUncovered, v)
			res.Covered = false
		}
	}
	// Condition (c): every relation atom indexed by some constraint.
	for ai := range n.Atoms {
		ix := an.indexAtom(ai)
		res.Atoms = append(res.Atoms, ix)
		if !ix.Indexed {
			res.Covered = false
		}
	}
	return res, nil
}

// indexAtom searches for a constraint R(Y1 -> Y2, N) indexing atom ai:
// all Y1-position variables covered, and every variable of the atom except
// bound once-occurring ones sits at a position in Y1 ∪ Y2. When several
// constraints qualify, the tightest (smallest cardinality bound) wins, so
// the synthesized plan's verification fetches stay as small as possible.
func (an *Analysis) indexAtom(ai int) AtomIndexing {
	atom := an.Q.Atoms[ai]
	rs, _ := an.Schema.Relation(atom.Rel)
	var firstReason string
	best, bestBound := -1, 0
	for ci, c := range an.Access.Constraints {
		if c.Rel != atom.Rel {
			continue
		}
		reason := an.tryIndex(atom, rs, c)
		if reason == "" {
			// Evaluate general-form bounds pessimistically (large |D|).
			b := c.Card.Bound(1 << 20)
			if best < 0 || b < bestBound {
				best, bestBound = ci, b
			}
			continue
		}
		if firstReason == "" {
			firstReason = fmt.Sprintf("%s: %s", c, reason)
		}
	}
	if best >= 0 {
		return AtomIndexing{AtomIdx: ai, Indexed: true, ConstraintIdx: best}
	}
	if firstReason == "" {
		firstReason = "no constraint on relation " + atom.Rel
	}
	return AtomIndexing{AtomIdx: ai, Indexed: false, Reason: firstReason}
}

func (an *Analysis) tryIndex(atom cq.Atom, rs schema.Relation, c access.Constraint) string {
	// (c)(a): Y1-position variables must be covered.
	for _, a := range c.X {
		p := rs.AttrIndex(a)
		v := atom.Args[p].V
		if !an.Covered[v] && !an.ConstantVars[v] {
			return fmt.Sprintf("X-position variable %s not covered", v)
		}
	}
	// (c)(b): every variable except bound singletons at a Y1 ∪ Y2 position.
	freeSet := make(map[string]bool)
	for _, f := range an.Q.Free {
		freeSet[f] = true
	}
	for p, t := range atom.Args {
		v := t.V
		if !freeSet[v] && an.Occurs[v] == 1 {
			continue // bound variable occurring once: excluded
		}
		if !c.Covers(rs.Attrs[p]) {
			return fmt.Sprintf("variable %s at attribute %s outside X ∪ Y", v, rs.Attrs[p])
		}
	}
	return ""
}

func dedupStrings(xs []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// SubStatus classifies a CQ sub-query inside a covered-UCQ check.
type SubStatus int

const (
	// SubCovered: the sub-query is itself covered.
	SubCovered SubStatus = iota
	// SubDominated: not covered, but every A-instance's head answer is
	// produced by some covered sub-query (condition (b) of the ∃FO⁺
	// covered definition).
	SubDominated
	// SubUncovered: neither; the UCQ is not covered.
	SubUncovered
)

func (s SubStatus) String() string {
	switch s {
	case SubCovered:
		return "covered"
	case SubDominated:
		return "dominated"
	case SubUncovered:
		return "uncovered"
	default:
		return fmt.Sprintf("substatus(%d)", int(s))
	}
}

// UCQResult is the outcome of a covered check over a UCQ / ∃FO⁺ query
// (given as its CQ sub-queries).
type UCQResult struct {
	Covered bool
	Subs    []SubStatus
	// SubResults holds the per-sub CQ diagnostics.
	SubResults []*Result
}

// CheckUCQ decides whether the union q1 ∪ ... ∪ qk is covered by a:
// each sub-query is covered, or dominated — for all its A-instances
// θ(T_Qi) there is a covered sub-query Qj with θ(u) ∈ Qj(θ(T_Qi))
// (Πᵖ₂-complete, Theorem 3.14).
func CheckUCQ(qs []*cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (*UCQResult, error) {
	res := &UCQResult{Covered: true}
	var covered []*cq.CQ
	for _, q := range qs {
		r, err := Check(q, a, s, opt)
		if err != nil {
			return nil, err
		}
		res.SubResults = append(res.SubResults, r)
		if r.Covered {
			res.Subs = append(res.Subs, SubCovered)
			covered = append(covered, q)
		} else {
			res.Subs = append(res.Subs, SubUncovered) // may upgrade below
		}
	}
	for i, q := range qs {
		if res.Subs[i] == SubCovered {
			continue
		}
		dom, err := dominated(q, covered, a, s, opt)
		if err != nil {
			return nil, err
		}
		if dom {
			res.Subs[i] = SubDominated
		} else {
			res.Covered = false
		}
	}
	return res, nil
}

// dominated checks condition (b): for all A-instances θ(T_Q) of q, some
// covered query in js answers θ(u).
func dominated(q *cq.CQ, js []*cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (bool, error) {
	if len(js) == 0 {
		return false, nil
	}
	var extra []value.Value
	for _, j := range js {
		extra = append(extra, j.Constants()...)
	}
	ok := true
	err := ainstance.Visit(q, a, s, extra, opt.AInstance, func(inst *data.Instance, head data.Tuple) bool {
		for _, j := range js {
			if len(j.Free) != len(q.Free) {
				continue
			}
			r, evalErr := eval.CQ(j, inst, eval.ScanJoin)
			if evalErr != nil {
				continue
			}
			if r.Contains(head) {
				return true
			}
		}
		ok = false
		return false
	})
	if err != nil {
		return false, err
	}
	return ok, nil
}
