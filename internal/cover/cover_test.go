package cover

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value                          { return value.NewInt(i) }
func sv(s string) value.Value                         { return value.NewString(s) }
func attrs(as ...schema.Attribute) []schema.Attribute { return as }

func accidentSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("Accident", "aid", "district", "date"),
		schema.MustRelation("Casualty", "cid", "aid", "class", "vid"),
		schema.MustRelation("Vehicle", "vid", "driver", "age"),
	)
}

func psi() *access.Schema {
	return access.NewSchema(
		access.NewConstraint("Accident", attrs("date"), attrs("aid"), 610),
		access.NewConstraint("Casualty", attrs("aid"), attrs("vid"), 192),
		access.NewConstraint("Accident", attrs("aid"), attrs("district", "date"), 1),
		access.NewConstraint("Vehicle", attrs("vid"), attrs("driver", "age"), 1),
	)
}

func q0() *cq.CQ {
	return &cq.CQ{
		Label: "Q0",
		Free:  []string{"xa"},
		Atoms: []cq.Atom{
			cq.NewAtom("Accident", cq.Var("aid"), cq.Const(sv("Queen's Park")), cq.Const(sv("1/5/2005"))),
			cq.NewAtom("Casualty", cq.Var("cid"), cq.Var("aid"), cq.Var("class"), cq.Var("vid")),
			cq.NewAtom("Vehicle", cq.Var("vid"), cq.Var("dri"), cq.Var("xa")),
		},
	}
}

// Example 1.1 / 3.10: Q0 is covered by psi1-psi4.
func TestQ0Covered(t *testing.T) {
	res, err := Check(q0(), psi(), accidentSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("Q0 must be covered:\n%s", res.Explain())
	}
	an := res.Analysis
	for _, v := range []string{"aid", "vid", "xa", "dri"} {
		if !an.InCov(v) {
			t.Errorf("cov(Q0) should contain %s; got %v", v, an.CoveredList())
		}
	}
	// cid and class stay uncovered but harmless (occur once, non-constant).
	if an.InCov("cid") || an.InCov("class") {
		t.Errorf("cid/class should be uncovered: %v", an.CoveredList())
	}
}

// Example 5.1's Q (no date/district constants): NOT covered — free xa
// cannot be reached because no constraint application can start.
func TestQ51NotCovered(t *testing.T) {
	q := &cq.CQ{
		Label: "Q51",
		Free:  []string{"xa"},
		Atoms: []cq.Atom{
			cq.NewAtom("Accident", cq.Var("aid"), cq.Var("district"), cq.Var("date")),
			cq.NewAtom("Casualty", cq.Var("cid"), cq.Var("aid"), cq.Var("class"), cq.Var("vid")),
			cq.NewAtom("Vehicle", cq.Var("vid"), cq.Var("dri"), cq.Var("xa")),
		},
	}
	res, err := Check(q, psi(), accidentSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Fatal("the unparameterized accident query must NOT be covered")
	}
	found := false
	for _, v := range res.UncoveredFree {
		if v == "xa" {
			found = true
		}
	}
	if !found {
		t.Errorf("xa should be reported uncovered-free: %+v", res.UncoveredFree)
	}
}

// Example 3.1(1): Q1 over R1(A,B,E,F) with A1={A->B, E->F} is NOT covered:
// its only atom is not indexed (no constraint spans both B and F).
func TestExample31_1_NotCovered(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R1", "A", "B", "E", "F"))
	a1 := access.NewSchema(
		access.NewConstraint("R1", attrs("A"), attrs("B"), 3),
		access.NewConstraint("R1", attrs("E"), attrs("F"), 4),
	)
	q1 := &cq.CQ{
		Label: "Q1",
		Free:  []string{"x", "y"},
		Atoms: []cq.Atom{cq.NewAtom("R1", cq.Var("x1"), cq.Var("x"), cq.Var("x2"), cq.Var("y"))},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(iv(1))},
			{L: cq.Var("x2"), R: cq.Const(iv(1))},
		},
	}
	res, err := Check(q1, a1, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Fatalf("Q1 must not be covered:\n%s", res.Explain())
	}
	// Free variables ARE covered (x via A->B, y via E->F); the failure is
	// exactly condition (c): the atom is not indexed.
	if len(res.UncoveredFree) != 0 {
		t.Errorf("x,y should be covered; uncovered free = %v", res.UncoveredFree)
	}
	if len(res.Atoms) != 1 || res.Atoms[0].Indexed {
		t.Errorf("the single atom must be unindexed: %+v", res.Atoms)
	}
}

// Example 3.1(2) + 3.12: Q2 is not covered (free x uncovered), but its
// A2-equivalent rewrite Q2'(x) = (x=1 ∧ x=2) IS covered (data-independent).
func TestExample31_2_Coverage(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R2", "A", "B"))
	a2 := access.NewSchema(access.NewConstraint("R2", attrs("A"), attrs("B"), 1))
	q2 := &cq.CQ{
		Label: "Q2",
		Free:  []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R2", cq.Var("x"), cq.Var("x1")),
			cq.NewAtom("R2", cq.Var("x"), cq.Var("x2")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(iv(1))},
			{L: cq.Var("x2"), R: cq.Const(iv(2))},
		},
	}
	res, err := Check(q2, a2, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Fatal("Q2 must not be covered (its free variable x is not in cov)")
	}
	q2p := &cq.CQ{
		Label: "Q2p",
		Free:  []string{"x"},
		Eqs: []cq.Eq{
			{L: cq.Var("x"), R: cq.Const(iv(1))},
			{L: cq.Var("x"), R: cq.Const(iv(2))},
		},
	}
	res, err = Check(q2p, a2, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("Q2' must be covered (x is data-independent):\n%s", res.Explain())
	}
}

// Example 3.10: Q3 is covered by A3; cov(Q3,A3) = {x, y, z3, x1, x2}.
func TestExample310_Q3Covered(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R3", "A", "B", "C"))
	a3 := access.NewSchema(
		access.NewConstraint("R3", nil, attrs("C"), 1),
		access.NewConstraint("R3", attrs("A", "B"), attrs("C"), 5),
	)
	q3 := &cq.CQ{
		Label: "Q3",
		Free:  []string{"x", "y"},
		Atoms: []cq.Atom{
			cq.NewAtom("R3", cq.Var("x1"), cq.Var("x2"), cq.Var("x")),
			cq.NewAtom("R3", cq.Var("z1"), cq.Var("z2"), cq.Var("y")),
			cq.NewAtom("R3", cq.Var("x"), cq.Var("y"), cq.Var("z3")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(iv(1))},
			{L: cq.Var("x2"), R: cq.Const(iv(1))},
		},
	}
	res, err := Check(q3, a3, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("Q3 must be covered by A3:\n%s", res.Explain())
	}
	an := res.Analysis
	for _, v := range []string{"x", "y", "z3", "x1", "x2"} {
		if !an.InCov(v) {
			t.Errorf("cov(Q3,A3) should contain %s (Example 3.10); got %v", v, an.CoveredList())
		}
	}
	if an.InCov("z1") || an.InCov("z2") {
		t.Errorf("z1, z2 must stay uncovered; got %v", an.CoveredList())
	}
}

// Order-independence of the fixpoint (Lemma 3.9): reversing constraint
// declaration order yields the same cov set.
func TestCovOrderIndependence(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R3", "A", "B", "C"))
	c1 := access.NewConstraint("R3", nil, attrs("C"), 1)
	c2 := access.NewConstraint("R3", attrs("A", "B"), attrs("C"), 5)
	q3 := &cq.CQ{
		Free: []string{"x", "y"},
		Atoms: []cq.Atom{
			cq.NewAtom("R3", cq.Var("x1"), cq.Var("x2"), cq.Var("x")),
			cq.NewAtom("R3", cq.Var("z1"), cq.Var("z2"), cq.Var("y")),
			cq.NewAtom("R3", cq.Var("x"), cq.Var("y"), cq.Var("z3")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(iv(1))},
			{L: cq.Var("x2"), R: cq.Const(iv(1))},
		},
	}
	an1, err := Analyze(q3, access.NewSchema(c1, c2), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	an2, err := Analyze(q3, access.NewSchema(c2, c1), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := an1.CoveredList(), an2.CoveredList()
	if strings.Join(l1, ",") != strings.Join(l2, ",") {
		t.Errorf("cov depends on constraint order: %v vs %v", l1, l2)
	}
}

// Example 3.8's pattern: variables reachable only through shared constants.
// Covered under eq⁺ — and, in this implementation, under eq-only as well:
// u is data-independent (cov(Qdi) = var(Qdi)) and constant variables are
// treated as fetchable everywhere, which subsumes the eq⁺ additions (see
// BenchmarkAblationEqPlus and EXPERIMENTS.md). This test pins the
// verdict-equivalence of the two closures on the motivating example.
func TestEqPlusAblation(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 2))
	// Q(u) :- R(x,y), x=1, u=1, u=v. Covering x should cover u via eq⁺.
	q := &cq.CQ{
		Free:  []string{"u"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))},
		Eqs: []cq.Eq{
			{L: cq.Var("x"), R: cq.Const(iv(1))},
			{L: cq.Var("u"), R: cq.Const(iv(1))},
			{L: cq.Var("u"), R: cq.Var("v")},
		},
	}
	full, err := Check(q, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Covered {
		t.Fatalf("with eq⁺, Q must be covered:\n%s", full.Explain())
	}
	eqOnly, err := Check(q, a, s, Options{UseEqOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if eqOnly.Covered != full.Covered {
		t.Fatalf("closure choice changed the verdict: eq+=%v eq=%v", full.Covered, eqOnly.Covered)
	}
}

func TestNoConstraintsNothingCovered(t *testing.T) {
	s := accidentSchema()
	res, err := Check(q0(), access.NewSchema(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Fatal("nothing should be covered without constraints")
	}
}

func TestUnknownRelation(t *testing.T) {
	s := accidentSchema()
	q := &cq.CQ{Atoms: []cq.Atom{cq.NewAtom("Ghost", cq.Var("x"))}}
	if _, err := Check(q, psi(), s, Options{}); err == nil {
		t.Error("unknown relation must error")
	}
}

// Example 3.5 (second part): Q = Q1 ∪ Q2 over R'(A,B,C) with
// A' = {R'(A -> B, N)}: Q1 covered, Q2 not covered alone but dominated,
// so the UCQ is covered.
func TestExample35_UCQCoverage(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("Rp", "A", "B", "C"))
	ap := access.NewSchema(access.NewConstraint("Rp", attrs("A"), attrs("B"), 4))
	q1 := &cq.CQ{
		Label: "Q1", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(1))}},
	}
	q2 := &cq.CQ{
		Label: "Q2", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		Eqs: []cq.Eq{
			{L: cq.Var("x"), R: cq.Const(iv(1))},
			{L: cq.Var("z"), R: cq.Var("y")},
		},
	}
	r1, err := Check(q1, ap, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Covered {
		t.Fatalf("Q1 must be covered:\n%s", r1.Explain())
	}
	r2, err := Check(q2, ap, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Covered {
		t.Fatal("Q2 alone must NOT be covered (z=y joins outside the index)")
	}
	ures, err := CheckUCQ([]*cq.CQ{q1, q2}, ap, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ures.Covered {
		t.Fatal("Q1 ∪ Q2 must be covered: Q2 is dominated by Q1")
	}
	if ures.Subs[0] != SubCovered || ures.Subs[1] != SubDominated {
		t.Errorf("sub statuses = %v, want [covered dominated]", ures.Subs)
	}
}

func TestUCQNotCoveredWhenNoDominator(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("Rp", "A", "B", "C"))
	ap := access.NewSchema(access.NewConstraint("Rp", attrs("A"), attrs("B"), 4))
	// Q2 alone (uncovered, nothing to dominate it).
	q2 := &cq.CQ{
		Free:  []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		Eqs: []cq.Eq{
			{L: cq.Var("x"), R: cq.Const(iv(1))},
			{L: cq.Var("z"), R: cq.Var("y")},
		},
	}
	ures, err := CheckUCQ([]*cq.CQ{q2}, ap, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ures.Covered {
		t.Fatal("a lone uncovered sub-query cannot be dominated")
	}
	if ures.Subs[0] != SubUncovered {
		t.Errorf("status = %v", ures.Subs[0])
	}
}

func TestExplainOutput(t *testing.T) {
	res, err := Check(q0(), psi(), accidentSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Explain()
	for _, want := range []string{"covered: true", "cov(Q,A)", "indexed by"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestApplicationsRecorded(t *testing.T) {
	res, err := Check(q0(), psi(), accidentSchema(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	apps := res.Analysis.Applications
	if len(apps) == 0 {
		t.Fatal("fixpoint applications must be recorded")
	}
	// First application must be psi1 (date -> aid) on the Accident atom.
	if apps[0].Constraint.Rel != "Accident" || apps[0].Constraint.X[0] != "date" {
		t.Errorf("first application = %v, want psi1 on Accident", apps[0])
	}
	if s := apps[0].String(); !strings.Contains(s, "apply") {
		t.Errorf("Application.String = %q", s)
	}
}

// When two constraints index the same atom, the tightest bound wins, so
// the plan's verification fetches are minimal.
func TestTightestIndexSelected(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(
		access.NewConstraint("R", attrs("A"), attrs("B"), 100),
		access.NewConstraint("R", attrs("A"), attrs("B"), 2),
	)
	q := &cq.CQ{
		Free:  []string{"x"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("c"), cq.Var("x"))},
		Eqs:   []cq.Eq{{L: cq.Var("c"), R: cq.Const(iv(1))}},
	}
	res, err := Check(q, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("query must be covered:\n%s", res.Explain())
	}
	if got := res.Atoms[0].ConstraintIdx; got != 1 {
		t.Errorf("tightest constraint (bound 2, index 1) should index the atom; got %d", got)
	}
}
