package fo

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value { return value.NewInt(i) }

func graph(edges [][2]int64) *data.Instance {
	s := schema.MustNew(schema.MustRelation("E", "src", "dst"))
	d := data.NewInstance(s)
	for _, e := range edges {
		d.MustInsert("E", iv(e[0]), iv(e[1]))
	}
	return d
}

func atomE(a, b cq.Term) Atom { return Atom{Rel: "E", Args: []cq.Term{a, b}} }

func TestEvalAtomAndExists(t *testing.T) {
	d := graph([][2]int64{{1, 2}, {2, 3}})
	// Q(x) :- ∃y E(x,y)
	q := &Query{Label: "Q", Free: []string{"x"},
		Body: Exists{Var: "y", Body: atomE(cq.Var("x"), cq.Var("y"))}}
	rows, err := q.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestEvalNegation(t *testing.T) {
	d := graph([][2]int64{{1, 2}, {2, 3}})
	// Sinks: Q(x) :- (∃y E(y,x)) ∧ ¬∃z E(x,z)
	q := &Query{Label: "Sinks", Free: []string{"x"},
		Body: And{
			L: Exists{Var: "y", Body: atomE(cq.Var("y"), cq.Var("x"))},
			R: Not{F: Exists{Var: "z", Body: atomE(cq.Var("x"), cq.Var("z"))}},
		}}
	rows, err := q.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != iv(3) {
		t.Fatalf("sinks = %v, want [3]", rows)
	}
}

func TestEvalForAll(t *testing.T) {
	d := graph([][2]int64{{1, 1}, {1, 2}, {1, 3}})
	// Q(x) :- ∀y (∃u E(y,u) ∨ ∃v E(v,y)) → trivially true for every adom
	// element here; instead test a universal source: x reaches every node:
	// Q(x) :- ∀y E(x,y).
	q := &Query{Label: "Universal", Free: []string{"x"},
		Body: ForAll{Var: "y", Body: atomE(cq.Var("x"), cq.Var("y"))}}
	rows, err := q.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	// adom = {1,2,3}; only x=1 has edges to all of 1,2,3.
	if len(rows) != 1 || rows[0][0] != iv(1) {
		t.Fatalf("universal sources = %v, want [1]", rows)
	}
}

func TestEvalEqualityAndConstants(t *testing.T) {
	d := graph([][2]int64{{1, 2}})
	// Q(x) :- x = 9 (constant outside adom(D) must still be considered).
	q := &Query{Label: "QEq", Free: []string{"x"},
		Body: Eq{L: cq.Var("x"), R: cq.Const(iv(9))}}
	rows, err := q.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != iv(9) {
		t.Fatalf("rows = %v, want [9]", rows)
	}
}

func TestFreeVars(t *testing.T) {
	f := And{
		L: Exists{Var: "y", Body: atomE(cq.Var("x"), cq.Var("y"))},
		R: ForAll{Var: "z", Body: Or{L: atomE(cq.Var("z"), cq.Var("w")), R: Eq{L: cq.Var("x"), R: cq.Var("w")}}},
	}
	got := FreeVars(f)
	want := []string{"w", "x"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("FreeVars = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("E", "src", "dst"))
	bad := &Query{Label: "B", Body: Atom{Rel: "F", Args: nil}}
	if err := bad.Validate(s); err == nil {
		t.Error("unknown relation must fail")
	}
	badAr := &Query{Label: "B2", Body: Atom{Rel: "E", Args: []cq.Term{cq.Var("x")}}}
	if err := badAr.Validate(s); err == nil {
		t.Error("bad arity must fail")
	}
	good := &Query{Label: "G", Free: []string{"x"},
		Body: Not{F: Exists{Var: "y", Body: atomE(cq.Var("x"), cq.Var("y"))}}}
	if err := good.Validate(s); err != nil {
		t.Errorf("good query rejected: %v", err)
	}
}

func TestSpecialize(t *testing.T) {
	d := graph([][2]int64{{1, 2}, {3, 4}})
	q := &Query{Label: "Q", Free: []string{"x", "y"},
		Body: atomE(cq.Var("x"), cq.Var("y"))}
	spec := q.Specialize(map[string]value.Value{"x": iv(1)})
	rows, err := spec.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != iv(1) || rows[0][1] != iv(2) {
		t.Fatalf("specialized rows = %v", rows)
	}
}

func TestAsPositive(t *testing.T) {
	pos := &Query{Label: "P", Free: []string{"x"},
		Body: Exists{Var: "y", Body: Or{
			L: atomE(cq.Var("x"), cq.Var("y")),
			R: atomE(cq.Var("y"), cq.Var("x")),
		}}}
	pq, ok := pos.AsPositive()
	if !ok {
		t.Fatal("positive query must convert")
	}
	subs, err := pq.ToUCQ()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Errorf("UCQ subs = %d, want 2", len(subs))
	}
	neg := &Query{Label: "N", Free: []string{"x"},
		Body: Not{F: atomE(cq.Var("x"), cq.Var("x"))}}
	if _, ok := neg.AsPositive(); ok {
		t.Error("negated query must not convert")
	}
	univ := &Query{Label: "U", Free: []string{"x"},
		Body: ForAll{Var: "y", Body: atomE(cq.Var("x"), cq.Var("y"))}}
	if _, ok := univ.AsPositive(); ok {
		t.Error("universal query must not convert")
	}
}

func TestUnboundVariableError(t *testing.T) {
	d := graph([][2]int64{{1, 2}})
	// Body references w which is neither free nor quantified.
	q := &Query{Label: "QW", Free: []string{"x"},
		Body: And{L: atomE(cq.Var("x"), cq.Var("x")), R: atomE(cq.Var("w"), cq.Var("x"))}}
	if _, err := q.Eval(d); err == nil {
		t.Error("unbound variable must surface as an error")
	}
}

func TestBooleanQuery(t *testing.T) {
	d := graph([][2]int64{{1, 2}})
	q := &Query{Label: "B",
		Body: Exists{Var: "x", Body: Exists{Var: "y", Body: atomE(cq.Var("x"), cq.Var("y"))}}}
	rows, err := q.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 0 {
		t.Fatalf("boolean true should be one empty row: %v", rows)
	}
	empty := graph(nil)
	rows, err = q.Eval(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("boolean false should be empty: %v", rows)
	}
}
