// Package fo implements full first-order logic queries: formulas built
// from atomic formulas with ∧, ∨, ¬, ∃ and ∀ (Section 2 of the paper),
// evaluated under the active-domain semantics.
//
// BEP, UEP, LEP and QSP are all undecidable for FO (Table 1), so no
// decision procedures live here; the package provides the substrate the
// paper's FO-level definitions need — evaluation, specialization of
// parameterized FO queries (Section 5), and detection of the ∃FO⁺ fragment
// for handoff to the decidable machinery.
package fo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/posfo"
	"repro/internal/schema"
	"repro/internal/value"
)

// Formula is a node of an FO formula tree.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Atom is a relation atom.
type Atom struct {
	Rel  string
	Args []cq.Term
}

func (Atom) isFormula() {}
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Eq is t1 = t2.
type Eq struct{ L, R cq.Term }

func (Eq) isFormula()       {}
func (e Eq) String() string { return e.L.String() + " = " + e.R.String() }

// Not is negation.
type Not struct{ F Formula }

func (Not) isFormula()       {}
func (n Not) String() string { return "¬(" + n.F.String() + ")" }

// And is binary conjunction.
type And struct{ L, R Formula }

func (And) isFormula()       {}
func (a And) String() string { return "(" + a.L.String() + " ∧ " + a.R.String() + ")" }

// Or is binary disjunction.
type Or struct{ L, R Formula }

func (Or) isFormula()       {}
func (o Or) String() string { return "(" + o.L.String() + " ∨ " + o.R.String() + ")" }

// Exists is ∃v (body).
type Exists struct {
	Var  string
	Body Formula
}

func (Exists) isFormula()       {}
func (e Exists) String() string { return "∃" + e.Var + " " + e.Body.String() }

// ForAll is ∀v (body).
type ForAll struct {
	Var  string
	Body Formula
}

func (ForAll) isFormula()       {}
func (f ForAll) String() string { return "∀" + f.Var + " " + f.Body.String() }

// Query is a named FO query with a free-variable tuple.
type Query struct {
	Label string
	Free  []string
	Body  Formula
}

func (q *Query) String() string {
	return fmt.Sprintf("%s(%s) :- %s", q.Label, strings.Join(q.Free, ", "), q.Body)
}

// FreeVars computes the free variables of a formula.
func FreeVars(f Formula) []string {
	set := make(map[string]bool)
	var walk func(f Formula, bound map[string]bool)
	walk = func(f Formula, bound map[string]bool) {
		switch n := f.(type) {
		case Atom:
			for _, t := range n.Args {
				if t.IsVar() && !bound[t.V] {
					set[t.V] = true
				}
			}
		case Eq:
			for _, t := range []cq.Term{n.L, n.R} {
				if t.IsVar() && !bound[t.V] {
					set[t.V] = true
				}
			}
		case Not:
			walk(n.F, bound)
		case And:
			walk(n.L, bound)
			walk(n.R, bound)
		case Or:
			walk(n.L, bound)
			walk(n.R, bound)
		case Exists:
			nb := copyBound(bound)
			nb[n.Var] = true
			walk(n.Body, nb)
		case ForAll:
			nb := copyBound(bound)
			nb[n.Var] = true
			walk(n.Body, nb)
		}
	}
	walk(f, map[string]bool{})
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func copyBound(b map[string]bool) map[string]bool {
	nb := make(map[string]bool, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// Validate checks arities and that every declared free variable is free in
// the body (or absent, which is allowed for parameterized shells).
func (q *Query) Validate(s *schema.Schema) error {
	var check func(f Formula) error
	check = func(f Formula) error {
		switch n := f.(type) {
		case Atom:
			rs, ok := s.Relation(n.Rel)
			if !ok {
				return fmt.Errorf("fo: %s: unknown relation %s", q.Label, n.Rel)
			}
			if len(n.Args) != rs.Arity() {
				return fmt.Errorf("fo: %s: atom %s has arity %d, schema wants %d",
					q.Label, n, len(n.Args), rs.Arity())
			}
			return nil
		case Eq:
			return nil
		case Not:
			return check(n.F)
		case And:
			if err := check(n.L); err != nil {
				return err
			}
			return check(n.R)
		case Or:
			if err := check(n.L); err != nil {
				return err
			}
			return check(n.R)
		case Exists:
			return check(n.Body)
		case ForAll:
			return check(n.Body)
		default:
			return fmt.Errorf("fo: %s: unknown node %T", q.Label, f)
		}
	}
	return check(q.Body)
}

// Eval computes Q(D) under active-domain semantics: free variables and
// quantifiers range over adom(D) ∪ constants(Q). The cost is
// O(|adom|^(free+quantifier depth)) — this is the brute-force baseline, as
// the paper's negative results demand.
func (q *Query) Eval(d *data.Instance) ([]data.Tuple, error) {
	declared := make(map[string]bool, len(q.Free))
	for _, v := range q.Free {
		declared[v] = true
	}
	for _, v := range FreeVars(q.Body) {
		if !declared[v] {
			return nil, fmt.Errorf("fo: %s: variable %s is free in the body but not declared in the head", q.Label, v)
		}
	}
	dom := activeDomain(q, d)
	assign := make(map[string]value.Value)
	var out []data.Tuple
	seen := make(map[value.Key]bool)
	var enumerate func(i int) error
	enumerate = func(i int) error {
		if i == len(q.Free) {
			ok, err := holds(q.Body, d, dom, assign)
			if err != nil {
				return err
			}
			if ok {
				row := make(data.Tuple, len(q.Free))
				for j, v := range q.Free {
					row[j] = assign[v]
				}
				if k := row.Key(); !seen[k] {
					seen[k] = true
					out = append(out, row)
				}
			}
			return nil
		}
		v := q.Free[i]
		if _, fixed := assign[v]; fixed {
			return enumerate(i + 1)
		}
		for _, c := range dom {
			assign[v] = c
			if err := enumerate(i + 1); err != nil {
				return err
			}
		}
		delete(assign, v)
		return nil
	}
	if err := enumerate(0); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k].Less(out[j][k])
			}
		}
		return false
	})
	return out, nil
}

func activeDomain(q *Query, d *data.Instance) []value.Value {
	dom := d.ActiveDomain()
	set := make(map[value.Value]bool, len(dom))
	for _, v := range dom {
		set[v] = true
	}
	var walk func(f Formula)
	walk = func(f Formula) {
		switch n := f.(type) {
		case Atom:
			for _, t := range n.Args {
				if !t.IsVar() && !set[t.C] {
					set[t.C] = true
					dom = append(dom, t.C)
				}
			}
		case Eq:
			for _, t := range []cq.Term{n.L, n.R} {
				if !t.IsVar() && !set[t.C] {
					set[t.C] = true
					dom = append(dom, t.C)
				}
			}
		case Not:
			walk(n.F)
		case And:
			walk(n.L)
			walk(n.R)
		case Or:
			walk(n.L)
			walk(n.R)
		case Exists:
			walk(n.Body)
		case ForAll:
			walk(n.Body)
		}
	}
	walk(q.Body)
	sort.Slice(dom, func(i, j int) bool { return dom[i].Less(dom[j]) })
	return dom
}

func holds(f Formula, d *data.Instance, dom []value.Value, assign map[string]value.Value) (bool, error) {
	switch n := f.(type) {
	case Atom:
		rel := d.Relation(n.Rel)
		if rel == nil {
			return false, fmt.Errorf("fo: instance has no relation %s", n.Rel)
		}
		row := make(data.Tuple, len(n.Args))
		for i, t := range n.Args {
			if t.IsVar() {
				v, ok := assign[t.V]
				if !ok {
					return false, fmt.Errorf("fo: unbound variable %s (formula not closed under assignment)", t.V)
				}
				row[i] = v
			} else {
				row[i] = t.C
			}
		}
		return rel.Contains(row), nil
	case Eq:
		l, err := termValue(n.L, assign)
		if err != nil {
			return false, err
		}
		r, err := termValue(n.R, assign)
		if err != nil {
			return false, err
		}
		return l == r, nil
	case Not:
		ok, err := holds(n.F, d, dom, assign)
		return !ok, err
	case And:
		ok, err := holds(n.L, d, dom, assign)
		if err != nil || !ok {
			return false, err
		}
		return holds(n.R, d, dom, assign)
	case Or:
		ok, err := holds(n.L, d, dom, assign)
		if err != nil || ok {
			return ok, err
		}
		return holds(n.R, d, dom, assign)
	case Exists:
		old, had := assign[n.Var]
		for _, c := range dom {
			assign[n.Var] = c
			ok, err := holds(n.Body, d, dom, assign)
			if err != nil {
				return false, err
			}
			if ok {
				restore(assign, n.Var, old, had)
				return true, nil
			}
		}
		restore(assign, n.Var, old, had)
		return false, nil
	case ForAll:
		old, had := assign[n.Var]
		for _, c := range dom {
			assign[n.Var] = c
			ok, err := holds(n.Body, d, dom, assign)
			if err != nil {
				return false, err
			}
			if !ok {
				restore(assign, n.Var, old, had)
				return false, nil
			}
		}
		restore(assign, n.Var, old, had)
		return true, nil
	default:
		return false, fmt.Errorf("fo: unknown node %T", f)
	}
}

func restore(assign map[string]value.Value, v string, old value.Value, had bool) {
	if had {
		assign[v] = old
	} else {
		delete(assign, v)
	}
}

func termValue(t cq.Term, assign map[string]value.Value) (value.Value, error) {
	if !t.IsVar() {
		return t.C, nil
	}
	v, ok := assign[t.V]
	if !ok {
		return value.Value{}, fmt.Errorf("fo: unbound variable %s", t.V)
	}
	return v, nil
}

// Specialize builds the specialized FO query Q(x̄ = c̄) of Section 5:
// the body conjoined with x = c for each parameter.
func (q *Query) Specialize(vals map[string]value.Value) *Query {
	body := q.Body
	keys := make([]string, 0, len(vals))
	for p := range vals {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	for _, p := range keys {
		body = And{L: body, R: Eq{L: cq.Var(p), R: cq.Const(vals[p])}}
	}
	return &Query{Label: q.Label + "_spec", Free: append([]string(nil), q.Free...), Body: body}
}

// AsPositive attempts to view the query as ∃FO⁺ (no ¬, no ∀). It returns
// the positive query for handoff to the decidable analyses, or false when
// the query genuinely uses negation or universal quantification.
func (q *Query) AsPositive() (*posfo.Query, bool) {
	var conv func(f Formula) (posfo.Formula, bool)
	conv = func(f Formula) (posfo.Formula, bool) {
		switch n := f.(type) {
		case Atom:
			return posfo.Atom{Rel: n.Rel, Args: n.Args}, true
		case Eq:
			return posfo.Eq{L: n.L, R: n.R}, true
		case And:
			l, ok := conv(n.L)
			if !ok {
				return nil, false
			}
			r, ok := conv(n.R)
			if !ok {
				return nil, false
			}
			return posfo.And{Fs: []posfo.Formula{l, r}}, true
		case Or:
			l, ok := conv(n.L)
			if !ok {
				return nil, false
			}
			r, ok := conv(n.R)
			if !ok {
				return nil, false
			}
			return posfo.Or{Fs: []posfo.Formula{l, r}}, true
		case Exists:
			b, ok := conv(n.Body)
			if !ok {
				return nil, false
			}
			return posfo.Exists{Vars: []string{n.Var}, Body: b}, true
		default:
			return nil, false
		}
	}
	body, ok := conv(q.Body)
	if !ok {
		return nil, false
	}
	return &posfo.Query{Label: q.Label, Free: append([]string(nil), q.Free...), Body: body}, true
}
