package plan

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/value"
)

// ExecStats accounts for the data a plan execution touched. For a boundedly
// evaluable plan, Fetched is at most the plan's static AccessBound no
// matter how large the instance is — that is the paper's headline property.
type ExecStats struct {
	// Fetched counts tuples retrieved from D via indices (|D_Q|).
	Fetched int64
	// FetchKeys counts distinct index lookups performed.
	FetchKeys int64
	// OpsRun counts executed plan steps.
	OpsRun int
	// MaxIntermediate is the largest intermediate table size.
	MaxIntermediate int
}

// Execute runs the plan against an indexed instance. Every FetchOp must be
// backed by a constraint present in ix.
func Execute(p *Plan, ix *access.Indexed) (*Table, *ExecStats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	stats := &ExecStats{}
	results := make([]*Table, len(p.Steps))
	for i, op := range p.Steps {
		t, err := execOp(op, results, ix, stats)
		if err != nil {
			return nil, nil, fmt.Errorf("plan: step T%d (%s): %w", i, op, err)
		}
		results[i] = t
		stats.OpsRun++
		if t.Len() > stats.MaxIntermediate {
			stats.MaxIntermediate = t.Len()
		}
	}
	return results[len(results)-1], stats, nil
}

func execOp(op Op, results []*Table, ix *access.Indexed, stats *ExecStats) (*Table, error) {
	switch o := op.(type) {
	case unitOp:
		return Unit(), nil
	case ConstOp:
		t := NewTable(o.Col)
		t.Add(data.Tuple{o.Val})
		return t, nil
	case EmptyOp:
		return NewTable(o.Cols...), nil
	case FetchOp:
		return execFetch(o, results[o.Input], ix, stats)
	case ProjectOp:
		return execProject(o, results[o.Input])
	case SelectOp:
		return execSelect(o, results[o.Input])
	case ProductOp:
		return execProduct(results[o.L], results[o.R])
	case JoinOp:
		return execJoin(results[o.L], results[o.R])
	case UnionOp:
		return execUnion(results[o.L], results[o.R])
	case DiffOp:
		return execDiff(results[o.L], results[o.R])
	case RenameOp:
		return execRename(o, results[o.Input])
	default:
		return nil, fmt.Errorf("unknown operation %T", op)
	}
}

func execFetch(o FetchOp, in *Table, ix *access.Indexed, stats *ExecStats) (*Table, error) {
	idx := ix.IndexFor(o.Constraint)
	if idx == nil {
		return nil, fmt.Errorf("no index for constraint %s", o.Constraint)
	}
	if len(o.XCols) != len(o.Constraint.X) {
		return nil, fmt.Errorf("fetch has %d X columns for %d X attributes", len(o.XCols), len(o.Constraint.X))
	}
	if len(o.YOut) != len(o.Constraint.Y) {
		return nil, fmt.Errorf("fetch has %d Y names for %d Y attributes", len(o.YOut), len(o.Constraint.Y))
	}
	xpos, err := in.ColIndexes(o.XCols)
	if err != nil {
		return nil, err
	}
	outCols := o.outCols()
	out := NewTable(outCols...)

	// Plan Y emission: for each Y attribute, either a check against an
	// existing column (equated) or a fresh output position.
	type yAction struct {
		skip     bool
		checkPos int // >= 0: must equal this output position
	}
	actions := make([]yAction, len(o.YOut))
	posOf := make(map[string]int, len(outCols))
	for i, c := range outCols {
		posOf[c] = i
	}
	nextPos := len(o.XCols)
	for i, name := range o.YOut {
		if name == "" {
			actions[i] = yAction{skip: true, checkPos: -1}
			continue
		}
		if p, seen := posOf[name]; seen {
			// Equated with an X column or an earlier Y attribute: check.
			actions[i] = yAction{checkPos: p}
		} else {
			actions[i] = yAction{checkPos: -1}
			posOf[name] = nextPos
			nextPos++
		}
	}

	seenKeys := make(map[value.Key]bool)
	for _, row := range in.Rows {
		key := value.KeyOfAt(row, xpos)
		if seenKeys[key] {
			continue
		}
		seenKeys[key] = true
		bucket := idx.FetchKey(key)
		stats.FetchKeys++
		stats.Fetched += int64(len(bucket))
		for _, proj := range bucket {
			outRow := make(data.Tuple, len(outCols))
			for i, p := range xpos {
				outRow[i] = row[p]
			}
			ok := true
			cursor := len(o.XCols)
			for i, act := range actions {
				v := proj[i]
				switch {
				case act.skip:
				case act.checkPos >= 0:
					if outRow[act.checkPos].IsNull() {
						outRow[act.checkPos] = v
					} else if outRow[act.checkPos] != v {
						ok = false
					}
				default:
					outRow[cursor] = v
					cursor++
				}
				if !ok {
					break
				}
			}
			if ok {
				out.Add(outRow)
			}
		}
	}
	return out, nil
}

func execProject(o ProjectOp, in *Table) (*Table, error) {
	pos, err := in.ColIndexes(o.Cols)
	if err != nil {
		return nil, err
	}
	cols := o.Cols
	if o.As != nil {
		if len(o.As) != len(o.Cols) {
			return nil, fmt.Errorf("project rename arity mismatch")
		}
		cols = o.As
	}
	out := NewTable(cols...)
	for _, row := range in.Rows {
		out.Add(row.Project(pos))
	}
	return out, nil
}

func execSelect(o SelectOp, in *Table) (*Table, error) {
	type cond struct {
		l, r int // r == -1 means constant comparison
		c    value.Value
	}
	conds := make([]cond, len(o.Conds))
	for i, ec := range o.Conds {
		l := in.ColIndex(ec.L)
		if l < 0 {
			return nil, fmt.Errorf("select: no column %q", ec.L)
		}
		if ec.R != "" {
			r := in.ColIndex(ec.R)
			if r < 0 {
				return nil, fmt.Errorf("select: no column %q", ec.R)
			}
			conds[i] = cond{l: l, r: r}
		} else {
			conds[i] = cond{l: l, r: -1, c: ec.C}
		}
	}
	out := NewTable(in.Cols...)
	for _, row := range in.Rows {
		ok := true
		for _, c := range conds {
			if c.r >= 0 {
				if row[c.l] != row[c.r] {
					ok = false
					break
				}
			} else if row[c.l] != c.c {
				ok = false
				break
			}
		}
		if ok {
			out.Add(row)
		}
	}
	return out, nil
}

func execProduct(l, r *Table) (*Table, error) {
	for _, c := range r.Cols {
		if l.ColIndex(c) >= 0 {
			return nil, fmt.Errorf("product: duplicate column %q (rename first)", c)
		}
	}
	out := NewTable(append(append([]string(nil), l.Cols...), r.Cols...)...)
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			out.Add(append(append(data.Tuple{}, lr...), rr...))
		}
	}
	return out, nil
}

func execJoin(l, r *Table) (*Table, error) {
	// Shared columns become the hash key; right-only columns extend rows.
	var sharedL, sharedR, extraR []int
	var extraCols []string
	for j, c := range r.Cols {
		if i := l.ColIndex(c); i >= 0 {
			sharedL = append(sharedL, i)
			sharedR = append(sharedR, j)
		} else {
			extraR = append(extraR, j)
			extraCols = append(extraCols, c)
		}
	}
	out := NewTable(append(append([]string(nil), l.Cols...), extraCols...)...)
	table := make(map[value.Key][]data.Tuple, r.Len())
	for _, rr := range r.Rows {
		k := value.KeyOfAt(rr, sharedR)
		table[k] = append(table[k], rr)
	}
	for _, lr := range l.Rows {
		k := value.KeyOfAt(lr, sharedL)
		for _, rr := range table[k] {
			row := append(append(data.Tuple{}, lr...), rr.Project(extraR)...)
			out.Add(row)
		}
	}
	return out, nil
}

func execUnion(l, r *Table) (*Table, error) {
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("union: arity mismatch %d vs %d", len(l.Cols), len(r.Cols))
	}
	out := NewTable(l.Cols...)
	for _, row := range l.Rows {
		out.Add(row)
	}
	for _, row := range r.Rows {
		out.Add(row)
	}
	return out, nil
}

func execDiff(l, r *Table) (*Table, error) {
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("difference: arity mismatch %d vs %d", len(l.Cols), len(r.Cols))
	}
	drop := make(map[value.Key]bool, r.Len())
	for _, row := range r.Rows {
		drop[row.Key()] = true
	}
	out := NewTable(l.Cols...)
	for _, row := range l.Rows {
		if !drop[row.Key()] {
			out.Add(row)
		}
	}
	return out, nil
}

func execRename(o RenameOp, in *Table) (*Table, error) {
	if len(o.From) != len(o.To) {
		return nil, fmt.Errorf("rename arity mismatch")
	}
	cols := append([]string(nil), in.Cols...)
	for i, f := range o.From {
		p := in.ColIndex(f)
		if p < 0 {
			return nil, fmt.Errorf("rename: no column %q", f)
		}
		cols[p] = o.To[i]
	}
	out := NewTable(cols...)
	for _, row := range in.Rows {
		out.Add(row)
	}
	return out, nil
}
