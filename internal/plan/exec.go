package plan

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/value"
)

// ExecStats accounts for the data a plan execution touched. For a boundedly
// evaluable plan, Fetched is at most the plan's static AccessBound no
// matter how large the instance is — that is the paper's headline property.
type ExecStats struct {
	// Fetched counts tuples retrieved from D via indices (|D_Q|).
	Fetched int64
	// FetchKeys counts distinct index lookups performed.
	FetchKeys int64
	// OpsRun counts executed plan steps.
	OpsRun int
	// MaxIntermediate is the largest intermediate table size.
	MaxIntermediate int
}

// cancelStride is how many loop iterations an operator runs between
// context checks: often enough that cancellation lands promptly, rarely
// enough that the atomic load in ctx.Err() stays off the profile.
const cancelStride = 256

// Execute runs the plan against an indexed instance, sequentially and
// without cancellation. Every FetchOp must be backed by a constraint
// present in ix.
func Execute(p *Plan, ix *access.Indexed) (*Table, *ExecStats, error) {
	return ExecuteOpts(context.Background(), p, ix, ExecOptions{})
}

// ExecuteOpts is Execute with tuning and cancellation. With opts.Workers
// > 1, fetch steps partition their distinct input keys across a bounded
// worker pool and hash joins parallelize their build/probe phases;
// per-worker stats are merged, so Fetched and FetchKeys are identical to
// a sequential run (the static access bound is respected either way), and
// result rows come back in the same order with the same set semantics.
//
// ctx is observed between steps and periodically inside fetch, join and
// product loops (including on worker goroutines): when it is canceled or
// its deadline passes, execution stops and the context's error is
// returned (wrapped; test with errors.Is). The worker pool always drains
// before ExecuteOpts returns — cancellation never leaks goroutines.
func ExecuteOpts(ctx context.Context, p *Plan, ix *access.Indexed, opts ExecOptions) (*Table, *ExecStats, error) {
	return ExecuteSource(ctx, p, NewSource(ix), opts)
}

// ExecuteSource is ExecuteOpts generalized over the data-access surface:
// fetches resolve through src instead of a concrete indexed instance, so
// the same executor serves single-node indexes and the scatter-gather
// sources of a sharded engine.
func ExecuteSource(ctx context.Context, p *Plan, src Source, opts ExecOptions) (*Table, *ExecStats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	stats := &ExecStats{}
	tr := obs.FromContext(ctx)
	results := make([]*Table, len(p.Steps))
	for i, op := range p.Steps {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("plan: canceled before step T%d: %w", i, err)
		}
		sp, f0, k0 := startStepSpan(tr, i, op, stats)
		t, err := execOp(ctx, op, results, src, stats, opts)
		if sp != nil {
			if err == nil {
				sp.SetRows(int64(t.Len()))
			}
			sp.SetFetch(stats.Fetched-f0, stats.FetchKeys-k0)
			sp.End()
		}
		if err != nil {
			return nil, nil, fmt.Errorf("plan: step T%d (%s): %w", i, op, err)
		}
		if err := fetchErrOf(src); err != nil {
			return nil, nil, fmt.Errorf("plan: step T%d (%s): %w", i, op, err)
		}
		results[i] = t
		stats.OpsRun++
		if t.Len() > stats.MaxIntermediate {
			stats.MaxIntermediate = t.Len()
		}
	}
	return results[len(results)-1], stats, nil
}

// fetchErrOf surfaces a deferred fetch failure from sources whose
// Fetchers cannot report errors inline (the FetchBytes signature is
// infallible by design — local index fetches cannot fail). A networked
// source records the first RPC error it swallows and exposes it through
// the optional FetchErr method; the executor checks it after every step
// so a lost peer aborts the query with a descriptive error instead of
// silently computing over partial buckets.
func fetchErrOf(src Source) error {
	if fe, ok := src.(interface{ FetchErr() error }); ok {
		return fe.FetchErr()
	}
	return nil
}

// startStepSpan opens the per-operator profile span for plan step i and
// snapshots the fetch accounting, so the span's Fetched/Keys are the
// step's delta. A nil trace costs a nil check and nothing else.
func startStepSpan(tr *obs.Trace, i int, op Op, stats *ExecStats) (sp *obs.Span, f0, k0 int64) {
	if tr == nil {
		return nil, 0, 0
	}
	sp = tr.StartDetail(opKind(op), "T"+strconv.Itoa(i)+" = "+op.String())
	return sp, stats.Fetched, stats.FetchKeys
}

// opKind names a span after its operator class; the full operator text
// goes in the span's Detail.
func opKind(op Op) string {
	switch op.(type) {
	case unitOp:
		return "unit"
	case ConstOp:
		return "const"
	case EmptyOp:
		return "empty"
	case FetchOp:
		return "fetch"
	case ProjectOp:
		return "project"
	case SelectOp:
		return "select"
	case ProductOp:
		return "product"
	case JoinOp:
		return "join"
	case UnionOp:
		return "union"
	case DiffOp:
		return "diff"
	case RenameOp:
		return "rename"
	default:
		return "op"
	}
}

// ExecuteStream runs p like ExecuteOpts but hands the final step's rows to
// yield as they are produced instead of materializing the answer table, so
// large answers are never fully buffered. yield returning false stops the
// final step early (no error). Every earlier step executes exactly as
// ExecuteOpts (including parallelism); the final step runs sequentially.
// Set semantics are preserved with a dedup index, so the yielded
// sequence is byte-identical, in order, to ExecuteOpts's result rows.
func ExecuteStream(ctx context.Context, p *Plan, ix *access.Indexed, opts ExecOptions, yield func(data.Tuple) bool) (*ExecStats, error) {
	return ExecuteStreamSource(ctx, p, NewSource(ix), opts, yield)
}

// ExecuteStreamSource is ExecuteStream generalized over the data-access
// surface, like ExecuteSource.
func ExecuteStreamSource(ctx context.Context, p *Plan, src Source, opts ExecOptions, yield func(data.Tuple) bool) (*ExecStats, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	stats := &ExecStats{}
	tr := obs.FromContext(ctx)
	results := make([]*Table, len(p.Steps))
	last := len(p.Steps) - 1
	for i, op := range p.Steps[:last] {
		if err := ctx.Err(); err != nil {
			return stats, fmt.Errorf("plan: canceled before step T%d: %w", i, err)
		}
		sp, f0, k0 := startStepSpan(tr, i, op, stats)
		t, err := execOp(ctx, op, results, src, stats, opts)
		if sp != nil {
			if err == nil {
				sp.SetRows(int64(t.Len()))
			}
			sp.SetFetch(stats.Fetched-f0, stats.FetchKeys-k0)
			sp.End()
		}
		if err != nil {
			return stats, fmt.Errorf("plan: step T%d (%s): %w", i, op, err)
		}
		if err := fetchErrOf(src); err != nil {
			return stats, fmt.Errorf("plan: step T%d (%s): %w", i, op, err)
		}
		results[i] = t
		stats.OpsRun++
		if t.Len() > stats.MaxIntermediate {
			stats.MaxIntermediate = t.Len()
		}
	}
	if err := ctx.Err(); err != nil {
		return stats, fmt.Errorf("plan: canceled before step T%d: %w", last, err)
	}
	// The final step streams through the dedup sink; its span counts the
	// rows actually yielded downstream (post-dedup, post-early-stop).
	var sp *obs.Span
	var f0, k0, yielded int64
	sunk := yield
	if tr != nil {
		sp = tr.StartDetail(opKind(p.Steps[last])+"+stream+dedup",
			"T"+strconv.Itoa(last)+" = "+p.Steps[last].String())
		f0, k0 = stats.Fetched, stats.FetchKeys
		sunk = func(row data.Tuple) bool {
			yielded++
			return yield(row)
		}
	}
	err := streamOp(ctx, p.Steps[last], results, src, stats, sunk)
	if sp != nil {
		sp.SetRows(yielded)
		sp.SetFetch(stats.Fetched-f0, stats.FetchKeys-k0)
		sp.End()
	}
	if err != nil {
		return stats, fmt.Errorf("plan: step T%d (%s): %w", last, p.Steps[last], err)
	}
	if err := fetchErrOf(src); err != nil {
		return stats, fmt.Errorf("plan: step T%d (%s): %w", last, p.Steps[last], err)
	}
	stats.OpsRun++
	return stats, nil
}

func execOp(ctx context.Context, op Op, results []*Table, src Source, stats *ExecStats, opts ExecOptions) (*Table, error) {
	switch o := op.(type) {
	case unitOp:
		return Unit(), nil
	case ConstOp:
		t := NewTable(o.Col)
		t.Add(data.Tuple{o.Val})
		return t, nil
	case EmptyOp:
		return NewTable(o.Cols...), nil
	case FetchOp:
		return execFetch(ctx, o, results[o.Input], src, stats, opts)
	case ProjectOp:
		return execProject(o, results[o.Input])
	case SelectOp:
		return execSelect(o, results[o.Input])
	case ProductOp:
		return execProduct(ctx, results[o.L], results[o.R])
	case JoinOp:
		return execJoin(ctx, results[o.L], results[o.R], opts)
	case UnionOp:
		return execUnion(results[o.L], results[o.R])
	case DiffOp:
		return execDiff(results[o.L], results[o.R])
	case RenameOp:
		return execRename(o, results[o.Input])
	default:
		return nil, fmt.Errorf("unknown operation %T", op)
	}
}

// streamSink dedups final-step rows and forwards them to a consumer,
// recording an early stop (consumer returned false — not an error).
// Incoming rows may live in reused scratch buffers, so a NEW row is
// copied before it is recorded and yielded; duplicates are recognized
// without copying. Consumers may therefore retain yielded rows.
type streamSink struct {
	rows    []data.Tuple
	first   map[uint64]int32
	more    map[uint64][]int32
	yield   func(data.Tuple) bool
	stopped bool
}

func newStreamSink(yield func(data.Tuple) bool) *streamSink {
	return &streamSink{first: make(map[uint64]int32), yield: yield}
}

// add forwards a row if unseen; it reports whether the consumer still
// wants more rows.
//
//bevet:hotpath
func (s *streamSink) add(row data.Tuple) bool {
	if s.stopped {
		return false
	}
	h := hashRow(row)
	if i, ok := s.first[h]; ok {
		if rowsEqual(s.rows[i], row) {
			return true
		}
		dup := false
		for _, j := range s.more[h] {
			if rowsEqual(s.rows[j], row) {
				dup = true
				break
			}
		}
		if dup {
			return true
		}
	}
	kept := append(data.Tuple(nil), row...)
	s.record(h)
	s.rows = append(s.rows, kept)
	if !s.yield(kept) {
		s.stopped = true
		return false
	}
	return true
}

// record indexes the row about to be appended; the collision branch
// allocates by design and runs ~never.
func (s *streamSink) record(h uint64) {
	if _, ok := s.first[h]; !ok {
		s.first[h] = int32(len(s.rows))
		return
	}
	if s.more == nil {
		s.more = make(map[uint64][]int32)
	}
	s.more[h] = append(s.more[h], int32(len(s.rows)))
}

// streamOp executes the final plan step sequentially, emitting its rows
// through a streamSink instead of building a Table.
func streamOp(ctx context.Context, op Op, results []*Table, src Source, stats *ExecStats, yield func(data.Tuple) bool) error {
	sink := newStreamSink(yield)
	each := func(rows []data.Tuple) error {
		for i, row := range rows {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if !sink.add(row) {
				return nil
			}
		}
		return nil
	}
	switch o := op.(type) {
	case unitOp:
		sink.add(data.Tuple{})
		return nil
	case ConstOp:
		sink.add(data.Tuple{o.Val})
		return nil
	case EmptyOp:
		return nil
	case FetchOp:
		fe, err := newFetchEval(o, results[o.Input], src)
		if err != nil {
			return err
		}
		return fe.runSequential(ctx, stats, sink.add)
	case ProjectOp:
		in := results[o.Input]
		pos, err := in.ColIndexes(o.Cols)
		if err != nil {
			return err
		}
		if o.As != nil && len(o.As) != len(o.Cols) {
			return fmt.Errorf("project rename arity mismatch")
		}
		buf := make(data.Tuple, 0, len(pos))
		for i, row := range in.Rows {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			buf = buf[:0]
			for _, p := range pos {
				buf = append(buf, row[p])
			}
			if !sink.add(buf) {
				return nil
			}
		}
		return nil
	case SelectOp:
		in := results[o.Input]
		conds, err := compileConds(o, in)
		if err != nil {
			return err
		}
		for i, row := range in.Rows {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if condsMatch(conds, row) && !sink.add(row) {
				return nil
			}
		}
		return nil
	case ProductOp:
		l, r := results[o.L], results[o.R]
		if err := checkProductCols(l, r); err != nil {
			return err
		}
		buf := make(data.Tuple, 0, len(l.Cols)+len(r.Cols))
		n := 0
		for _, lr := range l.Rows {
			for _, rr := range r.Rows {
				if n%cancelStride == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				n++
				buf = append(append(buf[:0], lr...), rr...)
				if !sink.add(buf) {
					return nil
				}
			}
		}
		return nil
	case JoinOp:
		l, r := results[o.L], results[o.R]
		js := newJoinState(l, r)
		if err := js.build(ctx, 1); err != nil {
			return err
		}
		buf := make(data.Tuple, 0, len(l.Cols)+len(js.extraR))
		for i, lr := range l.Rows {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if !js.probe(lr, buf, sink.add) {
				return nil
			}
		}
		return nil
	case UnionOp:
		l, r := results[o.L], results[o.R]
		if len(l.Cols) != len(r.Cols) {
			return fmt.Errorf("union: arity mismatch %d vs %d", len(l.Cols), len(r.Cols))
		}
		if err := each(l.Rows); err != nil || sink.stopped {
			return err
		}
		return each(r.Rows)
	case DiffOp:
		l, r := results[o.L], results[o.R]
		if len(l.Cols) != len(r.Cols) {
			return fmt.Errorf("difference: arity mismatch %d vs %d", len(l.Cols), len(r.Cols))
		}
		drop := newDropSet(r.Rows)
		for i, row := range l.Rows {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if !drop.has(row) && !sink.add(row) {
				return nil
			}
		}
		return nil
	case RenameOp:
		if _, err := renamedCols(o, results[o.Input]); err != nil {
			return err
		}
		return each(results[o.Input].Rows)
	default:
		return fmt.Errorf("unknown operation %T", op)
	}
}

// fetchEval is the per-step state of a fetch: resolved index, input key
// positions, the Y-emission actions, and the sequential path's scratch
// buffers (key encoding and output row assembly).
type fetchEval struct {
	o       FetchOp
	in      *Table
	fetch   Fetcher
	xpos    []int
	outCols []string
	actions []yAction
	keyBuf  []byte
	rowBuf  data.Tuple
}

// yAction says how one Y attribute lands in the output row: skipped,
// checked against an existing output position (equated), or appended.
type yAction struct {
	skip     bool
	checkPos int // >= 0: must equal this output position
}

func newFetchEval(o FetchOp, in *Table, src Source) (*fetchEval, error) {
	fetch := src.FetcherFor(o.Constraint)
	if fetch == nil {
		return nil, fmt.Errorf("no index for constraint %s", o.Constraint)
	}
	if len(o.XCols) != len(o.Constraint.X) {
		return nil, fmt.Errorf("fetch has %d X columns for %d X attributes", len(o.XCols), len(o.Constraint.X))
	}
	if len(o.YOut) != len(o.Constraint.Y) {
		return nil, fmt.Errorf("fetch has %d Y names for %d Y attributes", len(o.YOut), len(o.Constraint.Y))
	}
	xpos, err := in.ColIndexes(o.XCols)
	if err != nil {
		return nil, err
	}
	outCols := o.outCols()

	// Plan Y emission: for each Y attribute, either a check against an
	// existing column (equated) or a fresh output position.
	actions := make([]yAction, len(o.YOut))
	posOf := make(map[string]int, len(outCols))
	for i, c := range outCols {
		posOf[c] = i
	}
	nextPos := len(o.XCols)
	for i, name := range o.YOut {
		if name == "" {
			actions[i] = yAction{skip: true, checkPos: -1}
			continue
		}
		if p, seen := posOf[name]; seen {
			// Equated with an X column or an earlier Y attribute: check.
			actions[i] = yAction{checkPos: p}
		} else {
			actions[i] = yAction{checkPos: -1}
			posOf[name] = nextPos
			nextPos++
		}
	}
	return &fetchEval{
		o: o, in: in, fetch: fetch, xpos: xpos, outCols: outCols, actions: actions,
		rowBuf: make(data.Tuple, len(outCols)),
	}, nil
}

// fetchItem is one distinct-key lookup of the parallel path: the first
// input row carrying the key, and the key's encoded bytes.
type fetchItem struct {
	row data.Tuple
	key []byte
}

// emitBucket assembles the output rows of one bucket into the out scratch
// buffer and sends each to sink, stopping when sink returns false. It
// runs once per distinct key of every fetch node and out is reused across
// every bucket row, so the loop allocates nothing; sinks copy a row iff
// they keep it.
//
//bevet:hotpath
func (f *fetchEval) emitBucket(row data.Tuple, b index.Bucket, out data.Tuple, st *ExecStats, sink func(data.Tuple) bool) bool {
	st.FetchKeys++
	st.Fetched += int64(b.Len())
	nx := len(f.o.XCols)
	for bi := 0; bi < b.Len(); bi++ {
		out = out[:len(f.outCols)]
		for i, p := range f.xpos {
			out[i] = row[p]
		}
		// Y positions start null: the equate check uses null as its
		// "not yet bound" sentinel.
		for i := nx; i < len(out); i++ {
			out[i] = value.Value{}
		}
		ok := true
		cursor := nx
		for i, act := range f.actions {
			v := b.At(bi, i)
			switch {
			case act.skip:
			case act.checkPos >= 0:
				if out[act.checkPos].IsNull() {
					out[act.checkPos] = v
				} else if out[act.checkPos] != v {
					ok = false
				}
			default:
				out[cursor] = v
				cursor++
			}
			if !ok {
				break
			}
		}
		if ok && !sink(out) {
			return false
		}
	}
	return true
}

// runSequential streams the fetch over the input rows in order, deduping
// keys inline with no item buffer. The per-row path — hash dedup, key
// encoding into scratch, bucket probe, row assembly — is allocation-free.
func (f *fetchEval) runSequential(ctx context.Context, stats *ExecStats, sink func(data.Tuple) bool) error {
	dd := newArgDedup(f.in.Rows, f.xpos)
	for i, row := range f.in.Rows {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if dd.seen(i) {
			continue
		}
		f.keyBuf = value.AppendKeyAt(f.keyBuf[:0], row, f.xpos)
		if !f.emitBucket(row, f.fetch.FetchBytes(f.keyBuf), f.rowBuf, stats, sink) {
			return nil
		}
	}
	return nil
}

func execFetch(ctx context.Context, o FetchOp, in *Table, src Source, stats *ExecStats, opts ExecOptions) (*Table, error) {
	f, err := newFetchEval(o, in, src)
	if err != nil {
		return nil, err
	}
	out := NewTable(f.outCols...)

	// Sequential path (the default): the original streaming loop.
	// len(in.Rows) bounds the distinct key count, so
	// workersFor(len(in.Rows)) == 1 implies parallelism would never
	// trigger.
	if opts.workersFor(len(in.Rows)) <= 1 {
		err := f.runSequential(ctx, stats, func(r data.Tuple) bool { out.AddScratch(r); return true })
		return out, err
	}

	// Distinct input keys in first-occurrence order: each key is looked up
	// exactly once regardless of worker count, so FetchKeys/Fetched match
	// the sequential accounting and stay within the static access bound.
	dd := newArgDedup(in.Rows, f.xpos)
	items := make([]fetchItem, 0, len(in.Rows))
	for i, row := range in.Rows {
		if i%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if dd.seen(i) {
			continue
		}
		items = append(items, fetchItem{row: row, key: value.AppendKeyAt(nil, row, f.xpos)})
	}
	spans := splitSpans(len(items), opts.workersFor(len(items)))
	if len(spans) <= 1 {
		// Dedup collapsed the input below the parallel threshold. Each
		// emit fetches index buckets, so this loop observes ctx like the
		// sequential path does.
		for i, it := range items {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			f.emitBucket(it.row, f.fetch.FetchBytes(it.key), f.rowBuf, stats,
				func(r data.Tuple) bool { out.AddScratch(r); return true })
		}
		return out, nil
	}
	// Parallel path: contiguous key partitions, worker-local row buffers
	// and stats, then an ordered merge — the output row order and set
	// semantics are identical to the sequential path. Workers assemble
	// rows in worker-local scratch, copy kept rows, and precompute each
	// row's dedup hash so the merge only pays for map inserts; each
	// worker observes ctx and bails early on cancellation.
	partRows := make([][]hashedRow, len(spans))
	partStats := make([]ExecStats, len(spans))
	runSpans(spans, func(part int, s span) {
		scratch := make(data.Tuple, len(f.outCols))
		sink := func(r data.Tuple) bool {
			kept := append(data.Tuple(nil), r...)
			partRows[part] = append(partRows[part], hashedRow{row: kept, hash: hashRow(kept)})
			return true
		}
		for i, it := range items[s.Lo:s.Hi] {
			if i%cancelStride == 0 && ctx.Err() != nil {
				return
			}
			f.emitBucket(it.row, f.fetch.FetchBytes(it.key), scratch, &partStats[part], sink)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for part := range spans {
		stats.FetchKeys += partStats[part].FetchKeys
		stats.Fetched += partStats[part].Fetched
	}
	mergeHashedParts(out, partRows)
	return out, nil
}

// hashedRow pairs a row with its precomputed dedup hash, produced on
// worker goroutines and merged in order on the caller's goroutine.
type hashedRow struct {
	row  data.Tuple
	hash uint64
}

// mergeHashedParts merges worker-local rows into out in partition order,
// pre-sizing the table for the total row count. Because partitions are
// contiguous input ranges, this reproduces the sequential insert order.
//
//bevet:hotpath
func mergeHashedParts(out *Table, partRows [][]hashedRow) {
	total := 0
	for _, part := range partRows {
		total += len(part)
	}
	out.grow(total)
	for _, part := range partRows {
		for _, r := range part {
			out.addHashed(r.row, r.hash)
		}
	}
}

func execProject(o ProjectOp, in *Table) (*Table, error) {
	pos, err := in.ColIndexes(o.Cols)
	if err != nil {
		return nil, err
	}
	cols := o.Cols
	if o.As != nil {
		if len(o.As) != len(o.Cols) {
			return nil, fmt.Errorf("project rename arity mismatch")
		}
		cols = o.As
	}
	out := NewTable(cols...)
	buf := make(data.Tuple, 0, len(pos))
	for _, row := range in.Rows {
		buf = buf[:0]
		for _, p := range pos {
			buf = append(buf, row[p])
		}
		out.AddScratch(buf)
	}
	return out, nil
}

// cond is one compiled selection predicate; r == -1 means comparison with
// the constant c.
type cond struct {
	l, r int
	c    value.Value
}

func compileConds(o SelectOp, in *Table) ([]cond, error) {
	conds := make([]cond, len(o.Conds))
	for i, ec := range o.Conds {
		l := in.ColIndex(ec.L)
		if l < 0 {
			return nil, fmt.Errorf("select: no column %q", ec.L)
		}
		if ec.R != "" {
			r := in.ColIndex(ec.R)
			if r < 0 {
				return nil, fmt.Errorf("select: no column %q", ec.R)
			}
			conds[i] = cond{l: l, r: r}
		} else {
			conds[i] = cond{l: l, r: -1, c: ec.C}
		}
	}
	return conds, nil
}

// condsMatch runs once per fetched row; it must stay allocation-free.
//
//bevet:hotpath
func condsMatch(conds []cond, row data.Tuple) bool {
	for _, c := range conds {
		if c.r >= 0 {
			if row[c.l] != row[c.r] {
				return false
			}
		} else if row[c.l] != c.c {
			return false
		}
	}
	return true
}

func execSelect(o SelectOp, in *Table) (*Table, error) {
	conds, err := compileConds(o, in)
	if err != nil {
		return nil, err
	}
	out := NewTable(in.Cols...)
	for _, row := range in.Rows {
		if condsMatch(conds, row) {
			out.Add(row)
		}
	}
	return out, nil
}

func checkProductCols(l, r *Table) error {
	for _, c := range r.Cols {
		if l.ColIndex(c) >= 0 {
			return fmt.Errorf("product: duplicate column %q (rename first)", c)
		}
	}
	return nil
}

func execProduct(ctx context.Context, l, r *Table) (*Table, error) {
	if err := checkProductCols(l, r); err != nil {
		return nil, err
	}
	out := NewTable(append(append([]string(nil), l.Cols...), r.Cols...)...)
	buf := make(data.Tuple, 0, len(l.Cols)+len(r.Cols))
	n := 0
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			if n%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			n++
			buf = append(append(buf[:0], lr...), rr...)
			out.AddScratch(buf)
		}
	}
	return out, nil
}

// joinState is the column analysis and hash table of a natural join,
// shared by the materializing and streaming executors. The hash table
// groups right-row INDEXES by the 64-bit hash of their join columns;
// probes confirm the join element-wise, so hash collisions cost a
// compare, never a wrong row.
type joinState struct {
	r                *Table
	sharedL, sharedR []int
	extraR           []int
	extraCols        []string
	groups           map[uint64][]int32
}

func newJoinState(l, r *Table) *joinState {
	js := &joinState{r: r}
	// Shared columns become the hash key; right-only columns extend rows.
	for j, c := range r.Cols {
		if i := l.ColIndex(c); i >= 0 {
			js.sharedL = append(js.sharedL, i)
			js.sharedR = append(js.sharedR, j)
		} else {
			js.extraR = append(js.extraR, j)
			js.extraCols = append(js.extraCols, c)
		}
	}
	return js
}

// build fills the hash table from the right side. Row hashing (the
// expensive part) parallelizes over contiguous chunks; the map insertions
// stay sequential and ordered.
func (js *joinState) build(ctx context.Context, workers int) error {
	js.groups = make(map[uint64][]int32, js.r.Len())
	if workers <= 1 {
		for i, rr := range js.r.Rows {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			h := hashRowAt(rr, js.sharedR)
			js.groups[h] = append(js.groups[h], int32(i))
		}
		return nil
	}
	hashes := make([]uint64, js.r.Len())
	runSpans(splitSpans(js.r.Len(), workers), func(_ int, s span) {
		for i := s.Lo; i < s.Hi; i++ {
			if (i-s.Lo)%cancelStride == 0 && ctx.Err() != nil {
				return
			}
			hashes[i] = hashRowAt(js.r.Rows[i], js.sharedR)
		}
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	for i := range js.r.Rows {
		js.groups[hashes[i]] = append(js.groups[hashes[i]], int32(i))
	}
	return nil
}

// probe matches one left row against the hash table, assembling joined
// rows in the out scratch buffer and sending each to sink; it reports
// whether the consumer still wants more rows. It runs once per left row,
// so it must stay allocation-free — out is caller-owned with capacity for
// the full output width, and sinks copy a row iff they keep it.
//
//bevet:hotpath
func (js *joinState) probe(lr data.Tuple, out data.Tuple, sink func(data.Tuple) bool) bool {
	h := hashRowAt(lr, js.sharedL)
	for _, ri := range js.groups[h] {
		rr := js.r.Rows[ri]
		match := true
		for i, lc := range js.sharedL {
			if lr[lc] != rr[js.sharedR[i]] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		out = out[:0]
		out = append(out, lr...)
		for _, p := range js.extraR {
			out = append(out, rr[p])
		}
		if !sink(out) {
			return false
		}
	}
	return true
}

func execJoin(ctx context.Context, l, r *Table, opts ExecOptions) (*Table, error) {
	js := newJoinState(l, r)
	out := NewTable(append(append([]string(nil), l.Cols...), js.extraCols...)...)
	if err := js.build(ctx, opts.workersFor(r.Len())); err != nil {
		return nil, err
	}
	width := len(l.Cols) + len(js.extraR)

	// Probe phase: contiguous chunks of the left side probe the (now
	// read-only) hash table into worker-local buffers; the ordered merge
	// reproduces the sequential output order and set semantics.
	spans := splitSpans(l.Len(), opts.workersFor(l.Len()))
	if len(spans) <= 1 {
		buf := make(data.Tuple, 0, width)
		for i, lr := range l.Rows {
			if i%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			js.probe(lr, buf, func(row data.Tuple) bool { out.AddScratch(row); return true })
		}
		return out, nil
	}
	partRows := make([][]hashedRow, len(spans))
	runSpans(spans, func(part int, s span) {
		buf := make(data.Tuple, 0, width)
		sink := func(row data.Tuple) bool {
			kept := append(data.Tuple(nil), row...)
			partRows[part] = append(partRows[part], hashedRow{row: kept, hash: hashRow(kept)})
			return true
		}
		for i, lr := range l.Rows[s.Lo:s.Hi] {
			if i%cancelStride == 0 && ctx.Err() != nil {
				return
			}
			js.probe(lr, buf, sink)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mergeHashedParts(out, partRows)
	return out, nil
}

func execUnion(l, r *Table) (*Table, error) {
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("union: arity mismatch %d vs %d", len(l.Cols), len(r.Cols))
	}
	out := NewTable(l.Cols...)
	for _, row := range l.Rows {
		out.Add(row)
	}
	for _, row := range r.Rows {
		out.Add(row)
	}
	return out, nil
}

// dropSet is the right-side membership index of a set difference:
// hash-grouped row indexes confirmed element-wise.
type dropSet struct {
	rows   []data.Tuple
	groups map[uint64][]int32
}

func newDropSet(rows []data.Tuple) *dropSet {
	d := &dropSet{rows: rows, groups: make(map[uint64][]int32, len(rows))}
	for i, row := range rows {
		h := hashRow(row)
		d.groups[h] = append(d.groups[h], int32(i))
	}
	return d
}

// has reports whether an equal row is in the set; it runs once per
// left-side row and allocates nothing.
//
//bevet:hotpath
func (d *dropSet) has(row data.Tuple) bool {
	for _, i := range d.groups[hashRow(row)] {
		if rowsEqual(d.rows[i], row) {
			return true
		}
	}
	return false
}

func execDiff(l, r *Table) (*Table, error) {
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("difference: arity mismatch %d vs %d", len(l.Cols), len(r.Cols))
	}
	drop := newDropSet(r.Rows)
	out := NewTable(l.Cols...)
	for _, row := range l.Rows {
		if !drop.has(row) {
			out.Add(row)
		}
	}
	return out, nil
}

// renamedCols computes the output column list of a rename, validating that
// every source column exists.
func renamedCols(o RenameOp, in *Table) ([]string, error) {
	if len(o.From) != len(o.To) {
		return nil, fmt.Errorf("rename arity mismatch")
	}
	cols := append([]string(nil), in.Cols...)
	for i, f := range o.From {
		p := in.ColIndex(f)
		if p < 0 {
			return nil, fmt.Errorf("rename: no column %q", f)
		}
		cols[p] = o.To[i]
	}
	return cols, nil
}

func execRename(o RenameOp, in *Table) (*Table, error) {
	cols, err := renamedCols(o, in)
	if err != nil {
		return nil, err
	}
	out := NewTable(cols...)
	for _, row := range in.Rows {
		out.Add(row)
	}
	return out, nil
}
