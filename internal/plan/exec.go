package plan

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/value"
)

// ExecStats accounts for the data a plan execution touched. For a boundedly
// evaluable plan, Fetched is at most the plan's static AccessBound no
// matter how large the instance is — that is the paper's headline property.
type ExecStats struct {
	// Fetched counts tuples retrieved from D via indices (|D_Q|).
	Fetched int64
	// FetchKeys counts distinct index lookups performed.
	FetchKeys int64
	// OpsRun counts executed plan steps.
	OpsRun int
	// MaxIntermediate is the largest intermediate table size.
	MaxIntermediate int
}

// Execute runs the plan against an indexed instance, sequentially. Every
// FetchOp must be backed by a constraint present in ix.
func Execute(p *Plan, ix *access.Indexed) (*Table, *ExecStats, error) {
	return ExecuteOpts(p, ix, ExecOptions{})
}

// ExecuteOpts is Execute with tuning. With opts.Workers > 1, fetch steps
// partition their distinct input keys across a bounded worker pool and
// hash joins parallelize their build/probe phases; per-worker stats are
// merged, so Fetched and FetchKeys are identical to a sequential run (the
// static access bound is respected either way), and result rows come back
// in the same order with the same set semantics.
func ExecuteOpts(p *Plan, ix *access.Indexed, opts ExecOptions) (*Table, *ExecStats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	stats := &ExecStats{}
	results := make([]*Table, len(p.Steps))
	for i, op := range p.Steps {
		t, err := execOp(op, results, ix, stats, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("plan: step T%d (%s): %w", i, op, err)
		}
		results[i] = t
		stats.OpsRun++
		if t.Len() > stats.MaxIntermediate {
			stats.MaxIntermediate = t.Len()
		}
	}
	return results[len(results)-1], stats, nil
}

func execOp(op Op, results []*Table, ix *access.Indexed, stats *ExecStats, opts ExecOptions) (*Table, error) {
	switch o := op.(type) {
	case unitOp:
		return Unit(), nil
	case ConstOp:
		t := NewTable(o.Col)
		t.Add(data.Tuple{o.Val})
		return t, nil
	case EmptyOp:
		return NewTable(o.Cols...), nil
	case FetchOp:
		return execFetch(o, results[o.Input], ix, stats, opts)
	case ProjectOp:
		return execProject(o, results[o.Input])
	case SelectOp:
		return execSelect(o, results[o.Input])
	case ProductOp:
		return execProduct(results[o.L], results[o.R])
	case JoinOp:
		return execJoin(results[o.L], results[o.R], opts)
	case UnionOp:
		return execUnion(results[o.L], results[o.R])
	case DiffOp:
		return execDiff(results[o.L], results[o.R])
	case RenameOp:
		return execRename(o, results[o.Input])
	default:
		return nil, fmt.Errorf("unknown operation %T", op)
	}
}

func execFetch(o FetchOp, in *Table, ix *access.Indexed, stats *ExecStats, opts ExecOptions) (*Table, error) {
	idx := ix.IndexFor(o.Constraint)
	if idx == nil {
		return nil, fmt.Errorf("no index for constraint %s", o.Constraint)
	}
	if len(o.XCols) != len(o.Constraint.X) {
		return nil, fmt.Errorf("fetch has %d X columns for %d X attributes", len(o.XCols), len(o.Constraint.X))
	}
	if len(o.YOut) != len(o.Constraint.Y) {
		return nil, fmt.Errorf("fetch has %d Y names for %d Y attributes", len(o.YOut), len(o.Constraint.Y))
	}
	xpos, err := in.ColIndexes(o.XCols)
	if err != nil {
		return nil, err
	}
	outCols := o.outCols()
	out := NewTable(outCols...)

	// Plan Y emission: for each Y attribute, either a check against an
	// existing column (equated) or a fresh output position.
	type yAction struct {
		skip     bool
		checkPos int // >= 0: must equal this output position
	}
	actions := make([]yAction, len(o.YOut))
	posOf := make(map[string]int, len(outCols))
	for i, c := range outCols {
		posOf[c] = i
	}
	nextPos := len(o.XCols)
	for i, name := range o.YOut {
		if name == "" {
			actions[i] = yAction{skip: true, checkPos: -1}
			continue
		}
		if p, seen := posOf[name]; seen {
			// Equated with an X column or an earlier Y attribute: check.
			actions[i] = yAction{checkPos: p}
		} else {
			actions[i] = yAction{checkPos: -1}
			posOf[name] = nextPos
			nextPos++
		}
	}

	// Distinct input keys in first-occurrence order: each key is looked up
	// exactly once regardless of worker count, so FetchKeys/Fetched match
	// the sequential accounting and stay within the static access bound.
	type fetchItem struct {
		row data.Tuple
		key value.Key
	}

	emit := func(it fetchItem, st *ExecStats, sink func(data.Tuple)) {
		bucket := idx.FetchKey(it.key)
		st.FetchKeys++
		st.Fetched += int64(len(bucket))
		for _, proj := range bucket {
			outRow := make(data.Tuple, len(outCols))
			for i, p := range xpos {
				outRow[i] = it.row[p]
			}
			ok := true
			cursor := len(o.XCols)
			for i, act := range actions {
				v := proj[i]
				switch {
				case act.skip:
				case act.checkPos >= 0:
					if outRow[act.checkPos].IsNull() {
						outRow[act.checkPos] = v
					} else if outRow[act.checkPos] != v {
						ok = false
					}
				default:
					outRow[cursor] = v
					cursor++
				}
				if !ok {
					break
				}
			}
			if ok {
				sink(outRow)
			}
		}
	}

	// Sequential path (the default): the original streaming loop, deduping
	// keys inline with no item buffer. len(in.Rows) bounds the distinct key
	// count, so workersFor(len(in.Rows)) == 1 implies parallelism would
	// never trigger.
	if opts.workersFor(len(in.Rows)) <= 1 {
		seenKeys := make(map[value.Key]bool)
		sink := func(r data.Tuple) { out.Add(r) }
		for _, row := range in.Rows {
			key := value.KeyOfAt(row, xpos)
			if seenKeys[key] {
				continue
			}
			seenKeys[key] = true
			emit(fetchItem{row: row, key: key}, stats, sink)
		}
		return out, nil
	}

	seenKeys := make(map[value.Key]bool, len(in.Rows))
	items := make([]fetchItem, 0, len(in.Rows))
	for _, row := range in.Rows {
		key := value.KeyOfAt(row, xpos)
		if seenKeys[key] {
			continue
		}
		seenKeys[key] = true
		items = append(items, fetchItem{row: row, key: key})
	}
	spans := splitSpans(len(items), opts.workersFor(len(items)))
	if len(spans) <= 1 {
		// Dedup collapsed the input below the parallel threshold.
		for _, it := range items {
			emit(it, stats, func(r data.Tuple) { out.Add(r) })
		}
		return out, nil
	}
	// Parallel path: contiguous key partitions, worker-local row buffers
	// and stats, then an ordered merge — the output row order and set
	// semantics are identical to the sequential path. Workers precompute
	// each row's dedup key so the merge only pays for map inserts.
	partRows := make([][]keyedRow, len(spans))
	partStats := make([]ExecStats, len(spans))
	runSpans(spans, func(part int, s span) {
		sink := func(r data.Tuple) {
			partRows[part] = append(partRows[part], keyedRow{row: r, key: r.Key()})
		}
		for _, it := range items[s.Lo:s.Hi] {
			emit(it, &partStats[part], sink)
		}
	})
	for part := range spans {
		stats.FetchKeys += partStats[part].FetchKeys
		stats.Fetched += partStats[part].Fetched
	}
	mergeKeyedParts(out, partRows)
	return out, nil
}

// keyedRow pairs a row with its precomputed dedup key, produced on worker
// goroutines and merged in order on the caller's goroutine.
type keyedRow struct {
	row data.Tuple
	key value.Key
}

// mergeKeyedParts merges worker-local keyed rows into out in partition
// order, pre-sizing the table for the total row count. Because partitions
// are contiguous input ranges, this reproduces the sequential insert order.
func mergeKeyedParts(out *Table, partRows [][]keyedRow) {
	total := 0
	for _, part := range partRows {
		total += len(part)
	}
	out.grow(total)
	for _, part := range partRows {
		for _, r := range part {
			out.addKeyed(r.row, r.key)
		}
	}
}

func execProject(o ProjectOp, in *Table) (*Table, error) {
	pos, err := in.ColIndexes(o.Cols)
	if err != nil {
		return nil, err
	}
	cols := o.Cols
	if o.As != nil {
		if len(o.As) != len(o.Cols) {
			return nil, fmt.Errorf("project rename arity mismatch")
		}
		cols = o.As
	}
	out := NewTable(cols...)
	for _, row := range in.Rows {
		out.Add(row.Project(pos))
	}
	return out, nil
}

func execSelect(o SelectOp, in *Table) (*Table, error) {
	type cond struct {
		l, r int // r == -1 means constant comparison
		c    value.Value
	}
	conds := make([]cond, len(o.Conds))
	for i, ec := range o.Conds {
		l := in.ColIndex(ec.L)
		if l < 0 {
			return nil, fmt.Errorf("select: no column %q", ec.L)
		}
		if ec.R != "" {
			r := in.ColIndex(ec.R)
			if r < 0 {
				return nil, fmt.Errorf("select: no column %q", ec.R)
			}
			conds[i] = cond{l: l, r: r}
		} else {
			conds[i] = cond{l: l, r: -1, c: ec.C}
		}
	}
	out := NewTable(in.Cols...)
	for _, row := range in.Rows {
		ok := true
		for _, c := range conds {
			if c.r >= 0 {
				if row[c.l] != row[c.r] {
					ok = false
					break
				}
			} else if row[c.l] != c.c {
				ok = false
				break
			}
		}
		if ok {
			out.Add(row)
		}
	}
	return out, nil
}

func execProduct(l, r *Table) (*Table, error) {
	for _, c := range r.Cols {
		if l.ColIndex(c) >= 0 {
			return nil, fmt.Errorf("product: duplicate column %q (rename first)", c)
		}
	}
	out := NewTable(append(append([]string(nil), l.Cols...), r.Cols...)...)
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			out.Add(append(append(data.Tuple{}, lr...), rr...))
		}
	}
	return out, nil
}

func execJoin(l, r *Table, opts ExecOptions) (*Table, error) {
	// Shared columns become the hash key; right-only columns extend rows.
	var sharedL, sharedR, extraR []int
	var extraCols []string
	for j, c := range r.Cols {
		if i := l.ColIndex(c); i >= 0 {
			sharedL = append(sharedL, i)
			sharedR = append(sharedR, j)
		} else {
			extraR = append(extraR, j)
			extraCols = append(extraCols, c)
		}
	}
	out := NewTable(append(append([]string(nil), l.Cols...), extraCols...)...)

	// Build phase: key encoding (the expensive part) parallelizes over
	// contiguous chunks; the map insertions stay sequential and ordered.
	// The sequential path keeps the original fused loop — no key buffer.
	table := make(map[value.Key][]data.Tuple, r.Len())
	if w := opts.workersFor(r.Len()); w <= 1 {
		for _, rr := range r.Rows {
			k := value.KeyOfAt(rr, sharedR)
			table[k] = append(table[k], rr)
		}
	} else {
		buildKeys := make([]value.Key, r.Len())
		runSpans(splitSpans(r.Len(), w), func(_ int, s span) {
			for i := s.Lo; i < s.Hi; i++ {
				buildKeys[i] = value.KeyOfAt(r.Rows[i], sharedR)
			}
		})
		for i, rr := range r.Rows {
			table[buildKeys[i]] = append(table[buildKeys[i]], rr)
		}
	}

	// Probe phase: contiguous chunks of the left side probe the (now
	// read-only) hash table into worker-local buffers; the ordered merge
	// reproduces the sequential output order and set semantics.
	probe := func(lr data.Tuple, sink func(data.Tuple)) {
		k := value.KeyOfAt(lr, sharedL)
		for _, rr := range table[k] {
			sink(append(append(data.Tuple{}, lr...), rr.Project(extraR)...))
		}
	}
	spans := splitSpans(l.Len(), opts.workersFor(l.Len()))
	if len(spans) <= 1 {
		for _, lr := range l.Rows {
			probe(lr, func(row data.Tuple) { out.Add(row) })
		}
		return out, nil
	}
	partRows := make([][]keyedRow, len(spans))
	runSpans(spans, func(part int, s span) {
		sink := func(row data.Tuple) {
			partRows[part] = append(partRows[part], keyedRow{row: row, key: row.Key()})
		}
		for _, lr := range l.Rows[s.Lo:s.Hi] {
			probe(lr, sink)
		}
	})
	mergeKeyedParts(out, partRows)
	return out, nil
}

func execUnion(l, r *Table) (*Table, error) {
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("union: arity mismatch %d vs %d", len(l.Cols), len(r.Cols))
	}
	out := NewTable(l.Cols...)
	for _, row := range l.Rows {
		out.Add(row)
	}
	for _, row := range r.Rows {
		out.Add(row)
	}
	return out, nil
}

func execDiff(l, r *Table) (*Table, error) {
	if len(l.Cols) != len(r.Cols) {
		return nil, fmt.Errorf("difference: arity mismatch %d vs %d", len(l.Cols), len(r.Cols))
	}
	drop := make(map[value.Key]bool, r.Len())
	for _, row := range r.Rows {
		drop[row.Key()] = true
	}
	out := NewTable(l.Cols...)
	for _, row := range l.Rows {
		if !drop[row.Key()] {
			out.Add(row)
		}
	}
	return out, nil
}

func execRename(o RenameOp, in *Table) (*Table, error) {
	if len(o.From) != len(o.To) {
		return nil, fmt.Errorf("rename arity mismatch")
	}
	cols := append([]string(nil), in.Cols...)
	for i, f := range o.From {
		p := in.ColIndex(f)
		if p < 0 {
			return nil, fmt.Errorf("rename: no column %q", f)
		}
		cols[p] = o.To[i]
	}
	out := NewTable(cols...)
	for _, row := range in.Rows {
		out.Add(row)
	}
	return out, nil
}
