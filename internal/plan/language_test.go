package plan

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/value"
)

func TestBuiltCQPlanConformsToCQ(t *testing.T) {
	res, err := cover.Check(q0(), psi(), accidentSchema(), cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(res, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ConformsTo(LangCQ); err != nil {
		t.Errorf("CQ plan must conform to the CQ grammar: %v", err)
	}
	if err := p.ConformsTo(LangFO); err != nil {
		t.Errorf("CQ plan conforms to every superset grammar: %v", err)
	}
	// Lowered plans conform too (ρ/×/σ/π are all CQ operations).
	lp, err := Build(res, BuildOptions{LowerJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := lp.ConformsTo(LangCQ); err != nil {
		t.Errorf("lowered plan must conform: %v", err)
	}
}

func TestUnionPlacementRules(t *testing.T) {
	c := func(col string) Op { return ConstOp{Col: col, Val: value.NewInt(1)} }
	trailing := &Plan{Steps: []Op{c("a"), c("a"), UnionOp{L: 0, R: 1}}, OutCols: []string{"a"}}
	if err := trailing.ConformsTo(LangUCQ); err != nil {
		t.Errorf("trailing union is legal UCQ: %v", err)
	}
	if err := trailing.ConformsTo(LangCQ); err == nil {
		t.Error("union is illegal in CQ plans")
	}
	if err := trailing.ConformsTo(LangPosFO); err != nil {
		t.Errorf("∃FO⁺ allows unions anywhere: %v", err)
	}
	// A union feeding a later projection violates the UCQ grammar.
	interior := &Plan{Steps: []Op{
		c("a"), c("a"), UnionOp{L: 0, R: 1}, ProjectOp{Input: 2, Cols: []string{"a"}},
	}, OutCols: []string{"a"}}
	if err := interior.ConformsTo(LangUCQ); err == nil {
		t.Error("interior union violates the UCQ grammar")
	}
	if err := interior.ConformsTo(LangPosFO); err != nil {
		t.Errorf("interior union is fine in ∃FO⁺: %v", err)
	}
}

func TestDiffOnlyInFO(t *testing.T) {
	c := func(col string) Op { return ConstOp{Col: col, Val: value.NewInt(1)} }
	p := &Plan{Steps: []Op{c("a"), c("a"), DiffOp{L: 0, R: 1}}, OutCols: []string{"a"}}
	if err := p.ConformsTo(LangFO); err != nil {
		t.Errorf("difference is legal FO: %v", err)
	}
	for _, l := range []Language{LangCQ, LangUCQ, LangPosFO} {
		if err := p.ConformsTo(l); err == nil {
			t.Errorf("difference must be rejected in %s plans", l)
		}
	}
}

func TestBuiltUCQPlanConformsToUCQ(t *testing.T) {
	// Reuse the Example 3.5 UCQ from plan_test.go's TestUCQPlan shape.
	res, err := cover.Check(q0(), psi(), accidentSchema(), cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ures := &cover.UCQResult{
		Covered:    true,
		Subs:       []cover.SubStatus{cover.SubCovered, cover.SubCovered},
		SubResults: []*cover.Result{res, res},
	}
	p, err := BuildUCQ(ures, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ConformsTo(LangUCQ); err != nil {
		t.Errorf("BuildUCQ output must conform to the UCQ grammar: %v", err)
	}
	if err := p.ConformsTo(LangCQ); err == nil {
		t.Error("a two-branch union is not a CQ plan")
	}
}

func TestLanguageStrings(t *testing.T) {
	for _, l := range []Language{LangCQ, LangUCQ, LangPosFO, LangFO} {
		if l.String() == "" {
			t.Errorf("language %d has empty rendering", int(l))
		}
	}
}
