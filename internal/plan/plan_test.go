package plan

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value                          { return value.NewInt(i) }
func sv(s string) value.Value                         { return value.NewString(s) }
func attrs(as ...schema.Attribute) []schema.Attribute { return as }

func accidentSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("Accident", "aid", "district", "date"),
		schema.MustRelation("Casualty", "cid", "aid", "class", "vid"),
		schema.MustRelation("Vehicle", "vid", "driver", "age"),
	)
}

func psi() *access.Schema {
	return access.NewSchema(
		access.NewConstraint("Accident", attrs("date"), attrs("aid"), 610),
		access.NewConstraint("Casualty", attrs("aid"), attrs("vid"), 192),
		access.NewConstraint("Accident", attrs("aid"), attrs("district", "date"), 1),
		access.NewConstraint("Vehicle", attrs("vid"), attrs("driver", "age"), 1),
	)
}

func q0() *cq.CQ {
	return &cq.CQ{
		Label: "Q0",
		Free:  []string{"xa"},
		Atoms: []cq.Atom{
			cq.NewAtom("Accident", cq.Var("aid"), cq.Const(sv("Queen's Park")), cq.Const(sv("1/5/2005"))),
			cq.NewAtom("Casualty", cq.Var("cid"), cq.Var("aid"), cq.Var("class"), cq.Var("vid")),
			cq.NewAtom("Vehicle", cq.Var("vid"), cq.Var("dri"), cq.Var("xa")),
		},
	}
}

// accidentInstance builds a deterministic instance satisfying psi1-psi4.
func accidentInstance(t *testing.T, nDates, perDate, perAccident int) *data.Instance {
	t.Helper()
	d := data.NewInstance(accidentSchema())
	rng := rand.New(rand.NewSource(7))
	districts := []string{"Queen's Park", "Soho", "Camden", "Leith"}
	aid, cid, vid := int64(0), int64(0), int64(0)
	for dt := 0; dt < nDates; dt++ {
		date := sv(dateName(dt))
		for a := 0; a < perDate; a++ {
			aid++
			district := sv(districts[rng.Intn(len(districts))])
			d.MustInsert("Accident", iv(aid), district, date)
			for c := 0; c < perAccident; c++ {
				cid++
				vid++
				d.MustInsert("Casualty", iv(cid), iv(aid), iv(int64(c%3)), iv(vid))
				d.MustInsert("Vehicle", iv(vid), sv("driver"), iv(int64(17+rng.Intn(70))))
			}
		}
	}
	return d
}

func dateName(i int) string {
	if i == 0 {
		return "1/5/2005"
	}
	return "day-" + string(rune('A'+i))
}

func buildQ0Plan(t *testing.T, opt BuildOptions) *Plan {
	t.Helper()
	res, err := cover.Check(q0(), psi(), accidentSchema(), cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("Q0 must be covered:\n%s", res.Explain())
	}
	p, err := Build(res, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestQ0PlanMatchesNaiveEvaluation(t *testing.T) {
	d := accidentInstance(t, 3, 5, 2)
	ix, viols, err := access.BuildIndexed(psi(), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Fatalf("instance must satisfy psi: %v", viols)
	}
	p := buildQ0Plan(t, BuildOptions{})
	got, stats, err := Execute(p, ix)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.CQ(q0(), d, eval.HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, got, want.Rows)
	if stats.Fetched == 0 {
		t.Error("plan should have fetched something")
	}
	// Bounded evaluation touches far less data than full scans.
	if stats.Fetched >= want.Scanned {
		t.Errorf("bounded plan fetched %d ≥ baseline scanned %d", stats.Fetched, want.Scanned)
	}
}

func TestQ0PlanLoweredJoinsAgree(t *testing.T) {
	d := accidentInstance(t, 2, 4, 2)
	ix, _, err := access.BuildIndexed(psi(), d)
	if err != nil {
		t.Fatal(err)
	}
	natural := buildQ0Plan(t, BuildOptions{})
	lowered := buildQ0Plan(t, BuildOptions{LowerJoins: true})
	// The lowered plan must use only paper-primitive operations.
	for _, op := range lowered.Steps {
		if _, isJoin := op.(JoinOp); isJoin {
			t.Fatal("lowered plan must not contain JoinOp")
		}
	}
	gn, _, err := Execute(natural, ix)
	if err != nil {
		t.Fatal(err)
	}
	gl, _, err := Execute(lowered, ix)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, gn, gl.Rows)
}

func TestQ0AccessBoundMatchesPaperArithmetic(t *testing.T) {
	p := buildQ0Plan(t, BuildOptions{})
	b, err := AccessBound(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper derives 610 + 610·192·2 = 234850 for its hand plan; ours
	// re-fetches the Accident tuple per aid (one extra 610·1 term) and
	// verifies atoms independently, so allow the same order of magnitude:
	// strictly positive, independent of |D|, below 1e6.
	if b.Fetched <= 0 || b.Fetched > 1_000_000 {
		t.Errorf("Q0 static fetch bound = %d, want within (0, 1e6]", b.Fetched)
	}
	// The headline property: the bound must not change with |D|
	// (all psi constraints are constant-form).
	b2, err := AccessBound(p, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Fetched != b.Fetched {
		t.Errorf("bound must be independent of |D|: %d vs %d", b.Fetched, b2.Fetched)
	}
}

func TestBoundedAccessFlatAsDataGrows(t *testing.T) {
	p := buildQ0Plan(t, BuildOptions{})
	var prev int64 = -1
	for _, scale := range []int{2, 8, 24} {
		d := accidentInstance(t, scale, 4, 2)
		ix, _, err := access.BuildIndexed(psi(), d)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := Execute(p, ix)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && stats.Fetched != prev {
			t.Errorf("fetched tuples changed with |D|: %d vs %d (only day 1/5/2005 is queried)",
				stats.Fetched, prev)
		}
		prev = stats.Fetched
	}
}

// Example 3.1(3): the covered Q3 plan agrees with naive evaluation on
// instances satisfying A3.
func TestQ3PlanAgainstNaive(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R3", "A", "B", "C"))
	a3 := access.NewSchema(
		access.NewConstraint("R3", nil, attrs("C"), 1),
		access.NewConstraint("R3", attrs("A", "B"), attrs("C"), 5),
	)
	q3 := &cq.CQ{
		Label: "Q3",
		Free:  []string{"x", "y"},
		Atoms: []cq.Atom{
			cq.NewAtom("R3", cq.Var("x1"), cq.Var("x2"), cq.Var("x")),
			cq.NewAtom("R3", cq.Var("z1"), cq.Var("z2"), cq.Var("y")),
			cq.NewAtom("R3", cq.Var("x"), cq.Var("y"), cq.Var("z3")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(iv(1))},
			{L: cq.Var("x2"), R: cq.Const(iv(1))},
		},
	}
	res, err := cover.Check(q3, a3, s, cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(res, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// All C-values must be the single constant 5 (R3(∅ -> C, 1)).
	for _, rows := range [][][3]int64{
		{{1, 1, 5}, {5, 5, 5}, {2, 3, 5}}, // answer (5,5) present
		{{1, 1, 5}, {2, 3, 5}},            // no (x,x,x) tuple: empty
		{{7, 7, 5}},                       // no (1,1,_) tuple: empty
	} {
		d := data.NewInstance(s)
		for _, r := range rows {
			d.MustInsert("R3", iv(r[0]), iv(r[1]), iv(r[2]))
		}
		ix, viols, err := access.BuildIndexed(a3, d)
		if err != nil {
			t.Fatal(err)
		}
		if len(viols) != 0 {
			t.Fatalf("fixture violates A3: %v", viols)
		}
		got, _, err := Execute(p, ix)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eval.CQ(q3, d, eval.ScanJoin)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSet(t, got, want.Rows)
	}
}

func TestUnsatisfiableQueryGetsEmptyPlan(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R2", "A", "B"))
	a2 := access.NewSchema(access.NewConstraint("R2", attrs("A"), attrs("B"), 1))
	// Q2'(x) = (x=1 ∧ x=2): covered and unsatisfiable (Example 3.12).
	q := &cq.CQ{
		Label: "Q2p",
		Free:  []string{"x"},
		Eqs: []cq.Eq{
			{L: cq.Var("x"), R: cq.Const(iv(1))},
			{L: cq.Var("x"), R: cq.Const(iv(2))},
		},
	}
	res, err := cover.Check(q, a2, s, cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(res, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := data.NewInstance(s)
	d.MustInsert("R2", iv(1), iv(2))
	ix, _, err := access.BuildIndexed(a2, d)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Execute(p, ix)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("empty plan must return no rows: %v", got.Rows)
	}
	if stats.Fetched != 0 {
		t.Errorf("empty plan must fetch nothing: %d", stats.Fetched)
	}
}

func TestDataIndependentQueryPlan(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("A"), 1))
	// Q(x) :- x = 7: pure data-independent query.
	q := &cq.CQ{Label: "QDI", Free: []string{"x"},
		Eqs: []cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(7))}}}
	res, err := cover.Check(q, a, s, cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("data-independent query must be covered:\n%s", res.Explain())
	}
	p, err := Build(res, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := data.NewInstance(s)
	ix, _, err := access.BuildIndexed(a, d)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Execute(p, ix)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Rows[0][0] != iv(7) {
		t.Errorf("Q(x):-x=7 should answer {7}: %v", got.Rows)
	}
}

func TestNotCoveredQueryRejected(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema() // nothing covered
	q := &cq.CQ{Free: []string{"x"}, Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}}
	res, err := cover.Check(q, a, s, cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(res, BuildOptions{})
	if err == nil {
		t.Fatal("non-covered query must be rejected")
	}
	var nc *NotCoveredError
	if !strings.Contains(err.Error(), "not covered") {
		t.Errorf("error should explain non-coverage: %v", err)
	}
	_ = nc
}

func TestRepeatedHeadVariable(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 3))
	// Q(x, x) :- R(c, x), c = 1.
	q := &cq.CQ{Label: "QXX", Free: []string{"x", "x"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("c"), cq.Var("x"))},
		Eqs:   []cq.Eq{{L: cq.Var("c"), R: cq.Const(iv(1))}}}
	res, err := cover.Check(q, a, s, cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("QXX must be covered:\n%s", res.Explain())
	}
	p, err := Build(res, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := data.NewInstance(s)
	d.MustInsert("R", iv(1), iv(10))
	d.MustInsert("R", iv(1), iv(20))
	d.MustInsert("R", iv(2), iv(30))
	ix, _, err := access.BuildIndexed(a, d)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Execute(p, ix)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.CQ(q, d, eval.ScanJoin)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, got, want.Rows)
	if got.Len() != 2 || len(got.Rows[0]) != 2 {
		t.Errorf("Q(x,x) rows = %v", got.Rows)
	}
}

func TestPlanStringRendersXiList(t *testing.T) {
	p := buildQ0Plan(t, BuildOptions{})
	out := p.String()
	for _, want := range []string{"plan Q0", "T0 =", "fetch(", "answer:"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, out)
		}
	}
	if p.FetchCount() == 0 {
		t.Error("Q0 plan must contain fetches")
	}
	if !p.BoundedlyEvaluable(1000) {
		t.Error("Q0 plan should be boundedly evaluable within 1000 steps")
	}
}

// Randomized agreement: random instances satisfying psi, plan result equals
// naive evaluation. This is the core soundness property of Theorem 3.11(2).
func TestPlanAgreesWithNaiveRandomized(t *testing.T) {
	p := buildQ0Plan(t, BuildOptions{})
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		d := data.NewInstance(accidentSchema())
		nAcc := 1 + rng.Intn(8)
		for a := 0; a < nAcc; a++ {
			aid := int64(a + 1)
			dist := []string{"Queen's Park", "Soho"}[rng.Intn(2)]
			date := []string{"1/5/2005", "2/5/2005"}[rng.Intn(2)]
			d.MustInsert("Accident", iv(aid), sv(dist), sv(date))
			for c := 0; c < rng.Intn(3); c++ {
				cid := int64(100*a + c)
				vid := int64(1000*a + c)
				d.MustInsert("Casualty", iv(cid), iv(aid), iv(0), iv(vid))
				d.MustInsert("Vehicle", iv(vid), sv("drv"), iv(int64(20+rng.Intn(5))))
			}
		}
		ix, viols, err := access.BuildIndexed(psi(), d)
		if err != nil {
			t.Fatal(err)
		}
		if len(viols) != 0 {
			t.Fatalf("random instance violated psi: %v", viols)
		}
		got, _, err := Execute(p, ix)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eval.CQ(q0(), d, eval.ScanJoin)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSet(t, got, want.Rows)
	}
}

func TestUCQPlan(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("Rp", "A", "B", "C"))
	ap := access.NewSchema(access.NewConstraint("Rp", attrs("A"), attrs("B"), 4))
	q1 := &cq.CQ{Label: "Q1", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(1))}}}
	q2 := &cq.CQ{Label: "Q2", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
		Eqs: []cq.Eq{
			{L: cq.Var("x"), R: cq.Const(iv(1))},
			{L: cq.Var("z"), R: cq.Var("y")},
		}}
	ures, err := cover.CheckUCQ([]*cq.CQ{q1, q2}, ap, s, cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ures.Covered {
		t.Fatal("Q1 ∪ Q2 must be covered (Example 3.5)")
	}
	p, err := BuildUCQ(ures, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d := data.NewInstance(s)
	d.MustInsert("Rp", iv(1), iv(10), iv(10))
	d.MustInsert("Rp", iv(1), iv(20), iv(99))
	d.MustInsert("Rp", iv(2), iv(30), iv(30))
	ix, viols, err := access.BuildIndexed(ap, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 0 {
		t.Fatalf("violations: %v", viols)
	}
	got, _, err := Execute(p, ix)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eval.UCQ([]*cq.CQ{q1, q2}, d, eval.ScanJoin)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, got, want.Rows)
}

func TestAccessBoundSaturates(t *testing.T) {
	// A chain of fetches with huge bounds must saturate, not overflow.
	c := access.NewConstraint("R", attrs("A"), attrs("B"), 1<<40)
	p := &Plan{Label: "big", Steps: []Op{unitOp{}}}
	for i := 0; i < 4; i++ {
		p.Steps = append(p.Steps, FetchOp{Input: i, Constraint: c, XCols: nil, YOut: []string{"y"}})
	}
	// FetchOp with empty XCols fetches the single empty-key bucket.
	b, err := AccessBound(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Fetched <= 0 {
		t.Errorf("saturating bound must stay positive: %d", b.Fetched)
	}
}

func TestValidateRejectsForwardReference(t *testing.T) {
	p := &Plan{Steps: []Op{ProjectOp{Input: 1, Cols: nil}, unitOp{}}}
	if err := p.Validate(); err == nil {
		t.Error("forward reference must be rejected")
	}
	empty := &Plan{}
	if err := empty.Validate(); err == nil {
		t.Error("empty plan must be rejected")
	}
}

func assertSameSet(t *testing.T, got *Table, want []data.Tuple) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("row count mismatch: plan=%d naive=%d\nplan rows: %v\nnaive rows: %v",
			got.Len(), len(want), got.Rows, want)
	}
	wantKeys := make(map[value.Key]bool, len(want))
	for _, w := range want {
		wantKeys[w.Key()] = true
	}
	for _, g := range got.Rows {
		if !wantKeys[g.Key()] {
			t.Fatalf("plan produced unexpected row %v", g)
		}
	}
}
