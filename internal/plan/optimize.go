package plan

// Optimize returns an equivalent plan with dead steps removed: any step
// whose result is never consumed by a later step and is not the final
// answer is dropped, and step indices are compacted. The builder can
// leave such steps behind (e.g. projections prepared for an application
// that turned out to add no new column), and UCQ splicing concatenates
// whole sub-plans whose tails become intermediate.
//
// Optimization never changes the answer: only unreferenced steps go, and
// every surviving operation keeps its operands (renumbered).
func Optimize(p *Plan) *Plan {
	n := len(p.Steps)
	if n == 0 {
		return p
	}
	live := make([]bool, n)
	live[n-1] = true
	for i := n - 1; i >= 0; i-- {
		if !live[i] {
			continue
		}
		for _, j := range p.Steps[i].inputs() {
			live[j] = true
		}
	}
	remap := make([]int, n)
	out := &Plan{Label: p.Label, OutCols: append([]string(nil), p.OutCols...)}
	for i := 0; i < n; i++ {
		if !live[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(out.Steps)
		out.Steps = append(out.Steps, renumberOp(p.Steps[i], remap))
	}
	return out
}

// renumberOp rewrites an op's input references through remap. All inputs
// of a live op are live, so remap is always valid here.
func renumberOp(op Op, remap []int) Op {
	switch o := op.(type) {
	case FetchOp:
		o.Input = remap[o.Input]
		return o
	case ProjectOp:
		o.Input = remap[o.Input]
		return o
	case SelectOp:
		o.Input = remap[o.Input]
		return o
	case ProductOp:
		o.L, o.R = remap[o.L], remap[o.R]
		return o
	case JoinOp:
		o.L, o.R = remap[o.L], remap[o.R]
		return o
	case UnionOp:
		o.L, o.R = remap[o.L], remap[o.R]
		return o
	case DiffOp:
		o.L, o.R = remap[o.L], remap[o.R]
		return o
	case RenameOp:
		o.Input = remap[o.Input]
		return o
	default:
		return op
	}
}
