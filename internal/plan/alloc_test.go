package plan

import (
	"context"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

// Allocation-regression tests for the execution hot path: the per-row
// work of fetch (key encode → index probe → row assembly), join probe
// and dedup must allocate nothing. Each test pins one primitive with
// testing.AllocsPerRun at exactly 0 allocations per row, so any future
// boxing, map-key copy or buffer regrowth sneaking back in fails loudly
// rather than showing up as a benchmark drift.

// allocFixture builds a small indexed instance: R(A -> B,C) with
// STRING B values (strings are the easy way to re-introduce per-row
// allocations) and an input table of rows keying into it.
func allocFixture(t testing.TB) (*access.Indexed, *Table, FetchOp) {
	t.Helper()
	sc := schema.MustNew(schema.MustRelation("R", "A", "B", "C"))
	c := access.NewConstraint("R", attrs("A"), attrs("B", "C"), 8)
	a := access.NewSchema(c)
	d := data.NewInstance(sc)
	r := d.Relation("R")
	names := []string{"ada", "grace", "edsger", "barbara"}
	for i := int64(0); i < 64; i++ {
		r.MustInsert(value.NewInt(i%16), value.NewString(names[i%4]), value.NewInt(i))
	}
	ix, viols, err := access.BuildIndexed(a, d)
	if err != nil || len(viols) > 0 {
		t.Fatalf("BuildIndexed: %v %v", viols, err)
	}
	in := NewTable("x")
	for i := int64(0); i < 16; i++ {
		in.Add(data.Tuple{value.NewInt(i)})
	}
	return ix, in, FetchOp{Constraint: c, Input: 0, XCols: []string{"x"}, YOut: []string{"b", "c"}}
}

// TestFetchRowPathAllocs drives the full sequential fetch inner loop —
// argDedup, key encoding into scratch, FetchBytes probe, emitBucket row
// assembly — with a drop sink, and demands zero allocations per input
// row once the fetchEval scratch is warm.
func TestFetchRowPathAllocs(t *testing.T) {
	ix, in, op := allocFixture(t)
	f, err := newFetchEval(op, in, NewSource(ix))
	if err != nil {
		t.Fatal(err)
	}
	stats := &ExecStats{}
	sink := func(data.Tuple) bool { return true }
	ctx := context.Background()
	// Warm the key scratch once.
	if err := f.runSequential(ctx, stats, sink); err != nil {
		t.Fatal(err)
	}
	// argDedup's map is per-run state, so measure the per-row remainder:
	// each run re-walks all 16 input rows and every bucket row.
	avg := testing.AllocsPerRun(100, func() {
		dd := fetchAllocProbe{f: f, stats: stats}
		dd.run(t)
	})
	// One argDedup per run is setup, not per-row work: its struct, map
	// header and presized bucket array cost a constant <= 4 allocations
	// regardless of row count. Everything per-row must be zero.
	if avg > 4 {
		t.Fatalf("fetch inner loop allocates %.1f/run (want setup-only <= 4)", avg)
	}
}

// fetchAllocProbe re-runs the sequential fetch loop body outside
// runSequential's error plumbing so AllocsPerRun sees only the row work.
type fetchAllocProbe struct {
	f     *fetchEval
	stats *ExecStats
}

func (p *fetchAllocProbe) run(t testing.TB) {
	f := p.f
	dd := newArgDedup(f.in.Rows, f.xpos)
	for i, row := range f.in.Rows {
		if dd.seen(i) {
			continue
		}
		f.keyBuf = value.AppendKeyAt(f.keyBuf[:0], row, f.xpos)
		if !f.emitBucket(row, f.fetch.FetchBytes(f.keyBuf), f.rowBuf, p.stats, func(data.Tuple) bool { return true }) {
			t.Fatal("sink stopped")
		}
	}
}

// TestScanRowPathAllocs pins the relation scan primitives: materializing
// a row into a caller buffer and encoding row/projection keys into
// scratch are allocation-free.
func TestScanRowPathAllocs(t *testing.T) {
	sc := schema.MustNew(schema.MustRelation("R", "A", "B"))
	d := data.NewInstance(sc)
	r := d.Relation("R")
	for i := int64(0); i < 32; i++ {
		r.MustInsert(value.NewInt(i), value.NewString("s"))
	}
	buf := make(data.Tuple, 0, 2)
	var kb []byte
	cols := []int{1}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < r.Len(); i++ {
			buf = r.AppendRow(buf, i)
			kb = r.AppendRowKey(kb[:0], i)
			kb = r.AppendKeyAt(kb[:0], i, cols)
		}
	})
	if avg != 0 {
		t.Fatalf("scan row path allocates %.1f/run, want 0", avg)
	}
}

// TestDedupAllocs pins the executor's set-semantics dedup: re-adding an
// existing row through the scratch-buffer insert allocates nothing.
func TestDedupAllocs(t *testing.T) {
	tab := NewTable("a", "b")
	row := data.Tuple{value.NewInt(1), value.NewString("dup")}
	tab.Add(row.Clone())
	scratch := row.Clone()
	avg := testing.AllocsPerRun(1000, func() {
		if tab.AddScratch(scratch) {
			t.Fatal("duplicate row was admitted")
		}
	})
	if avg != 0 {
		t.Fatalf("duplicate AddScratch allocates %.1f/row, want 0", avg)
	}
}

// TestJoinProbeAllocs pins the join probe: hashing the left row,
// scanning the group, verifying equality and assembling the joined row
// in a caller buffer allocate nothing.
func TestJoinProbeAllocs(t *testing.T) {
	l := NewTable("a", "b")
	r := NewTable("b", "c")
	for i := int64(0); i < 8; i++ {
		l.Add(data.Tuple{value.NewInt(i), value.NewString("k")})
		r.Add(data.Tuple{value.NewString("k"), value.NewInt(i * 10)})
	}
	js := newJoinState(l, r)
	if err := js.build(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	buf := make(data.Tuple, 0, len(l.Cols)+len(js.extraR))
	sink := func(data.Tuple) bool { return true }
	avg := testing.AllocsPerRun(200, func() {
		for _, lr := range l.Rows {
			if !js.probe(lr, buf, sink) {
				t.Fatal("sink stopped")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("join probe allocates %.1f/run, want 0", avg)
	}
}
