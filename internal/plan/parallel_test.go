package plan_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

// forceParallel makes every operator take the parallel path regardless of
// input size, so even small fixtures exercise the worker pool.
func forceParallel(workers int) plan.ExecOptions {
	return plan.ExecOptions{Workers: workers, MinRows: 1}
}

func assertSameExecution(t *testing.T, label string, p *plan.Plan, eng *core.Engine) {
	t.Helper()
	seqTbl, seqStats, err := plan.Execute(p, eng.Indexed())
	if err != nil {
		t.Fatalf("%s: sequential: %v", label, err)
	}
	for _, w := range []int{2, 3, 8} {
		parTbl, parStats, err := plan.ExecuteOpts(context.Background(), p, eng.Indexed(), forceParallel(w))
		if err != nil {
			t.Fatalf("%s workers=%d: %v", label, w, err)
		}
		if fmt.Sprint(parTbl.Cols) != fmt.Sprint(seqTbl.Cols) {
			t.Fatalf("%s workers=%d: cols %v != %v", label, w, parTbl.Cols, seqTbl.Cols)
		}
		if parTbl.Len() != seqTbl.Len() {
			t.Fatalf("%s workers=%d: %d rows, want %d", label, w, parTbl.Len(), seqTbl.Len())
		}
		for i := range seqTbl.Rows {
			if !seqTbl.Rows[i].Equal(parTbl.Rows[i]) {
				t.Fatalf("%s workers=%d: row %d = %v, want %v (order must match the sequential path)",
					label, w, i, parTbl.Rows[i], seqTbl.Rows[i])
			}
		}
		if parStats.Fetched != seqStats.Fetched || parStats.FetchKeys != seqStats.FetchKeys {
			t.Fatalf("%s workers=%d: stats fetched=%d keys=%d, want fetched=%d keys=%d",
				label, w, parStats.Fetched, parStats.FetchKeys, seqStats.Fetched, seqStats.FetchKeys)
		}
	}
}

// TestParallelMatchesSequentialAccidents: the acceptance property on the
// accidents workload — identical rows, in identical order, with identical
// Fetched/FetchKeys accounting, for every worker count.
func TestParallelMatchesSequentialAccidents(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 8, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(acc.Instance); err != nil {
		t.Fatal(err)
	}
	for _, q := range []*cq.CQ{workload.Q0()} {
		p, _, err := eng.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameExecution(t, q.Label, p, eng)
	}
}

// TestParallelMatchesSequentialSocial covers fan-out-heavy plans (multi-hop
// fetches and joins) on the social workload.
func TestParallelMatchesSequentialSocial(t *testing.T) {
	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: 500, MaxFriends: 20, MaxLikes: 6, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(soc.Schema, soc.Access, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(soc.Instance); err != nil {
		t.Fatal(err)
	}
	queries := []*cq.CQ{workload.GraphSearchQuery(1, "NYC", "cycling")}
	for _, q := range workload.PatternQueries(1) {
		queries = append(queries, q)
	}
	for _, q := range queries {
		p, _, err := eng.Plan(q)
		if err != nil {
			continue // unanchored patterns are not boundedly evaluable
		}
		assertSameExecution(t, q.Label, p, eng)
	}
}

// TestParallelMatchesSequentialRandom property-tests the equivalence over
// a batch of random bounded CQs on the accidents schema.
func TestParallelMatchesSequentialRandom(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 4, AccidentsPerDay: 20, MaxVehicles: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(acc.Instance); err != nil {
		t.Fatal(err)
	}
	consts := map[schema.Attribute][]cq.Term{
		"date": {cq.Const(value.NewString("1/5/2005")), cq.Const(value.NewString(workload.DateName(2)))},
		"aid":  {cq.Const(value.NewInt(3))},
		"vid":  {cq.Const(value.NewInt(5))},
	}
	qs, err := workload.RandomCQs(acc.Schema, workload.RandomCQConfig{
		Queries: 80, MaxAtoms: 4, StartProb: 0.9, FreeVars: 2, Seed: 7,
	}, consts)
	if err != nil {
		t.Fatal(err)
	}
	bounded := 0
	for _, q := range qs {
		p, _, err := eng.Plan(q)
		if err != nil {
			continue // not boundedly evaluable under ψ1–ψ4
		}
		bounded++
		assertSameExecution(t, q.Label, p, eng)
	}
	if bounded < 10 {
		t.Fatalf("random workload too weak: only %d bounded queries", bounded)
	}
}

// TestExecOptionsWorkersFor pins the sequential/parallel gating rules.
func TestExecOptionsWorkersFor(t *testing.T) {
	tbl, stats, err := plan.ExecuteOpts(context.Background(),
		&plan.Plan{Steps: []plan.Op{plan.ConstOp{Col: "c", Val: value.NewInt(1)}}, OutCols: []string{"c"}},
		nil, plan.ExecOptions{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 || stats.OpsRun != 1 {
		t.Fatalf("trivial plan: %v %+v", tbl, stats)
	}
}
