package plan

import (
	"fmt"
	"math"
	"strings"
)

// Bound is a static worst-case analysis of a plan: how much data it can
// fetch and how large its tables can grow, on ANY instance satisfying the
// access schema. For constant-cardinality constraints the bound depends
// only on Q and A — this is precisely what makes the plan boundedly
// evaluable. General-form constraints R(X -> Y, s(·)) evaluate s at the
// SizeHint, so the bound is a function of |D| but still sublinear.
//
// The analysis tracks, per column name, a bound on the number of distinct
// candidate values that can flow through it (1 for constants, |X-bound|·N
// for fetched columns). Table bounds take the minimum of the operational
// bound (product for ×/⋈, carry-through for σ/π) and the product of the
// column bounds — this reproduces the paper's Example 1.1 arithmetic
// (610 + 610·192·2 plus our verification re-fetches) instead of the naive
// exponential join blow-up.
type Bound struct {
	// Fetched bounds the total tuples retrieved via indices (|D_Q|).
	Fetched int64
	// Output bounds the final table size.
	Output int64
	// PerStep bounds each step's output size.
	PerStep []int64
	// SizeHint is the |D| used for general-form cardinalities (0 = n/a).
	SizeHint int
}

func (b Bound) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "access bound: ≤ %d tuples fetched, ≤ %d answers", b.Fetched, b.Output)
	if b.SizeHint > 0 {
		fmt.Fprintf(&sb, " (at |D| = %d)", b.SizeHint)
	}
	return sb.String()
}

const boundCap = math.MaxInt64 / 4

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > boundCap/b {
		return boundCap
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > boundCap-b {
		return boundCap
	}
	return a + b
}

func satMin(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// AccessBound computes the static bound for p. sizeHint is only consulted
// by general-form constraints; pass 0 when all constraints are constant.
func AccessBound(p *Plan, sizeHint int) (Bound, error) {
	if err := p.Validate(); err != nil {
		return Bound{}, err
	}
	bounds := make([]int64, len(p.Steps))
	cols := make([][]string, len(p.Steps))
	// colBound bounds the distinct values a named column can carry,
	// across the whole plan (column names are class representatives).
	colBound := make(map[string]int64)
	cb := func(name string) int64 {
		if b, ok := colBound[name]; ok {
			return b
		}
		return boundCap
	}
	narrow := func(name string, b int64) {
		colBound[name] = satMin(cb(name), b)
	}
	colProduct := func(names []string) int64 {
		out := int64(1)
		seen := make(map[string]bool, len(names))
		for _, n := range names {
			if seen[n] {
				continue
			}
			seen[n] = true
			out = satMul(out, cb(n))
		}
		return out
	}

	var fetched int64
	for i, op := range p.Steps {
		switch o := op.(type) {
		case unitOp:
			bounds[i], cols[i] = 1, nil
		case ConstOp:
			narrow(o.Col, 1)
			bounds[i], cols[i] = 1, []string{o.Col}
		case EmptyOp:
			bounds[i], cols[i] = 0, append([]string(nil), o.Cols...)
		case FetchOp:
			n := int64(o.Constraint.Card.Bound(sizeHint))
			in := satMin(bounds[o.Input], colProduct(o.XCols))
			xBound := colProduct(o.XCols)
			out := satMul(satMin(in, xBound), n)
			for _, y := range o.YOut {
				if y != "" {
					narrow(y, out)
				}
			}
			bounds[i] = out
			cols[i] = o.outCols()
			fetched = satAdd(fetched, out)
		case ProjectOp:
			outCols := o.Cols
			if o.As != nil {
				outCols = o.As
			}
			bounds[i] = satMin(bounds[o.Input], colProduct(o.Cols))
			cols[i] = append([]string(nil), outCols...)
		case SelectOp:
			bounds[i], cols[i] = bounds[o.Input], cols[o.Input]
		case ProductOp:
			cols[i] = append(append([]string(nil), cols[o.L]...), cols[o.R]...)
			bounds[i] = satMin(satMul(bounds[o.L], bounds[o.R]), colProduct(cols[i]))
		case JoinOp:
			merged := append([]string(nil), cols[o.L]...)
			ls := make(map[string]bool, len(merged))
			for _, c := range merged {
				ls[c] = true
			}
			for _, c := range cols[o.R] {
				if !ls[c] {
					merged = append(merged, c)
				}
			}
			cols[i] = merged
			bounds[i] = satMin(satMul(bounds[o.L], bounds[o.R]), colProduct(merged))
		case UnionOp:
			bounds[i], cols[i] = satAdd(bounds[o.L], bounds[o.R]), cols[o.L]
		case DiffOp:
			bounds[i], cols[i] = bounds[o.L], cols[o.L]
		case RenameOp:
			cc := append([]string(nil), cols[o.Input]...)
			for k, f := range o.From {
				for j, c := range cc {
					if c == f {
						cc[j] = o.To[k]
						narrow(o.To[k], cb(f))
					}
				}
			}
			bounds[i], cols[i] = bounds[o.Input], cc
		default:
			return Bound{}, fmt.Errorf("plan: bound: unknown operation %T", op)
		}
	}
	return Bound{
		Fetched:  fetched,
		Output:   bounds[len(bounds)-1],
		PerStep:  bounds,
		SizeHint: sizeHint,
	}, nil
}
