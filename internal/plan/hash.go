package plan

import (
	"repro/internal/data"
	"repro/internal/value"
)

// Row hashing for the executor's set-semantics dedup: FNV-1a over each
// cell's kind and payload. Hashes are only a pre-filter — equality is
// always confirmed element-wise — so a collision costs a compare, never
// a wrong row. Replacing the old injective-key-encoding dedup
// (map[value.Key]bool, one string allocation per row) with hash+verify
// is what makes the dedup leg of the hot path allocation-free; it keeps
// the exact same first-occurrence-wins semantics because key equality
// and element-wise equality coincide (the key encoding is injective).

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashCell folds one value into h.
//
//bevet:hotpath
func hashCell(h uint64, v value.Value) uint64 {
	h ^= uint64(v.Kind())
	h *= fnvPrime64
	switch v.Kind() {
	case value.Int:
		x := uint64(v.Int())
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= fnvPrime64
		}
	case value.String:
		s := v.Str()
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnvPrime64
		}
	}
	return h
}

// hashRow hashes a whole row.
//
//bevet:hotpath
func hashRow(row data.Tuple) uint64 {
	h := fnvOffset64
	for _, v := range row {
		h = hashCell(h, v)
	}
	return h
}

// hashRowAt hashes the projection of row onto positions cols.
//
//bevet:hotpath
func hashRowAt(row data.Tuple, cols []int) uint64 {
	h := fnvOffset64
	for _, c := range cols {
		h = hashCell(h, row[c])
	}
	return h
}

// rowsEqual reports element-wise row equality.
//
//bevet:hotpath
func rowsEqual(a, b data.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// rowsEqualAt reports equality of two rows projected onto the same
// positions.
//
//bevet:hotpath
func rowsEqualAt(a, b data.Tuple, cols []int) bool {
	for _, c := range cols {
		if a[c] != b[c] {
			return false
		}
	}
	return true
}

// argDedup deduplicates input rows of a fetch on their X-columns: row i
// is "seen" when an earlier row projects to the same X-values. It is the
// distinct-key pass that keeps FetchKeys at the number of distinct keys
// regardless of input duplication, without encoding a key per row.
type argDedup struct {
	rows  []data.Tuple
	cols  []int
	first map[uint64]int32
	more  map[uint64][]int32
}

func newArgDedup(rows []data.Tuple, cols []int) *argDedup {
	return &argDedup{rows: rows, cols: cols, first: make(map[uint64]int32, len(rows))}
}

// seen checks-and-records row i; it reports whether an earlier row
// already covered its X-projection.
//
//bevet:hotpath
func (d *argDedup) seen(i int) bool {
	h := hashRowAt(d.rows[i], d.cols)
	j, ok := d.first[h]
	if !ok {
		d.first[h] = int32(i)
		return false
	}
	if rowsEqualAt(d.rows[j], d.rows[i], d.cols) {
		return true
	}
	for _, jj := range d.more[h] {
		if rowsEqualAt(d.rows[jj], d.rows[i], d.cols) {
			return true
		}
	}
	d.collide(h, int32(i))
	return false
}

// collide records an additional row index under a colliding hash; rare by
// construction, allocates by design.
func (d *argDedup) collide(h uint64, i int32) {
	if d.more == nil {
		d.more = make(map[uint64][]int32)
	}
	d.more[h] = append(d.more[h], i)
}
