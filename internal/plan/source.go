package plan

import (
	"repro/internal/access"
	"repro/internal/index"
)

// Fetcher resolves the index lookups of one fetch step: given an encoded
// X-key ā (raw bytes, typically a reused scratch buffer — the probe
// copies nothing) it returns D_Y(X = ā), the distinct Y-projections in
// canonical (key-sorted) order as an immutable index.Bucket view.
// *index.Index implements it directly; a distributed source returns a
// resolver that routes or scatter-gathers across shards.
type Fetcher interface {
	FetchBytes(k []byte) index.Bucket
}

// Source is the data-access surface a plan executes against: it resolves
// each fetch step's access constraint to a Fetcher once, up front.
// NewSource adapts the single-node *access.Indexed; internal/shard
// provides a scatter-gather implementation over hash-partitioned shards.
// FetcherFor returns nil when the source has no index for c, which fails
// the fetch step with a descriptive error.
//
// A Source may additionally implement FetchErr() error to report fetch
// failures the infallible FetchBytes signature cannot carry inline
// (e.g. a networked source losing a peer mid-query). The executor
// checks it after every plan step and aborts with that error, so a
// partial fetch never silently produces a wrong answer.
type Source interface {
	FetcherFor(c access.Constraint) Fetcher
}

// indexedSource is the single-node Source: constraints resolve to the
// indexes of one access.Indexed.
type indexedSource struct{ ix *access.Indexed }

func (s indexedSource) FetcherFor(c access.Constraint) Fetcher {
	if idx := s.ix.IndexFor(c); idx != nil {
		return idx
	}
	return nil
}

// NewSource adapts an indexed instance to the Source interface plans
// execute against.
func NewSource(ix *access.Indexed) Source { return indexedSource{ix} }
