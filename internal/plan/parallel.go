package plan

import (
	"runtime"
	"sync"
)

// ExecOptions tunes plan execution. The zero value runs every operator
// sequentially, byte-for-byte equivalent to the original executor.
type ExecOptions struct {
	// Workers bounds the goroutines each parallel operator (fetch fan-out,
	// hash-join build/probe) may use. 0 or 1 runs sequentially; a negative
	// value uses GOMAXPROCS.
	Workers int
	// MinRows is the operator input size below which execution stays
	// sequential even when Workers > 1 (goroutine fan-out overhead
	// dominates tiny inputs). 0 means DefaultMinParallelRows.
	MinRows int
}

// DefaultMinParallelRows is the parallelism threshold used when
// ExecOptions.MinRows is zero.
const DefaultMinParallelRows = 64

// workersFor resolves the worker count for an operator processing n items.
func (o ExecOptions) workersFor(n int) int {
	w := o.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 {
		return 1
	}
	min := o.MinRows
	if min <= 0 {
		min = DefaultMinParallelRows
	}
	if n < min {
		return 1
	}
	if w > n {
		w = n
	}
	return w
}

// span is a half-open index range [Lo, Hi).
type span struct{ Lo, Hi int }

// splitSpans partitions [0, n) into at most w contiguous, near-equal
// ranges. Contiguity matters: merging per-range results in range order
// reproduces the sequential processing order exactly.
func splitSpans(n, w int) []span {
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	out := make([]span, 0, w)
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		if lo < hi {
			out = append(out, span{Lo: lo, Hi: hi})
		}
	}
	return out
}

// runSpans executes fn once per span, each on its own goroutine, and
// blocks until all complete. A single span runs inline.
func runSpans(spans []span, fn func(part int, s span)) {
	if len(spans) == 1 {
		fn(0, spans[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(spans))
	for i, s := range spans {
		go func(part int, s span) {
			defer wg.Done()
			fn(part, s)
		}(i, s)
	}
	wg.Wait()
}
