package plan

import (
	"fmt"
	"sort"

	"repro/internal/cover"
	"repro/internal/cq"
)

// BuildOptions tunes plan synthesis.
type BuildOptions struct {
	// LowerJoins expands every natural join into the paper's primitive
	// grammar (ρ, ×, σ, π) instead of emitting JoinOp. Semantically
	// identical; the ablation benchmark measures the cost.
	LowerJoins bool
}

// Empty returns the plan that answers an A-unsatisfiable query: a single
// EmptyOp producing no rows over the given head columns.
func Empty(label string, outCols []string) *Plan {
	return &Plan{
		Label:   label,
		Steps:   []Op{EmptyOp{Cols: append([]string(nil), outCols...)}},
		OutCols: append([]string(nil), outCols...),
	}
}

// NotCoveredError reports that plan synthesis was asked for a query that
// is not covered; the embedded diagnostics say why.
type NotCoveredError struct {
	Result *cover.Result
}

func (e *NotCoveredError) Error() string {
	return "plan: query is not covered by the access schema:\n" + e.Result.Explain()
}

// Build synthesizes a boundedly evaluable query plan for a covered CQ,
// following the constructive proof of Theorem 3.11: replay the cov(Q,A)
// fixpoint as fetches to enumerate candidate values for covered variables,
// then verify every relation atom through its indexing constraint, and
// finally project onto the head.
//
// A-unsatisfiable queries (conflicting equalities) yield the empty plan.
// Non-covered queries yield NotCoveredError with diagnostics.
func Build(res *cover.Result, opt BuildOptions) (*Plan, error) {
	an := res.Analysis
	q := an.Q
	p := &Plan{Label: q.Label, OutCols: append([]string(nil), q.Free...)}
	b := &builder{plan: p, opt: opt}

	// Unsatisfiable: the empty plan answers the query on every D |= A.
	if q.Canonicalize().Unsat {
		b.emit(EmptyOp{Cols: append([]string(nil), q.Free...)})
		return p, nil
	}
	if !res.Covered {
		return nil, &NotCoveredError{Result: res}
	}

	cls := an.EqPlus
	rep := cls.Root

	// Seed: the unit table, extended with one constant column per pinned
	// class that the query mentions.
	acc := b.emit(unitOp{})
	seeded := map[string]bool{}
	for _, v := range neededVars(q) {
		r := rep(v)
		if seeded[r] || !cls.IsConstantVar(v) {
			continue
		}
		seeded[r] = true
		cstep := b.emit(ConstOp{Col: r, Val: cls.ConstOf(v)})
		acc = b.join(acc, cstep, sharedCols(b.cols(acc), b.cols(cstep)))
	}
	accCols := func() map[string]bool { return b.colSet(acc) }

	// Phase 1: replay the fixpoint applications as fetches, extending the
	// accumulated table with candidate values for each covered class.
	for _, ap := range an.Applications {
		xreps := make([]string, len(ap.XVars))
		for i, x := range ap.XVars {
			xreps[i] = rep(x)
		}
		yreps := make([]string, len(ap.YVars))
		for i, y := range ap.YVars {
			yreps[i] = rep(y)
		}
		// Skip applications that add no new column (they only widened cov
		// through eq⁺; values are already constrained elsewhere).
		have := accCols()
		anyNew := false
		for _, y := range yreps {
			if !have[y] {
				anyNew = true
			}
		}
		for i, x := range ap.XVars {
			if an.ConstantVars[x] && !have[xreps[i]] {
				// Pinned classes were all seeded above.
				return nil, fmt.Errorf("plan: internal: pinned class %s not seeded", xreps[i])
			}
		}
		if !anyNew {
			continue
		}
		xt := b.emit(ProjectOp{Input: acc, Cols: dedup(xreps)})
		ft := b.emit(FetchOp{
			Input:      xt,
			Constraint: ap.Constraint,
			XCols:      xreps,
			YOut:       yreps,
		})
		acc = b.join(acc, ft, sharedCols(b.cols(acc), b.cols(ft)))
	}

	// Phase 2: verify every atom through its indexing constraint
	// (semijoin). This also binds nothing new: it filters the candidate
	// combinations down to those witnessed by real tuples.
	for _, ai := range res.Atoms {
		atom := q.Atoms[ai.AtomIdx]
		c := an.Access.Constraints[ai.ConstraintIdx]
		rs, _ := an.Schema.Relation(atom.Rel)
		xreps := make([]string, len(c.X))
		for i, a := range c.X {
			xreps[i] = rep(atom.Args[rs.AttrIndex(a)].V)
		}
		yout := make([]string, len(c.Y))
		freeSet := map[string]bool{}
		for _, f := range q.Free {
			freeSet[f] = true
		}
		for i, a := range c.Y {
			v := atom.Args[rs.AttrIndex(a)].V
			if !freeSet[v] && an.Occurs[v] == 1 {
				yout[i] = "" // unconstrained singleton: drop
			} else {
				yout[i] = rep(v)
			}
		}
		xt := b.emit(ProjectOp{Input: acc, Cols: dedup(xreps)})
		ft := b.emit(FetchOp{Input: xt, Constraint: c, XCols: xreps, YOut: yout})
		keep := b.cols(acc)
		acc = b.join(acc, ft, sharedCols(keep, b.cols(ft)))
		// Drop any throwaway columns the verification introduced.
		if len(b.cols(acc)) != len(keep) {
			acc = b.emit(ProjectOp{Input: acc, Cols: keep})
		}
	}

	// Phase 3: project onto the head, renaming class representatives back
	// to the free variable names (repeats allowed, e.g. Q(x, x)).
	heads := make([]string, len(q.Free))
	for i, f := range q.Free {
		heads[i] = rep(f)
	}
	b.emit(ProjectOp{Input: acc, Cols: heads, As: append([]string(nil), q.Free...)})
	return p, nil
}

// BuildUCQ synthesizes a plan for a covered UCQ: per Lemma 3.6 the union of
// the covered sub-queries' plans answers the whole query (dominated
// sub-queries contribute no additional answers on instances satisfying A).
func BuildUCQ(ures *cover.UCQResult, opt BuildOptions) (*Plan, error) {
	if !ures.Covered {
		return nil, fmt.Errorf("plan: UCQ is not covered by the access schema")
	}
	p := &Plan{}
	b := &builder{plan: p, opt: opt}
	last := -1
	for i, st := range ures.Subs {
		if st != cover.SubCovered {
			continue
		}
		sub, err := Build(ures.SubResults[i], opt)
		if err != nil {
			return nil, err
		}
		if p.Label == "" {
			p.Label = sub.Label
			p.OutCols = sub.OutCols
		}
		// Splice the sub-plan with shifted step indices.
		offset := len(p.Steps)
		for _, op := range sub.Steps {
			b.emit(shiftOp(op, offset))
		}
		end := len(p.Steps) - 1
		if last >= 0 {
			last = b.emit(UnionOp{L: last, R: end})
		} else {
			last = end
		}
	}
	if last < 0 {
		return nil, fmt.Errorf("plan: UCQ has no covered sub-queries")
	}
	return p, nil
}

// unitOp produces the unit table; it is an internal seed, rendered as {()}.
type unitOp struct{}

func (unitOp) String() string { return "{()}" }
func (unitOp) inputs() []int  { return nil }

type builder struct {
	plan *Plan
	opt  BuildOptions
	// colsOf tracks the column list of each emitted step.
	colsOf [][]string
}

func (b *builder) emit(op Op) int {
	b.plan.Steps = append(b.plan.Steps, op)
	b.colsOf = append(b.colsOf, b.deriveCols(op))
	return len(b.plan.Steps) - 1
}

func (b *builder) cols(i int) []string { return b.colsOf[i] }

func (b *builder) colSet(i int) map[string]bool {
	m := make(map[string]bool)
	for _, c := range b.colsOf[i] {
		m[c] = true
	}
	return m
}

func (b *builder) deriveCols(op Op) []string {
	switch o := op.(type) {
	case unitOp:
		return nil
	case ConstOp:
		return []string{o.Col}
	case EmptyOp:
		return append([]string(nil), o.Cols...)
	case FetchOp:
		return o.outCols()
	case ProjectOp:
		if o.As != nil {
			return append([]string(nil), o.As...)
		}
		return append([]string(nil), o.Cols...)
	case SelectOp:
		return b.cols(o.Input)
	case ProductOp:
		return append(append([]string(nil), b.cols(o.L)...), b.cols(o.R)...)
	case JoinOp:
		l := b.cols(o.L)
		ls := make(map[string]bool, len(l))
		for _, c := range l {
			ls[c] = true
		}
		out := append([]string(nil), l...)
		for _, c := range b.cols(o.R) {
			if !ls[c] {
				out = append(out, c)
			}
		}
		return out
	case UnionOp, DiffOp:
		return b.cols(op.inputs()[0])
	case RenameOp:
		cols := append([]string(nil), b.cols(o.Input)...)
		for i, f := range o.From {
			for j, c := range cols {
				if c == f {
					cols[j] = o.To[i]
				}
			}
		}
		return cols
	default:
		return nil
	}
}

// join emits a natural join of steps l and r on their shared columns —
// either as JoinOp or, under LowerJoins, as the primitive ρ/×/σ/π sequence
// of the paper's plan grammar.
func (b *builder) join(l, r int, shared []string) int {
	if !b.opt.LowerJoins {
		return b.emit(JoinOp{L: l, R: r})
	}
	rcols := b.cols(r)
	// Rename shared columns on the right to temporaries.
	var from, to []string
	for _, c := range rcols {
		if contains(shared, c) {
			from = append(from, c)
			to = append(to, "_j_"+c)
		}
	}
	rr := r
	if len(from) > 0 {
		rr = b.emit(RenameOp{Input: r, From: from, To: to})
	}
	prod := b.emit(ProductOp{L: l, R: rr})
	var conds []EqCond
	for i := range from {
		conds = append(conds, EqCond{L: from[i], R: to[i]})
	}
	sel := prod
	if len(conds) > 0 {
		sel = b.emit(SelectOp{Input: prod, Conds: conds})
	}
	// Keep the natural-join column layout: left columns then right extras.
	keep := append([]string(nil), b.cols(l)...)
	for _, c := range rcols {
		if !contains(shared, c) && !contains(keep, c) {
			keep = append(keep, c)
		}
	}
	return b.emit(ProjectOp{Input: sel, Cols: keep})
}

func shiftOp(op Op, k int) Op {
	switch o := op.(type) {
	case FetchOp:
		o.Input += k
		return o
	case ProjectOp:
		o.Input += k
		return o
	case SelectOp:
		o.Input += k
		return o
	case ProductOp:
		o.L += k
		o.R += k
		return o
	case JoinOp:
		o.L += k
		o.R += k
		return o
	case UnionOp:
		o.L += k
		o.R += k
		return o
	case DiffOp:
		o.L += k
		o.R += k
		return o
	case RenameOp:
		o.Input += k
		return o
	default:
		return op
	}
}

// neededVars lists variables whose values the plan must materialize:
// everything mentioned in atoms or the head, plus equality-only variables.
func neededVars(q *cq.CQ) []string {
	return q.Vars()
}

func dedup(xs []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func sharedCols(a, b []string) []string {
	set := make(map[string]bool, len(a))
	for _, c := range a {
		set[c] = true
	}
	var out []string
	for _, c := range b {
		if set[c] {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

func contains(xs []string, x string) bool {
	for _, y := range xs {
		if x == y {
			return true
		}
	}
	return false
}
