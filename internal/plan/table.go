// Package plan implements the paper's query plans (Section 2): sequences
// ξ(Q,R): T1 = δ1, ..., Tn = δn of operations over intermediate tables,
// where δ is {a}, fetch(X ∈ Tj, R, Y), π, σ, ×, ∪, − or ρ. It synthesizes
// boundedly evaluable plans from covered queries (Theorem 3.11), executes
// them against indexed instances with precise access accounting, and
// derives the static worst-case access bound that makes a plan "bounded".
package plan

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/value"
)

// Table is an intermediate result T_i: named columns over rows with set
// semantics (duplicate rows are not stored). Dedup is hash-based — a
// 64-bit row hash resolves to candidate row indexes verified by
// element-wise comparison — so inserting through a reused scratch buffer
// (AddScratch) encodes no per-row keys and allocates nothing for
// duplicates; new rows are carved from a chunked arena instead of one
// allocation each.
type Table struct {
	Cols []string
	Rows []data.Tuple

	// first maps a row hash to the first row index bearing it; more holds
	// the (astronomically rare) additional indexes of colliding hashes.
	// Row equality is always confirmed element-wise, so hash collisions
	// cost a compare, never a wrong answer.
	first map[uint64]int32
	more  map[uint64][]int32

	// arena backs rows copied in via AddScratch: rows are carved from
	// chunked slabs, so a million-row table costs hundreds of allocations
	// instead of a million. Committed rows are never moved or reused.
	arena []value.Value
}

// Arena slab sizing (in cells): chunks start small — a bounded query's
// intermediate tables are often a handful of rows, and a fixed big slab
// per table would cost more zeroed memory than the old per-row copies —
// and double per refill up to arenaChunkMax, so large tables still pay
// O(log n) allocations.
const (
	arenaChunkMin = 64
	arenaChunkMax = 4096
)

// NewTable returns an empty table with the given columns.
func NewTable(cols ...string) *Table {
	return &Table{Cols: append([]string(nil), cols...)}
}

// Unit returns the zero-column table holding the single empty row — the
// identity for products and the seed of plan construction.
func Unit() *Table {
	t := NewTable()
	t.Add(data.Tuple{})
	return t
}

// contains reports whether an equal row is already stored under hash h.
//
//bevet:hotpath
func (t *Table) contains(h uint64, row data.Tuple) bool {
	i, ok := t.first[h]
	if !ok {
		return false
	}
	if rowsEqual(t.Rows[i], row) {
		return true
	}
	for _, j := range t.more[h] {
		if rowsEqual(t.Rows[j], row) {
			return true
		}
	}
	return false
}

// record indexes the row about to be appended under hash h. Kept out of
// the hot-path annotations: the collision branch allocates by design and
// runs ~never.
func (t *Table) record(h uint64) {
	if t.first == nil {
		t.first = make(map[uint64]int32)
	}
	if _, ok := t.first[h]; !ok {
		t.first[h] = int32(len(t.Rows))
		return
	}
	if t.more == nil {
		t.more = make(map[uint64][]int32)
	}
	t.more[h] = append(t.more[h], int32(len(t.Rows)))
}

// Add inserts a row under set semantics, reporting whether it was new.
// The row itself is stored — callers passing a buffer they will reuse
// must use AddScratch.
func (t *Table) Add(row data.Tuple) bool {
	return t.addHashed(row, hashRow(row))
}

// addHashed is Add with the row's hash precomputed — the parallel
// executor hashes rows on worker goroutines so the ordered merge only
// pays for the map insert.
func (t *Table) addHashed(row data.Tuple, h uint64) bool {
	if t.contains(h, row) {
		return false
	}
	t.record(h)
	t.Rows = append(t.Rows, row)
	return true
}

// AddScratch inserts the row currently held in a reused scratch buffer:
// duplicates are detected without copying, and a new row is copied into
// the table's arena. This is the zero-allocation-per-row insert of the
// fetch/join hot path.
//
//bevet:hotpath
func (t *Table) AddScratch(row data.Tuple) bool {
	h := hashRow(row)
	if t.contains(h, row) {
		return false
	}
	t.record(h)
	t.Rows = append(t.Rows, t.arenaRow(row))
	return true
}

// arenaRow copies row into the arena and returns the stored copy. The
// chunk a row lands in never grows past its capacity, so earlier rows
// are never moved.
//
//bevet:hotpath
func (t *Table) arenaRow(row data.Tuple) data.Tuple {
	if len(row) == 0 {
		return data.Tuple{}
	}
	if len(t.arena)+len(row) > cap(t.arena) {
		n := cap(t.arena) * 2
		if n < arenaChunkMin {
			n = arenaChunkMin
		}
		if n > arenaChunkMax {
			n = arenaChunkMax
		}
		if len(row) > n {
			n = len(row)
		}
		t.arena = make([]value.Value, 0, n)
	}
	base := len(t.arena)
	t.arena = append(t.arena, row...)
	return data.Tuple(t.arena[base : base+len(row) : base+len(row)])
}

// grow pre-sizes the table's dedup index and row slice for n upcoming
// inserts, avoiding incremental rehashing during large ordered merges. It
// only acts on a still-empty table.
func (t *Table) grow(n int) {
	if len(t.Rows) > 0 || n <= 0 {
		return
	}
	t.first = make(map[uint64]int32, n)
	t.Rows = make([]data.Tuple, 0, n)
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// ColIndexes resolves several columns, erroring on a missing one.
func (t *Table) ColIndexes(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		p := t.ColIndex(n)
		if p < 0 {
			return nil, fmt.Errorf("plan: table has no column %q (cols %v)", n, t.Cols)
		}
		out[i] = p
	}
	return out, nil
}

// String renders a compact header + row count, for plan traces.
func (t *Table) String() string {
	return fmt.Sprintf("(%s)[%d rows]", strings.Join(t.Cols, ", "), t.Len())
}
