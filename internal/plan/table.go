// Package plan implements the paper's query plans (Section 2): sequences
// ξ(Q,R): T1 = δ1, ..., Tn = δn of operations over intermediate tables,
// where δ is {a}, fetch(X ∈ Tj, R, Y), π, σ, ×, ∪, − or ρ. It synthesizes
// boundedly evaluable plans from covered queries (Theorem 3.11), executes
// them against indexed instances with precise access accounting, and
// derives the static worst-case access bound that makes a plan "bounded".
package plan

import (
	"fmt"
	"strings"

	"repro/internal/data"
	"repro/internal/value"
)

// Table is an intermediate result T_i: named columns over rows with set
// semantics (duplicate rows are not stored).
type Table struct {
	Cols []string
	Rows []data.Tuple
	seen map[value.Key]bool
}

// NewTable returns an empty table with the given columns.
func NewTable(cols ...string) *Table {
	return &Table{Cols: append([]string(nil), cols...), seen: make(map[value.Key]bool)}
}

// Unit returns the zero-column table holding the single empty row — the
// identity for products and the seed of plan construction.
func Unit() *Table {
	t := NewTable()
	t.Add(data.Tuple{})
	return t
}

// Add inserts a row under set semantics, reporting whether it was new.
func (t *Table) Add(row data.Tuple) bool {
	return t.addKeyed(row, row.Key())
}

// grow pre-sizes the table's dedup map and row slice for n upcoming
// inserts, avoiding incremental rehashing during large ordered merges. It
// only acts on a still-empty table.
func (t *Table) grow(n int) {
	if len(t.Rows) > 0 || n <= 0 {
		return
	}
	t.seen = make(map[value.Key]bool, n)
	t.Rows = make([]data.Tuple, 0, n)
}

// addKeyed is Add with the row's dedup key precomputed — the parallel
// executor encodes keys on worker goroutines so the ordered merge only
// pays for the map insert.
func (t *Table) addKeyed(row data.Tuple, k value.Key) bool {
	if t.seen == nil {
		t.seen = make(map[value.Key]bool)
	}
	if t.seen[k] {
		return false
	}
	t.seen[k] = true
	t.Rows = append(t.Rows, row)
	return true
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// ColIndexes resolves several columns, erroring on a missing one.
func (t *Table) ColIndexes(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		p := t.ColIndex(n)
		if p < 0 {
			return nil, fmt.Errorf("plan: table has no column %q (cols %v)", n, t.Cols)
		}
		out[i] = p
	}
	return out, nil
}

// String renders a compact header + row count, for plan traces.
func (t *Table) String() string {
	return fmt.Sprintf("(%s)[%d rows]", strings.Join(t.Cols, ", "), t.Len())
}
