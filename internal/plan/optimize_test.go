package plan

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cover"
	"repro/internal/value"
)

func TestOptimizeDropsDeadSteps(t *testing.T) {
	// T0 = {1}, T1 = {2} (dead), T2 = π(T0).
	p := &Plan{
		Label: "opt",
		Steps: []Op{
			ConstOp{Col: "a", Val: value.NewInt(1)},
			ConstOp{Col: "b", Val: value.NewInt(2)},
			ProjectOp{Input: 0, Cols: []string{"a"}},
		},
		OutCols: []string{"a"},
	}
	o := Optimize(p)
	if len(o.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(o.Steps))
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// Execution equivalence.
	ix := emptyIndexed(t)
	before, _, err := Execute(p, ix)
	if err != nil {
		t.Fatal(err)
	}
	after, _, err := Execute(o, ix)
	if err != nil {
		t.Fatal(err)
	}
	if before.Len() != after.Len() || before.Rows[0][0] != after.Rows[0][0] {
		t.Errorf("optimization changed the answer: %v vs %v", before.Rows, after.Rows)
	}
}

func emptyIndexed(t *testing.T) *access.Indexed {
	t.Helper()
	d := accidentInstance(t, 1, 1, 1)
	ix, _, err := access.BuildIndexed(psi(), d)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestOptimizeQ0PlanEquivalent(t *testing.T) {
	res, err := cover.Check(q0(), psi(), accidentSchema(), cover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(res, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o := Optimize(p)
	if len(o.Steps) > len(p.Steps) {
		t.Fatal("optimization must not grow the plan")
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	d := accidentInstance(t, 3, 6, 2)
	ix, _, err := access.BuildIndexed(psi(), d)
	if err != nil {
		t.Fatal(err)
	}
	gp, _, err := Execute(p, ix)
	if err != nil {
		t.Fatal(err)
	}
	go2, _, err := Execute(o, ix)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, gp, go2.Rows)
	// Bound analysis still works and cannot worsen.
	bp, err := AccessBound(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := AccessBound(o, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bo.Fetched > bp.Fetched {
		t.Errorf("optimized bound worse: %d > %d", bo.Fetched, bp.Fetched)
	}
}

func TestOptimizeKeepsChains(t *testing.T) {
	// Every step feeds the next: nothing to drop.
	p := &Plan{
		Steps: []Op{
			ConstOp{Col: "a", Val: value.NewInt(1)},
			ProjectOp{Input: 0, Cols: []string{"a"}},
			SelectOp{Input: 1, Conds: []EqCond{{L: "a", C: value.NewInt(1)}}},
		},
		OutCols: []string{"a"},
	}
	o := Optimize(p)
	if len(o.Steps) != 3 {
		t.Errorf("chain plan should be untouched: %d steps", len(o.Steps))
	}
}
