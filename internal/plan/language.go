package plan

import "fmt"

// Language identifies the query class whose plan grammar (Section 2,
// "Boundedly evaluable queries") a plan must conform to:
//
//   - CQ:    each δ is fetch, π, σ, × or ρ;
//   - UCQ:   additionally ∪, but only as the LAST k−1 operations;
//   - ∃FO⁺:  fetch, π, σ, ×, ∪ or ρ anywhere;
//   - FO:    additionally set difference −.
type Language int

const (
	LangCQ Language = iota
	LangUCQ
	LangPosFO
	LangFO
)

func (l Language) String() string {
	switch l {
	case LangCQ:
		return "CQ"
	case LangUCQ:
		return "UCQ"
	case LangPosFO:
		return "∃FO⁺"
	case LangFO:
		return "FO"
	default:
		return fmt.Sprintf("language(%d)", int(l))
	}
}

// ConformsTo verifies the plan against the language's operation grammar.
// Leaf operations ({a}, the unit seed, and the empty plan) are allowed
// everywhere; JoinOp counts as the σ∘× it abbreviates.
func (p *Plan) ConformsTo(l Language) error {
	lastUnionBlock := len(p.Steps)
	// For UCQ: find where the trailing ∪-block starts.
	for i := len(p.Steps) - 1; i >= 0; i-- {
		if _, ok := p.Steps[i].(UnionOp); ok {
			lastUnionBlock = i
		} else {
			break
		}
	}
	for i, op := range p.Steps {
		switch op.(type) {
		case ConstOp, EmptyOp, unitOp, FetchOp, ProjectOp, SelectOp, ProductOp, JoinOp, RenameOp:
			// Allowed in every language.
		case UnionOp:
			switch l {
			case LangCQ:
				return fmt.Errorf("plan: step T%d is ∪, not allowed in %s plans", i, l)
			case LangUCQ:
				if i < lastUnionBlock {
					return fmt.Errorf("plan: step T%d is ∪ before the trailing union block (UCQ grammar)", i)
				}
			}
		case DiffOp:
			if l != LangFO {
				return fmt.Errorf("plan: step T%d is −, only allowed in FO plans", i)
			}
		default:
			return fmt.Errorf("plan: step T%d has unknown operation %T", i, op)
		}
	}
	return nil
}
