package plan

import (
	"testing"

	"repro/internal/access"
	"repro/internal/value"
)

// opsIndexed builds a tiny indexed instance for exercising raw operators.
func opsIndexed(t *testing.T) *access.Indexed {
	t.Helper()
	d := accidentInstance(t, 1, 2, 1)
	ix, _, err := access.BuildIndexed(psi(), d)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func runPlan(t *testing.T, ix *access.Indexed, steps ...Op) *Table {
	t.Helper()
	p := &Plan{Label: "ops", Steps: steps}
	tbl, _, err := Execute(p, ix)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func mustFail(t *testing.T, ix *access.Indexed, why string, steps ...Op) {
	t.Helper()
	p := &Plan{Label: "ops", Steps: steps}
	if _, _, err := Execute(p, ix); err == nil {
		t.Errorf("expected failure: %s", why)
	}
}

func c(col string, v int64) Op { return ConstOp{Col: col, Val: value.NewInt(v)} }

func TestUnionOpSemantics(t *testing.T) {
	ix := opsIndexed(t)
	tbl := runPlan(t, ix,
		c("a", 1),
		c("a", 2),
		UnionOp{L: 0, R: 1},
		UnionOp{L: 2, R: 0}, // duplicates collapse (set semantics)
	)
	if tbl.Len() != 2 {
		t.Errorf("union rows = %v", tbl.Rows)
	}
	mustFail(t, ix, "union arity mismatch",
		c("a", 1),
		ProductOp{L: 0, R: 0},
	)
}

func TestDiffOpSemantics(t *testing.T) {
	ix := opsIndexed(t)
	tbl := runPlan(t, ix,
		c("a", 1),
		c("a", 2),
		UnionOp{L: 0, R: 1}, // {1, 2}
		DiffOp{L: 2, R: 0},  // minus {1} = {2}
	)
	if tbl.Len() != 1 || tbl.Rows[0][0] != value.NewInt(2) {
		t.Errorf("diff rows = %v", tbl.Rows)
	}
	mustFail(t, ix, "diff arity mismatch",
		c("a", 1),
		c("b", 2),
		ProductOp{L: 0, R: 1}, // arity 2
		DiffOp{L: 2, R: 0},    // arity 2 vs 1
	)
}

func TestRenameAndProduct(t *testing.T) {
	ix := opsIndexed(t)
	tbl := runPlan(t, ix,
		c("a", 1),
		RenameOp{Input: 0, From: []string{"a"}, To: []string{"b"}},
		ProductOp{L: 0, R: 1}, // (a, b)
	)
	if len(tbl.Cols) != 2 || tbl.Cols[0] != "a" || tbl.Cols[1] != "b" {
		t.Errorf("cols = %v", tbl.Cols)
	}
	// Product with clashing column names must fail.
	mustFail(t, ix, "product duplicate column",
		c("a", 1),
		c("a", 2),
		ProductOp{L: 0, R: 1},
	)
	mustFail(t, ix, "rename of missing column",
		c("a", 1),
		RenameOp{Input: 0, From: []string{"zz"}, To: []string{"b"}},
	)
}

func TestSelectOpConditions(t *testing.T) {
	ix := opsIndexed(t)
	// Build (a, b) pairs {1,1} and {1,2}; select a = b keeps one.
	tbl := runPlan(t, ix,
		c("a", 1),
		c("b", 1),
		c("b", 2),
		UnionOp{L: 1, R: 2},
		ProductOp{L: 0, R: 3},
		SelectOp{Input: 4, Conds: []EqCond{{L: "a", R: "b"}}},
	)
	if tbl.Len() != 1 {
		t.Errorf("select rows = %v", tbl.Rows)
	}
	// Constant condition.
	tbl = runPlan(t, ix,
		c("a", 1),
		c("a", 2),
		UnionOp{L: 0, R: 1},
		SelectOp{Input: 2, Conds: []EqCond{{L: "a", C: value.NewInt(2)}}},
	)
	if tbl.Len() != 1 || tbl.Rows[0][0] != value.NewInt(2) {
		t.Errorf("const select rows = %v", tbl.Rows)
	}
	mustFail(t, ix, "select on missing column",
		c("a", 1),
		SelectOp{Input: 0, Conds: []EqCond{{L: "zz", C: value.NewInt(1)}}},
	)
}

func TestFetchOpValidation(t *testing.T) {
	ix := opsIndexed(t)
	psi1 := psi().Constraints[0] // Accident(date -> aid, 610)
	// Wrong X column count.
	mustFail(t, ix, "fetch X arity",
		c("d", 1),
		FetchOp{Input: 0, Constraint: psi1, XCols: nil, YOut: []string{"aid"}},
	)
	// Wrong Y name count.
	mustFail(t, ix, "fetch Y arity",
		c("d", 1),
		FetchOp{Input: 0, Constraint: psi1, XCols: []string{"d"}, YOut: nil},
	)
	// Constraint without an index in the schema.
	foreign := access.NewConstraint("Accident",
		attrs("district"), attrs("aid"), 9)
	mustFail(t, ix, "fetch without index",
		c("d", 1),
		FetchOp{Input: 0, Constraint: foreign, XCols: []string{"d"}, YOut: []string{"aid"}},
	)
	// Fetch key missing from the index: empty result, not an error.
	tbl := runPlan(t, ix,
		ConstOp{Col: "d", Val: value.NewString("no-such-date")},
		FetchOp{Input: 0, Constraint: psi1, XCols: []string{"d"}, YOut: []string{"aid"}},
	)
	if tbl.Len() != 0 {
		t.Errorf("missing key should fetch nothing: %v", tbl.Rows)
	}
}

func TestFetchEquatedYColumns(t *testing.T) {
	ix := opsIndexed(t)
	psi3 := psi().Constraints[2] // Accident(aid -> district date, 1)
	// Fetch (district, date) but demand date equals the input column d:
	// reuse the X column name in YOut to force the equality check.
	tbl := runPlan(t, ix,
		ConstOp{Col: "aid", Val: value.NewInt(1)},
		FetchOp{Input: 0, Constraint: psi3, XCols: []string{"aid"},
			YOut: []string{"dist", "dist"}}, // district must equal date: impossible
	)
	if tbl.Len() != 0 {
		t.Errorf("district never equals date in the fixture: %v", tbl.Rows)
	}
}
