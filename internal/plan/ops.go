package plan

import (
	"fmt"
	"strings"

	"repro/internal/access"
	"repro/internal/value"
)

// Op is one plan operation δ_i. Inputs reference earlier steps by index
// (the paper's T_j with j < i).
type Op interface {
	// String renders the operation in the paper's notation.
	String() string
	// inputs lists referenced step indices, for validation.
	inputs() []int
}

// ConstOp is δ = {a}: a one-row, one-column table holding a constant.
type ConstOp struct {
	Col string
	Val value.Value
}

func (o ConstOp) String() string { return fmt.Sprintf("{%s} as %s", o.Val, o.Col) }
func (o ConstOp) inputs() []int  { return nil }

// EmptyOp produces an empty table with the given columns. It is the plan
// for A-unsatisfiable queries ("a query plan for empty query suffices",
// Example 3.1(2)).
type EmptyOp struct {
	Cols []string
}

func (o EmptyOp) String() string { return fmt.Sprintf("∅(%s)", strings.Join(o.Cols, ", ")) }
func (o EmptyOp) inputs() []int  { return nil }

// FetchOp is δ = fetch(X ∈ T_j, R, Y): for each (distinct) row of the
// input, look up the index of Constraint and emit the X-values extended
// with each fetched Y-projection.
//
// XCols names the input columns corresponding to Constraint.X, in order.
// YOut names the output column for each attribute of Constraint.Y; when a
// YOut name duplicates an X column or an earlier YOut (the query equates
// them), the fetched value is required to match instead of producing a
// duplicate column. An empty YOut entry drops that attribute.
type FetchOp struct {
	Input      int
	Constraint access.Constraint
	XCols      []string
	YOut       []string
}

func (o FetchOp) String() string {
	return fmt.Sprintf("fetch(%s ∈ T%d, %s, %s)",
		strings.Join(o.XCols, " "), o.Input, o.Constraint.Rel, o.Constraint)
}
func (o FetchOp) inputs() []int { return []int{o.Input} }

// outCols computes the output column list: X columns then fresh Y names.
func (o FetchOp) outCols() []string {
	out := append([]string(nil), o.XCols...)
	have := make(map[string]bool, len(out))
	for _, c := range out {
		have[c] = true
	}
	for _, y := range o.YOut {
		if y == "" || have[y] {
			continue
		}
		have[y] = true
		out = append(out, y)
	}
	return out
}

// ProjectOp is δ = π_Y(T_j) with optional renaming: output column i is
// input column Cols[i], renamed to As[i] when As is non-nil. Repeats are
// allowed (to materialize heads like Q(x, x)).
type ProjectOp struct {
	Input int
	Cols  []string
	As    []string
}

func (o ProjectOp) String() string {
	cols := o.Cols
	if o.As != nil {
		parts := make([]string, len(o.Cols))
		for i := range o.Cols {
			parts[i] = o.Cols[i] + "→" + o.As[i]
		}
		cols = parts
	}
	return fmt.Sprintf("π[%s](T%d)", strings.Join(cols, ", "), o.Input)
}
func (o ProjectOp) inputs() []int { return []int{o.Input} }

// EqCond is one selection predicate: column L equals column R (when R is
// set) or constant C (when R is empty).
type EqCond struct {
	L, R string
	C    value.Value
}

func (c EqCond) String() string {
	if c.R != "" {
		return c.L + " = " + c.R
	}
	return c.L + " = " + c.C.String()
}

// SelectOp is δ = σ_C(T_j) for a conjunction of equality conditions.
type SelectOp struct {
	Input int
	Conds []EqCond
}

func (o SelectOp) String() string {
	parts := make([]string, len(o.Conds))
	for i, c := range o.Conds {
		parts[i] = c.String()
	}
	return fmt.Sprintf("σ[%s](T%d)", strings.Join(parts, " ∧ "), o.Input)
}
func (o SelectOp) inputs() []int { return []int{o.Input} }

// ProductOp is δ = T_j × T_k. Column names must be disjoint.
type ProductOp struct {
	L, R int
}

func (o ProductOp) String() string { return fmt.Sprintf("T%d × T%d", o.L, o.R) }
func (o ProductOp) inputs() []int  { return []int{o.L, o.R} }

// JoinOp is the natural join T_j ⋈ T_k on shared column names. It is not a
// primitive of the paper's plan grammar but the standard σ(×) fusion; the
// builder can lower it to ρ/×/σ/π (see BuildOptions.LowerJoins), and the
// ablation benchmark measures the difference.
type JoinOp struct {
	L, R int
}

func (o JoinOp) String() string { return fmt.Sprintf("T%d ⋈ T%d", o.L, o.R) }
func (o JoinOp) inputs() []int  { return []int{o.L, o.R} }

// UnionOp is δ = T_j ∪ T_k. Column counts must agree.
type UnionOp struct {
	L, R int
}

func (o UnionOp) String() string { return fmt.Sprintf("T%d ∪ T%d", o.L, o.R) }
func (o UnionOp) inputs() []int  { return []int{o.L, o.R} }

// DiffOp is δ = T_j − T_k. Column counts must agree.
type DiffOp struct {
	L, R int
}

func (o DiffOp) String() string { return fmt.Sprintf("T%d − T%d", o.L, o.R) }
func (o DiffOp) inputs() []int  { return []int{o.L, o.R} }

// RenameOp is δ = ρ(T_j), renaming columns From[i] to To[i].
type RenameOp struct {
	Input    int
	From, To []string
}

func (o RenameOp) String() string {
	parts := make([]string, len(o.From))
	for i := range o.From {
		parts[i] = o.From[i] + "→" + o.To[i]
	}
	return fmt.Sprintf("ρ[%s](T%d)", strings.Join(parts, ", "), o.Input)
}
func (o RenameOp) inputs() []int { return []int{o.Input} }

// Plan is a full query plan ξ(Q,R): an operation sequence whose last step
// is the query answer.
type Plan struct {
	// Label names the query the plan answers.
	Label string
	Steps []Op
	// OutCols documents the final table's column names (the free variables).
	OutCols []string
}

// Validate checks step references are acyclic (strictly backward).
func (p *Plan) Validate() error {
	for i, op := range p.Steps {
		for _, j := range op.inputs() {
			if j < 0 || j >= i {
				return fmt.Errorf("plan: step T%d references T%d (must be earlier)", i, j)
			}
		}
	}
	if len(p.Steps) == 0 {
		return fmt.Errorf("plan: empty plan")
	}
	return nil
}

// FetchCount returns the number of fetch operations.
func (p *Plan) FetchCount() int {
	n := 0
	for _, op := range p.Steps {
		if _, ok := op.(FetchOp); ok {
			n++
		}
	}
	return n
}

// String renders the plan as the paper's T1 = δ1, ..., Tn = δn list.
func (p *Plan) String() string {
	var b strings.Builder
	label := p.Label
	if label == "" {
		label = "ξ"
	}
	fmt.Fprintf(&b, "plan %s:\n", label)
	for i, op := range p.Steps {
		fmt.Fprintf(&b, "  T%d = %s\n", i, op)
	}
	fmt.Fprintf(&b, "  answer: T%d(%s)", len(p.Steps)-1, strings.Join(p.OutCols, ", "))
	return b.String()
}

// BoundedlyEvaluable reports whether the plan is boundedly evaluable under
// the access schema embedded in its fetch ops (definition in Section 2):
// every fetch is backed by a constraint (true by construction here) and the
// plan length is at most exponential in the input sizes — we check the much
// stronger practical bound maxLen.
func (p *Plan) BoundedlyEvaluable(maxLen int) bool {
	return len(p.Steps) <= maxLen
}
