package bench

// BenchmarkQ0Query pins the end-to-end serving cost of the standard
// bounded query — plan-cache hit, bounded execution, result assembly —
// on the accidents workload. Run with -benchmem: the B/op figure is the
// executor's per-query allocation budget, the first thing that creeps
// when a hot-path change starts boxing rows again.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func BenchmarkQ0Query(b *testing.B) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 30, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(acc.Instance); err != nil {
		b.Fatal(err)
	}
	q := workload.Q0()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(context.Background(), q); err != nil {
			b.Fatal(err)
		}
	}
}
