package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/workload"
)

// E12LiveUpdates measures the live-update subsystem on the accidents
// workload, two ways:
//
//	(a) ingest cost — applying a small delta incrementally (Engine.Apply)
//	    versus the stop-the-world alternative (materialize the updated
//	    instance, Engine.Load rebuilds every index and re-validates), as
//	    |D| grows: Apply's cost tracks the delta, Load's tracks |D|.
//	(b) serving under writes — Q0 throughput with and without a
//	    background update stream: snapshot isolation means writers never
//	    block readers, so QPS should degrade only by the CPU the writer
//	    steals.
func E12LiveUpdates(days []int, batches int) (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "live updates — incremental Apply vs Load+rebuild, and QPS under a write stream",
		Header: []string{"setting", "|D| (tuples)", "apply µs/batch", "reload µs/batch", "speedup"},
	}
	for _, d := range days {
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: d, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		eng, err := core.New(acc.Schema, acc.Access, core.Options{})
		if err != nil {
			return nil, err
		}
		if err := eng.Load(acc.Instance); err != nil {
			return nil, err
		}
		st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
			InsertAccidents: 5, DeleteAccidents: 2, Seed: 7,
		})
		if err != nil {
			return nil, err
		}
		deltas := make([]*live.Delta, batches)
		for i := range deltas {
			deltas[i] = st.Next()
		}

		applyUS := timeIt(func() error {
			for _, delta := range deltas {
				if _, err := eng.Apply(context.Background(), delta); err != nil {
					return err
				}
			}
			return nil
		})
		if applyUS < 0 {
			return nil, fmt.Errorf("bench: E12 apply failed")
		}

		// The stop-the-world alternative: same deltas, but each batch
		// re-loads the full updated instance (index rebuild + validation).
		reload, err := core.New(acc.Schema, acc.Access, core.Options{})
		if err != nil {
			return nil, err
		}
		acc2, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: d, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		if err := reload.Load(acc2.Instance); err != nil {
			return nil, err
		}
		st2, err := workload.NewAccidentStream(acc2, workload.AccidentStreamConfig{
			InsertAccidents: 5, DeleteAccidents: 2, Seed: 7,
		})
		if err != nil {
			return nil, err
		}
		deltas2 := make([]*live.Delta, batches)
		for i := range deltas2 {
			deltas2[i] = st2.Next()
		}
		reloadUS := timeIt(func() error {
			for _, delta := range deltas2 {
				res, err := live.Apply(context.Background(), delta, reload.Indexed())
				if err != nil {
					return err
				}
				if err := reload.Load(res.Instance); err != nil {
					return err
				}
			}
			return nil
		})
		if reloadUS < 0 {
			return nil, fmt.Errorf("bench: E12 reload failed")
		}
		t.AddRow(fmt.Sprintf("ingest %d-op batches", deltas[0].Len()),
			acc.Instance.Size(), applyUS/float64(batches), reloadUS/float64(batches),
			reloadUS/maxF(applyUS, 0.01))
		if d == days[len(days)-1] {
			t.AddMetric("apply_us_per_batch", applyUS/float64(batches), "us")
			t.AddMetric("reload_us_per_batch", reloadUS/float64(batches), "us")
			t.AddMetric("apply_speedup", reloadUS/maxF(applyUS, 0.01), "x")
		}
	}

	// (b) Q0 QPS with and without a background writer, on the largest |D|.
	qps, qpsUnderWrites, err := qpsUnderStream(days[len(days)-1])
	if err != nil {
		return nil, err
	}
	t.AddRow("Q0 QPS idle writer", "-", fmt.Sprintf("%.0f q/s", qps), "-", "-")
	t.AddRow("Q0 QPS under write stream", "-", fmt.Sprintf("%.0f q/s", qpsUnderWrites), "-", "-")
	t.AddMetric("qps_idle", qps, "q/s")
	t.AddMetric("qps_under_writes", qpsUnderWrites, "q/s")
	t.Notes = append(t.Notes,
		"apply cost tracks the delta size; reload cost tracks |D| — the gap widens as the dataset grows",
		"snapshot isolation: the write stream never blocks readers, so QPS under writes stays the same order")
	return t, nil
}

// qpsUnderStream measures materialized Q0 queries per second over ~100ms
// windows, first with no writer, then with a goroutine applying stream
// batches back-to-back.
func qpsUnderStream(days int) (float64, float64, error) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: days, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		return 0, 0, err
	}
	eng, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		return 0, 0, err
	}
	if err := eng.Load(acc.Instance); err != nil {
		return 0, 0, err
	}
	q := workload.Q0()
	measure := func() (float64, error) {
		const window = 100 * time.Millisecond
		n := 0
		start := time.Now()
		for time.Since(start) < window {
			if _, err := eng.Query(context.Background(), q, core.WithFallback(core.FallbackRefuse)); err != nil {
				return 0, err
			}
			n++
		}
		return float64(n) / time.Since(start).Seconds(), nil
	}
	idle, err := measure()
	if err != nil {
		return 0, 0, err
	}

	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 5, DeleteAccidents: 2, Seed: 7,
	})
	if err != nil {
		return 0, 0, err
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	var applyErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := eng.Apply(context.Background(), st.Next()); err != nil {
				applyErr = err
				return
			}
		}
	}()
	busy, err := measure()
	stop.Store(true)
	wg.Wait()
	if err != nil {
		return 0, 0, err
	}
	if applyErr != nil {
		return 0, 0, applyErr
	}
	return idle, busy, nil
}
