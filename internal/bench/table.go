// Package bench drives the experiments of EXPERIMENTS.md: every empirical
// claim in the paper (Example 1.1's access arithmetic, the Introduction's
// coverage-rate and speedup claims, Table 1's complexity behaviour, the
// envelope and specialization examples) has a driver here that regenerates
// the corresponding table. cmd/bebench is the CLI entry point and the
// repository benchmarks (bench_test.go) reuse the same drivers.
package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Metrics are the machine-readable headline numbers of the
	// experiment — what bebench -json persists as BENCH_<ID>.json so the
	// perf trajectory survives across commits and CI can diff it.
	Metrics []Metric
}

// Metric is one named headline number.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// AddMetric records a headline number on the table.
func (t *Table) AddMetric(name string, value float64, unit string) {
	t.Metrics = append(t.Metrics, Metric{Name: name, Value: value, Unit: unit})
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render produces an aligned ASCII table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len([]rune(c)); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
