package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow(1, "x")
	tb.AddRow("long-cell", 3.14159)
	tb.Notes = append(tb.Notes, "a note")
	out := tb.Render()
	for _, want := range []string{"== T: demo ==", "a", "bb", "long-cell", "3.14", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func cell(t *testing.T, tb *Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d):\n%s", tb.ID, row, col, tb.Render())
	}
	return tb.Rows[row][col]
}

func cellInt(t *testing.T, tb *Table, row, col int) int64 {
	t.Helper()
	n, err := strconv.ParseInt(cell(t, tb, row, col), 10, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) of %s is not an int: %v", row, col, tb.ID, err)
	}
	return n
}

// E1's defining shape: fetched stays flat while scanned grows with |D|.
func TestE1BoundedAccessFlat(t *testing.T) {
	tb, err := E1ScaleSweep([]int{3, 12, 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	f0 := cellInt(t, tb, 0, 1)
	f2 := cellInt(t, tb, 2, 1)
	if f0 != f2 {
		t.Errorf("fetched must be flat across scales: %d vs %d", f0, f2)
	}
	s0 := cellInt(t, tb, 0, 2)
	s2 := cellInt(t, tb, 2, 2)
	if s2 <= s0 {
		t.Errorf("baseline scan must grow with |D|: %d vs %d", s0, s2)
	}
	// Static bound dominates actual fetches.
	if cellInt(t, tb, 2, 4) < f2 {
		t.Errorf("static bound %d below actual %d", cellInt(t, tb, 2, 4), f2)
	}
}

func TestE2Polynomial(t *testing.T) {
	tb, err := E2CQPScaling([]int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Both chain queries are covered.
	for i := range tb.Rows {
		if cell(t, tb, i, 2) != "true" {
			t.Errorf("chain query %d should be covered", i)
		}
	}
}

func TestE3DominanceCovered(t *testing.T) {
	tb, err := E3UCQCoverage([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		if cell(t, tb, i, 2) != "true" {
			t.Errorf("row %d: UCQ should remain covered (dominance holds)", i)
		}
	}
}

// E4's shape: a large majority of the anchored workload is bounded under
// discovered constraints, and more than under the four ψ constraints.
func TestE4CoverageMajority(t *testing.T) {
	tb, err := E4CoverageRate(60, 700)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	bPsi := cellInt(t, tb, 0, 3)
	bDisc := cellInt(t, tb, 1, 3)
	if bDisc < bPsi {
		t.Errorf("discovered constraints should bound at least as many queries: %d vs %d", bDisc, bPsi)
	}
	if bDisc*2 < 60 {
		t.Errorf("discovered constraints should bound a majority of the anchored workload: %d/60", bDisc)
	}
}

func TestE6PatternsMixAndGap(t *testing.T) {
	tb, err := E6GraphPatterns(600)
	if err != nil {
		t.Fatal(err)
	}
	coveredRows, uncovered := 0, 0
	for i := range tb.Rows {
		if cell(t, tb, i, 1) == "true" {
			coveredRows++
			fetched := cellInt(t, tb, i, 2)
			scanned := cellInt(t, tb, i, 3)
			if fetched >= scanned {
				t.Errorf("pattern %s: fetched %d not below scanned %d", cell(t, tb, i, 0), fetched, scanned)
			}
		} else {
			uncovered++
		}
	}
	if coveredRows < 4 || uncovered < 2 {
		t.Errorf("expected ≥4 covered and ≥2 uncovered patterns: %d/%d", coveredRows, uncovered)
	}
}

func TestE7EnvelopeBoundsHold(t *testing.T) {
	tb, err := E7Envelopes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		if got := cell(t, tb, i, 4); got != "true" && got != "-" {
			t.Errorf("row %q: bound violated or case failed:\n%s", cell(t, tb, i, 0), tb.Render())
		}
	}
}

func TestE8QSPShapes(t *testing.T) {
	tb, err := E8QSP([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: Example 5.1 finds [date].
	if cell(t, tb, 0, 2) != "true" || !strings.Contains(cell(t, tb, 0, 3), "date") {
		t.Errorf("Example 5.1 row wrong: %v", tb.Rows[0])
	}
	// Exact tries grow with n; greedy finds full-size solutions too.
	for i := 1; i < len(tb.Rows); i++ {
		if cell(t, tb, i, 2) != "true" {
			t.Errorf("MSC row %d should find a solution", i)
		}
	}
}

func TestE9SublinearGrowth(t *testing.T) {
	tb, err := E9GeneralConstraints([]int{1 << 8, 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	f0 := cellInt(t, tb, 0, 2)
	f1 := cellInt(t, tb, 1, 2)
	s1 := cellInt(t, tb, 1, 3)
	if f1 < f0 {
		t.Errorf("fetched should grow (log bound): %d then %d", f0, f1)
	}
	if f1*100 > s1 {
		t.Errorf("fetched %d should be far below scanned %d", f1, s1)
	}
}

func TestE10AllVerdictsAgree(t *testing.T) {
	tb, err := E10PaperExamples()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatalf("expected ≥5 fixtures, got %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if cell(t, tb, i, 3) != "true" {
			t.Errorf("fixture %q disagrees with the paper:\n%s", cell(t, tb, i, 0), tb.Render())
		}
	}
}

// E11's defining shape: cached planning beats cold planning, and every
// parallel configuration returns the same answers as workers=1 (wall-clock
// speedup is hardware-dependent, so only result identity is asserted).
func TestE11CacheWinsAndParallelAgrees(t *testing.T) {
	tb, err := E11Concurrency(400, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb.Render())
	}
	cold, err1 := strconv.ParseFloat(cell(t, tb, 0, 1), 64)
	hit, err2 := strconv.ParseFloat(cell(t, tb, 1, 1), 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("bad timing cells:\n%s", tb.Render())
	}
	if hit >= cold {
		t.Errorf("cached planning (%v µs) must beat cold synthesis (%v µs)", hit, cold)
	}
	if got := cell(t, tb, 3, 3); got != "true" {
		t.Errorf("parallel execution must return identical answers: %q", got)
	}
}

func TestE12ApplyBeatsReload(t *testing.T) {
	tb, err := E12LiveUpdates([]int{10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb.Render())
	}
	apply, err1 := strconv.ParseFloat(cell(t, tb, 0, 2), 64)
	reload, err2 := strconv.ParseFloat(cell(t, tb, 0, 3), 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("bad timing cells:\n%s", tb.Render())
	}
	if apply >= reload {
		t.Errorf("incremental apply (%v µs) should beat load+rebuild (%v µs) on small deltas", apply, reload)
	}
}

// E13's defining shape: every shard count returns the same answer rows
// as K=1 (the "same as K=1" column), for both workloads. Throughput
// ordering is hardware-dependent (single-core CI flattens it), so only
// result identity is asserted.
func TestE13ShardCountsAgree(t *testing.T) {
	tb, err := E13Sharding([]int{1, 2, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb.Render())
	}
	for i := range tb.Rows {
		if cell(t, tb, i, 5) != "true" {
			t.Errorf("row %d: sharded rows differ from K=1:\n%s", i, tb.Render())
		}
	}
}

// E14's defining shape: the HTTP path answers the same rows as the
// in-process path (checked inside the driver, which errors otherwise),
// and both QPS figures are positive. The overhead ratio itself is
// hardware-dependent, so it is reported, not asserted.
func TestE14WirePathAgrees(t *testing.T) {
	tb, err := E14NetworkServing(2, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb.Render())
	}
	if cell(t, tb, 0, 4) != cell(t, tb, 1, 4) {
		t.Errorf("wire row count differs from in-process:\n%s", tb.Render())
	}
	for i := range tb.Rows {
		qps, err := strconv.ParseFloat(cell(t, tb, i, 2), 64)
		if err != nil || qps <= 0 {
			t.Errorf("row %d: bad QPS cell %q:\n%s", i, cell(t, tb, i, 2), tb.Render())
		}
	}
}

// E15's defining shape: restart-by-recovery must beat cold TSV
// re-ingest. The PR's acceptance floor is 3x; the test asserts 2x so a
// noisy CI box cannot flake a genuinely healthy ratio, while the
// committed BENCH_E15.json records the real measurement.
func TestE15RecoveryBeatsColdIngest(t *testing.T) {
	tb, err := E15Durability(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Metrics) != 3 || tb.Metrics[2].Name != "recovery_speedup" {
		t.Fatalf("metrics = %+v", tb.Metrics)
	}
	if speedup := tb.Metrics[2].Value; speedup < 2 {
		t.Errorf("recovery speedup %.2fx, want comfortably above 1 (acceptance floor 3x at full scale):\n%s",
			speedup, tb.Render())
	}
}

// E17's defining shape: the coordinator paths answer the same rows as
// the in-process path (checked inside the driver, which errors
// otherwise), and every QPS figure is positive. The fan-out overhead
// ratios are hardware-dependent, so they are reported, not asserted.
func TestE17ClusterPathAgrees(t *testing.T) {
	tb, err := E17DistributedServing(2, 50*time.Millisecond, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// in-process, coordinator K=2, HTTP + coordinator K=2.
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb.Render())
	}
	for i := range tb.Rows {
		if cell(t, tb, i, 4) != cell(t, tb, 0, 4) {
			t.Errorf("row %d: cluster rows differ from in-process:\n%s", i, tb.Render())
		}
		qps, err := strconv.ParseFloat(cell(t, tb, i, 2), 64)
		if err != nil || qps <= 0 {
			t.Errorf("row %d: bad QPS cell %q:\n%s", i, cell(t, tb, i, 2), tb.Render())
		}
	}
}
