package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// E16TraceOverhead measures what the request-scoped tracing added by
// internal/obs costs the serving path, two ways:
//
//	(a) disabled — the common case. An untraced request pays exactly one
//	    atomic load per record site (obs.FromContext's guard). The guard
//	    is timed directly on a traceless context, the per-request site
//	    count is taken from a traced run's span tree (every span is at
//	    least one guarded site), and the overhead is modeled as
//	    guard_ns × sites / query_ns. The serving claim — tracing you
//	    don't use is free — requires this under 2%.
//	(b) enabled — what "profile": true or a slow-query log costs when it
//	    actually fires: measured Q0 throughput with a fresh trace per
//	    request versus none.
func E16TraceOverhead(days int, window time.Duration) (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "tracing overhead — disabled-path guard cost and traced-request QPS",
		Header: []string{"setting", "QPS", "overhead"},
	}
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: days, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	eng, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		return nil, err
	}
	if err := eng.Load(acc.Instance); err != nil {
		return nil, err
	}
	q := workload.Q0()

	// (a) The disabled-path guard: FromContext on a context with no
	// trace attached and no trace live anywhere — the exact state of
	// every request when neither -profile nor the slow log is on.
	guardCtx := context.Background()
	const guardReps = 1_000_000
	start := time.Now()
	for i := 0; i < guardReps; i++ {
		if tr := obs.FromContext(guardCtx); tr != nil {
			return nil, fmt.Errorf("bench: E16 guard found a trace on a bare context")
		}
	}
	guardNS := float64(time.Since(start).Nanoseconds()) / guardReps

	// Count the guarded sites one request actually crosses: every span
	// of a traced run is at least one FromContext (or tr == nil) check.
	tr := obs.NewTrace("query")
	if _, err := eng.Query(obs.NewContext(context.Background(), tr), q); err != nil {
		return nil, err
	}
	sites := countSpans(tr.Finish())

	// (b) Measured throughput, untraced vs a fresh trace per request.
	qps := func(traced bool) (float64, error) {
		n := 0
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			ctx := context.Background()
			var tr *obs.Trace
			if traced {
				tr = obs.NewTrace("query")
				ctx = obs.NewContext(ctx, tr)
			}
			if _, err := eng.Query(ctx, q); err != nil {
				return 0, err
			}
			tr.Finish()
			n++
		}
		return float64(n) / window.Seconds(), nil
	}
	plain, err := qps(false)
	if err != nil {
		return nil, err
	}
	traced, err := qps(true)
	if err != nil {
		return nil, err
	}

	queryNS := 1e9 / maxF(plain, 0.01)
	disabledPct := guardNS * float64(sites) / queryNS * 100
	enabledPct := (plain - traced) / maxF(plain, 0.01) * 100

	t.AddRow("tracing disabled (guard only)", fmt.Sprintf("%.0f", plain),
		fmt.Sprintf("%.4f%% (modeled: %.1fns × %d sites)", disabledPct, guardNS, sites))
	t.AddRow("tracing enabled (full span tree)", fmt.Sprintf("%.0f", traced),
		fmt.Sprintf("%.1f%%", enabledPct))
	t.AddMetric("qps_plain", plain, "q/s")
	t.AddMetric("qps_traced", traced, "q/s")
	t.AddMetric("guard_ns", guardNS, "ns")
	t.AddMetric("trace_sites_per_query", float64(sites), "sites")
	t.AddMetric("disabled_overhead_pct", disabledPct, "%")
	t.AddMetric("enabled_overhead_pct", enabledPct, "%")
	t.Notes = append(t.Notes,
		"disabled overhead is modeled (guard cost × guarded sites / query time): the acceptance gate is < 2%",
		"the guard is one atomic load — bevet's hotpathalloc proves the disabled record path allocates nothing",
		"enabled overhead is what \"profile\": true or a firing slow-query log pays; it is opt-in per request")
	return t, nil
}

// countSpans sizes a span tree, root included.
func countSpans(s *obs.Span) int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children {
		n += countSpans(c)
	}
	return n
}
