package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/workload"
)

// E15Durability measures what the durable subsystem buys on restart:
// recovering an engine from its data directory (binary checkpoint decode
// + WAL replay of the post-checkpoint deltas, no index rebuild, no
// re-validation) versus the cold path a durability-free server is stuck
// with — re-parsing the full instance from TSV and Engine.Load rebuilding
// every index and re-checking every constraint. The setup applies
// `deltas` stream batches with a checkpoint two deltas before the end —
// the shape beserve actually produces, since it checkpoints on SIGTERM
// and on every admin trigger, so a crash loses only a short WAL tail —
// and recovery exercises both halves of its job: checkpoint decode plus
// tail replay. Times are medians of five runs; the headline speedup is
// the committed BENCH_E15.json trajectory number (the PR's acceptance
// floor is 3×).
func E15Durability(days, deltas int) (*Table, error) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: days, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	dataDir, err := os.MkdirTemp("", "bench-e15-durable-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dataDir)
	tsvDir, err := os.MkdirTemp("", "bench-e15-tsv-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tsvDir)

	ctx := context.Background()
	eng, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		return nil, err
	}
	if _, err := eng.Durable(ctx, dataDir, nil); err != nil {
		return nil, err
	}
	if err := eng.Load(acc.Instance); err != nil {
		return nil, err
	}
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 5, DeleteAccidents: 2, Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i <= deltas; i++ {
		if _, err := eng.Apply(ctx, st.Next()); err != nil {
			return nil, err
		}
		if i == deltas-2 {
			if _, err := eng.Checkpoint(ctx); err != nil {
				return nil, err
			}
		}
	}
	size := eng.Stats().Size
	version := eng.Stats().Version
	// The cold path must ingest the same final state, so export it.
	if err := load.SaveInstance(eng.Instance(), tsvDir); err != nil {
		return nil, err
	}
	if err := eng.CloseDurable(); err != nil {
		return nil, err
	}

	recMS, err := medianMS(5, func() error {
		e, err := core.New(acc.Schema, acc.Access, core.Options{})
		if err != nil {
			return err
		}
		restored, err := e.Durable(ctx, dataDir, nil)
		if err != nil {
			return err
		}
		if !restored || e.Stats().Version != version || e.Stats().Size != size {
			return fmt.Errorf("bench: recovery landed on version %d size %d, want %d/%d",
				e.Stats().Version, e.Stats().Size, version, size)
		}
		return e.CloseDurable()
	})
	if err != nil {
		return nil, err
	}
	coldMS, err := medianMS(5, func() error {
		d, err := load.LoadInstance(acc.Schema, tsvDir)
		if err != nil {
			return err
		}
		e, err := core.New(acc.Schema, acc.Access, core.Options{})
		if err != nil {
			return err
		}
		return e.Load(d)
	})
	if err != nil {
		return nil, err
	}
	speedup := coldMS / recMS

	t := &Table{
		ID:     "E15",
		Title:  "durability — restart via checkpoint+WAL replay vs cold TSV re-ingest",
		Header: []string{"path", "ms (median of 5)", "|D| (tuples)", "version"},
	}
	t.AddRow("recover (checkpoint + WAL replay)", fmt.Sprintf("%.2f", recMS), size, version)
	t.AddRow("cold ingest (TSV parse + Load)", fmt.Sprintf("%.2f", coldMS), size, version)
	t.Notes = append(t.Notes,
		fmt.Sprintf("recovery is %.1fx faster: the checkpoint restores tuples and index buckets verbatim, skipping parse, validation and index build; the WAL contributes only the %d post-checkpoint deltas", speedup, 2))
	t.AddMetric("recovery_ms", recMS, "ms")
	t.AddMetric("cold_ingest_ms", coldMS, "ms")
	t.AddMetric("recovery_speedup", speedup, "x")
	return t, nil
}

// medianMS runs f n times and returns the median wall-clock milliseconds.
// One unmeasured warmup run and a GC barrier before every timed run keep
// allocator debt from earlier phases (setup, the other path's runs) out
// of the numbers — without them the first timed run absorbs whatever
// garbage the previous phase left behind and the medians swing wildly.
func medianMS(n int, f func() error) (float64, error) {
	if err := f(); err != nil {
		return 0, err
	}
	times := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		runtime.GC()
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, float64(time.Since(start).Microseconds())/1000)
	}
	sort.Float64s(times)
	return times[len(times)/2], nil
}
