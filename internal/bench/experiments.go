package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/access"
	"repro/internal/ainstance"
	"repro/internal/bep"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/envelope"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/specialize"
	"repro/internal/value"
	"repro/internal/workload"
)

func iv(i int64) value.Value                          { return value.NewInt(i) }
func attrs(as ...schema.Attribute) []schema.Attribute { return as }

// E1ScaleSweep reproduces Example 1.1's headline: Q0 answered by fetching
// a bounded number of tuples regardless of |D|, versus a full-scan
// baseline whose cost grows linearly. days scales the dataset.
func E1ScaleSweep(days []int) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Example 1.1 — bounded plan vs full scan as |D| grows",
		Header: []string{"|D| (tuples)", "fetched (bounded)", "scanned (baseline)", "ratio", "static bound"},
	}
	for _, d := range days {
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: d, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		eng, err := core.New(acc.Schema, acc.Access, core.Options{})
		if err != nil {
			return nil, err
		}
		if err := eng.Load(acc.Instance); err != nil {
			return nil, err
		}
		q := workload.Q0()
		res, err := eng.Query(context.Background(), q, core.WithFallback(core.FallbackRefuse))
		if err != nil {
			return nil, err
		}
		base, err := eng.Baseline(q, eval.HashJoin)
		if err != nil {
			return nil, err
		}
		ratio := float64(base.Scanned) / float64(maxI64(res.Stats.Fetched, 1))
		t.AddRow(acc.Instance.Size(), res.Stats.Fetched, base.Scanned, ratio, res.Bound.Fetched)
	}
	t.Notes = append(t.Notes,
		"paper hand-derives ≤ 610 + 610·192·2 = 234850 fetched for Q0; our plan re-verifies atoms, giving the same order",
		"the 'fetched' column must stay flat as |D| grows — that is bounded evaluability")
	return t, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// E2CQPScaling measures the PTIME covered-query check (Theorem 3.11(3)):
// wall-clock per check as the query's atom count grows.
func E2CQPScaling(sizes []int) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "CQP(CQ) is PTIME — coverage check time vs query size",
		Header: []string{"atoms", "check time (µs)", "covered"},
	}
	s := workload.AccidentSchema()
	a := workload.AccidentConstraints()
	for _, n := range sizes {
		q := chainQuery(n)
		const reps = 50
		start := time.Now()
		var res *cover.Result
		var err error
		for r := 0; r < reps; r++ {
			res, err = cover.Check(q, a, s, cover.Options{})
			if err != nil {
				return nil, err
			}
		}
		el := time.Since(start)
		t.AddRow(n, float64(el.Microseconds())/reps, res.Covered)
	}
	t.Notes = append(t.Notes, "time grows polynomially (near-linearly) in the atom count")
	return t, nil
}

// chainQuery builds a Casualty-joined chain of n atoms anchored on a date.
func chainQuery(n int) *cq.CQ {
	q := &cq.CQ{Label: fmt.Sprintf("chain%d", n), Free: []string{"a0"}}
	q.Atoms = append(q.Atoms, cq.NewAtom("Accident", cq.Var("a0"), cq.Var("d0"), cq.Var("t0")))
	q.Eqs = append(q.Eqs, cq.Eq{L: cq.Var("t0"), R: cq.Const(value.NewString("1/5/2005"))})
	for i := 1; i < n; i++ {
		q.Atoms = append(q.Atoms, cq.NewAtom("Casualty",
			cq.Var(fmt.Sprintf("c%d", i)), cq.Var("a0"),
			cq.Var(fmt.Sprintf("k%d", i)), cq.Var(fmt.Sprintf("v%d", i))))
	}
	return q
}

// E3UCQCoverage contrasts Theorem 3.14's two regimes: per-sub coverage is
// PTIME, but the dominance check enumerates A-instances (Πᵖ₂ behaviour),
// with cost exploding in the uncovered sub-query's variable count.
func E3UCQCoverage(varCounts []int) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "CQP(UCQ) — dominance check cost vs tableau variables",
		Header: []string{"vars in uncovered sub", "UCQ check time (µs)", "covered"},
	}
	s := schema.MustNew(schema.MustRelation("Rp", "A", "B", "C"))
	ap := access.NewSchema(access.NewConstraint("Rp", attrs("A"), attrs("B"), 4))
	for _, n := range varCounts {
		q1 := &cq.CQ{Label: "Q1", Free: []string{"y"},
			Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
			Eqs:   []cq.Eq{{L: cq.Var("x"), R: cq.Const(iv(1))}}}
		// Uncovered sub with a growing tail of fresh variables.
		q2 := &cq.CQ{Label: "Q2", Free: []string{"y"},
			Atoms: []cq.Atom{cq.NewAtom("Rp", cq.Var("x"), cq.Var("y"), cq.Var("z"))},
			Eqs: []cq.Eq{
				{L: cq.Var("x"), R: cq.Const(iv(1))},
				{L: cq.Var("z"), R: cq.Var("y")},
			}}
		for i := 3; i < n; i++ {
			q2.Atoms = append(q2.Atoms, cq.NewAtom("Rp",
				cq.Var("x"), cq.Var(fmt.Sprintf("w%d", i)), cq.Var(fmt.Sprintf("u%d", i))))
		}
		start := time.Now()
		res, err := cover.CheckUCQ([]*cq.CQ{q1, q2}, ap, s, cover.Options{
			AInstance: ainstance.Options{MaxVars: 12},
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(n, float64(time.Since(start).Microseconds()), res.Covered)
	}
	t.Notes = append(t.Notes, "exponential growth in the variable count is Theorem 3.14's Πᵖ₂-hardness showing up empirically")
	return t, nil
}

// E4CoverageRate reproduces the Introduction's workload measurement: the
// fraction of (mostly anchored) random CQs that are boundedly evaluable
// under constraints discovered from the data. The paper reports 77% under
// 84 constraints on the UK accident data.
func E4CoverageRate(nQueries int, discoverMaxBound int) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "coverage rate of a random CQ workload (paper: 77% under 84 constraints)",
		Header: []string{"constraint set", "#constraints", "covered", "bounded (BEP)", "rate"},
	}
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 20, AccidentsPerDay: 30, MaxVehicles: 5, Seed: 2,
	})
	if err != nil {
		return nil, err
	}
	consts := map[schema.Attribute][]cq.Term{
		"date":     {cq.Const(value.NewString(workload.DateName(0))), cq.Const(value.NewString(workload.DateName(1)))},
		"district": {cq.Const(value.NewString(workload.Districts[0])), cq.Const(value.NewString(workload.Districts[1]))},
		"aid":      {cq.Const(iv(3))},
		"vid":      {cq.Const(iv(5))},
		"cid":      {cq.Const(iv(7))},
	}
	qs, err := workload.RandomCQs(acc.Schema, workload.RandomCQConfig{
		Queries: nQueries, MaxAtoms: 4, StartProb: 0.85, FreeVars: 2, Seed: 3,
	}, consts)
	if err != nil {
		return nil, err
	}
	sets := []struct {
		name string
		a    *access.Schema
	}{
		{"ψ1–ψ4 (Example 1.1)", workload.AccidentConstraints()},
		{"discovered", access.Discover(acc.Schema, acc.Instance, 1, discoverMaxBound)},
	}
	for _, set := range sets {
		covered, bounded := 0, 0
		for _, q := range qs {
			res, err := cover.Check(q, set.a, acc.Schema, cover.Options{})
			if err != nil {
				return nil, err
			}
			if res.Covered {
				covered++
			}
			dec, err := bep.Decide(q, set.a, acc.Schema, bep.Options{})
			if err != nil {
				return nil, err
			}
			if dec.Verdict != bep.Unknown {
				bounded++
			}
		}
		rate := float64(bounded) / float64(len(qs)) * 100
		t.AddRow(set.name, len(set.a.Constraints), covered, bounded, fmt.Sprintf("%.0f%%", rate))
	}
	t.Notes = append(t.Notes, "shape target: a large majority of the anchored workload is bounded under discovered constraints")
	return t, nil
}

// E5Speedup reproduces the "9 seconds vs 14 hours" shape: wall-clock of
// the bounded plan against scan-join and hash-join baselines across |D|.
func E5Speedup(days []int) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "runtime: bounded plan vs conventional evaluation (paper: 9s vs >14h)",
		Header: []string{"|D|", "bounded (µs)", "hash-join (µs)", "scan-join (µs)", "speedup vs scan"},
	}
	for _, d := range days {
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: d, AccidentsPerDay: 40, MaxVehicles: 5, Seed: 4,
		})
		if err != nil {
			return nil, err
		}
		eng, err := core.New(acc.Schema, acc.Access, core.Options{})
		if err != nil {
			return nil, err
		}
		if err := eng.Load(acc.Instance); err != nil {
			return nil, err
		}
		q := workload.Q0()
		p, _, err := eng.Plan(q)
		if err != nil {
			return nil, err
		}
		ix, _, err := access.BuildIndexed(acc.Access, acc.Instance)
		if err != nil {
			return nil, err
		}
		tb := timeIt(func() error { _, _, err := plan.Execute(p, ix); return err })
		th := timeIt(func() error { _, err := eval.CQ(q, acc.Instance, eval.HashJoin); return err })
		ts := timeIt(func() error { _, err := eval.CQ(q, acc.Instance, eval.ScanJoin); return err })
		t.AddRow(acc.Instance.Size(), tb, th, ts, fmt.Sprintf("%.0fx", ts/maxF(tb, 0.1)))
	}
	t.Notes = append(t.Notes, "bounded runtime is flat; baselines grow with |D| — the crossover is immediate beyond toy sizes")
	return t, nil
}

func timeIt(f func() error) float64 {
	start := time.Now()
	if err := f(); err != nil {
		return -1
	}
	return float64(time.Since(start).Microseconds())
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// E6GraphPatterns reproduces the graph-pattern claims: the fraction of
// pattern queries that are boundedly evaluable under degree constraints
// (paper: 60%) and the access gap on those that are.
func E6GraphPatterns(people int) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "graph pattern queries under degree-bounded access constraints (paper: 60% bounded, 4 orders faster)",
		Header: []string{"pattern", "covered", "fetched", "scanned (baseline)", "ratio"},
	}
	soc, err := workload.GenerateSocial(workload.SocialConfig{People: people, MaxFriends: 30, MaxLikes: 8, Seed: 5})
	if err != nil {
		return nil, err
	}
	eng, err := core.New(soc.Schema, soc.Access, core.Options{})
	if err != nil {
		return nil, err
	}
	if err := eng.Load(soc.Instance); err != nil {
		return nil, err
	}
	covered := 0
	qs := workload.PatternQueries(1)
	for _, q := range qs {
		res, err := eng.IsCovered(q)
		if err != nil {
			return nil, err
		}
		if !res.Covered {
			t.AddRow(q.Label, false, "-", "-", "-")
			continue
		}
		covered++
		qr, err := eng.Query(context.Background(), q, core.WithFallback(core.FallbackRefuse))
		if err != nil {
			return nil, err
		}
		base, err := eng.Baseline(q, eval.HashJoin)
		if err != nil {
			return nil, err
		}
		ratio := float64(base.Scanned) / float64(maxI64(qr.Stats.Fetched, 1))
		t.AddRow(q.Label, true, qr.Stats.Fetched, base.Scanned, fmt.Sprintf("%.0fx", ratio))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/%d patterns covered (anchored personalized patterns are; whole-graph scans are not)", covered, len(qs)))
	return t, nil
}

// E7Envelopes reproduces Section 4's worked examples and validates the
// approximation bounds empirically: Example 4.1's Qu/Ql with measured
// |Qu(D)−Q(D)| and |Q(D)−Ql(D)| against Nu/Nl, Q2's non-existence, and
// Example 4.5's split rewrite.
func E7Envelopes() (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "envelopes (Examples 4.1, 4.5) — existence and measured error vs derived bound",
		Header: []string{"case", "exists", "measured error", "derived bound", "within"},
	}
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 3))
	q1 := &cq.CQ{
		Label: "Q41_1", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("w"), cq.Var("x")),
			cq.NewAtom("R", cq.Var("y"), cq.Var("w")),
			cq.NewAtom("R", cq.Var("x"), cq.Var("z")),
		},
		Eqs: []cq.Eq{{L: cq.Var("w"), R: cq.Const(iv(1))}},
	}
	// An instance satisfying R(A -> B, 3).
	d := data.NewInstance(s)
	for _, e := range [][2]int64{{1, 2}, {1, 3}, {2, 4}, {3, 1}, {4, 1}, {2, 1}, {3, 5}, {5, 6}} {
		d.MustInsert("R", iv(e[0]), iv(e[1]))
	}
	exact, err := eval.CQ(q1, d, eval.ScanJoin)
	if err != nil {
		return nil, err
	}
	up, err := envelope.FindUpper(q1, a, s, envelope.Options{})
	if err != nil {
		return nil, err
	}
	if up.Found {
		upRes, err := eval.CQ(up.Qu, d, eval.ScanJoin)
		if err != nil {
			return nil, err
		}
		errU := setMinus(upRes.Rows, exact.Rows)
		t.AddRow("Q1 upper (Ex 4.1)", true, errU, up.Nu, errU <= int(up.Nu))
	} else {
		t.AddRow("Q1 upper (Ex 4.1)", false, "-", "-", "-")
	}
	lo, err := envelope.FindLower(q1, a, s, 1, envelope.Options{})
	if err != nil {
		return nil, err
	}
	if lo.Found {
		loRes, err := eval.CQ(lo.Ql, d, eval.ScanJoin)
		if err != nil {
			return nil, err
		}
		errL := setMinus(exact.Rows, loRes.Rows)
		t.AddRow("Q1 lower (Ex 4.1)", true, errL, lo.Nl, errL <= int(lo.Nl))
	} else {
		t.AddRow("Q1 lower (Ex 4.1)", false, "-", "-", "-")
	}
	// Q2: no envelopes.
	q2 := &cq.CQ{
		Label: "Q41_2", Free: []string{"x", "y"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("w"), cq.Var("x")),
			cq.NewAtom("R", cq.Var("y"), cq.Var("w")),
		},
		Eqs: []cq.Eq{{L: cq.Var("w"), R: cq.Const(iv(1))}},
	}
	up2, err := envelope.FindUpper(q2, a, s, envelope.Options{})
	if err != nil {
		return nil, err
	}
	lo2, err := envelope.FindLower(q2, a, s, 2, envelope.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("Q2 (Ex 4.1, unbounded)", up2.Found || lo2.Found, "-", "-", !up2.Found && !lo2.Found)
	// Example 4.5 split rewrite.
	s45 := schema.MustNew(schema.MustRelation("R", "A", "B", "C"))
	a45 := access.NewSchema(
		access.NewConstraint("R", attrs("A"), attrs("B"), 3),
		access.NewConstraint("R", attrs("B"), attrs("C"), 1),
	)
	q45 := &cq.CQ{Label: "Q45", Free: []string{"x", "y"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Const(iv(1)), cq.Var("x"), cq.Var("y"))}}
	lo45, err := envelope.FindLower(q45, a45, s45, 2, envelope.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("Q45 split rewrite (Ex 4.5)", lo45.Found, 0, lo45.Nl, lo45.Found && lo45.Exact)
	return t, nil
}

func setMinus(a, b []data.Tuple) int {
	have := make(map[value.Key]bool, len(b))
	for _, t := range b {
		have[t.Key()] = true
	}
	n := 0
	for _, t := range a {
		if !have[t.Key()] {
			n++
		}
	}
	return n
}

// E8QSP reproduces Section 5: Example 5.1's minimum parameter set and the
// MSC-shaped scaling of Example 5.2 (exact vs greedy).
func E8QSP(sizes []int) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "bounded specialization (QSP) — Example 5.1 and MSC-shaped scaling",
		Header: []string{"case", "k", "found", "params", "subsets tried", "time (µs)"},
	}
	// Example 5.1.
	q51, params := workload.Q51()
	s := workload.AccidentSchema()
	a := workload.AccidentConstraints()
	start := time.Now()
	res, err := specialize.Decide(q51, a, s, params, 1, specialize.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("Q51 exact", 1, res.Found, fmt.Sprint(res.Params), res.Tried, float64(time.Since(start).Microseconds()))

	// Example 5.2 family: n relations, instantiate one y per relation.
	for _, n := range sizes {
		s52, a52, q52, X := mscInstance(n)
		start = time.Now()
		resE, err := specialize.Decide(q52, a52, s52, X, n, specialize.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("MSC n=%d exact", n), n, resE.Found, len(resE.Params), resE.Tried,
			float64(time.Since(start).Microseconds()))
		start = time.Now()
		resG, err := specialize.Decide(q52, a52, s52, X, n, specialize.Options{Greedy: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("MSC n=%d greedy", n), n, resG.Found, len(resG.Params), resG.Tried,
			float64(time.Since(start).Microseconds()))
	}
	t.Notes = append(t.Notes, "exact search tries exponentially many subsets as n grows (NP-hardness, Theorem 5.3); greedy stays linear in n per step")
	return t, nil
}

// mscInstance builds the Example 5.2 encoding with n relations.
func mscInstance(n int) (*schema.Schema, *access.Schema, *cq.CQ, []string) {
	var rels []schema.Relation
	var cs []access.Constraint
	q := &cq.CQ{Label: fmt.Sprintf("Q52_%d", n)}
	var X []string
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("R%d", i)
		rels = append(rels, schema.MustRelation(name, "A", "B1", "B2", "B3"))
		cs = append(cs,
			access.NewConstraint(name, attrs("A"), attrs("B1", "B2", "B3"), 1),
			access.NewConstraint(name, attrs("B1"), attrs("A"), 1),
			access.NewConstraint(name, attrs("B2"), attrs("A"), 1),
			access.NewConstraint(name, attrs("B3"), attrs("A"), 1),
		)
		q.Atoms = append(q.Atoms,
			cq.NewAtom(name, cq.Const(iv(1)), cq.Const(iv(1)), cq.Const(iv(1)), cq.Const(iv(1))),
			cq.NewAtom(name, cq.Var(fmt.Sprintf("y%d", i)),
				cq.Var(fmt.Sprintf("z%d1", i)), cq.Var(fmt.Sprintf("z%d2", i)), cq.Var(fmt.Sprintf("z%d3", i))))
		X = append(X, fmt.Sprintf("y%d", i))
	}
	return schema.MustNew(rels...), access.NewSchema(cs...), q, X
}

// E9GeneralConstraints exercises the general form R(X -> Y, s(·)): with a
// log-bounded constraint, fetched data grows like log |D| — no longer
// constant, but still exponentially below a scan (Section 2, Cor. 3.15).
func E9GeneralConstraints(sizes []int) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "general access constraints R(X -> Y, log|D|) — sublinear access growth",
		Header: []string{"|D|", "bound log|D|", "fetched", "scanned (baseline)"},
	}
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.Constraint{
		Rel: "R", X: attrs("A"), Y: attrs("B"), Card: access.LogCard(),
	})
	q := &cq.CQ{Label: "Qlog", Free: []string{"y"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("c"), cq.Var("y"))},
		Eqs:   []cq.Eq{{L: cq.Var("c"), R: cq.Const(iv(1))}}}
	for _, n := range sizes {
		d := data.NewInstance(s)
		// Key 1 gets ~log2(n) values; the rest are unique-keyed filler.
		lg := access.LogCard().Bound(n)
		for i := 0; i < lg; i++ {
			d.MustInsert("R", iv(1), iv(int64(100+i)))
		}
		for i := d.Size(); i < n; i++ {
			d.MustInsert("R", iv(int64(1000+i)), iv(int64(i)))
		}
		eng, err := core.New(s, a, core.Options{})
		if err != nil {
			return nil, err
		}
		if err := eng.Load(d); err != nil {
			return nil, err
		}
		res, err := eng.Query(context.Background(), q, core.WithFallback(core.FallbackRefuse))
		if err != nil {
			return nil, err
		}
		base, err := eng.Baseline(q, eval.ScanJoin)
		if err != nil {
			return nil, err
		}
		t.AddRow(d.Size(), access.LogCard().Bound(d.Size()), res.Stats.Fetched, base.Scanned)
	}
	t.Notes = append(t.Notes, "fetched grows like log|D| while the scan grows like |D|")
	return t, nil
}

// E10PaperExamples is the regression table: the BEP verdict for every
// worked example in the paper, against the paper's own classification.
func E10PaperExamples() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "paper worked examples — BEP checker verdicts",
		Header: []string{"example", "paper says", "checker verdict", "agrees"},
	}
	type fixture struct {
		name  string
		paper string
		want  bep.Verdict
		q     *cq.CQ
		a     *access.Schema
		s     *schema.Schema
	}
	var fixtures []fixture

	// Q0 (Example 1.1).
	fixtures = append(fixtures, fixture{
		name: "Q0 (Ex 1.1)", paper: "boundedly evaluable", want: bep.Bounded,
		q: workload.Q0(), a: workload.AccidentConstraints(), s: workload.AccidentSchema(),
	})
	// Q1 (Example 3.1(1)).
	s1 := schema.MustNew(schema.MustRelation("R1", "A", "B", "E", "F"))
	fixtures = append(fixtures, fixture{
		name: "Q1 (Ex 3.1(1))", paper: "not boundedly evaluable", want: bep.Unknown,
		q: &cq.CQ{Label: "Q1", Free: []string{"x", "y"},
			Atoms: []cq.Atom{cq.NewAtom("R1", cq.Var("x1"), cq.Var("x"), cq.Var("x2"), cq.Var("y"))},
			Eqs: []cq.Eq{
				{L: cq.Var("x1"), R: cq.Const(iv(1))},
				{L: cq.Var("x2"), R: cq.Const(iv(1))},
			}},
		a: access.NewSchema(
			access.NewConstraint("R1", attrs("A"), attrs("B"), 3),
			access.NewConstraint("R1", attrs("E"), attrs("F"), 4),
		),
		s: s1,
	})
	// Q2 (Example 3.1(2)).
	s2 := schema.MustNew(schema.MustRelation("R2", "A", "B"))
	fixtures = append(fixtures, fixture{
		name: "Q2 (Ex 3.1(2))", paper: "bounded (A-unsatisfiable)", want: bep.BoundedEmpty,
		q: &cq.CQ{Label: "Q2", Free: []string{"x"},
			Atoms: []cq.Atom{
				cq.NewAtom("R2", cq.Var("x"), cq.Var("x1")),
				cq.NewAtom("R2", cq.Var("x"), cq.Var("x2")),
			},
			Eqs: []cq.Eq{
				{L: cq.Var("x1"), R: cq.Const(iv(1))},
				{L: cq.Var("x2"), R: cq.Const(iv(2))},
			}},
		a: access.NewSchema(access.NewConstraint("R2", attrs("A"), attrs("B"), 1)),
		s: s2,
	})
	// Q3 (Example 3.1(3) / 3.10).
	s3 := schema.MustNew(schema.MustRelation("R3", "A", "B", "C"))
	fixtures = append(fixtures, fixture{
		name: "Q3 (Ex 3.1(3))", paper: "boundedly evaluable", want: bep.Bounded,
		q: &cq.CQ{Label: "Q3", Free: []string{"x", "y"},
			Atoms: []cq.Atom{
				cq.NewAtom("R3", cq.Var("x1"), cq.Var("x2"), cq.Var("x")),
				cq.NewAtom("R3", cq.Var("z1"), cq.Var("z2"), cq.Var("y")),
				cq.NewAtom("R3", cq.Var("x"), cq.Var("y"), cq.Var("z3")),
			},
			Eqs: []cq.Eq{
				{L: cq.Var("x1"), R: cq.Const(iv(1))},
				{L: cq.Var("x2"), R: cq.Const(iv(1))},
			}},
		a: access.NewSchema(
			access.NewConstraint("R3", nil, attrs("C"), 1),
			access.NewConstraint("R3", attrs("A", "B"), attrs("C"), 5),
		),
		s: s3,
	})
	// Q41_1 (Example 4.1): bounded but NOT boundedly evaluable.
	s4 := schema.MustNew(schema.MustRelation("R", "A", "B"))
	fixtures = append(fixtures, fixture{
		name: "Q1 (Ex 4.1)", paper: "bounded, not boundedly evaluable", want: bep.Unknown,
		q: &cq.CQ{Label: "Q41", Free: []string{"x"},
			Atoms: []cq.Atom{
				cq.NewAtom("R", cq.Var("w"), cq.Var("x")),
				cq.NewAtom("R", cq.Var("y"), cq.Var("w")),
				cq.NewAtom("R", cq.Var("x"), cq.Var("z")),
			},
			Eqs: []cq.Eq{{L: cq.Var("w"), R: cq.Const(iv(1))}}},
		a: access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 3)),
		s: s4,
	})
	for _, f := range fixtures {
		dec, err := bep.Decide(f.q, f.a, f.s, bep.Options{UseAContainment: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(f.name, f.paper, dec.Verdict.String(), dec.Verdict == f.want)
	}
	return t, nil
}

// All runs every experiment with default parameters, in order. workers
// caps the E11 parallel-execution sweep (see E11WorkerCounts).
func All(workers int) ([]*Table, error) {
	var out []*Table
	steps := []func() (*Table, error){
		func() (*Table, error) { return E1ScaleSweep([]int{5, 20, 80}) },
		func() (*Table, error) { return E2CQPScaling([]int{2, 4, 8, 16, 32}) },
		func() (*Table, error) { return E3UCQCoverage([]int{3, 4, 5, 6}) },
		func() (*Table, error) { return E4CoverageRate(120, 700) },
		func() (*Table, error) { return E5Speedup([]int{5, 20, 80}) },
		func() (*Table, error) { return E6GraphPatterns(2000) },
		E7Envelopes,
		func() (*Table, error) { return E8QSP([]int{2, 4, 6}) },
		func() (*Table, error) { return E9GeneralConstraints([]int{1 << 8, 1 << 12, 1 << 16}) },
		E10PaperExamples,
		func() (*Table, error) { return E11Concurrency(4000, E11WorkerCounts(workers)) },
		func() (*Table, error) { return E12LiveUpdates([]int{5, 20, 80}, 20) },
		func() (*Table, error) { return E13Sharding([]int{1, 2, 4, 8}, 20) },
		func() (*Table, error) { return E14NetworkServing(workers, 100*time.Millisecond) },
		func() (*Table, error) { return E15Durability(20, 20) },
		func() (*Table, error) { return E16TraceOverhead(20, 100*time.Millisecond) },
		func() (*Table, error) { return E17DistributedServing(workers, 100*time.Millisecond, []int{2, 4}) },
	}
	for _, step := range steps {
		tb, err := step()
		if err != nil {
			return nil, err
		}
		out = append(out, tb)
	}
	return out, nil
}
