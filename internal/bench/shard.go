package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/live"
	"repro/internal/shard"
	"repro/internal/workload"
)

// shardBed is one workload of the E13 sweep: engine inputs, the
// flagship bounded query, and a constraint-preserving delta stream.
type shardBed struct {
	name   string
	query  *cq.CQ
	engine func(k int) (core.Queryable, error)
	deltas func(batches int) ([]*live.Delta, error)
}

func accidentsShardBed() shardBed {
	gen := func() (*workload.Accidents, error) {
		return workload.GenerateAccidents(workload.AccidentConfig{
			Days: 30, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
		})
	}
	return shardBed{
		name:  "accidents/Q0",
		query: workload.Q0(),
		engine: func(k int) (core.Queryable, error) {
			acc, err := gen()
			if err != nil {
				return nil, err
			}
			eng, err := shard.New(acc.Schema, acc.Access, shard.Options{Shards: k})
			if err != nil {
				return nil, err
			}
			return eng, eng.Load(acc.Instance)
		},
		deltas: func(batches int) ([]*live.Delta, error) {
			acc, err := gen()
			if err != nil {
				return nil, err
			}
			st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
				InsertAccidents: 5, DeleteAccidents: 2, Seed: 7,
			})
			if err != nil {
				return nil, err
			}
			out := make([]*live.Delta, batches)
			for i := range out {
				out[i] = st.Next()
			}
			return out, nil
		},
	}
}

func socialShardBed() shardBed {
	gen := func() (*workload.Social, error) {
		return workload.GenerateSocial(workload.SocialConfig{
			People: 3000, MaxFriends: 30, MaxLikes: 8, Seed: 2,
		})
	}
	return shardBed{
		name:  "social/GraphSearch",
		query: workload.GraphSearchQuery(1, workload.Cities[0], workload.Topics[0]),
		engine: func(k int) (core.Queryable, error) {
			soc, err := gen()
			if err != nil {
				return nil, err
			}
			eng, err := shard.New(soc.Schema, soc.Access, shard.Options{Shards: k})
			if err != nil {
				return nil, err
			}
			return eng, eng.Load(soc.Instance)
		},
		deltas: func(batches int) ([]*live.Delta, error) {
			soc, err := gen()
			if err != nil {
				return nil, err
			}
			st, err := workload.NewSocialStream(soc, workload.SocialStreamConfig{
				InsertPeople: 5, DeletePeople: 2, MaxFriends: 30, MaxLikes: 8, People: 3000, Seed: 7,
			})
			if err != nil {
				return nil, err
			}
			out := make([]*live.Delta, batches)
			for i := range out {
				out[i] = st.Next()
			}
			return out, nil
		},
	}
}

// E13Sharding sweeps shard counts over the accidents and social
// workloads, measuring (a) concurrent bounded-query throughput with one
// client per core and (b) Apply latency per stream batch. Routed
// fetches cost one lookup regardless of K, so per-query work is flat;
// Apply stages its per-shard sub-deltas in parallel, so multi-shard
// ingest latency drops on multi-core hardware. Row counts are checked
// against K = 1 so the sweep doubles as an equivalence smoke test.
func E13Sharding(shardCounts []int, batches int) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "sharding — scatter-gather QPS and two-phase Apply latency vs shard count",
		Header: []string{"workload", "shards", "QPS (concurrent)", "apply µs/batch", "rows", "same as K=1"},
	}
	clients := runtime.GOMAXPROCS(0)
	for _, bed := range []shardBed{accidentsShardBed(), socialShardBed()} {
		baseRows := -1
		for _, k := range shardCounts {
			eng, err := bed.engine(k)
			if err != nil {
				return nil, err
			}
			res, err := eng.Query(context.Background(), bed.query)
			if err != nil {
				return nil, err
			}
			rows := len(res.Rows)
			if baseRows < 0 {
				baseRows = rows
			}
			qps, err := concurrentQPS(eng, bed.query, clients, 100*time.Millisecond)
			if err != nil {
				return nil, err
			}
			deltas, err := bed.deltas(batches)
			if err != nil {
				return nil, err
			}
			applyUS := timeIt(func() error {
				for _, d := range deltas {
					if _, err := eng.Apply(context.Background(), d); err != nil {
						return err
					}
				}
				return nil
			})
			if applyUS < 0 {
				return nil, fmt.Errorf("bench: E13 apply failed")
			}
			t.AddRow(bed.name, k, fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.0f", applyUS/float64(batches)),
				rows, rows == baseRows)
			if bed.name == "accidents/Q0" {
				if k == shardCounts[0] {
					t.AddMetric("accidents_qps_k1", qps, "q/s")
				}
				if k == shardCounts[len(shardCounts)-1] {
					t.AddMetric(fmt.Sprintf("accidents_qps_k%d", k), qps, "q/s")
					t.AddMetric(fmt.Sprintf("accidents_apply_us_k%d", k), applyUS/float64(batches), "us")
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("QPS measured with %d concurrent clients (GOMAXPROCS); single-core CI flattens the comparison", clients),
		"Q0/GraphSearch fetches are partition-aligned, so they route to one shard: per-query cost is flat in K",
		"Apply stages per-shard sub-deltas in parallel and validates globally before any shard publishes")
	return t, nil
}

// concurrentQPS counts queries completed across n clients in a window.
func concurrentQPS(eng core.Queryable, q *cq.CQ, n int, window time.Duration) (float64, error) {
	var total atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Since(start) < window {
				if _, err := eng.Query(context.Background(), q, core.WithFallback(core.FallbackRefuse)); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, err
	}
	return float64(total.Load()) / time.Since(start).Seconds(), nil
}
