package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/plan"
	"repro/internal/workload"
)

// Path3Query is the 3-hop friend walk anchored at a person constant —
// the serving-layer stress query: its final fetch fans out over thousands
// of distinct keys, which is what the parallel executor partitions.
func Path3Query(me int64) *cq.CQ {
	return &cq.CQ{
		Label: "path3", Free: []string{"h"},
		Atoms: []cq.Atom{
			cq.NewAtom("Friend", cq.Var("me"), cq.Var("f")),
			cq.NewAtom("Friend", cq.Var("f"), cq.Var("g")),
			cq.NewAtom("Friend", cq.Var("g"), cq.Var("h")),
		},
		Eqs: []cq.Eq{{L: cq.Var("me"), R: cq.Const(iv(me))}},
	}
}

// E11WorkerCounts turns a -workers cap into the sweep for E11Concurrency:
// always workers=1, plus workers=2 and the cap itself when they fit.
func E11WorkerCounts(max int) []int {
	counts := []int{1}
	if max >= 2 {
		counts = append(counts, 2)
	}
	if max > 2 {
		counts = append(counts, max)
	}
	return counts
}

// E11Concurrency measures the concurrent serving layer added on top of
// the paper's pipeline: (a) the plan cache — repeat-query planning
// latency, cold vs cached — and (b) the parallel executor — bounded-plan
// execution with a multi-worker fetch/join pool vs a single worker, on a
// fan-out-heavy social query. The "same answers" column verifies that
// every configuration returns identical rows and identical Fetched totals
// (the static access bound holds regardless of worker count).
func E11Concurrency(people int, workerCounts []int) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "serving layer — plan cache and parallel bounded execution",
		Header: []string{"setting", "time/op (µs)", "speedup", "same answers"},
	}
	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: people, MaxFriends: 50, MaxLikes: 10, Seed: 2,
	})
	if err != nil {
		return nil, err
	}
	q := Path3Query(1)

	// (a) Plan cache: cold synthesis vs cached lookup.
	cold, err := core.New(soc.Schema, soc.Access, core.Options{PlanCache: -1})
	if err != nil {
		return nil, err
	}
	if err := cold.Load(soc.Instance); err != nil {
		return nil, err
	}
	warm, err := core.New(soc.Schema, soc.Access, core.Options{})
	if err != nil {
		return nil, err
	}
	if err := warm.Load(soc.Instance); err != nil {
		return nil, err
	}
	if _, _, err := warm.Plan(q); err != nil { // prime the cache
		return nil, err
	}
	const planReps = 50
	timePlan := func(eng *core.Engine) (float64, error) {
		start := time.Now()
		for i := 0; i < planReps; i++ {
			if _, _, err := eng.Plan(q); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Microseconds()) / planReps, nil
	}
	tCold, err := timePlan(cold)
	if err != nil {
		return nil, err
	}
	tHit, err := timePlan(warm)
	if err != nil {
		return nil, err
	}
	t.AddRow("plan path3 (cold)", tCold, 1.0, "-")
	t.AddRow("plan path3 (cached)", tHit, tCold/maxF(tHit, 0.01), "-")
	t.AddMetric("plan_cold_us", tCold, "us")
	t.AddMetric("plan_cached_us", tHit, "us")
	t.AddMetric("plan_cache_speedup", tCold/maxF(tHit, 0.01), "x")

	// (b) Parallel execution: identical plan, varying worker counts.
	p, _, err := warm.Plan(q)
	if err != nil {
		return nil, err
	}
	ix := warm.Indexed()
	const execReps = 5
	var baseTime float64
	var baseTbl *plan.Table
	var baseFetched int64
	for i, w := range workerCounts {
		opts := plan.ExecOptions{Workers: w}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		var tbl *plan.Table
		var stats *plan.ExecStats
		for r := 0; r < execReps; r++ {
			tbl, stats, err = plan.ExecuteOpts(context.Background(), p, ix, opts)
			if err != nil {
				return nil, err
			}
		}
		el := float64(time.Since(start).Microseconds()) / execReps
		runtime.ReadMemStats(&ms1)
		same := "-"
		if i == 0 {
			baseTime, baseTbl, baseFetched = el, tbl, stats.Fetched
		} else {
			same = fmt.Sprint(sameRows(tbl, baseTbl) && stats.Fetched == baseFetched)
		}
		t.AddRow(fmt.Sprintf("exec path3 workers=%d", w), el, baseTime/maxF(el, 0.01), same)
		if i == 0 {
			t.AddMetric("exec_1worker_us", el, "us")
			// Throughput and memory pressure of the sequential hot path:
			// answer rows per second, heap allocated per execution, and
			// GC stop-the-world pause attributable to each execution.
			// These are the columnar rewrite's acceptance metrics — the
			// old row-at-a-time executor allocated per fetched row.
			t.AddMetric("exec_rows_per_sec", float64(tbl.Len())/(el/1e6), "rows/s")
			t.AddMetric("exec_alloc_mb", float64(ms1.TotalAlloc-ms0.TotalAlloc)/execReps/(1<<20), "mb")
			t.AddMetric("exec_gc_pause_us", float64(ms1.PauseTotalNs-ms0.PauseTotalNs)/execReps/1e3, "us")
		}
		if i == len(workerCounts)-1 {
			t.AddMetric("exec_max_workers_us", el, "us")
			t.AddMetric("exec_parallel_speedup", baseTime/maxF(el, 0.01), "x")
		}
	}
	t.Notes = append(t.Notes,
		"cached planning must be orders of magnitude below cold synthesis — that is the repeat-query win",
		"'same answers' checks rows and Fetched match workers=1: the access bound is worker-independent")
	return t, nil
}

// sameRows reports whether two tables hold identical rows in identical
// order.
func sameRows(a, b *plan.Table) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			return false
		}
	}
	return true
}
