package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/server"
	"repro/internal/workload"
)

// E14NetworkServing measures what the network boundary costs: the same
// bounded query served in-process through Engine.Query versus over
// internal/server's HTTP/NDJSON path (POST /v1/query against an
// httptest server, keep-alive clients). The bounded plan touches ~10²
// tuples regardless of |D|, so the wire path is dominated by HTTP
// framing and JSON encoding — the QPS ratio is the serving tax a
// deployment pays for the network hop.
func E14NetworkServing(clients int, window time.Duration) (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  "network serving — in-process Engine.Query vs HTTP/NDJSON QPS",
		Header: []string{"workload", "path", "QPS (concurrent)", "vs in-process", "rows"},
	}
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 30, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	eng, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		return nil, err
	}
	if err := eng.Load(acc.Instance); err != nil {
		return nil, err
	}
	// Steady-state resident heap of the loaded, serving engine. This is
	// the retention acceptance metric: relations drop their load-time
	// dedup maps after publishing, so the serving footprint is the
	// columnar data + indexes, not data + indexes + a key map per tuple.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.AddMetric("heap_after_load_mb", float64(ms.HeapAlloc)/(1<<20), "mb")
	q := workload.Q0()

	res, err := eng.Query(context.Background(), q)
	if err != nil {
		return nil, err
	}
	rows := len(res.Rows)

	inProc, err := concurrentQPS(eng, q, clients, window)
	if err != nil {
		return nil, err
	}

	srv, err := server.New(eng, server.Catalog{
		Schema:  acc.Schema,
		Access:  acc.Access,
		Queries: map[string]*cq.CQ{"Q0": q},
	}, server.Options{MaxInFlight: clients * 2})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	wire, wireRows, err := httpQPS(ts, `{"query":"Q0"}`, clients, window)
	if err != nil {
		return nil, err
	}
	if wireRows != rows {
		return nil, fmt.Errorf("bench: E14 wire answered %d rows, in-process %d", wireRows, rows)
	}

	t.AddRow("accidents/Q0", "in-process", fmt.Sprintf("%.0f", inProc), "1.00", rows)
	ratio := 0.0
	if inProc > 0 {
		ratio = wire / inProc
	}
	t.AddRow("accidents/Q0", "HTTP/NDJSON", fmt.Sprintf("%.0f", wire), fmt.Sprintf("%.2f", ratio), wireRows)
	t.AddMetric("qps_in_process", inProc, "q/s")
	t.AddMetric("qps_wire", wire, "q/s")
	t.AddMetric("wire_ratio", ratio, "x")
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d concurrent clients, %v window, keep-alive connections", clients, window),
		"wire rows are checked equal to in-process rows before timing — the paths answer identically",
		"the gap is HTTP framing + JSON encoding; the engine-side work is the same bounded plan")
	return t, nil
}

// httpQPS counts completed (fully drained) /v1/query requests across n
// keep-alive clients in the window, returning the per-response row
// count of the last response for the equivalence check.
func httpQPS(ts *httptest.Server, body string, n int, window time.Duration) (float64, int, error) {
	var total atomic.Int64
	var rows atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
			defer client.CloseIdleConnections()
			for time.Since(start) < window {
				resp, err := client.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					firstErr.CompareAndSwap(nil, fmt.Errorf("wire query: status %d, err %v", resp.StatusCode, err))
					return
				}
				rows.Store(int64(strings.Count(string(b), "\n")))
				total.Add(1)
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, 0, err
	}
	return float64(total.Load()) / time.Since(start).Seconds(), int(rows.Load()), nil
}
