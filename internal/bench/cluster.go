package bench

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/server"
	"repro/internal/workload"
)

// E17DistributedServing measures what distribution costs: the same
// bounded query served (a) in-process by a single-node engine, (b) by a
// scatter-gather coordinator whose every index fetch is an HTTP RPC to
// one of K loopback shard nodes, and (c) by that coordinator behind the
// full /v1/query HTTP surface — the double network hop a real
// deployment pays (client→coordinator→shard). The bounded plan touches
// ~10² tuples regardless of |D| or K, so the ratios isolate pure RPC
// fan-out overhead, not extra engine work.
func E17DistributedServing(clients int, window time.Duration, ks []int) (*Table, error) {
	t := &Table{
		ID:     "E17",
		Title:  "distributed serving — in-process vs scatter-gather coordinator QPS",
		Header: []string{"workload", "path", "QPS (concurrent)", "vs in-process", "rows"},
	}
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 30, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	q := workload.Q0()

	single, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		return nil, err
	}
	if err := single.Load(acc.Instance); err != nil {
		return nil, err
	}
	res, err := single.Query(context.Background(), q)
	if err != nil {
		return nil, err
	}
	rows := len(res.Rows)
	inProc, err := concurrentQPS(single, q, clients, window)
	if err != nil {
		return nil, err
	}
	t.AddRow("accidents/Q0", "in-process", fmt.Sprintf("%.0f", inProc), "1.00", rows)
	t.AddMetric("qps_in_process", inProc, "q/s")

	ratio := func(qps float64) float64 {
		if inProc > 0 {
			return qps / inProc
		}
		return 0
	}

	var coord *cluster.Engine
	for _, k := range ks {
		urls := make([]string, k)
		closers := make([]func(), 0, k)
		for i := 0; i < k; i++ {
			node, err := cluster.NewNode(acc.Schema, acc.Access, i, k, cluster.Options{})
			if err != nil {
				return nil, err
			}
			ts := httptest.NewServer(node.InternalHandler())
			closers = append(closers, ts.Close)
			urls[i] = ts.URL
		}
		hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients * 2}}
		coord, err = cluster.New(acc.Schema, acc.Access, urls, cluster.Options{Client: hc})
		if err != nil {
			return nil, err
		}
		if err := coord.Load(acc.Instance); err != nil {
			return nil, err
		}
		cres, err := coord.Query(context.Background(), q)
		if err != nil {
			return nil, err
		}
		if len(cres.Rows) != rows {
			return nil, fmt.Errorf("bench: E17 coordinator (K=%d) answered %d rows, in-process %d",
				k, len(cres.Rows), rows)
		}
		qps, err := concurrentQPS(coord, q, clients, window)
		if err != nil {
			return nil, err
		}
		t.AddRow("accidents/Q0", fmt.Sprintf("coordinator K=%d", k),
			fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.2f", ratio(qps)), len(cres.Rows))
		t.AddMetric(fmt.Sprintf("qps_cluster_k%d", k), qps, "q/s")
		t.AddMetric(fmt.Sprintf("cluster_ratio_k%d", k), ratio(qps), "x")
		// Keep the last fleet alive for the wire measurement below; close
		// the earlier ones now.
		if k != ks[len(ks)-1] {
			for _, c := range closers {
				c()
			}
			hc.CloseIdleConnections()
		} else {
			defer hc.CloseIdleConnections()
			for _, c := range closers {
				defer c()
			}
		}
	}

	// The full deployment shape: clients speak HTTP/NDJSON to a
	// coordinator that speaks HTTP to its shards.
	if coord != nil {
		srv, err := server.New(coord, server.Catalog{
			Schema:  acc.Schema,
			Access:  acc.Access,
			Queries: map[string]*cq.CQ{"Q0": q},
		}, server.Options{MaxInFlight: clients * 2})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		wire, wireRows, err := httpQPS(ts, `{"query":"Q0"}`, clients, window)
		if err != nil {
			return nil, err
		}
		if wireRows != rows {
			return nil, fmt.Errorf("bench: E17 wire answered %d rows, in-process %d", wireRows, rows)
		}
		kLast := ks[len(ks)-1]
		t.AddRow("accidents/Q0", fmt.Sprintf("HTTP + coordinator K=%d", kLast),
			fmt.Sprintf("%.0f", wire), fmt.Sprintf("%.2f", ratio(wire)), wireRows)
		t.AddMetric("qps_cluster_wire", wire, "q/s")
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d concurrent clients, %v window, keep-alive connections throughout", clients, window),
		"every fleet's rows are checked equal to in-process rows before timing — the paths answer identically",
		"coordinator rows pay one RPC round-trip per index fetch; the wire row adds HTTP framing on top",
		"loopback transport: ratios bound the best case — real networks only widen the gap")
	return t, nil
}
