package cq

// Property-based tests over randomly generated small conjunctive queries:
// the algebraic laws the containment and minimization machinery must obey.

import (
	"math/rand"
	"testing"
)

// genCQ builds a random small CQ over a binary relation R.
func genCQ(rng *rand.Rand) *CQ {
	nAtoms := 1 + rng.Intn(3)
	nVars := 2 + rng.Intn(3)
	varName := func(i int) string { return string(rune('a' + i)) }
	q := &CQ{Label: "g"}
	for i := 0; i < nAtoms; i++ {
		q.Atoms = append(q.Atoms, NewAtom("R",
			Var(varName(rng.Intn(nVars))), Var(varName(rng.Intn(nVars)))))
	}
	// Free variable: one that occurs in an atom.
	q.Free = []string{q.Atoms[0].Args[rng.Intn(2)].V}
	// Occasionally pin a variable.
	if rng.Intn(3) == 0 {
		q.Eqs = append(q.Eqs, Eq{L: q.Atoms[0].Args[0], R: Const(iv(int64(rng.Intn(2))))})
	}
	return q
}

func TestContainmentReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		q := genCQ(rng)
		if !Contains(q, q) {
			t.Fatalf("containment must be reflexive: %s", q)
		}
	}
}

func TestContainmentTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	checked := 0
	for i := 0; i < 400 && checked < 50; i++ {
		q1, q2, q3 := genCQ(rng), genCQ(rng), genCQ(rng)
		if Contains(q1, q2) && Contains(q2, q3) {
			checked++
			if !Contains(q1, q3) {
				t.Fatalf("transitivity violated:\n%s\n%s\n%s", q1, q2, q3)
			}
		}
	}
	if checked == 0 {
		t.Skip("no chained containments generated")
	}
}

func TestMinimizeLawsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		q := genCQ(rng)
		m := q.Minimize()
		if !Equivalent(q, m) {
			t.Fatalf("Minimize must preserve equivalence:\n%s\n%s", q, m)
		}
		if len(m.Atoms) > len(q.Atoms) {
			t.Fatalf("Minimize must not grow the query")
		}
		// Idempotence.
		mm := m.Minimize()
		if len(mm.Atoms) != len(m.Atoms) {
			t.Fatalf("Minimize must be idempotent:\n%s\n%s", m, mm)
		}
	}
}

func TestRenameApartPreservesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		q := genCQ(rng)
		r := q.RenameApart("p_")
		if !Equivalent(q, r) {
			t.Fatalf("alpha-renaming must preserve equivalence:\n%s\n%s", q, r)
		}
	}
}

func TestNormalizePreservesCanonicalForm(t *testing.T) {
	// Putting constants into atoms and normalizing must agree with the
	// equality-atom formulation.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		q := genCQ(rng)
		n := q.Normalize()
		if !Equivalent(q, n) {
			t.Fatalf("Normalize must preserve equivalence:\n%s\n%s", q, n)
		}
		if !n.IsNormalized() {
			t.Fatalf("Normalize output not normalized: %s", n)
		}
	}
}

func TestCanonicalDedupStable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		q := genCQ(rng)
		c1 := q.Canonicalize()
		c2 := q.Canonicalize()
		if c1.Unsat != c2.Unsat || len(c1.Atoms) != len(c2.Atoms) {
			t.Fatalf("Canonicalize must be deterministic: %s", q)
		}
	}
}

func TestContainmentAntisymmetryUpToEquivalence(t *testing.T) {
	// If q1 ⊆ q2 and q2 ⊆ q1 then they are Equivalent (by definition);
	// check Equivalent is consistent with the two one-way checks.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q1, q2 := genCQ(rng), genCQ(rng)
		both := Contains(q1, q2) && Contains(q2, q1)
		if both != Equivalent(q1, q2) {
			t.Fatalf("Equivalent inconsistent with Contains:\n%s\n%s", q1, q2)
		}
	}
}
