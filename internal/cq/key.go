package cq

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalKey returns a cache key identifying q's shape: a deterministic
// serialization of the normalized query that is invariant under renaming
// of bound variables, duplicate-atom elimination, and reordering of atoms
// and equality atoms (up to the name-free atom signature the sort uses).
// The Label is ignored; the free-variable tuple is kept literally so that
// a plan synthesized for one query yields the same output columns for
// every query sharing its key.
//
// The key is sound for plan caching: two CQs with equal keys are the same
// query up to bound-variable renaming, so any plan answering one answers
// the other. It is not complete — semantically equivalent queries may
// still produce distinct keys, which costs a cache miss, never a wrong
// answer.
func (q *CQ) CanonicalKey() string {
	n := q.Normalize().DropDuplicateAtoms()
	free := make(map[string]bool, len(n.Free))
	for _, v := range n.Free {
		free[v] = true
	}

	// Sort atoms by a name-free signature: relation, then per argument
	// either the literal free-variable name, a back-reference to an earlier
	// position holding the same bound variable, or a wildcard. This makes
	// the ordering independent of bound-variable names.
	sigOf := func(a Atom) string {
		var b strings.Builder
		b.WriteString(a.Rel)
		firstAt := make(map[string]int, len(a.Args))
		for i, t := range a.Args {
			b.WriteByte('|')
			switch {
			case free[t.V]:
				b.WriteString("F" + t.V)
			default:
				if j, seen := firstAt[t.V]; seen {
					fmt.Fprintf(&b, "=%d", j)
				} else {
					firstAt[t.V] = i
					b.WriteByte('*')
				}
			}
		}
		return b.String()
	}
	type satom struct {
		sig  string
		atom Atom
	}
	atoms := make([]satom, len(n.Atoms))
	for i, a := range n.Atoms {
		atoms[i] = satom{sig: sigOf(a), atom: a}
	}
	sort.SliceStable(atoms, func(i, j int) bool { return atoms[i].sig < atoms[j].sig })

	// Canonical names: free variables keep their names; bound variables are
	// numbered by first occurrence scanning the sorted atoms, then the
	// equality atoms (for variables occurring only in equalities).
	rename := make(map[string]string)
	next := 0
	canon := func(v string) string {
		if free[v] {
			return v
		}
		if c, ok := rename[v]; ok {
			return c
		}
		c := fmt.Sprintf("·%d", next)
		next++
		rename[v] = c
		return c
	}
	for _, sa := range atoms {
		for _, t := range sa.atom.Args {
			canon(t.V)
		}
	}
	term := func(t Term) string {
		if t.IsVar() {
			return canon(t.V)
		}
		return "#" + t.C.String()
	}

	// Equality atoms: render each with the smaller side first, then sort
	// and deduplicate, so eq order and orientation do not matter.
	eqs := make([]string, 0, len(n.Eqs))
	for _, e := range n.Eqs {
		l, r := term(e.L), term(e.R)
		if r < l {
			l, r = r, l
		}
		eqs = append(eqs, l+"="+r)
	}
	sort.Strings(eqs)
	eqs = dedupSorted(eqs)

	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(strings.Join(n.Free, ","))
	b.WriteString(")←")
	for _, sa := range atoms {
		b.WriteString(sa.atom.Rel)
		b.WriteByte('(')
		for i, t := range sa.atom.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(canon(t.V))
		}
		b.WriteByte(')')
		b.WriteByte(';')
	}
	b.WriteByte('|')
	b.WriteString(strings.Join(eqs, ";"))
	return b.String()
}

func dedupSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// QueryLabel implements the serving-layer Query interface of
// internal/core: a CQ is the simplest query the engine serves.
func (q *CQ) QueryLabel() string { return q.Label }

// QueryCQs returns the query's UCQ normal form — the single-disjunct
// union holding q itself.
func (q *CQ) QueryCQs() ([]*CQ, error) { return []*CQ{q}, nil }
