package cq

import (
	"sort"

	"repro/internal/value"
)

// EqClasses is the partition of var(Q) induced by equality atoms, as a
// union-find structure, together with the constant (if any) each class is
// pinned to.
//
// Two closures matter in the paper (Example 3.8): eq(x,Q) merges only via
// variable-variable equalities y = z (plus transitivity), while eq⁺(x,Q)
// additionally merges classes pinned to the same constant (x = c and y = c
// imply x = y). EqClasses computes eq; EqClassesPlus computes eq⁺.
type EqClasses struct {
	parent map[string]string
	// constOf maps a class root to its pinned constants. More than one
	// distinct constant means the query is unsatisfiable (a "conflict").
	constOf map[string][]value.Value
}

// EqClasses computes eq(·, Q): the equality closure using only
// variable-variable equality atoms; constants pin classes but never merge
// them.
func (q *CQ) EqClasses() *EqClasses { return q.eqClasses(false) }

// EqClassesPlus computes eq⁺(·, Q): additionally merging classes pinned to
// equal constants.
func (q *CQ) EqClassesPlus() *EqClasses { return q.eqClasses(true) }

func (q *CQ) eqClasses(plus bool) *EqClasses {
	e := &EqClasses{
		parent:  make(map[string]string),
		constOf: make(map[string][]value.Value),
	}
	for _, v := range q.Vars() {
		e.parent[v] = v
	}
	for _, eq := range q.Eqs {
		switch {
		case eq.L.IsVar() && eq.R.IsVar():
			e.union(eq.L.V, eq.R.V)
		case eq.L.IsVar():
			e.pin(eq.L.V, eq.R.C)
		case eq.R.IsVar():
			e.pin(eq.R.V, eq.L.C)
		}
	}
	if plus {
		// Merge classes pinned to the same constant.
		rep := make(map[value.Value]string)
		for _, v := range q.Vars() {
			r := e.find(v)
			for _, c := range e.constOf[r] {
				if prev, ok := rep[c]; ok {
					e.union(prev, v)
				} else {
					rep[c] = v
				}
			}
		}
	}
	return e
}

func (e *EqClasses) find(v string) string {
	p, ok := e.parent[v]
	if !ok {
		// Unknown variables are their own singleton class.
		e.parent[v] = v
		return v
	}
	if p == v {
		return v
	}
	r := e.find(p)
	e.parent[v] = r
	return r
}

func (e *EqClasses) union(a, b string) {
	ra, rb := e.find(a), e.find(b)
	if ra == rb {
		return
	}
	// Deterministic root choice: smaller name wins.
	if rb < ra {
		ra, rb = rb, ra
	}
	e.parent[rb] = ra
	e.constOf[ra] = mergeConsts(e.constOf[ra], e.constOf[rb])
	delete(e.constOf, rb)
}

func (e *EqClasses) pin(v string, c value.Value) {
	r := e.find(v)
	e.constOf[r] = mergeConsts(e.constOf[r], []value.Value{c})
}

func mergeConsts(a, b []value.Value) []value.Value {
	out := append([]value.Value(nil), a...)
	for _, c := range b {
		dup := false
		for _, d := range out {
			if c == d {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// Same reports whether a and b are in one class.
func (e *EqClasses) Same(a, b string) bool { return e.find(a) == e.find(b) }

// Root returns the canonical representative of v's class.
func (e *EqClasses) Root(v string) string { return e.find(v) }

// ClassOf returns every variable in v's class, sorted.
func (e *EqClasses) ClassOf(v string) []string {
	r := e.find(v)
	var out []string
	for w := range e.parent {
		if e.find(w) == r {
			out = append(out, w)
		}
	}
	sort.Strings(out)
	return out
}

// ConstOf returns the constant v's class is pinned to, or the Null value if
// unpinned. When the class is conflicted (pinned to two distinct constants)
// it returns the first; check HasConflict separately.
func (e *EqClasses) ConstOf(v string) value.Value {
	cs := e.constOf[e.find(v)]
	if len(cs) == 0 {
		return value.Value{}
	}
	return cs[0]
}

// IsConstantVar reports the paper's "constant variable" status: v's class
// is pinned to some constant.
func (e *EqClasses) IsConstantVar(v string) bool {
	return len(e.constOf[e.find(v)]) > 0
}

// HasConflict reports whether v's class is pinned to two distinct constants
// (which makes the query unsatisfiable).
func (e *EqClasses) HasConflict(v string) bool {
	return len(e.constOf[e.find(v)]) > 1
}

// AnyConflict reports whether any class is conflicted.
func (e *EqClasses) AnyConflict() bool {
	for _, cs := range e.constOf {
		if len(cs) > 1 {
			return true
		}
	}
	return false
}

// Roots returns all class representatives, sorted.
func (e *EqClasses) Roots() []string {
	set := make(map[string]bool)
	for v := range e.parent {
		set[e.find(v)] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DataDependent reports whether v is data-dependent: eq(v,Q) (this closure)
// contains a variable occurring in a relation atom of q.
func (e *EqClasses) DataDependent(v string, q *CQ) bool {
	atomVars := q.AtomVars()
	for _, w := range e.ClassOf(v) {
		if atomVars[w] {
			return true
		}
	}
	return false
}
