package cq

import (
	"testing"

	"repro/internal/value"
)

func keyQ0() *CQ {
	return &CQ{
		Label: "Q0", Free: []string{"xa"},
		Atoms: []Atom{
			NewAtom("Accident", Var("aid"), Const(value.NewString("Queen's Park")), Const(value.NewString("1/5/2005"))),
			NewAtom("Casualty", Var("cid"), Var("aid"), Var("class"), Var("vid")),
			NewAtom("Vehicle", Var("vid"), Var("dri"), Var("xa")),
		},
	}
}

func TestCanonicalKeyIgnoresLabel(t *testing.T) {
	a, b := keyQ0(), keyQ0()
	b.Label = "Renamed"
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Error("label must not affect the canonical key")
	}
}

func TestCanonicalKeyInvariantUnderBoundRenaming(t *testing.T) {
	a := keyQ0()
	b := keyQ0().Substitute(map[string]Term{
		"aid": Var("accident"), "cid": Var("cas"), "class": Var("cl"),
		"vid": Var("vehicle"), "dri": Var("driver"),
	})
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("α-renamed bound variables must share a key:\n%s\n%s",
			a.CanonicalKey(), b.CanonicalKey())
	}
}

func TestCanonicalKeyKeepsFreeNames(t *testing.T) {
	a := keyQ0()
	b := keyQ0().Substitute(map[string]Term{"xa": Var("age")})
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Error("renaming a free variable must change the key (output columns differ)")
	}
}

func TestCanonicalKeyInvariantUnderAtomAndEqOrder(t *testing.T) {
	a := &CQ{Free: []string{"x"},
		Atoms: []Atom{
			NewAtom("Accident", Var("a"), Var("d"), Var("t")),
			NewAtom("Casualty", Var("c"), Var("a"), Var("k"), Var("x")),
		},
		Eqs: []Eq{
			{L: Var("t"), R: Const(value.NewString("1/5/2005"))},
			{L: Var("d"), R: Const(value.NewString("Soho"))},
		}}
	b := &CQ{Free: []string{"x"},
		Atoms: []Atom{
			NewAtom("Casualty", Var("c"), Var("a"), Var("k"), Var("x")),
			NewAtom("Accident", Var("a"), Var("d"), Var("t")),
		},
		Eqs: []Eq{
			{L: Const(value.NewString("Soho")), R: Var("d")}, // flipped orientation
			{L: Var("t"), R: Const(value.NewString("1/5/2005"))},
		}}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("atom/eq reorder must not change the key:\n%s\n%s",
			a.CanonicalKey(), b.CanonicalKey())
	}
}

func TestCanonicalKeySeparatesConstants(t *testing.T) {
	a := keyQ0()
	b := keyQ0()
	b.Atoms[0].Args[1] = Const(value.NewString("Soho"))
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Error("different constants must produce different keys")
	}
}

func TestCanonicalKeySeparatesRepeatedVars(t *testing.T) {
	// R(x, y) vs R(x, x): distinct shapes, distinct keys.
	a := &CQ{Free: []string{"x"}, Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))}}
	b := &CQ{Free: []string{"x"}, Atoms: []Atom{NewAtom("R", Var("x"), Var("x"))}}
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Error("R(x,y) and R(x,x) must differ")
	}
}

func TestCanonicalKeyNormalizesInlineConstants(t *testing.T) {
	// Constants written inline and hoisted into equality atoms are the
	// same query shape after Normalize, so they share a key.
	a := &CQ{Free: []string{"y"},
		Atoms: []Atom{NewAtom("R", Const(value.NewInt(7)), Var("y"))}}
	b := &CQ{Free: []string{"y"},
		Atoms: []Atom{NewAtom("R", Var("w"), Var("y"))},
		Eqs:   []Eq{{L: Var("w"), R: Const(value.NewInt(7))}}}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Errorf("inline vs hoisted constant must share a key:\n%s\n%s",
			a.CanonicalKey(), b.CanonicalKey())
	}
}

func TestCanonicalKeyDeduplicatesAtoms(t *testing.T) {
	a := &CQ{Free: []string{"x"}, Atoms: []Atom{
		NewAtom("R", Var("x"), Var("y")),
		NewAtom("R", Var("x"), Var("y")),
	}}
	b := &CQ{Free: []string{"x"}, Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))}}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Error("duplicate atoms must not change the key")
	}
}
