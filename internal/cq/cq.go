// Package cq implements conjunctive queries (CQ, a.k.a. SPC): queries built
// from relation atoms and equality atoms, closed under conjunction and
// existential quantification (Section 2 of the paper).
//
// A CQ is stored in the paper's assumed normal form candidates are reduced
// to by Normalize: only variables appear in relation atoms, constants occur
// in equality atoms, and every query is safe (each variable is equal to a
// variable occurring in a relation atom or to a constant).
package cq

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/value"
)

// Term is a variable or a constant. The zero Term is invalid.
type Term struct {
	// V is the variable name; empty iff the term is a constant.
	V string
	// C is the constant payload when V is empty.
	C value.Value
}

// Var returns a variable term.
func Var(name string) Term { return Term{V: name} }

// Const returns a constant term.
func Const(v value.Value) Term { return Term{C: v} }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.V != "" }

// String renders variables bare and constants quoted per value.Value.
func (t Term) String() string {
	if t.IsVar() {
		return t.V
	}
	return t.C.String()
}

// Atom is a relation atom R(t1, ..., tk).
type Atom struct {
	Rel  string
	Args []Term
}

// NewAtom builds a relation atom.
func NewAtom(rel string, args ...Term) Atom {
	return Atom{Rel: rel, Args: append([]Term(nil), args...)}
}

// Clone deep-copies the atom.
func (a Atom) Clone() Atom { return Atom{Rel: a.Rel, Args: append([]Term(nil), a.Args...)} }

// Equal reports structural equality.
func (a Atom) Equal(b Atom) bool {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// String renders e.g. "Vehicle(vid, dri, xa)".
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Eq is an equality atom between two terms (x = y or x = c).
type Eq struct {
	L, R Term
}

// String renders e.g. "x = 1".
func (e Eq) String() string { return e.L.String() + " = " + e.R.String() }

// CQ is a conjunctive query Q(x̄) = ∃ȳ (atoms ∧ equalities).
type CQ struct {
	// Label is a display name such as "Q0"; it has no semantics.
	Label string
	// Free is x̄, the tuple of free variables, in output order. Repeats are
	// allowed (Q(x, x) is legal).
	Free []string
	// Atoms are the relation atoms.
	Atoms []Atom
	// Eqs are the equality atoms.
	Eqs []Eq
}

// Clone deep-copies the query.
func (q *CQ) Clone() *CQ {
	c := &CQ{
		Label: q.Label,
		Free:  append([]string(nil), q.Free...),
		Eqs:   append([]Eq(nil), q.Eqs...),
	}
	c.Atoms = make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		c.Atoms[i] = a.Clone()
	}
	return c
}

// Vars returns var(Q): every variable occurring in Q (free, in relation
// atoms, or in equality atoms), sorted.
func (q *CQ) Vars() []string {
	set := make(map[string]bool)
	for _, v := range q.Free {
		set[v] = true
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				set[t.V] = true
			}
		}
	}
	for _, e := range q.Eqs {
		if e.L.IsVar() {
			set[e.L.V] = true
		}
		if e.R.IsVar() {
			set[e.R.V] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// AtomVars returns the variables occurring in relation atoms, as a set.
func (q *CQ) AtomVars() map[string]bool {
	set := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				set[t.V] = true
			}
		}
	}
	return set
}

// Constants returns every constant mentioned in Q, sorted and deduplicated.
func (q *CQ) Constants() []value.Value {
	set := make(map[value.Value]bool)
	add := func(t Term) {
		if !t.IsVar() {
			set[t.C] = true
		}
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			add(t)
		}
	}
	for _, e := range q.Eqs {
		add(e.L)
		add(e.R)
	}
	out := make([]value.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// OccurrenceCount counts, per variable, its occurrences across the head,
// relation atoms, and equality atoms. The covered-query condition (b) of
// Section 3.2 excludes bound variables "that only occur once in Q"; this is
// the count it refers to.
func (q *CQ) OccurrenceCount() map[string]int {
	n := make(map[string]int)
	for _, v := range q.Free {
		n[v]++
	}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				n[t.V]++
			}
		}
	}
	for _, e := range q.Eqs {
		if e.L.IsVar() {
			n[e.L.V]++
		}
		if e.R.IsVar() {
			n[e.R.V]++
		}
	}
	return n
}

// Size is |Q|: total term occurrences, for complexity accounting.
func (q *CQ) Size() int {
	n := len(q.Free)
	for _, a := range q.Atoms {
		n += 1 + len(a.Args)
	}
	n += 2 * len(q.Eqs)
	return n
}

// Validate checks q against a relational schema: every atom's relation
// exists with matching arity, and the query is safe after normalization.
func (q *CQ) Validate(s *schema.Schema) error {
	for _, a := range q.Atoms {
		rs, ok := s.Relation(a.Rel)
		if !ok {
			return fmt.Errorf("cq: %s: unknown relation %s", q.Label, a.Rel)
		}
		if len(a.Args) != rs.Arity() {
			return fmt.Errorf("cq: %s: atom %s has arity %d, schema wants %d",
				q.Label, a, len(a.Args), rs.Arity())
		}
	}
	for _, e := range q.Eqs {
		if !e.L.IsVar() && !e.R.IsVar() {
			return fmt.Errorf("cq: %s: equality %s has no variable", q.Label, e)
		}
	}
	n := q.Normalize()
	if unsafe := n.unsafeVars(); len(unsafe) > 0 {
		return fmt.Errorf("cq: %s is unsafe: variable(s) %v not tied to a relation atom or constant",
			q.Label, unsafe)
	}
	return nil
}

// unsafeVars returns variables violating safety: vars whose eq⁺ class
// contains neither a relation-atom variable nor a constant. Must be called
// on a normalized query.
func (q *CQ) unsafeVars() []string {
	cls := q.EqClassesPlus()
	atomVars := q.AtomVars()
	var out []string
	for _, v := range q.Vars() {
		ok := false
		if !cls.ConstOf(v).IsNull() || cls.HasConflict(v) {
			ok = true
		} else {
			for _, w := range cls.ClassOf(v) {
				if atomVars[w] {
					ok = true
					break
				}
			}
		}
		if !ok {
			out = append(out, v)
		}
	}
	return out
}

// String renders the rule form: "Q0(xa) :- Accident(aid, d, t), d = "...".".
func (q *CQ) String() string {
	label := q.Label
	if label == "" {
		label = "Q"
	}
	var b strings.Builder
	b.WriteString(label)
	b.WriteByte('(')
	b.WriteString(strings.Join(q.Free, ", "))
	b.WriteString(") :- ")
	var parts []string
	for _, a := range q.Atoms {
		parts = append(parts, a.String())
	}
	for _, e := range q.Eqs {
		parts = append(parts, e.String())
	}
	if len(parts) == 0 {
		parts = append(parts, "true")
	}
	b.WriteString(strings.Join(parts, ", "))
	return b.String()
}
