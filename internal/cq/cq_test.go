package cq

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value { return value.NewInt(i) }

// q0 is Q0 of Example 1.1 (normal form: constants hoisted).
func q0() *CQ {
	return &CQ{
		Label: "Q0",
		Free:  []string{"xa"},
		Atoms: []Atom{
			NewAtom("Accident", Var("aid"), Var("d"), Var("t")),
			NewAtom("Casualty", Var("cid"), Var("aid"), Var("class"), Var("vid")),
			NewAtom("Vehicle", Var("vid"), Var("dri"), Var("xa")),
		},
		Eqs: []Eq{
			{Var("d"), Const(value.NewString("Queen's Park"))},
			{Var("t"), Const(value.NewString("1/5/2005"))},
		},
	}
}

func accidentSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("Accident", "aid", "district", "date"),
		schema.MustRelation("Casualty", "cid", "aid", "class", "vid"),
		schema.MustRelation("Vehicle", "vid", "driver", "age"),
	)
}

func TestValidateQ0(t *testing.T) {
	if err := q0().Validate(accidentSchema()); err != nil {
		t.Fatalf("Q0 should validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	s := accidentSchema()
	bad := &CQ{Label: "B1", Atoms: []Atom{NewAtom("Ghost", Var("x"))}}
	if err := bad.Validate(s); err == nil {
		t.Error("unknown relation must fail")
	}
	bad = &CQ{Label: "B2", Atoms: []Atom{NewAtom("Vehicle", Var("x"))}}
	if err := bad.Validate(s); err == nil {
		t.Error("arity mismatch must fail")
	}
	bad = &CQ{Label: "B3", Free: []string{"x"}} // x unsafe: no atom, no constant
	if err := bad.Validate(s); err == nil {
		t.Error("unsafe query must fail")
	}
	bad = &CQ{Label: "B4", Eqs: []Eq{{Const(iv(1)), Const(iv(2))}}}
	if err := bad.Validate(s); err == nil {
		t.Error("constant-constant equality must fail")
	}
}

func TestSafeViaConstant(t *testing.T) {
	// Q(x) :- x = 1 is safe: x equals a constant (data-independent).
	q := &CQ{Free: []string{"x"}, Eqs: []Eq{{Var("x"), Const(iv(1))}}}
	if err := q.Validate(accidentSchema()); err != nil {
		t.Errorf("constant-pinned free var should be safe: %v", err)
	}
}

func TestNormalizeHoistsConstants(t *testing.T) {
	q := &CQ{
		Free:  []string{"x"},
		Atoms: []Atom{NewAtom("Vehicle", Const(iv(7)), Var("x"), Const(iv(9)))},
	}
	n := q.Normalize()
	if !n.IsNormalized() {
		t.Fatal("Normalize must remove constants from atoms")
	}
	if len(n.Eqs) != 2 {
		t.Fatalf("expected 2 hoisted equalities, got %v", n.Eqs)
	}
	if q.IsNormalized() {
		t.Error("receiver must not be modified")
	}
	// Idempotent.
	n2 := n.Normalize()
	if len(n2.Eqs) != len(n.Eqs) || len(n2.Atoms) != len(n.Atoms) {
		t.Error("Normalize must be idempotent on normalized queries")
	}
}

func TestNormalizeAvoidsCollision(t *testing.T) {
	q := &CQ{
		Free:  []string{"_c0"},
		Atoms: []Atom{NewAtom("Vehicle", Var("_c0"), Const(iv(1)), Var("y"))},
	}
	n := q.Normalize()
	// The fresh variable must not collide with existing _c0.
	names := make(map[string]int)
	for _, v := range n.Vars() {
		names[v]++
	}
	if len(n.Eqs) != 1 {
		t.Fatalf("Eqs = %v", n.Eqs)
	}
	hoisted := n.Eqs[0].L.V
	if hoisted == "_c0" {
		t.Error("fresh variable collided with existing _c0")
	}
}

// Example 3.8 of the paper: Q(x,y,u,v) = R(x,y) ∧ x=1 ∧ x=y ∧ u=1 ∧ u=v.
// eq(x,Q) = {x,y}, eq+(x,Q) = {x,y,u,v}; x,y data-dependent; u not.
func example38() *CQ {
	return &CQ{
		Label: "Q38",
		Free:  []string{"x", "y", "u", "v"},
		Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))},
		Eqs: []Eq{
			{Var("x"), Const(iv(1))},
			{Var("x"), Var("y")},
			{Var("u"), Const(iv(1))},
			{Var("u"), Var("v")},
		},
	}
}

func TestEqVsEqPlusExample38(t *testing.T) {
	q := example38()
	eq := q.EqClasses()
	eqp := q.EqClassesPlus()

	if got := eq.ClassOf("x"); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("eq(x) = %v, want [x y]", got)
	}
	if got := eqp.ClassOf("x"); len(got) != 4 {
		t.Errorf("eq+(x) = %v, want all four variables", got)
	}
	if !eq.Same("u", "v") {
		t.Error("u and v are eq-equal via u=v")
	}
	if eq.Same("x", "u") {
		t.Error("x and u must NOT be eq-equal (only eq+)")
	}
	if !eqp.Same("x", "u") {
		t.Error("x and u must be eq+-equal via the shared constant 1")
	}
	if !eq.IsConstantVar("y") {
		t.Error("y is a constant variable (eq(y) contains x with x=1)")
	}
	if eq.ConstOf("y") != iv(1) {
		t.Errorf("ConstOf(y) = %v", eq.ConstOf("y"))
	}
	// Data-dependence uses eq, not eq+ (the paper's reason for separating them).
	if !eq.DataDependent("x", q) || !eq.DataDependent("y", q) {
		t.Error("x, y must be data-dependent")
	}
	if eq.DataDependent("u", q) || eq.DataDependent("v", q) {
		t.Error("u, v must be data-independent")
	}
}

func TestConflictDetection(t *testing.T) {
	q := &CQ{
		Free:  []string{"x"},
		Atoms: []Atom{NewAtom("R", Var("x"), Var("x2"))},
		Eqs: []Eq{
			{Var("x"), Const(iv(1))},
			{Var("x2"), Const(iv(2))},
			{Var("x"), Var("x2")},
		},
	}
	cls := q.EqClassesPlus()
	if !cls.AnyConflict() {
		t.Error("x=1, x2=2, x=x2 must conflict")
	}
	if q.Satisfiable() {
		t.Error("conflicted query must be unsatisfiable")
	}
}

func TestVarsAndConstants(t *testing.T) {
	q := q0()
	vars := q.Vars()
	want := []string{"aid", "cid", "class", "d", "dri", "t", "vid", "xa"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Vars[%d] = %s, want %s", i, vars[i], want[i])
		}
	}
	consts := q.Constants()
	if len(consts) != 2 {
		t.Errorf("Constants = %v", consts)
	}
}

func TestOccurrenceCount(t *testing.T) {
	q := q0()
	n := q.OccurrenceCount()
	if n["cid"] != 1 || n["class"] != 1 {
		t.Errorf("cid/class should occur once: %v", n)
	}
	if n["aid"] != 2 || n["vid"] != 2 {
		t.Errorf("aid/vid should occur twice: %v", n)
	}
	if n["xa"] != 2 { // head + Vehicle atom
		t.Errorf("xa should occur twice (head counts): %v", n)
	}
	if n["d"] != 2 { // atom + equality atom
		t.Errorf("d should occur twice (equality counts): %v", n)
	}
}

func TestSubstituteAndRenameApart(t *testing.T) {
	q := q0()
	r := q.RenameApart("p_")
	if r.Free[0] != "p_xa" {
		t.Errorf("renamed free = %v", r.Free)
	}
	for _, v := range r.Vars() {
		if !strings.HasPrefix(v, "p_") {
			t.Errorf("variable %s not renamed", v)
		}
	}
	// Original untouched.
	if q.Free[0] != "xa" {
		t.Error("RenameApart must not mutate the receiver")
	}
	s := q.Substitute(map[string]Term{"dri": Const(value.NewString("alice"))})
	found := false
	for _, a := range s.Atoms {
		for _, tm := range a.Args {
			if !tm.IsVar() && tm.C == value.NewString("alice") {
				found = true
			}
		}
	}
	if !found {
		t.Error("Substitute should place the constant into the atom")
	}
}

func TestContainmentBasics(t *testing.T) {
	// Q1(x) :- R(x,y), R(y,z)   ⊆   Q2(x) :- R(x,y)
	q1 := &CQ{Free: []string{"x"}, Atoms: []Atom{
		NewAtom("R", Var("x"), Var("y")),
		NewAtom("R", Var("y"), Var("z")),
	}}
	q2 := &CQ{Free: []string{"x"}, Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))}}
	if !Contains(q1, q2) {
		t.Error("longer path query must be contained in shorter")
	}
	if Contains(q2, q1) {
		t.Error("shorter must NOT be contained in longer")
	}
}

func TestContainmentWithConstants(t *testing.T) {
	// Q1(x) :- R(x,y), y=1  ⊆  Q2(x) :- R(x,y); not conversely.
	q1 := &CQ{Free: []string{"x"},
		Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))},
		Eqs:   []Eq{{Var("y"), Const(iv(1))}}}
	q2 := &CQ{Free: []string{"x"}, Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))}}
	if !Contains(q1, q2) {
		t.Error("constant-restricted query contained in unrestricted")
	}
	if Contains(q2, q1) {
		t.Error("unrestricted not contained in restricted")
	}
}

func TestUnsatContainedInEverything(t *testing.T) {
	unsat := &CQ{Free: []string{"x"},
		Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))},
		Eqs:   []Eq{{Var("x"), Const(iv(1))}, {Var("x"), Const(iv(2))}}}
	q := &CQ{Free: []string{"x"}, Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))}}
	if !Contains(unsat, q) {
		t.Error("unsatisfiable query contained in any same-arity query")
	}
	if Contains(q, unsat) {
		t.Error("satisfiable query not contained in unsatisfiable one")
	}
}

func TestEquivalentModuloVariableNames(t *testing.T) {
	q1 := &CQ{Free: []string{"x"}, Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))}}
	q2 := q1.RenameApart("z_")
	if !Equivalent(q1, q2) {
		t.Error("alpha-renamed queries must be equivalent")
	}
}

func TestArityMismatchNotContained(t *testing.T) {
	q1 := &CQ{Free: []string{"x"}, Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))}}
	q2 := &CQ{Free: []string{"x", "y"}, Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))}}
	if Contains(q1, q2) || Contains(q2, q1) {
		t.Error("different arities are incomparable")
	}
}

func TestMinimize(t *testing.T) {
	// R(x,y) ∧ R(x,z) minimizes to R(x,y) (z,y both existential).
	q := &CQ{Free: []string{"x"}, Atoms: []Atom{
		NewAtom("R", Var("x"), Var("y")),
		NewAtom("R", Var("x"), Var("z")),
	}}
	m := q.Minimize()
	if len(m.Atoms) != 1 {
		t.Errorf("Minimize left %d atoms, want 1", len(m.Atoms))
	}
	if !Equivalent(q, m) {
		t.Error("Minimize must preserve equivalence")
	}
}

func TestMinimizeKeepsNonRedundant(t *testing.T) {
	// Path of length 2 with free endpoints is already minimal.
	q := &CQ{Free: []string{"x", "z"}, Atoms: []Atom{
		NewAtom("R", Var("x"), Var("y")),
		NewAtom("R", Var("y"), Var("z")),
	}}
	m := q.Minimize()
	if len(m.Atoms) != 2 {
		t.Errorf("Minimize dropped a needed atom: %v", m)
	}
}

func TestCanonicalizeAppliesEqualities(t *testing.T) {
	// Q(x) :- R(x,y), x=y: canonical form should use one variable.
	q := &CQ{Free: []string{"x"}, Atoms: []Atom{NewAtom("R", Var("x"), Var("y"))},
		Eqs: []Eq{{Var("x"), Var("y")}}}
	c := q.Canonicalize()
	if c.Unsat {
		t.Fatal("should be satisfiable")
	}
	a := c.Atoms[0]
	if a.Args[0] != a.Args[1] {
		t.Errorf("x=y should identify atom args: %v", a)
	}
	if c.Head[0] != a.Args[0] {
		t.Errorf("head should use the class representative: %v vs %v", c.Head, a)
	}
}

func TestCanonicalizeDedupsAtoms(t *testing.T) {
	q := &CQ{Free: []string{"x"}, Atoms: []Atom{
		NewAtom("R", Var("x"), Var("y")),
		NewAtom("R", Var("x"), Var("z")),
	}, Eqs: []Eq{{Var("y"), Var("z")}}}
	c := q.Canonicalize()
	if len(c.Atoms) != 1 {
		t.Errorf("identified atoms should dedup: %v", c.Atoms)
	}
}

func TestStringRendering(t *testing.T) {
	s := q0().String()
	if !strings.Contains(s, "Q0(xa) :- Accident(aid, d, t)") {
		t.Errorf("String = %q", s)
	}
	empty := &CQ{}
	if !strings.Contains(empty.String(), "true") {
		t.Errorf("empty body should render true: %q", empty.String())
	}
}

func TestSizeAndClone(t *testing.T) {
	q := q0()
	if q.Size() == 0 {
		t.Error("Size should be positive")
	}
	c := q.Clone()
	c.Atoms[0].Args[0] = Var("mutated")
	if q.Atoms[0].Args[0].V != "aid" {
		t.Error("Clone must deep-copy atoms")
	}
}

func TestDropDuplicateAtoms(t *testing.T) {
	q := &CQ{Free: []string{"x"}, Atoms: []Atom{
		NewAtom("R", Var("x"), Var("y")),
		NewAtom("R", Var("x"), Var("y")),
	}, Eqs: []Eq{{Var("x"), Var("x")}, {Var("x"), Var("y")}, {Var("y"), Var("x")}}}
	d := q.DropDuplicateAtoms()
	if len(d.Atoms) != 1 {
		t.Errorf("atoms = %v", d.Atoms)
	}
	if len(d.Eqs) != 1 {
		t.Errorf("eqs = %v (trivial and symmetric duplicates must go)", d.Eqs)
	}
}
