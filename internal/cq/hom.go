package cq

import (
	"repro/internal/value"
)

// Canonical is a CQ frozen modulo its equality atoms: every variable is
// replaced by its eq⁺ class representative, and pinned classes by their
// constant. It is the tableau representation (T_Q, u) the paper's
// containment machinery works on.
type Canonical struct {
	// Head is u: the head tuple over representatives/constants.
	Head []Term
	// Atoms is T_Q with arguments canonicalized.
	Atoms []Atom
	// Unsat is true when some equality class is pinned to two distinct
	// constants, making the query unsatisfiable.
	Unsat bool
}

// Canonicalize computes the tableau of q. The query is normalized first, so
// callers may pass raw queries.
func (q *CQ) Canonicalize() *Canonical {
	n := q.Normalize()
	cls := n.EqClassesPlus()
	if cls.AnyConflict() {
		return &Canonical{Unsat: true}
	}
	freeze := func(t Term) Term {
		if !t.IsVar() {
			return t
		}
		if cls.IsConstantVar(t.V) {
			return Const(cls.ConstOf(t.V))
		}
		return Var(cls.Root(t.V))
	}
	c := &Canonical{}
	for _, v := range n.Free {
		c.Head = append(c.Head, freeze(Var(v)))
	}
	for _, a := range n.Atoms {
		ca := a.Clone()
		for i := range ca.Args {
			ca.Args[i] = freeze(ca.Args[i])
		}
		// Deduplicate identical canonical atoms.
		dup := false
		for _, b := range c.Atoms {
			if ca.Equal(b) {
				dup = true
				break
			}
		}
		if !dup {
			c.Atoms = append(c.Atoms, ca)
		}
	}
	return c
}

// Vars returns the distinct variables of the canonical form.
func (c *Canonical) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t Term) {
		if t.IsVar() && !seen[t.V] {
			seen[t.V] = true
			out = append(out, t.V)
		}
	}
	for _, t := range c.Head {
		add(t)
	}
	for _, a := range c.Atoms {
		for _, t := range a.Args {
			add(t)
		}
	}
	return out
}

// Satisfiable is the classical (constraint-free) satisfiability test: a CQ
// is satisfiable iff its equality atoms are consistent. PTIME, per the
// paper's remark before Lemma 3.2.
func (q *CQ) Satisfiable() bool { return !q.Canonicalize().Unsat }

// homSearch finds a homomorphism from src (the containing query's tableau)
// into dst (the contained query's tableau viewed as a canonical instance):
// a mapping h of src's variables to dst's terms such that every src atom
// maps onto some dst atom and h(src.Head) = dst.Head element-wise.
func homSearch(src, dst *Canonical) bool {
	h := make(map[string]Term)
	// Unify heads first.
	if len(src.Head) != len(dst.Head) {
		return false
	}
	for i, t := range src.Head {
		if !bindTerm(h, t, dst.Head[i]) {
			return false
		}
	}
	return matchAtoms(src.Atoms, 0, dst, h)
}

// bindTerm extends h so that term s maps to term d; constants must match
// exactly.
func bindTerm(h map[string]Term, s, d Term) bool {
	if !s.IsVar() {
		return !d.IsVar() && s.C == d.C
	}
	if cur, ok := h[s.V]; ok {
		return cur == d
	}
	h[s.V] = d
	return true
}

func matchAtoms(atoms []Atom, i int, dst *Canonical, h map[string]Term) bool {
	if i == len(atoms) {
		return true
	}
	a := atoms[i]
	for _, b := range dst.Atoms {
		if b.Rel != a.Rel || len(b.Args) != len(a.Args) {
			continue
		}
		// Try mapping a onto b, recording new bindings for rollback.
		var added []string
		ok := true
		for j := range a.Args {
			s, d := a.Args[j], b.Args[j]
			if s.IsVar() {
				if _, bound := h[s.V]; !bound {
					added = append(added, s.V)
				}
			}
			if !bindTerm(h, s, d) {
				ok = false
				break
			}
		}
		if ok && matchAtoms(atoms, i+1, dst, h) {
			return true
		}
		for _, v := range added {
			delete(h, v)
		}
	}
	return false
}

// Contains reports classical containment q1 ⊆ q2 via the Homomorphism
// Theorem [Chandra-Merlin]: q1 ⊆ q2 iff there is a homomorphism from q2's
// tableau to q1's tableau preserving the head. Unsatisfiable q1 is contained
// in everything of the same arity.
func Contains(q1, q2 *CQ) bool {
	c1, c2 := q1.Canonicalize(), q2.Canonicalize()
	if len(q1.Free) != len(q2.Free) {
		return false
	}
	if c1.Unsat {
		return true
	}
	if c2.Unsat {
		return false
	}
	return homSearch(c2, c1)
}

// Equivalent reports classical equivalence q1 ≡ q2.
func Equivalent(q1, q2 *CQ) bool { return Contains(q1, q2) && Contains(q2, q1) }

// Minimize returns an equivalent CQ with a minimal set of relation atoms
// (the core), obtained by repeatedly dropping atoms whose removal preserves
// classical equivalence. Safety is preserved: an atom is not dropped if a
// remaining head variable would lose its only tie to the data.
func (q *CQ) Minimize() *CQ {
	cur := q.DropDuplicateAtoms()
	for {
		dropped := false
		for i := range cur.Atoms {
			cand := cur.Clone()
			cand.Atoms = append(cand.Atoms[:i:i], cand.Atoms[i+1:]...)
			if len(cand.unsafeVars()) > 0 {
				continue
			}
			// cur ⊆ cand always holds (removing a conjunct relaxes); the
			// atom is redundant iff cand ⊆ cur too.
			if Contains(cand, cur) {
				cur = cand
				dropped = true
				break
			}
		}
		if !dropped {
			return cur
		}
	}
}

// HeadConstants returns, for each head position, the pinned constant or the
// Null value when the position is a genuine variable.
func (c *Canonical) HeadConstants() []value.Value {
	out := make([]value.Value, len(c.Head))
	for i, t := range c.Head {
		if !t.IsVar() {
			out[i] = t.C
		}
	}
	return out
}
