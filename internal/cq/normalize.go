package cq

import (
	"fmt"
)

// Normalize returns an equivalent CQ in the paper's assumed form: relation
// atoms contain only variables, with constants hoisted into fresh variables
// constrained by equality atoms ("we assume w.l.o.g. that only variables
// appear in relation atoms of Q, while constants are in equality atoms").
//
// Fresh variables are named "_cN" with N chosen to avoid collisions. The
// receiver is not modified. Normalizing an already-normalized query returns
// an identical copy.
func (q *CQ) Normalize() *CQ {
	out := q.Clone()
	used := make(map[string]bool)
	for _, v := range q.Vars() {
		used[v] = true
	}
	next := 0
	fresh := func() string {
		for {
			name := fmt.Sprintf("_c%d", next)
			next++
			if !used[name] {
				used[name] = true
				return name
			}
		}
	}
	for i := range out.Atoms {
		for j, t := range out.Atoms[i].Args {
			if t.IsVar() {
				continue
			}
			v := fresh()
			out.Atoms[i].Args[j] = Var(v)
			out.Eqs = append(out.Eqs, Eq{L: Var(v), R: t})
		}
	}
	return out
}

// IsNormalized reports whether relation atoms contain only variables.
func (q *CQ) IsNormalized() bool {
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if !t.IsVar() {
				return false
			}
		}
	}
	return true
}

// Substitute returns a copy of q with variables renamed or replaced by
// constants per sub. Variables absent from sub are kept. Head variables
// mapped to constants are an error for callers to avoid; Substitute keeps
// them as-is in Free (Free is a variable list) and callers that specialize
// head variables should use specialized query types instead.
func (q *CQ) Substitute(sub map[string]Term) *CQ {
	out := q.Clone()
	apply := func(t Term) Term {
		if t.IsVar() {
			if r, ok := sub[t.V]; ok {
				return r
			}
		}
		return t
	}
	for i := range out.Atoms {
		for j := range out.Atoms[i].Args {
			out.Atoms[i].Args[j] = apply(out.Atoms[i].Args[j])
		}
	}
	for i := range out.Eqs {
		out.Eqs[i].L = apply(out.Eqs[i].L)
		out.Eqs[i].R = apply(out.Eqs[i].R)
	}
	for i, v := range out.Free {
		if r, ok := sub[v]; ok && r.IsVar() {
			out.Free[i] = r.V
		}
	}
	return out
}

// RenameApart returns a copy of q with every variable prefixed, so that two
// queries can be combined without capture.
func (q *CQ) RenameApart(prefix string) *CQ {
	sub := make(map[string]Term)
	for _, v := range q.Vars() {
		sub[v] = Var(prefix + v)
	}
	return q.Substitute(sub)
}

// DropDuplicateAtoms returns a copy of q with structurally equal relation
// atoms and equality atoms deduplicated.
func (q *CQ) DropDuplicateAtoms() *CQ {
	out := q.Clone()
	var atoms []Atom
	for _, a := range out.Atoms {
		dup := false
		for _, b := range atoms {
			if a.Equal(b) {
				dup = true
				break
			}
		}
		if !dup {
			atoms = append(atoms, a)
		}
	}
	out.Atoms = atoms
	var eqs []Eq
	for _, e := range out.Eqs {
		dup := false
		for _, f := range eqs {
			if e == f || (e.L == f.R && e.R == f.L) {
				dup = true
				break
			}
		}
		if !dup && e.L != e.R {
			eqs = append(eqs, e)
		}
	}
	out.Eqs = eqs
	return out
}
