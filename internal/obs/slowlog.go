// The structured slow-query log: when a request's wall-clock crosses
// the operator-configured threshold (-slow-query-ms on beserve and
// bequery), one JSON line goes to the log writer carrying the query's
// canonical plan-cache key, its static access bound, the flat result
// stats, and the top-3 spans by elapsed time — enough to answer "what
// was slow and where" from the log alone, greppable and jq-able.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowLog emits one JSON line per over-threshold request. The zero
// threshold disables it; a nil *SlowLog is a no-op, so frontends pass
// it around unconditionally.
type SlowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
}

// NewSlowLog returns a slow-query log writing to w for requests slower
// than threshold, or nil when threshold <= 0 (disabled).
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	if threshold <= 0 || w == nil {
		return nil
	}
	return &SlowLog{w: w, threshold: threshold}
}

// Enabled reports whether requests should carry a trace for the slow
// log's benefit.
func (l *SlowLog) Enabled() bool { return l != nil }

// SlowEntry is the slow-query log's line schema.
type SlowEntry struct {
	// Time is the entry's wall-clock timestamp, RFC3339 with millis.
	Time string `json:"time"`
	// Query is the request's source text.
	Query string `json:"query"`
	// CacheKey is the canonical plan-cache key — joins the log to
	// /v1/explain output and cache metrics.
	CacheKey string `json:"cache_key,omitempty"`
	// Bound is the plan's static access bound (fetch ceiling), when
	// the request ran via a bounded plan.
	Bound int64 `json:"bound,omitempty"`
	// Mode is how the request was served: plan, scan, or envelope.
	Mode string `json:"mode,omitempty"`
	// ElapsedMS is the request wall-clock in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Fetched/Scanned/FetchKeys mirror Result.Stats.
	Fetched   int64 `json:"fetched"`
	Scanned   int64 `json:"scanned,omitempty"`
	FetchKeys int64 `json:"fetch_keys,omitempty"`
	CacheHit  bool  `json:"cache_hit,omitempty"`
	// TopSpans are the request's three longest phases, longest first.
	TopSpans []SlowSpan `json:"top_spans,omitempty"`
}

// SlowSpan is a span digest: just enough to name the phase and its
// cost.
type SlowSpan struct {
	Name      string `json:"name"`
	Detail    string `json:"detail,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Rows      int64  `json:"rows,omitempty"`
}

// Record emits the entry if elapsed crosses the threshold. root may be
// nil (no trace was attached); the entry then has no span digest.
func (l *SlowLog) Record(entry SlowEntry, elapsed time.Duration, root *Span) {
	if l == nil || elapsed < l.threshold {
		return
	}
	entry.Time = time.Now().UTC().Format("2006-01-02T15:04:05.000Z07:00")
	entry.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	for _, s := range TopSpans(root, 3) {
		entry.TopSpans = append(entry.TopSpans, SlowSpan{
			Name:      s.Name,
			Detail:    s.Detail,
			ElapsedMS: float64(s.ElapsedNS) / 1e6,
			Rows:      s.Rows,
		})
	}
	line, err := json.Marshal(entry)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(append(line, '\n'))
}

// Threshold returns the configured slow threshold (0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}
