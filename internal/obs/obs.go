// Package obs is the engine's request-scoped observability substrate:
// a Trace carried in context.Context records a span tree — plan and
// cache lookup, every indexed fetch with its keys and rows, joins,
// dedup, the scan fallback, per-shard route-vs-scatter accounting,
// Apply's stage/validate/commit phases, WAL append+fsync, checkpoint
// writes — with monotonic timings and per-operator row counts. The
// frontends surface it as EXPLAIN ANALYZE (bequery -profile, the
// server's "profile": true NDJSON trailer) and as the slow-query log.
//
// The cardinal design constraint is that an engine serving requests
// WITHOUT tracing must not pay for the instrumentation: every record
// site first calls FromContext, which is guarded by one atomic load of
// the package-wide live-trace count and returns nil without touching
// the context when no trace exists anywhere in the process. All Trace
// and Span methods are nil-receiver-safe no-ops, so call sites need no
// second branch. The guard function is //bevet:hotpath-annotated: the
// in-tree hotpathalloc analyzer proves the disabled path stays
// allocation-free.
//
// A Trace is safe for concurrent use (streamed results drain on the
// consumer's goroutine; parallel plan workers share one request trace),
// but span NESTING follows the coordinator goroutine's call structure:
// Start pushes onto a stack, End pops. Concurrent phases record
// through counters (ShardCounters) or a single span around the fanout
// rather than per-goroutine spans.
package obs

import (
	"context"
	"encoding/json"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// live counts traces that were created and not yet finished, process
// wide. It is the one-atomic-load guard that keeps the disabled record
// path free: FromContext returns nil without a context lookup while it
// is zero.
var live atomic.Int64

// Enabled reports whether any trace is live in the process — the same
// guard FromContext uses, for callers that want to skip assembling
// trace inputs (a detail string, a counter struct) entirely.
func Enabled() bool { return live.Load() > 0 }

// traceKey is the context key a Trace travels under.
type traceKey struct{}

// NewContext returns a context carrying tr. The record sites downstream
// (plan executor, evaluator, update pipeline, durable store) discover
// it with FromContext.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the request's trace, or nil when tracing is off.
// It sits on every operator's path, so the disabled branch must stay
// one atomic load with zero allocation — the slow context lookup runs
// only while some trace is live in the process.
//
//bevet:hotpath
func FromContext(ctx context.Context) *Trace {
	if live.Load() == 0 {
		return nil
	}
	return fromContextSlow(ctx)
}

// fromContextSlow is the context lookup behind FromContext's guard; it
// runs only while at least one trace is live in the process.
func fromContextSlow(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// Span is one node of the trace tree: a named phase with its elapsed
// wall-clock and per-operator accounting. Fields are written under the
// owning trace's lock and are read-only after Trace.Finish.
type Span struct {
	// Name is the phase: "plan", "fetch", "join", "stream+dedup",
	// "scan", "apply.stage", "wal.append+fsync", "shard 2 scatter", …
	Name string `json:"name"`
	// Detail qualifies the phase: the fetch's access constraint, the
	// join's operands, cache hit/miss.
	Detail string `json:"detail,omitempty"`
	// ElapsedNS is the span's monotonic wall-clock in nanoseconds.
	// Synthesized counter spans (per-shard accounting) report 0.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Rows is the operator's output row count.
	Rows int64 `json:"rows"`
	// Fetched and Keys are the indexed-access accounting of a fetch
	// span: tuples retrieved and distinct index lookups. Summed over a
	// trace they reconcile with Result.Stats.Fetched/FetchKeys.
	Fetched int64 `json:"fetched,omitempty"`
	Keys    int64 `json:"keys,omitempty"`
	// Scanned is the scan-fallback accounting: tuples the conventional
	// evaluator read. Reconciles with Result.Stats.Scanned.
	Scanned int64 `json:"scanned,omitempty"`
	// AllocBytes is the process-global heap-allocation delta across the
	// span — an attribution HINT, not an exact per-operator figure:
	// concurrent requests allocate into the same counter.
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	// Children are the sub-phases, in start order.
	Children []*Span `json:"children,omitempty"`

	tr    *Trace
	start time.Time
	alloc uint64
}

// Trace records one request's span tree. Create with NewTrace, attach
// with NewContext, close with Finish. The zero value is not usable,
// but a nil *Trace is: every method no-ops, which is what keeps call
// sites single-branch.
type Trace struct {
	mu       sync.Mutex
	root     *Span
	stack    []*Span
	finished bool
	onFinish []func(*Trace)
}

// NewTrace starts a trace whose root span carries name; the caller owes
// a Finish (the live-trace guard counts until then).
func NewTrace(name string) *Trace {
	tr := &Trace{}
	root := &Span{Name: name, tr: tr, start: time.Now(), alloc: heapAllocBytes()}
	tr.root = root
	tr.stack = []*Span{root}
	live.Add(1)
	return tr
}

// Start opens a child span of the innermost open span and returns it;
// the caller owes an End. On a nil trace it returns nil, and every
// Span method on nil is a no-op.
func (t *Trace) Start(name string) *Span {
	return t.StartDetail(name, "")
}

// StartDetail is Start with the span's Detail set up front.
func (t *Trace) StartDetail(name, detail string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{Name: name, Detail: detail, tr: t, start: time.Now(), alloc: heapAllocBytes()}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return nil
	}
	parent := t.stack[len(t.stack)-1]
	parent.Children = append(parent.Children, sp)
	t.stack = append(t.stack, sp)
	return sp
}

// End closes the span, recording its elapsed time and allocation delta.
func (s *Span) End() {
	if s == nil {
		return
	}
	elapsed := time.Since(s.start)
	alloc := heapAllocBytes() - s.alloc
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	s.ElapsedNS = elapsed.Nanoseconds()
	s.AllocBytes = int64(alloc)
	// Pop back to the span's parent; an out-of-order End (a bug in the
	// instrumented code) pops everything above it too rather than
	// corrupting later parenting.
	for i := len(t.stack) - 1; i > 0; i-- {
		if t.stack[i] == s {
			t.stack = t.stack[:i]
			return
		}
	}
}

// SetRows records the operator's output row count.
func (s *Span) SetRows(n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Rows = n
	s.tr.mu.Unlock()
}

// SetFetch records a fetch span's indexed-access accounting.
func (s *Span) SetFetch(fetched, keys int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Fetched, s.Keys = fetched, keys
	s.tr.mu.Unlock()
}

// SetScanned records a scan span's tuples-read accounting.
func (s *Span) SetScanned(n int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Scanned = n
	s.tr.mu.Unlock()
}

// SetDetail sets the span's Detail after the fact (a cache verdict is
// only known once the lookup ran).
func (s *Span) SetDetail(d string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Detail = d
	s.tr.mu.Unlock()
}

// AddCounterSpan appends a synthesized, untimed span under the root —
// how counter-based accounting (per-shard route/scatter totals) lands
// in the tree at Finish time.
func (t *Trace) AddCounterSpan(name, detail string, rows, fetched, keys int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root.Children = append(t.root.Children, &Span{
		Name: name, Detail: detail, Rows: rows, Fetched: fetched, Keys: keys, tr: t,
	})
}

// OnFinish registers a hook Finish runs before closing the root —
// counter owners use it to convert their totals into spans.
func (t *Trace) OnFinish(fn func(*Trace)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	t.onFinish = append(t.onFinish, fn)
	t.mu.Unlock()
}

// Finish closes the trace: hooks run, the root span ends, the live
// guard drops, and the (now immutable) root is returned. Finish is
// idempotent; later calls return the same tree.
func (t *Trace) Finish() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return t.root
	}
	hooks := t.onFinish
	t.onFinish = nil
	t.mu.Unlock()
	for _, fn := range hooks {
		fn(t)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.finished {
		t.finished = true
		t.root.ElapsedNS = time.Since(t.root.start).Nanoseconds()
		t.root.AllocBytes = int64(heapAllocBytes() - t.root.alloc)
		t.stack = t.stack[:1]
		live.Add(-1)
	}
	return t.root
}

// Root returns the root span (useful mid-flight for diagnostics; the
// tree is only stable after Finish).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// JSON renders the finished span tree as a single JSON document.
func (s *Span) JSON() ([]byte, error) { return json.Marshal(s) }

// Walk visits every span of the tree depth-first, root included.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// TopSpans returns the n longest-elapsed spans below the root (the
// root itself spans the whole request and would always win), longest
// first — the slow-query log's "where did the time go" digest.
func TopSpans(root *Span, n int) []*Span {
	if root == nil || n <= 0 {
		return nil
	}
	var all []*Span
	for _, c := range root.Children {
		c.Walk(func(s *Span) { all = append(all, s) })
	}
	// Insertion sort into a bounded prefix: n is tiny (3).
	var top []*Span
	for _, s := range all {
		i := len(top)
		for i > 0 && top[i-1].ElapsedNS < s.ElapsedNS {
			i--
		}
		if i < n {
			top = append(top, nil)
			copy(top[i+1:], top[i:])
			top[i] = s
			if len(top) > n {
				top = top[:n]
			}
		}
	}
	return top
}

// heapAllocSample is the runtime/metrics sample name behind span
// allocation deltas: cumulative heap bytes allocated, process-wide.
const heapAllocSample = "/gc/heap/allocs:bytes"

// heapAllocBytes reads the cumulative heap allocation counter. Unlike
// runtime.ReadMemStats it does not stop the world, so sampling it per
// span is affordable on the (opt-in) traced path.
func heapAllocBytes() uint64 {
	sample := []metrics.Sample{{Name: heapAllocSample}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
