// Prometheus-style fixed-bucket histograms for the /metrics surface.
// Stdlib-only: bucket counts are atomics, the float sum is maintained
// by a Float64bits compare-and-swap, and exposition renders the
// cumulative le-bucket form Prometheus expects. Bucket bounds are fixed
// at construction so the exposition's line set — which the server's
// golden test pins — never varies at runtime.
package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a fixed-bucket, concurrency-safe histogram. Observe is
// lock-free; Write renders the Prometheus exposition lines.
type Histogram struct {
	name    string
	help    string
	labels  string          // extra label pairs, e.g. `peer="0",`; may be empty
	bounds  []float64       // upper bounds, ascending; +Inf implicit
	buckets []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count   atomic.Uint64
	sum     atomic.Uint64 // Float64bits of the running sum
}

// NewHistogram builds a histogram with the given ascending upper
// bounds. The +Inf bucket is implicit.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		name:    name,
		help:    help,
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// NewLabeledHistogram is NewHistogram with one constant label pair
// stamped on every exposition line (`name_bucket{peer="0",le="…"}`), so
// a family of histograms — one per cluster peer — shares a metric name
// without colliding. HELP/TYPE headers are suppressed here; the family
// writes one header via WriteFamilyHeader before its members.
func NewLabeledHistogram(name, label, value string, bounds []float64) *Histogram {
	h := NewHistogram(name, "", bounds)
	h.labels = label + "=" + strconv.Quote(value) + ","
	return h
}

// WriteFamilyHeader writes the shared HELP/TYPE header for a labeled
// histogram family.
func WriteFamilyHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
}

// LatencyBuckets is the bound set shared by the query- and
// apply-latency histograms: 100µs to ~10s, roughly ×3 steps.
func LatencyBuckets() []float64 {
	return []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10}
}

// SizeBuckets is the bound set for per-request magnitude histograms
// (fetch keys issued, rows streamed): 1 to 1e6, decade steps with a
// mid-decade point.
func SizeBuckets() []float64 {
	return []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 100000, 1000000}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Write renders the histogram in Prometheus text exposition format:
// HELP and TYPE headers, cumulative le buckets ending at +Inf, then
// _sum and _count.
func (h *Histogram) Write(w io.Writer) {
	if h.labels == "" {
		fmt.Fprintf(w, "# HELP %s %s\n", h.name, h.help)
		fmt.Fprintf(w, "# TYPE %s histogram\n", h.name)
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", h.name, h.labels, formatBound(b), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", h.name, h.labels, cum)
	if h.labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", h.name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
		fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
		return
	}
	braced := "{" + h.labels[:len(h.labels)-1] + "}"
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, braced, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, braced, h.count.Load())
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest round-trip decimal, no exponent for the magnitudes we use.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'f', -1, 64)
}
