// ShardCounters: per-shard route-vs-scatter accounting for traced
// requests. The shard engine's fetchers run on whatever goroutine the
// plan executor schedules, so they can't open spans (span nesting
// follows the coordinator's stack); instead a traced request carries
// one of these and the fetchers bump atomics. At Trace.Finish an
// OnFinish hook folds the totals into synthesized per-shard spans:
// "shard 2 route" / "shard 2 scatter" with keys and rows.
package obs

import (
	"strconv"
	"sync/atomic"
)

// ShardCounters accumulates per-shard fetch accounting for one traced
// request. Index by shard; route and scatter are counted separately so
// a profile shows whether the planner's alignment analysis paid off.
type ShardCounters struct {
	label  string // span-name prefix: "shard" in-process, "peer" over the wire
	shards []shardCell
}

type shardCell struct {
	routeKeys   atomic.Int64
	routeRows   atomic.Int64
	scatterKeys atomic.Int64
	scatterRows atomic.Int64
}

// NewShardCounters returns counters for k shards and registers the
// finish hook that turns them into spans on tr. Returns nil (a no-op
// receiver) when tr is nil.
func NewShardCounters(tr *Trace, k int) *ShardCounters {
	return newLabeledCounters(tr, k, "shard")
}

// NewPeerCounters is NewShardCounters for a networked coordinator: the
// same route/scatter accounting, emitted as "peer N route" /
// "peer N scatter" spans so a profile distinguishes in-process shard
// traffic from RPC traffic to cluster peers.
func NewPeerCounters(tr *Trace, k int) *ShardCounters {
	return newLabeledCounters(tr, k, "peer")
}

func newLabeledCounters(tr *Trace, k int, label string) *ShardCounters {
	if tr == nil || k <= 0 {
		return nil
	}
	sc := &ShardCounters{label: label, shards: make([]shardCell, k)}
	tr.OnFinish(func(t *Trace) { sc.emit(t) })
	return sc
}

// Route records an aligned (single-shard routed) fetch: one key lookup
// on shard i yielding rows tuples.
func (sc *ShardCounters) Route(i int, keys, rows int64) {
	if sc == nil {
		return
	}
	sc.shards[i].routeKeys.Add(keys)
	sc.shards[i].routeRows.Add(rows)
}

// Scatter records a broadcast fetch's per-shard share: the key was
// asked of shard i and yielded rows tuples.
func (sc *ShardCounters) Scatter(i int, keys, rows int64) {
	if sc == nil {
		return
	}
	sc.shards[i].scatterKeys.Add(keys)
	sc.shards[i].scatterRows.Add(rows)
}

// emit synthesizes the per-shard spans onto t. Shards that saw no
// traffic emit nothing, so a routed-only profile stays terse.
func (sc *ShardCounters) emit(t *Trace) {
	for i := range sc.shards {
		c := &sc.shards[i]
		if k, r := c.routeKeys.Load(), c.routeRows.Load(); k > 0 || r > 0 {
			t.AddCounterSpan(sc.label+" "+strconv.Itoa(i)+" route", "", r, r, k)
		}
		if k, r := c.scatterKeys.Load(), c.scatterRows.Load(); k > 0 || r > 0 {
			t.AddCounterSpan(sc.label+" "+strconv.Itoa(i)+" scatter", "", r, r, k)
		}
	}
}
