package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFromContextDisabledIsNil(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext with no live trace = %v, want nil", got)
	}
	if Enabled() {
		t.Fatal("Enabled() = true with no live trace")
	}
}

func TestFromContextDisabledAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		if FromContext(ctx) != nil {
			t.Fatal("unexpected trace")
		}
	})
	if allocs != 0 {
		t.Fatalf("FromContext disabled path allocates %v per call, want 0", allocs)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace("query")
	defer tr.Finish()
	if !Enabled() {
		t.Fatal("Enabled() = false with a live trace")
	}
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %v, want the attached trace", got)
	}
	// A context without the trace still yields nil even while the
	// guard is hot.
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare ctx = %v, want nil", got)
	}
}

func TestSpanTreeNesting(t *testing.T) {
	tr := NewTrace("root")
	a := tr.Start("a")
	aa := tr.StartDetail("aa", "inner")
	aa.SetRows(3)
	aa.End()
	a.End()
	b := tr.Start("b")
	b.SetFetch(10, 2)
	b.End()
	root := tr.Finish()

	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	if root.Children[0].Name != "a" || root.Children[1].Name != "b" {
		t.Fatalf("children = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	inner := root.Children[0].Children
	if len(inner) != 1 || inner[0].Name != "aa" || inner[0].Detail != "inner" || inner[0].Rows != 3 {
		t.Fatalf("nested span wrong: %+v", inner)
	}
	if b := root.Children[1]; b.Fetched != 10 || b.Keys != 2 {
		t.Fatalf("fetch accounting wrong: %+v", b)
	}
	if root.ElapsedNS <= 0 {
		t.Fatalf("root elapsed = %d, want > 0", root.ElapsedNS)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	sp.End()
	sp.SetRows(1)
	sp.SetFetch(1, 1)
	sp.SetScanned(1)
	sp.SetDetail("d")
	tr.AddCounterSpan("c", "", 0, 0, 0)
	tr.OnFinish(func(*Trace) {})
	if tr.Finish() != nil || tr.Root() != nil {
		t.Fatal("nil trace returned non-nil span")
	}
	var sc *ShardCounters
	sc.Route(0, 1, 1)
	sc.Scatter(0, 1, 1)
	var sl *SlowLog
	sl.Record(SlowEntry{}, time.Hour, nil)
	if sl.Enabled() || sl.Threshold() != 0 {
		t.Fatal("nil slowlog should be disabled")
	}
}

func TestFinishIdempotentAndLiveGuard(t *testing.T) {
	before := live.Load()
	tr := NewTrace("q")
	if live.Load() != before+1 {
		t.Fatalf("live = %d after NewTrace, want %d", live.Load(), before+1)
	}
	r1 := tr.Finish()
	r2 := tr.Finish()
	if r1 != r2 {
		t.Fatal("Finish not idempotent")
	}
	if live.Load() != before {
		t.Fatalf("live = %d after Finish, want %d", live.Load(), before)
	}
	// Starting spans after Finish is a no-op, not a corruption.
	if sp := tr.Start("late"); sp != nil {
		t.Fatal("Start after Finish returned a span")
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTrace("q")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := tr.Start("w")
				sp.SetRows(1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	root := tr.Finish()
	var n int
	root.Walk(func(*Span) { n++ })
	if n != 1+8*100 {
		t.Fatalf("span count = %d, want %d", n, 1+8*100)
	}
}

func TestShardCountersEmit(t *testing.T) {
	tr := NewTrace("q")
	sc := NewShardCounters(tr, 4)
	sc.Route(1, 2, 5)
	sc.Scatter(0, 1, 3)
	sc.Scatter(2, 1, 0) // keys but no rows still emits
	root := tr.Finish()

	want := map[string][3]int64{ // name -> rows, fetched, keys
		"shard 1 route":   {5, 5, 2},
		"shard 0 scatter": {3, 3, 1},
		"shard 2 scatter": {0, 0, 1},
	}
	seen := map[string]bool{}
	for _, c := range root.Children {
		w, ok := want[c.Name]
		if !ok {
			t.Fatalf("unexpected counter span %q", c.Name)
		}
		if c.Rows != w[0] || c.Fetched != w[1] || c.Keys != w[2] {
			t.Fatalf("%s = rows %d fetched %d keys %d, want %v", c.Name, c.Rows, c.Fetched, c.Keys, w)
		}
		seen[c.Name] = true
	}
	if len(seen) != len(want) {
		t.Fatalf("saw %d counter spans, want %d", len(seen), len(want))
	}
}

func TestTopSpans(t *testing.T) {
	root := &Span{Name: "root", ElapsedNS: 100}
	add := func(name string, ns int64) *Span {
		s := &Span{Name: name, ElapsedNS: ns}
		root.Children = append(root.Children, s)
		return s
	}
	add("a", 5)
	b := add("b", 50)
	b.Children = append(b.Children, &Span{Name: "b1", ElapsedNS: 40})
	add("c", 10)
	add("d", 1)

	top := TopSpans(root, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d, want 3", len(top))
	}
	if top[0].Name != "b" || top[1].Name != "b1" || top[2].Name != "c" {
		t.Fatalf("top = %s,%s,%s", top[0].Name, top[1].Name, top[2].Name)
	}
}

func TestHistogramObserveAndWrite(t *testing.T) {
	h := NewHistogram("x_seconds", "test histogram", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	h.Write(&buf)
	want := `# HELP x_seconds test histogram
# TYPE x_seconds histogram
x_seconds_bucket{le="0.1"} 1
x_seconds_bucket{le="1"} 3
x_seconds_bucket{le="10"} 4
x_seconds_bucket{le="+Inf"} 5
x_seconds_sum 56.05
x_seconds_count 5
`
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c", "concurrent", LatencyBuckets())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.002)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if got, want := h.Sum(), 16.0; got < want-1e-6 || got > want+1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestSlowLogThresholdAndShape(t *testing.T) {
	var buf bytes.Buffer
	sl := NewSlowLog(&buf, 10*time.Millisecond)
	if !sl.Enabled() {
		t.Fatal("slowlog should be enabled")
	}

	// Under threshold: nothing.
	sl.Record(SlowEntry{Query: "fast"}, time.Millisecond, nil)
	if buf.Len() != 0 {
		t.Fatalf("under-threshold request logged: %q", buf.String())
	}

	root := &Span{Name: "query"}
	root.Children = []*Span{
		{Name: "plan", ElapsedNS: 2e6},
		{Name: "fetch", Detail: "T0[x->y]", ElapsedNS: 9e6, Rows: 42},
	}
	sl.Record(SlowEntry{
		Query: "slow", CacheKey: "k", Bound: 7, Mode: "plan",
		Fetched: 42, FetchKeys: 3, CacheHit: true,
	}, 25*time.Millisecond, root)

	var entry SlowEntry
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("slow log line is not JSON: %v (%q)", err, buf.String())
	}
	if entry.Query != "slow" || entry.CacheKey != "k" || entry.Bound != 7 || !entry.CacheHit {
		t.Fatalf("entry fields wrong: %+v", entry)
	}
	if entry.ElapsedMS < 24.9 || entry.ElapsedMS > 25.1 {
		t.Fatalf("elapsed_ms = %v, want ~25", entry.ElapsedMS)
	}
	if len(entry.TopSpans) != 2 || entry.TopSpans[0].Name != "fetch" || entry.TopSpans[0].Rows != 42 {
		t.Fatalf("top spans wrong: %+v", entry.TopSpans)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatal("slow log line must end in newline")
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("want exactly one line, got %d", got)
	}
}

func TestNewSlowLogDisabled(t *testing.T) {
	if NewSlowLog(&bytes.Buffer{}, 0) != nil {
		t.Fatal("threshold 0 should disable")
	}
	if NewSlowLog(nil, time.Second) != nil {
		t.Fatal("nil writer should disable")
	}
}

func TestSpanJSONSchema(t *testing.T) {
	root := &Span{
		Name: "query", ElapsedNS: 1000, Rows: 2,
		Children: []*Span{{Name: "fetch", Detail: "T0", ElapsedNS: 400, Fetched: 5, Keys: 1}},
	}
	b, err := root.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"name", "elapsed_ns", "rows", "children"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("span JSON missing %q: %s", k, b)
		}
	}
	// Empty accounting fields are omitted.
	if _, ok := m["fetched"]; ok {
		t.Fatalf("root span should omit fetched: %s", b)
	}
}
