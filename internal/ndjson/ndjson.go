// Package ndjson renders engine results as newline-delimited JSON — one
// row object per line, columns in plan order. It is the ONE row encoder
// shared by cmd/bequery's -stream mode and internal/server's /v1/query
// response, which is what makes the network wire format byte-identical
// to the CLI's golden files (pinned by internal/server's e2e suite).
package ndjson

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/value"
)

// Write drains res's row iterator into w, one JSON object per line. Rows
// are emitted as the engine produces them (for a streamed result nothing
// is materialized); column names are marshaled once, outside the row
// loop. After the iterator stops, Write returns the result's deferred
// execution error, so a stream cut short by a deadline or disconnect
// surfaces to the caller instead of reading as a complete answer.
//
// flush, when non-nil, runs after every line — the server passes the
// HTTP flusher so rows reach a streaming client as they are produced.
func Write(w io.Writer, res *core.Result, flush func()) error {
	var names [][]byte
	nameFor := func(j int) ([]byte, error) {
		for len(names) <= j {
			col := fmt.Sprintf("col%d", len(names))
			if len(names) < len(res.Columns) {
				col = res.Columns[len(names)]
			}
			enc, err := json.Marshal(col)
			if err != nil {
				return nil, err
			}
			names = append(names, enc)
		}
		return names[j], nil
	}
	for row := range res.Seq() {
		var sb strings.Builder
		sb.WriteByte('{')
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(',')
			}
			name, err := nameFor(j)
			if err != nil {
				return err
			}
			cell, err := json.Marshal(jsonValue(v))
			if err != nil {
				return err
			}
			sb.Write(name)
			sb.WriteByte(':')
			sb.Write(cell)
		}
		sb.WriteByte('}')
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
		if flush != nil {
			flush()
		}
	}
	return res.Err()
}

// WriteProfile emits the EXPLAIN ANALYZE trailer: one NDJSON line whose
// single "profile" key holds the request's finished span tree. It goes
// after the row lines (and, over HTTP, before the trailers), so a plain
// row consumer distinguishes it by the key — no row object ever has a
// "profile" column because column names come from query variables.
// Shared by bequery -profile and the server's "profile": true so the
// wire output stays byte-identical to the CLI.
func WriteProfile(w io.Writer, root *obs.Span, flush func()) error {
	if root == nil {
		return nil
	}
	enc, err := json.Marshal(struct {
		Profile *obs.Span `json:"profile"`
	}{root})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, string(enc)); err != nil {
		return err
	}
	if flush != nil {
		flush()
	}
	return nil
}

// jsonValue maps an engine value to its natural JSON type.
func jsonValue(v value.Value) interface{} {
	if v.Kind() == value.Int {
		return v.Int()
	}
	return v.Str()
}
