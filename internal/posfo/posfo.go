// Package posfo implements positive existential FO queries (∃FO⁺, a.k.a.
// SPJU): formulas built from relation atoms and equality atoms, closed
// under ∧, ∨ and ∃ (Section 2 of the paper).
//
// Every ∃FO⁺ query is equivalent to a UCQ; ToUCQ performs the DNF expansion
// and yields the CQ sub-queries that the coverage, envelope and
// specialization analyses consume ("for a query Q in ∃FO⁺, a CQ sub-query
// of Q is a CQ sub-query in the UCQ equivalence of Q").
package posfo

import (
	"fmt"
	"strings"

	"repro/internal/cq"
	"repro/internal/schema"
)

// Formula is a node of an ∃FO⁺ formula tree.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Atom is a relation atom.
type Atom struct {
	Rel  string
	Args []cq.Term
}

func (Atom) isFormula() {}
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Eq is an equality atom t1 = t2.
type Eq struct {
	L, R cq.Term
}

func (Eq) isFormula()       {}
func (e Eq) String() string { return e.L.String() + " = " + e.R.String() }

// And is conjunction of one or more formulas.
type And struct {
	Fs []Formula
}

func (And) isFormula() {}
func (a And) String() string {
	parts := make([]string, len(a.Fs))
	for i, f := range a.Fs {
		parts[i] = maybeParen(f)
	}
	return strings.Join(parts, " ∧ ")
}

// Or is disjunction of one or more formulas.
type Or struct {
	Fs []Formula
}

func (Or) isFormula() {}
func (o Or) String() string {
	parts := make([]string, len(o.Fs))
	for i, f := range o.Fs {
		parts[i] = maybeParen(f)
	}
	return strings.Join(parts, " ∨ ")
}

// Exists is existential quantification ∃v̄ (body). In the CQ translation
// every non-free variable is existential, so Exists mainly documents
// scoping; ToUCQ validates that quantified variables are not free.
type Exists struct {
	Vars []string
	Body Formula
}

func (Exists) isFormula() {}
func (e Exists) String() string {
	return "∃" + strings.Join(e.Vars, ",") + " (" + e.Body.String() + ")"
}

func maybeParen(f Formula) string {
	switch f.(type) {
	case Or, And:
		return "(" + f.String() + ")"
	default:
		return f.String()
	}
}

// Query is a named ∃FO⁺ query with a free-variable tuple.
type Query struct {
	Label string
	Free  []string
	Body  Formula
}

// String renders the rule form.
func (q *Query) String() string {
	return fmt.Sprintf("%s(%s) :- %s", q.Label, strings.Join(q.Free, ", "), q.Body)
}

// MaxDisjuncts caps the DNF expansion; ∃FO⁺ → UCQ can be exponential.
const MaxDisjuncts = 4096

// ToUCQ converts the query to its UCQ equivalent: a slice of CQ
// sub-queries. Quantified variables must not clash with free variables.
func (q *Query) ToUCQ() ([]*cq.CQ, error) {
	free := make(map[string]bool)
	for _, v := range q.Free {
		free[v] = true
	}
	disjuncts, err := dnf(q.Body, free)
	if err != nil {
		return nil, fmt.Errorf("posfo: %s: %w", q.Label, err)
	}
	out := make([]*cq.CQ, len(disjuncts))
	for i, d := range disjuncts {
		out[i] = &cq.CQ{
			Label: fmt.Sprintf("%s_%d", q.Label, i+1),
			Free:  append([]string(nil), q.Free...),
			Atoms: d.atoms,
			Eqs:   d.eqs,
		}
	}
	return out, nil
}

// conj is one DNF disjunct under construction.
type conj struct {
	atoms []cq.Atom
	eqs   []cq.Eq
}

func (c conj) clone() conj {
	return conj{
		atoms: append([]cq.Atom(nil), c.atoms...),
		eqs:   append([]cq.Eq(nil), c.eqs...),
	}
}

// dnf expands f into disjuncts.
func dnf(f Formula, free map[string]bool) ([]conj, error) {
	switch n := f.(type) {
	case Atom:
		return []conj{{atoms: []cq.Atom{cq.NewAtom(n.Rel, n.Args...)}}}, nil
	case Eq:
		return []conj{{eqs: []cq.Eq{{L: n.L, R: n.R}}}}, nil
	case And:
		acc := []conj{{}}
		for _, sub := range n.Fs {
			ds, err := dnf(sub, free)
			if err != nil {
				return nil, err
			}
			var next []conj
			for _, a := range acc {
				for _, d := range ds {
					m := a.clone()
					m.atoms = append(m.atoms, d.atoms...)
					m.eqs = append(m.eqs, d.eqs...)
					next = append(next, m)
					if len(next) > MaxDisjuncts {
						return nil, fmt.Errorf("DNF expansion exceeds %d disjuncts", MaxDisjuncts)
					}
				}
			}
			acc = next
		}
		return acc, nil
	case Or:
		var acc []conj
		for _, sub := range n.Fs {
			ds, err := dnf(sub, free)
			if err != nil {
				return nil, err
			}
			acc = append(acc, ds...)
			if len(acc) > MaxDisjuncts {
				return nil, fmt.Errorf("DNF expansion exceeds %d disjuncts", MaxDisjuncts)
			}
		}
		return acc, nil
	case Exists:
		for _, v := range n.Vars {
			if free[v] {
				return nil, fmt.Errorf("quantified variable %s is free in the query", v)
			}
		}
		return dnf(n.Body, free)
	default:
		return nil, fmt.Errorf("unknown formula node %T", f)
	}
}

// Validate checks relation arities against the schema and that the UCQ
// conversion succeeds with safe sub-queries.
func (q *Query) Validate(s *schema.Schema) error {
	var check func(f Formula) error
	check = func(f Formula) error {
		switch n := f.(type) {
		case Atom:
			rs, ok := s.Relation(n.Rel)
			if !ok {
				return fmt.Errorf("posfo: %s: unknown relation %s", q.Label, n.Rel)
			}
			if len(n.Args) != rs.Arity() {
				return fmt.Errorf("posfo: %s: atom %s has arity %d, schema wants %d",
					q.Label, n, len(n.Args), rs.Arity())
			}
		case And:
			for _, sub := range n.Fs {
				if err := check(sub); err != nil {
					return err
				}
			}
		case Or:
			for _, sub := range n.Fs {
				if err := check(sub); err != nil {
					return err
				}
			}
		case Exists:
			return check(n.Body)
		}
		return nil
	}
	if err := check(q.Body); err != nil {
		return err
	}
	subs, err := q.ToUCQ()
	if err != nil {
		return err
	}
	for _, sub := range subs {
		if err := sub.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

// QueryLabel implements the serving-layer Query interface of
// internal/core.
func (q *Query) QueryLabel() string { return q.Label }

// QueryCQs returns the query's UCQ normal form via the DNF expansion.
func (q *Query) QueryCQs() ([]*cq.CQ, error) { return q.ToUCQ() }
