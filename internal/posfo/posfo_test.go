package posfo

import (
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value { return value.NewInt(i) }

func testSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("R", "A", "B"),
		schema.MustRelation("S", "A", "B"),
	)
}

func TestToUCQSimpleUnion(t *testing.T) {
	// Q(x) :- R(x,y) ∨ S(x,y)
	q := &Query{
		Label: "QU", Free: []string{"x"},
		Body: Exists{Vars: []string{"y"}, Body: Or{Fs: []Formula{
			Atom{Rel: "R", Args: []cq.Term{cq.Var("x"), cq.Var("y")}},
			Atom{Rel: "S", Args: []cq.Term{cq.Var("x"), cq.Var("y")}},
		}}},
	}
	subs, err := q.ToUCQ()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("disjuncts = %d, want 2", len(subs))
	}
	if subs[0].Atoms[0].Rel != "R" || subs[1].Atoms[0].Rel != "S" {
		t.Errorf("unexpected disjuncts: %v, %v", subs[0], subs[1])
	}
}

func TestToUCQDistributesAndOverOr(t *testing.T) {
	// R(x,y) ∧ (S(x,z) ∨ S(z,x)): two disjuncts, each with 2 atoms.
	q := &Query{
		Label: "QD", Free: []string{"x"},
		Body: And{Fs: []Formula{
			Atom{Rel: "R", Args: []cq.Term{cq.Var("x"), cq.Var("y")}},
			Or{Fs: []Formula{
				Atom{Rel: "S", Args: []cq.Term{cq.Var("x"), cq.Var("z")}},
				Atom{Rel: "S", Args: []cq.Term{cq.Var("z"), cq.Var("x")}},
			}},
		}},
	}
	subs, err := q.ToUCQ()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("disjuncts = %d, want 2", len(subs))
	}
	for _, sub := range subs {
		if len(sub.Atoms) != 2 {
			t.Errorf("each disjunct needs both atoms: %v", sub)
		}
	}
}

func TestToUCQNestedOrBlowup(t *testing.T) {
	// (a1 ∨ a2) ∧ (a3 ∨ a4): 4 disjuncts.
	mk := func(rel string) Formula {
		return Atom{Rel: rel, Args: []cq.Term{cq.Var("x"), cq.Var("y")}}
	}
	q := &Query{
		Label: "QB", Free: []string{"x"},
		Body: And{Fs: []Formula{
			Or{Fs: []Formula{mk("R"), mk("S")}},
			Or{Fs: []Formula{mk("R"), mk("S")}},
		}},
	}
	subs, err := q.ToUCQ()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Errorf("disjuncts = %d, want 4", len(subs))
	}
}

func TestToUCQEqualities(t *testing.T) {
	q := &Query{
		Label: "QE", Free: []string{"x"},
		Body: And{Fs: []Formula{
			Atom{Rel: "R", Args: []cq.Term{cq.Var("x"), cq.Var("y")}},
			Eq{L: cq.Var("y"), R: cq.Const(iv(5))},
		}},
	}
	subs, err := q.ToUCQ()
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || len(subs[0].Eqs) != 1 {
		t.Fatalf("equalities should survive: %v", subs)
	}
}

func TestQuantifiedFreeClash(t *testing.T) {
	q := &Query{
		Label: "QC", Free: []string{"x"},
		Body: Exists{Vars: []string{"x"}, Body: Atom{Rel: "R", Args: []cq.Term{cq.Var("x"), cq.Var("y")}}},
	}
	if _, err := q.ToUCQ(); err == nil {
		t.Error("quantifying a free variable must error")
	}
}

func TestValidate(t *testing.T) {
	s := testSchema()
	good := &Query{
		Label: "QV", Free: []string{"x"},
		Body: Atom{Rel: "R", Args: []cq.Term{cq.Var("x"), cq.Const(iv(1))}},
	}
	if err := good.Validate(s); err != nil {
		t.Errorf("good query rejected: %v", err)
	}
	badRel := &Query{Label: "QR", Body: Atom{Rel: "T", Args: nil}}
	if err := badRel.Validate(s); err == nil {
		t.Error("unknown relation must fail")
	}
	badArity := &Query{Label: "QA", Body: Atom{Rel: "R", Args: []cq.Term{cq.Var("x")}}}
	if err := badArity.Validate(s); err == nil {
		t.Error("bad arity must fail")
	}
	unsafe := &Query{Label: "QS", Free: []string{"x"},
		Body: Atom{Rel: "R", Args: []cq.Term{cq.Var("y"), cq.Var("z")}}}
	if err := unsafe.Validate(s); err == nil {
		t.Error("unsafe free variable must fail")
	}
}

func TestStringRendering(t *testing.T) {
	q := &Query{
		Label: "QS", Free: []string{"x"},
		Body: Or{Fs: []Formula{
			And{Fs: []Formula{
				Atom{Rel: "R", Args: []cq.Term{cq.Var("x"), cq.Var("y")}},
				Eq{L: cq.Var("y"), R: cq.Const(iv(1))},
			}},
			Atom{Rel: "S", Args: []cq.Term{cq.Var("x"), cq.Var("y")}},
		}},
	}
	out := q.String()
	for _, want := range []string{"QS(x)", "∨", "∧", "y = 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q: %s", want, out)
		}
	}
}
