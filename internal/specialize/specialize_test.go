package specialize

import (
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value                          { return value.NewInt(i) }
func sv(s string) value.Value                         { return value.NewString(s) }
func attrs(as ...schema.Attribute) []schema.Attribute { return as }

func accidentSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("Accident", "aid", "district", "date"),
		schema.MustRelation("Casualty", "cid", "aid", "class", "vid"),
		schema.MustRelation("Vehicle", "vid", "driver", "age"),
	)
}

func psi() *access.Schema {
	return access.NewSchema(
		access.NewConstraint("Accident", attrs("date"), attrs("aid"), 610),
		access.NewConstraint("Casualty", attrs("aid"), attrs("vid"), 192),
		access.NewConstraint("Accident", attrs("aid"), attrs("district", "date"), 1),
		access.NewConstraint("Vehicle", attrs("vid"), attrs("driver", "age"), 1),
	)
}

// q51 is Example 5.1's parameterized query: Q(xa) over the accident schema
// with parameters {date, district}.
func q51() *cq.CQ {
	return &cq.CQ{
		Label: "Q51", Free: []string{"xa"},
		Atoms: []cq.Atom{
			cq.NewAtom("Accident", cq.Var("aid"), cq.Var("district"), cq.Var("date")),
			cq.NewAtom("Casualty", cq.Var("cid"), cq.Var("aid"), cq.Var("class"), cq.Var("vid")),
			cq.NewAtom("Vehicle", cq.Var("vid"), cq.Var("dri"), cq.Var("xa")),
		},
	}
}

// Example 5.1: instantiating date alone makes Q boundedly evaluable;
// district alone does not.
func TestExample51DateSuffices(t *testing.T) {
	res, err := Decide(q51(), psi(), accidentSchema(), []string{"date", "district"}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("Q51 must be boundedly specializable with one parameter: %s", res.Reason)
	}
	if len(res.Params) != 1 || res.Params[0] != "date" {
		t.Errorf("chosen parameters = %v, want [date]", res.Params)
	}
	if !res.Minimum {
		t.Error("exact search result must be marked minimum")
	}
}

func TestExample51DistrictAloneFails(t *testing.T) {
	res, err := Decide(q51(), psi(), accidentSchema(), []string{"district"}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Errorf("district alone must not suffice (paper remark); got %v", res.Params)
	}
	if res.Reason == "" {
		t.Error("failure must carry a reason")
	}
}

func TestAlreadyCoveredNeedsNoParams(t *testing.T) {
	q := q51()
	q.Eqs = []cq.Eq{
		{L: cq.Var("date"), R: cq.Const(sv("1/5/2005"))},
	}
	res, err := Decide(q, psi(), accidentSchema(), []string{"district"}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Params) != 0 {
		t.Errorf("pre-specialized query needs no parameters: %+v", res)
	}
}

func TestUnknownParameterRejected(t *testing.T) {
	if _, err := Decide(q51(), psi(), accidentSchema(), []string{"ghost"}, 1, Options{}); err == nil {
		t.Error("unknown parameter must error")
	}
}

func TestInstantiateConcrete(t *testing.T) {
	q := q51()
	spec := Instantiate(q, map[string]value.Value{
		"date":     sv("1/5/2005"),
		"district": sv("Queen's Park"),
	})
	if len(spec.Eqs) != 2 {
		t.Fatalf("expected 2 added equalities: %v", spec.Eqs)
	}
	// Instantiated query is Q0 of Example 1.1 modulo formulation.
	if !strings.Contains(spec.String(), `"1/5/2005"`) {
		t.Errorf("instantiation missing date: %s", spec)
	}
}

func TestWithParamsFreshConstantsDistinct(t *testing.T) {
	q := q51()
	g := WithParams(q, []string{"date", "district"})
	consts := g.Constants()
	if len(consts) != 2 {
		t.Fatalf("two fresh constants expected: %v", consts)
	}
	if consts[0] == consts[1] {
		t.Error("fresh constants must be pairwise distinct")
	}
}

// Example 5.2 (MSC encoding, scaled down): relations Ri(A,B1,B2,B3) with
// key constraints both ways; the Boolean query needs one y_i per "set" and
// choosing which y's to instantiate is set cover. With n=3 sets where set 1
// alone covers everything reachable, the minimum is 1.
func TestExample52SetCoverShape(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("R1", "A", "B1", "B2", "B3"),
		schema.MustRelation("R2", "A", "B1", "B2", "B3"),
	)
	var cs []access.Constraint
	for _, r := range []string{"R1", "R2"} {
		cs = append(cs,
			access.NewConstraint(r, attrs("A"), attrs("B1", "B2", "B3"), 1),
			access.NewConstraint(r, attrs("B1"), attrs("A"), 1),
			access.NewConstraint(r, attrs("B2"), attrs("A"), 1),
			access.NewConstraint(r, attrs("B3"), attrs("A"), 1),
		)
	}
	a := access.NewSchema(cs...)
	// Q() = R1(1,1,1,1) ∧ R2(1,1,1,1) ∧ R1(y1,z11,z12,z13) ∧ R2(y2,z21,z22,z23)
	q := &cq.CQ{
		Label: "Q52",
		Atoms: []cq.Atom{
			cq.NewAtom("R1", cq.Const(iv(1)), cq.Const(iv(1)), cq.Const(iv(1)), cq.Const(iv(1))),
			cq.NewAtom("R2", cq.Const(iv(1)), cq.Const(iv(1)), cq.Const(iv(1)), cq.Const(iv(1))),
			cq.NewAtom("R1", cq.Var("y1"), cq.Var("z11"), cq.Var("z12"), cq.Var("z13")),
			cq.NewAtom("R2", cq.Var("y2"), cq.Var("z21"), cq.Var("z22"), cq.Var("z23")),
		},
	}
	// Instantiating y1 covers z11..z13 via R1(A -> B*, 1); y2 likewise.
	// Both y's are needed: minimum is 2.
	res, err := Decide(q, a, s, []string{"y1", "y2"}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("Q52 must be specializable with both parameters: %s", res.Reason)
	}
	if len(res.Params) != 2 {
		t.Errorf("minimum should be 2 (one per relation): %v", res.Params)
	}
	// k=1 must fail.
	res1, err := Decide(q, a, s, []string{"y1", "y2"}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Found {
		t.Errorf("k=1 must fail; got %v", res1.Params)
	}
}

func TestGreedyAgreesOnEasyInstance(t *testing.T) {
	res, err := Decide(q51(), psi(), accidentSchema(), []string{"date", "district"}, 2, Options{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("greedy must also find a solution: %s", res.Reason)
	}
	for _, p := range res.Params {
		if p != "date" && p != "district" {
			t.Errorf("unexpected parameter %s", p)
		}
	}
}

func TestCheckSatisfiableCondition(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 1))
	// A2-unsatisfiable query: specialization is pointless (condition b).
	q := &cq.CQ{
		Label: "QS", Free: []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R", cq.Var("x"), cq.Var("u")),
			cq.NewAtom("R", cq.Var("x"), cq.Var("v")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("u"), R: cq.Const(iv(1))},
			{L: cq.Var("v"), R: cq.Const(iv(2))},
		},
	}
	res, err := Decide(q, a, s, []string{"x"}, 1, Options{CheckSatisfiable: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("A-unsatisfiable query must be rejected under CheckSatisfiable")
	}
}

func TestDecideUCQSharedParams(t *testing.T) {
	s := accidentSchema()
	a := psi()
	q1 := q51()
	q2 := &cq.CQ{
		Label: "Q51b", Free: []string{"dri"},
		Atoms: []cq.Atom{
			cq.NewAtom("Accident", cq.Var("aid"), cq.Var("district"), cq.Var("date")),
			cq.NewAtom("Casualty", cq.Var("cid"), cq.Var("aid"), cq.Var("class"), cq.Var("vid")),
			cq.NewAtom("Vehicle", cq.Var("vid"), cq.Var("dri"), cq.Var("age")),
		},
	}
	res, err := DecideUCQ([]*cq.CQ{q1, q2}, a, s, []string{"date", "district"}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Params) != 1 || res.Params[0] != "date" {
		t.Errorf("UCQ specialization = %+v, want [date]", res)
	}
}

func TestProposition54(t *testing.T) {
	s := accidentSchema()
	full := access.NewSchema(
		access.NewConstraint("Accident", attrs("aid"), attrs("district", "date"), 1),
		access.NewConstraint("Casualty", attrs("cid"), attrs("aid", "class", "vid"), 1),
		access.NewConstraint("Vehicle", attrs("vid"), attrs("driver", "age"), 1),
	)
	q := q51()
	allVars := q.Vars()
	if !FullyParameterizable(q, full, s, allVars) {
		t.Error("Prop 5.4 guarantee should apply: A covers R and all vars are parameters")
	}
	if FullyParameterizable(q, psi(), s, allVars) {
		t.Error("psi does not cover R (Casualty cid/class), guarantee must not apply")
	}
	if FullyParameterizable(q, full, s, []string{"date"}) {
		t.Error("partial parameter set voids the guarantee")
	}
	// And the guarantee is real: instantiating all variables always covers.
	res, err := Decide(q, full, s, allVars, len(allVars), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Errorf("fully parameterized query under covering A must specialize: %s", res.Reason)
	}
}
