// Package specialize implements bounded query specialization (QSP,
// Section 5 of the paper): given a query Q that is not boundedly evaluable
// under A and a designated parameter set X, find a minimum tuple x̄ ⊆ X
// (|x̄| ≤ k) such that the specialized query Q(x̄ = c̄) is covered by A for
// ALL valuations c̄ — and hence boundedly evaluable (Corollary 3.13).
//
// Genericity is obtained by instantiating parameters with fresh, pairwise
// distinct constants: coverage depends only on which variables are constant
// variables (not on their values), and concrete valuations can only merge
// further equivalence classes, which never shrinks cov(Q,A). QSP is
// NP-complete for CQ (Theorem 5.3, by reduction from minimum set cover);
// the solver enumerates parameter subsets in ascending size, with an
// optional greedy mode for large parameter sets.
package specialize

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/ainstance"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/value"
)

// Options tunes the solver.
type Options struct {
	// Greedy switches from exact subset enumeration to a greedy heuristic
	// (add the parameter covering the most new variables first). The greedy
	// answer is sound (the returned set works) but may not be minimum.
	Greedy bool
	// MaxSubsets caps exact enumeration (default 200000).
	MaxSubsets int
	// CheckSatisfiable additionally verifies condition (b) of bounded
	// specialization: Q itself is A-satisfiable (which, per the paper's
	// lemma, is equivalent to some valuation yielding an A-satisfiable
	// specialization). Costs an A-instance enumeration.
	CheckSatisfiable bool
	// AInstance configures the satisfiability check.
	AInstance ainstance.Options
	// Cover configures coverage checks.
	Cover cover.Options
}

func (o Options) maxSubsets() int {
	if o.MaxSubsets > 0 {
		return o.MaxSubsets
	}
	return 200000
}

// Result is the outcome of a QSP decision.
type Result struct {
	Found bool
	// Params is the chosen x̄ (sorted), empty when the query is already
	// covered.
	Params []string
	// Generic is the generically specialized query that was verified
	// covered (parameters pinned to fresh distinct constants).
	Generic *cq.CQ
	// Minimum reports whether Params is guaranteed minimum (exact search).
	Minimum bool
	// Tried counts candidate subsets examined.
	Tried int
	// Reason explains failure when !Found.
	Reason string
}

// WithParams builds the generic specialization of q: each parameter pinned
// to a fresh constant distinct from every constant of q and from the other
// parameters'.
func WithParams(q *cq.CQ, params []string) *cq.CQ {
	out := q.Clone()
	known := make(map[value.Value]bool)
	for _, c := range q.Constants() {
		known[c] = true
	}
	next := 0
	for _, p := range params {
		var v value.Value
		for {
			v = value.NewString(fmt.Sprintf("⟨%s:%d⟩", p, next))
			next++
			if !known[v] {
				break
			}
		}
		known[v] = true
		out.Eqs = append(out.Eqs, cq.Eq{L: cq.Var(p), R: cq.Const(v)})
	}
	return out
}

// CoveredWithParams reports whether instantiating exactly params makes q
// covered for all valuations (checked generically).
func CoveredWithParams(q *cq.CQ, a *access.Schema, s *schema.Schema, params []string, opt Options) (bool, *cq.CQ, error) {
	g := WithParams(q, params)
	res, err := cover.Check(g, a, s, opt.Cover)
	if err != nil {
		return false, nil, err
	}
	return res.Covered, g, nil
}

// Decide solves QSP: find x̄ ⊆ X with |x̄| ≤ k making Q(x̄=c̄) covered for
// all valuations c̄. Parameters must be variables of q.
func Decide(q *cq.CQ, a *access.Schema, s *schema.Schema, X []string, k int, opt Options) (*Result, error) {
	vars := make(map[string]bool)
	for _, v := range q.Vars() {
		vars[v] = true
	}
	for _, p := range X {
		if !vars[p] {
			return nil, fmt.Errorf("specialize: parameter %s is not a variable of %s", p, q.Label)
		}
	}
	if opt.CheckSatisfiable {
		sat, err := ainstance.Satisfiable(q, a, s, opt.AInstance)
		if err != nil {
			return nil, err
		}
		if !sat {
			return &Result{Reason: "query is not A-satisfiable: no sensible specialization exists (condition b)"}, nil
		}
	}
	res := &Result{}
	// Size 0: the query may already be covered.
	ok, g, err := CoveredWithParams(q, a, s, nil, opt)
	if err != nil {
		return nil, err
	}
	res.Tried++
	if ok {
		res.Found, res.Generic, res.Minimum = true, g, true
		return res, nil
	}
	params := append([]string(nil), X...)
	sort.Strings(params)
	if opt.Greedy {
		return greedy(q, a, s, params, k, opt, res)
	}
	return exact(q, a, s, params, k, opt, res)
}

// exact enumerates subsets in ascending size; the first hit is minimum.
func exact(q *cq.CQ, a *access.Schema, s *schema.Schema, params []string, k int, opt Options, res *Result) (*Result, error) {
	budget := opt.maxSubsets()
	n := len(params)
	if k > n {
		k = n
	}
	idx := make([]int, 0, k)
	var found []string
	var generic *cq.CQ
	var rec func(start, size int) (bool, error)
	rec = func(start, size int) (bool, error) {
		if len(idx) == size {
			if budget == 0 {
				return false, fmt.Errorf("specialize: subset budget exhausted (%d subsets)", opt.maxSubsets())
			}
			budget--
			res.Tried++
			sel := make([]string, len(idx))
			for i, j := range idx {
				sel[i] = params[j]
			}
			ok, g, err := CoveredWithParams(q, a, s, sel, opt)
			if err != nil {
				return false, err
			}
			if ok {
				found, generic = sel, g
				return true, nil
			}
			return false, nil
		}
		for i := start; i < n; i++ {
			idx = append(idx, i)
			ok, err := rec(i+1, size)
			idx = idx[:len(idx)-1]
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	for size := 1; size <= k; size++ {
		ok, err := rec(0, size)
		if err != nil {
			return nil, err
		}
		if ok {
			res.Found, res.Params, res.Generic, res.Minimum = true, found, generic, true
			return res, nil
		}
	}
	res.Reason = fmt.Sprintf("no parameter subset of size ≤ %d makes the query covered", k)
	return res, nil
}

// greedy adds, at each step, the parameter whose instantiation grows
// cov(Q,A) the most; ties break lexicographically. Sound but possibly
// non-minimum.
func greedy(q *cq.CQ, a *access.Schema, s *schema.Schema, params []string, k int, opt Options, res *Result) (*Result, error) {
	chosen := []string{}
	remaining := append([]string(nil), params...)
	for len(chosen) < k {
		bestVar, bestGain, bestIdx := "", -1, -1
		var bestGeneric *cq.CQ
		bestCovered := false
		for i, p := range remaining {
			sel := append(append([]string(nil), chosen...), p)
			res.Tried++
			g := WithParams(q, sel)
			cres, err := cover.Check(g, a, s, opt.Cover)
			if err != nil {
				return nil, err
			}
			gain := len(cres.Analysis.Covered)
			if cres.Covered {
				gain += 1 << 20 // a full cover beats any partial gain
			}
			if gain > bestGain {
				bestGain, bestVar, bestIdx = gain, p, i
				bestGeneric, bestCovered = g, cres.Covered
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen = append(chosen, bestVar)
		remaining = append(remaining[:bestIdx:bestIdx], remaining[bestIdx+1:]...)
		if bestCovered {
			sort.Strings(chosen)
			res.Found, res.Params, res.Generic = true, chosen, bestGeneric
			return res, nil
		}
	}
	res.Reason = fmt.Sprintf("greedy search found no covering subset of size ≤ %d", k)
	return res, nil
}

// Instantiate builds the concrete specialized query Q(x̄ = c̄).
func Instantiate(q *cq.CQ, vals map[string]value.Value) *cq.CQ {
	out := q.Clone()
	keys := make([]string, 0, len(vals))
	for p := range vals {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	for _, p := range keys {
		out.Eqs = append(out.Eqs, cq.Eq{L: cq.Var(p), R: cq.Const(vals[p])})
	}
	return out
}

// DecideUCQ solves QSP for a union of CQs: one parameter tuple must make
// EVERY sub-query covered (parameters are shared across the union in
// parameterized applications).
func DecideUCQ(qs []*cq.CQ, a *access.Schema, s *schema.Schema, X []string, k int, opt Options) (*Result, error) {
	// Work over subsets: a subset works iff it works for all sub-queries.
	res := &Result{}
	params := append([]string(nil), X...)
	sort.Strings(params)
	n := len(params)
	if k > n {
		k = n
	}
	check := func(sel []string) (bool, error) {
		for _, q := range qs {
			inQ := make(map[string]bool)
			for _, v := range q.Vars() {
				inQ[v] = true
			}
			var local []string
			for _, p := range sel {
				if inQ[p] {
					local = append(local, p)
				}
			}
			ok, _, err := CoveredWithParams(q, a, s, local, opt)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}
	var idx []int
	var rec func(start, size int) (bool, error)
	rec = func(start, size int) (bool, error) {
		if len(idx) == size {
			res.Tried++
			sel := make([]string, len(idx))
			for i, j := range idx {
				sel[i] = params[j]
			}
			ok, err := check(sel)
			if err != nil {
				return false, err
			}
			if ok {
				res.Found, res.Params, res.Minimum = true, sel, true
			}
			return ok, nil
		}
		for i := start; i < n; i++ {
			idx = append(idx, i)
			ok, err := rec(i+1, size)
			idx = idx[:len(idx)-1]
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	for size := 0; size <= k; size++ {
		ok, err := rec(0, size)
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	res.Reason = fmt.Sprintf("no parameter subset of size ≤ %d covers every sub-query", k)
	return res, nil
}

// FullyParameterizable implements Proposition 5.4's guarantee: when A
// covers the relational schema R (every relation has a constraint whose
// X ∪ Y spans all its attributes) and all variables of Q are parameters,
// Q can always be boundedly specialized. It reports whether the guarantee
// applies to (q, a, s).
func FullyParameterizable(q *cq.CQ, a *access.Schema, s *schema.Schema, X []string) bool {
	if !a.CoversSchema(s) {
		return false
	}
	have := make(map[string]bool)
	for _, p := range X {
		have[p] = true
	}
	for _, v := range q.Vars() {
		if !have[v] {
			return false
		}
	}
	return true
}
