package ainstance

import (
	"errors"
	"testing"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/value"
)

func iv(i int64) value.Value { return value.NewInt(i) }
func attrs(as ...schema.Attribute) []schema.Attribute {
	return as
}

// Example 3.1(2): A2 = {R2(A -> B, 1)},
// Q2(x) = ∃x1,x2 (R2(x,x1) ∧ R2(x,x2) ∧ x1=1 ∧ x2=2).
// Q2 is classically satisfiable but NOT A-satisfiable.
func TestExample31_2_ASatisfiability(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R2", "A", "B"))
	a2 := access.NewSchema(access.NewConstraint("R2", attrs("A"), attrs("B"), 1))
	q2 := &cq.CQ{
		Label: "Q2",
		Free:  []string{"x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R2", cq.Var("x"), cq.Var("x1")),
			cq.NewAtom("R2", cq.Var("x"), cq.Var("x2")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(iv(1))},
			{L: cq.Var("x2"), R: cq.Const(iv(2))},
		},
	}
	if !q2.Satisfiable() {
		t.Fatal("Q2 is classically satisfiable")
	}
	ok, err := Satisfiable(q2, a2, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Q2 must NOT be A2-satisfiable (the key constraint forbids (x,1),(x,2))")
	}
	// Without the constraint it is A-satisfiable.
	ok, err = Satisfiable(q2, access.NewSchema(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Q2 must be satisfiable under the empty access schema")
	}
}

// Example 3.1(3): A3 = {R3(∅ -> C, 1), R3(AB -> C, N)};
// Q3(x,y) ≡A3 Q3'(x,x) = R3(1,1,x) ∧ R3(x,x,x).
func TestExample31_3_AEquivalence(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R3", "A", "B", "C"))
	a3 := access.NewSchema(
		access.NewConstraint("R3", nil, attrs("C"), 1),
		access.NewConstraint("R3", attrs("A", "B"), attrs("C"), 5),
	)
	q3 := &cq.CQ{
		Label: "Q3",
		Free:  []string{"x", "y"},
		Atoms: []cq.Atom{
			cq.NewAtom("R3", cq.Var("x1"), cq.Var("x2"), cq.Var("x")),
			cq.NewAtom("R3", cq.Var("z1"), cq.Var("z2"), cq.Var("y")),
			cq.NewAtom("R3", cq.Var("x"), cq.Var("y"), cq.Var("z3")),
		},
		Eqs: []cq.Eq{
			{L: cq.Var("x1"), R: cq.Const(iv(1))},
			{L: cq.Var("x2"), R: cq.Const(iv(1))},
		},
	}
	q3p := &cq.CQ{
		Label: "Q3p",
		Free:  []string{"x", "x"},
		Atoms: []cq.Atom{
			cq.NewAtom("R3", cq.Const(iv(1)), cq.Const(iv(1)), cq.Var("x")),
			cq.NewAtom("R3", cq.Var("x"), cq.Var("x"), cq.Var("x")),
		},
	}
	// Classically the two are NOT equivalent...
	if cq.Equivalent(q3, q3p) {
		t.Error("Q3 and Q3' must differ classically")
	}
	// ...but they are A3-equivalent (the ∅ -> C constraint forces x=y=z3).
	ok, err := Equivalent(q3, q3p, a3, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Q3 ≡A3 Q3' must hold (Example 3.1(3))")
	}
}

// Example 3.5 (first part): under A = {R(∅ -> X, 2)} with Qc forcing
// {0,1} ⊆ R, Q ⊑A Q1 ∪ Q2 although Q ⋢A Q1 and Q ⋢A Q2.
func TestExample35_UnionContainment(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("R", "X"),
		schema.MustRelation("S", "A", "B"),
	)
	a := access.NewSchema(access.NewConstraint("R", nil, attrs("X"), 2))
	// Qc() = R(1) ∧ R(0); Qψ(x,y) = S(x,y) ∧ R(y).
	base := []cq.Atom{
		cq.NewAtom("R", cq.Const(iv(1))),
		cq.NewAtom("R", cq.Const(iv(0))),
		cq.NewAtom("S", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", cq.Var("y")),
	}
	q := &cq.CQ{Label: "Q", Free: []string{"x"}, Atoms: base}
	q1 := &cq.CQ{Label: "Q1", Free: []string{"x"},
		Atoms: []cq.Atom{cq.NewAtom("S", cq.Var("x"), cq.Var("y")), cq.NewAtom("R", cq.Var("y"))},
		Eqs:   []cq.Eq{{L: cq.Var("y"), R: cq.Const(iv(1))}}}
	q2 := &cq.CQ{Label: "Q2", Free: []string{"x"},
		Atoms: []cq.Atom{cq.NewAtom("S", cq.Var("x"), cq.Var("y")), cq.NewAtom("R", cq.Var("y"))},
		Eqs:   []cq.Eq{{L: cq.Var("y"), R: cq.Const(iv(0))}}}

	inUnion, err := ContainedInUCQ(q, []*cq.CQ{q1, q2}, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !inUnion {
		t.Error("Q ⊑A Q1 ∪ Q2 must hold (R is forced to be exactly {0,1})")
	}
	in1, err := Contained(q, q1, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in2, err := Contained(q, q2, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in1 || in2 {
		t.Errorf("Q must not be A-contained in either disjunct alone: in1=%v in2=%v", in1, in2)
	}
	// Sanity: without the cardinality bound the union containment fails
	// (y may take a third value).
	noCard := access.NewSchema()
	inUnion, err = ContainedInUCQ(q, []*cq.CQ{q1, q2}, noCard, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inUnion {
		t.Error("without R(∅->X,2) the union containment must fail")
	}
}

func TestAContainmentRefinesClassical(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	// Classical containment implies A-containment for any A.
	q1 := &cq.CQ{Free: []string{"x"}, Atoms: []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", cq.Var("y"), cq.Var("z")),
	}}
	q2 := &cq.CQ{Free: []string{"x"}, Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}}
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 3))
	ok, err := Contained(q1, q2, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("classical containment must carry over to A-containment")
	}
	ok, err = Contained(q2, q1, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("reverse containment must fail")
	}
}

func TestUnsatisfiableContainedInAnything(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema()
	unsat := &cq.CQ{Free: []string{"x"},
		Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))},
		Eqs:   []cq.Eq{{L: cq.Var("y"), R: cq.Const(iv(1))}, {L: cq.Var("y"), R: cq.Const(iv(2))}}}
	q := &cq.CQ{Free: []string{"x"}, Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("x"))}}
	ok, err := Contained(unsat, q, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("A-unsatisfiable query is A-contained in everything")
	}
}

func TestArityMismatch(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema()
	q1 := &cq.CQ{Free: []string{"x"}, Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}}
	q2 := &cq.CQ{Free: []string{"x", "y"}, Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}}
	ok, err := Contained(q1, q2, a, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("arity mismatch cannot be contained")
	}
}

func TestTooManyVariables(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema()
	var atoms []cq.Atom
	for i := 0; i < 8; i++ {
		atoms = append(atoms, cq.NewAtom("R", cq.Var(varName(2*i)), cq.Var(varName(2*i+1))))
	}
	q := &cq.CQ{Free: []string{varName(0)}, Atoms: atoms}
	_, err := Satisfiable(q, a, s, Options{MaxVars: 5})
	var tooLarge ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	if tooLarge.Vars != 16 || tooLarge.Max != 5 {
		t.Errorf("ErrTooLarge fields = %+v", tooLarge)
	}
}

func varName(i int) string { return "v" + string(rune('a'+i)) }

func TestVisitEnumeratesIsomorphismClasses(t *testing.T) {
	// Q(x,y) :- R(x,y): A-instances up to isomorphism, with no query
	// constants in play, are {x=y} and {x≠y}: exactly 2 visits.
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema()
	q := &cq.CQ{Free: []string{"x", "y"}, Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}}
	count := 0
	err := Visit(q, a, s, nil, Options{}, func(inst *data.Instance, head data.Tuple) bool {
		count++
		if inst.Size() != 1 {
			t.Errorf("each A-instance should hold the single valuated atom, size=%d", inst.Size())
		}
		if len(head) != 2 {
			t.Errorf("head arity = %d", len(head))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("visited %d canonical A-instances, want 2", count)
	}
}

func TestVisitEarlyStop(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema()
	q := &cq.CQ{Free: []string{"x", "y"}, Atoms: []cq.Atom{cq.NewAtom("R", cq.Var("x"), cq.Var("y"))}}
	count := 0
	err := Visit(q, a, s, nil, Options{}, func(*data.Instance, data.Tuple) bool {
		count++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("early stop should visit once, visited %d", count)
	}
}

func TestVisitRespectsCardinality(t *testing.T) {
	// Q() :- R(x,1), R(x,2): with R(A -> B, 1) no A-instance exists where
	// x is shared; but valuations where the two atoms use *different* x do
	// not exist (same variable). So zero visits.
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	a := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 1))
	q := &cq.CQ{Atoms: []cq.Atom{
		cq.NewAtom("R", cq.Var("x"), cq.Const(iv(1))),
		cq.NewAtom("R", cq.Var("x"), cq.Const(iv(2))),
	}}
	count := 0
	if err := Visit(q, a, s, nil, Options{}, func(*data.Instance, data.Tuple) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("no A-instance should satisfy the key constraint, visited %d", count)
	}
	// Bound 2 admits it.
	a2 := access.NewSchema(access.NewConstraint("R", attrs("A"), attrs("B"), 2))
	count = 0
	if err := Visit(q, a2, s, nil, Options{}, func(*data.Instance, data.Tuple) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("bound 2 should admit A-instances")
	}
}
