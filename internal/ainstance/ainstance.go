// Package ainstance implements reasoning over A-instances: valuations
// θ(T_Q) of a CQ's tableau that satisfy an access schema A.
//
// Following the proofs of Lemmas 3.2 and 3.3, A-satisfiability and
// A-containment reduce to enumerating valuations of the tableau up to
// isomorphism: each variable is mapped either to a constant appearing in
// the queries or to one of a bounded number of fresh constants, enumerated
// as canonical set partitions (restricted-growth style) so isomorphic
// valuations are visited once. Both problems are intractable in general
// (NP-complete and Πᵖ₂-complete); the enumeration is exponential in the
// number of tableau variables, so a configurable variable cap guards it.
package ainstance

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/value"
)

// DefaultMaxVars caps tableau variables for enumeration. Beyond it the
// procedures return ErrTooLarge rather than running for years; decision
// procedures over hand-written queries stay far below it.
const DefaultMaxVars = 10

// ErrTooLarge reports that a query has too many tableau variables for
// exhaustive A-instance enumeration.
type ErrTooLarge struct {
	Vars, Max int
}

func (e ErrTooLarge) Error() string {
	return fmt.Sprintf("ainstance: tableau has %d variables, enumeration capped at %d", e.Vars, e.Max)
}

// Options configures enumeration.
type Options struct {
	// MaxVars overrides DefaultMaxVars when positive.
	MaxVars int
}

func (o Options) maxVars() int {
	if o.MaxVars > 0 {
		return o.MaxVars
	}
	return DefaultMaxVars
}

// Visit calls fn for every canonical A-instance θ(T_Q) of q under a: every
// valuation of the tableau variables (up to isomorphism, with candidate
// constants drawn from q, extraConsts, and fresh values) whose instance
// satisfies a. fn receives the instance and the valuated head θ(u); if fn
// returns false the enumeration stops early.
//
// Unsatisfiable queries (conflicting equalities) have no A-instances.
func Visit(q *cq.CQ, a *access.Schema, s *schema.Schema, extraConsts []value.Value, opt Options,
	fn func(inst *data.Instance, head data.Tuple) bool) error {

	c := q.Canonicalize()
	if c.Unsat {
		return nil
	}
	vars := c.Vars()
	if len(vars) > opt.maxVars() {
		return ErrTooLarge{Vars: len(vars), Max: opt.maxVars()}
	}

	// Candidate named constants: those in the query plus caller-supplied.
	known := q.Constants()
	for _, v := range extraConsts {
		dup := false
		for _, w := range known {
			if v == w {
				dup = true
				break
			}
		}
		if !dup {
			known = append(known, v)
		}
	}
	fresh := freshConstants(len(vars), known)

	assign := make(map[string]value.Value, len(vars))
	stop := false
	var rec func(i, freshUsed int) error
	rec = func(i, freshUsed int) error {
		if stop {
			return nil
		}
		if i == len(vars) {
			inst, head, err := build(c, s, assign)
			if err != nil {
				return err
			}
			ok, err := access.Satisfies(a, inst)
			if err != nil {
				return err
			}
			if ok && !fn(inst, head) {
				stop = true
			}
			return nil
		}
		v := vars[i]
		for _, k := range known {
			assign[v] = k
			if err := rec(i+1, freshUsed); err != nil {
				return err
			}
		}
		// Restricted growth: reuse any fresh constant already in play, or
		// introduce the next one — never skip ahead.
		for f := 0; f <= freshUsed && f < len(fresh); f++ {
			assign[v] = fresh[f]
			nu := freshUsed
			if f == freshUsed {
				nu++
			}
			if err := rec(i+1, nu); err != nil {
				return err
			}
		}
		delete(assign, v)
		return nil
	}
	return rec(0, 0)
}

// freshConstants manufactures n constants distinct from every known one.
func freshConstants(n int, known []value.Value) []value.Value {
	out := make([]value.Value, 0, n)
	next := 0
	for len(out) < n {
		cand := value.NewString(fmt.Sprintf("⋆%d", next)) // ⋆0, ⋆1, ...
		next++
		clash := false
		for _, k := range known {
			if k == cand {
				clash = true
				break
			}
		}
		if !clash {
			out = append(out, cand)
		}
	}
	return out
}

// build materializes θ(T_Q) as an instance of s and the valuated head.
func build(c *cq.Canonical, s *schema.Schema, assign map[string]value.Value) (*data.Instance, data.Tuple, error) {
	inst := data.NewInstance(s)
	valuate := func(t cq.Term) (value.Value, error) {
		if !t.IsVar() {
			return t.C, nil
		}
		v, ok := assign[t.V]
		if !ok {
			return value.Value{}, fmt.Errorf("ainstance: unassigned variable %s", t.V)
		}
		return v, nil
	}
	for _, a := range c.Atoms {
		row := make([]value.Value, len(a.Args))
		for j, t := range a.Args {
			v, err := valuate(t)
			if err != nil {
				return nil, nil, err
			}
			row[j] = v
		}
		if err := inst.Insert(a.Rel, row...); err != nil {
			return nil, nil, err
		}
	}
	head := make(data.Tuple, len(c.Head))
	for i, t := range c.Head {
		v, err := valuate(t)
		if err != nil {
			return nil, nil, err
		}
		head[i] = v
	}
	return inst, head, nil
}

// Satisfiable decides A-satisfiability of a CQ (Lemma 3.2, NP-complete):
// is there an instance D |= A with Q(D) nonempty?
func Satisfiable(q *cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (bool, error) {
	found := false
	err := Visit(q, a, s, nil, opt, func(*data.Instance, data.Tuple) bool {
		found = true
		return false
	})
	return found, err
}

// Contained decides A-containment q1 ⊑A q2 (Lemma 3.3, Πᵖ₂-complete):
// q1 is not A-satisfiable, or every A-instance θ(T_Q1) has
// θ(u1) ∈ q2(θ(T_Q1)).
func Contained(q1, q2 *cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (bool, error) {
	if len(q1.Free) != len(q2.Free) {
		return false, nil
	}
	return ContainedInUCQ(q1, []*cq.CQ{q2}, a, s, opt)
}

// ContainedInUCQ decides q1 ⊑A (q2_1 ∪ ... ∪ q2_n). The union is checked
// per A-instance, which is strictly more general than per-sub-query
// containment (Example 3.5 of the paper).
func ContainedInUCQ(q1 *cq.CQ, union []*cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (bool, error) {
	var extra []value.Value
	for _, q2 := range union {
		extra = append(extra, q2.Constants()...)
	}
	contained := true
	err := Visit(q1, a, s, extra, opt, func(inst *data.Instance, head data.Tuple) bool {
		for _, q2 := range union {
			if len(q2.Free) != len(q1.Free) {
				continue
			}
			res, evalErr := eval.CQ(q2, inst, eval.ScanJoin)
			if evalErr != nil {
				continue
			}
			if res.Contains(head) {
				return true // this A-instance is fine; keep going
			}
		}
		contained = false
		return false
	})
	if err != nil {
		return false, err
	}
	return contained, nil
}

// UCQContained decides ⋃q1 ⊑A ⋃q2: every sub-query of the left side is
// A-contained in the right-side union.
func UCQContained(left, right []*cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (bool, error) {
	for _, q := range left {
		ok, err := ContainedInUCQ(q, right, a, s, opt)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Equivalent decides A-equivalence q1 ≡A q2.
func Equivalent(q1, q2 *cq.CQ, a *access.Schema, s *schema.Schema, opt Options) (bool, error) {
	ok, err := Contained(q1, q2, a, s, opt)
	if err != nil || !ok {
		return false, err
	}
	return Contained(q2, q1, a, s, opt)
}
