package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// APIErr keeps internal/server's error surface structured: every
// non-2xx response must go through the writeError/writeJSON path that
// speaks the {"error": {code, message, …}} envelope, so clients and
// golden tests can match on stable codes. Flagged in handlers:
//
//   - any call to net/http.Error (a bare text/plain error body)
//   - w.WriteHeader(status) with a constant status ≥ 300, or a
//     non-constant status (which cannot be proven 2xx)
//
// Exempt: writeError and writeJSON themselves (the structured path —
// writeJSON's last-resort http.Error guards against its own encoder
// failing), WriteHeader methods of ResponseWriter wrappers (they
// forward, they do not decide), and //bevet:allow apierr.
var APIErr = &Analyzer{
	Name: "apierr",
	Doc:  "flags server error responses that bypass the structured writeError path",
	Run:  runAPIErr,
}

func runAPIErr(pass *Pass) error {
	if strings.HasPrefix(pass.PkgPath, "repro/") && !inPkg(pass.PkgPath, "repro/internal/server") {
		return nil
	}
	eachFuncDecl(pass, func(fn *ast.FuncDecl) {
		if allows(fn, "apierr") {
			return
		}
		switch fn.Name.Name {
		case "writeError", "writeJSON", "WriteHeader":
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
				return true
			}
			switch obj.Name() {
			case "Error":
				pass.Reportf(call.Pos(),
					"bare http.Error bypasses the structured error envelope; route it through writeError")
			case "WriteHeader":
				if len(call.Args) != 1 {
					return true
				}
				if status, known := constantInt(pass, call.Args[0]); known {
					if status >= 300 {
						pass.Reportf(call.Pos(),
							"WriteHeader(%d) bypasses the structured error envelope; route non-2xx through writeError", status)
					}
				} else {
					pass.Reportf(call.Pos(),
						"WriteHeader with a non-constant status cannot be proven 2xx; route errors through writeError")
				}
			}
			return true
		})
	})
	return nil
}

// constantInt evaluates e as a compile-time integer constant.
func constantInt(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}
