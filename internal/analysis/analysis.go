// Package analysis is bevet's engine-invariant checker suite: a small,
// dependency-free reimplementation of the go/analysis Analyzer/Pass
// surface (golang.org/x/tools is deliberately not a dependency — the
// module has none) carrying five analyzers that prove, at compile time,
// invariants the repo previously enforced only with runtime tests:
//
//	snapshottear — a function reads ONE pinned snapshot: mixing
//	               Engine.Instance() and Engine.Indexed() (or either
//	               with Snapshot()) can straddle a concurrent Apply.
//	emitctx      — a row-emitting loop observes its context, so a
//	               canceled request cannot stream rows forever (the
//	               PR 5 `bequery -stream` bug class).
//	hotpathalloc — functions marked //bevet:hotpath stay free of
//	               allocation-heavy constructs (fmt, per-call maps,
//	               string concatenation in loops, interface boxing):
//	               the lint front-door for ROADMAP item 1.
//	lockedfield  — struct fields documented `guarded by <mu>` are only
//	               touched by functions that lock that mutex.
//	apierr       — server handlers route every error through the
//	               structured writeError path, never a bare http.Error
//	               or ad-hoc non-2xx WriteHeader.
//
// The suite ships as cmd/bevet, which speaks the `go vet -vettool`
// unit-checker protocol, so `go vet -vettool=$(which bevet) ./...`
// runs it over every package (tests included) in CI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant checker, mirroring the x/tools
// go/analysis shape so the analyzers port verbatim if the dependency
// ever lands.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //bevet:allow <name> suppressions.
	Name string
	// Doc is the one-paragraph description shown by `bevet -help`.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass is the per-package unit of work handed to an Analyzer: the
// type-checked syntax of exactly one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Pkg is the type-checked package; PkgPath is the import path the
	// build reported (it differs from Pkg.Path() for test variants,
	// e.g. "repro/internal/core [repro/internal/core.test]").
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns the full bevet suite, in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SnapshotTear,
		EmitCtx,
		HotPathAlloc,
		LockedField,
		APIErr,
	}
}

// NewTypesInfo allocates a types.Info with every map the analyzers
// read, shared by the vet-tool driver, the standalone loader and the
// analysistest harness.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
