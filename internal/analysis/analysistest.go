package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunTest is bevet's analysistest: it loads the fixture package at
// testdata/src/<pkg>, runs one analyzer over it, and checks the
// diagnostics against `// want "regexp"` comments in the fixtures —
// every want must be matched by a diagnostic on its line, and every
// diagnostic must be wanted. The fixture packages import only the
// standard library (resolved through `go list -export` data), and their
// package paths carry no "repro/" prefix, so package-scoped analyzers
// treat them as always-checked fixtures.
func RunTest(t *testing.T, testdata string, a *Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	sort.Strings(files)

	resolve, err := fixtureResolver(dir, files)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	fset := token.NewFileSet()
	parsed, tpkg, info, err := TypeCheck(fset, pkg, files, resolve)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}

	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     parsed,
		Pkg:       tpkg,
		PkgPath:   pkg,
		TypesInfo: info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, parsed)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		if matchWant(wants[key], d.Message) {
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
	}
	keys := make([]string, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", k, w.re.String())
			}
		}
	}
}

// fixtureResolver lists export data for every import the fixture files
// mention and returns the path->file resolver TypeCheck needs.
func fixtureResolver(dir string, files []string) (func(string) string, error) {
	imports := make(map[string]bool)
	ifset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(ifset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}
	patterns := make([]string, 0, len(imports))
	for path := range imports {
		patterns = append(patterns, path)
	}
	sort.Strings(patterns)
	if len(patterns) == 0 {
		return func(string) string { return "" }, nil
	}
	pkgs, err := ListExports(dir, patterns)
	if err != nil {
		return nil, err
	}
	return func(path string) string {
		if p := pkgs[path]; p != nil {
			return p.Export
		}
		return ""
	}, nil
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantStringRe matches the quoted regexps after the want marker: either
// backquoted or double-quoted Go string syntax.
var wantStringRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses `// want "re" ["re" ...]` comments, keyed by
// "file.go:line" of the comment (which sits on the flagged line).
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
				for _, q := range wantStringRe.FindAllString(rest, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// matchWant marks and reports the first unmatched want whose regexp
// matches the message.
func matchWant(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
