package analysis

import (
	"go/ast"
	"strings"
)

// Directives are bevet's machine-readable comment markers. They live in
// a declaration's doc comment, one per line, in the standard Go
// directive shape (no space after //):
//
//	//bevet:hotpath            — hotpathalloc checks this function
//	//bevet:allow <analyzer>   — suppress one analyzer on this function
//	//bevet:locked <mu>        — this function runs with <mu> held by
//	                             its caller (lockedfield accepts it)
type directives struct {
	hotpath bool
	allow   map[string]bool
	locked  map[string]bool
}

// parseDirectives extracts bevet directives from a doc comment group.
func parseDirectives(doc *ast.CommentGroup) directives {
	var d directives
	if doc == nil {
		return d
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//bevet:")
		if !ok {
			continue
		}
		verb, arg, _ := strings.Cut(strings.TrimSpace(text), " ")
		arg = strings.TrimSpace(arg)
		switch verb {
		case "hotpath":
			d.hotpath = true
		case "allow":
			if d.allow == nil {
				d.allow = make(map[string]bool)
			}
			d.allow[arg] = true
		case "locked":
			if d.locked == nil {
				d.locked = make(map[string]bool)
			}
			d.locked[arg] = true
		}
	}
	return d
}

// funcDirectives returns the directives on a function declaration.
func funcDirectives(fn *ast.FuncDecl) directives {
	return parseDirectives(fn.Doc)
}

// allows reports whether fn's doc suppresses the named analyzer.
func allows(fn *ast.FuncDecl, analyzer string) bool {
	return funcDirectives(fn).allow[analyzer]
}

// eachFuncDecl walks every function declaration with a body in the
// pass's files.
func eachFuncDecl(pass *Pass, visit func(*ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				visit(fn)
			}
		}
	}
}
