package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SnapshotTear flags functions that read the engine's snapshot pointer
// more than once through different accessors. Instance() and Indexed()
// each load the atomic snapshot pointer, so calling both (or mixing
// either with Snapshot()) on the same engine inside one function can
// hand the caller the instance of one published version and the
// indices of another when an Apply lands between the two loads — the
// exact tear internal/core's TestSnapshotPinnedUnderApply counts.
// The fix is always the same: take one pinned Snapshot() pair.
//
// Exempt: the accessor methods themselves (receiver is the Engine) and
// functions carrying //bevet:allow snapshottear (e.g. the race test
// that measures the legacy pattern's tear rate on purpose).
var SnapshotTear = &Analyzer{
	Name: "snapshottear",
	Doc:  "flags functions mixing Engine.Instance()/Indexed()/Snapshot() reads that can tear across a concurrent Apply",
	Run:  runSnapshotTear,
}

// snapshotAccessors are the snapshot-reading accessor names; each call
// performs one atomic snapshot load.
var snapshotAccessors = map[string]bool{"Instance": true, "Indexed": true, "Snapshot": true}

func runSnapshotTear(pass *Pass) error {
	eachFuncDecl(pass, func(fn *ast.FuncDecl) {
		if allows(fn, "snapshottear") {
			return
		}
		// The accessors themselves are the one place a raw snapshot
		// load belongs.
		if fn.Recv != nil && snapshotAccessors[fn.Name.Name] && isEngineType(recvType(pass, fn)) {
			return
		}
		// First call position of each accessor, per receiver expression.
		calls := make(map[string]map[string]token.Pos)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !snapshotAccessors[sel.Sel.Name] {
				return true
			}
			if !isEngineType(pass.TypesInfo.TypeOf(sel.X)) {
				return true
			}
			recv := types.ExprString(sel.X)
			if calls[recv] == nil {
				calls[recv] = make(map[string]token.Pos)
			}
			if _, seen := calls[recv][sel.Sel.Name]; !seen {
				calls[recv][sel.Sel.Name] = call.Pos()
			}
			return true
		})
		recvs := make([]string, 0, len(calls))
		for recv := range calls {
			recvs = append(recvs, recv)
		}
		sort.Strings(recvs)
		for _, recv := range recvs {
			m := calls[recv]
			switch {
			case has(m, "Instance") && has(m, "Indexed"):
				pass.Reportf(laterPos(m["Instance"], m["Indexed"]),
					"calls both %s.Instance() and %s.Indexed(): two snapshot reads can tear across a concurrent Apply; take one pinned %s.Snapshot()", recv, recv, recv)
			case has(m, "Snapshot") && has(m, "Instance"):
				pass.Reportf(laterPos(m["Snapshot"], m["Instance"]),
					"mixes %s.Snapshot() with %s.Instance(): the extra snapshot read can tear across a concurrent Apply; use the pinned Snapshot() pair alone", recv, recv)
			case has(m, "Snapshot") && has(m, "Indexed"):
				pass.Reportf(laterPos(m["Snapshot"], m["Indexed"]),
					"mixes %s.Snapshot() with %s.Indexed(): the extra snapshot read can tear across a concurrent Apply; use the pinned Snapshot() pair alone", recv, recv)
			}
		}
	})
	return nil
}

func has(m map[string]token.Pos, k string) bool { _, ok := m[k]; return ok }

func laterPos(a, b token.Pos) token.Pos {
	if b > a {
		return b
	}
	return a
}

// recvType returns the type of fn's receiver, or nil.
func recvType(pass *Pass, fn *ast.FuncDecl) types.Type {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	return pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
}

// isEngineType reports whether t (possibly behind pointers) is a named
// type that serves snapshots: a concrete Engine (internal/core,
// internal/shard, or a fixture's) or the Queryable serving interface.
func isEngineType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Engine" || name == "Queryable"
}
