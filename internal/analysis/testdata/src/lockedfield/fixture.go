// Package lockedfield exercises the lockedfield analyzer: fields
// documented `guarded by <mu>` and the functions that touch them.
package lockedfield

import "sync"

type cache struct {
	mu     sync.Mutex
	hits   int // guarded by mu
	misses int // guarded by mu
	// size is the current entry count.
	// guarded by mu
	size     int
	capacity int // immutable after construction
}

func (c *cache) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	c.size++
}

func (c *cache) readUnlocked() int {
	return c.hits // want `access to c\.hits, guarded by mu, without holding c\.mu`
}

func (c *cache) writeUnlocked() {
	c.misses = 0 // want `access to c\.misses, guarded by mu, without holding c\.mu`
}

// readLocked documents that its caller holds mu.
//
//bevet:locked mu
func (c *cache) readLocked() int { return c.hits + c.misses }

// readAllowed opts out of the analyzer entirely.
//
//bevet:allow lockedfield
func (c *cache) readAllowed() int { return c.size }

// cap reads an unguarded field: fine anywhere.
func (c *cache) cap() int { return c.capacity }

// newCache constructs via composite literal: the struct is not shared
// yet, so keyed initialization is exempt by construction.
func newCache(n int) *cache {
	return &cache{capacity: n, size: 0}
}

type registry struct {
	rw    sync.RWMutex
	table map[string]int // guarded by rw
}

// lookup holds the read lock.
func (r *registry) lookup(k string) int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.table[k]
}

func (r *registry) peek(k string) int {
	return r.table[k] // want `access to r\.table, guarded by rw, without holding r\.rw`
}

// wrongLock holds mu of a different object, not its own rw.
func (r *registry) wrongLock(other *cache, k string) int {
	other.mu.Lock()
	defer other.mu.Unlock()
	return r.table[k] // want `access to r\.table, guarded by rw, without holding r\.rw`
}
