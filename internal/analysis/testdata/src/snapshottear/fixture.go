// Package snapshottear exercises the snapshottear analyzer: a local
// Engine shape with the three snapshot accessors, callers that tear,
// and callers that stay pinned.
package snapshottear

type Instance struct{ rows int }

type Index struct{ keys int }

// Engine mimics the core engine: each accessor is one atomic snapshot
// pointer load.
type Engine struct {
	inst Instance
	ix   Index
}

func (e *Engine) Instance() *Instance { return &e.inst }

func (e *Engine) Indexed() *Index { return &e.ix }

// Snapshot is the accessor exemption: its own body is the one place
// both raw loads belong.
func (e *Engine) Snapshot() (*Instance, *Index) { return e.Instance(), e.Indexed() }

func tornPair(e *Engine) int {
	inst := e.Instance()
	ix := e.Indexed() // want `calls both e\.Instance\(\) and e\.Indexed\(\)`
	return inst.rows + ix.keys
}

func tornSnapshotInstance(e *Engine) int {
	inst, ix := e.Snapshot()
	extra := e.Instance() // want `mixes e\.Snapshot\(\) with e\.Instance\(\)`
	return inst.rows + ix.keys + extra.rows
}

func tornSnapshotIndexed(e *Engine) int {
	inst, ix := e.Snapshot()
	extra := e.Indexed() // want `mixes e\.Snapshot\(\) with e\.Indexed\(\)`
	return inst.rows + ix.keys + extra.keys
}

// pinned is the blessed pattern: one Snapshot() pair.
func pinned(e *Engine) int {
	inst, ix := e.Snapshot()
	return inst.rows + ix.keys
}

// singleAccessor makes one load; nothing to tear against.
func singleAccessor(e *Engine) int {
	return e.Instance().rows
}

// twoEngines reads different engines; the pair cannot tear.
func twoEngines(a, b *Engine) int {
	return a.Instance().rows + b.Indexed().keys
}

// measureTear is the sanctioned suppression (the race test that counts
// tears on purpose).
//
//bevet:allow snapshottear
func measureTear(e *Engine) int {
	return e.Instance().rows + e.Indexed().keys
}

// Store is not an Engine: same method names, no diagnostic.
type Store struct {
	inst Instance
	ix   Index
}

func (s *Store) Instance() *Instance { return &s.inst }

func (s *Store) Indexed() *Index { return &s.ix }

func storeReads(s *Store) int {
	return s.Instance().rows + s.Indexed().keys
}
