// Package hotpathalloc exercises the hotpathalloc analyzer: per-row
// functions marked //bevet:hotpath and the allocation patterns they
// must avoid.
package hotpathalloc

import (
	"fmt"
	"strings"
)

func sinkAny(x any) { _ = x }

// formats calls into fmt; v is already interface-typed so only the fmt
// call is flagged.
//
//bevet:hotpath
func formats(v any) string {
	return fmt.Sprint(v) // want `calls fmt\.Sprint`
}

// concats grows a string in a loop.
//
//bevet:hotpath
func concats(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want `concatenates strings in a loop`
	}
	return s
}

// concatsBinary uses the binary form inside the loop.
//
//bevet:hotpath
func concatsBinary(parts []string) string {
	s := ""
	for _, p := range parts {
		s = s + p // want `concatenates strings in a loop`
	}
	return s
}

// perCallMap allocates a map every call.
//
//bevet:hotpath
func perCallMap(keys []string) int {
	seen := make(map[string]bool) // want `allocates a map per call`
	for _, k := range keys {
		seen[k] = true
	}
	return len(seen)
}

// perCallMapLiteral allocates via a literal.
//
//bevet:hotpath
func perCallMapLiteral() map[string]int {
	return map[string]int{} // want `allocates a map per call`
}

// boxes passes a concrete int to an interface parameter.
//
//bevet:hotpath
func boxes(v int) {
	sinkAny(v) // want `boxes a concrete value into an interface parameter`
}

// builderConcat is the blessed rewrite: no diagnostics.
//
//bevet:hotpath
func builderConcat(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// passThrough forwards an interface value and a spread slice: neither
// boxes.
//
//bevet:hotpath
func passThrough(v any, vs []any) {
	sinkAny(v)
	sinkAll(vs...)
}

func sinkAll(xs ...any) {
	for range xs {
	}
}

// unmarked may allocate freely: the directive is the contract.
func unmarked(keys []string) string {
	seen := make(map[string]bool)
	s := ""
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			s += k
		}
	}
	return fmt.Sprint(len(s))
}

// granted is marked hot but explicitly suppressed.
//
//bevet:hotpath
//bevet:allow hotpathalloc
func granted(v int) string {
	return fmt.Sprintf("%d", v)
}
