// Package emitctx exercises the emitctx analyzer: row-emitting loops
// with and without a reachable context observation.
package emitctx

import "context"

type row struct{ v int }

type sink struct{ n int }

func (s *sink) add(r row) bool { s.n++; return true }

// stream never looks at ctx: a canceled request keeps streaming.
func stream(ctx context.Context, rows []row, yield func(row) bool) {
	for _, r := range rows { // want `loop emits rows but never observes the in-scope context`
		if !yield(r) {
			return
		}
	}
	_ = ctx
}

// streamChecked observes ctx inside the loop: the blessed pattern.
func streamChecked(ctx context.Context, rows []row, yield func(row) bool) {
	for i, r := range rows {
		if i%256 == 0 && ctx.Err() != nil {
			return
		}
		if !yield(r) {
			return
		}
	}
}

// streamSelect observes ctx.Done() instead of Err(): also fine.
func streamSelect(ctx context.Context, rows []row, yield func(row) bool) {
	for _, r := range rows {
		select {
		case <-ctx.Done():
			return
		default:
		}
		if !yield(r) {
			return
		}
	}
}

// methodEmit calls a named emit method (the add/emit/yield convention).
func methodEmit(ctx context.Context, rows []row, s *sink) {
	for _, r := range rows { // want `loop emits rows but never observes the in-scope context`
		s.add(r)
	}
	_ = ctx
}

// drain has no context in scope: its caller owns cancellation.
func drain(rows []row, yield func(row) bool) {
	for _, r := range rows {
		if !yield(r) {
			return
		}
	}
}

// count emits nothing; an unchecked loop is fine.
func count(ctx context.Context, rows []row) int {
	n := 0
	for range rows {
		n++
	}
	_ = ctx
	return n
}

// allowed opts out explicitly.
//
//bevet:allow emitctx
func allowed(ctx context.Context, rows []row, yield func(row) bool) {
	for _, r := range rows {
		_ = yield(r)
	}
	_ = ctx
}

// nonEmitCallee calls a func value with the wrong shape (two params):
// not an emit sink.
func nonEmitCallee(ctx context.Context, rows []row, cmp func(row, row) bool) int {
	n := 0
	for _, r := range rows {
		if cmp(r, r) {
			n++
		}
	}
	_ = ctx
	return n
}
