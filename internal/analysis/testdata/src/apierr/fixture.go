// Package apierr exercises the apierr analyzer: handlers that bypass
// the structured error path, and the structured path itself.
package apierr

import (
	"encoding/json"
	"net/http"
)

// writeError is the structured path; its own WriteHeader is the point.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}

// writeJSON may fall back to http.Error when its own encoder fails.
func writeJSON(w http.ResponseWriter, v any) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, "encoding failed", http.StatusInternalServerError)
	}
}

func handleBare(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `bare http\.Error bypasses the structured error envelope`
}

func handleNakedStatus(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusBadRequest) // want `WriteHeader\(400\) bypasses the structured error envelope`
}

func handleVariableStatus(w http.ResponseWriter, r *http.Request, status int) {
	w.WriteHeader(status) // want `non-constant status cannot be proven 2xx`
}

// handleOK writes success statuses: 2xx is the handler's business.
func handleOK(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusAccepted)
	_, _ = w.Write([]byte("{}"))
}

// handleStructured routes its error through writeError: the contract.
func handleStructured(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	writeJSON(w, map[string]int{"ok": 1})
}

// legacy is grandfathered explicitly.
//
//bevet:allow apierr
func legacy(w http.ResponseWriter) {
	http.Error(w, "grandfathered", 500)
}

// recorder forwards WriteHeader; wrappers do not decide statuses.
type recorder struct {
	http.ResponseWriter
	status int
}

func (rec *recorder) WriteHeader(status int) {
	rec.status = status
	rec.ResponseWriter.WriteHeader(status)
}
