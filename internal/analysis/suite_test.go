package analysis

import "testing"

// Each analyzer is proven against a fixture package that demonstrates
// both the violation (with `// want` expectations) and the blessed
// pattern next to it (no expectation — the harness fails on any
// unwanted diagnostic, so the negatives are load-bearing).

func TestSnapshotTear(t *testing.T) {
	RunTest(t, "testdata", SnapshotTear, "snapshottear")
}

func TestEmitCtx(t *testing.T) {
	RunTest(t, "testdata", EmitCtx, "emitctx")
}

func TestHotPathAlloc(t *testing.T) {
	RunTest(t, "testdata", HotPathAlloc, "hotpathalloc")
}

func TestLockedField(t *testing.T) {
	RunTest(t, "testdata", LockedField, "lockedfield")
}

func TestAPIErr(t *testing.T) {
	RunTest(t, "testdata", APIErr, "apierr")
}
