package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc keeps the per-row execution path allocation-lean: a
// function marked //bevet:hotpath runs once per emitted row (the
// fetch/join/dedup path in internal/plan, key encoding in
// internal/value), so constructs that allocate per call dominate the
// profile long before the fetch itself does. Flagged:
//
//   - any call into package fmt (Sprintf/Errorf/… allocate and reflect)
//   - string concatenation (+ / +=) inside a loop (quadratic garbage)
//   - map allocation (make(map…) or a map literal) — a per-call map on
//     a per-row function is ROADMAP item 1's first enemy
//   - interface boxing: passing a concrete value to an interface-typed
//     parameter forces a heap allocation per call
//
// The directive is the contract: unmarked functions may allocate
// freely (runSequential's per-execution dedup map is fine; a per-row
// one is not). //bevet:allow hotpathalloc suppresses on a marked
// function.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flags allocation-inducing constructs in functions marked //bevet:hotpath",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	eachFuncDecl(pass, func(fn *ast.FuncDecl) {
		d := funcDirectives(fn)
		if !d.hotpath || d.allow["hotpathalloc"] {
			return
		}
		checkFmtCalls(pass, fn)
		checkConcatInLoops(pass, fn)
		checkMapAllocs(pass, fn)
		checkBoxing(pass, fn)
	})
	return nil
}

func checkFmtCalls(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(sel.Sel)
		if f, ok := obj.(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "hotpath function calls fmt.%s: formatting allocates on every row", f.Name())
		}
		return true
	})
}

func checkConcatInLoops(pass *Pass, fn *ast.FuncDecl) {
	reported := make(map[token.Pos]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			switch e := m.(type) {
			case *ast.BinaryExpr:
				if e.Op == token.ADD && isStringType(pass.TypesInfo.TypeOf(e.X)) && !reported[e.Pos()] {
					reported[e.Pos()] = true
					pass.Reportf(e.Pos(), "hotpath function concatenates strings in a loop: use a strings.Builder or a byte buffer")
				}
			case *ast.AssignStmt:
				if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringType(pass.TypesInfo.TypeOf(e.Lhs[0])) && !reported[e.Pos()] {
					reported[e.Pos()] = true
					pass.Reportf(e.Pos(), "hotpath function concatenates strings in a loop: use a strings.Builder or a byte buffer")
				}
			}
			return true
		})
		return true
	})
}

func checkMapAllocs(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" {
				if _, isMap := pass.TypesInfo.TypeOf(e).Underlying().(*types.Map); isMap {
					pass.Reportf(e.Pos(), "hotpath function allocates a map per call: hoist it to the caller or a reusable state struct")
				}
			}
		case *ast.CompositeLit:
			if _, isMap := pass.TypesInfo.TypeOf(e).Underlying().(*types.Map); isMap {
				pass.Reportf(e.Pos(), "hotpath function allocates a map per call: hoist it to the caller or a reusable state struct")
			}
		}
		return true
	})
}

// checkBoxing flags call arguments whose concrete values convert to an
// interface-typed parameter: each such conversion heap-allocates.
func checkBoxing(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || tv.IsType() { // conversions are not calls
			return true
		}
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return true
		}
		params := sig.Params()
		for i, arg := range call.Args {
			if i >= params.Len() && !sig.Variadic() {
				break
			}
			var pt types.Type
			if sig.Variadic() && i >= params.Len()-1 {
				if call.Ellipsis != token.NoPos {
					continue // s... passes the slice through, no boxing
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			} else {
				pt = params.At(i).Type()
			}
			if !isInterfaceType(pt) {
				continue
			}
			at := pass.TypesInfo.TypeOf(arg)
			if at == nil || isInterfaceType(at) || isUntypedNil(at) {
				continue
			}
			pass.Reportf(arg.Pos(), "hotpath function boxes a concrete value into an interface parameter: each call allocates")
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInterfaceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
