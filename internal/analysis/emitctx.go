package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// EmitCtx generalizes the PR 5 `bequery -stream` bug: a row-emitting
// loop that never observes its context keeps streaming after the
// request is canceled or its deadline passes, for as long as the
// consumer keeps reading. In the serving packages, every for/range
// loop that calls an emit function — a func(T) bool sink value (the
// iter.Seq convention) or a yield/emit/add method returning bool —
// must contain a reachable ctx.Err()/ctx.Done() observation whenever a
// context.Context is in scope. Functions with no context in scope are
// exempt (they cannot observe what they were not given; their callers
// own cancellation), as are functions with //bevet:allow emitctx.
var EmitCtx = &Analyzer{
	Name: "emitctx",
	Doc:  "flags row-emitting loops in the serving packages that never observe a reachable context",
	Run:  runEmitCtx,
}

// emitCtxPkgs are the serving packages the invariant covers; packages
// outside the module (fixtures) are always checked.
var emitCtxPkgs = []string{
	"repro/internal/plan",
	"repro/internal/core",
	"repro/internal/shard",
	"repro/internal/server",
}

// emitNames are method/function names treated as row emitters when
// they return a single bool (the "keep going?" convention).
var emitNames = map[string]bool{"yield": true, "emit": true, "add": true}

func runEmitCtx(pass *Pass) error {
	if strings.HasPrefix(pass.PkgPath, "repro/") && !inAnyPkg(pass.PkgPath, emitCtxPkgs) {
		return nil
	}
	eachFuncDecl(pass, func(fn *ast.FuncDecl) {
		if allows(fn, "emitctx") {
			return
		}
		if !ctxInScope(pass, fn) {
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if hasEmitCall(pass, body) && !observesCtx(pass, body) {
				pass.Reportf(n.Pos(),
					"loop emits rows but never observes the in-scope context: a canceled request keeps streaming; check ctx.Err() periodically")
				return false // the finding covers nested loops too
			}
			return true
		})
	})
	return nil
}

// ctxInScope reports whether any identifier typed context.Context is
// declared or used inside fn (parameters, receivers, locals, captures).
func ctxInScope(pass *Pass, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); isVar && isContextType(obj.Type()) {
			found = true
		}
		return true
	})
	return found
}

// hasEmitCall reports whether the subtree calls an emit function.
func hasEmitCall(pass *Pass, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *ast.Ident
		switch f := call.Fun.(type) {
		case *ast.Ident:
			callee = f
		case *ast.SelectorExpr:
			callee = f.Sel
		default:
			return true
		}
		obj := pass.TypesInfo.ObjectOf(callee)
		if obj == nil {
			return true
		}
		sig, ok := obj.Type().Underlying().(*types.Signature)
		if !ok || !returnsBool(sig) {
			return true
		}
		switch obj.(type) {
		case *types.Var:
			// A func-typed value: the iter.Seq / sink convention wants
			// exactly one parameter (the row).
			if sig.Params().Len() == 1 {
				found = true
			}
		case *types.Func:
			if emitNames[callee.Name] {
				found = true
			}
		}
		return true
	})
	return found
}

func returnsBool(sig *types.Signature) bool {
	if sig.Results().Len() != 1 {
		return false
	}
	b, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// observesCtx reports whether the subtree contains a ctx.Err() or
// ctx.Done() call on a context.Context value.
func observesCtx(pass *Pass, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
			return true
		}
		if isContextType(pass.TypesInfo.TypeOf(sel.X)) {
			found = true
		}
		return true
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// inAnyPkg reports whether path names one of the base packages or one
// of their build variants (external test package, test binary, or the
// "pkg [pkg.test]" recompilation the go command reports for tests).
func inAnyPkg(path string, bases []string) bool {
	for _, b := range bases {
		if inPkg(path, b) {
			return true
		}
	}
	return false
}

func inPkg(path, base string) bool {
	if path == base {
		return true
	}
	for _, suffix := range []string{"/", "_test", ".test", " ["} {
		if strings.HasPrefix(path, base+suffix) {
			return true
		}
	}
	return false
}
