package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// LockedField enforces documented mutex discipline: a struct field
// whose comment says `guarded by <mu>` (the plan cache's counters, the
// shard coordinator's lazily merged instance) may only be read or
// written by functions that lock that mutex on the same receiver —
// <base>.<mu>.Lock() or .RLock() for an access through <base> — or
// that declare the caller holds it with //bevet:locked <mu>.
// Composite-literal construction is naturally exempt (the struct is
// not shared yet), as is the zero-value declaration.
var LockedField = &Analyzer{
	Name: "lockedfield",
	Doc:  "flags accesses to `guarded by <mu>` struct fields outside functions holding <mu>",
	Run:  runLockedField,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

func runLockedField(pass *Pass) error {
	guards := collectGuardedFields(pass)
	if len(guards) == 0 {
		return nil
	}
	eachFuncDecl(pass, func(fn *ast.FuncDecl) {
		if allows(fn, "lockedfield") {
			return
		}
		held := collectHeldLocks(pass, fn)
		callerHolds := funcDirectives(fn).locked
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			mu, guarded := guards[selection.Obj()]
			if !guarded {
				return true
			}
			base := types.ExprString(sel.X)
			if held[lockKey{base, mu}] || callerHolds[mu] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"access to %s.%s, guarded by %s, without holding %s.%s (lock it, or mark the function //bevet:locked %s)",
				base, sel.Sel.Name, mu, base, mu, mu)
			return true
		})
	})
	return nil
}

// collectGuardedFields maps each annotated field object to its
// guarding mutex name, from `guarded by <mu>` in the field's doc or
// trailing line comment.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardComment(field.Doc)
				if mu == "" {
					mu = guardComment(field.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.ObjectOf(name); obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardComment(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// lockKey identifies one acquired mutex: the rendered base expression
// it hangs off ("" for a bare identifier mutex) and its name.
type lockKey struct {
	base string
	mu   string
}

// collectHeldLocks finds every <base>.<mu>.Lock()/RLock() call in fn.
// Holding is function-granular: bevet does not track unlock ordering,
// it proves the function at least acquires the documented mutex.
func collectHeldLocks(pass *Pass, fn *ast.FuncDecl) map[lockKey]bool {
	held := make(map[lockKey]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch m := sel.X.(type) {
		case *ast.SelectorExpr:
			held[lockKey{types.ExprString(m.X), m.Sel.Name}] = true
		case *ast.Ident:
			held[lockKey{"", m.Name}] = true
		}
		return true
	})
	return held
}
