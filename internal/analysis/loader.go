package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"
)

// The loader resolves imports the same way the gc toolchain does:
// `go list -deps -export` compiles (or pulls from the build cache) the
// export data of every dependency, and importer.ForCompiler reads those
// files through a lookup function. This keeps the module dependency-free
// — no golang.org/x/tools/go/packages — while still type-checking
// anything the go command can build, entirely offline.

// ListPackage is the slice of `go list -json` output the loader reads.
type ListPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool // not named by the patterns, only reached through imports
}

// ListExports runs `go list -deps -export -json patterns...` in dir and
// returns every resolved package, keyed by import path, with its export
// data file populated.
func ListExports(dir string, patterns []string) (map[string]*ListPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=Dir,ImportPath,Export,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	pkgs := make(map[string]*ListPackage)
	dec := json.NewDecoder(&out)
	for {
		p := new(ListPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs[p.ImportPath] = p
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer reading gc export data files.
// resolve maps an import path to the file holding its export data; ""
// means unknown (the import fails, and type-checking degrades to
// whatever the analyzers can see — they are all nil-tolerant).
func exportImporter(fset *token.FileSet, resolve func(path string) string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file := resolve(path)
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// TypeCheck parses and type-checks one package from source files,
// resolving imports through export data. path is the package path
// analyzers see; files are Go source filenames. Type errors are
// tolerated (soft mode): the analyzers are written against possibly
// partial types.Info, so a fixture or a mid-edit tree still analyzes.
func TypeCheck(fset *token.FileSet, path string, files []string, resolve func(string) string) ([]*ast.File, *types.Package, *types.Info, error) {
	sort.Strings(files)
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		parsed = append(parsed, f)
	}
	info := NewTypesInfo()
	conf := types.Config{
		Importer: exportImporter(fset, resolve),
		Error:    func(error) {}, // soft: keep going past type errors
	}
	pkg, _ := conf.Check(path, fset, parsed, info)
	return parsed, pkg, info, nil
}

// RunAnalyzers executes every analyzer in the suite over one
// type-checked package and returns the diagnostics, ordered by position
// then message.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, pkgPath string, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range Analyzers() {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			PkgPath:   pkgPath,
			TypesInfo: info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
