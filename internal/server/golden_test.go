package server

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden files instead of comparing against them,
// following cmd/bequery's convention:
//
//	go test ./internal/server -run Golden -update
//
// API error payloads are part of the wire contract: changes are
// deliberate — re-record and review the diff.
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (record with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("payload differs from %s (re-record with -update if deliberate):\n--- want ---\n%s--- got ---\n%s", path, want, got)
	}
}

// TestGoldenErrorPayloads pins the structured error payloads of the
// API — budget refusal, violation 409, malformed request, not-bounded
// refusal, unknown query — byte for byte on the deterministic accidents
// fixture. The accident constraints are constant-form, so the refused
// bound (610 · 192) is data-independent and stable.
func TestGoldenErrorPayloads(t *testing.T) {
	srv, _ := accidentsServer(t, 2, 1, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path, body string) (*http.Response, string) {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp, readAll(t, resp)
	}

	resp, body := post("/v1/query", `{"query":"Q0","budget":100}`)
	if resp.StatusCode != 422 {
		t.Fatalf("budget refusal status = %d", resp.StatusCode)
	}
	checkGolden(t, "budget_refusal.golden", body)

	resp, body = post("/v1/apply", "+\tAccident\t1\tSoho\t9/9/1999\n")
	if resp.StatusCode != 409 {
		t.Fatalf("violation status = %d", resp.StatusCode)
	}
	checkGolden(t, "violation_409.golden", body)

	resp, body = post("/v1/query", `{"query":`)
	if resp.StatusCode != 400 {
		t.Fatalf("malformed request status = %d", resp.StatusCode)
	}
	checkGolden(t, "malformed_request.golden", body)

	resp, body = post("/v1/query", `{"text":"query Z(d) :- Accident(a, d, dt).","fallback":"refuse"}`)
	if resp.StatusCode != 422 {
		t.Fatalf("not-bounded refusal status = %d", resp.StatusCode)
	}
	checkGolden(t, "not_bounded.golden", body)

	resp, body = post("/v1/query", `{"query":"Ghost"}`)
	if resp.StatusCode != 404 {
		t.Fatalf("unknown query status = %d", resp.StatusCode)
	}
	checkGolden(t, "unknown_query.golden", body)
}
