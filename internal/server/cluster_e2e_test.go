package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/cluster"
	"repro/internal/cq"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/schema"
	"repro/internal/workload"
)

// clusterCoordinator builds a loaded scatter-gather coordinator over k
// networked shard nodes (each behind its own httptest server speaking
// /v1/internal/*), mirroring a real multi-process deployment in one
// test process.
func clusterCoordinator(t testing.TB, s *schema.Schema, a *access.Schema, k int) *cluster.Engine {
	t.Helper()
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		node, err := cluster.NewNode(s, a, i, k, cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(node.InternalHandler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	t.Cleanup(hc.CloseIdleConnections)
	coord, err := cluster.New(s, a, urls, cluster.Options{Client: hc})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// accidentsClusterServer reproduces cmd/bequery's golden fixture bed —
// the accidents.bq document plus the deterministic generated instance —
// and serves it through a coordinator over k networked shard nodes.
func accidentsClusterServer(t *testing.T, k int) *httptest.Server {
	t.Helper()
	raw, err := os.ReadFile(bequeryTestdata("accidents.bq"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := parser.Parse(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 3, AccidentsPerDay: 25, MaxVehicles: 3, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := load.SaveInstance(acc.Instance, dir); err != nil {
		t.Fatal(err)
	}
	d, err := load.LoadInstance(doc.Schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	coord := clusterCoordinator(t, doc.Schema, doc.Access, k)
	if err := coord.Load(d); err != nil {
		t.Fatal(err)
	}
	srv, err := New(coord, CatalogFromDocument(doc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestE2EClusterWireMatchesCLIGolden is the distributed acceptance
// check: the NDJSON body a COORDINATOR streams over HTTP — every fetch
// an RPC to a networked shard node — is byte-identical to the golden
// file cmd/bequery's -stream mode records for the same query on the
// same data, for 1 and 4 peers.
func TestE2EClusterWireMatchesCLIGolden(t *testing.T) {
	golden, err := os.ReadFile(bequeryTestdata("golden", "run_stream.golden"))
	if err != nil {
		t.Fatalf("missing CLI golden file (record with go test ./cmd/bequery -run Golden -update): %v", err)
	}
	for _, k := range []int{1, 4} {
		ts := accidentsClusterServer(t, k)
		resp := postQuery(t, ts, `{"query":"Q0"}`)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("K=%d: status = %d\n%s", k, resp.StatusCode, body)
		}
		if body != string(golden) {
			t.Errorf("K=%d: coordinator wire output differs from the CLI golden file:\n--- golden ---\n%s--- wire ---\n%s",
				k, golden, body)
		}
		if got := resp.Trailer.Get("X-Beserve-Error"); got != "" {
			t.Errorf("K=%d: X-Beserve-Error trailer = %q, want empty", k, got)
		}
	}
}

// TestClusterQueryProfileTrailer extends the profile-trailer
// reconciliation to the cluster path: with "profile": true against a
// coordinator-backed server, the last NDJSON line's span tree must name
// the plan and fetch phases plus the synthesized "peer N" RPC spans (and
// no in-process "shard N" spans), the plan-step fetch spans must sum to
// exactly the X-Beserve-Fetched trailer, and the pre-merge peer RPC
// traffic must cover it.
func TestClusterQueryProfileTrailer(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 2, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord := clusterCoordinator(t, acc.Schema, acc.Access, 4)
	if err := coord.Load(acc.Instance); err != nil {
		t.Fatal(err)
	}
	srv, err := New(coord, Catalog{
		Schema:  acc.Schema,
		Access:  acc.Access,
		Queries: map[string]*cq.CQ{"Q0": workload.Q0()},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postQuery(t, ts, `{"query":"Q0","profile":true}`)
	body := readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	last := lines[len(lines)-1]
	var trailer struct {
		Profile *obs.Span `json:"profile"`
	}
	if err := json.Unmarshal([]byte(last), &trailer); err != nil || trailer.Profile == nil {
		t.Fatalf("last line is not a profile trailer: %v\n%s", err, last)
	}
	if trailer.Profile.Name != "query" || trailer.Profile.ElapsedNS <= 0 {
		t.Errorf("root span = %+v", trailer.Profile)
	}
	for _, want := range []string{`"name":"plan"`, `"name":"fetch"`, `"name":"peer `} {
		if !strings.Contains(last, want) {
			t.Errorf("cluster profile lacks %s:\n%s", want, last)
		}
	}
	if strings.Contains(last, `"name":"shard `) {
		t.Errorf("cluster profile carries in-process shard spans:\n%s", last)
	}

	// Reconciliation: the trailer's fetched count (Result.Stats on the
	// wire) equals the sum of plan-step fetch spans, and the per-peer RPC
	// spans' pre-merge traffic covers it.
	fetched, err := strconv.ParseInt(resp.Trailer.Get("X-Beserve-Fetched"), 10, 64)
	if err != nil || fetched <= 0 {
		t.Fatalf("X-Beserve-Fetched trailer = %q (err %v), want > 0", resp.Trailer.Get("X-Beserve-Fetched"), err)
	}
	var fetchSum, peerSum int64
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		switch {
		case strings.HasPrefix(s.Name, "peer "):
			peerSum += s.Fetched
		case s.Name == "fetch":
			fetchSum += s.Fetched
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(trailer.Profile)
	if fetchSum != fetched {
		t.Errorf("profile fetch spans sum to %d, X-Beserve-Fetched trailer says %d", fetchSum, fetched)
	}
	if peerSum < fetched {
		t.Errorf("peer RPC spans carry %d rows < trailer's %d fetched", peerSum, fetched)
	}

	// The coordinator also feeds /metrics: the per-peer RPC latency
	// histograms ride behind the server's own exposition lines.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape := readAll(t, mresp)
	if !strings.Contains(scrape, `beserve_peer_rpc_latency_seconds_bucket{peer="0",`) {
		t.Errorf("/metrics lacks per-peer RPC latency histograms:\n%s", scrape)
	}
}

// TestClusterShardUnavailableOverWire kills the peers' listeners out
// from under a serving coordinator and demands structured degradation
// on BOTH server surfaces. /v1/apply refuses with a 503 and the
// {"error":{"code":"shard_unavailable"}} envelope. /v1/query streams,
// so its status line is committed before lazy execution reaches the
// dead peer (the same deliberate tradeoff the deadline handling in
// handleQuery documents): degradation there is ZERO golden rows plus a
// non-empty X-Beserve-Error trailer naming the unavailable shard —
// never a silently truncated answer.
func TestClusterShardUnavailableOverWire(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 2, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := 2
	urls := make([]string, k)
	peerServers := make([]*httptest.Server, k)
	for i := 0; i < k; i++ {
		node, err := cluster.NewNode(acc.Schema, acc.Access, i, k, cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		peerServers[i] = httptest.NewServer(node.InternalHandler())
		t.Cleanup(peerServers[i].Close)
		urls[i] = peerServers[i].URL
	}
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	t.Cleanup(hc.CloseIdleConnections)
	coord, err := cluster.New(acc.Schema, acc.Access, urls, cluster.Options{Client: hc})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Load(acc.Instance); err != nil {
		t.Fatal(err)
	}
	srv, err := New(coord, Catalog{
		Schema:  acc.Schema,
		Access:  acc.Access,
		Queries: map[string]*cq.CQ{"Q0": workload.Q0()},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Healthy first.
	resp := postQuery(t, ts, `{"query":"Q0"}`)
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy query: status %d\n%s", resp.StatusCode, body)
	}

	// Kill every peer: whatever shard Q0's keys route to is now gone.
	for _, ps := range peerServers {
		ps.Close()
	}

	// Non-streaming surface: /v1/apply fails whole with the envelope.
	aresp, err := ts.Client().Post(ts.URL+"/v1/apply", "text/tab-separated-values",
		strings.NewReader("+\tAccident\t9999\tNowhere\t1/1/1970\n"))
	if err != nil {
		t.Fatal(err)
	}
	abody := readAll(t, aresp)
	if aresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded apply: status %d, want 503\n%s", aresp.StatusCode, abody)
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(abody), &envelope); err != nil || envelope.Error.Code != "shard_unavailable" {
		t.Fatalf("degraded apply: want structured shard_unavailable envelope, got (err %v):\n%s", err, abody)
	}

	// Streaming surface: no rows, and the error trailer names the
	// refusal instead of presenting a truncated stream as an answer.
	resp = postQuery(t, ts, `{"query":"Q0"}`)
	body := readAll(t, resp)
	if strings.Contains(body, `"aid"`) {
		t.Fatalf("degraded query streamed rows:\n%s", body)
	}
	if got := resp.Trailer.Get("X-Beserve-Error"); !strings.Contains(got, "unavailable") {
		t.Fatalf("degraded query: X-Beserve-Error trailer = %q, want a shard-unavailable marker\nbody:\n%s", got, body)
	}
}
