package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// metrics are the server-side counters behind GET /metrics; engine-side
// counters (size, cumulative fetched/scanned, plan-cache hits) come from
// the engine itself at render time.
type metrics struct {
	// inFlight is the admission gauge: requests currently holding a slot.
	inFlight atomic.Int64
	// queries and applies count requests per endpoint (admitted or not).
	queries atomic.Int64
	applies atomic.Int64
	// saturated counts 503 admission refusals.
	saturated atomic.Int64
	// rows counts NDJSON lines streamed to clients.
	rows atomic.Int64
	// streamCuts counts responses cut mid-stream (deadline, disconnect).
	streamCuts atomic.Int64
	// checkpoints counts successful POST /v1/checkpoint requests.
	checkpoints atomic.Int64
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format, a fixed line order so scrapes are diffable.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	cs := s.eng.CacheStats()
	hitRate := 0.0
	if lookups := cs.Hits + cs.Misses; lookups > 0 {
		hitRate = float64(cs.Hits) / float64(lookups)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "beserve_in_flight %d\n", s.metrics.inFlight.Load())
	fmt.Fprintf(w, "beserve_requests_total{endpoint=\"query\"} %d\n", s.metrics.queries.Load())
	fmt.Fprintf(w, "beserve_requests_total{endpoint=\"apply\"} %d\n", s.metrics.applies.Load())
	fmt.Fprintf(w, "beserve_saturated_total %d\n", s.metrics.saturated.Load())
	fmt.Fprintf(w, "beserve_rows_streamed_total %d\n", s.metrics.rows.Load())
	fmt.Fprintf(w, "beserve_stream_cuts_total %d\n", s.metrics.streamCuts.Load())
	fmt.Fprintf(w, "beserve_checkpoints_total %d\n", s.metrics.checkpoints.Load())
	fmt.Fprintf(w, "beserve_engine_size %d\n", st.Size)
	fmt.Fprintf(w, "beserve_engine_shards %d\n", st.Shards)
	fmt.Fprintf(w, "beserve_engine_version %d\n", st.Version)
	fmt.Fprintf(w, "beserve_engine_queries_total %d\n", st.Queries)
	fmt.Fprintf(w, "beserve_engine_applies_total %d\n", st.Applies)
	fmt.Fprintf(w, "beserve_engine_fetched_total %d\n", st.Fetched)
	fmt.Fprintf(w, "beserve_engine_scanned_total %d\n", st.Scanned)
	fmt.Fprintf(w, "beserve_plan_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "beserve_plan_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "beserve_plan_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "beserve_plan_cache_hit_rate %.4f\n", hitRate)
}
