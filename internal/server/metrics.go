package server

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/obs"
)

// endpoint indexes the per-endpoint request counters. Every route the
// mux knows gets its own label; anything else (404s, bad methods) lands
// under "other" so no request is invisible to /metrics.
type endpoint int

const (
	epQuery endpoint = iota
	epApply
	epCheckpoint
	epExplain
	epSchema
	epHealthz
	epMetrics
	epOther
	epCount
)

// endpointNames are the {endpoint=...} label values, indexed by endpoint.
var endpointNames = [epCount]string{
	"query", "apply", "checkpoint", "explain", "schema", "healthz", "metrics", "other",
}

// endpointOf maps a mux pattern (what mux.Handler reports before
// dispatch) to its counter.
func endpointOf(pattern string) endpoint {
	switch pattern {
	case "POST /v1/query":
		return epQuery
	case "POST /v1/apply":
		return epApply
	case "POST /v1/checkpoint":
		return epCheckpoint
	case "GET /v1/explain":
		return epExplain
	case "GET /v1/schema":
		return epSchema
	case "GET /healthz":
		return epHealthz
	case "GET /metrics":
		return epMetrics
	default:
		return epOther
	}
}

// metrics are the server-side counters behind GET /metrics; engine-side
// counters (size, cumulative fetched/scanned, plan-cache hits) come from
// the engine itself at render time.
type metrics struct {
	// inFlight is the admission gauge: requests currently holding a slot.
	inFlight atomic.Int64
	// requests counts every request per endpoint, counted at dispatch —
	// before decode, admission or the handler — so refused and malformed
	// requests are visible too.
	requests [epCount]atomic.Int64
	// responses counts finished responses by status class: index 0 is
	// 2xx, 1 is 4xx, 2 is 5xx.
	responses [3]atomic.Int64
	// saturated counts 503 admission refusals.
	saturated atomic.Int64
	// rows counts NDJSON lines streamed to clients.
	rows atomic.Int64
	// streamCuts counts responses cut mid-stream (deadline, disconnect).
	streamCuts atomic.Int64
	// checkpoints counts successful POST /v1/checkpoint requests.
	checkpoints atomic.Int64

	// The fixed-bucket histograms: request latency and per-request
	// magnitude distributions. Allocated in New.
	queryLatency *obs.Histogram
	applyLatency *obs.Histogram
	fetchKeys    *obs.Histogram
	rowsOut      *obs.Histogram
}

// respClasses are the {class=...} label values, in exposition order.
var respClasses = [3]string{"2xx", "4xx", "5xx"}

// countResponse buckets a finished response's status code into its
// class counter. Classes outside 2xx/4xx/5xx (the server never emits
// 1xx/3xx) are ignored rather than miscounted.
func (m *metrics) countResponse(status int) {
	switch {
	case status >= 200 && status < 300:
		m.responses[0].Add(1)
	case status >= 400 && status < 500:
		m.responses[1].Add(1)
	case status >= 500 && status < 600:
		m.responses[2].Add(1)
	}
}

// newHistograms allocates the server's fixed-bucket histograms. Bucket
// bounds are construction-time constants, so the /metrics exposition's
// line set is fixed — the golden test pins it.
func (m *metrics) newHistograms() {
	m.queryLatency = obs.NewHistogram("beserve_query_latency_seconds",
		"End-to-end /v1/query latency including response streaming.", obs.LatencyBuckets())
	m.applyLatency = obs.NewHistogram("beserve_apply_latency_seconds",
		"Engine.Apply latency for /v1/apply requests.", obs.LatencyBuckets())
	m.fetchKeys = obs.NewHistogram("beserve_query_fetch_keys",
		"Distinct index lookups per /v1/query request.", obs.SizeBuckets())
	m.rowsOut = obs.NewHistogram("beserve_query_rows_streamed",
		"NDJSON rows streamed per /v1/query response.", obs.SizeBuckets())
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format, a fixed line order so scrapes are diffable (pinned by the
// golden test in metrics_test.go).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	cs := s.eng.CacheStats()
	hitRate := 0.0
	if lookups := cs.Hits + cs.Misses; lookups > 0 {
		hitRate = float64(cs.Hits) / float64(lookups)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "beserve_in_flight %d\n", s.metrics.inFlight.Load())
	for ep := endpoint(0); ep < epCount; ep++ {
		fmt.Fprintf(w, "beserve_requests_total{endpoint=%q} %d\n",
			endpointNames[ep], s.metrics.requests[ep].Load())
	}
	for i, class := range respClasses {
		fmt.Fprintf(w, "beserve_responses_total{class=%q} %d\n",
			class, s.metrics.responses[i].Load())
	}
	fmt.Fprintf(w, "beserve_saturated_total %d\n", s.metrics.saturated.Load())
	fmt.Fprintf(w, "beserve_rows_streamed_total %d\n", s.metrics.rows.Load())
	fmt.Fprintf(w, "beserve_stream_cuts_total %d\n", s.metrics.streamCuts.Load())
	fmt.Fprintf(w, "beserve_checkpoints_total %d\n", s.metrics.checkpoints.Load())
	fmt.Fprintf(w, "beserve_engine_size %d\n", st.Size)
	fmt.Fprintf(w, "beserve_engine_shards %d\n", st.Shards)
	fmt.Fprintf(w, "beserve_engine_version %d\n", st.Version)
	fmt.Fprintf(w, "beserve_engine_queries_total %d\n", st.Queries)
	fmt.Fprintf(w, "beserve_engine_applies_total %d\n", st.Applies)
	fmt.Fprintf(w, "beserve_engine_fetched_total %d\n", st.Fetched)
	fmt.Fprintf(w, "beserve_engine_scanned_total %d\n", st.Scanned)
	fmt.Fprintf(w, "beserve_plan_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "beserve_plan_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "beserve_plan_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "beserve_plan_cache_hit_rate %.4f\n", hitRate)
	s.metrics.queryLatency.Write(w)
	s.metrics.applyLatency.Write(w)
	s.metrics.fetchKeys.Write(w)
	s.metrics.rowsOut.Write(w)
	if mw, ok := s.eng.(MetricsWriter); ok {
		mw.WriteMetrics(w)
	}
}

// MetricsWriter is the optional exposition surface of an engine with
// metrics of its own (the cluster coordinator's per-peer RPC latency
// histograms). Discovered by assertion, appended after the server's own
// lines so engines without it keep the exposition byte-stable.
type MetricsWriter interface {
	WriteMetrics(w io.Writer)
}
