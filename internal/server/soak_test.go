package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/value"
)

// soakBed is a two-relation schema crafted so snapshot tearing is
// OBSERVABLE on the wire: A and B each hold exactly one row under key
// "w", always carrying the same version value, and the served query
// joins them on that value. A request answered from one consistent
// snapshot returns exactly one row; a request that read A from one
// version and B from another returns zero rows. PR 4's Snapshot()
// pinning trick, restated as a black-box wire property.
func soakBed(t *testing.T, shards int) (core.Queryable, Catalog) {
	t.Helper()
	s := schema.MustNew(
		schema.MustRelation("A", "k", "x"),
		schema.MustRelation("B", "k", "x"),
	)
	a := access.NewSchema(
		access.NewConstraint("A", []schema.Attribute{"k"}, []schema.Attribute{"x"}, 1),
		access.NewConstraint("B", []schema.Attribute{"k"}, []schema.Attribute{"x"}, 1),
	)
	d := data.NewInstance(s)
	d.MustInsert("A", value.NewString("w"), value.NewString("v0"))
	d.MustInsert("B", value.NewString("w"), value.NewString("v0"))
	var eng core.Queryable
	var err error
	if shards > 1 {
		eng, err = shard.New(s, a, shard.Options{Shards: shards})
	} else {
		eng, err = core.New(s, a, core.Options{})
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(d); err != nil {
		t.Fatal(err)
	}
	q := &cq.CQ{Label: "Q", Free: []string{"x"}, Atoms: []cq.Atom{
		cq.NewAtom("A", cq.Const(value.NewString("w")), cq.Var("x")),
		cq.NewAtom("B", cq.Const(value.NewString("w")), cq.Var("x")),
	}}
	// The soak is only meaningful if Q runs on the bounded path (two
	// indexed fetches) — a scan would read one materialized instance.
	if _, _, err := eng.Plan(q); err != nil {
		t.Fatalf("soak query must be boundedly evaluable: %v", err)
	}
	return eng, Catalog{Schema: s, Access: a, Queries: map[string]*cq.CQ{"Q": q}}
}

// swapDelta moves both relations from version prev to version next in
// one atomic batch.
func swapDelta(prev, next int) string {
	return fmt.Sprintf("-\tA\tw\tv%d\n+\tA\tw\tv%d\n-\tB\tw\tv%d\n+\tB\tw\tv%d\n",
		prev, next, prev, next)
}

// TestSoakStreamingReadersUnderWriter runs N streaming readers against
// a writer advancing the dataset version through /v1/apply, for the
// single-node and a sharded engine. Every response must be internally
// consistent with exactly one snapshot version (exactly one row), and
// versions observed by one reader must never go backwards. After
// shutdown, no goroutines may linger. Run under -race in CI.
func TestSoakStreamingReadersUnderWriter(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			before := runtime.NumGoroutine()
			eng, cat := soakBed(t, shards)
			srv, err := New(eng, cat, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv)
			client := ts.Client()

			const (
				readers  = 8
				queries  = 25
				versions = 50
			)
			var wg sync.WaitGroup
			errs := make(chan error, readers*queries+versions)

			wg.Add(1)
			go func() { // writer
				defer wg.Done()
				for i := 1; i <= versions; i++ {
					resp, err := client.Post(ts.URL+"/v1/apply", "text/tab-separated-values",
						strings.NewReader(swapDelta(i-1, i)))
					if err != nil {
						errs <- fmt.Errorf("apply v%d: %w", i, err)
						return
					}
					body := readAll(t, resp)
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("apply v%d: status %d: %s", i, resp.StatusCode, body)
						return
					}
				}
			}()

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					lastSeen := -1
					for n := 0; n < queries; n++ {
						resp, err := client.Post(ts.URL+"/v1/query", "application/json",
							strings.NewReader(`{"query":"Q"}`))
						if err != nil {
							errs <- err
							return
						}
						body := readAll(t, resp)
						if resp.StatusCode != http.StatusOK {
							errs <- fmt.Errorf("query: status %d: %s", resp.StatusCode, body)
							return
						}
						lines := strings.Split(strings.TrimSpace(body), "\n")
						if len(lines) != 1 || lines[0] == "" {
							// 0 rows = the A and B fetches saw different
							// snapshot versions; >1 = a torn swap.
							errs <- fmt.Errorf("torn read: %d rows, want exactly 1: %q", len(lines), body)
							continue
						}
						var v int
						if _, err := fmt.Sscanf(lines[0], `{"x":"v%d"}`, &v); err != nil {
							errs <- fmt.Errorf("unexpected row %q: %v", lines[0], err)
							continue
						}
						if v < 0 || v > versions {
							errs <- fmt.Errorf("impossible version v%d", v)
						}
						if v < lastSeen {
							errs <- fmt.Errorf("snapshot went backwards: v%d after v%d", v, lastSeen)
						}
						lastSeen = v
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			// The writer finished: the final version must be fully visible.
			resp := postQuery(t, ts, `{"query":"Q"}`)
			if body := readAll(t, resp); !strings.Contains(body, "v"+strconv.Itoa(versions)) {
				t.Errorf("final version v%d not visible: %s", versions, body)
			}

			// Graceful shutdown drains everything; nothing may leak.
			ts.Close()
			client.CloseIdleConnections()
			deadline := time.Now().Add(10 * time.Second)
			for runtime.NumGoroutine() > before {
				if time.Now().After(deadline) {
					var buf strings.Builder
					pprof.Lookup("goroutine").WriteTo(&buf, 1)
					t.Fatalf("goroutines leaked after shutdown: %d -> %d\n%s",
						before, runtime.NumGoroutine(), buf.String())
				}
				time.Sleep(20 * time.Millisecond)
			}
		})
	}
}
