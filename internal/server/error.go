package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/live"
)

// apiError is the one structured error payload every endpoint speaks,
// wrapped as {"error": {...}} on the wire. Code is machine-matchable
// and stable; the optional fields carry the refusal's specifics (the
// budget/bound pair of an admission refusal, the violation list of a
// rejected delta).
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Query, Budget and Bound detail a budget refusal: the static access
	// bound (absent when the query has none — a scan) exceeded the
	// request's budget.
	Query  string `json:"query,omitempty"`
	Budget *int64 `json:"budget,omitempty"`
	Bound  *int64 `json:"bound,omitempty"`
	// Violations details a schema_violation rejection (409).
	Violations []access.Violation `json:"violations,omitempty"`
}

// status maps the error code to its HTTP status.
func (e apiError) status() int {
	switch e.Code {
	case "unknown_query":
		return http.StatusNotFound
	case "schema_violation":
		return http.StatusConflict
	case "budget_refused", "not_bounded":
		return http.StatusUnprocessableEntity
	case "body_too_large":
		return http.StatusRequestEntityTooLarge
	case "deadline_exceeded":
		return http.StatusGatewayTimeout
	case "client_closed_request":
		// nginx's 499: the client aborted; not a server fault.
		return 499
	case "saturated", "shard_unavailable":
		return http.StatusServiceUnavailable
	case "not_coordinator":
		// 421: the write was sent to a shard node; it belongs at the
		// coordinator.
		return http.StatusMisdirectedRequest
	case "internal":
		return http.StatusInternalServerError
	default: // bad_request, bad_query_text, bad_delta
		return http.StatusBadRequest
	}
}

// queryError maps an Engine.Query (or Apply) error to its structured
// payload: refusals the engine negotiates (budget, not-bounded) keep
// their diagnostics; anything unrecognized is an internal error.
func queryError(err error) apiError {
	var be *core.BudgetError
	if errors.As(err, &be) {
		e := apiError{
			Code:    "budget_refused",
			Message: be.Error(),
			Query:   be.Query,
			Budget:  &be.Budget,
		}
		if be.Bound != nil {
			e.Bound = &be.Bound.Fetched
		}
		return e
	}
	var nb *core.NotBoundedError
	if errors.As(err, &nb) {
		return apiError{Code: "not_bounded", Message: nb.Error()}
	}
	var viol *live.ViolationError
	if errors.As(err, &viol) {
		return apiError{
			Code:       "schema_violation",
			Message:    live.RejectionMessage,
			Violations: viol.Violations,
		}
	}
	// Coded errors (internal/cluster's unavailable/misdirected refusals,
	// and any future engine that tags its errors) carry their own stable
	// code. Checked before the context classification: an RPC that timed
	// out inside the engine wraps DeadlineExceeded, but the REQUEST's
	// deadline did not expire — the honest answer is the coded refusal.
	var coded interface{ ErrorCode() string }
	if errors.As(err, &coded) {
		return apiError{Code: coded.ErrorCode(), Message: err.Error()}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return apiError{Code: "deadline_exceeded", Message: err.Error()}
	}
	if errors.Is(err, context.Canceled) {
		// The client went away; this is not a server fault, and mostly
		// nobody is left to read it — but a fronting proxy's accounting
		// should not see a 5xx.
		return apiError{Code: "client_closed_request", Message: err.Error()}
	}
	return apiError{Code: "internal", Message: err.Error()}
}

// writeError writes the {"error": ...} envelope. Payloads are indented
// and key-stable, so they can be pinned by golden files.
func writeError(w http.ResponseWriter, status int, e apiError) {
	writeJSON(w, status, struct {
		Error apiError `json:"error"`
	}{e})
}

// writeJSON writes v indented with a trailing newline; HTML escaping is
// off so constraint arrows and query syntax survive verbatim.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Marshaling our own payload shapes cannot fail; guard anyway.
		http.Error(w, fmt.Sprintf(`{"error":{"code":"internal","message":%q}}`, err.Error()),
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}
