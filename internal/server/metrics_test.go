package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsExpositionGolden pins the FULL /metrics line set and its
// order: every line's name+labels part, in sequence. Dashboards and the
// CI e2e scrape parse this surface by prefix, so an accidental rename,
// reorder, or dropped series must fail loudly here, not in production.
func TestMetricsExpositionGolden(t *testing.T) {
	srv, _ := accidentsServer(t, 2, 1, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Values vary run to run (latency sums, engine size); the series
	// names and their order do not. Strip each line to its name+labels.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, line := range strings.Split(strings.TrimSpace(readAll(t, resp)), "\n") {
		if strings.HasPrefix(line, "#") {
			// HELP/TYPE comments: keep the kind and the series name.
			f := strings.Fields(line)
			got = append(got, f[0]+" "+f[1]+" "+f[2])
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			got = append(got, line[:i])
		}
	}

	histogram := func(name string) []string {
		lines := []string{"# HELP " + name, "# TYPE " + name}
		var les []string
		if strings.HasSuffix(name, "_seconds") {
			les = []string{"0.0001", "0.0003", "0.001", "0.003", "0.01",
				"0.03", "0.1", "0.3", "1", "3", "10"}
		} else {
			les = []string{"1", "5", "10", "50", "100", "500", "1000",
				"5000", "10000", "100000", "1000000"}
		}
		for _, le := range append(les, "+Inf") {
			lines = append(lines, name+`_bucket{le="`+le+`"}`)
		}
		return append(lines, name+"_sum", name+"_count")
	}
	want := []string{
		"beserve_in_flight",
		`beserve_requests_total{endpoint="query"}`,
		`beserve_requests_total{endpoint="apply"}`,
		`beserve_requests_total{endpoint="checkpoint"}`,
		`beserve_requests_total{endpoint="explain"}`,
		`beserve_requests_total{endpoint="schema"}`,
		`beserve_requests_total{endpoint="healthz"}`,
		`beserve_requests_total{endpoint="metrics"}`,
		`beserve_requests_total{endpoint="other"}`,
		`beserve_responses_total{class="2xx"}`,
		`beserve_responses_total{class="4xx"}`,
		`beserve_responses_total{class="5xx"}`,
		"beserve_saturated_total",
		"beserve_rows_streamed_total",
		"beserve_stream_cuts_total",
		"beserve_checkpoints_total",
		"beserve_engine_size",
		"beserve_engine_shards",
		"beserve_engine_version",
		"beserve_engine_queries_total",
		"beserve_engine_applies_total",
		"beserve_engine_fetched_total",
		"beserve_engine_scanned_total",
		"beserve_plan_cache_hits_total",
		"beserve_plan_cache_misses_total",
		"beserve_plan_cache_entries",
		"beserve_plan_cache_hit_rate",
	}
	want = append(want, histogram("beserve_query_latency_seconds")...)
	want = append(want, histogram("beserve_apply_latency_seconds")...)
	want = append(want, histogram("beserve_query_fetch_keys")...)
	want = append(want, histogram("beserve_query_rows_streamed")...)

	if len(got) != len(want) {
		t.Fatalf("exposition has %d lines, want %d\ngot:\n%s", len(got), len(want),
			strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("exposition line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestMetricsEndpointAndClassCounters drives one request at every
// endpoint (plus an unrouted path) and checks each shows up under its
// own label, and that response classes are bucketed correctly.
func TestMetricsEndpointAndClassCounters(t *testing.T) {
	srv, _ := accidentsServer(t, 2, 1, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func(path string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
	}
	readAll(t, postQuery(t, ts, `{"query":"Q0"}`))          // 200 → query, 2xx
	readAll(t, postQuery(t, ts, `{"query":"NoSuchQuery"}`)) // 404 → query, 4xx
	get("/v1/explain?query=Q0")                             // 200 → explain, 2xx
	get("/v1/schema")                                       // 200 → schema, 2xx
	get("/healthz")                                         // 200 → healthz, 2xx
	get("/no/such/route")                                   // 404 → other, 4xx

	// ONE scrape for every assertion: each GET /metrics is itself a
	// counted 2xx response, so scraping per-metric would shift the
	// counts under the test.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape := readAll(t, resp)
	value := func(name string) string {
		for _, line := range strings.Split(scrape, "\n") {
			if strings.HasPrefix(line, name+" ") {
				return strings.TrimPrefix(line, name+" ")
			}
		}
		t.Fatalf("metric %s not exposed", name)
		return ""
	}
	wantCounts := map[string]string{
		`beserve_requests_total{endpoint="query"}`:   "2",
		`beserve_requests_total{endpoint="apply"}`:   "0",
		`beserve_requests_total{endpoint="explain"}`: "1",
		`beserve_requests_total{endpoint="schema"}`:  "1",
		`beserve_requests_total{endpoint="healthz"}`: "1",
		`beserve_requests_total{endpoint="metrics"}`: "1",
		`beserve_requests_total{endpoint="other"}`:   "1",
		`beserve_responses_total{class="2xx"}`:       "4",
		`beserve_responses_total{class="4xx"}`:       "2",
		`beserve_responses_total{class="5xx"}`:       "0",
		// The query latency histogram observed exactly the one query
		// that executed (the 404 never reached the engine).
		`beserve_query_latency_seconds_bucket{le="+Inf"}`: "1",
	}
	for name, want := range wantCounts {
		if got := value(name); got != want {
			t.Errorf("%s = %s, want %s", name, got, want)
		}
	}
}

// TestQueryProfileTrailer exercises "profile": true on the wire: the
// response's last NDJSON line must be a {"profile": ...} object whose
// span tree names the plan and fetch phases and reconciles with the
// X-Beserve-Fetched trailer.
func TestQueryProfileTrailer(t *testing.T) {
	srv, _ := accidentsServer(t, 2, 4, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postQuery(t, ts, `{"query":"Q0","profile":true}`)
	body := readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	last := lines[len(lines)-1]
	var trailer struct {
		Profile *struct {
			Name      string `json:"name"`
			ElapsedNS int64  `json:"elapsed_ns"`
			Children  []json.RawMessage
		} `json:"profile"`
	}
	if err := json.Unmarshal([]byte(last), &trailer); err != nil || trailer.Profile == nil {
		t.Fatalf("last line is not a profile trailer: %v\n%s", err, last)
	}
	if trailer.Profile.Name != "query" || trailer.Profile.ElapsedNS <= 0 {
		t.Errorf("root span = %+v", trailer.Profile)
	}
	for _, want := range []string{`"name":"plan"`, `"name":"fetch"`, `"name":"shard 0 route"`} {
		if !strings.Contains(last, want) {
			t.Errorf("profile lacks %s:\n%s", want, last)
		}
	}
	// Every earlier line is a row object — none may carry the key.
	for _, line := range lines[:len(lines)-1] {
		if strings.Contains(line, `"profile"`) {
			t.Errorf("row line carries a profile key: %s", line)
		}
	}
	// Without the flag, no trailer.
	body = readAll(t, postQuery(t, ts, `{"query":"Q0"}`))
	if strings.Contains(body, `"profile"`) {
		t.Errorf("unprofiled response carries a profile:\n%s", body)
	}
}
