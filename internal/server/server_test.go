package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/shard"
	"repro/internal/workload"
)

// accidentsServer builds a Server over the accidents demo workload with
// K shards (1 = single-node core.Engine), mirroring cmd/beserve's
// catalog.
func accidentsServer(t testing.TB, days, shards int, opts Options) (*Server, core.Queryable) {
	t.Helper()
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: days, AccidentsPerDay: 40, MaxVehicles: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var eng core.Queryable
	if shards > 1 {
		eng, err = shard.New(acc.Schema, acc.Access, shard.Options{Shards: shards})
	} else {
		eng, err = core.New(acc.Schema, acc.Access, core.Options{})
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(acc.Instance); err != nil {
		t.Fatal(err)
	}
	q51, ps := workload.Q51()
	srv, err := New(eng, Catalog{
		Schema:  acc.Schema,
		Access:  acc.Access,
		Queries: map[string]*cq.CQ{"Q0": workload.Q0(), "Q51": q51},
		Params:  map[string][]string{"Q51": ps},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return srv, eng
}

// postQuery POSTs a /v1/query body and returns the response.
func postQuery(t testing.TB, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readAll drains and closes the body.
func readAll(t testing.TB, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// wireError is the client-side decode of the {"error": ...} envelope
// (access.Violation only marshals, so the wire shape is re-declared).
type wireError struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	Query      string `json:"query"`
	Budget     *int64 `json:"budget"`
	Bound      *int64 `json:"bound"`
	Violations []struct {
		Constraint string `json:"constraint"`
		Group      int    `json:"group"`
		Bound      int    `json:"bound"`
	} `json:"violations"`
}

// decodeAPIError decodes the {"error": ...} envelope.
func decodeAPIError(t testing.TB, body string) wireError {
	t.Helper()
	var env struct {
		Error wireError `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("error payload is not the envelope: %v\n%s", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("error payload lacks code/message:\n%s", body)
	}
	return env.Error
}

func TestQueryEndpointNamedAndText(t *testing.T) {
	srv, _ := accidentsServer(t, 2, 1, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postQuery(t, ts, `{"query":"Q0"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("named query status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", got)
	}
	if got := resp.Header.Get("X-Beserve-Mode"); got != "bounded plan" {
		t.Errorf("X-Beserve-Mode = %q", got)
	}
	body := readAll(t, resp)
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("no NDJSON rows:\n%s", body)
	}
	for _, line := range lines {
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		if _, ok := row["xa"]; !ok {
			t.Fatalf("row %q lacks the xa column", line)
		}
	}
	// Trailers carry the final stats; the error trailer is empty for a
	// complete stream.
	if got := resp.Trailer.Get("X-Beserve-Error"); got != "" {
		t.Errorf("complete stream has error trailer %q", got)
	}
	if got := resp.Trailer.Get("X-Beserve-Fetched"); got == "" || got == "0" {
		t.Errorf("X-Beserve-Fetched trailer = %q, want > 0", got)
	}

	// The same query as ad-hoc text answers identically.
	text := `{"text":"query Q0(xa) :- Accident(aid, \"Queen's Park\", \"1/5/2005\"), Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa)."}`
	resp = postQuery(t, ts, text)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text query status = %d: %s", resp.StatusCode, readAll(t, resp))
	}
	if got := readAll(t, resp); got != body {
		t.Errorf("text query answered differently:\n--- named ---\n%s--- text ---\n%s", body, got)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	srv, _ := accidentsServer(t, 1, 1, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, tc := range []struct {
		name, body string
		status     int
		code       string
	}{
		{"malformed JSON", `{nope`, 400, "bad_request"},
		{"neither query nor text", `{}`, 400, "bad_request"},
		{"both query and text", `{"query":"Q0","text":"query Z(x) :- Vehicle(x, d, a)."}`, 400, "bad_request"},
		{"unknown query", `{"query":"Ghost"}`, 404, "unknown_query"},
		{"unknown field", `{"query":"Q0","bogus":1}`, 400, "bad_request"},
		{"trailing data", `{"query":"Q0"} {"query":"Q0"}`, 400, "bad_request"},
		{"bad query text", `{"text":"query Z(x) :- Nope(x)."}`, 400, "bad_query_text"},
		{"two heads in text", `{"text":"query A(x) :- Vehicle(x, d, a). query B(x) :- Vehicle(x, d, a)."}`, 400, "bad_query_text"},
		{"negative budget", `{"query":"Q0","budget":-1}`, 400, "bad_request"},
		{"bad timeout", `{"query":"Q0","timeout":"soon"}`, 400, "bad_request"},
		{"negative timeout", `{"query":"Q0","timeout":"-2s"}`, 400, "bad_request"},
		{"bad fallback", `{"query":"Q0","fallback":"maybe"}`, 400, "bad_request"},
		{"absurd workers", `{"query":"Q0","workers":100000}`, 400, "bad_request"},
		{"budget refusal", `{"query":"Q0","budget":0}`, 422, "budget_refused"},
		{"not bounded refusal", `{"text":"query Z(d) :- Accident(a, d, dt).","fallback":"refuse"}`, 422, "not_bounded"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := postQuery(t, ts, tc.body)
			body := readAll(t, resp)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d\n%s", resp.StatusCode, tc.status, body)
			}
			if e := decodeAPIError(t, body); e.Code != tc.code {
				t.Errorf("code = %q, want %q", e.Code, tc.code)
			}
		})
	}
}

func TestBudgetRefusalDetails(t *testing.T) {
	srv, _ := accidentsServer(t, 1, 1, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp := postQuery(t, ts, `{"query":"Q0","budget":7}`)
	e := decodeAPIError(t, readAll(t, resp))
	if resp.StatusCode != 422 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if e.Query != "Q0" || e.Budget == nil || *e.Budget != 7 || e.Bound == nil || *e.Bound <= 7 {
		t.Errorf("refusal payload lacks budget/bound detail: %+v", e)
	}
}

func TestApplyEndpoint(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			srv, eng := accidentsServer(t, 2, shards, Options{})
			ts := httptest.NewServer(srv)
			defer ts.Close()
			before := eng.Stats().Size

			// A fresh accident with one casualty/vehicle inserts cleanly.
			delta := "+\tAccident\t900001\tQueen's Park\t1/5/2005\n" +
				"+\tCasualty\t900001\t900001\t1\t900001\n" +
				"+\tVehicle\t900001\tzed\t2001\n"
			resp, err := ts.Client().Post(ts.URL+"/v1/apply", "text/tab-separated-values", strings.NewReader(delta))
			if err != nil {
				t.Fatal(err)
			}
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("apply status = %d\n%s", resp.StatusCode, body)
			}
			var res struct{ Inserted, Deleted, Size int }
			if err := json.Unmarshal([]byte(body), &res); err != nil {
				t.Fatal(err)
			}
			if res.Inserted != 3 || res.Deleted != 0 || res.Size != before+3 {
				t.Errorf("apply result = %+v, want +3 -0 size %d", res, before+3)
			}

			// The delta is immediately visible to queries.
			qresp := postQuery(t, ts, `{"query":"Q0"}`)
			if got := readAll(t, qresp); !strings.Contains(got, "2001") {
				t.Errorf("delta-inserted driver age missing from answers:\n%s", got)
			}

			// A batch violating ψ3 (second district for aid 1) is a 409
			// carrying the violation, with no visible effect.
			resp, err = ts.Client().Post(ts.URL+"/v1/apply", "text/tab-separated-values",
				strings.NewReader("+\tAccident\t1\tSoho\t9/9/1999\n"))
			if err != nil {
				t.Fatal(err)
			}
			body = readAll(t, resp)
			if resp.StatusCode != http.StatusConflict {
				t.Fatalf("violating apply status = %d\n%s", resp.StatusCode, body)
			}
			e := decodeAPIError(t, body)
			if e.Code != "schema_violation" || len(e.Violations) == 0 {
				t.Errorf("409 payload lacks violations: %+v", e)
			}
			if got := eng.Stats().Size; got != before+3 {
				t.Errorf("rejected delta changed |D|: %d -> %d", before+3, got)
			}

			// A malformed TSV line is a 400.
			resp, err = ts.Client().Post(ts.URL+"/v1/apply", "text/tab-separated-values",
				strings.NewReader("*\tAccident\t1\n"))
			if err != nil {
				t.Fatal(err)
			}
			body = readAll(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("malformed delta status = %d\n%s", resp.StatusCode, body)
			}
			if e := decodeAPIError(t, body); e.Code != "bad_delta" {
				t.Errorf("code = %q, want bad_delta", e.Code)
			}
		})
	}
}

func TestExplainSchemaHealthzMetrics(t *testing.T) {
	srv, _ := accidentsServer(t, 1, 1, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/explain?query=Q0")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != 200 || !strings.Contains(body, "BEP verdict: bounded") {
		t.Errorf("explain status=%d body:\n%s", resp.StatusCode, body)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/explain?query=Ghost")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != 404 {
		t.Errorf("explain unknown query status=%d body:\n%s", resp.StatusCode, body)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	var sch struct {
		Relations []struct {
			Name  string
			Attrs []string
		}
		Constraints []string
		Queries     []struct{ Name string }
		Shards      int
		Size        int
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &sch); err != nil {
		t.Fatal(err)
	}
	if len(sch.Relations) != 3 || len(sch.Constraints) != 4 || sch.Shards != 1 || sch.Size == 0 {
		t.Errorf("schema = %+v", sch)
	}
	if len(sch.Queries) != 2 || sch.Queries[0].Name != "Q0" || sch.Queries[1].Name != "Q51" {
		t.Errorf("queries not sorted/complete: %+v", sch.Queries)
	}
	if !strings.Contains(strings.Join(sch.Constraints, "\n"), "Accident(date -> aid, 610)") {
		t.Errorf("constraint rendering lost the arrow: %v", sch.Constraints)
	}

	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("healthz status=%d body:\n%s", resp.StatusCode, body)
	}

	// One query, then metrics must reflect it.
	readAll(t, postQuery(t, ts, `{"query":"Q0"}`))
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		`beserve_requests_total{endpoint="query"} 1`,
		"beserve_in_flight 0",
		"beserve_engine_queries_total",
		"beserve_engine_fetched_total",
		"beserve_plan_cache_hit_rate",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics lack %q:\n%s", want, body)
		}
	}
	// The engine-side fetched counter moved.
	if strings.Contains(body, "beserve_engine_fetched_total 0\n") {
		t.Errorf("engine fetched counter did not move:\n%s", body)
	}
}

// TestQueryDeadline404Before(...) pins the pre-stream deadline path: a
// deadline that expires before planning is a structured 504, not a cut
// stream.
func TestQueryDeadlineBeforeExecution(t *testing.T) {
	srv, _ := accidentsServer(t, 1, 1, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp := postQuery(t, ts, `{"query":"Q0","timeout":"1ns"}`)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d\n%s", resp.StatusCode, body)
	}
	if e := decodeAPIError(t, body); e.Code != "deadline_exceeded" {
		t.Errorf("code = %q", e.Code)
	}
}

// metricValue scrapes one gauge/counter from /metrics.
func metricValue(t testing.TB, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(readAll(t, resp), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(line, name+" %d", &v); err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// gatedEngine wraps a Queryable so Query blocks until the gate closes —
// a deterministic way to hold an admission slot open.
type gatedEngine struct {
	core.Queryable
	gate chan struct{}
}

func (g *gatedEngine) Query(ctx context.Context, q core.Query, opts ...core.QueryOption) (*core.Result, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return g.Queryable.Query(ctx, q, opts...)
}

// TestAdmissionSaturation pins the backpressure contract: with the one
// admission slot held by an in-flight request, the next request waits
// out the queue timeout and is refused 503 with Retry-After; once the
// slot frees, requests are admitted again.
func TestAdmissionSaturation(t *testing.T) {
	_, inner := accidentsServer(t, 1, 1, Options{})
	gated := &gatedEngine{Queryable: inner, gate: make(chan struct{})}
	srv, err := New(gated, Catalog{
		Schema:  workload.AccidentSchema(),
		Access:  workload.AccidentConstraints(),
		Queries: map[string]*cq.CQ{"Q0": workload.Q0()},
	}, Options{MaxInFlight: 1, QueueTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	holderDone := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json",
			strings.NewReader(`{"query":"Q0"}`))
		if err != nil {
			holderDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		holderDone <- resp.StatusCode
	}()
	// The holder owns the slot once it is blocked inside the engine.
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, ts, "beserve_in_flight") != 1 {
		if time.Now().After(deadline) {
			t.Fatal("holder never acquired the slot")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	resp := postQuery(t, ts, `{"query":"Q0"}`)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d\n%s", resp.StatusCode, body)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Errorf("refused after %v, before the queue timeout", waited)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 lacks Retry-After")
	}
	if e := decodeAPIError(t, body); e.Code != "saturated" {
		t.Errorf("code = %q", e.Code)
	}
	if got := metricValue(t, ts, "beserve_saturated_total"); got != 1 {
		t.Errorf("saturated_total = %d", got)
	}

	// Opening the gate frees the slot: the holder completes and the next
	// request is admitted.
	close(gated.gate)
	if got := <-holderDone; got != 200 {
		t.Fatalf("holder finished with status %d", got)
	}
	resp = postQuery(t, ts, `{"query":"Q0"}`)
	readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("post-drain status = %d", resp.StatusCode)
	}
}

// TestClientDisconnectCancelsRequest pins request-scoped cancellation:
// closing the response body mid-stream cancels the server-side request
// context, the handler unwinds (in_flight back to 0), and the cut is
// counted.
func TestClientDisconnectCancelsRequest(t *testing.T) {
	soc, err := workload.GenerateSocial(workload.SocialConfig{People: 2000, MaxFriends: 50, MaxLikes: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(soc.Schema, soc.Access, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(soc.Instance); err != nil {
		t.Fatal(err)
	}
	queries := map[string]*cq.CQ{}
	for _, q := range workload.PatternQueries(1) {
		queries[q.Label] = q
	}
	srv, err := New(eng, Catalog{Schema: soc.Schema, Access: soc.Access, Queries: queries}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/query", strings.NewReader(`{"query":"allPairs"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little of the stream, then vanish.
	if _, err := io.ReadFull(resp.Body, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, ts, "beserve_in_flight") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler did not unwind after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := metricValue(t, ts, "beserve_stream_cuts_total"); got != 1 {
		t.Errorf("stream_cuts_total = %d, want 1", got)
	}
}
