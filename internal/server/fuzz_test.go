package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/workload"
)

// fuzzServer is built once per process: a tiny accidents engine behind
// the full handler stack, so every fuzz input exercises exactly what a
// real request would.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzHandler(t testing.TB) *Server {
	fuzzOnce.Do(func() {
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: 1, AccidentsPerDay: 5, MaxVehicles: 2, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.New(acc.Schema, acc.Access, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Load(acc.Instance); err != nil {
			t.Fatal(err)
		}
		fuzzSrv, err = New(eng, Catalog{
			Schema:  acc.Schema,
			Access:  acc.Access,
			Queries: map[string]*cq.CQ{"Q0": workload.Q0()},
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}
	})
	return fuzzSrv
}

// FuzzQueryRequest hammers the POST /v1/query decoder and handler with
// arbitrary bodies. The contract under fuzz: the server never panics
// and never answers 500 — malformed options, bad query strings and
// absurd budgets are all structured 4xx payloads (a 504 is allowed:
// "timeout":"1ns" is a well-formed request whose deadline passes).
func FuzzQueryRequest(f *testing.F) {
	f.Add(`{"query":"Q0"}`)
	f.Add(`{"query":"Q0","budget":100,"timeout":"2s","fallback":"refuse","workers":2}`)
	f.Add(`{"text":"query Z(x) :- Vehicle(x, d, a)."}`)
	f.Add(`{"text":"query Z(d) :- Accident(a, d, dt).","fallback":"envelope"}`)
	f.Add(`{nope`)
	f.Add(`{}`)
	f.Add(`{"query":"Ghost"}`)
	f.Add(`{"query":"Q0","budget":-99}`)
	f.Add(`{"query":"Q0","budget":9223372036854775807}`)
	f.Add(`{"query":"Q0","timeout":"soon"}`)
	f.Add(`{"query":"Q0","timeout":"1ns"}`)
	f.Add(`{"query":"Q0","fallback":"maybe"}`)
	f.Add(`{"query":"Q0","workers":-100000}`)
	f.Add(`{"query":"Q0","unknown_field":true}`)
	f.Add(`{"query":"Q0"} trailing`)
	f.Add(`{"text":"query "}`)
	f.Add(`{"text":"relation R(a)"}`)
	f.Add(`[1,2,3]`)
	f.Add(`"just a string"`)
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, body string) {
		srv := fuzzHandler(t)
		req := httptest.NewRequest("POST", "/v1/query", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // must not panic
		res := rec.Result()
		switch {
		case res.StatusCode == http.StatusOK:
			return
		case res.StatusCode >= 400 && res.StatusCode < 500,
			res.StatusCode == http.StatusGatewayTimeout:
			// Every refusal must be the structured envelope.
			var env struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("status %d with a non-envelope body: %v\n%s", res.StatusCode, err, rec.Body.String())
			}
			if env.Error.Code == "" || env.Error.Message == "" {
				t.Fatalf("status %d with an empty code/message:\n%s", res.StatusCode, rec.Body.String())
			}
		default:
			t.Fatalf("input %q produced status %d (the server must never 5xx on a bad request):\n%s",
				body, res.StatusCode, rec.Body.String())
		}
	})
}
