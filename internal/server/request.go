package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/parser"
)

// QueryRequest is the POST /v1/query body. Exactly one of Query (a name
// from the catalog) and Text (ad-hoc query rules in the document
// syntax, validated against the server's schema) must be set; the
// remaining fields are the per-request serving knobs, each mapping onto
// one core.QueryOption.
type QueryRequest struct {
	// Query names a catalog query, e.g. "Q0".
	Query string `json:"query,omitempty"`
	// Text is one ad-hoc query: "query Q(x) :- R(x, y)." — several rules
	// sharing a head form a union.
	Text string `json:"text,omitempty"`
	// Budget, when non-nil, admits the request only if the static access
	// bound fits (core.WithAccessBudget); the refusal is a structured
	// 422 before any data is touched.
	Budget *int64 `json:"budget,omitempty"`
	// Timeout is a Go duration ("250ms", "2s") bounding request
	// wall-clock, including the streaming of the response.
	Timeout string `json:"timeout,omitempty"`
	// Fallback picks the strategy for non-bounded queries:
	// "scan" (default) | "refuse" | "envelope".
	Fallback string `json:"fallback,omitempty"`
	// Workers bounds this request's execution pool; 0 uses the engine
	// default, -1 uses GOMAXPROCS, at most 64.
	Workers int `json:"workers,omitempty"`
	// Profile requests an EXPLAIN ANALYZE trailer: the response's last
	// NDJSON line is {"profile": <span tree>} with per-operator timings
	// and row counts for this request.
	Profile bool `json:"profile,omitempty"`
}

// decodeQueryRequest reads and decodes the JSON body. Every failure is
// a structured 4xx — this is the surface FuzzQueryRequest hammers.
func decodeQueryRequest(r *http.Request, maxBody int64) (*QueryRequest, *apiError) {
	body := http.MaxBytesReader(nil, r.Body, maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req QueryRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &apiError{Code: "body_too_large",
				Message: fmt.Sprintf("request body exceeds the %d-byte limit", maxBody)}
		}
		return nil, &apiError{Code: "bad_request", Message: "malformed JSON request: " + err.Error()}
	}
	// A second JSON value after the request object is a client bug, not
	// trailing bytes to ignore.
	if dec.More() {
		return nil, &apiError{Code: "bad_request", Message: "trailing data after the JSON request object"}
	}
	return &req, nil
}

// resolve validates the decoded request against the catalog and schema,
// returning the query to serve, its options, and the request deadline
// (zero when none). Every failure is a structured 4xx.
func (s *Server) resolve(req *QueryRequest) (core.Query, []core.QueryOption, time.Time, *apiError) {
	var none time.Time
	if (req.Query == "") == (req.Text == "") {
		return nil, nil, none, &apiError{Code: "bad_request",
			Message: `exactly one of "query" (a catalog name) and "text" (an ad-hoc rule) must be set`}
	}
	var q core.Query
	switch {
	case req.Query != "":
		cq, ok := s.cat.Queries[req.Query]
		if !ok {
			return nil, nil, none, &apiError{Code: "unknown_query",
				Message: fmt.Sprintf("no query named %q; GET /v1/schema lists the catalog", req.Query)}
		}
		q = cq
	default:
		if len(req.Text) > maxQueryText {
			return nil, nil, none, &apiError{Code: "bad_query_text",
				Message: fmt.Sprintf("query text exceeds %d bytes", maxQueryText)}
		}
		parsed, err := parser.ParseQueryRules(req.Text, s.cat.Schema)
		if err != nil {
			return nil, nil, none, &apiError{Code: "bad_query_text", Message: err.Error()}
		}
		if len(parsed) != 1 {
			return nil, nil, none, &apiError{Code: "bad_query_text",
				Message: fmt.Sprintf("text must define exactly one query (rules sharing a head form a union), got %d", len(parsed))}
		}
		if parsed[0].IsCQ() {
			q = parsed[0].Subs[0]
		} else {
			q = parsed[0].PosFO
		}
	}
	var opts []core.QueryOption
	if req.Budget != nil {
		if *req.Budget < 0 {
			return nil, nil, none, &apiError{Code: "bad_request",
				Message: fmt.Sprintf("budget must be ≥ 0, got %d (omit it for no budget)", *req.Budget)}
		}
		opts = append(opts, core.WithAccessBudget(*req.Budget))
	}
	var deadline time.Time
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil {
			return nil, nil, none, &apiError{Code: "bad_request", Message: "bad timeout: " + err.Error()}
		}
		if d <= 0 {
			return nil, nil, none, &apiError{Code: "bad_request",
				Message: fmt.Sprintf("timeout must be positive, got %s (omit it for none)", d)}
		}
		deadline = time.Now().Add(d)
		opts = append(opts, core.WithDeadline(deadline))
	}
	switch req.Fallback {
	case "", "scan":
		opts = append(opts, core.WithFallback(core.FallbackScan))
	case "refuse":
		opts = append(opts, core.WithFallback(core.FallbackRefuse))
	case "envelope":
		opts = append(opts, core.WithFallback(core.FallbackEnvelope))
	default:
		return nil, nil, none, &apiError{Code: "bad_request",
			Message: fmt.Sprintf("unknown fallback %q (want scan | refuse | envelope)", req.Fallback)}
	}
	if req.Workers < -1 || req.Workers > maxWorkers {
		return nil, nil, none, &apiError{Code: "bad_request",
			Message: fmt.Sprintf("workers must be in [-1, %d], got %d", maxWorkers, req.Workers)}
	}
	if req.Workers != 0 {
		opts = append(opts, core.WithWorkers(req.Workers))
	}
	return q, opts, deadline, nil
}
