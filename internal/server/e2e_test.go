package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/load"
	"repro/internal/ndjson"
	"repro/internal/parser"
	"repro/internal/shard"
	"repro/internal/workload"
)

// bequeryTestdata resolves a path under cmd/bequery/testdata — the e2e
// contract is that the SERVER's wire output is byte-identical to the
// CLI's recorded golden files, so this suite reads the same fixtures
// the CLI golden tests pin.
func bequeryTestdata(parts ...string) string {
	return filepath.Join(append([]string{"..", "..", "cmd", "bequery", "testdata"}, parts...)...)
}

// accidentsFixtureServer reproduces cmd/bequery's golden fixture bed
// exactly — the accidents.bq document plus the deterministic generated
// instance — and serves it over K shards.
func accidentsFixtureServer(t *testing.T, shards int) *httptest.Server {
	t.Helper()
	raw, err := os.ReadFile(bequeryTestdata("accidents.bq"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := parser.Parse(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	// The same instance cmd/bequery's goldenData records.
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 3, AccidentsPerDay: 25, MaxVehicles: 3, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := load.SaveInstance(acc.Instance, dir); err != nil {
		t.Fatal(err)
	}
	d, err := load.LoadInstance(doc.Schema, dir)
	if err != nil {
		t.Fatal(err)
	}
	var eng core.Queryable
	if shards > 1 {
		eng, err = shard.New(doc.Schema, doc.Access, shard.Options{Shards: shards})
	} else {
		eng, err = core.New(doc.Schema, doc.Access, core.Options{})
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(d); err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, CatalogFromDocument(doc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestE2EWireMatchesCLIGolden is the end-to-end black-box proof: the
// NDJSON body /v1/query streams over HTTP is byte-identical to the
// golden file cmd/bequery's -stream mode records for the same query on
// the same data — for the single-node engine and for 4 shards.
func TestE2EWireMatchesCLIGolden(t *testing.T) {
	golden, err := os.ReadFile(bequeryTestdata("golden", "run_stream.golden"))
	if err != nil {
		t.Fatalf("missing CLI golden file (record with go test ./cmd/bequery -run Golden -update): %v", err)
	}
	for _, shards := range []int{1, 4} {
		ts := accidentsFixtureServer(t, shards)
		resp := postQuery(t, ts, `{"query":"Q0"}`)
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shards=%d: status = %d\n%s", shards, resp.StatusCode, body)
		}
		if body != string(golden) {
			t.Errorf("shards=%d: wire output differs from the CLI golden file:\n--- golden ---\n%s--- wire ---\n%s",
				shards, golden, body)
		}
	}
}

// TestE2EExplainMatchesCLIGolden pins /v1/explain to the same report
// the CLI's explain mode records (the golden file carries a trailing
// "query: ..." header the CLI prints identically).
func TestE2EExplainMatchesCLIGolden(t *testing.T) {
	golden, err := os.ReadFile(bequeryTestdata("golden", "explain.golden"))
	if err != nil {
		t.Fatalf("missing CLI golden file: %v", err)
	}
	ts := accidentsFixtureServer(t, 1)
	resp, err := http.Get(ts.URL + "/v1/explain?query=Q0")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); body != string(golden) {
		t.Errorf("explain over the wire differs from the CLI golden file:\n--- golden ---\n%s--- wire ---\n%s",
			golden, body)
	}
}

// TestE2EWireMatchesInProcessSocial extends the byte-identity proof to
// the social fixture (which has no CLI golden): for every catalog query,
// the wire body must equal the NDJSON rendering of an in-process
// Engine.Query stream on an identically built engine — for 1 and 4
// shards.
func TestE2EWireMatchesInProcessSocial(t *testing.T) {
	build := func(shards int) (core.Queryable, Catalog) {
		soc, err := workload.GenerateSocial(workload.SocialConfig{
			People: 400, MaxFriends: 50, MaxLikes: 10, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var eng core.Queryable
		if shards > 1 {
			eng, err = shard.New(soc.Schema, soc.Access, shard.Options{Shards: shards})
		} else {
			eng, err = core.New(soc.Schema, soc.Access, core.Options{})
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Load(soc.Instance); err != nil {
			t.Fatal(err)
		}
		queries := map[string]*cq.CQ{"GraphSearch": workload.GraphSearchQuery(1, "NYC", "cycling")}
		for _, q := range workload.PatternQueries(1) {
			queries[q.Label] = q
		}
		return eng, Catalog{Schema: soc.Schema, Access: soc.Access, Queries: queries}
	}
	for _, shards := range []int{1, 4} {
		// Two engines over identical data: one behind HTTP, one queried
		// in-process — the reference the wire must reproduce.
		wireEng, cat := build(shards)
		refEng, _ := build(shards)
		queries := cat.Queries
		srv, err := New(wireEng, cat, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		for name := range queries {
			res, err := refEng.Query(t.Context(), queries[name], core.WithStream())
			if err != nil {
				t.Fatalf("shards=%d %s: in-process query: %v", shards, name, err)
			}
			var want bytes.Buffer
			if err := ndjson.Write(&want, res, nil); err != nil {
				t.Fatalf("shards=%d %s: in-process stream: %v", shards, name, err)
			}
			resp := postQuery(t, ts, `{"query":"`+name+`"}`)
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("shards=%d %s: status = %d\n%s", shards, name, resp.StatusCode, body)
			}
			if body != want.String() {
				t.Errorf("shards=%d %s: wire differs from in-process NDJSON (%d vs %d bytes)",
					shards, name, len(body), want.Len())
			}
			if name == "allPairs" && !strings.Contains(resp.Header.Get("X-Beserve-Mode"), "scan") {
				t.Errorf("allPairs should fall back to a scan, got mode %q", resp.Header.Get("X-Beserve-Mode"))
			}
		}
	}
}
