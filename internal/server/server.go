// Package server exposes a core.Queryable engine over HTTP — the network
// boundary in front of the paper's bounded-evaluation serving stack. The
// same consistency and admission guarantees the in-process API gives
// hold on the wire:
//
//   - POST /v1/query   JSON request → NDJSON row stream. Per-request
//     budget/timeout/fallback/workers knobs map onto core.QueryOptions;
//     a budget refusal or a not-bounded refusal is a structured 4xx
//     payload emitted before any data is touched. Rows are produced via
//     core.WithStream from ONE engine snapshot, however many updates
//     land while the response streams.
//   - POST /v1/apply   delta TSV body → atomic Engine.Apply. All or
//     nothing: a delta that would violate a cardinality bound is a 409
//     carrying the full violation list, with no visible effect.
//   - GET  /v1/explain plan/coverage report for a named query.
//   - GET  /v1/schema  relations, constraints, named queries.
//   - GET  /healthz    liveness plus the engine size.
//   - GET  /metrics    Prometheus-style counters: in-flight, admission
//     rejections, plan-cache hit rate, cumulative fetched/scanned.
//
// Concurrency: a bounded admission semaphore caps in-flight query/apply
// requests; a request that cannot get a slot within the queue timeout is
// answered 503 with Retry-After, so overload degrades by refusing fast
// instead of queueing without bound. Each request's context is the HTTP
// request context: a client disconnect cancels in-flight plan execution.
// Graceful shutdown (http.Server.Shutdown, as cmd/beserve wires it)
// stops accepting and drains streaming responses before the process —
// and with it the snapshot — goes away.
//
// The server programs against core.Queryable, so fronting a single-node
// engine or a K-shard internal/shard engine is a constructor choice.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/live"
	"repro/internal/ndjson"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/schema"
)

// Catalog is the serving surface the server publishes: the schemas and
// the named queries clients may invoke (ad-hoc query text is validated
// against Schema).
type Catalog struct {
	Schema *schema.Schema
	Access *access.Schema
	// Queries maps the names clients may pass as "query" to the CQs they
	// run; Params carries each query's declared parameter list, for
	// /v1/explain.
	Queries map[string]*cq.CQ
	Params  map[string][]string
}

// CatalogFromDocument builds the serving catalog from a parsed .bq
// document: CQ rules become named queries (unions are served via the
// request's ad-hoc "text" instead). cmd/bequery, cmd/beserve and the
// e2e suite all assemble their document catalogs here, so what "-file"
// means cannot drift between the CLI and the server.
func CatalogFromDocument(doc *parser.Document) Catalog {
	queries := map[string]*cq.CQ{}
	params := map[string][]string{}
	for _, q := range doc.Queries {
		if q.IsCQ() {
			queries[q.Name] = q.Subs[0]
			params[q.Name] = q.Params
		}
	}
	return Catalog{Schema: doc.Schema, Access: doc.Access, Queries: queries, Params: params}
}

// Options tunes the server; the zero value is sensible.
type Options struct {
	// MaxInFlight caps concurrently served /v1/query and /v1/apply
	// requests (the admission semaphore). 0 means DefaultMaxInFlight.
	MaxInFlight int
	// QueueTimeout is how long a request waits for an admission slot
	// before being answered 503; it doubles as the Retry-After hint.
	// 0 means DefaultQueueTimeout.
	QueueTimeout time.Duration
	// MaxBodyBytes caps request bodies (JSON and delta TSV alike).
	// 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// StallTimeout bounds how long a single read from (or write to) the
	// client may block. Without it, a connected-but-stalled client — a
	// reader that stops draining a streaming response, or an uploader
	// that stops sending its delta — would pin its admission slot
	// forever and eventually wedge the server at MaxInFlight. The
	// deadline is rolling (refreshed per I/O operation), so slow-but-
	// moving clients are fine. 0 means DefaultStallTimeout.
	StallTimeout time.Duration
	// SlowLog, when non-nil, logs every /v1/query whose wall-clock
	// crosses its threshold as one structured JSON line (cache key,
	// bound, stats, top-3 spans). Requests then carry a trace even
	// without "profile": true, so the log has spans to digest.
	SlowLog *obs.SlowLog
	// Internal, when non-nil, is mounted at /v1/internal/ — the
	// shard-to-coordinator protocol of a cluster node (see
	// internal/cluster). It bypasses the admission semaphore: internal
	// traffic competing with public queries for slots would let a busy
	// node deadlock its own coordinator.
	Internal http.Handler
}

const (
	DefaultMaxInFlight  = 64
	DefaultQueueTimeout = time.Second
	DefaultMaxBodyBytes = 8 << 20
	DefaultStallTimeout = 30 * time.Second

	// maxWorkers bounds the per-request workers knob: the wire must not
	// be able to ask one request for an unbounded goroutine fan-out.
	maxWorkers = 64
	// maxQueryText bounds ad-hoc query text; planning cost grows with
	// query size, and no legitimate query is this long.
	maxQueryText = 16 << 10
	// flushStride is how many NDJSON rows are written between explicit
	// response flushes.
	flushStride = 256
)

// Server is an http.Handler serving a Queryable engine. Construct with
// New; the zero value is not usable.
type Server struct {
	eng  core.Queryable
	cat  Catalog
	opts Options
	// slots is the admission semaphore: a request holds one slot for its
	// whole lifetime, including while its response streams.
	slots   chan struct{}
	mux     *http.ServeMux
	metrics metrics
}

// New builds a server over eng. The engine must already hold data
// (callers Load before serving, so a request never observes the
// pre-Load state).
func New(eng core.Queryable, cat Catalog, opts Options) (*Server, error) {
	if eng == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	if cat.Schema == nil {
		return nil, fmt.Errorf("server: catalog has no schema")
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.QueueTimeout <= 0 {
		opts.QueueTimeout = DefaultQueueTimeout
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = DefaultStallTimeout
	}
	s := &Server{
		eng:   eng,
		cat:   cat,
		opts:  opts,
		slots: make(chan struct{}, opts.MaxInFlight),
	}
	s.metrics.newHistograms()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/apply", s.handleApply)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/schema", s.handleSchema)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.Internal != nil {
		mux.Handle("/v1/internal/", opts.Internal)
	}
	s.mux = mux
	return s, nil
}

// ServeHTTP counts the request under its endpoint label (resolved from
// the mux pattern BEFORE dispatch, so refused and malformed requests
// are counted too), serves it through a status-capturing writer, and
// buckets the finished response by status class.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	_, pattern := s.mux.Handler(r)
	s.metrics.requests[endpointOf(pattern)].Add(1)
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	s.metrics.countResponse(sw.status())
}

// statusWriter records the response status for the status-class
// counters. Unwrap keeps http.ResponseController (flush, deadlines)
// working through the wrapper — handlers must use the controller, not
// direct type assertions, for those optional interfaces.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// status is the recorded code; a handler that never wrote anything is
// an implicit 200.
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// acquire takes an admission slot, waiting up to the queue timeout. It
// reports false when the request should be refused (saturation) or the
// client has gone away.
func (s *Server) acquire(ctx context.Context) bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
	}
	t := time.NewTimer(s.opts.QueueTimeout)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	case <-t.C:
		return false
	}
}

func (s *Server) release() { <-s.slots }

// admit wraps acquire with the 503 + Retry-After refusal. The returned
// cleanup releases the slot; ok=false means the refusal (or nothing, if
// the client disconnected) was already written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (func(), bool) {
	if s.acquire(r.Context()) {
		s.metrics.inFlight.Add(1)
		return func() {
			s.metrics.inFlight.Add(-1)
			s.release()
		}, true
	}
	if r.Context().Err() != nil {
		// Client gone while queueing: nothing useful to write.
		return nil, false
	}
	s.metrics.saturated.Add(1)
	retry := int(s.opts.QueueTimeout / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusServiceUnavailable, apiError{
		Code: "saturated",
		Message: fmt.Sprintf("server at capacity (%d requests in flight); retry after %ds",
			s.opts.MaxInFlight, retry),
	})
	return nil, false
}

// handleQuery serves POST /v1/query: decode and validate the request,
// admit it, refuse-or-plan through Engine.Query, then stream the answer
// rows as NDJSON. Planning errors surface as structured payloads with
// real status codes; once streaming has begun, a cut (deadline, client
// disconnect) is reported in the X-Beserve-Error trailer — a truncated
// body never carries an empty trailer, so clients can tell short from
// complete.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, apiErr := decodeQueryRequest(r, s.opts.MaxBodyBytes)
	if apiErr != nil {
		writeError(w, apiErr.status(), *apiErr)
		return
	}
	q, qopts, deadline, apiErr := s.resolve(req)
	if apiErr != nil {
		writeError(w, apiErr.status(), *apiErr)
		return
	}
	done, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer done()
	// The request carries a trace when the client asked for a profile or
	// the operator runs a slow-query log — otherwise the engine's record
	// sites stay on their zero-cost disabled path.
	ctx := r.Context()
	var tr *obs.Trace
	if req.Profile || s.opts.SlowLog.Enabled() {
		tr = obs.NewTrace("query")
		defer tr.Finish()
		ctx = obs.NewContext(ctx, tr)
	}
	res, err := s.eng.Query(ctx, q, append(qopts, core.WithStream())...)
	if err != nil {
		e := queryError(err)
		writeError(w, e.status(), e)
		return
	}
	// WithStream defers execution, so a deadline that has already passed
	// (spent on queueing or planning) would otherwise surface as a 200
	// with an empty, cut stream. Refuse it as a structured 504 while the
	// status line is still ours to choose.
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		writeError(w, http.StatusGatewayTimeout, apiError{Code: "deadline_exceeded",
			Message: fmt.Sprintf("request timeout %s expired before execution began", req.Timeout)})
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("Trailer", "X-Beserve-Fetched, X-Beserve-Scanned, X-Beserve-Elapsed, X-Beserve-Error")
	h.Set("X-Beserve-Mode", res.Mode.String())
	h.Set("X-Beserve-Cache-Hit", strconv.FormatBool(res.Stats.CacheHit))
	w.WriteHeader(http.StatusOK)
	// Flush the first row immediately (streaming clients see data as
	// soon as it exists), then every flushStride rows; the handler
	// return flushes the tail. Per-row flushing would cost a syscall and
	// an undersized chunk per line on large scans. The flush goes
	// through ResponseController so it traverses the statusWriter
	// wrapper (Unwrap), where a direct http.Flusher assertion would not.
	rc := http.NewResponseController(w)
	n := 0
	flush := func() {
		if n%flushStride == 0 {
			_ = rc.Flush()
		}
		n++
	}
	out := &stallWriter{w: w, rc: rc, stall: s.opts.StallTimeout, rows: &s.metrics.rows}
	werr := ndjson.Write(out, res, flush)
	root := tr.Finish()
	if req.Profile && werr == nil {
		// EXPLAIN ANALYZE trailer: one {"profile": <span tree>} line
		// after the rows. Written to w directly so the rows-streamed
		// counters keep counting answer rows only.
		werr = ndjson.WriteProfile(w, root, func() { _ = rc.Flush() })
	}
	h.Set("X-Beserve-Fetched", strconv.FormatInt(res.Stats.Fetched, 10))
	h.Set("X-Beserve-Scanned", strconv.FormatInt(res.Stats.Scanned, 10))
	h.Set("X-Beserve-Elapsed", res.Stats.Elapsed.String())
	if werr != nil {
		s.metrics.streamCuts.Add(1)
		h.Set("X-Beserve-Error", werr.Error())
	}
	s.metrics.queryLatency.Observe(res.Stats.Elapsed.Seconds())
	s.metrics.fetchKeys.Observe(float64(res.Stats.FetchKeys))
	s.metrics.rowsOut.Observe(float64(out.n))
	s.recordSlowQuery(req, q, res, root)
}

// recordSlowQuery emits the structured slow-query line when the request
// crossed the operator's threshold.
func (s *Server) recordSlowQuery(req *QueryRequest, q core.Query, res *core.Result, root *obs.Span) {
	sl := s.opts.SlowLog
	if !sl.Enabled() {
		return
	}
	entry := obs.SlowEntry{
		Query:     req.Query,
		Mode:      res.Mode.String(),
		Fetched:   res.Stats.Fetched,
		Scanned:   res.Stats.Scanned,
		FetchKeys: res.Stats.FetchKeys,
		CacheHit:  res.Stats.CacheHit,
	}
	if entry.Query == "" {
		entry.Query = req.Text
	}
	if ck, ok := q.(interface{ CanonicalKey() string }); ok {
		entry.CacheKey = ck.CanonicalKey()
	}
	if res.Bound != nil {
		entry.Bound = res.Bound.Fetched
	}
	sl.Record(entry, res.Stats.Elapsed, root)
}

// stallWriter is the streaming response writer: it counts emitted
// NDJSON lines for /metrics, and it arms a rolling write deadline
// before every write so a connected-but-stalled client (TCP zero
// window) unblocks the handler after StallTimeout instead of pinning
// its admission slot forever. The deadline is re-armed per write —
// a slow-but-draining client never hits it, and slow row PRODUCTION
// (engine side) does not count against it. SetWriteDeadline errors are
// ignored: a ResponseWriter without deadline support (httptest's
// recorder) just runs unguarded.
type stallWriter struct {
	w     io.Writer
	rc    *http.ResponseController
	stall time.Duration
	rows  *atomic.Int64
	// n counts this response's lines (the global counter aggregates all
	// requests) — it feeds the rows-per-request histogram.
	n int64
}

func (c *stallWriter) Write(p []byte) (int, error) {
	_ = c.rc.SetWriteDeadline(time.Now().Add(c.stall))
	n, err := c.w.Write(p)
	for _, b := range p[:n] {
		if b == '\n' {
			c.rows.Add(1)
			c.n++
		}
	}
	return n, err
}

// stallReader is the request-body counterpart of stallWriter: a rolling
// read deadline per Read, so an uploader that stops sending unblocks
// the handler after StallTimeout.
type stallReader struct {
	r     io.Reader
	rc    *http.ResponseController
	stall time.Duration
}

func (c *stallReader) Read(p []byte) (int, error) {
	_ = c.rc.SetReadDeadline(time.Now().Add(c.stall))
	return c.r.Read(p)
}

// handleApply serves POST /v1/apply: the body is a delta TSV (the same
// format bequery -apply reads), applied atomically. The response
// reports the net effect and the new |D|; a rejected delta is a 409
// carrying every violation.
func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	done, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer done()
	body := &stallReader{r: http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes),
		rc: http.NewResponseController(w), stall: s.opts.StallTimeout}
	delta, err := live.ReadDeltaTSV(body, s.cat.Schema)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, apiError{
				Code:    "body_too_large",
				Message: fmt.Sprintf("delta body exceeds the %d-byte limit", s.opts.MaxBodyBytes),
			})
			return
		}
		writeError(w, http.StatusBadRequest, apiError{Code: "bad_delta", Message: err.Error()})
		return
	}
	start := time.Now()
	res, err := s.eng.Apply(r.Context(), delta)
	s.metrics.applyLatency.Observe(time.Since(start).Seconds())
	if err != nil {
		// queryError maps a *live.ViolationError to the 409 payload.
		e := queryError(err)
		writeError(w, e.status(), e)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Inserted int `json:"inserted"`
		Deleted  int `json:"deleted"`
		Size     int `json:"size"`
	}{res.Inserted, res.Deleted, s.eng.Stats().Size})
}

// Checkpointer is the optional durability surface of an engine: both
// core.Engine and shard.Engine implement it when opened with a data
// directory. The server discovers it by assertion rather than widening
// core.Queryable — read-only embedders of the Queryable interface owe
// nothing to durability.
type Checkpointer interface {
	Checkpoint(ctx context.Context) (uint64, error)
}

// handleCheckpoint serves POST /v1/checkpoint: persist the current
// snapshot as a compact checkpoint and compact the WAL behind it — the
// admin hook operators call before a planned restart so recovery is
// replay-free. The response reports the version captured. An engine
// running without a data directory answers 409 "not_durable".
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	ck, ok := s.eng.(Checkpointer)
	if !ok {
		writeError(w, http.StatusConflict, apiError{
			Code:    "not_durable",
			Message: "engine was started without a data directory",
		})
		return
	}
	done, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer done()
	v, err := ck.Checkpoint(r.Context())
	if err != nil {
		if errors.Is(err, core.ErrNotDurable) {
			writeError(w, http.StatusConflict, apiError{
				Code:    "not_durable",
				Message: "engine was started without a data directory",
			})
			return
		}
		writeError(w, http.StatusInternalServerError, apiError{Code: "internal", Message: err.Error()})
		return
	}
	s.metrics.checkpoints.Add(1)
	writeJSON(w, http.StatusOK, struct {
		Version uint64 `json:"version"`
	}{v})
}

// handleExplain serves GET /v1/explain?query=NAME: the engine's full
// coverage/BEP/plan/bound report as text.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("query")
	q, ok := s.cat.Queries[name]
	if !ok {
		writeError(w, http.StatusNotFound, apiError{
			Code:    "unknown_query",
			Message: fmt.Sprintf("no query named %q", name),
		})
		return
	}
	out, err := s.eng.Explain(q, s.cat.Params[name])
	if err != nil {
		writeError(w, http.StatusInternalServerError, apiError{Code: "internal", Message: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}

// handleSchema serves GET /v1/schema: the relations, constraints and
// named queries a client can program against.
func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	type relJSON struct {
		Name  string   `json:"name"`
		Attrs []string `json:"attrs"`
	}
	type queryJSON struct {
		Name   string   `json:"name"`
		Free   []string `json:"free"`
		Params []string `json:"params,omitempty"`
	}
	var rels []relJSON
	for _, rel := range s.cat.Schema.Relations() {
		attrs := make([]string, len(rel.Attrs))
		for i, a := range rel.Attrs {
			attrs[i] = string(a)
		}
		rels = append(rels, relJSON{Name: rel.Name, Attrs: attrs})
	}
	var constraints []string
	if s.cat.Access != nil {
		for _, c := range s.cat.Access.Constraints {
			constraints = append(constraints, c.String())
		}
	}
	var queries []queryJSON
	for _, name := range sortedNames(s.cat.Queries) {
		q := s.cat.Queries[name]
		queries = append(queries, queryJSON{Name: name, Free: q.Free, Params: s.cat.Params[name]})
	}
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, struct {
		Relations   []relJSON   `json:"relations"`
		Constraints []string    `json:"constraints"`
		Queries     []queryJSON `json:"queries"`
		Shards      int         `json:"shards"`
		Size        int         `json:"size"`
	}{rels, constraints, queries, st.Shards, st.Size})
}

// handleHealthz serves GET /healthz: liveness, the engine size, and the
// committed snapshot version — after a durable restart the version
// resumes where the previous process stopped, which is how the e2e
// suite (and operators) confirm recovery actually replayed the log.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Size    int    `json:"size"`
		Version uint64 `json:"version"`
	}{"ok", st.Size, st.Version})
}

// sortedNames returns the catalog's query names in sorted order, so
// /v1/schema listings are deterministic across runs.
func sortedNames(m map[string]*cq.CQ) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
