// Package data implements database instances: named relation instances
// holding tuples of values, with set semantics.
//
// An Instance is the "big dataset D" of the paper. Its size |D| is the total
// number of tuples. Relations enforce set semantics (duplicate tuples are
// ignored on insert), matching the paper's set-based query semantics.
package data

import (
	"fmt"
	"sort"

	"repro/internal/schema"
	"repro/internal/value"
)

// Tuple is one row of a relation instance.
type Tuple []value.Value

// Key returns the injective encoding of the whole tuple.
func (t Tuple) Key() value.Key { return value.KeyOf(t...) }

// Project returns the sub-tuple at the given column positions.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Relation is an instance of a relation schema: a set of tuples.
type Relation struct {
	Schema schema.Relation
	tuples []Tuple
	seen   map[value.Key]bool
}

// NewRelation returns an empty instance of rs.
func NewRelation(rs schema.Relation) *Relation {
	return &Relation{Schema: rs, seen: make(map[value.Key]bool)}
}

// Insert adds t under set semantics. It reports whether the tuple was new
// and errors if the arity mismatches the schema.
func (r *Relation) Insert(t Tuple) (bool, error) {
	if len(t) != r.Schema.Arity() {
		return false, fmt.Errorf("data: relation %s expects arity %d, got %d",
			r.Schema.Name, r.Schema.Arity(), len(t))
	}
	k := t.Key()
	if r.seen[k] {
		return false, nil
	}
	r.seen[k] = true
	r.tuples = append(r.tuples, t.Clone())
	return true, nil
}

// MustInsert inserts values as a tuple and panics on error; for fixtures.
func (r *Relation) MustInsert(vals ...value.Value) {
	if _, err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Delete removes t under set semantics. It reports whether the tuple was
// present and errors if the arity mismatches the schema. Insertion order
// of the remaining tuples is preserved.
func (r *Relation) Delete(t Tuple) (bool, error) {
	if len(t) != r.Schema.Arity() {
		return false, fmt.Errorf("data: relation %s expects arity %d, got %d",
			r.Schema.Name, r.Schema.Arity(), len(t))
	}
	k := t.Key()
	if !r.seen[k] {
		return false, nil
	}
	delete(r.seen, k)
	for i, u := range r.tuples {
		if u.Equal(t) {
			r.tuples = append(r.tuples[:i:i], r.tuples[i+1:]...)
			break
		}
	}
	return true, nil
}

// DeleteBatch removes every listed tuple in one order-preserving
// compaction pass — O(|R| + |ts|) total, against O(|R|) per tuple for
// repeated Delete calls — and returns the tuples that were actually
// present (duplicates in ts count once), for callers that maintain
// derived state such as indices. The surviving tuples move to a fresh
// backing slice, so slices previously returned by Tuples stay intact.
func (r *Relation) DeleteBatch(ts []Tuple) ([]Tuple, error) {
	return r.deleteBatch(ts, false)
}

// DeleteBatchInPlace is DeleteBatch minus the fresh-backing-slice
// guarantee: survivors are compacted within the existing backing array,
// clobbering any slice previously obtained from Tuples. It exists for
// WAL replay during recovery, where the relation was just decoded, is
// owned exclusively, and a full copy of the survivors per replayed
// delta would dominate the replay.
func (r *Relation) DeleteBatchInPlace(ts []Tuple) ([]Tuple, error) {
	return r.deleteBatch(ts, true)
}

func (r *Relation) deleteBatch(ts []Tuple, inPlace bool) ([]Tuple, error) {
	doomed := make(map[value.Key]bool, len(ts))
	for _, t := range ts {
		if len(t) != r.Schema.Arity() {
			return nil, fmt.Errorf("data: relation %s expects arity %d, got %d",
				r.Schema.Name, r.Schema.Arity(), len(t))
		}
		doomed[t.Key()] = true
	}
	// The scan is prefiltered on first cells: a tuple can only be doomed
	// if its first value matches some doomed tuple's first value. Doomed
	// tuples cluster on few distinct first cells (a delta deletes a
	// handful of entities plus their satellite rows), so when the
	// distinct set is small a linear probe of == comparisons beats
	// hashing every scanned tuple; past maxLinearCells it falls back to a
	// map. (Arity-0 relations hold at most one tuple; no prefilter
	// there.)
	const maxLinearCells = 16
	var cells []value.Value
	var cellSet map[value.Value]bool
	for _, t := range ts {
		if len(t) == 0 {
			continue
		}
		if cellSet != nil {
			cellSet[t[0]] = true
			continue
		}
		dup := false
		for _, c := range cells {
			if c == t[0] {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if len(cells) == maxLinearCells {
			cellSet = make(map[value.Value]bool, len(ts))
			for _, c := range cells {
				cellSet[c] = true
			}
			cellSet[t[0]] = true
			continue
		}
		cells = append(cells, t[0])
	}
	var removed []Tuple
	// In-place mode compacts survivors down within the existing array:
	// the write index never passes the read index, and the bulk tail
	// moves via append's memmove.
	var kept []Tuple
	if inPlace {
		kept = r.tuples[:0]
	} else {
		kept = make([]Tuple, 0, len(r.tuples))
	}
	// On a prefilter hit the tuple is re-keyed allocation-free: AppendKey
	// into a scratch buffer, map lookups via Key(buf) which the compiler
	// compiles without a copy. Once every doomed tuple has been found the
	// rest of the scan is a bulk append.
	var buf []byte
	for i, u := range r.tuples {
		if len(removed) == len(doomed) {
			kept = append(kept, r.tuples[i:]...)
			break
		}
		if len(u) > 0 {
			hit := false
			if cellSet != nil {
				hit = cellSet[u[0]]
			} else {
				for _, c := range cells {
					if c == u[0] {
						hit = true
						break
					}
				}
			}
			if !hit {
				kept = append(kept, u)
				continue
			}
		}
		buf = value.AppendKey(buf[:0], u...)
		if doomed[value.Key(buf)] && r.seen[value.Key(buf)] {
			delete(r.seen, value.Key(string(buf)))
			removed = append(removed, u)
			continue
		}
		kept = append(kept, u)
	}
	r.tuples = kept
	return removed, nil
}

// Clone returns an independent copy of r: mutating the clone (Insert,
// Delete) never affects r, so a clone is the copy-on-write building block
// for snapshot-isolated updates. Tuples themselves are immutable and
// shared.
func (r *Relation) Clone() *Relation {
	cp := &Relation{
		Schema: r.Schema,
		tuples: append([]Tuple(nil), r.tuples...),
		seen:   make(map[value.Key]bool, len(r.seen)),
	}
	for k := range r.seen {
		cp.seen[k] = true
	}
	return cp
}

// InstallTuples replaces r's contents wholesale with ts, whose element i
// has precomputed key keys[i] (= ts[i].Key()). It is the bulk-restore
// entry point for checkpoint recovery, where tuples are decoded from
// their canonical Key encodings and re-deriving each key through Insert
// would double the decode cost. Arity and duplicates are still validated;
// the tuple/key correspondence is the caller's contract. Ownership of ts
// transfers to r.
func (r *Relation) InstallTuples(ts []Tuple, keys []value.Key) error {
	if len(ts) != len(keys) {
		return fmt.Errorf("data: %s: %d tuples but %d keys", r.Schema.Name, len(ts), len(keys))
	}
	// Headroom beyond len(ts): recovery replays WAL deltas straight after
	// the restore, and a map sized exactly to its contents pays a full
	// incremental rehash on the first few inserts.
	seen := make(map[value.Key]bool, len(ts)+len(ts)/8+16)
	for i, t := range ts {
		if len(t) != r.Schema.Arity() {
			return fmt.Errorf("data: %s: tuple %d has arity %d, want %d", r.Schema.Name, i, len(t), r.Schema.Arity())
		}
		if seen[keys[i]] {
			return fmt.Errorf("data: %s: duplicate tuple %v", r.Schema.Name, t)
		}
		seen[keys[i]] = true
	}
	r.tuples = ts
	r.seen = seen
	return nil
}

// Contains reports whether tuple t is present.
func (r *Relation) Contains(t Tuple) bool { return r.seen[t.Key()] }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples exposes the backing tuple slice. Callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Instance is a database instance D of a relational schema R.
type Instance struct {
	Schema *schema.Schema
	rels   map[string]*Relation
}

// NewInstance returns an empty instance of s, with one (empty) relation
// instance per relation schema.
func NewInstance(s *schema.Schema) *Instance {
	ins := &Instance{Schema: s, rels: make(map[string]*Relation)}
	for _, rs := range s.Relations() {
		ins.rels[rs.Name] = NewRelation(rs)
	}
	return ins
}

// Relation returns the instance of the named relation, or nil if the schema
// has no such relation.
func (d *Instance) Relation(name string) *Relation { return d.rels[name] }

// Insert adds a tuple to the named relation.
func (d *Instance) Insert(rel string, vals ...value.Value) error {
	r := d.rels[rel]
	if r == nil {
		return fmt.Errorf("data: instance has no relation %s", rel)
	}
	_, err := r.Insert(Tuple(vals))
	return err
}

// MustInsert is Insert that panics on error; for fixtures and tests.
func (d *Instance) MustInsert(rel string, vals ...value.Value) {
	if err := d.Insert(rel, vals...); err != nil {
		panic(err)
	}
}

// Delete removes a tuple from the named relation.
func (d *Instance) Delete(rel string, vals ...value.Value) error {
	r := d.rels[rel]
	if r == nil {
		return fmt.Errorf("data: instance has no relation %s", rel)
	}
	_, err := r.Delete(Tuple(vals))
	return err
}

// CloneWith returns a shallow copy of d in which the relations named in
// repls are replaced and every other relation is shared with d. It is the
// instance-level copy-on-write step of a snapshotted update: the original
// instance is left untouched. Every replacement must name a relation of
// the schema and carry the same relation schema.
func (d *Instance) CloneWith(repls map[string]*Relation) (*Instance, error) {
	cp := &Instance{Schema: d.Schema, rels: make(map[string]*Relation, len(d.rels))}
	for name, r := range d.rels {
		cp.rels[name] = r
	}
	for name, r := range repls {
		old := cp.rels[name]
		if old == nil {
			return nil, fmt.Errorf("data: instance has no relation %s", name)
		}
		if r.Schema.Name != old.Schema.Name || r.Schema.Arity() != old.Schema.Arity() {
			return nil, fmt.Errorf("data: replacement for %s has schema %v", name, r.Schema)
		}
		cp.rels[name] = r
	}
	return cp, nil
}

// Size is |D|: the total number of tuples across all relations.
func (d *Instance) Size() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns every constant appearing in D, sorted, without
// duplicates. This is adom(D) less the query constants (callers add those).
func (d *Instance) ActiveDomain() []value.Value {
	set := make(map[value.Value]bool)
	for _, r := range d.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				set[v] = true
			}
		}
	}
	out := make([]value.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
