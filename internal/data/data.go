// Package data implements database instances: named relation instances
// holding tuples of values, with set semantics.
//
// An Instance is the "big dataset D" of the paper. Its size |D| is the total
// number of tuples. Relations enforce set semantics (duplicate tuples are
// ignored on insert), matching the paper's set-based query semantics.
//
// Storage is columnar: a Relation keeps one typed array pair (kind byte +
// 64-bit payload) per attribute instead of a []Tuple of boxed values, with
// string payloads dictionary-interned per relation. A row is addressed by
// its dense index — the tuple handle — and materialized into caller-owned
// buffers (AppendRow) or encoded straight into key scratch
// (AppendRowKey/AppendKeyAt), so scans and index builds touch no per-row
// heap memory. Insertion order is the row order, exactly as the old
// row-store kept it, so every downstream ordering guarantee (golden files,
// checkpoint layout) is unchanged.
package data

import (
	"fmt"
	"sort"

	"repro/internal/schema"
	"repro/internal/value"
)

// Tuple is one row of a relation instance.
type Tuple []value.Value

// Key returns the injective encoding of the whole tuple.
func (t Tuple) Key() value.Key { return value.KeyOf(t...) }

// Project returns the sub-tuple at the given column positions.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// dict interns the string payloads of one relation: each distinct string
// gets a dense uint32 id, so a string cell is one int64 in its column.
// Ids are append-only; deleting the last row holding a string leaves its
// entry behind (bounded by the historical distinct-string count, and
// dropped entirely on the next bulk load/restore).
type dict struct {
	ids  map[string]uint32
	strs []string
}

func newDict() *dict { return &dict{ids: make(map[string]uint32)} }

func (d *dict) intern(s string) uint32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint32(len(d.strs))
	d.strs = append(d.strs, s)
	d.ids[s] = id
	return id
}

func (d *dict) clone() *dict {
	cp := &dict{
		ids:  make(map[string]uint32, len(d.ids)),
		strs: append([]string(nil), d.strs...),
	}
	for s, id := range d.ids {
		cp.ids[s] = id
	}
	return cp
}

// column is one attribute's cells: the value kind per row plus a 64-bit
// payload (the integer itself, or the dict id of a string; 0 for null).
type column struct {
	kinds []uint8
	nums  []int64
}

// cellRep is one cell translated to its columnar representation — used to
// prefilter delete scans with integer compares instead of value equality.
type cellRep struct {
	kind uint8
	num  int64
}

// Relation is an instance of a relation schema: a set of tuples in
// columnar layout.
type Relation struct {
	Schema schema.Relation

	dict *dict
	cols []column
	n    int

	// seen is the set-semantics dedup index (tuple key -> present). It is
	// nil on a relation whose writer released it (ReleaseDedup after a
	// bulk load or recovery — read-mostly relations then carry no O(|R|)
	// map); the first mutation rebuilds it in one scan. Readers never
	// touch it except Contains, which falls back to a columnar scan when
	// it is nil so concurrent reads stay mutation-free.
	seen map[value.Key]bool

	// keyBuf is writer-only key-encoding scratch. The copy-on-write
	// discipline (mutate only unpublished clones) makes a single buffer
	// safe: reads of a published relation never use it.
	keyBuf []byte
}

// NewRelation returns an empty instance of rs.
func NewRelation(rs schema.Relation) *Relation {
	return &Relation{
		Schema: rs,
		dict:   newDict(),
		cols:   make([]column, rs.Arity()),
		seen:   make(map[value.Key]bool),
	}
}

// ensureSeen rebuilds the dedup index after a ReleaseDedup, once, before
// the first mutation. Writer-only. All row keys are encoded into one
// arena and the map keys sliced out of it, so the rebuild costs a
// handful of allocations rather than one string per tuple — it runs on
// the first mutation after recovery, where the relation can be large.
func (r *Relation) ensureSeen() {
	if r.seen != nil {
		return
	}
	offs := make([]int, r.n+1)
	var buf []byte
	for i := 0; i < r.n; i++ {
		buf = r.AppendRowKey(buf, i)
		offs[i+1] = len(buf)
	}
	s := string(buf)
	m := make(map[value.Key]bool, r.n+r.n/8+16)
	for i := 0; i < r.n; i++ {
		m[value.Key(s[offs[i]:offs[i+1]])] = true
	}
	r.seen = m
}

// appendRow appends t's cells to the columns. The caller has already
// checked arity and set semantics.
func (r *Relation) appendRow(t Tuple) {
	for c := range r.cols {
		col := &r.cols[c]
		v := t[c]
		col.kinds = append(col.kinds, uint8(v.Kind()))
		switch v.Kind() {
		case value.Int:
			col.nums = append(col.nums, v.Int())
		case value.String:
			col.nums = append(col.nums, int64(r.dict.intern(v.Str())))
		default:
			col.nums = append(col.nums, 0)
		}
	}
	r.n++
}

// ValueAt returns the cell at (row, col), reconstructed from the columnar
// representation without touching the heap.
//
//bevet:hotpath
func (r *Relation) ValueAt(row, col int) value.Value {
	c := &r.cols[col]
	switch value.Kind(c.kinds[row]) {
	case value.Int:
		return value.NewInt(c.nums[row])
	case value.String:
		return value.NewString(r.dict.strs[c.nums[row]])
	default:
		return value.Value{}
	}
}

// AppendRow materializes row i into dst (reset to length 0 first) and
// returns it — the scan primitive: callers own the buffer, so iterating a
// relation allocates nothing after the first row.
//
//bevet:hotpath
func (r *Relation) AppendRow(dst Tuple, i int) Tuple {
	dst = dst[:0]
	for c := range r.cols {
		dst = append(dst, r.ValueAt(i, c))
	}
	return dst
}

// RowTuple materializes row i into a fresh Tuple, for callers that retain
// the row past the scan.
func (r *Relation) RowTuple(i int) Tuple {
	return r.AppendRow(make(Tuple, 0, len(r.cols)), i)
}

// Tuples materializes every row as a fresh Tuple. It allocates one tuple
// per row and exists for tests and tooling; hot paths iterate rows with
// AppendRow/ValueAt instead. The result is independent of the relation —
// mutating it cannot corrupt storage (the old row-store accessor returned
// internal state by reference).
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, r.n)
	for i := range out {
		out[i] = r.RowTuple(i)
	}
	return out
}

// AppendRowKey appends the injective key encoding of row i to dst — the
// columnar equivalent of Tuple.Key into caller scratch.
//
//bevet:hotpath
func (r *Relation) AppendRowKey(dst []byte, i int) []byte {
	for c := range r.cols {
		dst = value.AppendValueKey(dst, r.ValueAt(i, c))
	}
	return dst
}

// AppendKeyAt appends the key encoding of row i projected onto cols — the
// index-build primitive (X-keys and Y-projection keys straight from the
// columns).
//
//bevet:hotpath
func (r *Relation) AppendKeyAt(dst []byte, i int, cols []int) []byte {
	for _, c := range cols {
		dst = value.AppendValueKey(dst, r.ValueAt(i, c))
	}
	return dst
}

// Insert adds t under set semantics. It reports whether the tuple was new
// and errors if the arity mismatches the schema.
func (r *Relation) Insert(t Tuple) (bool, error) {
	if len(t) != r.Schema.Arity() {
		return false, fmt.Errorf("data: relation %s expects arity %d, got %d",
			r.Schema.Name, r.Schema.Arity(), len(t))
	}
	r.ensureSeen()
	r.keyBuf = value.AppendKey(r.keyBuf[:0], t...)
	if r.seen[value.Key(r.keyBuf)] {
		return false, nil
	}
	r.seen[value.Key(string(r.keyBuf))] = true
	r.appendRow(t)
	return true, nil
}

// MustInsert inserts values as a tuple and panics on error; for fixtures.
func (r *Relation) MustInsert(vals ...value.Value) {
	if _, err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// encodeCells translates t to columnar cell representations, appending to
// reps. ok is false when some string cell is absent from the dict — then
// no stored row can equal t.
func (r *Relation) encodeCells(t Tuple, reps []cellRep) ([]cellRep, bool) {
	for _, v := range t {
		switch v.Kind() {
		case value.Int:
			reps = append(reps, cellRep{kind: uint8(value.Int), num: v.Int()})
		case value.String:
			id, ok := r.dict.ids[v.Str()]
			if !ok {
				return reps, false
			}
			reps = append(reps, cellRep{kind: uint8(value.String), num: int64(id)})
		default:
			reps = append(reps, cellRep{kind: uint8(v.Kind()), num: 0})
		}
	}
	return reps, true
}

// matchAt reports whether row i equals the encoded cells.
func (r *Relation) matchAt(i int, reps []cellRep) bool {
	for c := range r.cols {
		col := &r.cols[c]
		if col.kinds[i] != reps[c].kind || col.nums[i] != reps[c].num {
			return false
		}
	}
	return true
}

// removeRow deletes row i, shifting later rows down one slot per column.
// Columns are owned by this relation (Clone deep-copies them), so the
// shift never reaches another snapshot.
func (r *Relation) removeRow(i int) {
	for c := range r.cols {
		col := &r.cols[c]
		copy(col.kinds[i:], col.kinds[i+1:])
		col.kinds = col.kinds[:r.n-1]
		copy(col.nums[i:], col.nums[i+1:])
		col.nums = col.nums[:r.n-1]
	}
	r.n--
}

// Delete removes t under set semantics. It reports whether the tuple was
// present and errors if the arity mismatches the schema. Insertion order
// of the remaining tuples is preserved.
func (r *Relation) Delete(t Tuple) (bool, error) {
	if len(t) != r.Schema.Arity() {
		return false, fmt.Errorf("data: relation %s expects arity %d, got %d",
			r.Schema.Name, r.Schema.Arity(), len(t))
	}
	r.ensureSeen()
	r.keyBuf = value.AppendKey(r.keyBuf[:0], t...)
	if !r.seen[value.Key(r.keyBuf)] {
		return false, nil
	}
	delete(r.seen, value.Key(string(r.keyBuf)))
	reps, ok := r.encodeCells(t, make([]cellRep, 0, len(t)))
	if !ok {
		// seen said present, so every string cell is interned; unreachable.
		return false, fmt.Errorf("data: relation %s: dedup index out of sync", r.Schema.Name)
	}
	for i := 0; i < r.n; i++ {
		if r.matchAt(i, reps) {
			r.removeRow(i)
			break
		}
	}
	return true, nil
}

// DeleteBatch removes every listed tuple in one order-preserving
// compaction pass — O(|R| + |ts|) total, against O(|R|) per tuple for
// repeated Delete calls — and returns the tuples that were actually
// present (duplicates in ts count once), for callers that maintain
// derived state such as indices.
func (r *Relation) DeleteBatch(ts []Tuple) ([]Tuple, error) {
	return r.deleteBatch(ts)
}

// DeleteBatchInPlace is DeleteBatch under the columnar layout, where the
// compaction is always within the relation's own column arrays (Clone
// deep-copies them, so no other snapshot can observe the shift). The
// separate name survives for the recovery replay path that relied on the
// old row-store's in-place mode.
func (r *Relation) DeleteBatchInPlace(ts []Tuple) ([]Tuple, error) {
	return r.deleteBatch(ts)
}

func (r *Relation) deleteBatch(ts []Tuple) ([]Tuple, error) {
	for _, t := range ts {
		if len(t) != r.Schema.Arity() {
			return nil, fmt.Errorf("data: relation %s expects arity %d, got %d",
				r.Schema.Name, r.Schema.Arity(), len(t))
		}
	}
	r.ensureSeen()
	doomed := make(map[value.Key]bool, len(ts))
	for _, t := range ts {
		r.keyBuf = value.AppendKey(r.keyBuf[:0], t...)
		if r.seen[value.Key(r.keyBuf)] {
			doomed[value.Key(string(r.keyBuf))] = true
		}
	}
	if len(doomed) == 0 {
		return nil, nil
	}
	// The scan is prefiltered on first cells: a row can only be doomed if
	// its first cell matches some doomed tuple's first cell, and in the
	// columnar layout that is a two-integer compare. Doomed tuples cluster
	// on few distinct first cells (a delta deletes a handful of entities
	// plus their satellite rows), so a small linear probe beats hashing
	// every scanned row; past maxLinearCells it falls back to a map.
	// (Arity-0 relations hold at most one tuple; no prefilter there.)
	const maxLinearCells = 16
	var cells []cellRep
	var cellSet map[cellRep]bool
	if r.Schema.Arity() > 0 {
		for _, t := range ts {
			rep, ok := r.encodeCells(t[:1], nil)
			if !ok {
				continue // first cell not interned: t matches nothing
			}
			c0 := rep[0]
			if cellSet != nil {
				cellSet[c0] = true
				continue
			}
			dup := false
			for _, c := range cells {
				if c == c0 {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			if len(cells) == maxLinearCells {
				cellSet = make(map[cellRep]bool, len(ts))
				for _, c := range cells {
					cellSet[c] = true
				}
				cellSet[c0] = true
				continue
			}
			cells = append(cells, c0)
		}
	}
	var removed []Tuple
	var dead []int
	for i := 0; i < r.n; i++ {
		if len(removed) == len(doomed) {
			break
		}
		if r.Schema.Arity() > 0 {
			c0 := cellRep{kind: r.cols[0].kinds[i], num: r.cols[0].nums[i]}
			hit := false
			if cellSet != nil {
				hit = cellSet[c0]
			} else {
				for _, c := range cells {
					if c == c0 {
						hit = true
						break
					}
				}
			}
			if !hit {
				continue
			}
		}
		r.keyBuf = r.AppendRowKey(r.keyBuf[:0], i)
		if doomed[value.Key(r.keyBuf)] && r.seen[value.Key(r.keyBuf)] {
			delete(r.seen, value.Key(string(r.keyBuf)))
			removed = append(removed, r.RowTuple(i))
			dead = append(dead, i)
		}
	}
	if len(dead) == 0 {
		return nil, nil
	}
	// One order-preserving compaction pass per column: rows move down
	// only, so source cells are always read before they are overwritten.
	w, di := dead[0], 0
	for j := dead[0]; j < r.n; j++ {
		if di < len(dead) && dead[di] == j {
			di++
			continue
		}
		if w != j {
			for c := range r.cols {
				col := &r.cols[c]
				col.kinds[w] = col.kinds[j]
				col.nums[w] = col.nums[j]
			}
		}
		w++
	}
	for c := range r.cols {
		col := &r.cols[c]
		col.kinds = col.kinds[:w]
		col.nums = col.nums[:w]
	}
	r.n = w
	return removed, nil
}

// Clone returns an independent copy of r: mutating the clone (Insert,
// Delete) never affects r, so a clone is the copy-on-write building block
// for snapshot-isolated updates. Columns and the string dictionary are
// deep-copied; the interned string payloads themselves are immutable and
// shared.
func (r *Relation) Clone() *Relation {
	cp := &Relation{
		Schema: r.Schema,
		dict:   r.dict.clone(),
		cols:   make([]column, len(r.cols)),
		n:      r.n,
	}
	for c := range r.cols {
		cp.cols[c] = column{
			kinds: append([]uint8(nil), r.cols[c].kinds...),
			nums:  append([]int64(nil), r.cols[c].nums...),
		}
	}
	if r.seen != nil {
		cp.seen = make(map[value.Key]bool, len(r.seen))
		for k := range r.seen {
			cp.seen[k] = true
		}
	}
	return cp
}

// InstallKeys replaces r's contents wholesale with the tuples whose
// canonical Key encodings are keys, in order. It is the bulk-restore
// entry point for checkpoint recovery: each key's cells are decoded
// straight into the columns — no intermediate []Tuple, no re-encode of
// values the checkpoint already stores encoded. Arity and duplicates are
// still validated (the keys are file bytes), and the validation set
// doubles as the installed dedup index — its keys are substrings of the
// checkpoint payload, so WAL replay right after the restore mutates
// without a rebuild; the recovery driver releases the index once replay
// is done.
func (r *Relation) InstallKeys(keys []value.Key) error {
	arity := r.Schema.Arity()
	// Headroom beyond len(keys): recovery replays WAL deltas straight
	// after the restore, and a map sized exactly to its contents pays a
	// full incremental rehash on the first few inserts.
	seen := make(map[value.Key]bool, len(keys)+len(keys)/8+16)
	d := newDict()
	cols := make([]column, arity)
	for c := range cols {
		cols[c] = column{
			kinds: make([]uint8, len(keys)),
			nums:  make([]int64, len(keys)),
		}
	}
	for i, k := range keys {
		if seen[k] {
			return fmt.Errorf("data: %s: duplicate tuple key %q", r.Schema.Name, string(k))
		}
		seen[k] = true
		off := 0
		for c := 0; c < arity; c++ {
			v, next, err := value.DecodeKeyCell(k, off)
			if err != nil {
				return fmt.Errorf("data: %s: tuple %d: %w", r.Schema.Name, i, err)
			}
			off = next
			col := &cols[c]
			col.kinds[i] = uint8(v.Kind())
			switch v.Kind() {
			case value.Int:
				col.nums[i] = v.Int()
			case value.String:
				col.nums[i] = int64(d.intern(v.Str()))
			}
		}
		if off != len(k) {
			return fmt.Errorf("data: %s: tuple %d encodes more than %d values", r.Schema.Name, i, arity)
		}
	}
	r.dict, r.cols, r.n = d, cols, len(keys)
	r.seen = seen
	return nil
}

// ReleaseDedup drops the O(|R|) dedup index of a read-mostly relation —
// called after a bulk load or recovery, when no more writes are staged
// against this version. The next mutation (always on an owned clone or an
// exclusively owned instance) rebuilds it in one scan; reads never need
// it (Contains falls back to a columnar scan).
func (r *Relation) ReleaseDedup() { r.seen = nil }

// Contains reports whether tuple t is present. It is read-only and safe
// for concurrent use on a published relation: with the dedup index
// released it scans the columns instead of rebuilding the map.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.Schema.Arity() {
		return false
	}
	if r.seen != nil {
		var buf [48]byte
		k := value.AppendKey(buf[:0], t...)
		return r.seen[value.Key(k)]
	}
	reps, ok := r.encodeCells(t, make([]cellRep, 0, len(t)))
	if !ok {
		return false
	}
	for i := 0; i < r.n; i++ {
		if r.matchAt(i, reps) {
			return true
		}
	}
	return false
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// Instance is a database instance D of a relational schema R.
type Instance struct {
	Schema *schema.Schema
	rels   map[string]*Relation
}

// NewInstance returns an empty instance of s, with one (empty) relation
// instance per relation schema.
func NewInstance(s *schema.Schema) *Instance {
	ins := &Instance{Schema: s, rels: make(map[string]*Relation)}
	for _, rs := range s.Relations() {
		ins.rels[rs.Name] = NewRelation(rs)
	}
	return ins
}

// Relation returns the instance of the named relation, or nil if the schema
// has no such relation.
func (d *Instance) Relation(name string) *Relation { return d.rels[name] }

// Insert adds a tuple to the named relation.
func (d *Instance) Insert(rel string, vals ...value.Value) error {
	r := d.rels[rel]
	if r == nil {
		return fmt.Errorf("data: instance has no relation %s", rel)
	}
	_, err := r.Insert(Tuple(vals))
	return err
}

// MustInsert is Insert that panics on error; for fixtures and tests.
func (d *Instance) MustInsert(rel string, vals ...value.Value) {
	if err := d.Insert(rel, vals...); err != nil {
		panic(err)
	}
}

// Delete removes a tuple from the named relation.
func (d *Instance) Delete(rel string, vals ...value.Value) error {
	r := d.rels[rel]
	if r == nil {
		return fmt.Errorf("data: instance has no relation %s", rel)
	}
	_, err := r.Delete(Tuple(vals))
	return err
}

// ReleaseDedup drops every relation's dedup index; see
// Relation.ReleaseDedup. Call once after a bulk load or recovery
// completes, before the instance is published.
func (d *Instance) ReleaseDedup() {
	for _, r := range d.rels {
		r.ReleaseDedup()
	}
}

// CloneWith returns a shallow copy of d in which the relations named in
// repls are replaced and every other relation is shared with d. It is the
// instance-level copy-on-write step of a snapshotted update: the original
// instance is left untouched. Every replacement must name a relation of
// the schema and carry the same relation schema.
func (d *Instance) CloneWith(repls map[string]*Relation) (*Instance, error) {
	cp := &Instance{Schema: d.Schema, rels: make(map[string]*Relation, len(d.rels))}
	for name, r := range d.rels {
		cp.rels[name] = r
	}
	for name, r := range repls {
		old := cp.rels[name]
		if old == nil {
			return nil, fmt.Errorf("data: instance has no relation %s", name)
		}
		if r.Schema.Name != old.Schema.Name || r.Schema.Arity() != old.Schema.Arity() {
			return nil, fmt.Errorf("data: replacement for %s has schema %v", name, r.Schema)
		}
		cp.rels[name] = r
	}
	return cp, nil
}

// Size is |D|: the total number of tuples across all relations.
func (d *Instance) Size() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns every constant appearing in D, sorted, without
// duplicates. This is adom(D) less the query constants (callers add those).
func (d *Instance) ActiveDomain() []value.Value {
	set := make(map[value.Value]bool)
	for _, r := range d.rels {
		for i := 0; i < r.n; i++ {
			for c := range r.cols {
				set[r.ValueAt(i, c)] = true
			}
		}
	}
	out := make([]value.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
