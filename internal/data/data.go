// Package data implements database instances: named relation instances
// holding tuples of values, with set semantics.
//
// An Instance is the "big dataset D" of the paper. Its size |D| is the total
// number of tuples. Relations enforce set semantics (duplicate tuples are
// ignored on insert), matching the paper's set-based query semantics.
package data

import (
	"fmt"
	"sort"

	"repro/internal/schema"
	"repro/internal/value"
)

// Tuple is one row of a relation instance.
type Tuple []value.Value

// Key returns the injective encoding of the whole tuple.
func (t Tuple) Key() value.Key { return value.KeyOf(t...) }

// Project returns the sub-tuple at the given column positions.
func (t Tuple) Project(cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Relation is an instance of a relation schema: a set of tuples.
type Relation struct {
	Schema schema.Relation
	tuples []Tuple
	seen   map[value.Key]bool
}

// NewRelation returns an empty instance of rs.
func NewRelation(rs schema.Relation) *Relation {
	return &Relation{Schema: rs, seen: make(map[value.Key]bool)}
}

// Insert adds t under set semantics. It reports whether the tuple was new
// and errors if the arity mismatches the schema.
func (r *Relation) Insert(t Tuple) (bool, error) {
	if len(t) != r.Schema.Arity() {
		return false, fmt.Errorf("data: relation %s expects arity %d, got %d",
			r.Schema.Name, r.Schema.Arity(), len(t))
	}
	k := t.Key()
	if r.seen[k] {
		return false, nil
	}
	r.seen[k] = true
	r.tuples = append(r.tuples, t.Clone())
	return true, nil
}

// MustInsert inserts values as a tuple and panics on error; for fixtures.
func (r *Relation) MustInsert(vals ...value.Value) {
	if _, err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Delete removes t under set semantics. It reports whether the tuple was
// present and errors if the arity mismatches the schema. Insertion order
// of the remaining tuples is preserved.
func (r *Relation) Delete(t Tuple) (bool, error) {
	if len(t) != r.Schema.Arity() {
		return false, fmt.Errorf("data: relation %s expects arity %d, got %d",
			r.Schema.Name, r.Schema.Arity(), len(t))
	}
	k := t.Key()
	if !r.seen[k] {
		return false, nil
	}
	delete(r.seen, k)
	for i, u := range r.tuples {
		if u.Equal(t) {
			r.tuples = append(r.tuples[:i:i], r.tuples[i+1:]...)
			break
		}
	}
	return true, nil
}

// DeleteBatch removes every listed tuple in one order-preserving
// compaction pass — O(|R| + |ts|) total, against O(|R|) per tuple for
// repeated Delete calls — and returns the tuples that were actually
// present (duplicates in ts count once), for callers that maintain
// derived state such as indices. The surviving tuples move to a fresh
// backing slice, so slices previously returned by Tuples stay intact.
func (r *Relation) DeleteBatch(ts []Tuple) ([]Tuple, error) {
	doomed := make(map[value.Key]bool, len(ts))
	for _, t := range ts {
		if len(t) != r.Schema.Arity() {
			return nil, fmt.Errorf("data: relation %s expects arity %d, got %d",
				r.Schema.Name, r.Schema.Arity(), len(t))
		}
		doomed[t.Key()] = true
	}
	var removed []Tuple
	kept := make([]Tuple, 0, len(r.tuples))
	for _, u := range r.tuples {
		k := u.Key()
		if doomed[k] && r.seen[k] {
			delete(r.seen, k)
			removed = append(removed, u)
			continue
		}
		kept = append(kept, u)
	}
	r.tuples = kept
	return removed, nil
}

// Clone returns an independent copy of r: mutating the clone (Insert,
// Delete) never affects r, so a clone is the copy-on-write building block
// for snapshot-isolated updates. Tuples themselves are immutable and
// shared.
func (r *Relation) Clone() *Relation {
	cp := &Relation{
		Schema: r.Schema,
		tuples: append([]Tuple(nil), r.tuples...),
		seen:   make(map[value.Key]bool, len(r.seen)),
	}
	for k := range r.seen {
		cp.seen[k] = true
	}
	return cp
}

// Contains reports whether tuple t is present.
func (r *Relation) Contains(t Tuple) bool { return r.seen[t.Key()] }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples exposes the backing tuple slice. Callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Instance is a database instance D of a relational schema R.
type Instance struct {
	Schema *schema.Schema
	rels   map[string]*Relation
}

// NewInstance returns an empty instance of s, with one (empty) relation
// instance per relation schema.
func NewInstance(s *schema.Schema) *Instance {
	ins := &Instance{Schema: s, rels: make(map[string]*Relation)}
	for _, rs := range s.Relations() {
		ins.rels[rs.Name] = NewRelation(rs)
	}
	return ins
}

// Relation returns the instance of the named relation, or nil if the schema
// has no such relation.
func (d *Instance) Relation(name string) *Relation { return d.rels[name] }

// Insert adds a tuple to the named relation.
func (d *Instance) Insert(rel string, vals ...value.Value) error {
	r := d.rels[rel]
	if r == nil {
		return fmt.Errorf("data: instance has no relation %s", rel)
	}
	_, err := r.Insert(Tuple(vals))
	return err
}

// MustInsert is Insert that panics on error; for fixtures and tests.
func (d *Instance) MustInsert(rel string, vals ...value.Value) {
	if err := d.Insert(rel, vals...); err != nil {
		panic(err)
	}
}

// Delete removes a tuple from the named relation.
func (d *Instance) Delete(rel string, vals ...value.Value) error {
	r := d.rels[rel]
	if r == nil {
		return fmt.Errorf("data: instance has no relation %s", rel)
	}
	_, err := r.Delete(Tuple(vals))
	return err
}

// CloneWith returns a shallow copy of d in which the relations named in
// repls are replaced and every other relation is shared with d. It is the
// instance-level copy-on-write step of a snapshotted update: the original
// instance is left untouched. Every replacement must name a relation of
// the schema and carry the same relation schema.
func (d *Instance) CloneWith(repls map[string]*Relation) (*Instance, error) {
	cp := &Instance{Schema: d.Schema, rels: make(map[string]*Relation, len(d.rels))}
	for name, r := range d.rels {
		cp.rels[name] = r
	}
	for name, r := range repls {
		old := cp.rels[name]
		if old == nil {
			return nil, fmt.Errorf("data: instance has no relation %s", name)
		}
		if r.Schema.Name != old.Schema.Name || r.Schema.Arity() != old.Schema.Arity() {
			return nil, fmt.Errorf("data: replacement for %s has schema %v", name, r.Schema)
		}
		cp.rels[name] = r
	}
	return cp, nil
}

// Size is |D|: the total number of tuples across all relations.
func (d *Instance) Size() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns every constant appearing in D, sorted, without
// duplicates. This is adom(D) less the query constants (callers add those).
func (d *Instance) ActiveDomain() []value.Value {
	set := make(map[value.Value]bool)
	for _, r := range d.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				set[v] = true
			}
		}
	}
	out := make([]value.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
