package data

import (
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/value"
)

func ints(xs ...int64) Tuple {
	t := make(Tuple, len(xs))
	for i, x := range xs {
		t[i] = value.NewInt(x)
	}
	return t
}

func TestInsertSetSemantics(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A", "B"))
	fresh, err := r.Insert(ints(1, 2))
	if err != nil || !fresh {
		t.Fatalf("first insert: fresh=%v err=%v", fresh, err)
	}
	fresh, err = r.Insert(ints(1, 2))
	if err != nil || fresh {
		t.Fatalf("duplicate insert: fresh=%v err=%v", fresh, err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestInsertArityCheck(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A", "B"))
	if _, err := r.Insert(ints(1)); err == nil {
		t.Error("arity mismatch must error")
	}
}

func TestContains(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A"))
	r.MustInsert(value.NewInt(7))
	if !r.Contains(ints(7)) {
		t.Error("Contains(7) should be true")
	}
	if r.Contains(ints(8)) {
		t.Error("Contains(8) should be false")
	}
}

func TestTupleProjectAndEqual(t *testing.T) {
	tup := Tuple{value.NewInt(1), value.NewString("x"), value.NewInt(3)}
	p := tup.Project([]int{2, 0})
	if !p.Equal(Tuple{value.NewInt(3), value.NewInt(1)}) {
		t.Errorf("Project = %v", p)
	}
	if tup.Equal(p) {
		t.Error("tuples of different arity must not be equal")
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	tup := ints(1, 2)
	c := tup.Clone()
	c[0] = value.NewInt(99)
	if tup[0] != value.NewInt(1) {
		t.Error("Clone must not alias the original")
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A"))
	tup := ints(1)
	if _, err := r.Insert(tup); err != nil {
		t.Fatal(err)
	}
	tup[0] = value.NewInt(2)
	if !r.Contains(ints(1)) {
		t.Error("relation must store a copy, not alias caller memory")
	}
}

func TestInstance(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("R", "A"),
		schema.MustRelation("S", "B", "C"),
	)
	d := NewInstance(s)
	d.MustInsert("R", value.NewInt(1))
	d.MustInsert("S", value.NewInt(2), value.NewInt(3))
	d.MustInsert("S", value.NewInt(2), value.NewInt(3)) // dup, ignored
	if d.Size() != 2 {
		t.Errorf("Size = %d, want 2", d.Size())
	}
	if err := d.Insert("T", value.NewInt(0)); err == nil {
		t.Error("unknown relation must error")
	}
	if d.Relation("R").Len() != 1 {
		t.Error("R should have 1 tuple")
	}
}

func TestActiveDomain(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	d := NewInstance(s)
	d.MustInsert("R", value.NewInt(2), value.NewInt(1))
	d.MustInsert("R", value.NewInt(1), value.NewString("z"))
	got := d.ActiveDomain()
	want := []value.Value{value.NewInt(1), value.NewInt(2), value.NewString("z")}
	if len(got) != len(want) {
		t.Fatalf("ActiveDomain = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ActiveDomain[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSetSemanticsQuick(t *testing.T) {
	// Property: Len equals the number of distinct inserted tuples.
	f := func(xs []int64) bool {
		r := NewRelation(schema.MustRelation("R", "A"))
		distinct := make(map[int64]bool)
		for _, x := range xs {
			distinct[x] = true
			if _, err := r.Insert(ints(x)); err != nil {
				return false
			}
		}
		return r.Len() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
