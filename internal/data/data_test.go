package data

import (
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/value"
)

func ints(xs ...int64) Tuple {
	t := make(Tuple, len(xs))
	for i, x := range xs {
		t[i] = value.NewInt(x)
	}
	return t
}

func TestInsertSetSemantics(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A", "B"))
	fresh, err := r.Insert(ints(1, 2))
	if err != nil || !fresh {
		t.Fatalf("first insert: fresh=%v err=%v", fresh, err)
	}
	fresh, err = r.Insert(ints(1, 2))
	if err != nil || fresh {
		t.Fatalf("duplicate insert: fresh=%v err=%v", fresh, err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestInsertArityCheck(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A", "B"))
	if _, err := r.Insert(ints(1)); err == nil {
		t.Error("arity mismatch must error")
	}
}

func TestContains(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A"))
	r.MustInsert(value.NewInt(7))
	if !r.Contains(ints(7)) {
		t.Error("Contains(7) should be true")
	}
	if r.Contains(ints(8)) {
		t.Error("Contains(8) should be false")
	}
}

func TestTupleProjectAndEqual(t *testing.T) {
	tup := Tuple{value.NewInt(1), value.NewString("x"), value.NewInt(3)}
	p := tup.Project([]int{2, 0})
	if !p.Equal(Tuple{value.NewInt(3), value.NewInt(1)}) {
		t.Errorf("Project = %v", p)
	}
	if tup.Equal(p) {
		t.Error("tuples of different arity must not be equal")
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	tup := ints(1, 2)
	c := tup.Clone()
	c[0] = value.NewInt(99)
	if tup[0] != value.NewInt(1) {
		t.Error("Clone must not alias the original")
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A"))
	tup := ints(1)
	if _, err := r.Insert(tup); err != nil {
		t.Fatal(err)
	}
	tup[0] = value.NewInt(2)
	if !r.Contains(ints(1)) {
		t.Error("relation must store a copy, not alias caller memory")
	}
}

func TestInstance(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("R", "A"),
		schema.MustRelation("S", "B", "C"),
	)
	d := NewInstance(s)
	d.MustInsert("R", value.NewInt(1))
	d.MustInsert("S", value.NewInt(2), value.NewInt(3))
	d.MustInsert("S", value.NewInt(2), value.NewInt(3)) // dup, ignored
	if d.Size() != 2 {
		t.Errorf("Size = %d, want 2", d.Size())
	}
	if err := d.Insert("T", value.NewInt(0)); err == nil {
		t.Error("unknown relation must error")
	}
	if d.Relation("R").Len() != 1 {
		t.Error("R should have 1 tuple")
	}
}

func TestActiveDomain(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "A", "B"))
	d := NewInstance(s)
	d.MustInsert("R", value.NewInt(2), value.NewInt(1))
	d.MustInsert("R", value.NewInt(1), value.NewString("z"))
	got := d.ActiveDomain()
	want := []value.Value{value.NewInt(1), value.NewInt(2), value.NewString("z")}
	if len(got) != len(want) {
		t.Fatalf("ActiveDomain = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ActiveDomain[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDeleteRoundTrip(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A", "B"))
	r.MustInsert(value.NewInt(1), value.NewInt(10))
	r.MustInsert(value.NewInt(2), value.NewInt(20))
	r.MustInsert(value.NewInt(3), value.NewInt(30))

	gone, err := r.Delete(ints(2, 20))
	if err != nil || !gone {
		t.Fatalf("delete present tuple: gone=%v err=%v", gone, err)
	}
	if r.Len() != 2 || r.Contains(ints(2, 20)) {
		t.Fatalf("after delete: Len=%d Contains=%v", r.Len(), r.Contains(ints(2, 20)))
	}
	// Order of the survivors is preserved.
	if !r.Tuples()[0].Equal(ints(1, 10)) || !r.Tuples()[1].Equal(ints(3, 30)) {
		t.Errorf("delete must preserve insertion order: %v", r.Tuples())
	}

	// Deleting an absent tuple is a no-op, not an error.
	gone, err = r.Delete(ints(2, 20))
	if err != nil || gone {
		t.Fatalf("delete absent tuple: gone=%v err=%v", gone, err)
	}

	// Reinsert after delete: the tuple is fresh again.
	fresh, err := r.Insert(ints(2, 20))
	if err != nil || !fresh {
		t.Fatalf("reinsert after delete: fresh=%v err=%v", fresh, err)
	}
	if r.Len() != 3 || !r.Contains(ints(2, 20)) {
		t.Fatalf("after reinsert: Len=%d", r.Len())
	}
	// And deleting it again works (seen bookkeeping stayed consistent).
	if gone, _ = r.Delete(ints(2, 20)); !gone {
		t.Error("delete after reinsert must find the tuple")
	}
}

func TestDeleteArityCheck(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A", "B"))
	if _, err := r.Delete(ints(1)); err == nil {
		t.Error("arity mismatch must error")
	}
}

func TestInsertDeleteReinsertQuick(t *testing.T) {
	// Property: replaying a random op sequence, Len and Contains agree
	// with a plain map-backed set at every step.
	f := func(ops []int8) bool {
		r := NewRelation(schema.MustRelation("R", "A"))
		ref := make(map[int64]bool)
		for _, op := range ops {
			x := int64(op) & 7
			if op >= 0 {
				fresh, err := r.Insert(ints(x))
				if err != nil || fresh == ref[x] {
					return false
				}
				ref[x] = true
			} else {
				gone, err := r.Delete(ints(x))
				if err != nil || gone != ref[x] {
					return false
				}
				delete(ref, x)
			}
			if r.Len() != len(ref) || r.Contains(ints(x)) != ref[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A"))
	r.MustInsert(value.NewInt(1))
	r.MustInsert(value.NewInt(2))
	cl := r.Clone()
	if _, err := cl.Delete(ints(1)); err != nil {
		t.Fatal(err)
	}
	cl.MustInsert(value.NewInt(3))
	if r.Len() != 2 || !r.Contains(ints(1)) || r.Contains(ints(3)) {
		t.Errorf("mutating the clone leaked into the original: %v", r.Tuples())
	}
	if cl.Len() != 2 || cl.Contains(ints(1)) || !cl.Contains(ints(3)) {
		t.Errorf("clone state wrong: %v", cl.Tuples())
	}
}

func TestInstanceCloneWith(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("R", "A"),
		schema.MustRelation("S", "B", "C"),
	)
	d := NewInstance(s)
	d.MustInsert("R", value.NewInt(1))
	d.MustInsert("S", value.NewInt(2), value.NewInt(3))

	repl := d.Relation("R").Clone()
	repl.MustInsert(value.NewInt(9))
	cp, err := d.CloneWith(map[string]*Relation{"R": repl})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Relation("S") != d.Relation("S") {
		t.Error("untouched relations must be shared, not copied")
	}
	if cp.Size() != 3 || d.Size() != 2 {
		t.Errorf("sizes: clone=%d original=%d", cp.Size(), d.Size())
	}
	if err := d.Delete("S", value.NewInt(2), value.NewInt(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CloneWith(map[string]*Relation{"T": repl}); err == nil {
		t.Error("replacing an unknown relation must error")
	}
}

func TestSetSemanticsQuick(t *testing.T) {
	// Property: Len equals the number of distinct inserted tuples.
	f := func(xs []int64) bool {
		r := NewRelation(schema.MustRelation("R", "A"))
		distinct := make(map[int64]bool)
		for _, x := range xs {
			distinct[x] = true
			if _, err := r.Insert(ints(x)); err != nil {
				return false
			}
		}
		return r.Len() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeleteBatch(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A", "B"))
	for i := int64(0); i < 6; i++ {
		r.MustInsert(value.NewInt(i), value.NewInt(i*10))
	}
	before := r.Tuples() // captured slices must survive the batch
	removed, err := r.DeleteBatch([]Tuple{
		ints(1, 10),
		ints(3, 30),
		ints(3, 30),  // duplicate: counts once
		ints(99, 99), // absent: ignored
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %d tuples, want 2: %v", len(removed), removed)
	}
	if r.Len() != 4 || r.Contains(ints(1, 10)) || r.Contains(ints(3, 30)) {
		t.Fatalf("post-batch state wrong: %v", r.Tuples())
	}
	// Order preserved among survivors.
	want := []int64{0, 2, 4, 5}
	for i, tup := range r.Tuples() {
		if tup[0] != value.NewInt(want[i]) {
			t.Fatalf("order not preserved: %v", r.Tuples())
		}
	}
	// The pre-batch Tuples slice is untouched.
	if len(before) != 6 || !before[1].Equal(ints(1, 10)) {
		t.Error("DeleteBatch mutated a previously returned Tuples slice")
	}
	// Arity errors reject the whole batch.
	if _, err := r.DeleteBatch([]Tuple{ints(1)}); err == nil {
		t.Error("arity mismatch must error")
	}
}
