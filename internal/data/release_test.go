package data

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

// TestReleaseDedup is the regression test for the old retention bug:
// relations kept their load-time `seen` dedup map alive forever, roughly
// doubling resident memory for a read-only instance. ReleaseDedup drops
// the maps; reads keep working (Contains falls back to a columnar scan),
// and the first mutation rebuilds the map with identical set semantics.
func TestReleaseDedup(t *testing.T) {
	r := NewRelation(schema.MustRelation("R", "A", "B"))
	for i := int64(0); i < 10; i++ {
		r.MustInsert(value.NewInt(i), value.NewString("s"))
	}
	r.ReleaseDedup()
	if r.seen != nil {
		t.Fatal("ReleaseDedup left the seen map in place")
	}

	// Reads work without the map.
	if !r.Contains(Tuple{value.NewInt(3), value.NewString("s")}) {
		t.Fatal("Contains lost a present tuple after release")
	}
	if r.Contains(Tuple{value.NewInt(3), value.NewString("zzz")}) {
		t.Fatal("Contains invented a tuple after release")
	}

	// Mutation rebuilds the map and set semantics hold: a duplicate
	// insert is refused, a fresh one lands.
	if fresh, err := r.Insert(Tuple{value.NewInt(3), value.NewString("s")}); err != nil || fresh {
		t.Fatalf("duplicate insert after release: fresh=%v err=%v", fresh, err)
	}
	if fresh, err := r.Insert(Tuple{value.NewInt(99), value.NewString("s")}); err != nil || !fresh {
		t.Fatalf("fresh insert after release: fresh=%v err=%v", fresh, err)
	}
	if r.seen == nil {
		t.Fatal("mutation did not rebuild the seen map")
	}
	if r.Len() != 11 {
		t.Fatalf("Len = %d, want 11", r.Len())
	}

	// Delete after release also works through the rebuilt map.
	if gone, err := r.Delete(Tuple{value.NewInt(0), value.NewString("s")}); err != nil || !gone {
		t.Fatalf("delete after release: gone=%v err=%v", gone, err)
	}
	if r.Contains(Tuple{value.NewInt(0), value.NewString("s")}) {
		t.Fatal("deleted tuple still present")
	}
}

// TestInstanceReleaseDedup exercises the instance-wide release used after
// Load/recovery.
func TestInstanceReleaseDedup(t *testing.T) {
	sc := schema.MustNew(
		schema.MustRelation("R", "A"),
		schema.MustRelation("S", "B"),
	)
	d := NewInstance(sc)
	d.MustInsert("R", value.NewInt(1))
	d.MustInsert("S", value.NewInt(2))
	d.ReleaseDedup()
	for _, name := range []string{"R", "S"} {
		if d.Relation(name).seen != nil {
			t.Fatalf("relation %s kept its seen map", name)
		}
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d, want 2", d.Size())
	}
}
