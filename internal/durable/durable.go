// Package durable persists the serving engine's state so a restart
// recovers every committed delta instead of re-ingesting TSV from
// scratch — ROADMAP item 3, and the prerequisite for cheap replica
// bootstrap.
//
// A Store owns one directory holding two kinds of on-disk state:
//
//   - a delta WAL (wal.log): every committed delta is appended as a
//     length-prefixed, CRC32C-checksummed binary record carrying the
//     version it commits, and fsynced BEFORE the engine's atomic
//     snapshot swap. A record that made it to disk is committed; a
//     record cut short by a crash is a torn tail, detected by the
//     length/CRC frame and truncated away on Open.
//
//   - snapshot checkpoints (checkpoint-<version>.ckpt): a compact
//     binary serialization of the instance AND the canonical-sorted
//     index buckets at one committed version, so recovery installs the
//     indexes verbatim (index.InstallBucket) instead of re-running
//     Build's scan-and-sort. Checkpoints are written to a temp file,
//     fsynced, then atomically renamed; a crash mid-write leaves only
//     an ignored *.tmp. The two newest checkpoints are retained, and
//     the WAL is compacted to the older of them — so a corrupt newest
//     checkpoint still leaves a recoverable (older checkpoint + WAL)
//     pair.
//
// Recovery (Recover) = latest readable checkpoint + WAL replay: each
// record's delta goes through live.Stage/Commit directly, skipping
// re-validation — the delta was validated against the access schema
// when it was first committed, and replaying it cannot produce a state
// that was never live. The recovered (instance, indexes, version)
// triple is bit-for-bit the state the engine served at that version:
// relation tuple order, bucket order, and multiplicity counts all
// round-trip.
//
// Commit ordering (what survives kill -9): the engine appends and
// fsyncs the WAL record, THEN publishes the in-memory snapshot. A crash
// before the fsync completes recovers the pre-delta version (torn tail
// truncated); after it, the post-delta version. There is no window in
// which a torn, never-committed state can be recovered — the
// crash-injection suite kills the process at every fsync/rename
// boundary and checks exactly that.
//
// Value cells inside both formats reuse the fuzz-hardened TSV cell
// codec (load.EncodeValue/DecodeValue), length-prefixed so arbitrary
// bytes are safe; both container formats have their own fuzz harnesses
// (FuzzWALRecord, FuzzCheckpoint).
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/access"
	"repro/internal/schema"
)

// Hook is the crash-injection failpoint: when non-nil it is called with
// a named point at every durability boundary (see the Point* constants).
// The crash suite installs a hook that kills the process at one point;
// production passes nil. Hooks run with the Store's internal locks held
// and must not call back into the Store.
type Hook func(point string)

// The failpoints, in the order they fire.
const (
	// PointWALWritten: a WAL record is written but not yet fsynced — a
	// crash here may or may not surface the record after recovery
	// (either way it is a clean pre- or post-delta state).
	PointWALWritten = "wal.written"
	// PointWALSynced: the WAL record is durable; the snapshot swap has
	// not happened yet. A crash here MUST recover the post-delta state.
	PointWALSynced = "wal.synced"
	// PointCheckpointWritten: the checkpoint temp file is written, not
	// yet fsynced.
	PointCheckpointWritten = "ckpt.written"
	// PointCheckpointSynced: the temp file is durable, not yet renamed.
	PointCheckpointSynced = "ckpt.synced"
	// PointCheckpointRenamed: the checkpoint is atomically in place; WAL
	// compaction and old-checkpoint removal have not run.
	PointCheckpointRenamed = "ckpt.renamed"
	// PointWALCompacted: the compacted WAL temp file is durable, not yet
	// renamed over wal.log.
	PointWALCompacted = "wal.compacted"
)

// Points lists every failpoint, for test matrices.
var Points = []string{
	PointWALWritten, PointWALSynced,
	PointCheckpointWritten, PointCheckpointSynced, PointCheckpointRenamed,
	PointWALCompacted,
}

// NoLimit recovers through the whole WAL (the single-node case); a
// sharded coordinator passes the minimum cross-shard version instead.
const NoLimit = ^uint64(0)

// ErrDisabled reports a durability operation on an engine that has no
// attached store; wire surfaces map it to a structured refusal.
var ErrDisabled = errors.New("durability not enabled")

// crcTable is the Castagnoli (CRC32C) polynomial table both on-disk
// formats checksum with.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	walName = "wal.log"
	// ckptPrefix/ckptSuffix frame checkpoint filenames:
	// checkpoint-%016x.ckpt, hex so lexical order is version order.
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

// Store owns one durability directory: the open WAL plus its checkpoint
// set. A Store is safe for concurrent use; appends are serialized by
// the engine's write lock anyway, and checkpoint writes may run in the
// background while appends continue.
type Store struct {
	dir  string
	hook Hook

	// mu guards the WAL file handle and the record ledger; checkpoint
	// temp-file writing runs outside it (it reads only the caller's
	// pinned immutable snapshot), taking mu just for the final
	// rename-and-compact step.
	mu sync.Mutex
	// wal is the open append handle. guarded by mu.
	wal *os.File
	// recs is the ledger of committed records: version and end offset of
	// each, in file order — what torn-tail truncation, replay and
	// compaction navigate by. guarded by mu.
	recs []recMeta
	// ckptMu serializes checkpoint writers.
	ckptMu sync.Mutex
}

// recMeta locates one committed WAL record.
type recMeta struct {
	version uint64
	// end is the file offset just past the record's frame.
	end int64
}

// fire triggers the named failpoint.
func (s *Store) fire(point string) {
	if s.hook != nil {
		s.hook(point)
	}
}

// Open opens (creating if needed) the durability directory: stale temp
// files are removed, the WAL is scanned and any torn tail truncated
// away, and the append handle is positioned at the end. hook installs
// crash-injection failpoints; pass nil outside tests.
//
// The store is unpublished until Open returns, so no lock is needed for
// the field writes here.
//
//bevet:locked mu
func Open(dir string, hook Hook) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{dir: dir, hook: hook}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("durable: removing stale temp file: %w", err)
			}
		}
	}
	f, err := os.OpenFile(s.walPath(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s.wal = f
	if err := s.scanWAL(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *Store) walPath() string { return filepath.Join(s.dir, walName) }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the WAL handle. It does not sync: every committed
// record was already fsynced by AppendDelta.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// lastVersionLocked is the newest committed version on disk: the last
// WAL record's, or failing that the newest checkpoint's.
//
//bevet:locked mu
func (s *Store) lastVersionLocked() (uint64, bool) {
	if n := len(s.recs); n > 0 {
		return s.recs[n-1].version, true
	}
	if vs := s.checkpointVersions(); len(vs) > 0 {
		return vs[len(vs)-1], true
	}
	return 0, false
}

// LastVersion peeks the newest committed version without replaying
// anything — the coordinator uses it to compute the consistent
// cross-shard cut before recovering any shard. ok is false when the
// directory holds no durable state at all (a fresh store).
func (s *Store) LastVersion() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastVersionLocked()
}

// checkpointVersions lists the versions of the on-disk checkpoints,
// ascending. Unparseable names are ignored.
func (s *Store) checkpointVersions() []uint64 {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		var v uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), "%016x", &v); err != nil {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *Store) checkpointPath(version uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", ckptPrefix, version, ckptSuffix))
}

// Reset wipes every checkpoint and truncates the WAL — the prelude to a
// Load, which replaces the dataset and restarts the version history at
// a fresh base checkpoint. Versions restart at 0, so stale records must
// not survive to replay onto the new base.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.checkpointVersions() {
		if err := os.Remove(s.checkpointPath(v)); err != nil {
			return fmt.Errorf("durable: reset: %w", err)
		}
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("durable: reset: %w", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("durable: reset: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("durable: reset: %w", err)
	}
	s.recs = nil
	return s.syncDir()
}

// syncDir fsyncs the directory so renames and removals are durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// catalogHash fingerprints the (relational schema, access schema) pair a
// checkpoint was written under, so recovery under a different catalog
// fails loudly instead of mis-decoding positionally.
func catalogHash(s *schema.Schema, a *access.Schema) uint32 {
	var b strings.Builder
	for _, rs := range s.Relations() {
		b.WriteString(rs.Name)
		b.WriteByte('(')
		for i, attr := range rs.Attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(string(attr))
		}
		b.WriteString(")\n")
	}
	b.WriteString(a.String())
	return crc32.Checksum([]byte(b.String()), crcTable)
}
