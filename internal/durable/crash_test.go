// Crash-injection suite: the durability claims in this package are about
// kill -9, so the tests deliver one. A child process (this test binary
// re-exec'd against TestCrashHelper) runs a realistic script — load a
// demo, apply stream deltas, checkpoint midway — with a durable.Hook
// that os.Exit(3)s at the Nth firing of one injection point. The parent
// then recovers a fresh engine from the dir the child died over and
// demands the core guarantee: the recovered state is EXACTLY the state
// after some prefix of the committed deltas — byte-identical query
// output and size versus an in-memory engine replayed to the recovered
// version — and the recovered engine accepts the next delta as if the
// crash never happened. Never a torn or invented state, at any of the
// fsync/rename boundaries, for either demo schema, sharded or not.
package durable_test

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/durable"
	"repro/internal/live"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/workload"
)

// crashDeltas is how many stream deltas the child applies; the midway
// checkpoint lands after the second.
const crashDeltas = 4

// durEng is the durability surface the crash suite drives, satisfied by
// both core.Engine and shard.Engine (same assertion cmd/beserve uses).
type durEng interface {
	core.Queryable
	Durable(ctx context.Context, dir string, hook durable.Hook) (bool, error)
	Checkpoint(ctx context.Context) (uint64, error)
	CloseDurable() error
}

// crashWorkload is one deterministic scenario: a base instance, a query
// to fingerprint state with, and a fresh replayable delta stream.
type crashWorkload struct {
	sc   *schema.Schema
	a    *access.Schema
	inst *data.Instance
	q    *cq.CQ
	next func() *live.Delta
}

// crashLoad rebuilds the scenario from scratch — every call returns the
// identical instance and delta sequence, which is what lets the parent
// replay the child's exact writes into a reference engine.
func crashLoad(t testing.TB, kind string) *crashWorkload {
	t.Helper()
	switch kind {
	case "accidents":
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: 2, AccidentsPerDay: 10, MaxVehicles: 3, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
			InsertAccidents: 3, DeleteAccidents: 1, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return &crashWorkload{sc: acc.Schema, a: acc.Access, inst: acc.Instance, q: workload.Q0(), next: st.Next}
	case "social":
		soc, err := workload.GenerateSocial(workload.SocialConfig{
			People: 60, MaxFriends: 8, MaxLikes: 4, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := workload.NewSocialStream(soc, workload.SocialStreamConfig{
			InsertPeople: 3, DeletePeople: 1, MaxFriends: 8, MaxLikes: 4, People: 60, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return &crashWorkload{sc: soc.Schema, a: soc.Access, inst: soc.Instance,
			q: workload.GraphSearchQuery(1, "NYC", "cycling"), next: st.Next}
	default:
		t.Fatalf("unknown crash workload %q", kind)
		return nil
	}
}

func newCrashEngine(t testing.TB, w *crashWorkload, shards int) durEng {
	t.Helper()
	eng, err := shard.NewOrCore(w.sc, w.a, core.Options{Exec: plan.ExecOptions{Workers: 1}}, shards)
	if err != nil {
		t.Fatal(err)
	}
	de, ok := eng.(durEng)
	if !ok {
		t.Fatalf("%T does not expose the durability surface", eng)
	}
	return de
}

// renderQuery materializes q deterministically: the recovered engine and
// the reference engine must produce these bytes identically.
func renderQuery(t testing.TB, eng core.Queryable, q *cq.CQ) string {
	t.Helper()
	res, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, "\t"))
	b.WriteByte('\n')
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		b.WriteString(strings.Join(cells, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCrashHelper is the child: it only runs when the crash env vars are
// set (the parent re-execs the test binary with -test.run pinned here).
// It loads the scenario, applies crashDeltas deltas with a checkpoint
// after the second, and lets the injected hook kill the process at the
// configured point. Exiting normally means the point fired fewer than
// Nth times — also a valid outcome the parent verifies against.
func TestCrashHelper(t *testing.T) {
	point := os.Getenv("BE_CRASH_POINT")
	if point == "" {
		t.Skip("crash helper: driven by TestCrashRecovery")
	}
	dir := os.Getenv("BE_CRASH_DIR")
	nth, err := strconv.Atoi(os.Getenv("BE_CRASH_NTH"))
	if err != nil {
		t.Fatal(err)
	}
	shards, err := strconv.Atoi(os.Getenv("BE_CRASH_SHARDS"))
	if err != nil {
		t.Fatal(err)
	}
	w := crashLoad(t, os.Getenv("BE_CRASH_KIND"))
	eng := newCrashEngine(t, w, shards)
	// The hook can fire from concurrent per-shard goroutines; count
	// atomically so exactly the Nth matching firing kills the process.
	var n atomic.Int64
	ctx := context.Background()
	if _, err := eng.Durable(ctx, dir, func(p string) {
		if p == point && int(n.Add(1)) == nth {
			os.Exit(3)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(w.inst); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= crashDeltas; i++ {
		if _, err := eng.Apply(ctx, w.next()); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			if _, err := eng.Checkpoint(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// runCrashChild re-execs the test binary as the crash child and returns
// its exit code: 3 means the injected kill struck, 0 means the script
// completed before the point fired Nth times.
func runCrashChild(t *testing.T, point string, nth int, dir, kind string, shards int) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashHelper$")
	cmd.Env = append(os.Environ(),
		"BE_CRASH_POINT="+point,
		"BE_CRASH_NTH="+strconv.Itoa(nth),
		"BE_CRASH_DIR="+dir,
		"BE_CRASH_KIND="+kind,
		"BE_CRASH_SHARDS="+strconv.Itoa(shards),
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("re-exec failed: %v\n%s", err, out)
	}
	code := ee.ExitCode()
	if code != 3 {
		t.Fatalf("child at point %s (nth=%d) failed with code %d (want a clean exit or the injected 3):\n%s",
			point, nth, code, out)
	}
	return code
}

// verifyRecovered recovers a fresh engine from the child's directory and
// checks the crash-consistency contract against an in-memory reference.
func verifyRecovered(t *testing.T, dir, kind string, shards, code int) {
	t.Helper()
	ctx := context.Background()
	w := crashLoad(t, kind)
	eng := newCrashEngine(t, w, shards)
	restored, err := eng.Durable(ctx, dir, nil)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer eng.CloseDurable()
	if !restored {
		// Only a crash that struck during the initial Load checkpoint —
		// before anything was committed — may leave nothing to recover.
		if code != 3 {
			t.Error("completed child left no recoverable state")
		}
		return
	}
	v := eng.Stats().Version
	if v > crashDeltas {
		t.Fatalf("recovered version %d past the %d applied deltas", v, crashDeltas)
	}
	// Reference: a never-crashed in-memory engine replayed to version v.
	rw := crashLoad(t, kind)
	ref := newCrashEngine(t, rw, shards)
	if err := ref.Load(rw.inst); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < v; i++ {
		if _, err := ref.Apply(ctx, rw.next()); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := eng.Stats().Size, ref.Stats().Size; got != want {
		t.Errorf("recovered size %d, reference %d at version %d", got, want, v)
	}
	if got, want := renderQuery(t, eng, w.q), renderQuery(t, ref, rw.q); got != want {
		t.Errorf("recovered query output diverges from the reference at version %d:\n--- recovered ---\n%s--- reference ---\n%s", v, got, want)
	}
	// Life goes on: the recovered engine must accept the NEXT delta of
	// the stream (version continuity across the crash) and stay aligned.
	next := rw.next()
	if _, err := eng.Apply(ctx, next); err != nil {
		t.Fatalf("recovered engine rejected the next delta: %v", err)
	}
	if _, err := ref.Apply(ctx, next); err != nil {
		t.Fatal(err)
	}
	if got, want := renderQuery(t, eng, w.q), renderQuery(t, ref, rw.q); got != want {
		t.Errorf("post-recovery apply diverges at version %d", v+1)
	}
}

// TestCrashRecovery is the matrix driver: every injection point in
// durable.Points, over both demo schemas, unsharded and 4-way sharded.
// WAL points additionally get a later firing (nth=3) so the kill lands
// mid-stream rather than on the first apply.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv("BE_CRASH_POINT") != "" {
		t.Skip("crash child must not recurse")
	}
	if testing.Short() {
		t.Skip("crash matrix re-execs the test binary ~30 times")
	}
	for _, kind := range []string{"accidents", "social"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/k%d", kind, shards), func(t *testing.T) {
				t.Parallel()
				for _, point := range durable.Points {
					nths := []int{1}
					if point == durable.PointWALWritten || point == durable.PointWALSynced {
						nths = []int{1, 3}
					}
					for _, nth := range nths {
						dir := t.TempDir()
						code := runCrashChild(t, point, nth, dir, kind, shards)
						if nth == 1 && code != 3 {
							t.Errorf("point %s never fired in the child", point)
						}
						verifyRecovered(t, dir, kind, shards, code)
					}
				}
			})
		}
	}
}
