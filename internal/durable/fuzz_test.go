package durable

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/access"
	"repro/internal/workload"
)

// The durable decoders sit on the recovery path: whatever a crash, a
// partial write, or bit rot left on disk goes through them before
// anything else runs. Like the TSV codec fuzzers (which caught a real
// escaping bug in PR 4), these harnesses assert two properties on
// arbitrary bytes: the decoders never panic, and a corrupted record is
// never silently accepted — flipping any byte of a valid frame must
// surface as an error, because the CRC covers the whole payload.

func FuzzWALRecord(f *testing.F) {
	sc := workload.AccidentSchema()
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 1, AccidentsPerDay: 4, MaxVehicles: 2, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 2, DeleteAccidents: 1, Seed: 9,
	})
	if err != nil {
		f.Fatal(err)
	}
	frame, err := EncodeWALRecord(7, st.Next())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, b []byte) {
		v, d, n, err := DecodeWALRecord(b, sc)
		if err != nil {
			return
		}
		// An accepted record must re-encode to the exact accepted frame:
		// acceptance of a frame that is not a fixed point would mean two
		// on-disk spellings of one record, and a corruption the CRC let
		// through.
		re, err := EncodeWALRecord(v, d)
		if err != nil {
			t.Fatalf("accepted record failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("decode/encode not a fixed point:\n in: %x\nout: %x", b[:n], re)
		}
		// Any single corrupted byte inside the frame must be rejected.
		for _, i := range []int{0, 4, frameHeader, n - 1} {
			bad := append([]byte(nil), b[:n]...)
			bad[i] ^= 0x20
			if _, _, _, err := DecodeWALRecord(bad, sc); err == nil {
				// Flipping a length byte can still frame a valid shorter
				// record only if the CRC matches, which the checksum makes
				// astronomically unlikely; treat acceptance as a bug.
				t.Fatalf("corrupted byte %d accepted", i)
			}
		}
	})
}

func FuzzCheckpoint(f *testing.F) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 1, AccidentsPerDay: 4, MaxVehicles: 2, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	sc, a := acc.Schema, acc.Access
	ix, viols, err := access.BuildIndexed(a, acc.Instance)
	if err != nil || len(viols) > 0 {
		f.Fatalf("BuildIndexed: %v %v", err, viols)
	}
	img, err := EncodeCheckpoint(sc, &State{Instance: acc.Instance, Indexed: ix, Version: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add([]byte("BECKPT01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		st, err := DecodeCheckpoint(b, sc, a)
		if err != nil {
			return
		}
		// An accepted checkpoint must be internally consistent enough to
		// re-encode, and re-encoding must reproduce the input bit-for-bit
		// (the format has one canonical spelling per state).
		re, err := EncodeCheckpoint(sc, st)
		if err != nil {
			t.Fatalf("accepted checkpoint failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("decode/encode not a fixed point (%d vs %d bytes)", len(re), len(b))
		}
	})
}

// FuzzRecoverDir drives the full Open→Recover path on a directory whose
// WAL is arbitrary bytes: recovery must either succeed on some prefix
// or fail cleanly, never panic, and never invent state on a fresh WAL.
func FuzzRecoverDir(f *testing.F) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 1, AccidentsPerDay: 4, MaxVehicles: 2, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, wal []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		_, _ = s.Recover(context.Background(), acc.Schema, acc.Access, NoLimit)
	})
}
