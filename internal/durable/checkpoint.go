package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/index"
	"repro/internal/schema"
	"repro/internal/value"
)

// Checkpoint file layout, little-endian:
//
//	magic "BECKPT01" | u32 payloadLen | u32 crc32c(payload) | payload
//
// payload:
//
//	u8  ckptFormatVersion (=1)
//	uvarint version
//	u32 catalogHash                      (schema+access fingerprint)
//	relation sections, in schema order, each length-prefixed
//	(uvarint sectionLen | section):
//	    uvarint nameLen | name
//	    uvarint numTuples
//	    per tuple: uvarint keyLen | value.KeyOf(tuple) bytes
//	index sections, one per access constraint, in constraint order,
//	each length-prefixed:
//	    uvarint numBuckets
//	    uvarint numPairs                 (total projections, a presize hint)
//	    per bucket (sorted X-key order, as index.Dump emits):
//	        uvarint keyLen | raw X-key bytes
//	        uvarint numProjections
//	        per projection: uvarint keyLen | value.KeyOf(projection)
//	        bytes, then uvarint multiplicity count
//
// Tuples and projections are stored AS their canonical value.Key
// encodings — the injective kind-tagged byte string every index probe
// already computes. Decode gets both the values (value.DecodeKey) and
// the dedup-map / bucket keys from one blob with no per-cell text
// parsing and no key re-encoding, which is what makes recovery beat a
// cold TSV re-ingest (experiment E15). DecodeKey rejects non-canonical
// varint paddings, so decode-then-encode is still a byte-for-byte fixed
// point (FuzzCheckpoint).
//
// The section length prefixes exist for decode parallelism: every
// section fills disjoint state (one relation, or one constraint's
// index), so decode carves the payload into sections up front and runs
// them concurrently — restore speed then scales with cores, which a
// sequential cold ingest cannot do.
//
// Tuples are serialized in relation row order and bulk-installed in that
// order on decode, and buckets install verbatim via index.InstallBucket
// — so a recovered snapshot's scan order, bucket order, and
// multiplicities are bit-for-bit those of the snapshot that was
// checkpointed. That is what lets the crash suite demand byte-identical
// query output.

const (
	ckptFormatVersion = 1
	// maxCkptPayload bounds a checkpoint payload; a length above it is
	// corruption.
	maxCkptPayload = 1 << 31
)

var ckptMagic = []byte("BECKPT01")

// State is one recovered (or to-be-checkpointed) engine snapshot: the
// instance/index pair plus the committed version it represents.
type State struct {
	Instance *data.Instance
	Indexed  *access.Indexed
	Version  uint64
}

// EncodeCheckpoint renders the full checkpoint file image for st.
func EncodeCheckpoint(sc *schema.Schema, st *State) ([]byte, error) {
	var p bytes.Buffer
	p.WriteByte(ckptFormatVersion)
	p.Write(binary.AppendUvarint(nil, st.Version))
	var h [4]byte
	binary.LittleEndian.PutUint32(h[:], catalogHash(sc, st.Indexed.Access))
	p.Write(h[:])

	var sect bytes.Buffer
	for _, rs := range sc.Relations() {
		r := st.Instance.Relation(rs.Name)
		if r == nil {
			return nil, fmt.Errorf("durable: instance has no relation %s", rs.Name)
		}
		sect.Reset()
		writeBytes(&sect, []byte(rs.Name))
		sect.Write(binary.AppendUvarint(nil, uint64(r.Len())))
		var kb []byte
		for ri := 0; ri < r.Len(); ri++ {
			kb = r.AppendRowKey(kb[:0], ri)
			writeBytes(&sect, kb)
		}
		writeBytes(&p, sect.Bytes())
	}

	for ci := range st.Indexed.Access.Constraints {
		ix := st.Indexed.Index(ci)
		// Count buckets and pairs first: Dump visits in sorted key order
		// both times. The totals go in the file so decode can presize its
		// maps before installing.
		buckets, pairs := 0, 0
		err := ix.Dump(func(_ value.Key, projs []data.Tuple, _ []value.Key, _ []int) error {
			buckets++
			pairs += len(projs)
			return nil
		})
		if err != nil {
			return nil, err
		}
		sect.Reset()
		sect.Write(binary.AppendUvarint(nil, uint64(buckets)))
		sect.Write(binary.AppendUvarint(nil, uint64(pairs)))
		err = ix.Dump(func(k value.Key, projs []data.Tuple, projKeys []value.Key, counts []int) error {
			writeBytes(&sect, []byte(k))
			sect.Write(binary.AppendUvarint(nil, uint64(len(projs))))
			for i := range projs {
				writeBytes(&sect, []byte(projKeys[i]))
				sect.Write(binary.AppendUvarint(nil, uint64(counts[i])))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		writeBytes(&p, sect.Bytes())
	}

	payload := p.Bytes()
	if len(payload) > maxCkptPayload {
		return nil, fmt.Errorf("durable: checkpoint of %d bytes exceeds limit", len(payload))
	}
	out := make([]byte, 0, len(ckptMagic)+frameHeader+len(payload))
	out = append(out, ckptMagic...)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	out = append(out, hdr[:]...)
	return append(out, payload...), nil
}

func writeBytes(p *bytes.Buffer, b []byte) {
	p.Write(binary.AppendUvarint(nil, uint64(len(b))))
	p.Write(b)
}

// DecodeCheckpoint parses a checkpoint file image, rebuilding the
// instance and installing the serialized index buckets verbatim. It
// never panics on arbitrary input; any structural violation — bad
// magic, CRC mismatch, catalog mismatch, non-canonical bucket order,
// trailing garbage — is an error.
func DecodeCheckpoint(buf []byte, sc *schema.Schema, a *access.Schema) (*State, error) {
	if len(buf) < len(ckptMagic)+frameHeader {
		return nil, fmt.Errorf("durable: checkpoint header: %w", io.ErrUnexpectedEOF)
	}
	if !bytes.Equal(buf[:len(ckptMagic)], ckptMagic) {
		return nil, fmt.Errorf("durable: bad checkpoint magic")
	}
	hdr := buf[len(ckptMagic):]
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if uint64(n) > maxCkptPayload {
		return nil, fmt.Errorf("durable: checkpoint claims %d bytes, limit %d", n, maxCkptPayload)
	}
	if uint64(len(hdr)-frameHeader) != uint64(n) {
		return nil, fmt.Errorf("durable: checkpoint payload is %d bytes, header says %d", len(hdr)-frameHeader, n)
	}
	payload := hdr[frameHeader:]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("durable: checkpoint checksum mismatch (%08x != %08x)", got, want)
	}

	// One string conversion up front; every bytesVal below is then a
	// zero-copy substring.
	r := &reader{b: string(payload)}
	fv, err := r.byte()
	if err != nil {
		return nil, err
	}
	if fv != ckptFormatVersion {
		return nil, fmt.Errorf("durable: checkpoint format version %d, want %d", fv, ckptFormatVersion)
	}
	version, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ch, err := r.u32()
	if err != nil {
		return nil, err
	}
	if want := catalogHash(sc, a); ch != want {
		return nil, fmt.Errorf("durable: checkpoint catalog hash %08x, running catalog %08x — was it written under a different schema?", ch, want)
	}

	// Carve the payload into its length-prefixed sections, then decode
	// them concurrently: each section fills disjoint state (one relation
	// of inst, or one slot of idxs), so the only synchronization needed
	// is the WaitGroup. Errors land in per-section slots and the first
	// one (in section order, for determinism) wins.
	rels := sc.Relations()
	sections := make([]string, len(rels)+len(a.Constraints))
	for i := range sections {
		s, err := r.bytesVal()
		if err != nil {
			return nil, err
		}
		sections[i] = s
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("durable: %d trailing bytes after checkpoint payload", len(r.b)-r.off)
	}

	inst := data.NewInstance(sc)
	idxs := make([]*index.Index, len(a.Constraints))
	errs := make([]error, len(sections))
	var wg sync.WaitGroup
	for i, rs := range rels {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = decodeRelationSection(sections[i], rs, inst)
		}()
	}
	for ci, c := range a.Constraints {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ix, err := decodeIndexSection(sections[len(rels)+ci], sc, c)
			idxs[ci] = ix
			errs[len(rels)+ci] = err
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	indexed, err := access.RestoreIndexed(a, inst, idxs)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	return &State{Instance: inst, Indexed: indexed, Version: version}, nil
}

// decodeRelationSection restores one relation of inst from its
// checkpoint section.
func decodeRelationSection(sec string, rs schema.Relation, inst *data.Instance) error {
	r := &reader{b: sec}
	name, err := r.bytesVal()
	if err != nil {
		return err
	}
	if name != rs.Name {
		return fmt.Errorf("durable: checkpoint relation %q, schema expects %s", name, rs.Name)
	}
	nt, err := r.uvarint()
	if err != nil {
		return err
	}
	// Claimed counts are attacker-controlled; a tuple blob takes at
	// least one payload byte (arity one per value), so the remaining
	// payload bounds honest preallocation exactly. The blob substrings
	// ARE the tuples: InstallKeys decodes their cells straight into the
	// columns, so no []Tuple is materialized here at all.
	keys := make([]value.Key, 0, min(int(nt), r.remaining()))
	for i := uint64(0); i < nt; i++ {
		blob, err := r.bytesVal()
		if err != nil {
			return err
		}
		keys = append(keys, value.Key(blob))
	}
	if r.off != len(r.b) {
		return fmt.Errorf("durable: %d trailing bytes in relation section %s", len(r.b)-r.off, rs.Name)
	}
	if err := inst.Relation(rs.Name).InstallKeys(keys); err != nil {
		return fmt.Errorf("durable: checkpoint tuples: %w", err)
	}
	return nil
}

// decodeIndexSection restores one constraint's index from its
// checkpoint section.
func decodeIndexSection(sec string, sc *schema.Schema, c access.Constraint) (*index.Index, error) {
	rs, ok := sc.Relation(c.Rel)
	if !ok {
		return nil, fmt.Errorf("durable: constraint %s over unknown relation", c)
	}
	ix, err := index.New(rs, c.X, c.Y)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	r := &reader{b: sec}
	nb, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	npairs, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Presize the index maps from the file's own totals, clamped by
	// the bytes actually left in the payload.
	ix.Grow(min(int(nb), r.remaining()), min(int(npairs), r.remaining()))
	// Buckets here are tiny (bounded by the constraint's cardinality) and
	// numerous, so everything per-bucket is carved out of section-wide
	// arenas: projection cells are decoded straight into flat storage the
	// index takes ownership of (InstallBucketFlat), and the key/count
	// slices ride section arenas too — a restore costs a handful of
	// allocations per section, not several per bucket.
	arena := make([]value.Value, 0, min(int(npairs)*len(c.Y), r.remaining()))
	pairHint := min(int(npairs), r.remaining())
	keyArena := make([]value.Key, 0, pairHint)
	countArena := make([]int, 0, pairHint)
	for b := uint64(0); b < nb; b++ {
		key, err := r.bytesVal()
		if err != nil {
			return nil, err
		}
		np, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		astart, kstart, cstart := len(arena), len(keyArena), len(countArena)
		for p := uint64(0); p < np; p++ {
			blob, err := r.bytesVal()
			if err != nil {
				return nil, err
			}
			pk := value.Key(blob)
			start := len(arena)
			arena, err = value.AppendDecodeKey(arena, pk)
			if err != nil {
				return nil, fmt.Errorf("durable: checkpoint projection: %w", err)
			}
			if len(arena)-start != len(c.Y) {
				return nil, fmt.Errorf("durable: checkpoint projection of arity %d, constraint %s wants %d", len(arena)-start, c, len(c.Y))
			}
			cnt, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if cnt == 0 || cnt > uint64(maxCkptPayload) {
				return nil, fmt.Errorf("durable: checkpoint multiplicity %d out of range", cnt)
			}
			keyArena = append(keyArena, pk)
			countArena = append(countArena, int(cnt))
		}
		err = ix.InstallBucketFlat(value.Key(key),
			arena[astart:len(arena):len(arena)],
			keyArena[kstart:len(keyArena):len(keyArena)],
			countArena[cstart:len(countArena):len(countArena)])
		if err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("durable: %d trailing bytes in index section for %s", len(r.b)-r.off, c)
	}
	return ix, nil
}

// reader is a bounds-checked cursor over a checkpoint payload; every
// read returns an error instead of panicking when the buffer runs out.
// It walks a string, not a []byte: bytesVal substrings are then free to
// use directly as value.Key map keys and as DecodeKey input without a
// per-item copy — they pin the whole payload, which is fine because the
// decoded instance retains most of it as tuple values anyway.
type reader struct {
	b   string
	off int
}

// remaining returns the unread payload bytes — the honest upper bound
// for any claimed item count, since every item costs at least one byte.
func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("durable: checkpoint payload: %w", io.ErrUnexpectedEOF)
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("durable: checkpoint payload: %w", io.ErrUnexpectedEOF)
	}
	v := binary.LittleEndian.Uint32([]byte(r.b[r.off : r.off+4]))
	r.off += 4
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for n := 0; r.off+n < len(r.b); n++ {
		c := r.b[r.off+n]
		if c < 0x80 {
			if n > 0 && c == 0 {
				break // non-canonical zero padding: re-encode wouldn't be a fixed point
			}
			if n == 9 && c > 1 {
				break // overflows uint64
			}
			r.off += n + 1
			return v | uint64(c)<<shift, nil
		}
		if n == 9 {
			break
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, fmt.Errorf("durable: checkpoint payload: bad varint")
}

func (r *reader) bytesVal() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.off) {
		return "", fmt.Errorf("durable: checkpoint payload: %w", io.ErrUnexpectedEOF)
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// WriteCheckpoint persists st as a checkpoint: temp-file write, fsync,
// atomic rename, directory fsync. Encoding reads only the caller's
// pinned immutable snapshot, so it runs concurrently with appends and
// readers — only the final rename-and-compact step touches the WAL
// lock. Afterwards the two newest checkpoints are retained, older ones
// removed, and the WAL compacted so it only holds records newer than
// the OLDER retained checkpoint — keeping a fallback chain in case the
// newest checkpoint is unreadable on recovery.
func (s *Store) WriteCheckpoint(sc *schema.Schema, st *State) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	img, err := EncodeCheckpoint(sc, st)
	if err != nil {
		return err
	}
	final := s.checkpointPath(st.Version)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		return fmt.Errorf("durable: writing checkpoint: %w", err)
	}
	s.fire(PointCheckpointWritten)
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	s.fire(PointCheckpointSynced)
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: publishing checkpoint: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	s.fire(PointCheckpointRenamed)

	// Retention: keep the two newest checkpoints, then compact the WAL
	// down to records the older retained checkpoint still needs.
	vs := s.checkpointVersions()
	for len(vs) > 2 {
		if err := os.Remove(s.checkpointPath(vs[0])); err != nil {
			return fmt.Errorf("durable: pruning checkpoint: %w", err)
		}
		vs = vs[1:]
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	return s.compactLocked(vs[0])
}

// readCheckpoint loads and decodes the checkpoint at version v.
func (s *Store) readCheckpoint(v uint64, sc *schema.Schema, a *access.Schema) (*State, error) {
	buf, err := os.ReadFile(s.checkpointPath(v))
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	st, err := DecodeCheckpoint(buf, sc, a)
	if err != nil {
		return nil, err
	}
	if st.Version != v {
		return nil, fmt.Errorf("durable: checkpoint file %s holds version %d", s.checkpointPath(v), st.Version)
	}
	return st, nil
}
