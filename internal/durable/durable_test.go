package durable

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/index"
	"repro/internal/live"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

// fixture is a small accidents dataset, its built indexes, and a
// deterministic stream of constraint-preserving deltas.
func fixture(t *testing.T, n int) (*schema.Schema, *access.Schema, *access.Indexed, []*live.Delta) {
	t.Helper()
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 2, AccidentsPerDay: 10, MaxVehicles: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix, viols, err := access.BuildIndexed(acc.Access, acc.Instance)
	if err != nil || len(viols) > 0 {
		t.Fatalf("BuildIndexed: %v %v", err, viols)
	}
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 3, DeleteAccidents: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([]*live.Delta, n)
	for i := range deltas {
		deltas[i] = st.Next()
	}
	return acc.Schema, acc.Access, ix, deltas
}

// applyAll replays deltas in memory, returning each intermediate
// Indexed (result[0] is after deltas[0]).
func applyAll(t *testing.T, ix *access.Indexed, deltas []*live.Delta) []*access.Indexed {
	t.Helper()
	out := make([]*access.Indexed, len(deltas))
	cur := ix
	for i, d := range deltas {
		res, err := live.Apply(context.Background(), d, cur)
		if err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		cur = res.Indexed
		out[i] = cur
	}
	return out
}

// fingerprint renders an indexed instance bit-for-bit: relation tuples
// in scan order, then every index bucket in canonical order with
// multiplicities. Two states with equal fingerprints serve identical
// bytes for every query.
func fingerprint(t *testing.T, sc *schema.Schema, ix *access.Indexed) string {
	t.Helper()
	var b strings.Builder
	for _, rs := range sc.Relations() {
		fmt.Fprintf(&b, "[%s]\n", rs.Name)
		for _, tp := range ix.Instance.Relation(rs.Name).Tuples() {
			fmt.Fprintf(&b, "%s\n", tp.Key())
		}
	}
	for ci, c := range ix.Access.Constraints {
		fmt.Fprintf(&b, "[index %d %s]\n", ci, c)
		err := ix.Index(ci).Dump(func(k value.Key, projs []data.Tuple, _ []value.Key, counts []int) error {
			fmt.Fprintf(&b, "%q:", string(k))
			for i, p := range projs {
				fmt.Fprintf(&b, " %s*%d", p.Key(), counts[i])
			}
			b.WriteString("\n")
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

func TestWALRecordRoundTrip(t *testing.T) {
	sc, _, _, deltas := fixture(t, 1)
	frame, err := EncodeWALRecord(42, deltas[0])
	if err != nil {
		t.Fatal(err)
	}
	v, d, n, err := DecodeWALRecord(frame, sc)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 || n != len(frame) {
		t.Fatalf("got version %d consumed %d, want 42 %d", v, n, len(frame))
	}
	if d.String() != deltas[0].String() || d.Len() != deltas[0].Len() {
		t.Fatalf("delta mismatch: %s vs %s", d, deltas[0])
	}
	// A flipped payload byte must fail the CRC.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x01
	if _, _, _, err := DecodeWALRecord(bad, sc); err == nil {
		t.Fatal("corrupted record decoded without error")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	sc, a, ix, deltas := fixture(t, 2)
	after := applyAll(t, ix, deltas)
	st := &State{Instance: after[1].Instance, Indexed: after[1], Version: 2}
	img, err := EncodeCheckpoint(sc, st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(img, sc, a)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 {
		t.Fatalf("version %d, want 2", got.Version)
	}
	if want, have := fingerprint(t, sc, after[1]), fingerprint(t, sc, got.Indexed); want != have {
		t.Fatalf("checkpoint round trip changed the state:\nwant:\n%s\ngot:\n%s", want, have)
	}
	// A flipped byte anywhere in the payload must fail the CRC.
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0x40
	if _, err := DecodeCheckpoint(bad, sc, a); err == nil {
		t.Fatal("corrupted checkpoint decoded without error")
	}
}

func TestCheckpointCatalogMismatch(t *testing.T) {
	sc, _, ix, _ := fixture(t, 0)
	img, err := EncodeCheckpoint(sc, &State{Instance: ix.Instance, Indexed: ix, Version: 0})
	if err != nil {
		t.Fatal(err)
	}
	soc := workload.SocialConstraints(50, 10)
	if _, err := DecodeCheckpoint(img, workload.SocialSchema(), soc); err == nil {
		t.Fatal("checkpoint decoded under the wrong catalog")
	}
}

// seedStore writes a base checkpoint at version 0 and appends deltas as
// versions 1..n, mirroring the engine's commit protocol.
func seedStore(t *testing.T, dir string, sc *schema.Schema, ix *access.Indexed, deltas []*live.Delta) *Store {
	t.Helper()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint(sc, &State{Instance: ix.Instance, Indexed: ix, Version: 0}); err != nil {
		t.Fatal(err)
	}
	for i, d := range deltas {
		if err := s.AppendDelta(uint64(i+1), d); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestRecoverReplaysWAL(t *testing.T) {
	sc, a, ix, deltas := fixture(t, 4)
	dir := t.TempDir()
	s := seedStore(t, dir, sc, ix, deltas)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	after := applyAll(t, ix, deltas)
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, err := s2.Recover(context.Background(), sc, a, NoLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 4 {
		t.Fatalf("recovered version %d, want 4", rec.Version)
	}
	if want, have := fingerprint(t, sc, after[3]), fingerprint(t, sc, rec.Indexed); want != have {
		t.Fatalf("recovered state differs from in-memory replay:\nwant:\n%s\ngot:\n%s", want, have)
	}
}

func TestRecoverFreshDirIsNil(t *testing.T) {
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec, err := s.Recover(context.Background(), workload.AccidentSchema(), workload.AccidentConstraints(), NoLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatalf("fresh dir recovered state at version %d", rec.Version)
	}
	if _, ok := s.LastVersion(); ok {
		t.Fatal("fresh dir reports a last version")
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	sc, a, ix, deltas := fixture(t, 3)
	dir := t.TempDir()
	s := seedStore(t, dir, sc, ix, deltas)
	walPath := s.walPath()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop the last record in half: a torn tail from a crash mid-append.
	buf, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, buf[:len(buf)-len(buf)/4], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok := s2.LastVersion()
	if !ok || v != 2 {
		t.Fatalf("after torn tail, last version = %d/%v, want 2", v, ok)
	}
	rec, err := s2.Recover(context.Background(), sc, a, NoLimit)
	if err != nil {
		t.Fatal(err)
	}
	after := applyAll(t, ix, deltas[:2])
	if want, have := fingerprint(t, sc, after[1]), fingerprint(t, sc, rec.Indexed); want != have {
		t.Fatal("torn-tail recovery does not match replaying the intact prefix")
	}

	// And the next append continues from the truncated version.
	if err := s2.AppendDelta(3, deltas[2]); err != nil {
		t.Fatalf("append after torn-tail truncation: %v", err)
	}
}

func TestRecoverAtCutTruncatesDivergedSuffix(t *testing.T) {
	sc, a, ix, deltas := fixture(t, 4)
	dir := t.TempDir()
	s := seedStore(t, dir, sc, ix, deltas)

	// A coordinator cut at version 2: versions 3 and 4 were never part of
	// a completed cross-shard commit on some other shard.
	rec, err := s.Recover(context.Background(), sc, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 2 {
		t.Fatalf("recovered version %d, want 2", rec.Version)
	}
	after := applyAll(t, ix, deltas[:2])
	if want, have := fingerprint(t, sc, after[1]), fingerprint(t, sc, rec.Indexed); want != have {
		t.Fatal("cut recovery does not match replay to the cut")
	}
	if v, _ := s.LastVersion(); v != 2 {
		t.Fatalf("diverged suffix not truncated: last version %d", v)
	}
	// Appends resume right after the cut.
	if err := s.AppendDelta(3, deltas[2]); err != nil {
		t.Fatal(err)
	}
	s.Close()
}

func TestCheckpointRetentionAndCompaction(t *testing.T) {
	sc, a, ix, deltas := fixture(t, 5)
	dir := t.TempDir()
	s := seedStore(t, dir, sc, ix, deltas[:3])
	after := applyAll(t, ix, deltas)

	// Checkpoint at 3: retained set {0, 3}, WAL compacted to records > 0.
	if err := s.WriteCheckpoint(sc, &State{Instance: after[2].Instance, Indexed: after[2], Version: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		if err := s.AppendDelta(uint64(i+1), deltas[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint at 5: retained set {3, 5}, WAL compacted to records > 3.
	if err := s.WriteCheckpoint(sc, &State{Instance: after[4].Instance, Indexed: after[4], Version: 5}); err != nil {
		t.Fatal(err)
	}
	if vs := s.checkpointVersions(); len(vs) != 2 || vs[0] != 3 || vs[1] != 5 {
		t.Fatalf("retained checkpoints %v, want [3 5]", vs)
	}
	s.mu.Lock()
	recVersions := make([]uint64, len(s.recs))
	for i, r := range s.recs {
		recVersions[i] = r.version
	}
	s.mu.Unlock()
	if len(recVersions) != 2 || recVersions[0] != 4 || recVersions[1] != 5 {
		t.Fatalf("compacted WAL holds versions %v, want [4 5]", recVersions)
	}
	s.Close()

	// Corrupt the NEWEST checkpoint: recovery must fall back to 3 and
	// replay 4..5 from the compacted WAL.
	img, err := os.ReadFile(s.checkpointPath(5))
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/3] ^= 0x08
	if err := os.WriteFile(s.checkpointPath(5), img, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, err := s2.Recover(context.Background(), sc, a, NoLimit)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != 5 {
		t.Fatalf("fallback recovery reached version %d, want 5", rec.Version)
	}
	if want, have := fingerprint(t, sc, after[4]), fingerprint(t, sc, rec.Indexed); want != have {
		t.Fatal("fallback recovery does not match in-memory replay")
	}
}

func TestResetWipesState(t *testing.T) {
	sc, a, ix, deltas := fixture(t, 2)
	dir := t.TempDir()
	s := seedStore(t, dir, sc, ix, deltas)
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LastVersion(); ok {
		t.Fatal("reset store still reports durable state")
	}
	rec, err := s.Recover(context.Background(), sc, a, NoLimit)
	if err != nil || rec != nil {
		t.Fatalf("reset store recovered %v, %v", rec, err)
	}
	s.Close()
}

func TestAppendRejectsVersionGap(t *testing.T) {
	sc, _, ix, deltas := fixture(t, 2)
	s := seedStore(t, t.TempDir(), sc, ix, deltas[:1])
	defer s.Close()
	if err := s.AppendDelta(5, deltas[1]); err == nil {
		t.Fatal("append with a version gap succeeded")
	}
	if err := s.AppendDelta(2, deltas[1]); err != nil {
		t.Fatalf("sequential append refused: %v", err)
	}
}

func TestDumpWALGoldenShape(t *testing.T) {
	sc, _, ix, deltas := fixture(t, 2)
	dir := t.TempDir()
	s := seedStore(t, dir, sc, ix, deltas)
	s.Close()
	var b strings.Builder
	if err := DumpWAL(&b, dir, sc); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "record 1: version=1") || !strings.Contains(out, "record 2: version=2") {
		t.Fatalf("dump missing record headers:\n%s", out)
	}
	if !strings.HasSuffix(strings.TrimRight(out, "\n"), "bytes") {
		t.Fatalf("dump missing trailer:\n%s", out)
	}
}

func TestInstallBucketRejectsNonCanonical(t *testing.T) {
	sc := workload.AccidentSchema()
	rs, _ := sc.Relation("Casualty")
	ix, err := index.New(rs, []schema.Attribute{"aid"}, []schema.Attribute{"cid", "class", "aid", "vid"})
	if err != nil {
		t.Fatal(err)
	}
	p1 := data.Tuple{value.NewInt(2), value.NewInt(1), value.NewInt(1), value.NewInt(1)}
	p2 := data.Tuple{value.NewInt(1), value.NewInt(1), value.NewInt(1), value.NewInt(1)}
	if p1.Key() <= p2.Key() {
		t.Fatal("test projections not in reverse canonical order")
	}
	err = ix.InstallBucket(value.KeyOf(value.NewInt(1)), []data.Tuple{p1, p2},
		[]value.Key{p1.Key(), p2.Key()}, []int{1, 1})
	if err == nil {
		t.Fatal("out-of-order bucket installed without error")
	}
}
