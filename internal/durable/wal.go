package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/live"
	"repro/internal/schema"
)

// WAL frame layout, little-endian:
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//
// payload:
//
//	u8 walFormatVersion (=1) | uvarint commitVersion | delta TSV bytes
//
// The delta body reuses the delta TSV format verbatim
// (live.WriteDeltaTSV / live.ReadDeltaTSV), so the WAL inherits the
// fuzz-hardened cell codec and -wal-dump can render records without a
// second decoder. Any frame that fails the length or CRC check — a
// torn tail from a crash mid-append — marks the end of the committed
// log; everything before it is intact by construction (appends are
// fsynced in order).

const (
	walFormatVersion = 1
	// maxWALPayload bounds a single record; a length field above it is
	// corruption, not a huge delta.
	maxWALPayload = 1 << 28
	frameHeader   = 8 // payloadLen + crc
)

// EncodeWALRecord renders one framed WAL record for d committing
// version.
func EncodeWALRecord(version uint64, d *live.Delta) ([]byte, error) {
	var payload bytes.Buffer
	payload.WriteByte(walFormatVersion)
	var vbuf [binary.MaxVarintLen64]byte
	payload.Write(vbuf[:binary.PutUvarint(vbuf[:], version)])
	if err := live.WriteDeltaTSV(&payload, d); err != nil {
		return nil, fmt.Errorf("durable: encoding delta: %w", err)
	}
	p := payload.Bytes()
	if len(p) > maxWALPayload {
		return nil, fmt.Errorf("durable: WAL record of %d bytes exceeds limit", len(p))
	}
	frame := make([]byte, frameHeader+len(p))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(p, crcTable))
	copy(frame[frameHeader:], p)
	return frame, nil
}

// DecodeWALRecord decodes the first framed record in buf, returning the
// committed version, the delta, and how many bytes the frame consumed.
// It never panics on arbitrary input: any malformed frame — short
// header, oversized or short payload, CRC mismatch, bad payload — is an
// error. io.ErrUnexpectedEOF specifically means "frame cut short", the
// torn-tail signature.
func DecodeWALRecord(buf []byte, s *schema.Schema) (version uint64, d *live.Delta, consumed int, err error) {
	if len(buf) < frameHeader {
		return 0, nil, 0, fmt.Errorf("durable: WAL frame header: %w", io.ErrUnexpectedEOF)
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxWALPayload {
		return 0, nil, 0, fmt.Errorf("durable: WAL record claims %d bytes, limit %d", n, maxWALPayload)
	}
	if len(buf) < frameHeader+int(n) {
		return 0, nil, 0, fmt.Errorf("durable: WAL payload: %w", io.ErrUnexpectedEOF)
	}
	payload := buf[frameHeader : frameHeader+int(n)]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(buf[4:8]); got != want {
		return 0, nil, 0, fmt.Errorf("durable: WAL record checksum mismatch (%08x != %08x)", got, want)
	}
	if len(payload) == 0 {
		return 0, nil, 0, fmt.Errorf("durable: empty WAL payload")
	}
	if payload[0] != walFormatVersion {
		return 0, nil, 0, fmt.Errorf("durable: WAL format version %d, want %d", payload[0], walFormatVersion)
	}
	v, vn := binary.Uvarint(payload[1:])
	if vn <= 0 {
		return 0, nil, 0, fmt.Errorf("durable: bad WAL commit version varint")
	}
	d, err = live.ReadDeltaTSV(bytes.NewReader(payload[1+vn:]), s)
	if err != nil {
		return 0, nil, 0, fmt.Errorf("durable: WAL delta: %w", err)
	}
	return v, d, frameHeader + int(n), nil
}

// scanWAL walks the log from offset 0, validating each frame and
// rebuilding the record ledger. The first malformed frame is treated as
// a torn tail: the file is truncated at the last intact frame boundary.
// Frame validation here checks length and CRC only — payload decoding
// belongs to replay, which has the schema.
func (s *Store) scanWAL() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, err := readAll(s.wal)
	if err != nil {
		return fmt.Errorf("durable: reading WAL: %w", err)
	}
	var good int64
	s.recs = nil
	for off := 0; off < len(buf); {
		rest := buf[off:]
		if len(rest) < frameHeader {
			break
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n > maxWALPayload || len(rest) < frameHeader+int(n) {
			break
		}
		payload := rest[frameHeader : frameHeader+int(n)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:8]) {
			break
		}
		v, ok := peekVersion(payload)
		if !ok {
			break
		}
		off += frameHeader + int(n)
		good = int64(off)
		s.recs = append(s.recs, recMeta{version: v, end: good})
	}
	if good < int64(len(buf)) {
		if err := s.truncateLocked(good); err != nil {
			return err
		}
	}
	if _, err := s.wal.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// peekVersion reads the commit version out of a CRC-validated payload.
func peekVersion(payload []byte) (uint64, bool) {
	if len(payload) == 0 || payload[0] != walFormatVersion {
		return 0, false
	}
	v, vn := binary.Uvarint(payload[1:])
	return v, vn > 0
}

// readAll reads f from the start without disturbing concurrent state;
// the caller repositions the handle afterwards.
func readAll(f *os.File) ([]byte, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}

// truncateLocked cuts the WAL (and its ledger) back to size off.
//
//bevet:locked mu
func (s *Store) truncateLocked(off int64) error {
	if err := s.wal.Truncate(off); err != nil {
		return fmt.Errorf("durable: truncating torn WAL tail: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	for len(s.recs) > 0 && s.recs[len(s.recs)-1].end > off {
		s.recs = s.recs[:len(s.recs)-1]
	}
	return nil
}

// AppendDelta appends one committed delta and fsyncs before returning —
// the engine's durability point. By the time AppendDelta returns nil,
// the record survives kill -9; the caller then (and only then) swaps
// the in-memory snapshot. version must be exactly one past the newest
// durable version. A write or sync failure rolls the file back to the
// previous record boundary so the log never ends mid-frame.
func (s *Store) AppendDelta(version uint64, d *live.Delta) error {
	frame, err := EncodeWALRecord(version, d)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("durable: store is closed")
	}
	if last, ok := s.lastVersionLocked(); ok && version != last+1 {
		return fmt.Errorf("durable: appending version %d after %d", version, last)
	}
	var start int64
	if n := len(s.recs); n > 0 {
		start = s.recs[n-1].end
	}
	if _, err := s.wal.WriteAt(frame, start); err != nil {
		_ = s.truncateLocked(start)
		return fmt.Errorf("durable: WAL append: %w", err)
	}
	s.fire(PointWALWritten)
	if err := s.wal.Sync(); err != nil {
		_ = s.truncateLocked(start)
		return fmt.Errorf("durable: WAL sync: %w", err)
	}
	s.fire(PointWALSynced)
	s.recs = append(s.recs, recMeta{version: version, end: start + int64(len(frame))})
	return nil
}

// records decodes the committed WAL records with from < version <= to,
// in order. Frames outside the range are skipped by the ledger scanWAL
// built — their boundaries and versions are known and their CRCs were
// already validated on open, so checkpoint-covered records cost nothing
// at replay time. Decoding errors here mean on-disk corruption past the
// CRC (or a schema mismatch) and abort recovery rather than guessing.
func (s *Store) records(sc *schema.Schema, from, to uint64) ([]walRecord, error) {
	s.mu.Lock()
	buf, err := readAll(s.wal)
	var metas []recMeta
	if err == nil {
		metas = append([]recMeta(nil), s.recs...)
		var end int64
		if n := len(metas); n > 0 {
			end = metas[n-1].end
		}
		buf = buf[:end]
		_, err = s.wal.Seek(end, io.SeekStart)
	}
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("durable: reading WAL: %w", err)
	}
	var out []walRecord
	prev := int64(0)
	for _, m := range metas {
		frame := buf[prev:m.end]
		prev = m.end
		if m.version <= from || m.version > to {
			continue
		}
		v, d, _, err := DecodeWALRecord(frame, sc)
		if err != nil {
			return nil, err
		}
		if v != m.version {
			return nil, fmt.Errorf("durable: WAL frame holds version %d, ledger says %d", v, m.version)
		}
		out = append(out, walRecord{version: v, delta: d})
	}
	return out, nil
}

type walRecord struct {
	version uint64
	delta   *live.Delta
}

// TruncateAfter drops every committed record with version > v — the
// diverged suffix a shard may hold when a crash (or an I/O error on a
// later shard) interrupted a cross-shard commit partway through the
// fan-out. The records being dropped were never part of a completed
// global commit, so no recovered state references them; removing them
// lets future appends at v+1 proceed.
func (s *Store) TruncateAfter(v uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cut := int64(0)
	for _, r := range s.recs {
		if r.version > v {
			break
		}
		cut = r.end
	}
	if n := len(s.recs); n > 0 && s.recs[n-1].end == cut {
		return nil
	}
	if err := s.truncateLocked(cut); err != nil {
		return err
	}
	if _, err := s.wal.Seek(cut, io.SeekStart); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// compactLocked rewrites the WAL keeping only records with
// version > keep, via temp file + fsync + atomic rename. Called with
// ckptMu held; takes mu itself around the swap.
func (s *Store) compactLocked(keep uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf, err := readAll(s.wal)
	if err != nil {
		return fmt.Errorf("durable: reading WAL for compaction: %w", err)
	}
	var kept []byte
	var keptRecs []recMeta
	off := int64(0)
	prev := int64(0)
	for _, r := range s.recs {
		frame := buf[prev:r.end]
		prev = r.end
		if r.version > keep {
			kept = append(kept, frame...)
			off += int64(len(frame))
			keptRecs = append(keptRecs, recMeta{version: r.version, end: off})
		}
	}
	tmp := s.walPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(kept); err != nil {
		f.Close()
		return fmt.Errorf("durable: compacting WAL: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: compacting WAL: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: compacting WAL: %w", err)
	}
	s.fire(PointWALCompacted)
	if err := os.Rename(tmp, s.walPath()); err != nil {
		return fmt.Errorf("durable: compacting WAL: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	// The open handle still points at the unlinked old inode; reopen.
	nf, err := os.OpenFile(s.walPath(), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("durable: reopening compacted WAL: %w", err)
	}
	if _, err := nf.Seek(off, io.SeekStart); err != nil {
		nf.Close()
		return fmt.Errorf("durable: %w", err)
	}
	s.wal.Close()
	s.wal = nf
	s.recs = keptRecs
	return nil
}

// DumpWAL renders the WAL under dir human-readably: one header line per
// record (version, op counts, byte size) followed by the delta's TSV
// body, indented. Output is deterministic for a deterministic log, so
// golden tests can pin it. A torn tail is reported, not an error — the
// dump tool exists to inspect exactly such logs.
func DumpWAL(w io.Writer, dir string, sc *schema.Schema) error {
	buf, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	off := 0
	n := 0
	for off < len(buf) {
		v, d, consumed, err := DecodeWALRecord(buf[off:], sc)
		if err != nil {
			fmt.Fprintf(w, "!! torn tail at offset %d (%d trailing bytes): %v\n", off, len(buf)-off, err)
			return nil
		}
		n++
		fmt.Fprintf(w, "record %d: version=%d ops=%d bytes=%d %s\n", n, v, d.Len(), consumed, d)
		var body bytes.Buffer
		if err := live.WriteDeltaTSV(&body, d); err != nil {
			return fmt.Errorf("durable: %w", err)
		}
		for _, line := range bytes.Split(bytes.TrimRight(body.Bytes(), "\n"), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			fmt.Fprintf(w, "  %s\n", line)
		}
		off += consumed
	}
	fmt.Fprintf(w, "%d records, %d bytes\n", n, off)
	return nil
}
