package durable

import (
	"context"
	"fmt"

	"repro/internal/access"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/schema"
)

// Recover rebuilds the newest committed state no newer than maxVersion:
// the newest readable checkpoint at or below maxVersion, plus WAL
// replay of every committed record after it. Single-node engines pass
// NoLimit; the sharded coordinator passes the minimum cross-shard
// version so every shard recovers onto the same cut, and any WAL suffix
// past maxVersion — records from a cross-shard commit that never
// completed on every shard — is truncated so appends can resume at
// maxVersion+1.
//
// Replay drives each delta through live.Replay — in place, skipping
// both Violations and Stage's copy-on-write clones: the deltas were
// validated when first committed, replaying a prefix of committed
// deltas cannot reach a state that was never live, and the freshly
// decoded checkpoint has no other referents to isolate. A nil State
// (and nil error) means the directory holds no durable state at all —
// a fresh store.
//
// If the newest checkpoint is unreadable (truncated by an unlucky
// crash, bit rot), Recover falls back to the next-newest — the WAL is
// compacted only down to the OLDER retained checkpoint precisely so
// this fallback still has every record it needs.
func (s *Store) Recover(ctx context.Context, sc *schema.Schema, a *access.Schema, maxVersion uint64) (*State, error) {
	last, ok := s.LastVersion()
	if !ok {
		return nil, nil
	}
	if last > maxVersion {
		last = maxVersion
	}

	// Newest-first over checkpoints at or below the cut; remember the
	// first decode error in case no checkpoint works out.
	tr := obs.FromContext(ctx)
	csp := tr.Start("recover.checkpoint")
	var base *State
	var firstErr error
	vs := s.checkpointVersions()
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i] > maxVersion {
			continue
		}
		st, err := s.readCheckpoint(vs[i], sc, a)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		base = st
		break
	}
	if base != nil {
		csp.SetRows(int64(base.Instance.Size()))
	}
	csp.End()
	if base == nil {
		if firstErr != nil {
			return nil, fmt.Errorf("durable: no readable checkpoint: %w", firstErr)
		}
		// A WAL with no checkpoint at all: nothing to replay onto. This
		// only happens if a Load's base checkpoint was lost, which the
		// commit protocol never produces.
		return nil, fmt.Errorf("durable: WAL present but no checkpoint to replay onto")
	}

	rsp := tr.Start("recover.replay")
	recs, err := s.records(sc, base.Version, last)
	if err != nil {
		rsp.End()
		return nil, err
	}
	want := base.Version
	cur := base.Indexed
	for _, r := range recs {
		want++
		if r.version != want {
			rsp.End()
			return nil, fmt.Errorf("durable: WAL replay expected version %d, found %d", want, r.version)
		}
		if err := live.Replay(ctx, r.delta, cur); err != nil {
			rsp.End()
			return nil, fmt.Errorf("durable: replaying version %d: %w", r.version, err)
		}
	}
	rsp.SetRows(int64(len(recs)))
	rsp.End()
	if want != last {
		return nil, fmt.Errorf("durable: WAL replay reached version %d, expected %d", want, last)
	}

	// Drop any diverged suffix past the cut so future appends at
	// last+1 line up with the recovered state.
	if err := s.TruncateAfter(last); err != nil {
		return nil, err
	}
	// The recovered instance publishes read-only; release the replay-time
	// dedup maps (a mutating Apply clones first and rebuilds on demand).
	cur.Instance.ReleaseDedup()
	return &State{Instance: cur.Instance, Indexed: cur, Version: last}, nil
}
