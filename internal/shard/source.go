package shard

import (
	"repro/internal/access"
	"repro/internal/data"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/value"
)

// gatherSource is the plan.Source of one cross-shard snapshot: each
// fetch step resolves to a routed (partition-aligned) or scatter-gather
// fetcher over the per-shard indexes. It is immutable and pinned to one
// snapshot, so streamed results drained after later updates still read
// their own version.
type gatherSource struct {
	e     *Engine
	views []*access.Indexed
	// sc, when non-nil, is the traced request's per-shard accounting —
	// the fetchers bump it so the profile can show route-vs-scatter
	// traffic per shard. Nil on every untraced request.
	sc *obs.ShardCounters
}

var _ plan.Source = (*gatherSource)(nil)

func (g *gatherSource) FetcherFor(c access.Constraint) plan.Fetcher {
	idxs := make([]*index.Index, len(g.views))
	for i, v := range g.views {
		idx := v.IndexFor(c)
		if idx == nil {
			return nil
		}
		idxs[i] = idx
	}
	if len(idxs) == 1 {
		// K = 1: the single shard's index IS the global index.
		return idxs[0]
	}
	if g.e.aligned(c) {
		return routedFetcher{idxs: idxs, sc: g.sc}
	}
	return scatterFetcher{idxs: idxs, sc: g.sc}
}

// routedFetcher serves a constraint whose X equals the relation's
// partition key: the whole group D_Y(X = ā) lives on shard shardOf(ā),
// so a fetch is one lookup on one shard — the same cost as unsharded.
type routedFetcher struct {
	idxs []*index.Index
	sc   *obs.ShardCounters
}

func (f routedFetcher) FetchKey(k value.Key) []data.Tuple {
	i := shardOf(k, len(f.idxs))
	b := f.idxs[i].FetchKey(k)
	if f.sc != nil {
		f.sc.Route(i, 1, int64(len(b)))
	}
	return b
}

// scatterFetcher serves a constraint not aligned with the partition
// key: the group for ā may be split across every shard, so the fetch
// queries all K indexes and merges their buckets. Buckets are in
// canonical (key-sorted) order on every shard, so an ordered merge with
// cross-shard dedup reproduces exactly the bucket a single-node index
// would serve — same projections, same order.
type scatterFetcher struct {
	idxs []*index.Index
	sc   *obs.ShardCounters
}

func (f scatterFetcher) FetchKey(k value.Key) []data.Tuple {
	var first []data.Tuple
	var parts [][]data.Tuple
	for i, idx := range f.idxs {
		b := idx.FetchKey(k)
		if f.sc != nil {
			f.sc.Scatter(i, 1, int64(len(b)))
		}
		if len(b) == 0 {
			continue
		}
		if first == nil && parts == nil {
			first = b
			continue
		}
		if parts == nil {
			parts = [][]data.Tuple{first}
		}
		parts = append(parts, b)
	}
	if parts == nil {
		// Zero or one shard held the group: serve its bucket as is.
		return first
	}
	return mergeBuckets(parts)
}

// mergeBuckets K-way-merges canonically sorted buckets, deduplicating
// Y-projections that distinct tuples on different shards share. The
// result is in canonical order — byte-identical to the single-node
// bucket over the union of the shards' tuples.
func mergeBuckets(parts [][]data.Tuple) []data.Tuple {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]data.Tuple, 0, total)
	pos := make([]int, len(parts))
	for {
		best := -1
		var bk value.Key
		for i, p := range parts {
			if pos[i] >= len(p) {
				continue
			}
			if k := p[pos[i]].Key(); best < 0 || k < bk {
				best, bk = i, k
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, parts[best][pos[best]])
		// Advance every part past bk: within a shard projections are
		// distinct, so at most the head of each part equals it.
		for i, p := range parts {
			if pos[i] < len(p) && p[pos[i]].Key() == bk {
				pos[i]++
			}
		}
	}
}
