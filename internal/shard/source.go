package shard

import (
	"repro/internal/access"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/plan"
)

// gatherSource is the plan.Source of one cross-shard snapshot: each
// fetch step resolves to a routed (partition-aligned) or scatter-gather
// fetcher over the per-shard indexes. It is immutable and pinned to one
// snapshot, so streamed results drained after later updates still read
// their own version.
type gatherSource struct {
	e     *Engine
	views []*access.Indexed
	// sc, when non-nil, is the traced request's per-shard accounting —
	// the fetchers bump it so the profile can show route-vs-scatter
	// traffic per shard. Nil on every untraced request.
	sc *obs.ShardCounters
}

var _ plan.Source = (*gatherSource)(nil)

func (g *gatherSource) FetcherFor(c access.Constraint) plan.Fetcher {
	idxs := make([]*index.Index, len(g.views))
	for i, v := range g.views {
		idx := v.IndexFor(c)
		if idx == nil {
			return nil
		}
		idxs[i] = idx
	}
	if len(idxs) == 1 {
		// K = 1: the single shard's index IS the global index.
		return idxs[0]
	}
	if g.e.aligned(c) {
		return routedFetcher{idxs: idxs, sc: g.sc}
	}
	return scatterFetcher{idxs: idxs, sc: g.sc}
}

// routedFetcher serves a constraint whose X equals the relation's
// partition key: the whole group D_Y(X = ā) lives on shard ShardOf(ā),
// so a fetch is one lookup on one shard — the same cost as unsharded.
type routedFetcher struct {
	idxs []*index.Index
	sc   *obs.ShardCounters
}

func (f routedFetcher) FetchBytes(k []byte) index.Bucket {
	i := ShardOf(k, len(f.idxs))
	b := f.idxs[i].FetchBytes(k)
	if f.sc != nil {
		f.sc.Route(i, 1, int64(b.Len()))
	}
	return b
}

// scatterFetcher serves a constraint not aligned with the partition
// key: the group for ā may be split across every shard, so the fetch
// queries all K indexes and merges their buckets. Buckets are in
// canonical (key-sorted) order on every shard, so an ordered merge with
// cross-shard dedup reproduces exactly the bucket a single-node index
// would serve — same projections, same order.
type scatterFetcher struct {
	idxs []*index.Index
	sc   *obs.ShardCounters
}

func (f scatterFetcher) FetchBytes(k []byte) index.Bucket {
	var first index.Bucket
	var parts []index.Bucket
	for i, idx := range f.idxs {
		b := idx.FetchBytes(k)
		if f.sc != nil {
			f.sc.Scatter(i, 1, int64(b.Len()))
		}
		if b.Len() == 0 {
			continue
		}
		if first.Len() == 0 && parts == nil {
			first = b
			continue
		}
		if parts == nil {
			parts = []index.Bucket{first}
		}
		parts = append(parts, b)
	}
	if parts == nil {
		// Zero or one shard held the group: serve its bucket as is.
		return first
	}
	return index.MergeBuckets(parts)
}
