package shard

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// sumSpans walks a span tree accumulating the per-operator accounting,
// keeping the plan-step fetch spans separate from the synthesized
// per-shard counter spans (which report the SAME traffic pre-merge and
// would otherwise double-count).
type spanSums struct {
	fetched, keys, scanned int64
	shardFetched           int64
	shardSpans             int
	planSpans              int
}

func sumSpans(s *obs.Span, acc *spanSums) {
	switch {
	case strings.HasPrefix(s.Name, "shard ") && s.Name != "shard.merge":
		acc.shardFetched += s.Fetched
		acc.shardSpans++
	case s.Name == "plan" || s.Name == "plan.envelope":
		acc.planSpans++
	default:
		acc.fetched += s.Fetched
		acc.keys += s.Keys
		acc.scanned += s.Scanned
	}
	for _, c := range s.Children {
		sumSpans(c, acc)
	}
}

// TestPropertyProfileReconcilesWithStats is the profile's accounting
// contract: over random CQs, on the single-node engine and on a 4-shard
// engine, the span tree's per-operator fetch/scan counts sum to exactly
// the request's Result.Stats, and the root span's wall-clock covers the
// engine-measured elapsed time. A drift here means the profile lies
// about where the request's budget went.
func TestPropertyProfileReconcilesWithStats(t *testing.T) {
	tb := accidentsBed(t)
	qs, _ := tb.queries(t, 40)

	single, err := core.New(tb.schema, tb.access, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Load(tb.build()); err != nil {
		t.Fatal(err)
	}
	sharded, err := New(tb.schema, tb.access, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sharded.Load(tb.build()); err != nil {
		t.Fatal(err)
	}

	engines := []struct {
		name string
		eng  core.Queryable
		k    int
	}{{"shards=1", single, 1}, {"shards=4", sharded, 4}}

	for _, e := range engines {
		for _, q := range qs {
			tr := obs.NewTrace("query")
			ctx := obs.NewContext(context.Background(), tr)
			res, err := e.eng.Query(ctx, q)
			root := tr.Finish()
			if err != nil {
				continue // refusals and planning errors carry no profile contract
			}
			var acc spanSums
			sumSpans(root, &acc)
			if acc.fetched != res.Stats.Fetched {
				t.Errorf("%s/%s: fetch spans sum to %d fetched, Stats.Fetched = %d",
					e.name, q.Label, acc.fetched, res.Stats.Fetched)
			}
			if acc.keys != res.Stats.FetchKeys {
				t.Errorf("%s/%s: fetch spans sum to %d keys, Stats.FetchKeys = %d",
					e.name, q.Label, acc.keys, res.Stats.FetchKeys)
			}
			if acc.scanned != res.Stats.Scanned {
				t.Errorf("%s/%s: scan spans sum to %d scanned, Stats.Scanned = %d",
					e.name, q.Label, acc.scanned, res.Stats.Scanned)
			}
			if res.Mode == core.ViaBoundedPlan && acc.planSpans == 0 {
				t.Errorf("%s/%s: bounded-plan request has no plan span", e.name, q.Label)
			}
			if root.ElapsedNS < res.Stats.Elapsed.Nanoseconds() {
				t.Errorf("%s/%s: root span %dns shorter than Stats.Elapsed %dns",
					e.name, q.Label, root.ElapsedNS, res.Stats.Elapsed.Nanoseconds())
			}
			// The per-shard counter spans must appear exactly when the
			// sharded engine fetched anything, and their pre-merge traffic
			// can only meet or exceed the post-merge Stats.Fetched.
			if e.k > 1 && res.Stats.Fetched > 0 {
				if acc.shardSpans == 0 {
					t.Errorf("%s/%s: fetched %d tuples but no per-shard spans",
						e.name, q.Label, res.Stats.Fetched)
				}
				if acc.shardFetched < res.Stats.Fetched {
					t.Errorf("%s/%s: shard spans carry %d rows < Stats.Fetched %d",
						e.name, q.Label, acc.shardFetched, res.Stats.Fetched)
				}
			}
			if e.k == 1 && acc.shardSpans != 0 {
				t.Errorf("%s/%s: single-node trace has %d shard spans", e.name, q.Label, acc.shardSpans)
			}
		}
	}
}
