package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/live"
	"repro/internal/schema"
	"repro/internal/ucq"
	"repro/internal/workload"
)

// testbed is one workload the equivalence suite runs: a schema, its
// access schema, a fresh-instance factory and a random-CQ const pool.
type testbed struct {
	name   string
	schema *schema.Schema
	access *access.Schema
	build  func() *data.Instance
	consts map[schema.Attribute][]cq.Term
}

func accidentsBed(t *testing.T) testbed {
	t.Helper()
	build := func() *data.Instance {
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: 3, AccidentsPerDay: 15, MaxVehicles: 4, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		return acc.Instance
	}
	return testbed{
		name:   "accidents",
		schema: workload.AccidentSchema(),
		access: workload.AccidentConstraints(),
		build:  build,
		consts: map[schema.Attribute][]cq.Term{
			"date":     {cq.Const(sv(workload.DateName(0))), cq.Const(sv(workload.DateName(1)))},
			"district": {cq.Const(sv(workload.Districts[0])), cq.Const(sv(workload.Districts[2]))},
			"aid":      {cq.Const(iv(3))},
			"vid":      {cq.Const(iv(5))},
		},
	}
}

func socialBed(t *testing.T) testbed {
	t.Helper()
	build := func() *data.Instance {
		soc, err := workload.GenerateSocial(workload.SocialConfig{
			People: 300, MaxFriends: 12, MaxLikes: 5, Seed: 22,
		})
		if err != nil {
			t.Fatal(err)
		}
		return soc.Instance
	}
	return testbed{
		name:   "social",
		schema: workload.SocialSchema(),
		access: workload.SocialConstraints(12, 5),
		build:  build,
		consts: map[schema.Attribute][]cq.Term{
			"pid":   {cq.Const(iv(1)), cq.Const(iv(7))},
			"city":  {cq.Const(sv(workload.Cities[0]))},
			"topic": {cq.Const(sv(workload.Topics[0]))},
		},
	}
}

// randomBed is a two-relation schema with a general-form (sqrt)
// constraint, so the suite also exercises size-dependent bounds.
func randomBed(t *testing.T) testbed {
	t.Helper()
	s := schema.MustNew(
		schema.MustRelation("R", "a", "b"),
		schema.MustRelation("S", "b", "c"),
	)
	a := access.NewSchema(
		access.Constraint{Rel: "R", X: []schema.Attribute{"a"}, Y: []schema.Attribute{"b"}, Card: access.SqrtCard()},
		access.NewConstraint("S", []schema.Attribute{"b"}, []schema.Attribute{"c"}, 3),
	)
	build := func() *data.Instance {
		d := data.NewInstance(s)
		for i := 0; i < 200; i++ {
			d.MustInsert("R", iv(int64(i%40)), iv(int64(i)))
			d.MustInsert("S", iv(int64(i)), iv(int64(i%7)))
		}
		return d
	}
	return testbed{
		name:   "random",
		schema: s,
		access: a,
		build:  build,
		consts: map[schema.Attribute][]cq.Term{
			"a": {cq.Const(iv(1)), cq.Const(iv(2))},
			"b": {cq.Const(iv(10))},
		},
	}
}

// engines builds a loaded single-node engine and a loaded K-shard engine
// over identical instances.
func (tb testbed) engines(t *testing.T, k int) (*core.Engine, *Engine) {
	t.Helper()
	single, err := core.New(tb.schema, tb.access, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Load(tb.build()); err != nil {
		t.Fatal(err)
	}
	sharded, err := New(tb.schema, tb.access, Options{Shards: k})
	if err != nil {
		t.Fatal(err)
	}
	if err := sharded.Load(tb.build()); err != nil {
		t.Fatal(err)
	}
	return single, sharded
}

// queries generates the random CQ workload plus UCQs paired from
// same-arity CQs.
func (tb testbed) queries(t *testing.T, n int) ([]*cq.CQ, []*ucq.UCQ) {
	t.Helper()
	qs, err := workload.RandomCQs(tb.schema, workload.RandomCQConfig{
		Queries: n, MaxAtoms: 3, StartProb: 0.8, FreeVars: 2, Seed: 17,
	}, tb.consts)
	if err != nil {
		t.Fatal(err)
	}
	byArity := map[int][]*cq.CQ{}
	for _, q := range qs {
		byArity[len(q.Free)] = append(byArity[len(q.Free)], q)
	}
	var unions []*ucq.UCQ
	for arity, group := range byArity {
		if arity == 0 {
			continue
		}
		for i := 0; i+1 < len(group); i += 2 {
			u, err := ucq.New(fmt.Sprintf("u%d_%d", arity, i), group[i], group[i+1])
			if err != nil {
				t.Fatal(err)
			}
			unions = append(unions, u)
		}
	}
	return qs, unions
}

// checkEquivalent queries both engines and demands identical outcomes:
// same error presence, same serving mode, same rows in the same order.
func checkEquivalent(t *testing.T, label string, single *core.Engine, sharded *Engine, q core.Query, opts ...core.QueryOption) {
	t.Helper()
	want, errW := single.Query(context.Background(), q, opts...)
	got, errG := sharded.Query(context.Background(), q, opts...)
	if (errW == nil) != (errG == nil) {
		t.Fatalf("%s: error divergence: single=%v sharded=%v", label, errW, errG)
	}
	if errW != nil {
		return
	}
	if want.Mode != got.Mode {
		t.Fatalf("%s: mode %v vs %v", label, got.Mode, want.Mode)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if want.Rows[i].Key() != got.Rows[i].Key() {
			t.Fatalf("%s: row %d: %v vs %v", label, i, got.Rows[i], want.Rows[i])
		}
	}
}

// TestPropertyShardedEqualsSingleNode is the acceptance property: for
// K ∈ {1, 2, 4}, a sharded engine answers every random CQ and UCQ —
// bounded or scan-fallback — with exactly the rows, order and mode of a
// single-node engine on the same data.
func TestPropertyShardedEqualsSingleNode(t *testing.T) {
	for _, tb := range []testbed{accidentsBed(t), socialBed(t), randomBed(t)} {
		qs, unions := tb.queries(t, 40)
		for _, k := range []int{1, 2, 4} {
			single, sharded := tb.engines(t, k)
			for i, q := range qs {
				checkEquivalent(t, fmt.Sprintf("%s K=%d cq%d", tb.name, k, i), single, sharded, q)
			}
			for i, u := range unions {
				checkEquivalent(t, fmt.Sprintf("%s K=%d ucq%d", tb.name, k, i), single, sharded, u)
			}
		}
	}
}

// mutateDelta occasionally corrupts a constraint-preserving accidents
// batch so the verdict comparison sees real rejections too.
func corruptAccidents(d *live.Delta, step int) *live.Delta {
	if step%4 != 3 {
		return d
	}
	// Re-insert an existing aid under a different district/date: breaks
	// ψ3 (aid is a key), and the two tuples usually land on different
	// shards (Accident partitions by date).
	d.MustInsert("Accident", iv(3), sv("Nowhere"), sv(fmt.Sprintf("%d/1/1970", step%28+1)))
	return d
}

// TestPropertyApplyVerdictsMatch drives both engines through the same
// delta stream — with periodic corrupted batches — and demands
// identical accept/reject verdicts, identical violation lists, and
// (spot-checked) identical query results after every batch.
func TestPropertyApplyVerdictsMatch(t *testing.T) {
	tb := accidentsBed(t)
	for _, k := range []int{2, 4} {
		single, sharded := tb.engines(t, k)
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: 3, AccidentsPerDay: 15, MaxVehicles: 4, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
			InsertAccidents: 4, DeleteAccidents: 2, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		q := workload.Q0()
		for step := 0; step < 16; step++ {
			delta := corruptAccidents(st.Next(), step)
			_, errS := single.Apply(context.Background(), delta)
			_, errH := sharded.Apply(context.Background(), delta)
			if (errS == nil) != (errH == nil) {
				t.Fatalf("K=%d step %d: verdicts diverge: single=%v sharded=%v", k, step, errS, errH)
			}
			if errS != nil {
				var vs, vh *live.ViolationError
				if !errors.As(errS, &vs) || !errors.As(errH, &vh) {
					t.Fatalf("K=%d step %d: non-violation apply errors: %v / %v", k, step, errS, errH)
				}
				if fmt.Sprint(vs.Violations) != fmt.Sprint(vh.Violations) {
					t.Fatalf("K=%d step %d: violations differ:\n  single:  %v\n  sharded: %v",
						k, step, vs.Violations, vh.Violations)
				}
			}
			if single.Stats().Size != sharded.Stats().Size {
				t.Fatalf("K=%d step %d: sizes diverge %d vs %d", k, step, single.Stats().Size, sharded.Stats().Size)
			}
			checkEquivalent(t, fmt.Sprintf("K=%d step %d Q0", k, step), single, sharded, q)
		}
	}
}

// TestPropertyEquivalenceUnderConcurrentWrites runs readers against the
// sharded engine WHILE a writer applies a deterministic delta stream
// (race coverage: coordinator snapshot swaps vs scatter-gather reads),
// then replays the same stream on a single-node engine and demands the
// final states answer the whole workload identically.
func TestPropertyEquivalenceUnderConcurrentWrites(t *testing.T) {
	tb := socialBed(t)
	single, sharded := tb.engines(t, 4)
	qs, unions := tb.queries(t, 20)

	soc, err := workload.GenerateSocial(workload.SocialConfig{
		People: 300, MaxFriends: 12, MaxLikes: 5, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.NewSocialStream(soc, workload.SocialStreamConfig{
		InsertPeople: 5, DeletePeople: 2, MaxFriends: 12, MaxLikes: 5, People: 300, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	const batches = 20
	deltas := make([]*live.Delta, batches)
	for i := range deltas {
		deltas[i] = st.Next()
	}

	var wg sync.WaitGroup
	var writerDone atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for _, d := range deltas {
			if _, err := sharded.Apply(context.Background(), d); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !writerDone.Load() {
				q := qs[r%len(qs)]
				if _, err := sharded.Query(context.Background(), q); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				// Streams pin their snapshot even when drained after
				// later applies.
				res, err := sharded.Query(context.Background(), q, core.WithStream())
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				for range res.Seq() {
				}
				if err := res.Err(); err != nil {
					t.Errorf("reader stream: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	for _, d := range deltas {
		if _, err := single.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	for i, q := range qs {
		checkEquivalent(t, fmt.Sprintf("post-stream cq%d", i), single, sharded, q)
	}
	for i, u := range unions {
		checkEquivalent(t, fmt.Sprintf("post-stream ucq%d", i), single, sharded, u)
	}
}
