package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/live"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/workload"
)

func iv(i int64) value.Value  { return value.NewInt(i) }
func sv(s string) value.Value { return value.NewString(s) }

// newAccidents builds matching single-node and sharded engines over the
// same generated instance.
func newAccidents(t *testing.T, k, days int) (*core.Engine, *Engine) {
	t.Helper()
	gen := func() *workload.Accidents {
		acc, err := workload.GenerateAccidents(workload.AccidentConfig{
			Days: days, AccidentsPerDay: 20, MaxVehicles: 4, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	acc := gen()
	single, err := core.New(acc.Schema, acc.Access, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Load(acc.Instance); err != nil {
		t.Fatal(err)
	}
	acc2 := gen()
	sharded, err := New(acc2.Schema, acc2.Access, Options{Shards: k})
	if err != nil {
		t.Fatal(err)
	}
	if err := sharded.Load(acc2.Instance); err != nil {
		t.Fatal(err)
	}
	return single, sharded
}

func sameResults(t *testing.T, want, got *core.Result) {
	t.Helper()
	if want.Mode != got.Mode {
		t.Fatalf("mode %v vs %v", got.Mode, want.Mode)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("row counts %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if want.Rows[i].Key() != got.Rows[i].Key() {
			t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], want.Rows[i])
		}
	}
}

// TestDefaultPartitionKeys pins the derivation rule: X of the first
// constraint with nonempty X, all attributes otherwise.
func TestDefaultPartitionKeys(t *testing.T) {
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{Days: 1, AccidentsPerDay: 2, MaxVehicles: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(acc.Schema, acc.Access, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for rel, want := range map[string]string{
		"Accident": "date", // ψ1, not ψ3
		"Casualty": "aid",  // ψ2
		"Vehicle":  "vid",  // ψ4
	} {
		pk := e.PartitionKey(rel)
		if len(pk) != 1 || string(pk[0]) != want {
			t.Errorf("partition key of %s = %v, want [%s]", rel, pk, want)
		}
	}
	// A relation with no constraint partitions by all attributes.
	s := schema.MustNew(schema.MustRelation("Lone", "a", "b"))
	e2, err := New(s, access.NewSchema(), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pk := e2.PartitionKey("Lone"); len(pk) != 2 {
		t.Errorf("unconstrained relation partition key = %v, want all attrs", pk)
	}
}

// TestQueryMatchesSingleNode runs the flagship bounded query and a scan
// fallback on 1/2/4 shards and demands byte-identical results.
func TestQueryMatchesSingleNode(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		single, sharded := newAccidents(t, k, 4)
		for _, opts := range [][]core.QueryOption{
			nil,
			{core.WithWorkers(4)},
		} {
			want, err := single.Query(context.Background(), workload.Q0(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Query(context.Background(), workload.Q0(), opts...)
			if err != nil {
				t.Fatalf("K=%d: %v", k, err)
			}
			sameResults(t, want, got)
			if got.Mode != core.ViaBoundedPlan {
				t.Fatalf("Q0 must serve via bounded plan, got %v", got.Mode)
			}
		}
	}
}

// TestStreamingMatchesMaterialized drains a streamed sharded result and
// compares it to the materialized rows.
func TestStreamingMatchesMaterialized(t *testing.T) {
	_, sharded := newAccidents(t, 4, 3)
	mat, err := sharded.Query(context.Background(), workload.Q0())
	if err != nil {
		t.Fatal(err)
	}
	st, err := sharded.Query(context.Background(), workload.Q0(), core.WithStream())
	if err != nil {
		t.Fatal(err)
	}
	var rows []data.Tuple
	for row := range st.Seq() {
		rows = append(rows, row)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(mat.Rows) {
		t.Fatalf("streamed %d rows, materialized %d", len(rows), len(mat.Rows))
	}
	for i := range rows {
		if rows[i].Key() != mat.Rows[i].Key() {
			t.Fatalf("row %d differs", i)
		}
	}
}

// TestBudgetIsNotMultipliedByShards pins the admission-control rule: the
// bound compared against -budget is the one plan's bound, identical to
// the single-node bound — NOT K times it. A budget that admits the
// query unsharded must admit it on 8 shards.
func TestBudgetIsNotMultipliedByShards(t *testing.T) {
	single, sharded := newAccidents(t, 8, 3)
	_, b, err := single.Plan(workload.Q0())
	if err != nil {
		t.Fatal(err)
	}
	_, bs, err := sharded.Plan(workload.Q0())
	if err != nil {
		t.Fatal(err)
	}
	if bs.Fetched != b.Fetched {
		t.Fatalf("sharded bound %d != single-node bound %d", bs.Fetched, b.Fetched)
	}
	if _, err := sharded.Query(context.Background(), workload.Q0(),
		core.WithAccessBudget(b.Fetched), core.WithFallback(core.FallbackRefuse)); err != nil {
		t.Fatalf("budget equal to the single-node bound must admit on 8 shards: %v", err)
	}
	var be *core.BudgetError
	_, err = sharded.Query(context.Background(), workload.Q0(), core.WithAccessBudget(b.Fetched-1))
	if !errors.As(err, &be) {
		t.Fatalf("budget below the bound must refuse, got %v", err)
	}
}

// TestApplyCrossShardViolation is the case per-shard validation cannot
// catch: two inserts with the same aid but different dates land on
// DIFFERENT shards (Accident partitions by date), each shard's local
// ψ3 group has size 1, yet the global group has size 2 > 1. The
// coordinator must reject exactly as a single-node engine does, and no
// shard may publish.
func TestApplyCrossShardViolation(t *testing.T) {
	single, sharded := newAccidents(t, 4, 2)
	bad := live.NewDelta(workload.AccidentSchema())
	bad.MustInsert("Accident", iv(900001), sv("Soho"), sv("7/7/1997"))
	bad.MustInsert("Accident", iv(900001), sv("Leith"), sv("8/8/1998"))

	_, errSingle := single.Apply(context.Background(), bad)
	var vs *live.ViolationError
	if !errors.As(errSingle, &vs) {
		t.Fatalf("single-node engine must reject: %v", errSingle)
	}

	before := sharded.Stats().Size
	_, errShard := sharded.Apply(context.Background(), bad)
	var vh *live.ViolationError
	if !errors.As(errShard, &vh) {
		t.Fatalf("sharded engine must reject the cross-shard ψ3 violation: %v", errShard)
	}
	if len(vh.Violations) != len(vs.Violations) {
		t.Fatalf("violation lists differ: %v vs %v", vh.Violations, vs.Violations)
	}
	for i := range vs.Violations {
		if vh.Violations[i].Group != vs.Violations[i].Group || vh.Violations[i].Bound != vs.Violations[i].Bound {
			t.Fatalf("violation %d differs: %+v vs %+v", i, vh.Violations[i], vs.Violations[i])
		}
	}
	// No visible effect anywhere: size unchanged, the tuples absent.
	if got := sharded.Stats().Size; got != before {
		t.Fatalf("rejected delta changed |D|: %d -> %d", before, got)
	}
	if sharded.Instance().Relation("Accident").Contains(data.Tuple{iv(900001), sv("Soho"), sv("7/7/1997")}) {
		t.Fatal("rejected delta published a tuple")
	}
}

// TestApplyValidMatchesSingleNode applies the same constraint-preserving
// stream to both engines and compares sizes, counts and query results
// after every batch.
func TestApplyValidMatchesSingleNode(t *testing.T) {
	single, sharded := newAccidents(t, 4, 2)
	acc, err := workload.GenerateAccidents(workload.AccidentConfig{
		Days: 2, AccidentsPerDay: 20, MaxVehicles: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.NewAccidentStream(acc, workload.AccidentStreamConfig{
		InsertAccidents: 4, DeleteAccidents: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 10; batch++ {
		delta := st.Next()
		rs, err := single.Apply(context.Background(), delta)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := sharded.Apply(context.Background(), delta)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if rs.Inserted != rh.Inserted || rs.Deleted != rh.Deleted {
			t.Fatalf("batch %d: counts (%d,%d) vs (%d,%d)", batch, rh.Inserted, rh.Deleted, rs.Inserted, rs.Deleted)
		}
		if single.Stats().Size != sharded.Stats().Size {
			t.Fatalf("batch %d: sizes %d vs %d", batch, sharded.Stats().Size, single.Stats().Size)
		}
		want, err := single.Query(context.Background(), workload.Q0())
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Query(context.Background(), workload.Q0())
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, want, got)
	}
}

// TestGeneralFormBoundsUseGlobalSize builds a dataset that is valid at
// the GLOBAL |D| but would be rejected by any shard validating at its
// local size: one sqrt-bounded group of 9 on |D| = 100 (bound 10),
// where the group's shard holds far fewer than 81 tuples. Load and an
// Apply growing the group to the bound must succeed; growing past it
// must fail with the same verdict as single-node.
func TestGeneralFormBoundsUseGlobalSize(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "a", "b"))
	a := access.NewSchema(access.Constraint{
		Rel: "R", X: []schema.Attribute{"a"}, Y: []schema.Attribute{"b"},
		Card: access.SqrtCard(),
	})
	build := func() *data.Instance {
		d := data.NewInstance(s)
		for i := 0; i < 9; i++ {
			d.MustInsert("R", iv(0), iv(int64(i))) // the dense group: 9 ≤ ceil(sqrt(100))
		}
		for i := 1; i <= 91; i++ {
			d.MustInsert("R", iv(int64(i)), iv(0)) // 91 singleton groups
		}
		return d
	}
	single, err := core.New(s, a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Load(build()); err != nil {
		t.Fatal(err)
	}
	sharded, err := New(s, a, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sharded.Load(build()); err != nil {
		t.Fatalf("global |D|=100 admits the group of 9, but sharded Load rejected: %v", err)
	}

	// Grow the group to exactly the bound: fine on both engines.
	grow := func(b int64) *live.Delta {
		d := live.NewDelta(s)
		d.MustInsert("R", iv(0), iv(100+b))
		return d
	}
	if _, err := single.Apply(context.Background(), grow(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.Apply(context.Background(), grow(1)); err != nil {
		t.Fatalf("growing to the global bound must be admitted: %v", err)
	}
	// One past the bound (|D|=102, bound ceil(sqrt(102)) = 11... grow
	// two more so the group outruns the slowly rising bound).
	var errS, errH error
	for i := int64(2); i <= 4; i++ {
		_, errS = single.Apply(context.Background(), grow(i))
		_, errH = sharded.Apply(context.Background(), grow(i))
		if (errS == nil) != (errH == nil) {
			t.Fatalf("verdicts diverge at step %d: single=%v sharded=%v", i, errS, errH)
		}
	}
	var ve *live.ViolationError
	if !errors.As(errH, &ve) {
		t.Fatalf("the group must eventually outrun sqrt(|D|) on both engines, got %v", errH)
	}
}

// TestShrinkRecheckAcrossShards deletes enough singleton tuples that the
// sqrt bound drops below an untouched group's size: the sharded engine
// must re-check untouched shards and reject exactly like single-node.
func TestShrinkRecheckAcrossShards(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R", "a", "b"))
	a := access.NewSchema(access.Constraint{
		Rel: "R", X: []schema.Attribute{"a"}, Y: []schema.Attribute{"b"},
		Card: access.SqrtCard(),
	})
	build := func() *data.Instance {
		d := data.NewInstance(s)
		for i := 0; i < 9; i++ {
			d.MustInsert("R", iv(0), iv(int64(i)))
		}
		for i := 1; i <= 91; i++ {
			d.MustInsert("R", iv(int64(i)), iv(0))
		}
		return d
	}
	single, err := core.New(s, a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Load(build()); err != nil {
		t.Fatal(err)
	}
	sharded, err := New(s, a, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sharded.Load(build()); err != nil {
		t.Fatal(err)
	}
	// Delete 60 singletons: |D| 100 -> 40, bound 10 -> 7 < 9. The dense
	// group's tuples are untouched by the delta.
	shrink := live.NewDelta(s)
	for i := 1; i <= 60; i++ {
		shrink.MustDelete("R", iv(int64(i)), iv(0))
	}
	_, errS := single.Apply(context.Background(), shrink)
	_, errH := sharded.Apply(context.Background(), shrink)
	var vs, vh *live.ViolationError
	if !errors.As(errS, &vs) {
		t.Fatalf("single-node must reject the shrink: %v", errS)
	}
	if !errors.As(errH, &vh) {
		t.Fatalf("sharded must reject the shrink (untouched-shard recheck): %v", errH)
	}
	if fmt.Sprint(vh.Violations) != fmt.Sprint(vs.Violations) {
		t.Fatalf("violations differ:\n  sharded: %v\n  single:  %v", vh.Violations, vs.Violations)
	}
}

// TestQueryablePolymorphism drives both engines through the shared
// interface, the way cmd/bequery does.
func TestQueryablePolymorphism(t *testing.T) {
	single, sharded := newAccidents(t, 2, 2)
	for _, eng := range []core.Queryable{single, sharded} {
		if eng.Instance() == nil {
			t.Fatal("Instance() nil after Load")
		}
		if _, err := eng.Explain(workload.Q0(), nil); err != nil {
			t.Fatal(err)
		}
		res, err := eng.IsCovered(workload.Q0())
		if err != nil || !res.Covered {
			t.Fatalf("Q0 covered check: %v %v", res, err)
		}
		if _, err := eng.Baseline(workload.Q0(), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Query(context.Background(), workload.Q0()); err != nil {
			t.Fatal(err)
		}
	}
	if got := sharded.Stats().Shards; got != 2 {
		t.Fatalf("Stats().Shards = %d, want 2", got)
	}
	if sharded.Stats().Queries == 0 {
		t.Fatal("query counter did not advance")
	}
}

// TestScanMergeObservesContext pins the shard-side cancellation
// contract: after an Apply the fresh snapshot has no cached union, so a
// scan-fallback query must materialize one tuple by tuple — and a
// canceled request must not pay for a merge nobody will read.
func TestScanMergeObservesContext(t *testing.T) {
	_, sharded := newAccidents(t, 4, 2)
	delta := live.NewDelta(sharded.Schema)
	delta.MustInsert("Accident", iv(999999), sv("Nowhere"), sv("9/9/1999"))
	if _, err := sharded.Apply(context.Background(), delta); err != nil {
		t.Fatal(err)
	}
	sn := sharded.snap.Load()
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sn.instance(canceled, sharded.Schema); !errors.Is(err, context.Canceled) {
		t.Fatalf("merge under canceled ctx = %v, want context.Canceled", err)
	}
	// The refused merge must not have cached a partial union: a live
	// request afterwards still gets the full scan fallback.
	unanchored := &cq.CQ{Label: "allAccidents", Free: []string{"d"},
		Atoms: []cq.Atom{cq.NewAtom("Accident", cq.Var("a"), cq.Var("d"), cq.Var("t"))}}
	if _, err := sharded.Query(canceled, unanchored); !errors.Is(err, context.Canceled) {
		t.Fatalf("scan query under canceled ctx = %v, want context.Canceled", err)
	}
	res, err := sharded.Query(context.Background(), unanchored)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != core.ViaFullScan {
		t.Fatalf("unanchored query must fall back to scan, got %v", res.Mode)
	}
	if len(res.Rows) == 0 {
		t.Fatal("scan after merge returned no rows")
	}
}
