// Package shard implements a hash-partitioned serving engine: the same
// bounded-evaluation surface as internal/core, with every relation
// spread across K shards by a per-relation partition key.
//
// The paper's access constraints compose naturally with horizontal
// partitioning. A bounded plan touches data only through indexed
// fetches, and a fetch for a concrete X-value ā retrieves at most N
// tuples wherever they live: when the relation is partitioned by X the
// whole group D_Y(X = ā) sits on one shard and the fetch ROUTES there
// (one lookup); otherwise the group is split and the fetch SCATTERS to
// all K shards, merging the per-shard buckets. Because index buckets
// are kept in canonical (key-sorted) order, the merge reproduces the
// exact bucket a single-node index would serve — so a sharded engine
// returns byte-identical rows, in the same order, as internal/core on
// the same data. That equivalence is property-tested in equiv_test.go.
//
// Consistency model: the coordinator owns one atomic snapshot holding
// every shard's (instance, indices) version, so readers never see shard
// 1 post-delta and shard 2 pre-delta. Apply is two-phase: every
// shard's sub-delta is STAGED in parallel (copy-on-write, nothing
// published), the batch is validated GLOBALLY — cardinality bounds are
// evaluated at the global |D|, and groups of constraints not aligned
// with the partition key are measured by merging per-shard buckets —
// and only then does every shard publish, or none. A violation
// anywhere rejects the whole delta with the same *live.ViolationError
// a single-node engine would produce.
//
// Deliberately NOT nested core.Engines: a per-shard engine would
// re-validate constraints against its local |D| and its local groups,
// which both misses violations (a group split across shards) and
// fabricates them (general-form bounds s(|D|) evaluated at the smaller
// local size). The shards hold data; exactly one planner engine plans,
// admits and serves through core.QueryView against a scatter-gather
// view of them.
package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/cq"
	"repro/internal/data"
	"repro/internal/durable"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/specialize"
	"repro/internal/value"
)

// Options configures a sharded engine.
type Options struct {
	// Shards is K, the number of hash partitions; 0 or 1 means a single
	// shard (useful as the degenerate baseline).
	Shards int
	// Core configures the planner engine (plan cache size, default exec
	// options, checker options) exactly as for a single-node engine.
	Core core.Options
	// PartitionKeys overrides the per-relation partition key. The
	// default for each relation is the X-attributes of its first access
	// constraint with a nonempty X (so that constraint's fetches route
	// to one shard), falling back to all attributes when no constraint
	// offers one. Fetches route only when a constraint's X matches the
	// partition key exactly (same attributes, same order); everything
	// else scatters.
	PartitionKeys map[string][]schema.Attribute
}

// partition says how one relation is spread across shards.
type partition struct {
	attrs []schema.Attribute
	pos   []int // positions of attrs in the relation's attribute order
}

// snapshot is one consistent cross-shard version: every shard's indexed
// instance, the global size, and a lazily materialized union instance
// for the scan fallback.
type snapshot struct {
	views []*access.Indexed
	size  int
	// version is the committed cross-shard version: 0 after Load, +1 per
	// Apply; every shard's WAL carries a record for every version, so
	// all shards recover onto the same cut.
	version uint64

	mergeMu sync.Mutex
	merged  *data.Instance // guarded by mergeMu
}

// instance returns the union of the shards' instances, materializing it
// on first use (a scan reads every tuple anyway, so the merge does not
// change the fallback's asymptotics) and caching it for the snapshot's
// lifetime. Load seeds it with the loaded instance, so scans after a
// plain Load pay nothing. The merge walks every tuple in the database,
// so it observes ctx between relations: a canceled request must not pay
// for a union nobody will read.
func (sn *snapshot) instance(ctx context.Context, s *schema.Schema) (*data.Instance, error) {
	sn.mergeMu.Lock()
	defer sn.mergeMu.Unlock()
	if sn.merged != nil {
		return sn.merged, nil
	}
	m := data.NewInstance(s)
	for _, v := range sn.views {
		for _, rs := range s.Relations() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rel := v.Instance.Relation(rs.Name)
			if rel == nil {
				continue
			}
			out := m.Relation(rs.Name)
			var buf data.Tuple
			for ri := 0; ri < rel.Len(); ri++ {
				buf = rel.AppendRow(buf, ri)
				if _, err := out.Insert(buf); err != nil {
					return nil, err
				}
			}
		}
	}
	// The cached union never mutates; drop its merge-time dedup maps.
	m.ReleaseDedup()
	sn.merged = m
	return m, nil
}

// Engine is the sharded counterpart of core.Engine; it implements
// core.Queryable, so serving code switches between the two with a
// constructor change only.
type Engine struct {
	Schema *schema.Schema
	Access *access.Schema
	Opts   Options

	k       int
	parts   map[string]partition
	planner *core.Engine

	// snap is the current consistent cross-shard snapshot (nil before
	// the first Load). writeMu serializes Load and Apply and protects
	// store attachment (Durable).
	snap    atomic.Pointer[snapshot]
	writeMu sync.Mutex
	applies atomic.Uint64
	// stores, when non-nil, holds one durable store per shard
	// (dir/shard-<i>); every Apply appends the committed version to all
	// K WALs in shard order. guarded by writeMu.
	stores []*durable.Store
}

var _ core.Queryable = (*Engine)(nil)

// New builds a sharded engine over K shards, deriving the partition map
// from the access schema (see Options.PartitionKeys).
// NewOrCore builds the serving engine for a K-shard deployment: the
// plain single-node core.Engine for K ≤ 1, a sharded engine otherwise.
// The CLIs (bequery, beserve) share it so "-shards 1" means exactly the
// single-node engine, not a one-shard coordinator, in both binaries.
func NewOrCore(s *schema.Schema, a *access.Schema, opts core.Options, shards int) (core.Queryable, error) {
	if shards > 1 {
		return New(s, a, Options{Shards: shards, Core: opts})
	}
	return core.New(s, a, opts)
}

func New(s *schema.Schema, a *access.Schema, opts Options) (*Engine, error) {
	if opts.Shards < 0 {
		return nil, fmt.Errorf("shard: negative shard count %d", opts.Shards)
	}
	k := opts.Shards
	if k == 0 {
		k = 1
	}
	planner, err := core.New(s, a, opts.Core)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Schema:  s,
		Access:  a,
		Opts:    opts,
		k:       k,
		parts:   make(map[string]partition),
		planner: planner,
	}
	for _, rs := range s.Relations() {
		attrs, ok := opts.PartitionKeys[rs.Name]
		if !ok {
			attrs = DefaultPartitionKey(rs, a)
		}
		pos, err := rs.Positions(attrs)
		if err != nil {
			return nil, fmt.Errorf("shard: bad partition key for %s: %w", rs.Name, err)
		}
		e.parts[rs.Name] = partition{attrs: append([]schema.Attribute(nil), attrs...), pos: pos}
	}
	return e, nil
}

// DefaultPartitionKey picks the X of the relation's first access
// constraint with a nonempty X, so that constraint's indexed fetches
// route to exactly one shard; a relation with no such constraint is
// partitioned by all its attributes (an even spread — every access to
// it scatters anyway). Exported so internal/cluster's coordinator and
// shard nodes derive the identical placement from the same catalog.
func DefaultPartitionKey(rs schema.Relation, a *access.Schema) []schema.Attribute {
	for _, c := range a.ForRelation(rs.Name) {
		if len(c.X) > 0 {
			return c.X
		}
	}
	return rs.Attrs
}

// AttrsEqual is order-sensitive attribute-list equality: routing relies
// on the partition key encoding exactly matching the fetch key encoding.
func AttrsEqual(a, b []schema.Attribute) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// aligned reports whether constraint c's fetch keys coincide with its
// relation's partition key, i.e. whether each group D_Y(X = ā) lives
// wholly on shard ShardOf(ā).
func (e *Engine) aligned(c access.Constraint) bool {
	return AttrsEqual(e.parts[c.Rel].attrs, c.X)
}

// ShardOf maps an encoded partition-key value to a shard (FNV-1a: fast,
// deterministic across processes, good spread on short keys). Generic
// over the key spelling so raw scratch bytes route without a conversion
// allocation. Exported because it IS the cluster placement function:
// a networked coordinator must route a fetch key to the same node this
// in-process engine routes it to.
func ShardOf[T ~string | ~[]byte](k T, n int) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= prime32
	}
	return int(h % uint32(n))
}

// shardOfTuple places one tuple of relation rel.
func (e *Engine) shardOfTuple(rel string, t data.Tuple) int {
	return ShardOf(value.KeyOfAt(t, e.parts[rel].pos), e.k)
}

// errNoInstance mirrors core's pre-Load refusal.
func errNoInstance() error { return fmt.Errorf("shard: no instance loaded") }

// Load hash-partitions d across the K shards, builds every shard's
// indices in parallel, and validates D |= A GLOBALLY: cardinality
// bounds are evaluated at the full |D| and groups of non-aligned
// constraints are measured across shards, so the verdict matches what a
// single-node Load of d would decide. Ownership of d transfers to the
// engine (it becomes the cached union instance of the new snapshot).
func (e *Engine) Load(d *data.Instance) error {
	// Split: per-shard instances, tuples shared with d.
	insts := make([]*data.Instance, e.k)
	for i := range insts {
		insts[i] = data.NewInstance(e.Schema)
	}
	for _, rs := range e.Schema.Relations() {
		rel := d.Relation(rs.Name)
		if rel == nil {
			return fmt.Errorf("shard: instance has no relation %s", rs.Name)
		}
		pos := e.parts[rs.Name].pos
		var buf data.Tuple
		var kb []byte
		for ri := 0; ri < rel.Len(); ri++ {
			buf = rel.AppendRow(buf, ri)
			kb = rel.AppendKeyAt(kb[:0], ri, pos)
			if _, err := insts[ShardOf(kb, e.k)].Relation(rs.Name).Insert(buf); err != nil {
				return err
			}
		}
	}

	// Index every shard in parallel; local violation lists are ignored —
	// they are computed against local sizes, the global check below is
	// the authoritative one.
	views := make([]*access.Indexed, e.k)
	errs := make([]error, e.k)
	var wg sync.WaitGroup
	for i := 0; i < e.k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i], _, errs[i] = access.BuildIndexed(e.Access, insts[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	size := d.Size()
	var viols []access.Violation
	for ci, c := range e.Access.Constraints {
		bound := c.Card.Bound(size)
		g := 0
		if e.aligned(c) {
			for _, v := range views {
				if mg := v.Index(ci).MaxGroup(); mg > g {
					g = mg
				}
			}
		} else {
			g = mergedMaxGroup(constraintIndexes(views, ci))
		}
		if g > bound {
			viols = append(viols, access.Violation{Constraint: c, Group: g, Bound: bound})
		}
	}
	if len(viols) > 0 {
		return fmt.Errorf("shard: instance violates the access schema: %v (first of %d)", viols[0], len(viols))
	}

	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.stores != nil {
		// Restart the durable history: per-shard base checkpoints at
		// version 0, all written before the snapshot publishes.
		for i, st := range e.stores {
			if err := st.Reset(); err != nil {
				return err
			}
			base := &durable.State{Instance: insts[i], Indexed: views[i], Version: 0}
			if err := st.WriteCheckpoint(e.Schema, base); err != nil {
				return err
			}
		}
	}
	// All K shard instances and the cached union publish read-only;
	// release their load-time dedup maps (writers clone and rebuild).
	for _, inst := range insts {
		inst.ReleaseDedup()
	}
	d.ReleaseDedup()
	e.snap.Store(&snapshot{views: views, size: size, merged: d})
	e.planner.SetSizeHint(size)
	return nil
}

// Durable attaches per-shard durability directories under dir
// (dir/shard-0 … dir/shard-<K-1>): every subsequent Apply appends the
// committed version to all K WALs — in shard order, before the
// cross-shard snapshot publishes — and Load writes per-shard base
// checkpoints. If the directories already hold durable state, the
// engine recovers onto one consistent cross-shard cut: V = the minimum
// committed version across shards (a crash mid-fanout leaves a prefix
// of shards one version ahead; their diverged WAL suffix is truncated),
// every shard replays to exactly V, and the recovered snapshot is
// published (restored == true). Directories where only SOME shards have
// state — an initial load that crashed partway — are reset wholesale
// and report restored == false, so the caller re-ingests; Load is
// idempotent, nothing committed is lost. Call once, before serving.
func (e *Engine) Durable(ctx context.Context, dir string, hook durable.Hook) (restored bool, err error) {
	stores := make([]*durable.Store, e.k)
	closeAll := func() {
		for _, st := range stores {
			if st != nil {
				st.Close()
			}
		}
	}
	withState := 0
	cut := durable.NoLimit
	for i := range stores {
		st, err := durable.Open(filepath.Join(dir, fmt.Sprintf("shard-%d", i)), hook)
		if err != nil {
			closeAll()
			return false, err
		}
		stores[i] = st
		if v, ok := st.LastVersion(); ok {
			withState++
			if v < cut {
				cut = v
			}
		}
	}

	attach := func() error {
		e.writeMu.Lock()
		defer e.writeMu.Unlock()
		if e.stores != nil {
			return fmt.Errorf("shard: engine already has durable stores")
		}
		e.stores = stores
		return nil
	}

	if withState < e.k {
		// Fresh directories, or a partial initial load: no consistent cut
		// exists, so wipe whatever half-written state is there and let the
		// caller Load from source.
		for _, st := range stores {
			if err := st.Reset(); err != nil {
				closeAll()
				return false, err
			}
		}
		if err := attach(); err != nil {
			closeAll()
			return false, err
		}
		return false, nil
	}

	// Recover every shard to exactly the cut, in parallel.
	states := make([]*durable.State, e.k)
	errs := make([]error, e.k)
	var wg sync.WaitGroup
	for i := range stores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			states[i], errs[i] = stores[i].Recover(ctx, e.Schema, e.Access, cut)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			closeAll()
			return false, fmt.Errorf("shard %d: %w", i, err)
		}
		if states[i] == nil || states[i].Version != cut {
			closeAll()
			return false, fmt.Errorf("shard %d: recovered no state at cut version %d", i, cut)
		}
	}
	views := make([]*access.Indexed, e.k)
	size := 0
	for i, st := range states {
		views[i] = st.Indexed
		size += st.Instance.Size()
	}
	if err := attach(); err != nil {
		closeAll()
		return false, err
	}
	e.writeMu.Lock()
	e.snap.Store(&snapshot{views: views, size: size, version: cut})
	e.writeMu.Unlock()
	e.planner.SetSizeHint(size)
	return true, nil
}

// Checkpoint persists every shard's current snapshot (all at the same
// pinned cross-shard version) and compacts the WALs behind them,
// returning the version captured. core.ErrNotDurable if Durable was
// never called.
func (e *Engine) Checkpoint(ctx context.Context) (uint64, error) {
	e.writeMu.Lock()
	stores := e.stores
	sn := e.snap.Load()
	e.writeMu.Unlock()
	if stores == nil {
		return 0, core.ErrNotDurable
	}
	if sn == nil {
		return 0, errNoInstance()
	}
	csp := obs.FromContext(ctx).Start("checkpoint.write")
	defer csp.End()
	errs := make([]error, len(stores))
	var wg sync.WaitGroup
	for i, st := range stores {
		wg.Add(1)
		go func(i int, st *durable.Store) {
			defer wg.Done()
			errs[i] = st.WriteCheckpoint(e.Schema, &durable.State{
				Instance: sn.views[i].Instance, Indexed: sn.views[i], Version: sn.version,
			})
		}(i, st)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return sn.version, nil
}

// CloseDurable detaches and closes every shard's durable store. Safe to
// call when durability was never enabled.
func (e *Engine) CloseDurable() error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	var first error
	for _, st := range e.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	e.stores = nil
	return first
}

// Apply validates delta against the access schema across all shards and
// publishes a new cross-shard snapshot when every cardinality bound
// still holds — two-phase:
//
//	phase 1 (stage):   split the delta by partition key and stage each
//	                   shard's sub-delta in parallel, copy-on-write,
//	                   publishing nothing;
//	phase 2 (commit):  validate the staged whole at the global |D| —
//	                   including the shrink-|D| recheck of general-form
//	                   bounds on every shard, touched or not, and merged
//	                   cross-shard group sizes for non-aligned
//	                   constraints — then swap in every shard's new
//	                   version under one atomic snapshot store.
//
// A violation on any shard rejects the whole delta with a
// *live.ViolationError and NO shard publishes. The returned Result
// carries the net insert/delete counts; its Instance/Indexed are nil
// (per-shard snapshots replace the single pair — use Instance() for the
// union). Queries in flight keep their pre-delta snapshot.
func (e *Engine) Apply(ctx context.Context, delta *live.Delta) (*live.Result, error) {
	if delta == nil {
		return nil, fmt.Errorf("shard: nil delta")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	sn := e.snap.Load()
	if sn == nil {
		return nil, errNoInstance()
	}

	subs, err := e.split(delta)
	if err != nil {
		return nil, err
	}

	// Phase 1: stage every touched shard in parallel. The span covers
	// the whole fanout — per-shard staging runs on worker goroutines,
	// which never open spans of their own.
	tr := obs.FromContext(ctx)
	sp := tr.Start("apply.stage")
	staged := make([]*live.Staged, e.k)
	errs := make([]error, e.k)
	var wg sync.WaitGroup
	for i := 0; i < e.k; i++ {
		if subs[i].Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			staged[i], errs[i] = live.Stage(ctx, subs[i], sn.views[i])
		}(i)
	}
	wg.Wait()
	sp.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	oldGlobal := sn.size
	newGlobal := oldGlobal
	res := &live.Result{}
	for _, st := range staged {
		if st == nil {
			continue
		}
		newGlobal += st.Size() - st.OldSize()
		res.Inserted += st.Inserted()
		res.Deleted += st.Deleted()
	}

	// Phase 2: global validation, then all-or-nothing publish.
	sp = tr.Start("apply.validate")
	viols := e.validate(sn, staged, oldGlobal, newGlobal)
	sp.End()
	if len(viols) > 0 {
		return nil, &live.ViolationError{Violations: viols}
	}
	sp = tr.Start("apply.commit")
	views := make([]*access.Indexed, e.k)
	for i := 0; i < e.k; i++ {
		if staged[i] == nil {
			views[i] = sn.views[i]
			continue
		}
		r, err := staged[i].Commit()
		if err != nil {
			sp.End()
			return nil, err
		}
		views[i] = r.Indexed
	}
	sp.End()
	// Durability point: every shard's WAL gets a record for this version
	// — an empty sub-delta for untouched shards — in shard order, BEFORE
	// the cross-shard snapshot publishes. Versions therefore stay in
	// lockstep across shards, and a crash mid-fanout leaves a prefix of
	// shards one version ahead; recovery truncates that diverged suffix
	// back to the minimum committed version. An append failure aborts
	// the whole publish: the pre-delta snapshot keeps serving, and the
	// shards already appended are rolled back to the committed version
	// so the next Apply lines up again.
	if e.stores != nil {
		wsp := tr.Start("wal.append+fsync")
		for i, st := range e.stores {
			if err := st.AppendDelta(sn.version+1, subs[i]); err != nil {
				for _, prev := range e.stores[:i] {
					_ = prev.TruncateAfter(sn.version)
				}
				wsp.End()
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		}
		wsp.SetRows(int64(delta.Len()))
		wsp.End()
	}
	e.snap.Store(&snapshot{views: views, size: newGlobal, version: sn.version + 1})
	e.planner.SetSizeHint(newGlobal)
	e.applies.Add(1)
	return res, nil
}

// split partitions a delta into per-shard sub-deltas by each touched
// tuple's partition key.
func (e *Engine) split(d *live.Delta) ([]*live.Delta, error) {
	subs := make([]*live.Delta, e.k)
	for i := range subs {
		subs[i] = live.NewDelta(e.Schema)
	}
	err := d.Each(func(rel string, insert bool, t data.Tuple) error {
		p, ok := e.parts[rel]
		if !ok {
			return fmt.Errorf("shard: delta references unknown relation %s", rel)
		}
		i := ShardOf(value.KeyOfAt(t, p.pos), e.k)
		if insert {
			return subs[i].Insert(rel, t...)
		}
		return subs[i].Delete(rel, t...)
	})
	if err != nil {
		return nil, err
	}
	return subs, nil
}

// postIndex is the post-delta index for constraint ci on shard i: the
// staged clone when that shard's batch touched the relation, the
// current shared index otherwise.
func postIndex(sn *snapshot, staged []*live.Staged, i, ci int) *index.Index {
	if st := staged[i]; st != nil && st.Touched(ci) {
		return st.Index(ci)
	}
	return sn.views[i].Index(ci)
}

// validate applies the same rules as live.(*Staged).Violations, lifted
// to the cross-shard whole: bounds are evaluated at the GLOBAL post- and
// pre-delta sizes, aligned constraints check per-shard groups (which
// are exactly the global groups), and non-aligned constraints merge
// per-shard buckets to measure the true group sizes. Violations come
// out in constraint order with the same Group numbers a single-node
// engine applying the unsplit delta would report.
func (e *Engine) validate(sn *snapshot, staged []*live.Staged, oldGlobal, newGlobal int) []access.Violation {
	var viols []access.Violation
	for ci, c := range e.Access.Constraints {
		bound := c.Card.Bound(newGlobal)
		shrunk := !c.Card.IsConst() && bound < c.Card.Bound(oldGlobal)
		touched := false
		for _, st := range staged {
			if st != nil && st.Touched(ci) {
				touched = true
				break
			}
		}
		if !touched && !shrunk {
			continue
		}
		g := 0
		if e.aligned(c) {
			if shrunk {
				// The bound dropped with |D|: re-check every group on
				// every shard, staged or not.
				for i := range sn.views {
					if mg := postIndex(sn, staged, i, ci).MaxGroup(); mg > g {
						g = mg
					}
				}
			} else {
				// Groups never split across shards: the insert-touched
				// buckets' post-delta sizes are the global group sizes.
				for _, st := range staged {
					if st == nil || !st.Touched(ci) {
						continue
					}
					idx := st.Index(ci)
					for _, k := range st.InsertKeys(ci) {
						if n := idx.FetchKey(k).Len(); n > g {
							g = n
						}
					}
				}
			}
		} else {
			idxs := make([]*index.Index, len(sn.views))
			for i := range sn.views {
				idxs[i] = postIndex(sn, staged, i, ci)
			}
			if shrunk {
				g = mergedMaxGroup(idxs)
			} else {
				// Only groups some shard's inserts touched can have
				// grown; measure each by merging across all shards.
				seen := make(map[value.Key]bool)
				for _, st := range staged {
					if st == nil || !st.Touched(ci) {
						continue
					}
					for _, k := range st.InsertKeys(ci) {
						if seen[k] {
							continue
						}
						seen[k] = true
						if n := mergedGroupSize(idxs, k); n > g {
							g = n
						}
					}
				}
			}
		}
		if g > bound {
			viols = append(viols, access.Violation{Constraint: c, Group: g, Bound: bound})
		}
	}
	return viols
}

// constraintIndexes collects the per-shard indexes backing constraint ci.
func constraintIndexes(views []*access.Indexed, ci int) []*index.Index {
	idxs := make([]*index.Index, len(views))
	for i, v := range views {
		idxs[i] = v.Index(ci)
	}
	return idxs
}

// mergedGroupSize is the true |D_Y(X = ā)| of a group split across
// shards: the per-shard buckets hold distinct Y-projections, so the
// global size is the size of their deduplicated union.
func mergedGroupSize(idxs []*index.Index, k value.Key) int {
	n := 0
	var seen map[string]bool
	var kb []byte
	for _, idx := range idxs {
		b := idx.FetchKey(k)
		if b.Len() == 0 {
			continue
		}
		if n == 0 && seen == nil {
			// First shard with data: count without dedup bookkeeping yet.
			n = b.Len()
			seen = make(map[string]bool, b.Len())
			for i := 0; i < b.Len(); i++ {
				kb = b.AppendKeyOf(kb[:0], i)
				seen[string(kb)] = true
			}
			continue
		}
		for i := 0; i < b.Len(); i++ {
			kb = b.AppendKeyOf(kb[:0], i)
			if !seen[string(kb)] {
				seen[string(kb)] = true
				n++
			}
		}
	}
	return n
}

// mergedMaxGroup is max over all X-keys of the merged group size — the
// cross-shard analogue of Index.MaxGroup, used by Load validation and
// the shrink-|D| recheck of non-aligned constraints.
func mergedMaxGroup(idxs []*index.Index) int {
	keys := make(map[value.Key]bool)
	for _, idx := range idxs {
		idx.Buckets(func(k value.Key, _ index.Bucket) bool {
			keys[k] = true
			return true
		})
	}
	m := 0
	for k := range keys {
		if n := mergedGroupSize(idxs, k); n > m {
			m = n
		}
	}
	return m
}

// Query serves q through the planner engine against a scatter-gather
// view of the current snapshot: identical planning, admission control,
// fallbacks and streaming as core.Engine.Query. The static access
// bound (and so the -budget admission check) is the per-request bound
// of the ONE plan execution, not K times it: a routed fetch touches one
// shard and a scattered fetch still retrieves at most the constraint's
// bound across all shards combined, because the bound constrains the
// global group.
func (e *Engine) Query(ctx context.Context, q core.Query, opts ...core.QueryOption) (*core.Result, error) {
	sn := e.snap.Load()
	if sn == nil {
		return nil, errNoInstance()
	}
	v := e.viewOf(sn)
	// A traced request gets per-shard route/scatter accounting: the
	// fetchers bump counters (they run on plan-executor worker
	// goroutines, so they can't open spans) and Trace.Finish folds the
	// totals into "shard N route"/"shard N scatter" spans.
	if tr := obs.FromContext(ctx); tr != nil && e.k > 1 {
		v.Source.(*gatherSource).sc = obs.NewShardCounters(tr, e.k)
	}
	return e.planner.QueryView(ctx, q, v, opts...)
}

// viewOf assembles the core.View for one pinned snapshot.
func (e *Engine) viewOf(sn *snapshot) *core.View {
	return &core.View{
		Size:   sn.size,
		Source: &gatherSource{e: e, views: sn.views},
		Instance: func(ctx context.Context) (*data.Instance, error) {
			sp := obs.FromContext(ctx).Start("shard.merge")
			inst, err := sn.instance(ctx, e.Schema)
			if inst != nil {
				sp.SetRows(int64(inst.Size()))
			}
			sp.End()
			return inst, err
		},
	}
}

// Explain reports coverage, verdict, plan and bound like core's, with
// general-form bounds evaluated at the global |D|.
func (e *Engine) Explain(q *cq.CQ, params []string) (string, error) {
	size := 0
	if sn := e.snap.Load(); sn != nil {
		size = sn.size
	}
	return e.planner.ExplainAt(q, params, size)
}

// IsCovered runs the PTIME covered-query check (data-independent).
func (e *Engine) IsCovered(q *cq.CQ) (*cover.Result, error) { return e.planner.IsCovered(q) }

// Plan synthesizes the bounded plan with its static bound at the global
// |D|; the plan cache is the planner's, shared across all shards.
func (e *Engine) Plan(q *cq.CQ) (*plan.Plan, plan.Bound, error) {
	size := 0
	if sn := e.snap.Load(); sn != nil {
		size = sn.size
	}
	return e.planner.PlanAt(q, size)
}

// Baseline evaluates q conventionally over the union of the shards.
func (e *Engine) Baseline(q *cq.CQ, mode eval.Mode) (*eval.Result, error) {
	sn := e.snap.Load()
	if sn == nil {
		return nil, errNoInstance()
	}
	inst, err := sn.instance(context.Background(), e.Schema)
	if err != nil {
		return nil, err
	}
	return eval.CQ(q, inst, mode)
}

// Specialize solves QSP (data-independent).
func (e *Engine) Specialize(q *cq.CQ, X []string, k int) (*specialize.Result, error) {
	return e.planner.Specialize(q, X, k)
}

// Instance returns the union of the shards' instances (materialized
// lazily, cached per snapshot), or nil before Load.
func (e *Engine) Instance() *data.Instance {
	sn := e.snap.Load()
	if sn == nil {
		return nil
	}
	inst, err := sn.instance(context.Background(), e.Schema)
	if err != nil {
		return nil
	}
	return inst
}

// Shards returns K.
func (e *Engine) Shards() int { return e.k }

// PartitionKey returns the partition key of the named relation.
func (e *Engine) PartitionKey(rel string) []schema.Attribute {
	return append([]schema.Attribute(nil), e.parts[rel].attrs...)
}

// Stats aggregates across the shards: global |D|, shard count, and the
// serving counters.
func (e *Engine) Stats() core.EngineStats {
	size := 0
	version := uint64(0)
	if sn := e.snap.Load(); sn != nil {
		size = sn.size
		version = sn.version
	}
	// Every query is served through the planner's QueryView, so its
	// request and access-accounting counters cover the whole fleet.
	ps := e.planner.Stats()
	return core.EngineStats{
		Size:    size,
		Shards:  e.k,
		Queries: ps.Queries,
		Applies: e.applies.Load(),
		Fetched: ps.Fetched,
		Scanned: ps.Scanned,
		Version: version,
	}
}

// CacheStats reports the planner's plan-cache counters (there is one
// plan cache for the whole sharded engine: plans are data-independent,
// so per-shard caches would only duplicate entries).
func (e *Engine) CacheStats() core.CacheStats { return e.planner.CacheStats() }
