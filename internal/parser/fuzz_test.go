package parser

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/value"
)

// FuzzParse feeds arbitrary documents to the parser. The invariants:
//
//  1. Parse never panics — malformed input must come back as an error.
//  2. Round-trip: a successfully parsed document, rendered back to the
//     document syntax, parses again, and rendering THAT parse is a
//     fixed point (same text). This pins the parser and the syntax to
//     each other without a hand-maintained printer in the main tree.
//
// Documents whose identifiers or string constants fall outside the
// render-safe subset (quotes, newlines, exotic runes) skip the
// round-trip half — invariant 1 still applies to them.
func FuzzParse(f *testing.F) {
	f.Add(`
relation Accident(aid, district, date)
relation Vehicle(vid, driver, age)
constraint Accident(date -> aid, 610)
constraint Accident(aid -> district date, 1)
constraint Vehicle(vid -> driver age, sqrt)
query Q0(xa) :- Accident(aid, "Queen's Park", "1/5/2005"), Vehicle(aid, dri, xa).
query Q51(xa) params(d) :- Accident(aid, d, d), Vehicle(aid, dri, xa).
`)
	f.Add("relation R(A, B)\nconstraint R(∅ -> B, 5)\nquery Q(x) :- R(x, y), x = 3.")
	f.Add("relation R(A, B)\nquery QU(x) :- R(x, y).\nquery QU(z) :- R(z, z).")
	f.Add("relation R(A, B)\nquery QD(x) :- R(x, y), (R(x, z) | R(z, x)).")
	f.Add("relation R(A)\nquery B() :- R(x).")
	f.Add("relation")
	f.Add("constraint R(A -> , 1)")
	f.Add("query Q(x) :- ")
	f.Add("relation R(A, B)\nconstraint R(A -> B, -610)")
	f.Add("\x00\xff relation R(é)")
	f.Fuzz(func(t *testing.T, input string) {
		doc, err := Parse(input)
		if err != nil {
			return // rejected cleanly: that is the contract
		}
		out, ok := renderDoc(doc)
		if !ok {
			return // outside the render-safe subset
		}
		doc2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of rendered document failed: %v\nrendered:\n%s", err, out)
		}
		out2, ok := renderDoc(doc2)
		if !ok {
			t.Fatalf("rendered document left the render-safe subset:\n%s", out)
		}
		if out2 != out {
			t.Fatalf("render is not a fixed point:\nfirst:\n%s\nsecond:\n%s", out, out2)
		}
	})
}

var safeIdent = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

func safeString(s string) bool {
	return !strings.ContainsAny(s, "\"\\\n\r\t")
}

// renderDoc prints a parsed document back in the .bq syntax, reporting
// false when any name or constant cannot be rendered unambiguously.
func renderDoc(d *Document) (string, bool) {
	var sb strings.Builder
	for _, rs := range d.Schema.Relations() {
		if !safeIdent.MatchString(rs.Name) {
			return "", false
		}
		names := make([]string, len(rs.Attrs))
		for i, a := range rs.Attrs {
			if !safeIdent.MatchString(string(a)) {
				return "", false
			}
			names[i] = string(a)
		}
		fmt.Fprintf(&sb, "relation %s(%s)\n", rs.Name, strings.Join(names, ", "))
	}
	for _, c := range d.Access.Constraints {
		xs := make([]string, len(c.X))
		for i, a := range c.X {
			xs[i] = string(a)
		}
		x := strings.Join(xs, " ")
		if len(c.X) == 0 {
			x = "∅"
		}
		ys := make([]string, len(c.Y))
		for i, a := range c.Y {
			ys[i] = string(a)
		}
		card := fmt.Sprint(c.Card.Const)
		if !c.Card.IsConst() {
			card = c.Card.Name
		}
		fmt.Fprintf(&sb, "constraint %s(%s -> %s, %s)\n", c.Rel, x, strings.Join(ys, " "), card)
	}
	for _, q := range d.Queries {
		if !safeIdent.MatchString(q.Name) {
			return "", false
		}
		for _, sub := range q.Subs {
			head := make([]string, len(sub.Free))
			for i, v := range sub.Free {
				if !safeIdent.MatchString(v) {
					return "", false
				}
				head[i] = v
			}
			var body []string
			for _, atom := range sub.Atoms {
				args := make([]string, len(atom.Args))
				for i, term := range atom.Args {
					s, ok := renderTerm(term)
					if !ok {
						return "", false
					}
					args[i] = s
				}
				body = append(body, fmt.Sprintf("%s(%s)", atom.Rel, strings.Join(args, ", ")))
			}
			for _, eq := range sub.Eqs {
				l, okL := renderTerm(eq.L)
				r, okR := renderTerm(eq.R)
				if !okL || !okR {
					return "", false
				}
				body = append(body, fmt.Sprintf("%s = %s", l, r))
			}
			if len(body) == 0 {
				return "", false
			}
			params := ""
			if len(q.Params) > 0 {
				for _, p := range q.Params {
					if !safeIdent.MatchString(p) {
						return "", false
					}
				}
				params = fmt.Sprintf(" params(%s)", strings.Join(q.Params, ", "))
			}
			fmt.Fprintf(&sb, "query %s(%s)%s :- %s.\n", q.Name, strings.Join(head, ", "), params, strings.Join(body, ", "))
		}
	}
	return sb.String(), true
}

func renderTerm(t cq.Term) (string, bool) {
	if t.IsVar() {
		if !safeIdent.MatchString(t.V) {
			return "", false
		}
		return t.V, true
	}
	switch t.C.Kind() {
	case value.Int:
		if t.C.Int() < 0 {
			return "", false
		}
		return fmt.Sprint(t.C.Int()), true
	case value.String:
		if !safeString(t.C.Str()) {
			return "", false
		}
		return `"` + t.C.Str() + `"`, true
	default:
		return "", false
	}
}
