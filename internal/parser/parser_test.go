package parser

import (
	"strings"
	"testing"

	"repro/internal/value"
)

const accidentDoc = `
# Example 1.1 of the paper.
relation Accident(aid, district, date)
relation Casualty(cid, aid, class, vid)
relation Vehicle(vid, driver, age)

constraint Accident(date -> aid, 610)
constraint Casualty(aid -> vid, 192)
constraint Accident(aid -> district date, 1)
constraint Vehicle(vid -> driver age, 1)

query Q0(xa) :- Accident(aid, "Queen's Park", "1/5/2005"),
                Casualty(cid, aid, class, vid),
                Vehicle(vid, dri, xa).
`

func TestParseAccidentDocument(t *testing.T) {
	doc, err := Parse(accidentDoc)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema.Len() != 3 {
		t.Errorf("relations = %d", doc.Schema.Len())
	}
	if len(doc.Access.Constraints) != 4 {
		t.Errorf("constraints = %d", len(doc.Access.Constraints))
	}
	c0 := doc.Access.Constraints[0]
	if c0.Rel != "Accident" || c0.Card.Const != 610 {
		t.Errorf("psi1 = %v", c0)
	}
	q, ok := doc.Query("Q0")
	if !ok {
		t.Fatal("Q0 missing")
	}
	if !q.IsCQ() {
		t.Errorf("Q0 should be a single CQ, got %d subs", len(q.Subs))
	}
	sub := q.Subs[0]
	if len(sub.Atoms) != 3 || len(sub.Free) != 1 || sub.Free[0] != "xa" {
		t.Errorf("Q0 CQ = %s", sub)
	}
	// The quoted district is a constant.
	found := false
	for _, c := range sub.Constants() {
		if c == value.NewString("Queen's Park") {
			found = true
		}
	}
	if !found {
		t.Errorf("district constant missing: %v", sub.Constants())
	}
}

func TestParseUCQByRepetition(t *testing.T) {
	doc, err := Parse(`
relation R(A, B)
relation S(A, B)
query QU(x) :- R(x, y).
query QU(z) :- S(z, y).
`)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := doc.Query("QU")
	if !ok {
		t.Fatal("QU missing")
	}
	if len(q.Subs) != 2 {
		t.Fatalf("subs = %d, want 2", len(q.Subs))
	}
	// Head alignment: the second rule's z is renamed to x.
	if q.Subs[1].Free[0] != "x" {
		t.Errorf("second sub head = %v, want x", q.Subs[1].Free)
	}
}

func TestParseDisjunctiveBody(t *testing.T) {
	doc, err := Parse(`
relation R(A, B)
relation S(A, B)
query QD(x) :- R(x, y), (S(x, z) | S(z, x)).
`)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := doc.Query("QD")
	if len(q.Subs) != 2 {
		t.Fatalf("DNF subs = %d, want 2", len(q.Subs))
	}
	for _, s := range q.Subs {
		if len(s.Atoms) != 2 {
			t.Errorf("each disjunct should keep the R atom: %s", s)
		}
	}
}

func TestParseParams(t *testing.T) {
	doc, err := Parse(`
relation R(A, B)
query QP(x) params(d, e) :- R(x, d), R(d, e).
`)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := doc.Query("QP")
	if len(q.Params) != 2 || q.Params[0] != "d" || q.Params[1] != "e" {
		t.Errorf("params = %v", q.Params)
	}
}

func TestParseGeneralCardinalities(t *testing.T) {
	doc, err := Parse(`
relation R(A, B)
constraint R(A -> B, log)
constraint R(B -> A, sqrt)
constraint R(∅ -> B, 5)
`)
	if err != nil {
		t.Fatal(err)
	}
	cs := doc.Access.Constraints
	if cs[0].Card.IsConst() || cs[0].Card.Name != "log" {
		t.Errorf("c0 = %v", cs[0])
	}
	if cs[1].Card.Name != "sqrt" {
		t.Errorf("c1 = %v", cs[1])
	}
	if len(cs[2].X) != 0 || cs[2].Card.Const != 5 {
		t.Errorf("c2 = %v", cs[2])
	}
}

func TestParseEqualitiesAndNumbers(t *testing.T) {
	doc, err := Parse(`
relation R(A, B)
query QE(x) :- R(x, y), y = 42, x = x2, x2 = -7.
`)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := doc.Query("QE")
	sub := q.Subs[0]
	if len(sub.Eqs) != 3 {
		t.Fatalf("eqs = %v", sub.Eqs)
	}
	if sub.Eqs[0].R.C != value.NewInt(42) {
		t.Errorf("eq0 = %v", sub.Eqs[0])
	}
	if sub.Eqs[2].R.C != value.NewInt(-7) {
		t.Errorf("eq2 = %v", sub.Eqs[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown keyword", `table R(A)`, "unknown declaration"},
		{"bad constraint rel", "relation R(A, B)\nconstraint T(A -> B, 1)", "unknown relation"},
		{"bad query rel", "relation R(A, B)\nquery Q(x) :- T(x, y).", "unknown relation"},
		{"bad arity", "relation R(A, B)\nquery Q(x) :- R(x).", "arity"},
		{"arity clash", "relation R(A, B)\nquery Q(x) :- R(x, y).\nquery Q(x, y) :- R(x, y).", "arity"},
		{"unterminated string", `relation R(A)` + "\n" + `query Q(x) :- R("oops.`, "unterminated"},
		{"unsafe head", "relation R(A, B)\nquery Q(w) :- R(x, y).", "unsafe"},
		{"dup relation", "relation R(A)\nrelation R(B)", "duplicate"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	doc, err := Parse("# leading comment\n\nrelation R(A, B) # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema.Len() != 1 {
		t.Error("comment handling broke parsing")
	}
}

func TestBooleanQueryHead(t *testing.T) {
	doc, err := Parse(`
relation R(A, B)
query QB() :- R(x, y).
`)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := doc.Query("QB")
	if len(q.Free) != 0 || len(q.Subs[0].Free) != 0 {
		t.Errorf("boolean head = %v", q.Free)
	}
}
