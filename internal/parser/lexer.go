// Package parser implements a text syntax for the system's three inputs:
// relational schemas, access schemas, and queries.
//
//	# comments run to end of line
//	relation Accident(aid, district, date)
//	constraint Accident(date -> aid, 610)
//	constraint Accident(∅ -> district, log)      # ∅ or empty X; log/sqrt/N
//	query Q0(xa) :- Accident(aid, "Queen's Park", "1/5/2005"),
//	                Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa).
//	query QU(x) params(d) :- R(x, d) | S(x, d).  # ∃FO⁺ bodies: , & |  ( )
//
// Bare identifiers in query bodies are variables; quoted strings and
// numbers are constants. Multiple query rules may share a head name to
// form a UCQ.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokArrow  // ->
	tokEquals // =
	tokDot    // .
	tokPipe   // |
	tokAmp    // &
	tokTurn   // :-
	tokEmpty  // ∅
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokComma:
		return ","
	case tokArrow:
		return "->"
	case tokEquals:
		return "="
	case tokDot:
		return "."
	case tokPipe:
		return "|"
	case tokAmp:
		return "&"
	case tokTurn:
		return ":-"
	case tokEmpty:
		return "∅"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokKind
	text string
	line int
}

// lexError reports a lexical problem with its line number.
type lexError struct {
	line int
	msg  string
}

func (e lexError) Error() string { return fmt.Sprintf("parser: line %d: %s", e.line, e.msg) }

func lex(input string) ([]token, error) {
	var toks []token
	line := 1
	rs := []rune(input)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case r == '\n':
			line++
			i++
		case unicode.IsSpace(r):
			i++
		case r == '#':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
		case r == '(':
			toks = append(toks, token{tokLParen, "(", line})
			i++
		case r == ')':
			toks = append(toks, token{tokRParen, ")", line})
			i++
		case r == ',':
			toks = append(toks, token{tokComma, ",", line})
			i++
		case r == '=':
			toks = append(toks, token{tokEquals, "=", line})
			i++
		case r == '.':
			toks = append(toks, token{tokDot, ".", line})
			i++
		case r == '|':
			toks = append(toks, token{tokPipe, "|", line})
			i++
		case r == '&':
			toks = append(toks, token{tokAmp, "&", line})
			i++
		case r == '∅':
			toks = append(toks, token{tokEmpty, "∅", line})
			i++
		case r == '-':
			if i+1 < len(rs) && rs[i+1] == '>' {
				toks = append(toks, token{tokArrow, "->", line})
				i += 2
			} else if i+1 < len(rs) && unicode.IsDigit(rs[i+1]) {
				j := i + 1
				for j < len(rs) && unicode.IsDigit(rs[j]) {
					j++
				}
				toks = append(toks, token{tokNumber, string(rs[i:j]), line})
				i = j
			} else {
				return nil, lexError{line, "unexpected '-'"}
			}
		case r == ':':
			if i+1 < len(rs) && rs[i+1] == '-' {
				toks = append(toks, token{tokTurn, ":-", line})
				i += 2
			} else {
				return nil, lexError{line, "unexpected ':'"}
			}
		case r == '"':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < len(rs) {
				if rs[j] == '\\' && j+1 < len(rs) {
					sb.WriteRune(rs[j+1])
					j += 2
					continue
				}
				if rs[j] == '"' {
					closed = true
					j++
					break
				}
				if rs[j] == '\n' {
					line++
				}
				sb.WriteRune(rs[j])
				j++
			}
			if !closed {
				return nil, lexError{line, "unterminated string literal"}
			}
			toks = append(toks, token{tokString, sb.String(), line})
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(rs) && unicode.IsDigit(rs[j]) {
				j++
			}
			toks = append(toks, token{tokNumber, string(rs[i:j]), line})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_' || rs[j] == '\'') {
				j++
			}
			toks = append(toks, token{tokIdent, string(rs[i:j]), line})
			i = j
		default:
			return nil, lexError{line, fmt.Sprintf("unexpected character %q", r)}
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}
