package parser

import (
	"fmt"
	"strconv"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/posfo"
	"repro/internal/schema"
	"repro/internal/value"
)

// Query is one parsed query: its ∃FO⁺ form, its UCQ expansion, and the
// declared parameter set (Section 5).
type Query struct {
	Name   string
	Free   []string
	Params []string
	// PosFO is the body as written.
	PosFO *posfo.Query
	// Subs is the UCQ expansion (one CQ for plain conjunctive rules).
	Subs []*cq.CQ
}

// IsCQ reports whether the query is a single conjunctive rule.
func (q *Query) IsCQ() bool { return len(q.Subs) == 1 }

// Document is a fully parsed input: schema, access schema, and queries.
type Document struct {
	Schema  *schema.Schema
	Access  *access.Schema
	Queries []*Query
}

// Query looks a parsed query up by name.
func (d *Document) Query(name string) (*Query, bool) {
	for _, q := range d.Queries {
		if q.Name == name {
			return q, true
		}
	}
	return nil, false
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("parser: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.errf(t, "expected %s, got %s %q", k, t.kind, t.text)
	}
	return t, nil
}

// rawRule is one parsed "query" declaration before same-name rules are
// merged into a UCQ.
type rawRule struct {
	name   string
	free   []string
	params []string
	body   posfo.Formula
}

// Parse parses a full document and validates it: the schema is consistent,
// every constraint refers to schema relations, and every query validates.
// Query rules sharing a head name are merged into one UCQ.
func Parse(input string) (*Document, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	doc := &Document{Schema: &schema.Schema{}, Access: access.NewSchema()}
	var rules []rawRule
	for !p.atEOF() {
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected declaration keyword, got %q", t.text)
		}
		switch t.text {
		case "relation":
			rel, err := p.parseRelation()
			if err != nil {
				return nil, err
			}
			if err := doc.Schema.Add(rel); err != nil {
				return nil, err
			}
		case "constraint":
			c, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			doc.Access.Constraints = append(doc.Access.Constraints, c)
		case "query":
			name, free, params, body, err := p.parseQueryRule()
			if err != nil {
				return nil, err
			}
			rules = append(rules, rawRule{name: name, free: free, params: params, body: body})
		default:
			return nil, p.errf(t, "unknown declaration %q (want relation, constraint, or query)", t.text)
		}
	}
	if err := doc.Access.Validate(doc.Schema); err != nil {
		return nil, err
	}
	qs, err := mergeRules(rules, doc.Schema)
	if err != nil {
		return nil, err
	}
	doc.Queries = qs
	return doc, nil
}

// ParseQueryRules parses a fragment containing only query rules —
// "query Name(x, ...) [params(...)] :- body." — validating them against
// an existing schema. It is the wire-facing entry point: internal/server
// uses it to accept ad-hoc query text over HTTP without the client
// re-shipping the relation declarations on every request.
func ParseQueryRules(input string, s *schema.Schema) ([]*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var rules []rawRule
	for !p.atEOF() {
		t := p.next()
		if t.kind != tokIdent || t.text != "query" {
			return nil, p.errf(t, "expected a query rule, got %q", t.text)
		}
		name, free, params, body, err := p.parseQueryRule()
		if err != nil {
			return nil, err
		}
		rules = append(rules, rawRule{name: name, free: free, params: params, body: body})
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("parser: no query rules in input")
	}
	return mergeRules(rules, s)
}

// mergeRules merges raw rules by head name into UCQs and validates each
// merged query against s.
func mergeRules(rules []rawRule, s *schema.Schema) ([]*Query, error) {
	byName := map[string]*Query{}
	var queries []*Query
	for _, r := range rules {
		q, ok := byName[r.name]
		if !ok {
			q = &Query{Name: r.name, Free: r.free, Params: r.params,
				PosFO: &posfo.Query{Label: r.name, Free: r.free, Body: r.body}}
			byName[r.name] = q
			queries = append(queries, q)
			continue
		}
		if len(q.Free) != len(r.free) {
			return nil, fmt.Errorf("parser: query %s: rules disagree on arity (%d vs %d)",
				r.name, len(q.Free), len(r.free))
		}
		// Align the later rule's free variables with the first rule's.
		sub := make(map[string]cq.Term, len(r.free))
		aligned := r.body
		for i, v := range r.free {
			if v != q.Free[i] {
				sub[v] = cq.Var(q.Free[i])
			}
		}
		if len(sub) > 0 {
			aligned = substFormula(aligned, sub)
		}
		q.PosFO.Body = posfo.Or{Fs: []posfo.Formula{q.PosFO.Body, aligned}}
		q.Params = mergeParams(q.Params, r.params)
	}
	for _, q := range queries {
		if err := q.PosFO.Validate(s); err != nil {
			return nil, err
		}
		subs, err := q.PosFO.ToUCQ()
		if err != nil {
			return nil, err
		}
		q.Subs = subs
	}
	return queries, nil
}

func mergeParams(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range append(append([]string(nil), a...), b...) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func substFormula(f posfo.Formula, sub map[string]cq.Term) posfo.Formula {
	mapTerm := func(t cq.Term) cq.Term {
		if t.IsVar() {
			if r, ok := sub[t.V]; ok {
				return r
			}
		}
		return t
	}
	switch n := f.(type) {
	case posfo.Atom:
		args := make([]cq.Term, len(n.Args))
		for i, t := range n.Args {
			args[i] = mapTerm(t)
		}
		return posfo.Atom{Rel: n.Rel, Args: args}
	case posfo.Eq:
		return posfo.Eq{L: mapTerm(n.L), R: mapTerm(n.R)}
	case posfo.And:
		fs := make([]posfo.Formula, len(n.Fs))
		for i, s := range n.Fs {
			fs[i] = substFormula(s, sub)
		}
		return posfo.And{Fs: fs}
	case posfo.Or:
		fs := make([]posfo.Formula, len(n.Fs))
		for i, s := range n.Fs {
			fs[i] = substFormula(s, sub)
		}
		return posfo.Or{Fs: fs}
	case posfo.Exists:
		return posfo.Exists{Vars: n.Vars, Body: substFormula(n.Body, sub)}
	default:
		return f
	}
}

// parseRelation parses Name(attr, attr, ...) after the keyword.
func (p *parser) parseRelation() (schema.Relation, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return schema.Relation{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return schema.Relation{}, err
	}
	var attrs []schema.Attribute
	for {
		a, err := p.expect(tokIdent)
		if err != nil {
			return schema.Relation{}, err
		}
		attrs = append(attrs, schema.Attribute(a.text))
		t := p.next()
		if t.kind == tokRParen {
			break
		}
		if t.kind != tokComma {
			return schema.Relation{}, p.errf(t, "expected , or ) in relation declaration")
		}
	}
	return schema.NewRelation(name.text, attrs...)
}

// parseConstraint parses Rel(X1 X2 -> Y1 Y2, card) after the keyword.
// X may be ∅ or empty; card is a number, "log", or "sqrt".
func (p *parser) parseConstraint() (access.Constraint, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return access.Constraint{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return access.Constraint{}, err
	}
	var xs, ys []schema.Attribute
	// X side: idents (optionally comma-separated) until ->, or ∅.
	for {
		t := p.peek()
		if t.kind == tokArrow {
			p.next()
			break
		}
		if t.kind == tokEmpty {
			p.next()
			continue
		}
		if t.kind == tokIdent {
			xs = append(xs, schema.Attribute(p.next().text))
			continue
		}
		if t.kind == tokComma && len(xs) > 0 {
			p.next()
			continue
		}
		return access.Constraint{}, p.errf(t, "expected attribute, ∅ or -> in constraint")
	}
	// Y side: idents until comma.
	for {
		t := p.peek()
		if t.kind == tokComma {
			p.next()
			break
		}
		if t.kind == tokIdent {
			ys = append(ys, schema.Attribute(p.next().text))
			continue
		}
		return access.Constraint{}, p.errf(t, "expected attribute or , before cardinality")
	}
	// Cardinality.
	t := p.next()
	var card access.Cardinality
	switch {
	case t.kind == tokNumber:
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return access.Constraint{}, p.errf(t, "bad bound %q", t.text)
		}
		card = access.ConstCard(n)
	case t.kind == tokIdent && t.text == "log":
		card = access.LogCard()
	case t.kind == tokIdent && t.text == "sqrt":
		card = access.SqrtCard()
	default:
		return access.Constraint{}, p.errf(t, "expected numeric bound, log, or sqrt")
	}
	if _, err := p.expect(tokRParen); err != nil {
		return access.Constraint{}, err
	}
	return access.Constraint{Rel: name.text, X: xs, Y: ys, Card: card}, nil
}

// parseQueryRule parses Name(v, ...) [params(v, ...)] :- body .
func (p *parser) parseQueryRule() (string, []string, []string, posfo.Formula, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return "", nil, nil, nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return "", nil, nil, nil, err
	}
	var free []string
	if p.peek().kind == tokRParen {
		p.next()
	} else {
		for {
			v, err := p.expect(tokIdent)
			if err != nil {
				return "", nil, nil, nil, err
			}
			free = append(free, v.text)
			t := p.next()
			if t.kind == tokRParen {
				break
			}
			if t.kind != tokComma {
				return "", nil, nil, nil, p.errf(t, "expected , or ) in query head")
			}
		}
	}
	var params []string
	if p.peek().kind == tokIdent && p.peek().text == "params" {
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return "", nil, nil, nil, err
		}
		for {
			v, err := p.expect(tokIdent)
			if err != nil {
				return "", nil, nil, nil, err
			}
			params = append(params, v.text)
			t := p.next()
			if t.kind == tokRParen {
				break
			}
			if t.kind != tokComma {
				return "", nil, nil, nil, p.errf(t, "expected , or ) in params list")
			}
		}
	}
	if _, err := p.expect(tokTurn); err != nil {
		return "", nil, nil, nil, err
	}
	body, err := p.parseOr()
	if err != nil {
		return "", nil, nil, nil, err
	}
	if p.peek().kind == tokDot {
		p.next()
	}
	return name.text, free, params, body, nil
}

// parseOr := parseAnd ('|' parseAnd)*
func (p *parser) parseOr() (posfo.Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	fs := []posfo.Formula{l}
	for p.peek().kind == tokPipe {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		fs = append(fs, r)
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return posfo.Or{Fs: fs}, nil
}

// parseAnd := parseUnit ((',' | '&') parseUnit)*
func (p *parser) parseAnd() (posfo.Formula, error) {
	l, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	fs := []posfo.Formula{l}
	for p.peek().kind == tokComma || p.peek().kind == tokAmp {
		p.next()
		r, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		fs = append(fs, r)
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return posfo.And{Fs: fs}, nil
}

// parseUnit := '(' parseOr ')' | Atom | term '=' term
func (p *parser) parseUnit() (posfo.Formula, error) {
	t := p.peek()
	if t.kind == tokLParen {
		p.next()
		f, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	}
	if t.kind == tokIdent && p.toks[p.pos+1].kind == tokLParen {
		// Relation atom.
		p.next()
		p.next() // (
		var args []cq.Term
		if p.peek().kind == tokRParen {
			p.next()
			return posfo.Atom{Rel: t.text}, nil
		}
		for {
			tm, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			args = append(args, tm)
			nt := p.next()
			if nt.kind == tokRParen {
				break
			}
			if nt.kind != tokComma {
				return nil, p.errf(nt, "expected , or ) in atom")
			}
		}
		return posfo.Atom{Rel: t.text, Args: args}, nil
	}
	// Equality.
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEquals); err != nil {
		return nil, err
	}
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return posfo.Eq{L: l, R: r}, nil
}

func (p *parser) parseTerm() (cq.Term, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		return cq.Var(t.text), nil
	case tokNumber:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return cq.Term{}, p.errf(t, "bad number %q", t.text)
		}
		return cq.Const(value.NewInt(n)), nil
	case tokString:
		return cq.Const(value.NewString(t.text)), nil
	default:
		return cq.Term{}, p.errf(t, "expected term, got %s %q", t.kind, t.text)
	}
}
