package bep

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/cq"
	"repro/internal/schema"
	"repro/internal/value"
)

// chaseResult is the outcome of chasing a CQ with the functional
// dependencies induced by bound-1 access constraints.
type chaseResult struct {
	// Q is the rewritten query (variables merged, constants propagated).
	Q *cq.CQ
	// Unsat reports that the chase derived a contradiction (two distinct
	// constants must be equal), so the query is A-unsatisfiable.
	Unsat bool
	// Changed reports whether the chase altered the query.
	Changed bool
}

// chase applies the classical FD chase to q's tableau using every access
// constraint R(X -> Y, 1): such a constraint asserts that any two R-tuples
// agreeing on X agree on Y (it is a functional dependency X -> Y with an
// index attached). The special case R(∅ -> Y, 1) equates the Y-attributes
// of ALL R-atoms, which is exactly what justifies the rewriting of
// Example 3.1(3) in the paper.
//
// The result is A-equivalent to q on every instance satisfying the
// constraints (soundness of the chase), which is what BEP needs.
func chase(q *cq.CQ, a *access.Schema, s *schema.Schema) (*chaseResult, error) {
	n := q.Normalize()
	// Union-find over variable names, with constant pinning.
	parent := make(map[string]string)
	pinned := make(map[string]value.Value)
	var find func(v string) string
	find = func(v string) string {
		p, ok := parent[v]
		if !ok {
			parent[v] = v
			return v
		}
		if p == v {
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	unsat := false
	union := func(x, y string) bool {
		rx, ry := find(x), find(y)
		if rx == ry {
			return false
		}
		if ry < rx {
			rx, ry = ry, rx
		}
		parent[ry] = rx
		cx, okx := pinned[rx]
		cy, oky := pinned[ry]
		switch {
		case okx && oky && cx != cy:
			unsat = true
		case oky && !okx:
			pinned[rx] = cy
		}
		delete(pinned, ry)
		return true
	}
	for _, v := range n.Vars() {
		parent[v] = v
	}
	for _, e := range n.Eqs {
		switch {
		case e.L.IsVar() && e.R.IsVar():
			union(e.L.V, e.R.V)
		case e.L.IsVar():
			r := find(e.L.V)
			if c, ok := pinned[r]; ok && c != e.R.C {
				unsat = true
			}
			pinned[r] = e.R.C
		case e.R.IsVar():
			r := find(e.R.V)
			if c, ok := pinned[r]; ok && c != e.L.C {
				unsat = true
			}
			pinned[r] = e.L.C
		}
	}

	// FD chase rounds: for each bound-1 constraint and each pair of atoms
	// of its relation agreeing on X (under current classes), merge Y.
	type fd struct {
		rel  string
		xpos []int
		ypos []int
	}
	var fds []fd
	for _, c := range a.Constraints {
		if !c.Card.IsConst() || c.Card.Const != 1 {
			continue
		}
		rs, ok := s.Relation(c.Rel)
		if !ok {
			return nil, fmt.Errorf("bep: constraint on unknown relation %s", c.Rel)
		}
		xpos, err := rs.Positions(c.X)
		if err != nil {
			return nil, err
		}
		ypos, err := rs.Positions(c.Y)
		if err != nil {
			return nil, err
		}
		fds = append(fds, fd{rel: c.Rel, xpos: xpos, ypos: ypos})
	}
	sameClassOrConst := func(u, v string) bool {
		ru, rv := find(u), find(v)
		if ru == rv {
			return true
		}
		cu, oku := pinned[ru]
		cv, okv := pinned[rv]
		return oku && okv && cu == cv
	}
	changed := false
	for round := true; round && !unsat; {
		round = false
		for _, f := range fds {
			for i := range n.Atoms {
				if n.Atoms[i].Rel != f.rel {
					continue
				}
				for j := i + 1; j < len(n.Atoms); j++ {
					if n.Atoms[j].Rel != f.rel {
						continue
					}
					agree := true
					for _, p := range f.xpos {
						if !sameClassOrConst(n.Atoms[i].Args[p].V, n.Atoms[j].Args[p].V) {
							agree = false
							break
						}
					}
					if !agree {
						continue
					}
					for _, p := range f.ypos {
						if union(n.Atoms[i].Args[p].V, n.Atoms[j].Args[p].V) {
							round = true
							changed = true
						}
					}
				}
			}
		}
	}
	if unsat {
		return &chaseResult{Q: n, Unsat: true, Changed: true}, nil
	}

	// Rebuild the query over class representatives, pinning constants.
	sub := make(map[string]cq.Term)
	for _, v := range n.Vars() {
		r := find(v)
		if c, ok := pinned[r]; ok && !isFree(n, v) {
			sub[v] = cq.Const(c)
		} else if r != v {
			sub[v] = cq.Var(r)
		}
	}
	out := n.Substitute(sub)
	// Re-add the pinning equalities for classes containing free variables
	// (Substitute keeps free variables as variables).
	out.Eqs = nil
	emitted := make(map[string]bool)
	for _, v := range n.Vars() {
		r := find(v)
		if c, ok := pinned[r]; ok && isFree(n, v) && !emitted[find(v)] {
			emitted[r] = true
			out.Eqs = append(out.Eqs, cq.Eq{L: cq.Var(r), R: cq.Const(c)})
		}
	}
	out = out.Normalize().DropDuplicateAtoms()
	return &chaseResult{Q: out, Changed: changed}, nil
}

func isFree(q *cq.CQ, v string) bool {
	for _, f := range q.Free {
		if f == v {
			return true
		}
	}
	return false
}
